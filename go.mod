module vesta

go 1.22
