// Command vesta is the CLI front-end of the Vesta VM-type selector.
//
// Subcommands:
//
//	vesta catalog  [-category C] [-family F]   list the VM type catalog
//	vesta workloads [-set S] [-framework F]    list the Table 3 applications
//	vesta simulate -app A -vm V [-nodes N]     profile one app on one VM type
//	vesta inspect  -app A [-vm V]              render a run's trace (sparklines)
//	vesta profile  -out knowledge.json         run the offline phase, save knowledge
//	vesta predict  -knowledge K -app A         predict the best VM for a target
//	vesta serve    -knowledge K -addr HOST:P   serve predictions over HTTP/JSON
//	vesta route    -backends URL1,URL2,...     front a replicated serving fleet
//	vesta heatmap  -app A                      Figure 1 style budget heat map
//	vesta collect  -store DIR -app A [...]     profile and persist measurements
//	vesta history  -store DIR [-app A]         query persisted measurements
//	vesta clustersize -knowledge K -app A      recommend a cluster size
//	vesta knowledge -knowledge K               inspect a knowledge file
//	vesta plan     -knowledge K -apps A,B,...  portfolio-plan several applications
//	vesta compare  -app A -vms V1,V2,...       compare VM types side by side
//
// profile and predict accept -workers N to bound the deterministic worker
// pool (0 = one per CPU); results are identical at every worker count. They
// also accept -fault-rate R and -retries N to rehearse the pipeline under
// deterministic infrastructure fault injection with resilient retries.
//
// All measurements run against the deterministic cluster simulator (see
// DESIGN.md); real EC2 is substituted by the synthetic catalog and the BSP
// execution model. The implementation lives in internal/cli.
package main

import (
	"os"

	"vesta/internal/cli"
)

func main() {
	os.Exit(cli.Run(os.Args[1:], os.Stdout, os.Stderr))
}
