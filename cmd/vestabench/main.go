// Command vestabench regenerates the paper's tables and figures.
//
// Usage:
//
//	vestabench                      # run every experiment
//	vestabench -exp fig6,fig8      # run a subset
//	vestabench -list               # list experiment ids
//	vestabench -seed 42            # change the deterministic seed
//	vestabench -o results.txt      # also write the report to a file
//	vestabench -workers 8          # worker pool inside each experiment
//
// Output is byte-identical at every -workers value: the evaluation sweeps
// fan out over indexed, independently seeded tasks and collect results in
// index order.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"vesta/internal/bench"
)

func main() {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		listFlag = flag.Bool("list", false, "list available experiments and exit")
		seedFlag = flag.Uint64("seed", 1, "deterministic experiment seed")
		outFlag  = flag.String("o", "", "also write the report to this file")
		mdFlag   = flag.String("md", "", "also write a markdown report to this file")
		parFlag  = flag.Int("parallel", 1, "experiments run concurrently (each gets its own environment)")
		workFlag = flag.Int("workers", 0, "worker pool size inside each experiment (0 = one per CPU); output is identical at every value")
	)
	flag.Parse()

	if *listFlag {
		for _, e := range bench.Registry() {
			fmt.Printf("%-20s %s\n", e.ID, e.Desc)
		}
		return
	}

	var selected []bench.Experiment
	if *expFlag == "" {
		selected = bench.Registry()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	var out io.Writer = os.Stdout
	if *outFlag != "" {
		f, err := os.Create(*outFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	var md io.Writer
	if *mdFlag != "" {
		f, err := os.Create(*mdFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		md = f
		fmt.Fprintf(md, "# Vesta experiment report (seed %d)\n\n", *seedFlag)
	}

	fmt.Fprintf(out, "Vesta experiment harness (seed %d, %d VM types, parallel %d)\n\n",
		*seedFlag, len(bench.NewEnv(*seedFlag).Catalog), *parFlag)

	// Experiments are independent and deterministic; with -parallel each
	// gets a private environment (the env's ground-truth cache is not
	// shared across goroutines) and results print in registry order.
	type outcome struct {
		table   *bench.Table
		elapsed float64
	}
	results := make([]outcome, len(selected))
	sem := make(chan struct{}, max(1, *parFlag))
	var wg sync.WaitGroup
	for i, e := range selected {
		wg.Add(1)
		go func(i int, e bench.Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			env := bench.NewEnvWorkers(*seedFlag, *workFlag)
			results[i] = outcome{table: e.Run(env), elapsed: time.Since(start).Seconds()}
		}(i, e)
	}
	wg.Wait()

	for i, e := range selected {
		fmt.Fprint(out, results[i].table.Render())
		fmt.Fprintf(out, "(%s in %.1fs)\n\n", e.ID, results[i].elapsed)
		if md != nil {
			fmt.Fprint(md, results[i].table.RenderMarkdown())
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
