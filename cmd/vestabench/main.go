// Command vestabench regenerates the paper's tables and figures.
//
// Usage:
//
//	vestabench                      # run every experiment
//	vestabench -exp fig6,fig8      # run a subset
//	vestabench -list               # list experiment ids
//	vestabench -seed 42            # change the deterministic seed
//	vestabench -o results.txt      # also write the report to a file
//	vestabench -workers 8          # worker pool inside each experiment
//	vestabench -trace out.jsonl    # write deterministic observability records
//	vestabench -v                  # verbose wall-clock progress on stderr
//	vestabench -cpuprofile cpu.pb  # write a pprof CPU profile
//	vestabench -memprofile mem.pb  # write a pprof heap profile at exit
//
// Output is byte-identical at every -workers value: the evaluation sweeps
// fan out over indexed, independently seeded tasks and collect results in
// index order. The -trace records share that contract (DESIGN.md §9); the
// -v stream and the pprof profiles are wall-clock artifacts and do not.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"vesta/internal/bench"
	"vesta/internal/obs"
)

func main() {
	var (
		expFlag   = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		listFlag  = flag.Bool("list", false, "list available experiments and exit")
		seedFlag  = flag.Uint64("seed", 1, "deterministic experiment seed")
		outFlag   = flag.String("o", "", "also write the report to this file")
		mdFlag    = flag.String("md", "", "also write a markdown report to this file")
		parFlag   = flag.Int("parallel", 1, "experiments run concurrently (each gets its own environment)")
		workFlag  = flag.Int("workers", 0, "worker pool size inside each experiment (0 = one per CPU); output is identical at every value")
		traceFlag = flag.String("trace", "", "write deterministic trace records (spans, counters, gauges) to this JSONL file")
		verbFlag  = flag.Bool("v", false, "stream verbose progress (wall timings, worker occupancy) to stderr")
		cpuFlag   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memFlag   = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuFlag != "" {
		f, err := os.Create(*cpuFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memFlag != "" {
		defer func() {
			f, err := os.Create(*memFlag)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	var tracer *obs.Tracer
	if *traceFlag != "" || *verbFlag {
		tracer = obs.New()
		if *verbFlag {
			tracer.SetVerbose(os.Stderr)
		}
	}

	if *listFlag {
		for _, e := range bench.Registry() {
			fmt.Printf("%-20s %s\n", e.ID, e.Desc)
		}
		return
	}

	var selected []bench.Experiment
	if *expFlag == "" {
		selected = bench.Registry()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	var out io.Writer = os.Stdout
	if *outFlag != "" {
		f, err := os.Create(*outFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	var md io.Writer
	if *mdFlag != "" {
		f, err := os.Create(*mdFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		md = f
		fmt.Fprintf(md, "# Vesta experiment report (seed %d)\n\n", *seedFlag)
	}

	fmt.Fprintf(out, "Vesta experiment harness (seed %d, %d VM types, parallel %d)\n\n",
		*seedFlag, len(bench.NewEnv(*seedFlag).Catalog), *parFlag)

	// Experiments are independent and deterministic; with -parallel each
	// gets a private environment (the env's ground-truth cache is not
	// shared across goroutines) and results print in registry order.
	type outcome struct {
		table   *bench.Table
		elapsed float64
	}
	results := make([]outcome, len(selected))
	sem := make(chan struct{}, max(1, *parFlag))
	var wg sync.WaitGroup
	for i, e := range selected {
		wg.Add(1)
		go func(i int, e bench.Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			env := bench.NewEnvObs(*seedFlag, *workFlag, tracer)
			results[i] = outcome{table: e.Run(env), elapsed: time.Since(start).Seconds()}
		}(i, e)
	}
	wg.Wait()

	for i, e := range selected {
		fmt.Fprint(out, results[i].table.Render())
		fmt.Fprintf(out, "(%s in %.1fs)\n\n", e.ID, results[i].elapsed)
		if md != nil {
			fmt.Fprint(md, results[i].table.RenderMarkdown())
		}
	}

	if tracer != nil && *traceFlag != "" {
		f, err := os.Create(*traceFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tracer.WriteJSONL(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "trace: %d records written to %s\n", len(tracer.Records()), *traceFlag)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
