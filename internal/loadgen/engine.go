package loadgen

import (
	"container/list"
	"fmt"
	"math"

	"vesta/internal/loadgen/hist"
	"vesta/internal/rng"
)

// Service-time model (milliseconds), calibrated against results/serve.md:
// the uncached precomputed-plan predict lands ~4.1 ms, a cache hit answers
// at admission, an absorb runs a full online campaign, and a catalog update
// is an append+publish. Per-request lognormal noise (sigma 0.25) comes from
// a split rng stream keyed by arrival index, so every latency is a pure
// function of (Config, Knobs).
const (
	predictCostMS = 4.1
	hitCostMS     = 0.05
	absorbCostMS  = 250.0
	catalogCostMS = 2.0
	svcSigma      = 0.25
)

// Knobs are the admission-control parameters the tuner sweeps — the model
// twins of serve.Config{QueueSize, BatchSize, Workers, ShedThreshold} plus
// the client deadline.
type Knobs struct {
	// QueueDepth bounds the admission queue (serve.Config.QueueSize).
	QueueDepth int `json:"queue_depth"`
	// BatchSize bounds one dispatch batch (serve.Config.BatchSize).
	BatchSize int `json:"batch_size"`
	// Workers is the modeled per-node worker pool a batch fans out on.
	Workers int `json:"workers"`
	// ShedThreshold enables priority-aware shedding: best-effort requests
	// (Priority >= 1) are rejected once queue occupancy reaches this fraction
	// of QueueDepth. 0 disables, 1 sheds only when actually full.
	ShedThreshold float64 `json:"shed_threshold"`
	// TimeoutMS is the client deadline: requests still queued past it are
	// canceled (they release their slot), and responses delivered past it
	// count as timeouts, not goodput.
	TimeoutMS float64 `json:"timeout_ms"`
	// CacheSize bounds the modeled response LRU (entries); 0 disables it.
	CacheSize int `json:"cache_size"`
}

// DefaultKnobs mirrors the serve defaults (8 modeled workers, 250 ms
// deadline).
func DefaultKnobs() Knobs {
	return Knobs{QueueDepth: 256, BatchSize: 16, Workers: 8, ShedThreshold: 0, TimeoutMS: 250, CacheSize: 1024}
}

func (k Knobs) validate() error {
	if k.QueueDepth <= 0 || k.BatchSize <= 0 || k.Workers <= 0 {
		return fmt.Errorf("loadgen: knobs need positive queue/batch/workers, got %d/%d/%d",
			k.QueueDepth, k.BatchSize, k.Workers)
	}
	if math.IsNaN(k.ShedThreshold) || k.ShedThreshold < 0 || k.ShedThreshold > 1 {
		return fmt.Errorf("loadgen: shed threshold %v (want [0, 1])", k.ShedThreshold)
	}
	if !finitePos(k.TimeoutMS) {
		return fmt.Errorf("loadgen: timeout %v ms (want finite > 0)", k.TimeoutMS)
	}
	if k.CacheSize < 0 {
		return fmt.Errorf("loadgen: cache size %d (want >= 0)", k.CacheSize)
	}
	return nil
}

// Report is the outcome accounting of one engine run. Offered always equals
// Good + Shed + Rejected + Canceled + Timeout: every scheduled request is
// answered exactly once — the overload contract the serve tests pin.
type Report struct {
	Config Config `json:"config"`
	Knobs  Knobs  `json:"knobs"`

	// Offered is the scheduled arrival count; OfferedRPS averages it over
	// the run's virtual duration.
	Offered    int64   `json:"offered"`
	OfferedRPS float64 `json:"offered_rps"`
	// Good is the goodput: answered within the deadline. GoodRPS averages it
	// over the run.
	Good    int64   `json:"good"`
	GoodRPS float64 `json:"good_rps"`
	// Shed counts priority sheds (503 before the queue filled); Rejected
	// counts hard queue-full rejections (503); Canceled counts requests whose
	// deadline expired while still queued (504, slot released unserved);
	// Timeout counts requests served past the deadline (504 delivered).
	Shed     int64 `json:"shed"`
	Rejected int64 `json:"rejected"`
	Canceled int64 `json:"canceled"`
	Timeout  int64 `json:"timeout"`

	// Per-kind offered counts (absorb/catalog bypass the admission queue).
	Predicts int64 `json:"predicts"`
	Absorbs  int64 `json:"absorbs"`
	Catalogs int64 `json:"catalogs"`

	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Epochs counts hot-swaps (absorbs + catalog updates): each invalidates
	// the modeled response cache exactly like the (epoch, fingerprint) key
	// does in serve.
	Epochs int64 `json:"epochs"`

	// Queue/batch gauges: occupancy sampled at every arrival, dispatch batch
	// sizes over every formed batch.
	QueueMax  int     `json:"queue_max"`
	QueueMean float64 `json:"queue_mean"`
	BatchMax  int     `json:"batch_max"`
	BatchMean float64 `json:"batch_mean"`
	Batches   int64   `json:"batches"`

	// Hist holds goodput latencies (ms); ControlHist the absorb/catalog arm.
	Hist        *hist.H `json:"-"`
	ControlHist *hist.H `json:"-"`

	batchSizeSum int64
}

// Summary returns the goodput percentile ladder.
func (r *Report) Summary() hist.Summary { return r.Hist.Summarize() }

// Answered sums every terminal outcome; it must equal Offered.
func (r *Report) Answered() int64 {
	return r.Good + r.Shed + r.Rejected + r.Canceled + r.Timeout
}

// pending is one queued predict request.
type pending struct {
	arrivalMS float64
	svcMS     float64
	key       cacheKey
}

type cacheKey struct {
	epoch uint64
	app   string
	seed  uint64
}

// modelLRU is the engine's response-cache model: capacity-bounded, epoch in
// the key, values irrelevant (only membership matters). A nil *modelLRU is
// the cache-off arm.
type modelLRU struct {
	cap int
	ll  *list.List
	m   map[cacheKey]*list.Element
}

func newModelLRU(capacity int) *modelLRU {
	return &modelLRU{cap: capacity, ll: list.New(), m: make(map[cacheKey]*list.Element)}
}

func (c *modelLRU) get(k cacheKey) bool {
	if c == nil {
		return false
	}
	e, ok := c.m[k]
	if ok {
		c.ll.MoveToFront(e)
	}
	return ok
}

func (c *modelLRU) put(k cacheKey) {
	if c == nil {
		return
	}
	if e, ok := c.m[k]; ok {
		c.ll.MoveToFront(e)
		return
	}
	c.m[k] = c.ll.PushFront(k)
	if c.ll.Len() > c.cap {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.m, old.Value.(cacheKey))
	}
}

// engine is the virtual-time discrete-event model of the serve admission
// pipeline: bounded FIFO queue, one dispatcher forming batches of up to
// BatchSize and running each batch to completion on Workers workers (the
// next batch starts when the previous finishes — the serve.dispatch loop),
// response cache with epoch-keyed invalidation, priority shed, and client
// deadlines. The model deliberately omits singleflight coalescing: every
// miss charges a full solve, so its capacity numbers are conservative under
// hot-key herds.
type engine struct {
	k          Knobs
	busyUntil  float64
	queue      []pending
	cache      *modelLRU
	epoch      uint64
	rep        *Report
	batch      []pending
	workerLoad []float64
}

// observe records a goodput latency; the engine only produces finite
// non-negative values, so a histogram rejection is a model bug.
func observe(h *hist.H, ms float64) {
	if err := h.Observe(ms); err != nil {
		panic(err)
	}
}

// Run executes the schedule for cfg under the given knobs and returns the
// deterministic outcome report. Virtual time only: no wall clock, no
// goroutines — identical bytes on every run and at every evaluation worker
// count.
func Run(cfg Config, k Knobs) (*Report, error) {
	sched, err := Schedule(cfg)
	if err != nil {
		return nil, err
	}
	return replaySim(cfg, k, sched)
}

// replaySim is Run over a precomputed schedule (the determinism tests reuse
// one schedule across knob settings).
func replaySim(cfg Config, k Knobs, sched []Arrival) (*Report, error) {
	if err := k.validate(); err != nil {
		return nil, err
	}
	rep := &Report{
		Config:      cfg,
		Knobs:       k,
		Hist:        hist.New(),
		ControlHist: hist.New(),
	}
	e := &engine{
		k:          k,
		rep:        rep,
		batch:      make([]pending, k.BatchSize),
		workerLoad: make([]float64, k.Workers),
	}
	if k.CacheSize > 0 {
		e.cache = newModelLRU(k.CacheSize)
	}
	root := rng.New(cfg.Seed ^ 0x10adc0de) // service-time noise stream root
	var queueDepthSum int64
	for i, a := range sched {
		e.drainUntil(a.AtMS)
		rep.Offered++
		queueDepthSum += int64(len(e.queue))
		if len(e.queue) > rep.QueueMax {
			rep.QueueMax = len(e.queue)
		}
		r := root.Split(uint64(i))
		switch a.Kind {
		case KindAbsorb, KindCatalog:
			// Control plane: bypasses the admission queue (serve.AbsorbApp /
			// UpdateCatalog) and hot-swaps a new epoch, invalidating the
			// response cache for every later lookup.
			e.epoch++
			rep.Epochs++
			cost := absorbCostMS
			if a.Kind == KindCatalog {
				cost = catalogCostMS
				rep.Catalogs++
			} else {
				rep.Absorbs++
			}
			observe(rep.ControlHist, cost*r.LogNorm(0, svcSigma))
			rep.Good++
		default:
			rep.Predicts++
			e.admitPredict(a, r)
		}
	}
	e.drainUntil(math.Inf(1)) // run the backlog dry
	if rep.Offered > 0 {
		rep.QueueMean = float64(queueDepthSum) / float64(rep.Offered)
	}
	if cfg.DurationSec > 0 {
		rep.OfferedRPS = float64(rep.Offered) / cfg.DurationSec
		rep.GoodRPS = float64(rep.Good) / cfg.DurationSec
	}
	if rep.Batches > 0 {
		rep.BatchMean = float64(rep.batchSizeSum) / float64(rep.Batches)
	}
	return rep, nil
}

// admitPredict runs the data-plane admission path for one arrival: cache
// probe at the current epoch, then priority shed, then bounded queue.
func (e *engine) admitPredict(a Arrival, r *rng.Source) {
	key := cacheKey{epoch: e.epoch, app: a.App, seed: a.Seed}
	if e.cache.get(key) {
		e.rep.CacheHits++
		observe(e.rep.Hist, hitCostMS*r.LogNorm(0, svcSigma))
		e.rep.Good++
		return
	}
	e.rep.CacheMisses++
	if e.k.ShedThreshold > 0 && a.Priority > 0 &&
		float64(len(e.queue)) >= e.k.ShedThreshold*float64(e.k.QueueDepth) {
		e.rep.Shed++
		return
	}
	if len(e.queue) >= e.k.QueueDepth {
		e.rep.Rejected++
		return
	}
	e.queue = append(e.queue, pending{
		arrivalMS: a.AtMS,
		svcMS:     predictCostMS * r.LogNorm(0, svcSigma),
		key:       key,
	})
}

// drainUntil runs dispatcher batches whose start time falls strictly before
// now. Batches are sequential: the next starts when the previous completes
// (or when work reaches an idle dispatcher).
func (e *engine) drainUntil(nowMS float64) {
	for len(e.queue) > 0 {
		start := math.Max(e.busyUntil, e.queue[0].arrivalMS)
		if start >= nowMS {
			return
		}
		// Stage up to BatchSize requests that had arrived by the batch's
		// start. Requests whose deadline expired while queued are canceled —
		// the real server's ctx-canceled tasks release their slots unserved.
		n := 0
		for len(e.queue) > 0 && n < e.k.BatchSize {
			p := e.queue[0]
			if p.arrivalMS > start {
				break
			}
			e.queue = e.queue[1:]
			if start-p.arrivalMS > e.k.TimeoutMS {
				e.rep.Canceled++
				continue
			}
			e.batch[n] = p
			n++
		}
		if n == 0 {
			continue
		}
		e.rep.Batches++
		e.rep.batchSizeSum += int64(n)
		if n > e.rep.BatchMax {
			e.rep.BatchMax = n
		}
		// One batch runs to completion before the next forms; every task's
		// result is delivered at batch end (parallel.Map semantics).
		end := start + e.makespan(n)
		e.busyUntil = end
		for i := 0; i < n; i++ {
			p := e.batch[i]
			lat := end - p.arrivalMS
			if lat > e.k.TimeoutMS {
				e.rep.Timeout++
				continue
			}
			observe(e.rep.Hist, lat)
			e.rep.Good++
			e.cache.put(p.key)
		}
	}
}

// makespan computes the completion span of the first n staged batch tasks
// greedily assigned to the least-loaded of Workers workers — the same
// fan-out shape parallel.Map gives the real dispatcher.
func (e *engine) makespan(n int) float64 {
	load := e.workerLoad
	for i := range load {
		load[i] = 0
	}
	for i := 0; i < n; i++ {
		best := 0
		for w := 1; w < len(load); w++ {
			if load[w] < load[best] {
				best = w
			}
		}
		load[best] += e.batch[i].svcMS
	}
	max := 0.0
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}
