package loadgen

import (
	"fmt"
	"strings"

	"vesta/internal/parallel"
)

// ReportSpec parameterizes the standard capacity-planning report
// (results/loadgen.md, `make loadgen-report`). Every field feeds pure
// computation: two runs with the same spec emit byte-identical markdown.
type ReportSpec struct {
	Seed uint64
	// TargetP99MS is the tuner and capacity-plan latency objective.
	TargetP99MS float64
	// Loads are the offered-load levels (base req/s) each pattern runs at.
	Loads []float64
	// PlanLoads are the fleet loads the capacity plan sizes.
	PlanLoads []float64
	// DurationSec is the virtual length of each pattern run.
	DurationSec float64
	Tenants     int
	ZipfS       float64
	// EvalWorkers is the evaluation fan-out (0 = one per CPU); the report
	// bytes are identical at every value.
	EvalWorkers int
}

// DefaultReportSpec is the committed results/loadgen.md configuration:
// three load levels spanning comfortable, saturated, and overloaded against
// the default 8-worker node model.
func DefaultReportSpec() ReportSpec {
	return ReportSpec{
		Seed:        1,
		TargetP99MS: 50,
		Loads:       []float64{500, 2000, 8000},
		PlanLoads:   []float64{1000, 10000, 100000, 1000000},
		DurationSec: 60,
		Tenants:     10000,
		ZipfS:       1.1,
		EvalWorkers: 0,
	}
}

// reportPatterns builds the pattern matrix at one base load: steady, a
// diurnal sine (±50% over a 60 s virtual day), a 4x square-wave burst (1 s
// of every 10 s), and a half-to-double ramp.
func reportPatterns(load float64) []Pattern {
	return []Pattern{
		{Kind: Steady, RPS: load},
		{Kind: Diurnal, RPS: load, Amplitude: 0.5, PeriodSec: 60},
		{Kind: Burst, RPS: load, Amplitude: 4, PeriodSec: 10, DutySec: 1},
		{Kind: Ramp, RPS: load / 2, EndRPS: load * 2},
	}
}

// baseConfig assembles the traffic config for one pattern run.
func (s ReportSpec) baseConfig(p Pattern) Config {
	return Config{
		Seed:        s.Seed,
		DurationSec: s.DurationSec,
		Pattern:     p,
		Mix:         DefaultMix(),
		Tenants:     s.Tenants,
		ZipfS:       s.ZipfS,
	}
}

// RenderReport runs the full matrix — every pattern at every load under the
// default knobs, the (queue, batch, shed) tuner sweep at the hardest cell,
// and the capacity plan from the winning knobs — and renders the markdown
// report. Deterministic: a pure function of the spec.
func RenderReport(spec ReportSpec) ([]byte, error) {
	type job struct {
		load float64
		pat  Pattern
	}
	var jobs []job
	for _, load := range spec.Loads {
		for _, p := range reportPatterns(load) {
			jobs = append(jobs, job{load: load, pat: p})
		}
	}
	reports, err := parallel.MapErr(spec.EvalWorkers, len(jobs), func(i int) (*Report, error) {
		return Run(spec.baseConfig(jobs[i].pat), DefaultKnobs())
	})
	if err != nil {
		return nil, err
	}

	// Tuner at the hardest cell: the burst pattern at the top load.
	peak := spec.Loads[len(spec.Loads)-1]
	burstCfg := spec.baseConfig(reportPatterns(peak)[2])
	cells, err := Sweep(burstCfg, TunerConfig{TargetP99MS: spec.TargetP99MS}, spec.EvalWorkers)
	if err != nil {
		return nil, err
	}
	best, err := Best(cells)
	if err != nil {
		return nil, err
	}
	plan, err := CapacityPlan(burstCfg, best.Knobs, spec.TargetP99MS, spec.PlanLoads)
	if err != nil {
		return nil, err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# Load realism: open-loop traffic, admission tuning, capacity plan\n\n")
	fmt.Fprintf(&b, "Regenerate with `make loadgen-report` (equivalently `vesta loadgen -report "+
		"-seed %d -o results/loadgen.md`). Every number below is a pure function\n"+
		"of the seed: two runs diff clean. Model constants: uncached predict "+
		"%.1f ms, cache hit %.2f ms,\nabsorb %.0f ms, catalog update %.1f ms, "+
		"lognormal noise sigma %.2f (DESIGN.md §15).\n\n",
		spec.Seed, predictCostMS, hitCostMS, absorbCostMS, catalogCostMS, svcSigma)
	fmt.Fprintf(&b, "Traffic: %d tenants, Zipf skew %.1f, mix predict/absorb/catalog = "+
		"%.3f/%.3f/%.3f, %g s virtual per run,\ndefault node knobs queue=%d batch=%d "+
		"workers=%d timeout=%gms cache=%d.\n\n",
		spec.Tenants, spec.ZipfS,
		DefaultMix()[0].Weight, DefaultMix()[1].Weight, DefaultMix()[2].Weight,
		spec.DurationSec,
		DefaultKnobs().QueueDepth, DefaultKnobs().BatchSize, DefaultKnobs().Workers,
		DefaultKnobs().TimeoutMS, DefaultKnobs().CacheSize)

	fmt.Fprintf(&b, "## Pattern × offered-load matrix (single node, default knobs)\n\n")
	fmt.Fprintf(&b, "| pattern | base req/s | offered req/s | goodput req/s | p50 ms | p90 ms | p99 ms | p99.9 ms | shed | reject | cancel | timeout | hit rate | queue max | batch mean | epochs |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	for i, rep := range reports {
		sum := rep.Summary()
		hitRate := 0.0
		if t := rep.CacheHits + rep.CacheMisses; t > 0 {
			hitRate = float64(rep.CacheHits) / float64(t)
		}
		fmt.Fprintf(&b, "| %s | %.0f | %.0f | %.0f | %.2f | %.2f | %.2f | %.2f | %d | %d | %d | %d | %.2f | %d | %.1f | %d |\n",
			jobs[i].pat.Kind, jobs[i].load, rep.OfferedRPS, rep.GoodRPS,
			sum.P50, sum.P90, sum.P99, sum.P999,
			rep.Shed, rep.Rejected, rep.Canceled, rep.Timeout,
			hitRate, rep.QueueMax, rep.BatchMean, rep.Epochs)
	}

	fmt.Fprintf(&b, "\n## Admission auto-tuner (burst @ %.0f req/s base, target P99 < %.0f ms)\n\n", peak, spec.TargetP99MS)
	fmt.Fprintf(&b, "| queue | batch | shed | goodput req/s | p99 ms | shed+reject | cancel+timeout | meets |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "| %d | %d | %.2f | %.0f | %.2f | %d | %d | %v |\n",
			c.Knobs.QueueDepth, c.Knobs.BatchSize, c.Knobs.ShedThreshold,
			c.Report.GoodRPS, c.P99,
			c.Report.Shed+c.Report.Rejected, c.Report.Canceled+c.Report.Timeout, c.Meets)
	}
	fmt.Fprintf(&b, "\nWinner: queue=%d batch=%d shed=%.2f — goodput %.0f req/s at P99 %.2f ms.\n",
		best.Knobs.QueueDepth, best.Knobs.BatchSize, best.Knobs.ShedThreshold,
		best.Report.GoodRPS, best.P99)

	fmt.Fprintf(&b, "\n## Capacity plan (winning knobs, %.0f%% provisioning headroom)\n\n", 100*(1-plan.Headroom))
	fmt.Fprintf(&b, "Measured single-node capacity: **%.0f req/s** at P99 < %.0f ms "+
		"(steady probe, error budget %.0f%%).\n\n", plan.NodeCapacityRPS, plan.TargetP99MS, 100*errorBudget)
	fmt.Fprintf(&b, "| fleet load req/s | nodes |\n|---|---|\n")
	for _, row := range plan.Rows {
		fmt.Fprintf(&b, "| %.0f | %d |\n", row.OfferedRPS, row.Nodes)
	}
	fmt.Fprintf(&b, "\nPlan rule: nodes = ceil(M / (%.0f × %.2f)) — de-rated so diurnal peaks "+
		"and failover surges keep P99 inside the target.\n", plan.NodeCapacityRPS, plan.Headroom)
	return []byte(b.String()), nil
}
