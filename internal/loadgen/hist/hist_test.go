package hist

import (
	"math"
	"strings"
	"testing"
)

func TestObserveRejectsUnobservable(t *testing.T) {
	h := New()
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.001} {
		if err := h.Observe(v); err == nil {
			t.Errorf("Observe(%v) accepted", v)
		}
	}
	if h.Count() != 0 {
		t.Fatalf("rejected observations counted: %d", h.Count())
	}
}

func TestBucketLadder(t *testing.T) {
	if got := UpperBound(NumBuckets - 1); got != Hi {
		t.Fatalf("last bound %v, want %v", got, Hi)
	}
	if got := UpperBound(0); got != Lo {
		t.Fatalf("first bound %v, want %v", got, Lo)
	}
	prev := 0.0
	for i := 0; i < NumBuckets; i++ {
		ub := UpperBound(i)
		if ub <= prev {
			t.Fatalf("bucket %d bound %v not increasing past %v", i, ub, prev)
		}
		prev = ub
	}
	// Resolution: adjacent bounds within ~5.5% of each other.
	if ratio := UpperBound(10) / UpperBound(9); ratio > 1.055 {
		t.Fatalf("growth %v too coarse", ratio)
	}
}

// TestQuantileConservative: the reported quantile is always an upper bound on
// the true order statistic, and within one bucket ratio of it.
func TestQuantileConservative(t *testing.T) {
	h := New()
	vals := []float64{0.04, 0.05, 1, 2, 3, 4, 4.2, 4.4, 8, 1000}
	for _, v := range vals {
		if err := h.Observe(v); err != nil {
			t.Fatal(err)
		}
	}
	growth := math.Pow(Hi/Lo, 1/float64(NumBuckets-1))
	for _, tc := range []struct {
		q    float64
		true float64
	}{{0.5, 3}, {0.9, 8}, {1, 1000}, {0, 0.04}} {
		got := h.Quantile(tc.q)
		if got < tc.true {
			t.Errorf("Quantile(%v) = %v below true %v", tc.q, got, tc.true)
		}
		if got > tc.true*growth {
			t.Errorf("Quantile(%v) = %v beyond one bucket over %v", tc.q, got, tc.true)
		}
	}
	if h.Quantile(0.5) > h.Quantile(0.99) {
		t.Error("quantiles not monotone")
	}
}

func TestMergeOrderIndependent(t *testing.T) {
	obs := [][]float64{{1, 2, 3}, {0.001, 500, 4.1}, {1e7, 0}}
	build := func(order []int) *H {
		total := New()
		for _, i := range order {
			part := New()
			for _, v := range obs[i] {
				if err := part.Observe(v); err != nil {
					t.Fatal(err)
				}
			}
			total.Merge(part)
		}
		return total
	}
	a, b := build([]int{0, 1, 2}), build([]int{2, 0, 1})
	if a.Encode() != b.Encode() {
		t.Fatalf("merge order changed encoding:\n%s\n%s", a.Encode(), b.Encode())
	}
	if a.Count() != 8 {
		t.Fatalf("count %d, want 8", a.Count())
	}
	if math.Abs(a.Mean()-b.Mean()) != 0 {
		t.Fatal("merge order changed mean")
	}
}

func TestEncodeCanonical(t *testing.T) {
	h := New()
	if got := h.Encode(); !strings.HasPrefix(got, "n=0 sum=") {
		t.Fatalf("empty encoding %q", got)
	}
	for i := 0; i < 3; i++ {
		if err := h.Observe(4.1); err != nil {
			t.Fatal(err)
		}
	}
	o := New()
	for i := 0; i < 3; i++ {
		if err := o.Observe(4.1); err != nil {
			t.Fatal(err)
		}
	}
	if h.Encode() != o.Encode() {
		t.Fatal("identical observations encode differently")
	}
	if len(h.NonEmpty()) != 1 {
		t.Fatalf("NonEmpty %v, want one bucket", h.NonEmpty())
	}
	s := h.Summarize()
	if s.Count != 3 || s.Mean != 4.1 || s.P50 != s.P999 {
		t.Fatalf("summary %+v", s)
	}
}

func TestQuantileEmptyAndClamp(t *testing.T) {
	h := New()
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty quantile nonzero")
	}
	if err := h.Observe(5); err != nil {
		t.Fatal(err)
	}
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("q clamp broken")
	}
}
