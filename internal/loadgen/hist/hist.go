// Package hist implements the fixed-bucket latency histogram of the load
// generator (DESIGN.md §15). Bucket boundaries are a compile-time constant
// geometric ladder, so two histograms built from the same observations are
// byte-identical however the observations were produced or merged — the
// histogram analogue of the repo's deterministic-trace contract. Quantiles
// are read from the ladder (each reported percentile is a bucket upper
// bound), trading ~5% resolution for schedule-independent bytes.
package hist

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// The ladder spans 1 µs to ~1000 s in NumBuckets geometric steps. Bucket i
// covers (UpperBound(i-1), UpperBound(i)]; observations at or below Lo land
// in bucket 0 and observations beyond the ladder land in the last bucket.
const (
	// NumBuckets is the fixed bucket count of every histogram.
	NumBuckets = 400
	// Lo is the upper bound of bucket 0 in milliseconds (1 µs).
	Lo = 1e-3
	// Hi is the upper bound of the last bucket in milliseconds (~1000 s).
	Hi = 1e6
)

// growth is the per-bucket ratio: Hi = Lo * growth^(NumBuckets-1).
var growth = math.Pow(Hi/Lo, 1/float64(NumBuckets-1))

// invLogGrowth caches 1/ln(growth) for the index computation.
var invLogGrowth = 1 / math.Log(growth)

// H is a fixed-bucket latency histogram. The zero value is not ready; use
// New. H is not safe for concurrent use — give each goroutine its own and
// Merge, like an rng.Source.
type H struct {
	counts [NumBuckets]int64
	n      int64
	sum    float64 // of observed values, for Mean
}

// New returns an empty histogram.
func New() *H { return &H{} }

// bucketOf maps a latency in milliseconds to its bucket index.
func bucketOf(ms float64) int {
	if ms <= Lo {
		return 0
	}
	i := int(math.Ceil(math.Log(ms/Lo) * invLogGrowth))
	if i < 0 {
		i = 0
	}
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// UpperBound returns bucket i's inclusive upper bound in milliseconds.
func UpperBound(i int) float64 {
	if i >= NumBuckets-1 {
		return Hi
	}
	return Lo * math.Pow(growth, float64(i))
}

// Observe records one latency in milliseconds. Non-finite and negative
// observations are rejected (the engine never produces them; a caller bug
// should fail loudly, not skew a percentile).
func (h *H) Observe(ms float64) error {
	if math.IsNaN(ms) || math.IsInf(ms, 0) || ms < 0 {
		return fmt.Errorf("hist: unobservable latency %v", ms)
	}
	h.counts[bucketOf(ms)]++
	h.n++
	h.sum += ms
	return nil
}

// Merge folds o into h. Merging in any order produces identical state.
func (h *H) Merge(o *H) {
	if o == nil {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
}

// Count returns the number of observations.
func (h *H) Count() int64 { return h.n }

// Mean returns the arithmetic mean of the raw observations (exact, not
// bucketed), or 0 on an empty histogram.
func (h *H) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns the latency upper bound (ms) of the bucket holding the
// q'th observation, q in [0, 1]. Empty histograms return 0. The value is the
// conservative (upper) edge: "P99 < X ms" claims built on it hold for the
// raw observations too.
func (h *H) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return UpperBound(i)
		}
	}
	return Hi
}

// Summary bundles the percentile ladder every report prints.
type Summary struct {
	Count               float64
	Mean                float64
	P50, P90, P99, P999 float64
}

// Summarize computes the standard report percentiles.
func (h *H) Summarize() Summary {
	return Summary{
		Count: float64(h.n),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}

// Encode renders the histogram as a canonical compact string —
// "n=<count> sum=<bits> <bucket>:<count> ..." with only non-empty buckets,
// ascending. Byte-equal encodings imply identical histograms; tests compare
// these instead of float percentiles.
func (h *H) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d sum=%016x", h.n, math.Float64bits(h.sum))
	for i, c := range h.counts {
		if c != 0 {
			fmt.Fprintf(&b, " %d:%d", i, c)
		}
	}
	return b.String()
}

// NonEmpty returns the indices of non-empty buckets, ascending — the sparse
// view render helpers iterate.
func (h *H) NonEmpty() []int {
	var idx []int
	for i, c := range h.counts {
		if c != 0 {
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	return idx
}
