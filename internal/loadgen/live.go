package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"vesta/internal/cloud"
	"vesta/internal/loadgen/hist"
	"vesta/internal/serve"
)

// LiveConfig tunes a live replay.
type LiveConfig struct {
	// TimeScale multiplies every scheduled arrival time: 1 replays in real
	// time, 0.1 replays 10x faster. <= 0 takes 1.
	TimeScale float64
	// TimeoutMS is the per-request client deadline; <= 0 takes the default
	// knob (250 ms).
	TimeoutMS float64
}

// LiveReport is the outcome accounting of one live replay. Unlike the
// virtual-time Report, its latencies are wall clock — live runs exercise the
// real server (soak and overload tests) and are explicitly outside the
// byte-determinism contract; only the conservation invariant
// Offered == Good + Shed + Rejected + Timeout + Errored is pinned.
type LiveReport struct {
	Offered int64 `json:"offered"`
	Good    int64 `json:"good"`
	// Shed counts priority sheds (serve.ErrShed); Rejected counts the other
	// queue-full 503s; Timeout counts client deadline expiries; Errored is
	// every remaining failure (validation, shutdown).
	Shed     int64 `json:"shed"`
	Rejected int64 `json:"rejected"`
	Timeout  int64 `json:"timeout"`
	Errored  int64 `json:"errored"`

	// Hist holds data-plane wall-clock latencies (ms); ControlHist the
	// absorb/catalog arm.
	Hist        *hist.H `json:"-"`
	ControlHist *hist.H `json:"-"`

	// Stats is the server's own counter view captured after the replay
	// drained, so callers can cross-check (queued + shed + canceled vs
	// offered) against the server's accounting.
	Stats serve.Stats `json:"stats"`
}

// Answered sums every terminal outcome; it must equal Offered.
func (r *LiveReport) Answered() int64 {
	return r.Good + r.Shed + r.Rejected + r.Timeout + r.Errored
}

// RunLive replays a schedule against a real in-process server, open loop:
// arrivals fire on the (scaled) schedule regardless of response latency, each
// on its own goroutine. Absorbs register unique workload names; catalog
// arrivals alternate a reprice of the snapshot's first VM between two valid
// prices, so both hot-swap paths run against real state. RunLive waits for
// every dispatched request to resolve before returning; ctx cancellation
// stops dispatching new arrivals (already-dispatched ones still resolve).
func RunLive(ctx context.Context, srv *serve.Server, sched []Arrival, lc LiveConfig) (*LiveReport, error) {
	if srv == nil {
		return nil, fmt.Errorf("loadgen: live replay needs a server")
	}
	if lc.TimeScale <= 0 {
		lc.TimeScale = 1
	}
	if lc.TimeoutMS <= 0 {
		lc.TimeoutMS = DefaultKnobs().TimeoutMS
	}
	cat := srv.Snapshot().Catalog()
	if len(cat) == 0 {
		return nil, fmt.Errorf("loadgen: live replay needs a non-empty catalog")
	}
	repriceVM, basePrice := cat[0].Name, cat[0].PriceHour

	rep := &LiveReport{Hist: hist.New(), ControlHist: hist.New()}
	var mu sync.Mutex // guards rep
	var wg sync.WaitGroup
	timeout := time.Duration(lc.TimeoutMS * float64(time.Millisecond))
	start := time.Now()
	for i, a := range sched {
		due := start.Add(time.Duration(a.AtMS * lc.TimeScale * float64(time.Millisecond)))
		if d := time.Until(due); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		rep.Offered++
		wg.Add(1)
		go func(i int, a Arrival) {
			defer wg.Done()
			t0 := time.Now()
			var err error
			control := true
			switch a.Kind {
			case KindAbsorb:
				_, err = srv.AbsorbApp(serve.AbsorbRequest{
					Name: fmt.Sprintf("live-absorb-%d", i),
					App:  a.App,
					Seed: a.Seed,
				})
			case KindCatalog:
				// Alternate between two valid prices so every update is a real
				// state change (an idempotent reprice would be rejected as empty).
				price := basePrice * 1.5
				if i%2 == 1 {
					price = basePrice * 0.75
				}
				_, err = srv.UpdateCatalog(cloud.Update{
					Note:    fmt.Sprintf("loadgen live reprice %d", i),
					Reprice: map[string]float64{repriceVM: price},
				})
			default:
				control = false
				rctx, cancel := context.WithTimeout(ctx, timeout)
				_, err = srv.PredictBytes(rctx, serve.Request{
					App:      a.App,
					Seed:     a.Seed,
					Priority: a.Priority,
				})
				cancel()
			}
			ms := float64(time.Since(t0)) / float64(time.Millisecond)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				rep.Good++
				h := rep.Hist
				if control {
					h = rep.ControlHist
				}
				if oerr := h.Observe(ms); oerr != nil {
					rep.Good--
					rep.Errored++
				}
			case errors.Is(err, serve.ErrShed):
				rep.Shed++
			case errors.Is(err, serve.ErrQueueFull):
				rep.Rejected++
			case errors.Is(err, context.DeadlineExceeded):
				rep.Timeout++
			default:
				rep.Errored++
			}
		}(i, a)
	}
	wg.Wait()
	rep.Stats = srv.Stats()
	return rep, nil
}
