package loadgen

import (
	"math"
	"strings"
	"testing"
)

// matrixConfigs are the determinism-matrix arms: every pattern kind, and a
// control-plane-heavy mix so absorb/catalog traffic is exercised, not just
// the predict fast path.
func matrixConfigs() map[string]Config {
	return map[string]Config{
		"steady-predict": {
			Seed: 7, DurationSec: 5,
			Pattern: Pattern{Kind: Steady, RPS: 400},
			Mix:     []MixEntry{{Kind: KindPredict, Weight: 1}},
			Tenants: 1000, ZipfS: 1.1,
		},
		"diurnal-default-mix": {
			Seed: 7, DurationSec: 5,
			Pattern: Pattern{Kind: Diurnal, RPS: 400, Amplitude: 0.5, PeriodSec: 2},
			Mix:     DefaultMix(),
			Tenants: 1000, ZipfS: 1.1,
		},
		"burst-mixed-control": {
			Seed: 7, DurationSec: 5,
			Pattern: Pattern{Kind: Burst, RPS: 300, Amplitude: 4, PeriodSec: 2, DutySec: 0.5},
			Mix: []MixEntry{
				{Kind: KindPredict, Weight: 0.90},
				{Kind: KindAbsorb, Weight: 0.06},
				{Kind: KindCatalog, Weight: 0.04},
			},
			Tenants: 50, ZipfS: 1.2,
		},
		"ramp": {
			Seed: 7, DurationSec: 5,
			Pattern: Pattern{Kind: Ramp, RPS: 100, EndRPS: 800},
			Mix:     DefaultMix(),
			Tenants: 1000, ZipfS: 0,
		},
	}
}

// TestScheduleDeterminismMatrix pins the tentpole contract: identical
// seed+pattern produce byte-identical schedules and histogram buckets at
// every evaluation worker count (1/4/16), including the mixed
// absorb/catalog arm — the loadgen analogue of TestReplayModesByteIdentical.
func TestScheduleDeterminismMatrix(t *testing.T) {
	tc := TunerConfig{
		TargetP99MS: 50,
		Queues:      []int{64, 256},
		Batches:     []int{16},
		Sheds:       []float64{0, 0.5},
	}
	for name, cfg := range matrixConfigs() {
		t.Run(name, func(t *testing.T) {
			sched, err := Schedule(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(sched) == 0 {
				t.Fatal("empty schedule")
			}
			ref := EncodeSchedule(sched)
			again, err := Schedule(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if EncodeSchedule(again) != ref {
				t.Fatal("regenerated schedule differs from itself")
			}

			var refCells []Cell
			for _, workers := range []int{1, 4, 16} {
				cells, err := Sweep(cfg, tc, workers)
				if err != nil {
					t.Fatal(err)
				}
				if workers == 1 {
					refCells = cells
					continue
				}
				if len(cells) != len(refCells) {
					t.Fatalf("workers=%d: %d cells, want %d", workers, len(cells), len(refCells))
				}
				for i := range cells {
					if cells[i].Knobs != refCells[i].Knobs {
						t.Fatalf("workers=%d cell %d: knobs %+v != %+v", workers, i, cells[i].Knobs, refCells[i].Knobs)
					}
					if got, want := cells[i].Report.Hist.Encode(), refCells[i].Report.Hist.Encode(); got != want {
						t.Errorf("workers=%d cell %d: goodput histogram differs", workers, i)
					}
					if got, want := cells[i].Report.ControlHist.Encode(), refCells[i].Report.ControlHist.Encode(); got != want {
						t.Errorf("workers=%d cell %d: control histogram differs", workers, i)
					}
					if cells[i].Report.Good != refCells[i].Report.Good ||
						cells[i].Report.Shed != refCells[i].Report.Shed ||
						cells[i].Report.Rejected != refCells[i].Report.Rejected {
						t.Errorf("workers=%d cell %d: outcome counts differ", workers, i)
					}
				}
			}
		})
	}
}

// TestScheduleMixAndPriorities checks the schedule's attribute invariants:
// mixed kinds all appear, arrivals are time-ordered, control traffic and the
// premium decile carry priority 0, and everything else is best-effort.
func TestScheduleMixAndPriorities(t *testing.T) {
	cfg := matrixConfigs()["burst-mixed-control"]
	sched, err := Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	premium := premiumTenants(cfg.Tenants)
	counts := map[Kind]int{}
	last := -1.0
	for _, a := range sched {
		if a.AtMS < last {
			t.Fatalf("arrivals out of order: %v after %v", a.AtMS, last)
		}
		last = a.AtMS
		counts[a.Kind]++
		if a.Tenant < 0 || a.Tenant >= cfg.Tenants {
			t.Fatalf("tenant %d out of range", a.Tenant)
		}
		switch {
		case a.Kind != KindPredict && a.Priority != 0:
			t.Fatalf("control arrival with priority %d", a.Priority)
		case a.Kind == KindPredict && a.Tenant < premium && a.Priority != 0:
			t.Fatalf("premium tenant %d with priority %d", a.Tenant, a.Priority)
		case a.Kind == KindPredict && a.Tenant >= premium && a.Priority != 1:
			t.Fatalf("best-effort tenant %d with priority %d", a.Tenant, a.Priority)
		}
	}
	for _, k := range []Kind{KindPredict, KindAbsorb, KindCatalog} {
		if counts[k] == 0 {
			t.Errorf("no %s arrivals in mixed schedule (total %d)", k, len(sched))
		}
	}
}

// TestRunConservation pins the overload accounting: every offered request is
// answered exactly once whatever its fate, and overload actually produces
// sheds/rejects rather than unbounded queueing.
func TestRunConservation(t *testing.T) {
	cfg := Config{
		Seed: 3, DurationSec: 5,
		Pattern: Pattern{Kind: Burst, RPS: 1000, Amplitude: 8, PeriodSec: 2, DutySec: 1},
		Mix:     DefaultMix(),
		Tenants: 1000, ZipfS: 1.1,
	}
	k := DefaultKnobs()
	k.QueueDepth = 64
	k.ShedThreshold = 0.5
	rep, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 {
		t.Fatal("no offered load")
	}
	if rep.Answered() != rep.Offered {
		t.Fatalf("answered %d != offered %d (good=%d shed=%d rej=%d cancel=%d timeout=%d)",
			rep.Answered(), rep.Offered, rep.Good, rep.Shed, rep.Rejected, rep.Canceled, rep.Timeout)
	}
	if rep.Shed == 0 {
		t.Error("8x burst into a 64-deep queue with shedding on shed nothing")
	}
	if rep.Good == 0 {
		t.Error("no goodput at all")
	}
	if int64(rep.Hist.Count()) != rep.Good-goodControl(rep) {
		t.Fatalf("goodput histogram count %d != data-plane good %d", rep.Hist.Count(), rep.Good-goodControl(rep))
	}
	if rep.QueueMax > k.QueueDepth {
		t.Fatalf("queue max %d exceeded depth %d", rep.QueueMax, k.QueueDepth)
	}
	if rep.BatchMax > k.BatchSize {
		t.Fatalf("batch max %d exceeded batch size %d", rep.BatchMax, k.BatchSize)
	}
}

// goodControl counts the control-plane completions inside Report.Good.
func goodControl(rep *Report) int64 { return rep.ControlHist.Count() }

// TestPriorityShedSparesPremium: with shedding enabled, only best-effort
// predicts are shed; disabling the threshold sheds nothing and pushes the
// overflow into hard rejects instead.
func TestPriorityShedSparesPremium(t *testing.T) {
	cfg := Config{
		Seed: 11, DurationSec: 4,
		Pattern: Pattern{Kind: Steady, RPS: 3000},
		Mix:     []MixEntry{{Kind: KindPredict, Weight: 1}},
		Tenants: 100, ZipfS: 1.1,
	}
	sched, err := Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := DefaultKnobs()
	k.QueueDepth = 32

	k.ShedThreshold = 0.5
	withShed, err := replaySim(cfg, k, sched)
	if err != nil {
		t.Fatal(err)
	}
	k.ShedThreshold = 0
	noShed, err := replaySim(cfg, k, sched)
	if err != nil {
		t.Fatal(err)
	}
	if withShed.Shed == 0 {
		t.Fatal("overloaded run with threshold 0.5 shed nothing")
	}
	if noShed.Shed != 0 {
		t.Fatalf("threshold 0 shed %d requests", noShed.Shed)
	}
	if noShed.Rejected == 0 {
		t.Error("threshold 0 under overload produced no hard rejects")
	}
}

// TestEpochInvalidation: control traffic bumps epochs and the cache still
// earns hits between bumps on a hot-tenant mix.
func TestEpochInvalidation(t *testing.T) {
	rep, err := Run(matrixConfigs()["burst-mixed-control"], DefaultKnobs())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs == 0 {
		t.Fatal("mixed run produced no epoch bumps")
	}
	if rep.Epochs != rep.Absorbs+rep.Catalogs {
		t.Fatalf("epochs %d != absorbs %d + catalogs %d", rep.Epochs, rep.Absorbs, rep.Catalogs)
	}
	if rep.CacheHits == 0 {
		t.Error("hot-tenant run earned no cache hits")
	}
}

// TestBestAndCapacityPlan exercises the tuner surface end to end on a small
// grid: Best returns a meeting cell when one exists, and the capacity plan is
// monotone in offered load.
func TestBestAndCapacityPlan(t *testing.T) {
	cfg := Config{
		Seed: 5, DurationSec: 5,
		Pattern: Pattern{Kind: Steady, RPS: 300},
		Mix:     DefaultMix(),
		Tenants: 1000, ZipfS: 1.1,
	}
	cells, err := Sweep(cfg, TunerConfig{
		TargetP99MS: 200,
		Queues:      []int{64, 256},
		Batches:     []int{16},
		Sheds:       []float64{0},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	best, err := Best(cells)
	if err != nil {
		t.Fatal(err)
	}
	anyMeets := false
	for _, c := range cells {
		anyMeets = anyMeets || c.Meets
	}
	if anyMeets && !best.Meets {
		t.Fatal("Best skipped a meeting cell")
	}
	for _, c := range cells {
		if c.Meets && c.Report.GoodRPS > best.Report.GoodRPS {
			t.Fatalf("Best missed higher goodput: %v > %v", c.Report.GoodRPS, best.Report.GoodRPS)
		}
	}

	plan, err := CapacityPlan(cfg, best.Knobs, 200, []float64{100, 10000, 1000000})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NodeCapacityRPS <= 0 {
		t.Fatalf("node capacity %v", plan.NodeCapacityRPS)
	}
	prev := 0
	for _, row := range plan.Rows {
		if row.Nodes < 1 || row.Nodes < prev {
			t.Fatalf("plan not monotone: %+v", plan.Rows)
		}
		prev = row.Nodes
		want := int(math.Ceil(row.OfferedRPS / (plan.NodeCapacityRPS * plan.Headroom)))
		if want < 1 {
			want = 1
		}
		if row.Nodes != want {
			t.Fatalf("row %+v: want %d nodes", row, want)
		}
	}
}

// TestParseConfigRejects pins the strict-parse boundary the fuzz target
// hammers.
func TestParseConfigRejects(t *testing.T) {
	cases := map[string]string{
		"not json":          `{{`,
		"unknown field":     `{"seed":1,"duration_sec":1,"pattern":{"kind":"steady","rps":10},"mix":[{"kind":"predict","weight":1}],"tenants":1,"zipf_s":0,"bogus":1}`,
		"trailing garbage":  `{"seed":1,"duration_sec":1,"pattern":{"kind":"steady","rps":10},"mix":[{"kind":"predict","weight":1}],"tenants":1,"zipf_s":0} extra`,
		"nan rate":          `{"duration_sec":1,"pattern":{"kind":"steady","rps":null},"mix":[{"kind":"predict","weight":1}],"tenants":1}`,
		"negative duration": `{"duration_sec":-3,"pattern":{"kind":"steady","rps":10},"mix":[{"kind":"predict","weight":1}],"tenants":1}`,
		"empty mix":         `{"duration_sec":1,"pattern":{"kind":"steady","rps":10},"mix":[],"tenants":1}`,
		"duplicate mix":     `{"duration_sec":1,"pattern":{"kind":"steady","rps":10},"mix":[{"kind":"predict","weight":1},{"kind":"predict","weight":1}],"tenants":1}`,
		"zero-weight mix":   `{"duration_sec":1,"pattern":{"kind":"steady","rps":10},"mix":[{"kind":"predict","weight":0}],"tenants":1}`,
		"unknown kind":      `{"duration_sec":1,"pattern":{"kind":"steady","rps":10},"mix":[{"kind":"teleport","weight":1}],"tenants":1}`,
		"unknown pattern":   `{"duration_sec":1,"pattern":{"kind":"wobble","rps":10},"mix":[{"kind":"predict","weight":1}],"tenants":1}`,
		"unknown app":       `{"duration_sec":1,"pattern":{"kind":"steady","rps":10},"mix":[{"kind":"predict","weight":1}],"tenants":1,"apps":["NoSuch-app"]}`,
		"zero tenants":      `{"duration_sec":1,"pattern":{"kind":"steady","rps":10},"mix":[{"kind":"predict","weight":1}],"tenants":0}`,
	}
	for name, raw := range cases {
		if _, err := ParseConfig([]byte(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	good := `{"seed":1,"duration_sec":1,"pattern":{"kind":"steady","rps":10},"mix":[{"kind":"predict","weight":1}],"tenants":5,"zipf_s":1.1}`
	cfg, err := ParseConfig([]byte(good))
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if cfg.Pattern.RPS != 10 || cfg.Tenants != 5 {
		t.Fatalf("parsed config mangled: %+v", cfg)
	}
}

// TestRenderReportDeterministic renders a miniature report twice and compares
// bytes — the in-process version of the `make loadgen-report` double-run diff.
func TestRenderReportDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("report render sweeps the tuner grid")
	}
	spec := ReportSpec{
		Seed:        1,
		TargetP99MS: 100,
		Loads:       []float64{200, 800},
		PlanLoads:   []float64{1000, 1000000},
		DurationSec: 5,
		Tenants:     500,
		ZipfS:       1.1,
	}
	a, err := RenderReport(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.EvalWorkers = 16
	b, err := RenderReport(spec)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("report bytes differ across runs/worker counts")
	}
	for _, want := range []string{"steady", "diurnal", "burst", "ramp", "Winner:", "nodes"} {
		if !strings.Contains(string(a), want) {
			t.Errorf("report missing %q", want)
		}
	}
}
