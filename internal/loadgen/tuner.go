package loadgen

import (
	"fmt"
	"math"

	"vesta/internal/parallel"
)

// TunerConfig bounds the admission auto-tuner's sweep.
type TunerConfig struct {
	// TargetP99MS is the latency objective ("P99 < X ms").
	TargetP99MS float64
	// Queues, Batches, Sheds enumerate the grid; empty slices take the
	// defaults below.
	Queues  []int
	Batches []int
	Sheds   []float64
	// Workers is the modeled per-node pool (constant across the grid);
	// <= 0 takes DefaultKnobs().Workers.
	Workers int
	// TimeoutMS and CacheSize carry into every cell; <= 0 take defaults.
	TimeoutMS float64
	CacheSize int
}

// Default grid: queue depth spans an order of magnitude around the serve
// default, batch sizes bracket the dispatcher default, shed thresholds span
// off / early / late / full-only.
var (
	defaultQueues  = []int{64, 256, 1024}
	defaultBatches = []int{8, 16, 32}
	defaultSheds   = []float64{0, 0.5, 0.9}
)

func (tc TunerConfig) fill() TunerConfig {
	def := DefaultKnobs()
	if len(tc.Queues) == 0 {
		tc.Queues = defaultQueues
	}
	if len(tc.Batches) == 0 {
		tc.Batches = defaultBatches
	}
	if len(tc.Sheds) == 0 {
		tc.Sheds = defaultSheds
	}
	if tc.Workers <= 0 {
		tc.Workers = def.Workers
	}
	if tc.TimeoutMS <= 0 {
		tc.TimeoutMS = def.TimeoutMS
	}
	if tc.CacheSize <= 0 {
		tc.CacheSize = def.CacheSize
	}
	return tc
}

// Cell is one tuner grid point and its outcome.
type Cell struct {
	Knobs  Knobs
	Report *Report
	// P99 is the goodput P99 (ms) — the objective surface.
	P99 float64
	// Meets reports whether the cell satisfies the target with a healthy
	// error budget (sheds+rejects+cancels+timeouts <= 1% of offered load).
	Meets bool
}

// Sweep evaluates the full (queue, batch, shed) grid against one traffic
// config. The schedule is generated once and replayed per cell; cells fan
// out on the parallel pool at evalWorkers — results are byte-identical at
// every value (grid order is fixed, each cell is a pure function of
// (cfg, knobs)).
func Sweep(cfg Config, tc TunerConfig, evalWorkers int) ([]Cell, error) {
	tc = tc.fill()
	sched, err := Schedule(cfg)
	if err != nil {
		return nil, err
	}
	var grid []Knobs
	for _, q := range tc.Queues {
		for _, b := range tc.Batches {
			for _, s := range tc.Sheds {
				grid = append(grid, Knobs{
					QueueDepth:    q,
					BatchSize:     b,
					Workers:       tc.Workers,
					ShedThreshold: s,
					TimeoutMS:     tc.TimeoutMS,
					CacheSize:     tc.CacheSize,
				})
			}
		}
	}
	cells, err := parallel.MapErr(evalWorkers, len(grid), func(i int) (Cell, error) {
		rep, err := replaySim(cfg, grid[i], sched)
		if err != nil {
			return Cell{}, err
		}
		return newCell(grid[i], rep, tc.TargetP99MS), nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// errorBudget is the tolerated non-goodput fraction of offered load for a
// cell (or capacity probe) to count as meeting the objective.
const errorBudget = 0.01

func newCell(k Knobs, rep *Report, targetP99 float64) Cell {
	p99 := rep.Hist.Quantile(0.99)
	bad := rep.Shed + rep.Rejected + rep.Canceled + rep.Timeout
	meets := p99 <= targetP99 && float64(bad) <= errorBudget*float64(rep.Offered)
	return Cell{Knobs: k, Report: rep, P99: p99, Meets: meets}
}

// Best picks the winning cell: among cells meeting the target, the highest
// goodput (ties: lower P99, then smaller queue, batch, shed in grid order —
// cheapest configuration wins). With no cell meeting the target it falls
// back to the lowest P99 (ties: higher goodput). Deterministic: pure
// function of the cell slice.
func Best(cells []Cell) (Cell, error) {
	if len(cells) == 0 {
		return Cell{}, fmt.Errorf("loadgen: empty sweep")
	}
	best := -1
	for i, c := range cells {
		if !c.Meets {
			continue
		}
		if best < 0 || better(c, cells[best]) {
			best = i
		}
	}
	if best >= 0 {
		return cells[best], nil
	}
	// Nothing meets the target: report the least-bad latency, breaking ties
	// by goodput so a strictly more productive cell at the same P99 wins.
	best = 0
	for i := 1; i < len(cells); i++ {
		c, b := cells[i], cells[best]
		if c.P99 < b.P99 || (c.P99 == b.P99 && c.Report.GoodRPS > b.Report.GoodRPS) {
			best = i
		}
	}
	return cells[best], nil
}

func better(a, b Cell) bool {
	if a.Report.GoodRPS != b.Report.GoodRPS {
		return a.Report.GoodRPS > b.Report.GoodRPS
	}
	if a.P99 != b.P99 {
		return a.P99 < b.P99
	}
	return false // earlier grid cell (smaller knobs) keeps winning ties
}

// Plan is a capacity plan: how many nodes a fleet needs for each offered
// load so that per-node P99 stays under the target.
type Plan struct {
	// TargetP99MS is the latency objective the plan holds.
	TargetP99MS float64
	// Knobs is the per-node configuration the plan assumes (the tuner's
	// winning cell).
	Knobs Knobs
	// NodeCapacityRPS is the maximum steady per-node offered load meeting
	// the objective within the error budget.
	NodeCapacityRPS float64
	// Headroom is the utilization fraction the node count is provisioned at
	// (0.8: a node is planned to carry 80% of its measured capacity).
	Headroom float64
	// Rows maps each requested fleet load to a node count.
	Rows []PlanRow
}

// PlanRow is one capacity-plan line: M req/s needs Nodes nodes.
type PlanRow struct {
	OfferedRPS float64
	Nodes      int
}

// planHeadroom is the provisioning margin: capacity is de-rated 20% so
// diurnal peaks and failover surges don't immediately violate the target.
const planHeadroom = 0.8

// CapacityPlan bisects the steady-state per-node capacity under knobs (the
// largest offered RPS whose P99 meets the target within the error budget)
// and sizes a fleet for each requested load. The probe traffic reuses cfg's
// seed, mix, tenants, and skew at a fixed 30-second steady pattern, so the
// plan is a pure function of (cfg, knobs, target, loads).
func CapacityPlan(cfg Config, k Knobs, targetP99MS float64, loads []float64) (*Plan, error) {
	if !finitePos(targetP99MS) {
		return nil, fmt.Errorf("loadgen: target P99 %v ms (want finite > 0)", targetP99MS)
	}
	probe := func(rps float64) (bool, error) {
		pc := cfg
		pc.DurationSec = 30
		pc.Pattern = Pattern{Kind: Steady, RPS: rps}
		rep, err := Run(pc, k)
		if err != nil {
			return false, err
		}
		c := newCell(k, rep, targetP99MS)
		return c.Meets, nil
	}
	// Bracket then bisect in log space: 40 fixed iterations pin the result
	// deterministically to well under 1% of capacity.
	lo, hi := 1.0, 1e6
	okLo, err := probe(lo)
	if err != nil {
		return nil, err
	}
	if !okLo {
		return nil, fmt.Errorf("loadgen: node cannot meet P99 %.1f ms even at %.0f req/s", targetP99MS, lo)
	}
	for i := 0; i < 40 && hi/lo > 1.005; i++ {
		mid := math.Sqrt(lo * hi)
		ok, err := probe(mid)
		if err != nil {
			return nil, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	plan := &Plan{
		TargetP99MS:     targetP99MS,
		Knobs:           k,
		NodeCapacityRPS: lo,
		Headroom:        planHeadroom,
	}
	for _, m := range loads {
		if !finitePos(m) {
			return nil, fmt.Errorf("loadgen: plan load %v req/s (want finite > 0)", m)
		}
		nodes := int(math.Ceil(m / (lo * planHeadroom)))
		if nodes < 1 {
			nodes = 1
		}
		plan.Rows = append(plan.Rows, PlanRow{OfferedRPS: m, Nodes: nodes})
	}
	return plan, nil
}
