package loadgen

import (
	"testing"
)

// FuzzLoadgenConfig hammers the strict JSON boundary: arbitrary bytes never
// panic, and anything ParseConfig accepts re-validates, re-schedules
// deterministically, and keeps its arrivals inside the configured run.
// Checked-in corpus: testdata/fuzz/FuzzLoadgenConfig.
func FuzzLoadgenConfig(f *testing.F) {
	f.Add([]byte(`{"seed":1,"duration_sec":1,"pattern":{"kind":"steady","rps":10},"mix":[{"kind":"predict","weight":1}],"tenants":5,"zipf_s":1.1}`))
	f.Add([]byte(`{"duration_sec":2,"pattern":{"kind":"burst","rps":5,"amplitude":4,"period_sec":1,"duty_sec":0.25},"mix":[{"kind":"predict","weight":0.9},{"kind":"absorb","weight":0.06},{"kind":"catalog","weight":0.04}],"tenants":10,"zipf_s":1.2}`))
	f.Add([]byte(`{"duration_sec":1,"pattern":{"kind":"diurnal","rps":8,"amplitude":0.5,"period_sec":1},"mix":[{"kind":"predict","weight":1}],"tenants":3}`))
	f.Add([]byte(`{"duration_sec":1,"pattern":{"kind":"ramp","rps":1,"end_rps":20},"mix":[{"kind":"predict","weight":1}],"tenants":3}`))
	f.Add([]byte(`{"duration_sec":1e308,"pattern":{"kind":"steady","rps":1e308},"mix":[{"kind":"predict","weight":1}],"tenants":1}`))
	f.Add([]byte(`{"duration_sec":-1}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ParseConfig(data)
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("accepted config fails Validate: %v", verr)
		}
		// Only schedule bounded workloads: the schedule is ~peak*duration
		// arrivals and the fuzzer will happily ask for 1e308 of them.
		if cfg.Pattern.peakRate(cfg.DurationSec)*cfg.DurationSec > 20000 {
			return
		}
		a, err := Schedule(cfg)
		if err != nil {
			t.Fatalf("valid config failed to schedule: %v", err)
		}
		b, err := Schedule(cfg)
		if err != nil {
			t.Fatalf("second schedule failed: %v", err)
		}
		if EncodeSchedule(a) != EncodeSchedule(b) {
			t.Fatal("schedule not deterministic")
		}
		limit := cfg.DurationSec * 1000
		for _, arr := range a {
			if arr.AtMS < 0 || arr.AtMS >= limit {
				t.Fatalf("arrival at %v ms outside [0, %v)", arr.AtMS, limit)
			}
			if arr.Tenant < 0 || arr.Tenant >= cfg.Tenants {
				t.Fatalf("tenant %d outside [0, %d)", arr.Tenant, cfg.Tenants)
			}
		}
	})
}
