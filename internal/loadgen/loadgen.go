// Package loadgen is the deterministic open-loop traffic generator of the
// serving stack (DESIGN.md §15, ROADMAP item 5).
//
// Open-loop means arrivals follow a fixed schedule derived exclusively from
// (seed, pattern, duration): a slow server does not slow the offered load
// down, it falls behind — the regime where queue-depth, batch-size, and shed
// decisions actually matter, and the opposite of the closed-loop bench that
// replayed 32 requests from 64 clients. The schedule is a pure function of
// the Config, so every run, report, and tuner sweep regenerates
// byte-identically at any evaluation worker count.
//
// Three layers:
//
//   - Schedule: a non-homogeneous Poisson arrival process (Lewis-Shedler
//     thinning) over composable rate patterns — steady, diurnal sine,
//     square-wave burst, ramp — with heavy-tailed (Zipf) per-tenant workload
//     popularity and a configurable predict/absorb/catalog traffic mix, so
//     hot-swap and cache-invalidation paths see load too.
//   - Engine (engine.go): a virtual-time discrete-event model of the serve
//     admission pipeline (bounded queue, dispatcher batching, worker
//     makespan, response cache with epoch invalidation, priority shed,
//     deadlines) that turns a schedule into latency histograms and
//     goodput/shed/timeout accounting without wall-clock noise.
//   - Tuner (tuner.go): a seeded sweep over (queue depth, batch size, shed
//     threshold) against a target P99, and a capacity plan ("N nodes for
//     M req/s at P99 < X ms") built from the best cell.
//
// Replay (live.go) drives the same schedule against a real *serve.Server
// in-process — wall-clock latencies, outside the determinism contract, for
// soak tests and the overload-contract suite.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"vesta/internal/rng"
	"vesta/internal/workload"
)

// Kind classifies one generated request.
type Kind string

// The three traffic kinds of a mix.
const (
	KindPredict Kind = "predict" // data plane: POST /predict
	KindAbsorb  Kind = "absorb"  // control plane: POST /absorb (epoch bump, cache invalidation)
	KindCatalog Kind = "catalog" // control plane: POST /catalog (catalog version bump)
)

// PatternKind names a rate shape.
type PatternKind string

// The composable rate patterns.
const (
	Steady  PatternKind = "steady"  // constant RPS
	Diurnal PatternKind = "diurnal" // RPS * (1 + Amplitude*sin(2πt/Period))
	Burst   PatternKind = "burst"   // square wave: RPS*Amplitude for DutySec of every PeriodSec, else RPS
	Ramp    PatternKind = "ramp"    // linear RPS -> EndRPS over the duration
)

// Pattern is one rate shape. Fields beyond Kind and RPS apply per kind and
// are validated accordingly.
type Pattern struct {
	Kind PatternKind `json:"kind"`
	// RPS is the base arrival rate in requests per second (> 0, finite).
	RPS float64 `json:"rps"`
	// Amplitude is the diurnal swing as a fraction of RPS in [0, 1), or the
	// burst multiplier (>= 1).
	Amplitude float64 `json:"amplitude,omitempty"`
	// PeriodSec is the diurnal/burst period (> 0 for those kinds).
	PeriodSec float64 `json:"period_sec,omitempty"`
	// DutySec is the burst on-duration within each period (0 < DutySec <=
	// PeriodSec).
	DutySec float64 `json:"duty_sec,omitempty"`
	// EndRPS is the ramp's final rate (>= 0, finite).
	EndRPS float64 `json:"end_rps,omitempty"`
}

// RateAt returns the instantaneous offered rate (req/s) at t seconds into a
// run of the given total duration. Pure and branch-stable: the schedule
// depends only on (Config), never on the clock.
func (p Pattern) RateAt(t, durationSec float64) float64 {
	switch p.Kind {
	case Steady:
		return p.RPS
	case Diurnal:
		return p.RPS * (1 + p.Amplitude*math.Sin(2*math.Pi*t/p.PeriodSec))
	case Burst:
		phase := math.Mod(t, p.PeriodSec)
		if phase < p.DutySec {
			return p.RPS * p.Amplitude
		}
		return p.RPS
	case Ramp:
		if durationSec <= 0 {
			return p.RPS
		}
		return p.RPS + (p.EndRPS-p.RPS)*(t/durationSec)
	default:
		return 0
	}
}

// peakRate bounds RateAt over [0, durationSec] — the thinning majorant.
func (p Pattern) peakRate(durationSec float64) float64 {
	switch p.Kind {
	case Steady:
		return p.RPS
	case Diurnal:
		return p.RPS * (1 + p.Amplitude)
	case Burst:
		return p.RPS * p.Amplitude
	case Ramp:
		return math.Max(p.RPS, p.EndRPS)
	default:
		return 0
	}
}

// validate checks the pattern's invariants.
func (p Pattern) validate() error {
	if !finitePos(p.RPS) {
		return fmt.Errorf("loadgen: pattern rps %v (want finite > 0)", p.RPS)
	}
	switch p.Kind {
	case Steady:
	case Diurnal:
		if math.IsNaN(p.Amplitude) || p.Amplitude < 0 || p.Amplitude >= 1 {
			return fmt.Errorf("loadgen: diurnal amplitude %v (want [0, 1))", p.Amplitude)
		}
		if !finitePos(p.PeriodSec) {
			return fmt.Errorf("loadgen: diurnal period %v (want finite > 0)", p.PeriodSec)
		}
	case Burst:
		if math.IsNaN(p.Amplitude) || p.Amplitude < 1 || math.IsInf(p.Amplitude, 0) {
			return fmt.Errorf("loadgen: burst amplitude %v (want finite >= 1)", p.Amplitude)
		}
		if !finitePos(p.PeriodSec) {
			return fmt.Errorf("loadgen: burst period %v (want finite > 0)", p.PeriodSec)
		}
		if !finitePos(p.DutySec) || p.DutySec > p.PeriodSec {
			return fmt.Errorf("loadgen: burst duty %v (want 0 < duty <= period %v)", p.DutySec, p.PeriodSec)
		}
	case Ramp:
		if math.IsNaN(p.EndRPS) || math.IsInf(p.EndRPS, 0) || p.EndRPS < 0 {
			return fmt.Errorf("loadgen: ramp end_rps %v (want finite >= 0)", p.EndRPS)
		}
	default:
		return fmt.Errorf("loadgen: unknown pattern kind %q", p.Kind)
	}
	return nil
}

func finitePos(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0) && x > 0
}

// MixEntry weights one traffic kind within a mix.
type MixEntry struct {
	Kind   Kind    `json:"kind"`
	Weight float64 `json:"weight"`
}

// Config describes one generated workload. The schedule is a pure function
// of this value.
type Config struct {
	// Seed drives every random draw (arrivals, tenants, apps, kinds,
	// per-request seeds, service-time noise in the engine).
	Seed uint64 `json:"seed"`
	// DurationSec is the virtual length of the run (> 0, finite).
	DurationSec float64 `json:"duration_sec"`
	Pattern     Pattern `json:"pattern"`
	// Mix weights the predict/absorb/catalog traffic. Weights must be finite
	// and >= 0 with a positive sum; duplicate kinds are rejected.
	Mix []MixEntry `json:"mix"`
	// Tenants is the tenant population (> 0). Tenant popularity is
	// Zipf(ZipfS): tenant 0 is the hottest.
	Tenants int `json:"tenants"`
	// ZipfS is the Zipf skew exponent (>= 0, finite; 0 = uniform). Production
	// request mixes are strongly skewed — 1.1 is the report default.
	ZipfS float64 `json:"zipf_s"`
	// Apps restricts the candidate applications (Table 3 names); empty takes
	// every application. Each tenant favors a rotated Zipf over this list, so
	// popularity is heavy-tailed per tenant and across tenants.
	Apps []string `json:"apps,omitempty"`
}

// DefaultMix is the report's traffic mix: predict-dominant with enough
// absorb/catalog traffic to keep hot-swap and cache invalidation honest
// (at 2000 req/s the default still hot-swaps a few times per second).
func DefaultMix() []MixEntry {
	return []MixEntry{
		{Kind: KindPredict, Weight: 0.997},
		{Kind: KindAbsorb, Weight: 0.002},
		{Kind: KindCatalog, Weight: 0.001},
	}
}

// Validate checks every invariant the fuzz target exercises: NaN/Inf rates,
// non-positive durations, empty or degenerate mixes, unknown kinds.
func (c Config) Validate() error {
	if !finitePos(c.DurationSec) {
		return fmt.Errorf("loadgen: duration %v (want finite > 0)", c.DurationSec)
	}
	if err := c.Pattern.validate(); err != nil {
		return err
	}
	if len(c.Mix) == 0 {
		return fmt.Errorf("loadgen: empty mix")
	}
	seen := map[Kind]bool{}
	total := 0.0
	for _, m := range c.Mix {
		switch m.Kind {
		case KindPredict, KindAbsorb, KindCatalog:
		default:
			return fmt.Errorf("loadgen: unknown mix kind %q", m.Kind)
		}
		if seen[m.Kind] {
			return fmt.Errorf("loadgen: duplicate mix kind %q", m.Kind)
		}
		seen[m.Kind] = true
		if math.IsNaN(m.Weight) || math.IsInf(m.Weight, 0) || m.Weight < 0 {
			return fmt.Errorf("loadgen: mix weight %v for %q (want finite >= 0)", m.Weight, m.Kind)
		}
		total += m.Weight
	}
	if total <= 0 {
		return fmt.Errorf("loadgen: mix weights sum to %v (want > 0)", total)
	}
	if c.Tenants <= 0 {
		return fmt.Errorf("loadgen: tenants %d (want > 0)", c.Tenants)
	}
	if math.IsNaN(c.ZipfS) || math.IsInf(c.ZipfS, 0) || c.ZipfS < 0 {
		return fmt.Errorf("loadgen: zipf_s %v (want finite >= 0)", c.ZipfS)
	}
	for _, name := range c.Apps {
		if _, err := workload.ByName(name); err != nil {
			return fmt.Errorf("loadgen: unknown app %q", name)
		}
	}
	return nil
}

// ParseConfig decodes a JSON config strictly (unknown fields and trailing
// garbage are errors) and validates it — the boundary FuzzLoadgenConfig
// hammers: malformed bytes never panic, always a typed error.
func ParseConfig(data []byte) (Config, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("loadgen: parsing config: %w", err)
	}
	if dec.More() {
		return Config{}, fmt.Errorf("loadgen: trailing data after config object")
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Arrival is one scheduled request. The slice Schedule returns is sorted by
// AtMS and is a pure function of the Config.
type Arrival struct {
	// AtMS is the virtual arrival time in milliseconds since run start.
	AtMS float64
	Kind Kind
	// Tenant is the originating tenant id (0 = hottest).
	Tenant int
	// App is the Table 3 application name (predict/absorb traffic).
	App string
	// Seed is the per-request measurement seed (serve.Request.Seed).
	Seed uint64
	// Priority is the admission priority: 0 for control-plane traffic and the
	// premium tenant decile, 1 (best-effort, sheddable) for the rest.
	Priority int
}

// premiumTenants returns how many leading tenant ids count as premium
// (priority 0): the top decile, at least one.
func premiumTenants(tenants int) int {
	if p := tenants / 10; p > 0 {
		return p
	}
	return 1
}

// zipf is a precomputed discrete Zipf sampler over [0, n).
type zipf struct {
	cum []float64 // cumulative normalized weights
}

func newZipf(n int, s float64) *zipf {
	z := &zipf{cum: make([]float64, n)}
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		z.cum[i] = total
	}
	for i := range z.cum {
		z.cum[i] /= total
	}
	return z
}

// draw maps one uniform [0,1) variate to a rank.
func (z *zipf) draw(u float64) int {
	return sort.SearchFloat64s(z.cum, u)
}

// Schedule generates the full arrival schedule: a non-homogeneous Poisson
// process at Pattern's rate (Lewis-Shedler thinning against the pattern's
// peak rate), each accepted arrival attributed from its own split rng stream
// so the attribute draws are independent of the thinning stream's length.
func Schedule(cfg Config) ([]Arrival, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	apps := cfg.Apps
	if len(apps) == 0 {
		for _, a := range workload.All() {
			apps = append(apps, a.Name)
		}
	}
	root := rng.New(cfg.Seed)
	thin := root.Jump() // arrival-time stream; root keeps splitting attributes
	tenantZipf := newZipf(cfg.Tenants, cfg.ZipfS)
	appZipf := newZipf(len(apps), cfg.ZipfS)
	kinds := make([]Kind, len(cfg.Mix))
	weights := make([]float64, len(cfg.Mix))
	for i, m := range cfg.Mix {
		kinds[i] = m.Kind
		weights[i] = m.Weight
	}
	peak := cfg.Pattern.peakRate(cfg.DurationSec)
	premium := premiumTenants(cfg.Tenants)

	var out []Arrival
	t := 0.0 // seconds
	for i := uint64(0); ; i++ {
		// Exponential inter-arrival at the majorant rate.
		t += -math.Log(1-thin.Float64()) / peak
		if t >= cfg.DurationSec {
			break
		}
		accept := thin.Float64() < cfg.Pattern.RateAt(t, cfg.DurationSec)/peak
		if !accept {
			continue
		}
		attr := root.Split(i)
		tenant := tenantZipf.draw(attr.Float64())
		// Each tenant rotates the app popularity ladder, so the global mix is
		// heavy-tailed while tenants disagree about which apps are hot.
		app := apps[(appZipf.draw(attr.Float64())+tenantRotation(tenant, len(apps)))%len(apps)]
		kind := kinds[attr.Pick(weights)]
		pri := 0
		if kind == KindPredict && tenant >= premium {
			pri = 1
		}
		out = append(out, Arrival{
			AtMS:   t * 1000,
			Kind:   kind,
			Tenant: tenant,
			App:    app,
			// The request seed is tenant-derived: a tenant repeating a query
			// re-presents the same (app, seed) fingerprint, so hot tenants
			// exercise the response cache (and absorbs exercise its epoch
			// invalidation) instead of generating all-distinct misses.
			Seed:     uint64(tenant)%1024 + 1,
			Priority: pri,
		})
	}
	return out, nil
}

// tenantRotation offsets a tenant's app-popularity ladder deterministically.
func tenantRotation(tenant, napps int) int {
	x := uint64(tenant) ^ 0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(napps))
}

// EncodeSchedule renders a schedule as canonical text, one arrival per line —
// the byte-comparison surface of the determinism matrix.
func EncodeSchedule(sched []Arrival) string {
	var b strings.Builder
	for _, a := range sched {
		fmt.Fprintf(&b, "%016x %s t%d p%d %s s%d\n",
			math.Float64bits(a.AtMS), a.Kind, a.Tenant, a.Priority, a.App, a.Seed)
	}
	return b.String()
}
