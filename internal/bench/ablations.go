// Ablation studies for the design choices called out in DESIGN.md §5.
//
// Every sweep here is embarrassingly parallel: each configuration trains its
// own Vesta system with independent seeds and meters, so the rows fan out on
// the environment's worker pool and are collected in index order — the
// rendered table is byte-identical at every worker count.
package bench

import (
	"fmt"

	"vesta/internal/core"
	"vesta/internal/oracle"
	"vesta/internal/parallel"
	"vesta/internal/stats"
	"vesta/internal/workload"
)

// vestaMeanMAPE trains a Vesta variant and returns its mean Equation 7 MAPE
// and mean selection regret over the 12 Spark targets, plus the number of
// PCA-kept features. The per-target online predictions (one CMF solve each)
// run as a batch on the worker pool.
func vestaMeanMAPE(env *Env, cfg core.Config) (mape, regret float64, kept int) {
	truth := env.Truth("targets", workload.TargetSet())
	sys := trainVesta(env, cfg)
	targets := workload.TargetSet()
	preds, err := sys.PredictBatch(targets, func(int) oracle.Service { return env.Meter(0xE0) })
	if err != nil {
		panic(err)
	}
	var mapes, regrets []float64
	for i, app := range targets {
		mapes = append(mapes, selectionMAPE(truth, app.Name, preds[i].Best.Name, preds[i].PredictedSec[preds[i].Best.Name]))
		regrets = append(regrets, regretPct(truth, app.Name, preds[i].Best.Name))
	}
	return stats.Mean(mapes), stats.Mean(regrets), len(sys.Knowledge().Kept)
}

// sweepRow is one configuration's outcome in an ablation sweep.
type sweepRow struct {
	mape, regret float64
	kept         int
}

// sweepConfigs evaluates one Vesta configuration per index on the worker
// pool and returns the outcomes in index order.
func sweepConfigs(env *Env, n int, cfgAt func(i int) core.Config) []sweepRow {
	// Warm the shared ground-truth cache before fanning out so concurrent
	// tasks do not serialize behind its build.
	env.Truth("targets", workload.TargetSet())
	return parallel.Map(env.Workers, n, func(i int) sweepRow {
		mape, reg, kept := vestaMeanMAPE(env, cfgAt(i))
		return sweepRow{mape: mape, regret: reg, kept: kept}
	})
}

// AblationLambda sweeps the CMF tradeoff parameter around the paper's 0.75.
// The lambda = 0 row (pure source knowledge, no target reconstruction) is
// only configurable through the LambdaSet sentinel — a plain zero would be
// silently replaced by the 0.75 default.
func AblationLambda(env *Env) *Table {
	t := &Table{
		ID:      "ablation-lambda",
		Title:   "CMF tradeoff lambda vs target-set error",
		Columns: []string{"lambda", "mean MAPE(%)", "mean regret(%)"},
	}
	lambdas := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9}
	rows := sweepConfigs(env, len(lambdas), func(i int) core.Config {
		return core.Config{Lambda: lambdas[i], LambdaSet: true}
	})
	for i, lambda := range lambdas {
		t.AddRow(fmt.Sprintf("%.2f", lambda), rows[i].mape, rows[i].regret)
	}
	t.Notes = append(t.Notes,
		"paper: lambda = 0.75 chosen by best practice",
		"lambda = 0.00 ablates the target reconstruction entirely (pure-source transfer)")
	return t
}

// AblationInitRuns sweeps the number of randomly picked initialization VMs.
func AblationInitRuns(env *Env) *Table {
	t := &Table{
		ID:      "ablation-initruns",
		Title:   "random initialization runs vs target-set error (paper uses 3)",
		Columns: []string{"init runs", "total online runs", "mean MAPE(%)", "mean regret(%)"},
	}
	counts := []int{1, 2, 3, 4, 6}
	rows := sweepConfigs(env, len(counts), func(i int) core.Config {
		return core.Config{InitRandomVMs: counts[i]}
	})
	for i, n := range counts {
		t.AddRow(n, n+1, rows[i].mape, rows[i].regret)
	}
	return t
}

// AblationPCA compares the default importance pruning against keeping every
// correlation feature.
func AblationPCA(env *Env) *Table {
	t := &Table{
		ID:      "ablation-pca",
		Title:   "PCA importance pruning on/off",
		Columns: []string{"variant", "kept features", "mean MAPE(%)", "mean regret(%)"},
	}
	cfgs := []core.Config{{}, {PCAThreshold: 1e-9}}
	rows := sweepConfigs(env, len(cfgs), func(i int) core.Config { return cfgs[i] })
	t.AddRow("pruned (threshold 0.8)", rows[0].kept, rows[0].mape, rows[0].regret)
	t.AddRow("all 10 features", rows[1].kept, rows[1].mape, rows[1].regret)
	t.Notes = append(t.Notes, "paper: pruning removes about 49% of useless data without hurting accuracy")
	return t
}

// AblationFeatures compares the correlation-similarity representation with
// raw mean metric levels — the representation whose naive reuse Figure 2
// shows to be fragile across frameworks.
func AblationFeatures(env *Env) *Table {
	t := &Table{
		ID:      "ablation-features",
		Title:   "workload representation: Table 1 correlations vs raw metric levels",
		Columns: []string{"representation", "mean MAPE(%)", "mean regret(%)"},
	}
	cfgs := []core.Config{{}, {UseRawFeatures: true, MatchThreshold: 1e9}}
	rows := sweepConfigs(env, len(cfgs), func(i int) core.Config { return cfgs[i] })
	t.AddRow("correlation similarities", rows[0].mape, rows[0].regret)
	t.AddRow("raw metric levels", rows[1].mape, rows[1].regret)
	t.Notes = append(t.Notes,
		"in this substrate both representations retain ranking signal; the correlation representation's decisive advantages are absolute-time transfer (Figures 2/6: raw-level models mispredict the new framework's time scale) and the knowledge-match outlier guard, which has no raw-level equivalent")
	return t
}

// AblationK sweeps k through the full pipeline (complementing Figure 11's
// cross-validation view).
func AblationK(env *Env) *Table {
	t := &Table{
		ID:      "ablation-k",
		Title:   "K-Means k vs target-set error (full pipeline)",
		Columns: []string{"k", "mean MAPE(%)", "mean regret(%)"},
	}
	ks := []int{3, 5, 7, 9, 11, 13}
	rows := sweepConfigs(env, len(ks), func(i int) core.Config {
		return core.Config{K: ks[i]}
	})
	for i, k := range ks {
		t.AddRow(k, rows[i].mape, rows[i].regret)
	}
	return t
}
