// Ablation studies for the design choices called out in DESIGN.md §5.
package bench

import (
	"fmt"

	"vesta/internal/core"
	"vesta/internal/stats"
	"vesta/internal/workload"
)

// vestaMeanMAPE trains a Vesta variant and returns its mean Equation 7 MAPE
// and mean selection regret over the 12 Spark targets, plus the number of
// PCA-kept features.
func vestaMeanMAPE(env *Env, cfg core.Config) (mape, regret float64, kept int) {
	truth := env.Truth("targets", workload.TargetSet())
	sys := trainVesta(env, cfg)
	var mapes, regrets []float64
	for _, app := range workload.TargetSet() {
		pred, err := sys.PredictOnline(app, env.Meter(0xE0))
		if err != nil {
			panic(err)
		}
		mapes = append(mapes, selectionMAPE(truth, app.Name, pred.Best.Name, pred.PredictedSec[pred.Best.Name]))
		regrets = append(regrets, regretPct(truth, app.Name, pred.Best.Name))
	}
	return stats.Mean(mapes), stats.Mean(regrets), len(sys.Knowledge().Kept)
}

// AblationLambda sweeps the CMF tradeoff parameter around the paper's 0.75.
func AblationLambda(env *Env) *Table {
	t := &Table{
		ID:      "ablation-lambda",
		Title:   "CMF tradeoff lambda vs target-set error",
		Columns: []string{"lambda", "mean MAPE(%)", "mean regret(%)"},
	}
	for _, lambda := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		mape, reg, _ := vestaMeanMAPE(env, core.Config{Lambda: lambda})
		t.AddRow(fmt.Sprintf("%.2f", lambda), mape, reg)
	}
	t.Notes = append(t.Notes, "paper: lambda = 0.75 chosen by best practice")
	return t
}

// AblationInitRuns sweeps the number of randomly picked initialization VMs.
func AblationInitRuns(env *Env) *Table {
	t := &Table{
		ID:      "ablation-initruns",
		Title:   "random initialization runs vs target-set error (paper uses 3)",
		Columns: []string{"init runs", "total online runs", "mean MAPE(%)", "mean regret(%)"},
	}
	for _, n := range []int{1, 2, 3, 4, 6} {
		mape, reg, _ := vestaMeanMAPE(env, core.Config{InitRandomVMs: n})
		t.AddRow(n, n+1, mape, reg)
	}
	return t
}

// AblationPCA compares the default importance pruning against keeping every
// correlation feature.
func AblationPCA(env *Env) *Table {
	t := &Table{
		ID:      "ablation-pca",
		Title:   "PCA importance pruning on/off",
		Columns: []string{"variant", "kept features", "mean MAPE(%)", "mean regret(%)"},
	}
	mape, reg, kept := vestaMeanMAPE(env, core.Config{})
	t.AddRow("pruned (threshold 0.8)", kept, mape, reg)
	mape, reg, kept = vestaMeanMAPE(env, core.Config{PCAThreshold: 1e-9})
	t.AddRow("all 10 features", kept, mape, reg)
	t.Notes = append(t.Notes, "paper: pruning removes about 49% of useless data without hurting accuracy")
	return t
}

// AblationFeatures compares the correlation-similarity representation with
// raw mean metric levels — the representation whose naive reuse Figure 2
// shows to be fragile across frameworks.
func AblationFeatures(env *Env) *Table {
	t := &Table{
		ID:      "ablation-features",
		Title:   "workload representation: Table 1 correlations vs raw metric levels",
		Columns: []string{"representation", "mean MAPE(%)", "mean regret(%)"},
	}
	mape, reg, _ := vestaMeanMAPE(env, core.Config{})
	t.AddRow("correlation similarities", mape, reg)
	mape, reg, _ = vestaMeanMAPE(env, core.Config{UseRawFeatures: true, MatchThreshold: 1e9})
	t.AddRow("raw metric levels", mape, reg)
	t.Notes = append(t.Notes,
		"in this substrate both representations retain ranking signal; the correlation representation's decisive advantages are absolute-time transfer (Figures 2/6: raw-level models mispredict the new framework's time scale) and the knowledge-match outlier guard, which has no raw-level equivalent")
	return t
}

// AblationK sweeps k through the full pipeline (complementing Figure 11's
// cross-validation view).
func AblationK(env *Env) *Table {
	t := &Table{
		ID:      "ablation-k",
		Title:   "K-Means k vs target-set error (full pipeline)",
		Columns: []string{"k", "mean MAPE(%)", "mean regret(%)"},
	}
	for _, k := range []int{3, 5, 7, 9, 11, 13} {
		mape, reg, _ := vestaMeanMAPE(env, core.Config{K: k})
		t.AddRow(k, mape, reg)
	}
	return t
}
