// Extension experiments beyond the paper's evaluation:
//
//   - ext-latency: the conclusion's proposed extension — selecting VM types
//     for latency-sensitive workloads by P90 latency instead of execution
//     time, reusing the same knowledge.
//   - ext-scaling: how transfer quality grows with the breadth of the
//     offline knowledge base (source workload count), using synthesized
//     source workloads.
//   - ext-search: the related-work search baselines (Random, CherryPick-
//     lite, Arrow-lite) against Vesta's transfer under equal run budgets.
package bench

import (
	"fmt"

	"vesta/internal/baselines"
	"vesta/internal/core"
	"vesta/internal/latency"
	"vesta/internal/oracle"
	"vesta/internal/rng"
	"vesta/internal/sim"
	"vesta/internal/stats"
	"vesta/internal/workload"
)

// ExtLatency evaluates the latency-objective selector on streaming
// workloads: the two Table 3 streaming sources moved to Spark (simulating a
// streaming app ported to the new framework) plus synthesized streaming
// targets.
func ExtLatency(env *Env) *Table {
	vesta := trainVesta(env, core.Config{})

	// Build streaming targets: the Table 3 streaming kernels re-hosted on
	// Spark plus synthesized streaming apps.
	var targets []workload.App
	for _, name := range []string{"Hadoop-twitter", "Hadoop-page-review"} {
		a, err := workload.ByName(name)
		if err != nil {
			panic(err)
		}
		a.Name = "Spark-" + a.Kernel
		a.Framework = workload.Spark
		targets = append(targets, a)
	}
	src := rng.New(env.Seed + 0xF0)
	for i := 0; i < 4; i++ {
		a := workload.Synthesize(workload.Spark, i, src)
		if !a.Demand.Streaming {
			// Force the streaming template by resampling.
			for !a.Demand.Streaming {
				i++
				a = workload.Synthesize(workload.Spark, i, src)
			}
		}
		targets = append(targets, a)
	}

	t := &Table{
		ID:      "ext-latency",
		Title:   "latency-objective selection for streaming workloads (extension)",
		Columns: []string{"workload", "picked VM", "picked P90 lat (ms)", "optimal VM", "optimal (ms)", "regret(%)"},
	}
	var regrets []float64
	for _, tgt := range targets {
		res, err := latency.Select(vesta, tgt, env.Meter(0xF1))
		if err != nil {
			panic(err)
		}
		bestVM, bestLat, err := latency.ExhaustiveBest(env.Sim, tgt, env.Catalog, env.Seed+0xF2)
		if err != nil {
			panic(err)
		}
		picked := pickLatency(env, tgt, res.Best)
		reg := (picked - bestLat) / bestLat * 100
		regrets = append(regrets, reg)
		t.AddRow(tgt.Name, res.Best, picked, bestVM, bestLat, reg)
	}
	t.AddRow("")
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean latency regret %.0f%% with 4 runs per workload; the same knowledge transfers to a different practical metric (paper conclusion)", stats.Mean(regrets)),
	)
	return t
}

func pickLatency(env *Env, tgt workload.App, vm string) float64 {
	for _, v := range env.Catalog {
		if v.Name == vm {
			return env.Sim.ProfileRun(tgt, v, env.Seed+0xF2).P90LatencyMS
		}
	}
	panic("ext-latency: unknown VM " + vm)
}

// ExtScaling measures target-set error as the offline knowledge base grows:
// the 13 Table 3 training sources extended with synthesized Hadoop/Hive
// workloads.
func ExtScaling(env *Env) *Table {
	truth := env.Truth("targets", workload.TargetSet())
	base := workload.BySet(workload.SourceTraining)
	synth := workload.SynthesizeBatch(
		[]workload.Framework{workload.Hadoop, workload.Hive}, 17, 0, rng.New(env.Seed+0xF5))

	t := &Table{
		ID:      "ext-scaling",
		Title:   "transfer quality vs knowledge-base breadth (extension)",
		Columns: []string{"source workloads", "offline runs", "mean MAPE(%)", "mean regret(%)"},
	}
	for _, extra := range []int{0, 5, 11, 17} {
		sources := append(append([]workload.App(nil), base...), synth[:extra]...)
		sys, err := core.New(core.Config{Seed: env.Seed + 31}, env.Catalog)
		if err != nil {
			panic(err)
		}
		meter := env.Meter(0xF6)
		if err := sys.TrainOffline(sources, meter); err != nil {
			panic(err)
		}
		var mapes, regrets []float64
		for _, tgt := range workload.TargetSet() {
			pred, err := sys.PredictOnline(tgt, env.Meter(0xF7))
			if err != nil {
				panic(err)
			}
			mapes = append(mapes, selectionMAPE(truth, tgt.Name, pred.Best.Name, pred.PredictedSec[pred.Best.Name]))
			regrets = append(regrets, regretPct(truth, tgt.Name, pred.Best.Name))
		}
		t.AddRow(len(sources), sys.Knowledge().OfflineRuns, stats.Mean(mapes), stats.Mean(regrets))
	}
	t.Notes = append(t.Notes,
		"broader offline knowledge gives targets more nearby sources to transfer from; the marginal value flattens once the workload space is covered",
	)
	return t
}

// ExtSearch compares the sequential-search baselines of the related work
// (Random, CherryPick-lite, Arrow-lite) against Vesta under equal total run
// budgets on the Spark targets, measuring ground-truth best-found time.
func ExtSearch(env *Env) *Table {
	vesta := trainVesta(env, core.Config{})
	truth := env.Truth("targets", workload.TargetSet())
	budgets := []int{6, 10, 15}

	t := &Table{
		ID:      "ext-search",
		Title:   "search baselines vs transfer: mean best-found regret (%) by run budget",
		Columns: []string{"system", "6 runs", "10 runs", "15 runs"},
	}
	type mkSel func(budget int) baselines.Selector
	systems := []struct {
		name string
		mk   mkSel
	}{
		{"Random", func(b int) baselines.Selector {
			r := baselines.NewRandomSearch(env.Catalog, env.Seed+41)
			r.Budget = b
			return r
		}},
		{"CherryPick-lite", func(b int) baselines.Selector {
			c := baselines.NewCherryPickLite(env.Catalog, env.Seed+42)
			c.Budget = b
			return c
		}},
		{"Arrow-lite", func(b int) baselines.Selector {
			a := baselines.NewArrowLite(env.Catalog, env.Seed+43)
			a.Budget = b
			return a
		}},
	}

	meanRegret := func(pick func(tgt workload.App, budget int) string, budget int) float64 {
		var regs []float64
		for _, tgt := range workload.TargetSet() {
			regs = append(regs, regretPct(truth, tgt.Name, pick(tgt, budget)))
		}
		return stats.Mean(regs)
	}

	// Vesta: best VM among the first N steps of its optimizer.
	row := []interface{}{"Vesta (transfer)"}
	for _, b := range budgets {
		row = append(row, meanRegret(func(tgt workload.App, budget int) string {
			steps, _, err := vesta.Optimize(tgt, budget, env.Meter(0xF8))
			if err != nil {
				panic(err)
			}
			return bestVMOfSteps(truth, tgt.Name, steps)
		}, b))
	}
	t.AddRow(row...)

	for _, sysDef := range systems {
		row := []interface{}{sysDef.name}
		for _, b := range budgets {
			sel := sysDef.mk(b)
			row = append(row, meanRegret(func(tgt workload.App, budget int) string {
				s, err := sel.Select(tgt, env.Meter(0xF9))
				if err != nil {
					panic(err)
				}
				return bestObservedVM(truth, tgt.Name, s)
			}, b))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"search baselines pay their whole budget exploring; Vesta's transferred ranking concentrates the budget on strong candidates",
		"Arrow-lite's low-level augmentation overtakes CherryPick-lite's blind surrogate once a few fingerprints accumulate (the Arrow paper's claim)",
	)
	return t
}

// ExtInterference measures Vesta's robustness to multi-tenant cloud noise:
// the whole pipeline (offline profiling, ground truth, online prediction)
// reruns under increasing noisy-neighbour interference.
func ExtInterference(env *Env) *Table {
	t := &Table{
		ID:      "ext-interference",
		Title:   "selection quality under multi-tenant interference (extension)",
		Columns: []string{"interference", "mean MAPE(%)", "mean regret(%)", "outliers flagged"},
	}
	for _, intf := range []float64{0, 0.1, 0.2, 0.3} {
		noisy := sim.New(sim.Config{Nodes: 4, Repeats: 10, SampleSec: 5, Interference: intf})
		truth := oracle.Build(noisy, workload.TargetSet(), env.Catalog, env.Seed+0x7177)
		sys, err := core.New(core.Config{Seed: env.Seed + 51}, env.Catalog)
		if err != nil {
			panic(err)
		}
		if err := sys.TrainOffline(workload.BySet(workload.SourceTraining), oracle.NewMeter(noisy, env.Seed+0xFA)); err != nil {
			panic(err)
		}
		var mapes, regrets []float64
		flagged := 0
		for _, tgt := range workload.TargetSet() {
			pred, err := sys.PredictOnline(tgt, oracle.NewMeter(noisy, env.Seed+0xFB))
			if err != nil {
				panic(err)
			}
			if !pred.Converged {
				flagged++
			}
			mapes = append(mapes, selectionMAPE(truth, tgt.Name, pred.Best.Name, pred.PredictedSec[pred.Best.Name]))
			regrets = append(regrets, regretPct(truth, tgt.Name, pred.Best.Name))
		}
		t.AddRow(fmt.Sprintf("%.1f", intf), stats.Mean(mapes), stats.Mean(regrets), flagged)
	}
	t.Notes = append(t.Notes,
		"interference inflates every system's error floor (ground truth itself is noisier); the knowledge-match guard flags more targets as the correlation vectors destabilize",
	)
	return t
}

// bestVMOfSteps returns the ground-truth-fastest VM among a step sequence.
func bestVMOfSteps(truth *oracle.Table, app string, steps []oracle.Step) string {
	bestVM, bestSec := "", -1.0
	for _, st := range steps {
		sec, err := truth.Time(app, st.VM)
		if err != nil {
			panic(err)
		}
		if bestSec < 0 || sec < bestSec {
			bestVM, bestSec = st.VM, sec
		}
	}
	return bestVM
}

// bestObservedVM returns the ground-truth-fastest VM among a selection's
// observed set.
func bestObservedVM(truth *oracle.Table, app string, s *baselines.Selection) string {
	bestVM, bestSec := "", -1.0
	for vm := range s.Observed {
		sec, err := truth.Time(app, vm)
		if err != nil {
			panic(err)
		}
		if bestSec < 0 || sec < bestSec || (sec == bestSec && vm < bestVM) {
			bestVM, bestSec = vm, sec
		}
	}
	return bestVM
}

// ExtDataSize measures generalization across input scales: knowledge is
// trained at the default Table 3 input sizes, then targets arrive at the
// HiBench scales ("large" 0.3 GB, "huge" 3 GB, "gigantic" 30 GB). The best
// VM type moves with the data size (bigger inputs justify bigger machines);
// the question is whether the transferred ranking tracks it.
func ExtDataSize(env *Env) *Table {
	vesta := trainVesta(env, core.Config{})
	targets := []string{"Spark-lr", "Spark-kmeans", "Spark-sort"}
	scales := []string{"large", "huge", "gigantic"}

	t := &Table{
		ID:      "ext-datasize",
		Title:   "generalization across input scales (trained at default sizes)",
		Columns: []string{"workload", "scale", "input (GB)", "picked VM", "truth best", "regret(%)"},
	}
	var regrets []float64
	for _, name := range targets {
		base, err := workload.ByName(name)
		if err != nil {
			panic(err)
		}
		for _, scale := range scales {
			gb, err := workload.InputSizeGB(scale)
			if err != nil {
				panic(err)
			}
			sized := base.WithInput(gb)
			sized.Name = fmt.Sprintf("%s@%s", base.Name, scale)
			truth := oracle.Build(env.Sim, []workload.App{sized}, env.Catalog, env.Seed+0x7177)
			pred, err := vesta.PredictOnline(sized, env.Meter(0xFC))
			if err != nil {
				panic(err)
			}
			bestVM, bestSec, err := truth.BestByTime(sized.Name)
			if err != nil {
				panic(err)
			}
			sec, err := truth.Time(sized.Name, pred.Best.Name)
			if err != nil {
				panic(err)
			}
			reg := (sec - bestSec) / bestSec * 100
			regrets = append(regrets, reg)
			t.AddRow(base.Name, scale, gb, pred.Best.Name, bestVM.Name, reg)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean regret %.0f%% across 3 workloads x 3 scales; the sandbox run re-measures the target at its actual size, so the transferred ranking adapts", stats.Mean(regrets)),
	)
	return t
}
