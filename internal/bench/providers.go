package bench

import (
	"fmt"

	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/oracle"
	"vesta/internal/stats"
	"vesta/internal/workload"
)

// providerArm describes one non-EC2 provider evaluated by
// ExtProviderTransfer: its catalog and the general-purpose type the native
// arm uses as its sandbox VM.
type providerArm struct {
	name    string
	sandbox string
	catalog []cloud.VMType
}

// ExtProviderTransfer measures transfer across *providers*: knowledge
// trained entirely on the EC2-like catalog ranks the Azure- and GCP-like
// catalogs (absorbed at runtime as a versioned catalog update, DESIGN.md
// §14), against a native arm that trains from scratch on each provider's own
// catalog. The transfer arm pays zero additional offline training — its
// provider rankings come from adaptRanking's resource-vector interpolation —
// so its regret against the provider's exhaustive truth is the price of
// skipping a full re-profiling campaign on the new cloud.
func ExtProviderTransfer(env *Env) *Table {
	vesta := trainVesta(env, core.Config{})
	snap, err := vesta.Snapshot()
	if err != nil {
		panic(err)
	}
	targets := []string{"Spark-lr", "Spark-kmeans", "Spark-sort"}
	providers := []providerArm{
		{name: cloud.ProviderAzure, sandbox: "dv5.xlarge", catalog: cloud.AzureCatalog()},
		{name: cloud.ProviderGCP, sandbox: "n2.xlarge", catalog: cloud.GCPCatalog()},
	}

	t := &Table{
		ID:    "ext-provider-transfer",
		Title: "cross-provider transfer: EC2-trained knowledge vs native per-provider training",
		Columns: []string{"provider", "target", "transfer pick", "native pick", "truth best",
			"transfer regret(%)", "native regret(%)"},
	}
	var apps []workload.App
	for _, name := range targets {
		app, err := workload.ByName(name)
		if err != nil {
			panic(err)
		}
		apps = append(apps, app)
	}
	for _, p := range providers {
		// Transfer arm: absorb the provider's types into the EC2-trained
		// snapshot as one catalog update — the same versioned-absorb path a
		// live `vesta serve` node takes through POST /catalog.
		multi, err := snap.AbsorbCatalog(cloud.Update{
			Note: "add " + p.name + " catalog",
			Add:  p.catalog,
		})
		if err != nil {
			panic(err)
		}
		inProvider := make(map[string]bool, len(p.catalog))
		for _, v := range p.catalog {
			inProvider[v.Name] = true
		}
		// Native arm: full offline training on the provider's own catalog —
		// the upper bound the transfer arm tries to approach for free.
		native, err := core.New(env.config(core.Config{Seed: env.Seed + 11, SandboxVM: p.sandbox}), p.catalog)
		if err != nil {
			panic(err)
		}
		if err := native.TrainOffline(workload.BySet(workload.SourceTraining), env.Meter(0xE0)); err != nil {
			panic(err)
		}
		truth := oracle.Build(env.Sim, apps, p.catalog, env.Seed+0x7177)

		var transferRegrets, nativeRegrets []float64
		for _, app := range apps {
			pred, err := multi.Predict(app, env.Meter(0xE1))
			if err != nil {
				panic(err)
			}
			transferPick := ""
			for _, r := range pred.Ranking {
				if inProvider[r.VM] {
					transferPick = r.VM
					break
				}
			}
			if transferPick == "" {
				panic(fmt.Sprintf("bench: no %s VM in the multi-cloud ranking for %s", p.name, app.Name))
			}
			nativePred, err := native.PredictOnline(app, env.Meter(0xE2))
			if err != nil {
				panic(err)
			}
			bestVM, bestSec, err := truth.BestByTime(app.Name)
			if err != nil {
				panic(err)
			}
			tSec, err := truth.Time(app.Name, transferPick)
			if err != nil {
				panic(err)
			}
			nSec, err := truth.Time(app.Name, nativePred.Best.Name)
			if err != nil {
				panic(err)
			}
			tReg := (tSec - bestSec) / bestSec * 100
			nReg := (nSec - bestSec) / bestSec * 100
			transferRegrets = append(transferRegrets, tReg)
			nativeRegrets = append(nativeRegrets, nReg)
			t.AddRow(p.name, app.Name, transferPick, nativePred.Best.Name, bestVM.Name, tReg, nReg)
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s: mean transfer regret %.0f%% vs native %.0f%% over %d targets (catalog version %d, %d types added); transfer pays 0 extra offline runs",
			p.name, stats.Mean(transferRegrets), stats.Mean(nativeRegrets), len(apps),
			multi.CatalogVersion(), len(p.catalog)))
	}
	t.Notes = append(t.Notes,
		"transfer = EC2-trained knowledge + runtime catalog absorb (rankings interpolated over resource vectors); native = full offline training on the provider catalog")
	return t
}
