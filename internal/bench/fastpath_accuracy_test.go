package bench

import (
	"math"
	"testing"

	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/stats"
	"vesta/internal/workload"
)

// fig7Deviation reproduces the Figure 7 metric for one prediction mode: the
// mean absolute deviation of (predicted/observed)x100% from 100 across the
// 10 typical VM types for Spark-lr.
func fig7Deviation(t *testing.T, env *Env, predicted map[string]float64, app workload.App) float64 {
	t.Helper()
	truth := env.Truth("eval17", evalApps())
	var dev []float64
	for _, vm := range cloud.TypicalTen(env.Catalog) {
		obs, err := truth.Time(app.Name, vm.Name)
		if err != nil {
			t.Fatal(err)
		}
		dev = append(dev, math.Abs(predicted[vm.Name]/obs*100-100))
	}
	return stats.Mean(dev)
}

// TestFastPathAccuracyVsFigure7 holds the warm-started fast path — and its
// opt-in FreezeSource approximate mode — to the paper's Figure 7 accuracy
// protocol: predicted vs observed execution time of Spark-lr on the 10
// typical VM types. The warm path optimizes the same objective as the cold
// solve and must stay within 2 percentage points of its mean deviation; the
// approximate mode trades the source-factor updates away and is allowed 5
// points. Both must also agree with the cold path on the best VM.
func TestFastPathAccuracyVsFigure7(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a full system")
	}
	env := NewEnv(1)
	app, err := workload.ByName("Spark-lr")
	if err != nil {
		t.Fatal(err)
	}
	vesta := trainVesta(env, core.Config{})
	snap, err := vesta.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	cold, err := snap.Predict(app, env.Meter(0x70))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := snap.PredictFast(app, env.Meter(0x70), false)
	if err != nil {
		t.Fatal(err)
	}
	apx, err := snap.PredictFast(app, env.Meter(0x70), true)
	if err != nil {
		t.Fatal(err)
	}

	coldDev := fig7Deviation(t, env, cold.PredictedSec, app)
	warmDev := fig7Deviation(t, env, warm.PredictedSec, app)
	apxDev := fig7Deviation(t, env, apx.PredictedSec, app)
	t.Logf("Figure 7 mean |deviation|: cold %.1f%%, warm %.1f%%, approx %.1f%%", coldDev, warmDev, apxDev)

	if warmDev > coldDev+2 {
		t.Errorf("warm fast path mean deviation %.1f%% exceeds cold %.1f%% by more than 2 points", warmDev, coldDev)
	}
	if apxDev > coldDev+5 {
		t.Errorf("approximate mode mean deviation %.1f%% exceeds cold %.1f%% by more than 5 points", apxDev, coldDev)
	}
	for mode, p := range map[string]string{"warm": warm.Best.Name, "approx": apx.Best.Name} {
		if p != cold.Best.Name {
			t.Errorf("%s mode best VM %s, cold picked %s", mode, p, cold.Best.Name)
		}
	}
}
