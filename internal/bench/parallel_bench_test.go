package bench

import (
	"fmt"
	"testing"
)

// BenchmarkFig3 measures the evaluation-sweep fan-out: Figure 3 trains one
// from-scratch model per (reference-VM count, target) cell, all independent,
// so wall-clock scales with the worker count while the rendered table stays
// byte-identical.
func BenchmarkFig3(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Fig3ScratchCost(NewEnvWorkers(1, workers))
			}
		})
	}
}
