package bench

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files from current output")

// TestFig9Golden pins the cheapest experiment's full rendering against a
// golden file, guarding the determinism promise end to end (simulator,
// metrics, PCA, table formatting). Regenerate with:
//
//	go test ./internal/bench -run TestFig9Golden -update-golden
func TestFig9Golden(t *testing.T) {
	got := Fig9PCAImportance(NewEnv(1)).Render()
	path := filepath.Join("testdata", "fig9.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if string(want) != got {
		t.Fatalf("fig9 output drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
