package bench

import (
	"math"
	"strings"
	"testing"

	"vesta/internal/workload"
)

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if e.ID == "" || e.Desc == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	// 11 paper figures + 5 ablations + 6 extensions.
	if len(Registry()) != 23 {
		t.Fatalf("registry has %d experiments, want 23", len(Registry()))
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig6")
	if err != nil || e.ID != "fig6" {
		t.Fatalf("ByID(fig6) = %+v, %v", e, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:      "t",
		Title:   "demo",
		Columns: []string{"a", "bee"},
		Notes:   []string{"hello"},
	}
	tbl.AddRow("x", 1.234)
	tbl.AddRow("longer-cell", "v")
	out := tbl.Render()
	for _, want := range []string{"=== t: demo ===", "a", "bee", "1.2", "longer-cell", "note: hello", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableAddRowFormatting(t *testing.T) {
	tbl := &Table{Columns: []string{"c"}}
	tbl.AddRow(3.14159)
	if tbl.Rows[0][0] != "3.1" {
		t.Fatalf("float cell = %q", tbl.Rows[0][0])
	}
	tbl.AddRow(42)
	if tbl.Rows[1][0] != "42" {
		t.Fatalf("int cell = %q", tbl.Rows[1][0])
	}
}

func TestEnvTruthCaching(t *testing.T) {
	env := NewEnv(1)
	apps := workload.BySet(workload.SourceTesting)[:2]
	t1 := env.Truth("pair", apps)
	t2 := env.Truth("pair", apps)
	if t1 != t2 {
		t.Fatal("Truth did not cache")
	}
}

func TestEnvMeterIndependent(t *testing.T) {
	env := NewEnv(1)
	m1 := env.Meter(1)
	m2 := env.Meter(1)
	a := workload.BySet(workload.SourceTesting)[0]
	m1.Profile(a, env.Catalog[0])
	if m2.Runs() != 0 {
		t.Fatal("meters share state")
	}
}

func TestSelectionMAPEHelper(t *testing.T) {
	env := NewEnv(1)
	apps := []workload.App{workload.BySet(workload.SourceTesting)[0]}
	truth := env.Truth("one", apps)
	app := apps[0].Name
	bestVM, bestSec, err := truth.BestByTime(app)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect prediction: MAPE 0.
	if got := selectionMAPE(truth, app, bestVM.Name, bestSec); got != 0 {
		t.Fatalf("perfect MAPE = %v", got)
	}
	// 2x overprediction: MAPE 100.
	if got := selectionMAPE(truth, app, bestVM.Name, 2*bestSec); math.Abs(got-100) > 1e-9 {
		t.Fatalf("2x MAPE = %v", got)
	}
	// Inf prediction falls back to the pick's true time.
	worst := env.Catalog[0]
	got := selectionMAPE(truth, app, worst.Name, math.Inf(1))
	wantSec, _ := truth.Time(app, worst.Name)
	if math.Abs(got-math.Abs(wantSec-bestSec)/bestSec*100) > 1e-9 {
		t.Fatalf("inf-fallback MAPE = %v", got)
	}
}

func TestRegretHelper(t *testing.T) {
	env := NewEnv(1)
	apps := []workload.App{workload.BySet(workload.SourceTesting)[1]}
	truth := env.Truth("one2", apps)
	bestVM, _, _ := truth.BestByTime(apps[0].Name)
	if got := regretPct(truth, apps[0].Name, bestVM.Name); got != 0 {
		t.Fatalf("best-pick regret = %v", got)
	}
	for _, vm := range env.Catalog[:5] {
		if regretPct(truth, apps[0].Name, vm.Name) < 0 {
			t.Fatal("regret below zero")
		}
	}
}

func TestClosestIndexHelpers(t *testing.T) {
	ratios := []float64{1, 2, 4, 8}
	if closestIndex(ratios, 3.9) != 2 {
		t.Fatal("closestIndex wrong")
	}
	if closestIndex(ratios, 1.1) != 0 {
		t.Fatal("closestIndex wrong at low end")
	}
	cpus := []int{2, 4, 8}
	if closestIndexInt(cpus, 7) != 2 {
		t.Fatal("closestIndexInt wrong")
	}
	if closestIndexInt(cpus, 2) != 0 {
		t.Fatal("closestIndexInt wrong at low end")
	}
}

func TestSortedKeys(t *testing.T) {
	got := sortedKeys(map[string]int{"b": 1, "a": 2, "c": 3})
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("sortedKeys = %v", got)
	}
}

func TestFig9Deterministic(t *testing.T) {
	// Fig9 is the cheapest experiment; use it to verify reproducibility.
	t1 := Fig9PCAImportance(NewEnv(3))
	t2 := Fig9PCAImportance(NewEnv(3))
	if len(t1.Rows) != len(t2.Rows) {
		t.Fatal("row counts differ")
	}
	for i := range t1.Rows {
		for j := range t1.Rows[i] {
			if t1.Rows[i][j] != t2.Rows[i][j] {
				t.Fatalf("cell (%d,%d) differs: %q vs %q", i, j, t1.Rows[i][j], t2.Rows[i][j])
			}
		}
	}
}

func TestFig1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	tbl := Fig1Heatmaps(NewEnv(1))
	// 3 apps x 5 ratio rows + 3 separators.
	if len(tbl.Rows) != 18 {
		t.Fatalf("fig1 has %d rows, want 18", len(tbl.Rows))
	}
	// Every heat cell is a digit or '.' (skip the single-cell separators).
	for _, row := range tbl.Rows {
		if len(row) < 3 {
			continue
		}
		for _, cell := range row[2:] {
			if cell == "" {
				continue
			}
			if cell != "." && (cell < "0" || cell > "9") {
				t.Fatalf("bad heat cell %q", cell)
			}
		}
	}
}

func TestRenderMarkdown(t *testing.T) {
	tbl := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Notes:   []string{"n1"},
	}
	tbl.AddRow("v", 1.5)
	tbl.AddRow("only-one-cell")
	out := tbl.RenderMarkdown()
	for _, want := range []string{"### x — demo", "| a | b |", "| --- | --- |", "| v | 1.5 |", "> n1", "| only-one-cell |  |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}
