// The robustness sweep: the whole Vesta pipeline — offline collection,
// online prediction — reruns under increasing injected infrastructure fault
// rates (spot preemption, launch failures, stragglers, OOM kills, sampler
// dropout), with the resilient profiling layer retrying, quarantining, and
// degrading gracefully. Selection quality is judged against the fault-free
// ground truth: faults may waste runs and drop measurements, but the
// question is how much accuracy survives.
package bench

import (
	"fmt"
	"math"

	"vesta/internal/chaos"
	"vesta/internal/core"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/stats"
	"vesta/internal/workload"
)

// robustnessRates is the sweep axis of the accuracy-vs-fault-rate curve.
var robustnessRates = []float64{0, 0.02, 0.05, 0.1, 0.2, 0.3}

// ExtRobustness regenerates results/robustness.md: selection quality and
// profiling overhead as every fault class fires at the given per-run rate.
// The 0.00 row runs the identical code path with no chaos plan and must
// reproduce the fault-free pipeline exactly.
func ExtRobustness(env *Env) *Table {
	truth := env.Truth("targets", workload.TargetSet())
	targets := workload.TargetSet()

	t := &Table{
		ID:    "ext-robustness",
		Title: "selection quality vs injected infrastructure fault rate (extension)",
		Columns: []string{"fault rate", "predicted", "coverage(%)", "mean MAPE(%)",
			"mean regret(%)", "offline runs", "retries", "quarantined", "dropped sources", "wasted (hr)"},
	}
	for _, rate := range robustnessRates {
		var plan *chaos.Plan
		if rate > 0 {
			plan = chaos.NewPlan(env.Seed+0xC0, chaos.Uniform(rate))
		}
		faulty := sim.New(sim.Config{Nodes: 4, Repeats: 10, SampleSec: 5, Chaos: plan})
		offline := oracle.NewResilient(oracle.NewMeter(faulty, env.Seed+0xC1), oracle.DefaultRetryPolicy())
		sys, err := core.New(env.config(core.Config{Seed: env.Seed + 61}), env.Catalog)
		if err != nil {
			panic(err)
		}
		if err := sys.TrainOffline(workload.BySet(workload.SourceTraining), offline); err != nil {
			panic(err)
		}

		online := oracle.NewResilient(oracle.NewMeter(faulty, env.Seed+0xC2), oracle.DefaultRetryPolicy())
		var mapes, regrets []float64
		predicted := 0
		for _, tgt := range targets {
			pred, err := sys.PredictOnline(tgt, online)
			if err != nil {
				// Unrecoverable sandbox run: this target gets no prediction.
				continue
			}
			predicted++
			mapes = append(mapes, selectionMAPE(truth, tgt.Name, pred.Best.Name, pred.PredictedSec[pred.Best.Name]))
			regrets = append(regrets, regretPct(truth, tgt.Name, pred.Best.Name))
		}

		k := sys.Knowledge()
		ost, nst := offline.Stats(), online.Stats()
		meanMAPE, meanRegret := math.NaN(), math.NaN()
		if predicted > 0 {
			meanMAPE, meanRegret = stats.Mean(mapes), stats.Mean(regrets)
		}
		t.AddRow(fmt.Sprintf("%.2f", rate), predicted,
			float64(predicted)/float64(len(targets))*100,
			meanMAPE, meanRegret, k.OfflineRuns,
			ost.Retries+nst.Retries, ost.Quarantined+nst.Quarantined,
			len(k.DroppedSources), (ost.WastedSec+nst.WastedSec)/3600)
	}
	t.Notes = append(t.Notes,
		"judged against fault-free ground truth; the 0.00 row is the unperturbed pipeline (byte-identical to every other experiment's training)",
		"failed attempts charge the run budget (Figure-8 accounting): offline runs grow with the fault rate even when accuracy holds",
		"degradation is graceful: retries recover most measurements, quarantine discards corrupt ones, and predictions substitute reference VMs before giving up",
	)
	return t
}
