// Figures 1-3: the motivation experiments of Sections 1-2.
package bench

import (
	"fmt"
	"math"
	"sort"

	"vesta/internal/baselines"
	"vesta/internal/oracle"
	"vesta/internal/parallel"
	"vesta/internal/stats"
	"vesta/internal/workload"
)

// Fig1Heatmaps reproduces Figure 1: budget heat maps of one application per
// framework over the CPU-cores x memory plane. Each cell holds the lowest
// budget among catalog VMs with that (vCPU count, GiB-per-vCPU) shape,
// rendered as a 0-9 digit normalized per application (0 = cheapest, 9 = most
// expensive, '.' = no such VM shape). The paper's observation to verify:
// the cheap (low-digit) region sits at a similar CPU-to-memory ratio across
// all three frameworks even though the maps look different overall.
func Fig1Heatmaps(env *Env) *Table {
	apps := []string{"Hadoop-terasort", "Hive-aggregation", "Spark-page-rank"}
	t := &Table{
		ID:    "fig1",
		Title: "budget heat maps (rows: GiB/vCPU; cols: total vCPUs; digit 0=cheapest)",
	}
	// Axis buckets.
	cpuCols := []int{2, 4, 8, 16, 32, 48, 64, 96}
	ratioRows := []float64{1, 2, 4, 8, 15.25}
	t.Columns = append([]string{"app", "GiB/vCPU"}, intsToStrings(cpuCols)...)

	for _, name := range apps {
		app, err := workload.ByName(name)
		if err != nil {
			panic(err)
		}
		truth := env.Truth("all30", workload.All())
		// Min budget per (ratio, cpus) cell.
		grid := make([][]float64, len(ratioRows))
		lo, hi := math.Inf(1), math.Inf(-1)
		for r := range grid {
			grid[r] = make([]float64, len(cpuCols))
			for c := range grid[r] {
				grid[r][c] = math.Inf(1)
			}
		}
		for _, vm := range env.Catalog {
			r := closestIndex(ratioRows, vm.MemPerVCPU())
			c := closestIndexInt(cpuCols, vm.VCPUs)
			cost, err := truth.Cost(app.Name, vm.Name)
			if err != nil {
				panic(err)
			}
			if cost < grid[r][c] {
				grid[r][c] = cost
			}
			if cost < lo {
				lo = cost
			}
			if cost > hi {
				hi = cost
			}
		}
		for r := len(ratioRows) - 1; r >= 0; r-- {
			cells := []interface{}{app.Name, fmt.Sprintf("%.1f", ratioRows[r])}
			for c := range cpuCols {
				if math.IsInf(grid[r][c], 1) {
					cells = append(cells, ".")
					continue
				}
				// Log-scaled 0-9 digit.
				d := int(9 * (math.Log(grid[r][c]) - math.Log(lo)) / (math.Log(hi) - math.Log(lo)))
				cells = append(cells, fmt.Sprintf("%d", d))
			}
			t.AddRow(cells...)
		}
		t.AddRow("")
	}
	t.Notes = append(t.Notes,
		"paper: maps look completely different per framework, but the best (low-digit) region follows a similar CPU-to-memory ratio",
	)
	return t
}

// Fig2NaiveReuse reproduces Figure 2: a low-level-metric model (PARIS)
// trained on Hadoop+Hive and reused verbatim on Spark targets. The paper
// reports nearly 80% of workloads suffering high prediction error.
func Fig2NaiveReuse(env *Env) *Table {
	meter := env.Meter(0x21)
	paris := baselines.NewParis(env.Catalog, env.Seed+2)
	if err := paris.Train(workload.SourceSet(), meter); err != nil {
		panic(err)
	}
	truth := env.Truth("targets", workload.TargetSet())

	t := &Table{
		ID:      "fig2",
		Title:   "prediction error of reusing a Hadoop+Hive low-level-metric model on Spark",
		Columns: []string{"workload", "MAPE(%)", "high error (>50%)"},
	}
	high := 0
	for _, tgt := range workload.TargetSet() {
		sel, err := paris.Select(tgt, meter)
		if err != nil {
			panic(err)
		}
		mape := selectionMAPE(truth, tgt.Name, sel.Best.Name, sel.PredictedSec[sel.Best.Name])
		flag := ""
		if mape > 50 {
			flag = "yes"
			high++
		}
		t.AddRow(tgt.Name, mape, flag)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured: %d/12 (%.0f%%) Spark workloads above 50%% error; paper: nearly 80%%",
			high, float64(high)/12*100),
	)
	return t
}

// Fig3ScratchCost reproduces Figure 3: prediction error as a function of
// training overhead when a model is trained from scratch for the new
// framework, sweeping the number of reference VMs.
func Fig3ScratchCost(env *Env) *Table {
	truth := env.Truth("targets", workload.TargetSet())
	t := &Table{
		ID:      "fig3",
		Title:   "training overhead vs prediction error, training from scratch for Spark",
		Columns: []string{"reference VMs", "mean MAPE(%)", "p90 MAPE(%)"},
	}
	// Every (reference-VM count, target) cell trains its own from-scratch
	// model with fixed seeds, so the sweep fans out on the worker pool.
	counts := []int{5, 10, 20, 40, 60, 80, 100, 120}
	sweep := parallel.Map(env.Workers, len(counts), func(i int) []float64 {
		n := counts[i]
		var mapes []float64
		for _, tgt := range workload.TargetSet() {
			meter := env.Meter(0x31)
			scratch := baselines.NewParisScratch(env.Catalog, env.Seed+3)
			scratch.SampleVMs = n
			sel, err := scratch.Select(tgt, meter)
			if err != nil {
				panic(err)
			}
			mapes = append(mapes, selectionMAPE(truth, tgt.Name, sel.Best.Name, sel.PredictedSec[sel.Best.Name]))
		}
		return mapes
	})
	for i, n := range counts {
		t.AddRow(n, stats.Mean(sweep[i]), stats.P90(sweep[i]))
	}
	t.Notes = append(t.Notes,
		"paper: error falls as overhead grows; acceptable error needs on the order of a hundred reference VMs (hundreds of hours)",
	)
	return t
}

// selectionMAPE is the paper's Equation 7 metric for one workload: the
// absolute percentage error between the system's predicted result (its
// predicted execution time on the VM it selected) and the ground-truth best
// result (the true execution time on the true best VM).
func selectionMAPE(truth *oracle.Table, app, pickedVM string, predictedSec float64) float64 {
	_, bestSec, err := truth.BestByTime(app)
	if err != nil {
		panic(err)
	}
	if math.IsInf(predictedSec, 0) || math.IsNaN(predictedSec) {
		// A system that predicts nothing useful for its own pick is charged
		// the error of its pick's true time instead.
		sec, err := truth.Time(app, pickedVM)
		if err != nil {
			panic(err)
		}
		predictedSec = sec
	}
	return stats.AbsPercentErr(predictedSec, bestSec)
}

// regretPct is the pure selection error: how much slower the picked VM is
// than the true best, in percent.
func regretPct(truth *oracle.Table, app, pickedVM string) float64 {
	_, bestSec, err := truth.BestByTime(app)
	if err != nil {
		panic(err)
	}
	sec, err := truth.Time(app, pickedVM)
	if err != nil {
		panic(err)
	}
	return (sec - bestSec) / bestSec * 100
}

func closestIndex(buckets []float64, v float64) int {
	best, bestD := 0, math.Inf(1)
	for i, b := range buckets {
		if d := math.Abs(math.Log(v) - math.Log(b)); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

func closestIndexInt(buckets []int, v int) int {
	best, bestD := 0, math.MaxInt
	for i, b := range buckets {
		d := b - v
		if d < 0 {
			d = -d
		}
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

func intsToStrings(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d", x)
	}
	return out
}

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
