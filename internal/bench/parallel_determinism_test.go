package bench

import (
	"testing"

	"vesta/internal/core"
)

// renderWith runs one registry experiment in a fresh environment with the
// given worker-pool bound and returns the rendered table.
func renderWith(t *testing.T, id string, workers int) string {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return e.Run(NewEnvWorkers(1, workers)).Render()
}

// TestFig3ByteIdenticalAcrossWorkers pins the headline guarantee of the
// parallel evaluation engine: the rendered report is byte-for-byte the same
// at every -workers value. Fig3 fans its reference-VM sweep out on the
// worker pool; run under -race this also exercises the pool for data races.
func TestFig3ByteIdenticalAcrossWorkers(t *testing.T) {
	ref := renderWith(t, "fig3", 1)
	if got := renderWith(t, "fig3", 8); got != ref {
		t.Errorf("fig3 render at workers=8 differs from workers=1:\n--- got ---\n%s\n--- want ---\n%s",
			got, ref)
	}
}

// TestSweepConfigsIdenticalAcrossWorkers covers the Vesta-training sweep
// path (ablations, Figure 11) with a trimmed two-point lambda sweep: full
// training plus batched online predictions must produce exactly equal
// floats at any worker count.
func TestSweepConfigsIdenticalAcrossWorkers(t *testing.T) {
	lambdas := []float64{0, 0.75}
	rowsAt := func(workers int) []sweepRow {
		env := NewEnvWorkers(1, workers)
		return sweepConfigs(env, len(lambdas), func(i int) core.Config {
			return core.Config{Lambda: lambdas[i], LambdaSet: true}
		})
	}
	ref := rowsAt(1)
	got := rowsAt(8)
	for i := range ref {
		if got[i] != ref[i] {
			t.Errorf("lambda=%v row at workers=8 = %+v, want %+v (workers=1)", lambdas[i], got[i], ref[i])
		}
	}
	// The two lambdas must also not collapse to the same outcome — that
	// would mean the LambdaSet sentinel was ignored and both trained at the
	// 0.75 default.
	if ref[0] == ref[1] {
		t.Error("lambda=0 and lambda=0.75 sweeps are identical; LambdaSet sentinel ignored")
	}
}

// TestAblationLambdaByteIdenticalAcrossWorkers is the full-size version of
// the check above (6 trained systems per worker count); skipped with -short.
func TestAblationLambdaByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive: trains 12 Vesta systems")
	}
	ref := renderWith(t, "ablation-lambda", 1)
	if got := renderWith(t, "ablation-lambda", 8); got != ref {
		t.Errorf("ablation-lambda render at workers=8 differs from workers=1:\n--- got ---\n%s\n--- want ---\n%s",
			got, ref)
	}
}
