// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Figures 1-3 and 6-13) plus the ablation
// studies called out in DESIGN.md, printing the same rows/series the paper
// reports so shapes can be compared side by side.
//
// Every experiment is a pure function of an Env (simulator + catalog +
// seed), so all outputs are deterministic and regenerate byte-identically.
package bench

import (
	"fmt"
	"strings"
	"sync"

	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/obs"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

// Env is the shared laboratory environment for all experiments.
type Env struct {
	Sim     *sim.Simulator
	Catalog []cloud.VMType
	Seed    uint64
	// Workers bounds the worker pool the evaluation sweeps fan out on
	// (leave-one-out folds, ablation configurations, per-workload baseline
	// comparisons); <= 0 means one per CPU. Every experiment renders
	// byte-identically at every worker count: tasks are indexed, seeded
	// independently, and collected in index order.
	Workers int
	// Tracer receives the observability records of every system the
	// experiments construct (DESIGN.md §9); nil disables tracing.
	Tracer *obs.Tracer

	// mu guards truth: sweeps running on the worker pool may request
	// ground-truth tables concurrently.
	mu sync.Mutex
	// truth caches exhaustive ground-truth tables keyed by app-set label.
	truth map[string]*oracle.Table
}

// NewEnv builds the default environment: the paper's measurement protocol
// (4 nodes, 10 repeats, 5 s sampling) over the 120-type catalog.
func NewEnv(seed uint64) *Env {
	return NewEnvWorkers(seed, 0)
}

// NewEnvWorkers is NewEnv with an explicit worker-pool bound (the -workers
// flag of cmd/vestabench); workers <= 0 means one per CPU.
func NewEnvWorkers(seed uint64, workers int) *Env {
	return NewEnvObs(seed, workers, nil)
}

// NewEnvObs is NewEnvWorkers with an observability tracer threaded through
// the simulator (fault events), every meter (profile spans), and every Vesta
// configuration the experiments build. Multiple environments may share one
// tracer: records are pure functions of their inputs and serialize in sorted
// order, so the merged trace is deterministic.
func NewEnvObs(seed uint64, workers int, tracer *obs.Tracer) *Env {
	cfg := sim.DefaultConfig()
	cfg.Tracer = tracer
	return &Env{
		Sim:     sim.New(cfg),
		Catalog: cloud.Catalog120(),
		Seed:    seed,
		Workers: workers,
		Tracer:  tracer,
		truth:   map[string]*oracle.Table{},
	}
}

// Truth returns (building and caching on first use) the exhaustive
// ground-truth table for a named application set. Safe for concurrent use;
// concurrent requests for the same label build the table once.
func (e *Env) Truth(label string, apps []workload.App) *oracle.Table {
	e.mu.Lock()
	defer e.mu.Unlock()
	if t, ok := e.truth[label]; ok {
		return t
	}
	t := oracle.Build(e.Sim, apps, e.Catalog, e.Seed+0x7177)
	e.truth[label] = t
	return t
}

// config threads the environment's worker bound and tracer into a Vesta
// configuration that has not chosen its own.
func (e *Env) config(cfg core.Config) core.Config {
	if cfg.Workers == 0 {
		cfg.Workers = e.Workers
	}
	if cfg.Tracer == nil {
		cfg.Tracer = e.Tracer
	}
	return cfg
}

// Meter returns a fresh measurement meter for one system run.
func (e *Env) Meter(offset uint64) *oracle.Meter {
	return oracle.NewMeter(e.Sim, e.Seed+offset).SetTracer(e.Tracer)
}

// Table is a rendered experiment result.
type Table struct {
	ID      string // e.g. "fig6"
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries paper-vs-measured commentary appended to the render.
	Notes []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render produces an aligned ASCII table.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// RenderMarkdown produces a GitHub-flavored markdown rendering of the table
// (used by vestabench -md to regenerate report documents).
func (t *Table) RenderMarkdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	sb.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		cells := make([]string, len(t.Columns))
		for i := range cells {
			if i < len(row) {
				cells[i] = row[i]
			}
		}
		sb.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n> %s\n", n)
	}
	sb.WriteString("\n")
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Experiment is a named, runnable experiment.
type Experiment struct {
	ID   string
	Desc string
	Run  func(*Env) *Table
}

// Registry lists every reproducible experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"fig1", "Budget heat maps across frameworks (Figure 1)", Fig1Heatmaps},
		{"fig2", "Prediction error of naive cross-framework model reuse (Figure 2)", Fig2NaiveReuse},
		{"fig3", "Training overhead vs error when training from scratch (Figure 3)", Fig3ScratchCost},
		{"fig6", "Prediction error (MAPE) vs PARIS and Ernest (Figure 6)", Fig6PredictionError},
		{"fig7", "Predicting Spark-lr execution time on 10 VM types (Figure 7)", Fig7SparkLR},
		{"fig8", "Training overhead in reference VMs (Figure 8)", Fig8TrainingOverhead},
		{"fig9", "PCA importance of the correlations per framework (Figure 9)", Fig9PCAImportance},
		{"fig10", "Correlation popularity vs VM-type consistency (Figure 10)", Fig10CorrelationScatter},
		{"fig11", "Tuning k in K-Means by 10-fold cross validation (Figure 11)", Fig11KMeansTuning},
		{"fig12", "Execution-time optimization progression (Figure 12)", Fig12TimeProgression},
		{"fig13", "Budget optimization comparison (Figure 13)", Fig13Budget},
		{"ablation-lambda", "CMF tradeoff lambda sweep (DESIGN ablation)", AblationLambda},
		{"ablation-initruns", "Number of random initialization runs (DESIGN ablation)", AblationInitRuns},
		{"ablation-pca", "PCA feature pruning on/off (DESIGN ablation)", AblationPCA},
		{"ablation-features", "Correlation features vs raw metric levels (DESIGN ablation)", AblationFeatures},
		{"ablation-k", "K-Means k sensitivity on target regret (DESIGN ablation)", AblationK},
		{"ext-latency", "Latency-objective selection for streaming workloads (extension)", ExtLatency},
		{"ext-scaling", "Transfer quality vs knowledge-base breadth (extension)", ExtScaling},
		{"ext-search", "Search baselines (Random/CherryPick/Arrow) vs transfer (extension)", ExtSearch},
		{"ext-interference", "Selection quality under multi-tenant interference (extension)", ExtInterference},
		{"ext-datasize", "Generalization across input data scales (extension)", ExtDataSize},
		{"ext-robustness", "Selection quality vs injected fault rate with resilient profiling (extension)", ExtRobustness},
		{"ext-provider-transfer", "Cross-provider transfer: EC2-trained knowledge ranking Azure/GCP catalogs vs native training (extension)", ExtProviderTransfer},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}
