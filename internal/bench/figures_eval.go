// Figures 6-13: the evaluation experiments of Section 5.3.
package bench

import (
	"fmt"
	"math"

	"vesta/internal/baselines"
	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/metrics"
	"vesta/internal/oracle"
	"vesta/internal/parallel"
	"vesta/internal/pca"
	"vesta/internal/rng"
	"vesta/internal/stats"
	"vesta/internal/workload"
)

// evalApps is the Figure 6 workload list: the 5 source-testing (Hadoop/Hive)
// workloads plus the 12 Spark targets.
func evalApps() []workload.App {
	return append(workload.BySet(workload.SourceTesting), workload.TargetSet()...)
}

// trainVesta builds and trains a Vesta system on the 13 training sources.
func trainVesta(env *Env, cfg core.Config) *core.System {
	if cfg.Seed == 0 {
		cfg.Seed = env.Seed + 11
	}
	sys, err := core.New(env.config(cfg), env.Catalog)
	if err != nil {
		panic(err)
	}
	meter := env.Meter(0x60)
	if err := sys.TrainOffline(workload.BySet(workload.SourceTraining), meter); err != nil {
		panic(err)
	}
	return sys
}

// trainParis builds the cross-framework PARIS baseline on all 18 sources.
func trainParis(env *Env) *baselines.Paris {
	paris := baselines.NewParis(env.Catalog, env.Seed+12)
	if err := paris.Train(workload.SourceSet(), env.Meter(0x61)); err != nil {
		panic(err)
	}
	return paris
}

// Fig6PredictionError reproduces Figure 6: per-workload MAPE (Equation 7) of
// Vesta against PARIS (cross-framework reuse) and Ernest, over 3 trials per
// workload to expose run-to-run deviation.
func Fig6PredictionError(env *Env) *Table {
	truth := env.Truth("eval17", evalApps())
	paris := trainParis(env)
	ernest := baselines.NewErnest(env.Catalog, env.Seed+13)

	t := &Table{
		ID:      "fig6",
		Title:   "prediction error (MAPE %, mean over 3 trials; +/- std)",
		Columns: []string{"workload", "Vesta", "PARIS", "Ernest", "Vesta conv."},
	}

	const trials = 3
	// One trained Vesta per trial (training is the expensive step). The
	// trials themselves fan out: each trial's system is an independent seed.
	vestas := parallel.Map(env.Workers, trials, func(trial int) *core.System {
		return trainVesta(env, core.Config{Seed: env.Seed + 11 + uint64(trial)*0x1000})
	})
	// The per-workload comparison is the hot loop: 17 workloads x 3 trials x
	// 3 systems, every cell independently seeded. One worker-pool task per
	// workload; the selectors are read-only during Select/PredictOnline.
	apps := evalApps()
	type appOutcome struct {
		vm, pm, em []float64
		conv       bool
	}
	outcomes := parallel.Map(env.Workers, len(apps), func(i int) appOutcome {
		app := apps[i]
		out := appOutcome{conv: true}
		for trial := 0; trial < trials; trial++ {
			seedOff := uint64(trial) * 0x1000
			pred, err := vestas[trial].PredictOnline(app, env.Meter(0x62+seedOff))
			if err != nil {
				panic(err)
			}
			out.conv = out.conv && pred.Converged
			out.vm = append(out.vm, selectionMAPE(truth, app.Name, pred.Best.Name, pred.PredictedSec[pred.Best.Name]))

			ps, err := paris.Select(app, env.Meter(0x63+seedOff))
			if err != nil {
				panic(err)
			}
			out.pm = append(out.pm, selectionMAPE(truth, app.Name, ps.Best.Name, ps.PredictedSec[ps.Best.Name]))

			es, err := ernest.Select(app, env.Meter(0x64+seedOff))
			if err != nil {
				panic(err)
			}
			out.em = append(out.em, selectionMAPE(truth, app.Name, es.Best.Name, es.PredictedSec[es.Best.Name]))
		}
		return out
	})
	var vAll, pAll, eAll []float64
	for i, app := range apps {
		o := outcomes[i]
		convFlag := "yes"
		if !o.conv {
			convFlag = "no (outlier)"
		}
		t.AddRow(app.Name,
			fmt.Sprintf("%.0f +/- %.0f", stats.Mean(o.vm), stats.StdDev(o.vm)),
			fmt.Sprintf("%.0f +/- %.0f", stats.Mean(o.pm), stats.StdDev(o.pm)),
			fmt.Sprintf("%.0f +/- %.0f", stats.Mean(o.em), stats.StdDev(o.em)),
			convFlag)
		vAll = append(vAll, stats.Mean(o.vm))
		pAll = append(pAll, stats.Mean(o.pm))
		eAll = append(eAll, stats.Mean(o.em))
	}
	// Split means: Hadoop/Hive (first 5) vs Spark (last 12).
	hhV, hhE := stats.Mean(vAll[:5]), stats.Mean(eAll[:5])
	spV, spP := stats.Mean(vAll[5:]), stats.Mean(pAll[5:])
	impr := (1 - spV/spP) * 100
	ratio := hhE / math.Max(hhV, 1e-9)
	t.Notes = append(t.Notes,
		fmt.Sprintf("Spark targets: Vesta mean MAPE %.0f%% vs PARIS %.0f%% -> %.0f%% error reduction (paper: up to 51%% improvement)", spV, spP, impr),
		fmt.Sprintf("Hadoop/Hive testing set: Ernest/Vesta error ratio %.1fx (paper: about 4x)", ratio),
		"paper: two exceptions, Spark-svd++ (run variance close to 40%) and Spark-CF (SGD does not converge)",
	)
	return t
}

// Fig7SparkLR reproduces Figure 7: predicted vs observed execution time of
// Spark-lr on the 10 typical VM types, reported as (Predicted/Observed)x100%
// for Vesta and Ernest.
func Fig7SparkLR(env *Env) *Table {
	app, err := workload.ByName("Spark-lr")
	if err != nil {
		panic(err)
	}
	truth := env.Truth("eval17", evalApps())
	vesta := trainVesta(env, core.Config{})
	pred, err := vesta.PredictOnline(app, env.Meter(0x70))
	if err != nil {
		panic(err)
	}
	ernest := baselines.NewErnest(env.Catalog, env.Seed+14)
	es, err := ernest.Select(app, env.Meter(0x71))
	if err != nil {
		panic(err)
	}

	t := &Table{
		ID:      "fig7",
		Title:   "Spark-lr predicted/observed execution time on 10 typical VM types (100 = perfect)",
		Columns: []string{"VM type", "observed (s)", "Vesta pred (s)", "Vesta %", "Ernest pred (s)", "Ernest %"},
	}
	var vDev, eDev []float64
	for _, vm := range cloud.TypicalTen(env.Catalog) {
		obs, err := truth.Time(app.Name, vm.Name)
		if err != nil {
			panic(err)
		}
		vp := pred.PredictedSec[vm.Name]
		ep := es.PredictedSec[vm.Name]
		vPct := vp / obs * 100
		ePct := ep / obs * 100
		vDev = append(vDev, math.Abs(vPct-100))
		eDev = append(eDev, math.Abs(ePct-100))
		t.AddRow(vm.Name, obs, vp, vPct, ep, ePct)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean |deviation|: Vesta %.0f%%, Ernest %.0f%% (paper: Vesta better or at least comparable on all cases)",
			stats.Mean(vDev), stats.Mean(eDev)),
	)
	return t
}

// Fig8TrainingOverhead reproduces Figure 8: the number of reference VMs each
// system needs for a new (Spark) workload, measured by the shared meter.
func Fig8TrainingOverhead(env *Env) *Table {
	app, err := workload.ByName("Spark-kmeans")
	if err != nil {
		panic(err)
	}
	t := &Table{
		ID:      "fig8",
		Title:   "training overhead for a new framework, in reference VMs",
		Columns: []string{"system", "reference VMs", "breakdown"},
	}

	vesta := trainVesta(env, core.Config{})
	vm := env.Meter(0x80)
	if _, _, err := vesta.Optimize(app, 15, vm); err != nil {
		panic(err)
	}
	t.AddRow("Vesta", vm.Runs(), "1 sandbox + 3 random init + 11 ranked refinement")

	pm := env.Meter(0x81)
	scratch := baselines.NewParisScratch(env.Catalog, env.Seed+15)
	if _, err := scratch.Select(app, pm); err != nil {
		panic(err)
	}
	t.AddRow("PARIS (from scratch)", pm.Runs(), "100 sampled reference VMs")

	em := env.Meter(0x82)
	ernest := baselines.NewErnest(env.Catalog, env.Seed+16)
	if _, err := ernest.Select(app, em); err != nil {
		panic(err)
	}
	t.AddRow("Ernest", em.Runs(), fmt.Sprintf("%d small-scale model-fitting runs", em.Runs()))

	reduction := (1 - 15.0/100.0) * 100
	t.Notes = append(t.Notes,
		fmt.Sprintf("Vesta reduces overhead by %.0f%% vs PARIS (paper: 85%%, 15 vs 100), close to Ernest", reduction),
	)
	return t
}

// Fig9PCAImportance reproduces Figure 9: the PCA importance index of every
// Table 1 correlation, computed separately per framework, plus the fraction
// of data the pruning removes.
func Fig9PCAImportance(env *Env) *Table {
	t := &Table{
		ID:      "fig9",
		Title:   "PCA importance index of the correlations per framework",
		Columns: []string{"correlation", "Hadoop", "Hive", "Spark"},
	}
	sandbox, err := cloud.Find(env.Catalog, "m5.xlarge")
	if err != nil {
		panic(err)
	}
	importance := map[workload.Framework][]float64{}
	pruned := map[workload.Framework]float64{}
	for _, fw := range []workload.Framework{workload.Hadoop, workload.Hive, workload.Spark} {
		var vecs [][]float64
		for _, app := range workload.ByFramework(fw) {
			p := env.Sim.ProfileRun(app, sandbox, env.Seed+0x90)
			vecs = append(vecs, p.Corr.Slice())
		}
		res, err := pca.Fit(vecs)
		if err != nil {
			panic(err)
		}
		importance[fw] = res.Importance
		pruned[fw] = res.PrunedFraction(0.8)
	}
	for c := 0; c < metrics.NumCorrelations; c++ {
		t.AddRow(metrics.CorrelationNames[c],
			fmt.Sprintf("%.3f", importance[workload.Hadoop][c]),
			fmt.Sprintf("%.3f", importance[workload.Hive][c]),
			fmt.Sprintf("%.3f", importance[workload.Spark][c]))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("pruned fraction at threshold 0.8: Hadoop %.0f%%, Hive %.0f%%, Spark %.0f%% (paper: reduces 49%% useless data)",
			pruned[workload.Hadoop]*100, pruned[workload.Hive]*100, pruned[workload.Spark]*100),
	)
	return t
}

// Fig10CorrelationScatter reproduces Figure 10: for every (correlation,
// 0.05-interval) bucket, the number of workloads falling in the bucket
// (popularity) against the consistency of their best VM types (mean pairwise
// Euclidean distance of the best VMs' resource vectors; lower = more
// consistent).
func Fig10CorrelationScatter(env *Env) *Table {
	truth := env.Truth("all30", workload.All())
	sandbox, err := cloud.Find(env.Catalog, "m5.xlarge")
	if err != nil {
		panic(err)
	}
	byName := cloud.ByName(env.Catalog)

	type point struct {
		feature  int
		interval float64
		apps     []string
	}
	buckets := map[string]*point{}
	for _, app := range workload.All() {
		p := env.Sim.ProfileRun(app, sandbox, env.Seed+0xA0)
		for c := 0; c < metrics.NumCorrelations; c++ {
			iv := metrics.Interval(p.Corr[c])
			key := fmt.Sprintf("%d|%.2f", c, iv)
			if buckets[key] == nil {
				buckets[key] = &point{feature: c, interval: iv}
			}
			buckets[key].apps = append(buckets[key].apps, app.Name)
		}
	}

	t := &Table{
		ID:      "fig10",
		Title:   "correlation popularity vs VM-type consistency (buckets with >= 2 workloads)",
		Columns: []string{"correlation", "interval", "popularity", "consistency"},
	}
	var populs, consists []float64
	total := 0
	for _, key := range sortedKeys(buckets) {
		b := buckets[key]
		if len(b.apps) < 2 {
			continue
		}
		// Consistency: mean pairwise distance between the best VMs' resource
		// vectors of the bucket's workloads.
		var dsum float64
		var dn int
		for i := 0; i < len(b.apps); i++ {
			for j := i + 1; j < len(b.apps); j++ {
				vi, _, err := truth.BestByTime(b.apps[i])
				if err != nil {
					panic(err)
				}
				vj, _, err := truth.BestByTime(b.apps[j])
				if err != nil {
					panic(err)
				}
				dsum += resourceDistance(byName[vi.Name], byName[vj.Name])
				dn++
			}
		}
		consistency := dsum / float64(dn)
		t.AddRow(metrics.CorrelationNames[b.feature], fmt.Sprintf("%.2f", b.interval),
			len(b.apps), fmt.Sprintf("%.3f", consistency))
		populs = append(populs, float64(len(b.apps)))
		consists = append(consists, consistency)
		total++
	}
	// "Center" mass: buckets whose consistency is no worse than the median
	// (workloads sharing the interval prefer similar VMs).
	medC := stats.Median(consists)
	center := 0
	for i := range consists {
		if consists[i] <= medC && populs[i] >= 2 {
			center++
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d/%d buckets (%.0f%%) at-or-below median consistency %.2f (paper: near 90%% of the data sticks together in the center)",
			center, total, float64(center)/float64(total)*100, medC),
		"paper: popular correlations shared by many workloads with consistent best VMs are what make K-Means grouping work",
	)
	return t
}

func resourceDistance(a, b cloud.VMType) float64 {
	ra, rb := a.ResourceVector(), b.ResourceVector()
	s := 0.0
	for i := range ra {
		d := ra[i] - rb[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Fig11KMeansTuning reproduces Figure 11: tuning the K-Means hyperparameter
// k with 10-fold cross validation over the source workloads, reporting the
// MAPE of the testing-set workloads when they are held out.
func Fig11KMeansTuning(env *Env) *Table {
	truth := env.Truth("sources18", workload.SourceSet())

	// Collect offline data once over all 18 sources.
	collector, err := core.New(env.config(core.Config{Seed: env.Seed + 17}), env.Catalog)
	if err != nil {
		panic(err)
	}
	data := collector.CollectOffline(workload.SourceSet(), env.Meter(0xB0))

	t := &Table{
		ID:      "fig11",
		Title:   "10-fold CV MAPE by K-Means k (held-out source workloads)",
		Columns: []string{"k", "mean MAPE(%)", "p10", "p90"},
	}
	// The k sweep fans out on the worker pool: every k trains 10 held-out
	// models on its own fold split (seeded by k), so the sweep cells are
	// independent and collect in index order.
	ks := []int{3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
	kMapes := parallel.Map(env.Workers, len(ks), func(i int) []float64 {
		k := ks[i]
		var mapes []float64
		folds := stats.KFold(len(data.Sources), 10, rng.New(env.Seed+uint64(k)))
		for _, fold := range folds {
			if len(fold.Train) < k {
				continue
			}
			sys, err := core.New(env.config(core.Config{K: k, Seed: env.Seed + 17}), env.Catalog)
			if err != nil {
				panic(err)
			}
			if err := sys.TrainFromData(data.Subset(fold.Train)); err != nil {
				panic(err)
			}
			held := make([]workload.App, len(fold.Test))
			for j, ti := range fold.Test {
				held[j] = data.Sources[ti]
			}
			preds, err := sys.PredictBatch(held, func(int) oracle.Service { return env.Meter(0xB1) })
			if err != nil {
				panic(err)
			}
			for j, app := range held {
				mapes = append(mapes, selectionMAPE(truth, app.Name, preds[j].Best.Name, preds[j].PredictedSec[preds[j].Best.Name]))
			}
		}
		return mapes
	})
	bestK, bestMAPE := 0, math.Inf(1)
	for i, k := range ks {
		mapes := kMapes[i]
		mean := stats.Mean(mapes)
		t.AddRow(k, mean, stats.Percentile(mapes, 10), stats.P90(mapes))
		if mean < bestMAPE {
			bestK, bestMAPE = k, mean
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured best k = %d (mean MAPE %.0f%%); paper: lowest prediction error at k = 9", bestK, bestMAPE),
	)
	return t
}

// fig12Apps are the six workloads of the Figure 12/13 progression study.
var fig12Apps = []string{
	"Spark-lr", "Spark-kmeans", "Spark-page-rank",
	"Spark-sort", "Spark-bayes", "Spark-svd++",
}

// Fig12TimeProgression reproduces Figure 12: best-so-far execution time
// found by each system after N sequential runs.
func Fig12TimeProgression(env *Env) *Table {
	paris := trainParis(env)
	vesta := trainVesta(env, core.Config{})
	checkpoints := []int{4, 6, 8, 10, 12, 15}

	t := &Table{
		ID:      "fig12",
		Title:   "best-so-far execution time (s) after N runs",
		Columns: append([]string{"workload", "system"}, intsToStrings(checkpoints)...),
	}
	// One worker-pool task per workload: the three systems' 15-run searches
	// are independent across workloads (shared selectors are read-only).
	truth := env.Truth("eval17", evalApps())
	progressions := parallel.Map(env.Workers, len(fig12Apps), func(i int) map[string][]oracle.Step {
		app, err := workload.ByName(fig12Apps[i])
		if err != nil {
			panic(err)
		}
		vSteps, _, err := vesta.Optimize(app, 15, env.Meter(0xC0))
		if err != nil {
			panic(err)
		}
		pSteps, err := baselines.SequentialSearch(paris, app, env.Catalog, 15, env.Meter(0xC1))
		if err != nil {
			panic(err)
		}
		ernest := baselines.NewErnest(env.Catalog, env.Seed+18)
		eSteps, err := baselines.SequentialSearch(ernest, app, env.Catalog, 15, env.Meter(0xC2))
		if err != nil {
			panic(err)
		}
		return map[string][]oracle.Step{"Vesta": vSteps, "PARIS": pSteps, "Ernest": eSteps}
	})
	vestaWins := 0
	for i, name := range fig12Apps {
		rows := progressions[i]
		for _, sysName := range []string{"Vesta", "PARIS", "Ernest"} {
			cells := []interface{}{name, sysName}
			for _, cp := range checkpoints {
				cells = append(cells, bestTruthTimeAt(truth, name, rows[sysName], cp))
			}
			t.AddRow(cells...)
		}
		// Winner within a 3% measurement-variance band.
		v := bestTruthTimeAt(truth, name, rows["Vesta"], 15)
		if v <= 1.03*bestTruthTimeAt(truth, name, rows["PARIS"], 15) &&
			v <= 1.03*bestTruthTimeAt(truth, name, rows["Ernest"], 15) {
			vestaWins++
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Vesta finds the fastest configuration (within 3%% variance) for %d/6 workloads (paper: fastest for 5 of 6, PARIS lucky on Spark-svd++)", vestaWins),
	)
	return t
}

// bestTruthTimeAt returns the ground-truth execution time of the best VM
// tried within the first run steps — the noise-free view of the exploration
// sequence's quality.
func bestTruthTimeAt(truth *oracle.Table, app string, steps []oracle.Step, run int) float64 {
	best := math.Inf(1)
	for _, s := range steps {
		if s.Run > run {
			continue
		}
		sec, err := truth.Time(app, s.VM)
		if err != nil {
			panic(err)
		}
		if sec < best {
			best = sec
		}
	}
	return best
}

// bestTruthCostAt is bestTruthTimeAt for budget.
func bestTruthCostAt(truth *oracle.Table, app string, steps []oracle.Step, run int) float64 {
	best := math.Inf(1)
	for _, s := range steps {
		if s.Run > run {
			continue
		}
		usd, err := truth.Cost(app, s.VM)
		if err != nil {
			panic(err)
		}
		if usd < best {
			best = usd
		}
	}
	return best
}

// Fig13Budget reproduces Figure 13: the lowest budget found per application
// by each system under the same run budget, exploring in predicted-cost
// order.
func Fig13Budget(env *Env) *Table {
	paris := trainParis(env)
	vesta := trainVesta(env, core.Config{})

	apps := append([]string{"Hadoop-kmeans", "Hive-aggregation"}, fig12Apps[:4]...)
	// A tight 8-run budget: with 15 runs every system reaches the global
	// cheapest type, so the interesting regime is fewer runs.
	const budget = 8
	t := &Table{
		ID:      "fig13",
		Title:   fmt.Sprintf("lowest budget (USD) found within %d runs, predicted-cost exploration", budget),
		Columns: []string{"workload", "Vesta", "PARIS", "Ernest", "oracle best"},
	}
	truth := env.Truth("eval17", evalApps())
	// Per-application searches fan out on the worker pool, mirroring Fig12.
	type budgetRow struct {
		vUSD, pUSD, eUSD, bestCost float64
	}
	budgetRows := parallel.Map(env.Workers, len(apps), func(i int) budgetRow {
		name := apps[i]
		app, err := workload.ByName(name)
		if err != nil {
			panic(err)
		}
		vSteps, _, err := vesta.OptimizeFor(app, budget, core.MinimizeBudget, env.Meter(0xD0))
		if err != nil {
			panic(err)
		}
		pSteps, err := baselines.SequentialSearchFor(paris, app, env.Catalog, budget, true, env.Meter(0xD1))
		if err != nil {
			panic(err)
		}
		ernest := baselines.NewErnest(env.Catalog, env.Seed+19)
		eSteps, err := baselines.SequentialSearchFor(ernest, app, env.Catalog, budget, true, env.Meter(0xD2))
		if err != nil {
			panic(err)
		}
		_, bestCost, err := truth.BestByCost(app.Name)
		if err != nil {
			panic(err)
		}
		return budgetRow{
			vUSD:     bestTruthCostAt(truth, name, vSteps, budget),
			pUSD:     bestTruthCostAt(truth, name, pSteps, budget),
			eUSD:     bestTruthCostAt(truth, name, eSteps, budget),
			bestCost: bestCost,
		}
	})
	better := 0
	for i, name := range apps {
		r := budgetRows[i]
		t.AddRow(name, fmt.Sprintf("%.4f", r.vUSD), fmt.Sprintf("%.4f", r.pUSD),
			fmt.Sprintf("%.4f", r.eUSD), fmt.Sprintf("%.4f", r.bestCost))
		if r.vUSD <= r.pUSD*1.03 && r.vUSD <= r.eUSD*1.03 {
			better++
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Vesta best-or-comparable on %d/%d applications (paper: better or comparable; PARIS poor on Spark, Ernest poor on Hadoop/Hive)", better, len(apps)),
	)
	return t
}
