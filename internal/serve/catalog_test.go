package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vesta/internal/cloud"
	"vesta/internal/wal"
)

func postCatalog(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/catalog", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestCatalogVersionInEveryResponse: the catalog version is part of the
// consistency token — present at version 0 and advanced by every update,
// while the workload count stays put (a catalog update is an epoch increment
// that does not grow the graph).
func TestCatalogVersionInEveryResponse(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	pr := postPredict(t, h, `{"app":"Spark-lr"}`)
	if pr.Code != http.StatusOK {
		t.Fatalf("predict status = %d", pr.Code)
	}
	if !bytes.Contains(pr.Body.Bytes(), []byte(`"catalog_version":0`)) {
		t.Fatalf("version-0 response lacks catalog_version: %s", pr.Body.String())
	}

	rec := postCatalog(t, h, `{"reprice":{"m5.xlarge":0.5}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("catalog status = %d, body = %s", rec.Code, rec.Body.String())
	}
	var resp CatalogResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != 1 || resp.CatalogVersion != 1 || resp.VMCount != 120 || resp.Durable {
		t.Fatalf("catalog response = %+v", resp)
	}

	pr = postPredict(t, h, `{"app":"Spark-lr"}`)
	presp, err := decodeResponse(pr.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if presp.Epoch != 1 || presp.CatalogVersion != 1 || presp.Workloads != baseWorkloads {
		t.Fatalf("post-update token = (epoch %d, catVersion %d, workloads %d)",
			presp.Epoch, presp.CatalogVersion, presp.Workloads)
	}

	// healthz and stats expose the same version.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	hr := httptest.NewRecorder()
	h.ServeHTTP(hr, req)
	if !bytes.Contains(hr.Body.Bytes(), []byte(`"catalog_version":1`)) {
		t.Fatalf("healthz lacks catalog_version: %s", hr.Body.String())
	}
	st := s.Stats()
	if st.CatalogVersion != 1 || st.CatalogUpdates != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCatalogRepriceReachesResponses: PredictedUSD must be computed against
// the *current* catalog version, not a construction-time price index.
func TestCatalogRepriceReachesResponses(t *testing.T) {
	s := newTestServer(t, Config{})
	bestUSD := func(resp *Response) float64 {
		t.Helper()
		for _, r := range resp.Ranking {
			if r.VM == resp.Best {
				return float64(r.PredictedUSD)
			}
		}
		t.Fatalf("best %q not in ranking", resp.Best)
		return 0
	}
	resp, err := s.Predict(context.Background(), Request{App: "Spark-kmeans"})
	if err != nil {
		t.Fatal(err)
	}
	best := resp.Best
	oldUSD := bestUSD(resp)
	if oldUSD <= 0 {
		t.Fatalf("PredictedUSD = %v", oldUSD)
	}
	vm, ok := s.Snapshot().VM(best)
	if !ok {
		t.Fatalf("best VM %q not in catalog", best)
	}
	if _, err := s.UpdateCatalog(cloud.Update{
		Reprice: map[string]float64{best: vm.PriceHour * 10},
	}); err != nil {
		t.Fatal(err)
	}
	resp2, err := s.Predict(context.Background(), Request{App: "Spark-kmeans"})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Best != best {
		t.Fatalf("ranking changed on a pure reprice: %q vs %q", resp2.Best, best)
	}
	if got, want := bestUSD(resp2), oldUSD*10; got < want*0.999 || got > want*1.001 {
		t.Fatalf("PredictedUSD after 10x reprice = %v, want ~%v", got, want)
	}
}

// TestCatalogUpdateSelfInvalidatesCache: the response cache keys on the
// epoch, so a catalog update (epoch bump) makes stale priced bytes
// unreachable without an explicit flush.
func TestCatalogUpdateSelfInvalidatesCache(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: 32})
	req := Request{App: "Spark-sort"}
	b1, err := s.PredictBytes(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PredictBytes(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CacheHits != 1 {
		t.Fatalf("warm-up stats = %+v", st)
	}
	if _, err := s.UpdateCatalog(cloud.Update{Reprice: map[string]float64{"m5.xlarge": 0.9}}); err != nil {
		t.Fatal(err)
	}
	b2, err := s.PredictBytes(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CacheHits != 1 || st.CacheMisses != 2 {
		t.Fatalf("post-update stats = %+v (stale hit?)", st)
	}
	if bytes.Equal(b1, b2) {
		t.Fatal("post-update bytes identical to pre-update bytes (stale token)")
	}
}

// TestCatalogUpdateDurabilityOrdering mirrors the absorb ordering contract:
// append → ack → publish; a failed append publishes nothing.
func TestCatalogUpdateDurabilityOrdering(t *testing.T) {
	fw := &fakeWAL{}
	s := newTestServer(t, Config{WAL: fw})
	var publishedAtAppend uint64
	fw.onAppend = func(epoch uint64) { publishedAtAppend = s.Snapshot().Epoch() }
	up := cloud.Update{Reprice: map[string]float64{"m5.xlarge": 0.5}}
	resp, err := s.UpdateCatalog(up)
	if err != nil {
		t.Fatal(err)
	}
	if publishedAtAppend != 0 {
		t.Fatalf("published epoch at AppendCatalog time = %d, want 0", publishedAtAppend)
	}
	if !resp.Durable || resp.Epoch != 1 || resp.CatalogVersion != 1 {
		t.Fatalf("response = %+v", resp)
	}
	if len(fw.appends) != 1 || fw.appends[0] != 1 || len(fw.committed) != 1 {
		t.Fatalf("appends = %v, committed = %v", fw.appends, fw.committed)
	}

	fw.appendErr = errors.New("disk full")
	if _, err := s.UpdateCatalog(cloud.Update{Reprice: map[string]float64{"c5.large": 0.7}}); err == nil ||
		!errors.Is(err, fw.appendErr) {
		t.Fatalf("err = %v, want wrapped append error", err)
	}
	snap := s.Snapshot()
	if snap.Epoch() != 1 || snap.CatalogVersion() != 1 {
		t.Fatalf("failed append advanced state: epoch %d, catVersion %d", snap.Epoch(), snap.CatalogVersion())
	}
}

// TestCatalogHTTPErrors: invalid updates answer 400 with the state untouched;
// read-only replicas answer 403; a draining server 503.
func TestCatalogHTTPErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	cases := []struct {
		name     string
		body     string
		wantCode int
		wantErr  string
	}{
		{"empty update", `{}`, http.StatusBadRequest, "bad_request"},
		{"not json", `hello`, http.StatusBadRequest, "bad_request"},
		{"unknown field", `{"nonsense":1}`, http.StatusBadRequest, "bad_request"},
		{"unknown retiree", `{"retire":["never.existed"]}`, http.StatusBadRequest, "bad_request"},
		{"bad price", `{"reprice":{"m5.xlarge":-1}}`, http.StatusBadRequest, "bad_request"},
		{"retires sandbox", `{"retire":["m5.xlarge"]}`, http.StatusBadRequest, "bad_request"},
		{"duplicate add", `{"add":[{"name":"m5.xlarge","vcpus":4,"price_hour":1}]}`,
			http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postCatalog(t, h, tc.body)
			if rec.Code != tc.wantCode {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.wantCode, rec.Body.String())
			}
			var e errorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != tc.wantErr {
				t.Fatalf("error body = %s, want code %q", rec.Body.String(), tc.wantErr)
			}
		})
	}
	snap := s.Snapshot()
	if snap.Epoch() != 0 || snap.CatalogVersion() != 0 {
		t.Fatalf("rejected updates moved state: epoch %d, catVersion %d", snap.Epoch(), snap.CatalogVersion())
	}

	ro := newTestServer(t, Config{ReadOnly: true})
	rec := postCatalog(t, ro.Handler(), `{"reprice":{"m5.xlarge":0.5}}`)
	if rec.Code != http.StatusForbidden {
		t.Fatalf("read-only status = %d, want 403 (body %s)", rec.Code, rec.Body.String())
	}

	dr, err := New(testSnapshot(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	dr.Close()
	if rec := postCatalog(t, dr.Handler(), `{"reprice":{"m5.xlarge":0.5}}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", rec.Code)
	}
}

// TestCatalogGetEndpoint: GET /catalog reports the live (epoch, version) and
// the full current type list, following updates.
func TestCatalogGetEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	get := func() (uint64, uint64, []cloud.VMType) {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, "/catalog", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /catalog status = %d", rec.Code)
		}
		var out struct {
			Epoch          uint64         `json:"epoch"`
			CatalogVersion uint64         `json:"catalog_version"`
			Types          []cloud.VMType `json:"types"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out.Epoch, out.CatalogVersion, out.Types
	}
	if e, v, types := get(); e != 0 || v != 0 || len(types) != 120 {
		t.Fatalf("base catalog: epoch %d version %d types %d", e, v, len(types))
	}
	if rec := postCatalog(t, h, `{"retire":["c4.large"],"reprice":{"m5.xlarge":0.4242}}`); rec.Code != http.StatusOK {
		t.Fatalf("update failed: %s", rec.Body.String())
	}
	e, v, types := get()
	if e != 1 || v != 1 || len(types) != 119 {
		t.Fatalf("updated catalog: epoch %d version %d types %d", e, v, len(types))
	}
	for _, vt := range types {
		if vt.Name == "c4.large" {
			t.Fatal("retired type still listed")
		}
		if vt.Name == "m5.xlarge" && vt.PriceHour != 0.4242 {
			t.Fatalf("reprice not visible: %v", vt.PriceHour)
		}
	}
}

// TestCatalogRecoveredServerServesIdenticalBytes drives the full loop
// through a real WAL: absorb + catalog updates, kill the server, recover
// from disk, and demand byte-identical predict bytes at the same (epoch,
// catalog version).
func TestCatalogRecoveredServerServesIdenticalBytes(t *testing.T) {
	base := testSnapshot(t)
	dir := t.TempDir()
	mgr, snap, err := wal.Open(base, wal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(snap, Config{WAL: mgr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.AbsorbApp(AbsorbRequest{Name: "t1", App: "Spark-kmeans", Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.UpdateCatalog(cloud.Update{
		Retire:  []string{"c4.large"},
		Reprice: map[string]float64{"m5.xlarge": 0.3131},
		Add:     cloud.GCPCatalog(),
	}); err != nil {
		t.Fatal(err)
	}
	reqs := []Request{
		{App: "Spark-lr", Top: 5},
		{App: "Spark-kmeans", Seed: 3},
	}
	var want [][]byte
	for _, r := range reqs {
		b, err := s1.PredictBytes(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, b)
	}
	live := s1.Snapshot()
	s1.Close()
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	mgr2, rec, err := wal.Open(base, wal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if rec.Epoch() != live.Epoch() || rec.CatalogVersion() != live.CatalogVersion() {
		t.Fatalf("recovered token (%d, %d), want (%d, %d)",
			rec.Epoch(), rec.CatalogVersion(), live.Epoch(), live.CatalogVersion())
	}
	s2, err := New(rec, Config{WAL: mgr2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, r := range reqs {
		got, err := s2.PredictBytes(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("request %d: recovered bytes differ\nlive:      %s\nrecovered: %s",
				i, want[i], got)
		}
	}
}
