package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"vesta/internal/obs"
	"vesta/internal/oracle"
	"vesta/internal/sim"
)

// TestSoakPredictorsVsHotSwappers is the race/soak test from the issue: N
// goroutines issue predictions while M goroutines hot-swap snapshots via
// Absorb. Run under -race in tier-1. Every response carries the snapshot
// consistency token (epoch, workloads): a snapshot absorbed e times over the
// 13-source base must report exactly 13+e workloads, so any prediction that
// observed a half-published snapshot — an epoch from one state paired with a
// graph from another — fails the invariant below.
func TestSoakPredictorsVsHotSwappers(t *testing.T) {
	const (
		predictors           = 4
		requestsPerPredictor = 12
		swappers             = 2
		absorbsPerSwapper    = 3
	)
	s := newTestServer(t, Config{
		Workers:   4,
		QueueSize: 64,
		BatchSize: 8,
		CacheSize: 32, // small: exercise eviction under contention
		Tracer:    obs.New(),
	})

	// One completed prediction supplies the (label weights, pruned vector)
	// payload every absorb reuses under a unique name.
	seedPred, err := s.Snapshot().Predict(mustApp(t, "Spark-grep"),
		oracle.NewMeter(sim.New(sim.DefaultConfig()), 99))
	if err != nil {
		t.Fatal(err)
	}

	apps := []string{"Spark-kmeans", "Spark-lr", "Spark-sort", "Spark-grep"}
	var violations atomic.Int64
	var wg sync.WaitGroup

	for g := 0; g < predictors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lastEpoch := uint64(0)
			for i := 0; i < requestsPerPredictor; i++ {
				req := Request{
					App:  apps[(g+i)%len(apps)],
					Seed: uint64(g*100 + i%3 + 1), // mix of cache hits and misses
					Top:  3,
				}
				resp, err := s.Predict(context.Background(), req)
				if err != nil {
					t.Errorf("predictor %d: %v", g, err)
					return
				}
				if resp.Workloads != baseWorkloads+int(resp.Epoch) {
					violations.Add(1)
					t.Errorf("torn snapshot observed: epoch %d with %d workloads (want %d)",
						resp.Epoch, resp.Workloads, baseWorkloads+int(resp.Epoch))
				}
				// atomic.Pointer loads are sequentially consistent, so one
				// goroutine can never see the epoch move backwards.
				if resp.Epoch < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", resp.Epoch, lastEpoch)
				}
				lastEpoch = resp.Epoch
			}
		}(g)
	}

	for g := 0; g < swappers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < absorbsPerSwapper; i++ {
				name := fmt.Sprintf("soak-target-%d-%d", g, i)
				if err := s.Absorb(name, seedPred.LabelWeights, seedPred.PrunedVec); err != nil {
					t.Errorf("swapper %d: %v", g, err)
					return
				}
			}
		}(g)
	}

	wg.Wait()
	if n := violations.Load(); n != 0 {
		t.Fatalf("%d consistency violations", n)
	}
	st := s.Stats()
	wantSwaps := int64(swappers * absorbsPerSwapper)
	if st.Swaps != wantSwaps || st.Epoch != uint64(wantSwaps) {
		t.Fatalf("swaps = %d, epoch = %d, want %d", st.Swaps, st.Epoch, wantSwaps)
	}
	if st.Workloads != baseWorkloads+int(wantSwaps) {
		t.Fatalf("final workloads = %d, want %d", st.Workloads, baseWorkloads+int(wantSwaps))
	}
	if st.Requests != predictors*requestsPerPredictor {
		t.Fatalf("requests = %d, want %d", st.Requests, predictors*requestsPerPredictor)
	}
}
