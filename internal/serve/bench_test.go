package serve

import (
	"context"
	"sync"
	"testing"
)

// benchServe measures end-to-end request throughput at a given worker count
// under an arbitrary serving configuration; results/serve.md is produced
// from this benchmark. Workers/queue/batch are fixed here so arms differ
// only in the fields the arm is about (cache, cold/warm/approx, memoization).
func benchServe(b *testing.B, workers int, cfg Config) {
	cfg.Workers = workers
	cfg.QueueSize = 1024
	cfg.BatchSize = 32
	s, err := New(testSnapshot(b), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	apps := []string{"Spark-kmeans", "Spark-lr", "Spark-sort", "Spark-grep"}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	sem := make(chan struct{}, 64) // bounded client concurrency
	for i := 0; i < b.N; i++ {
		req := Request{App: apps[i%len(apps)], Seed: uint64(i%8 + 1), Top: 3}
		wg.Add(1)
		sem <- struct{}{}
		go func(req Request) {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := s.PredictBytes(context.Background(), req); err != nil {
				b.Error(err)
			}
		}(req)
	}
	wg.Wait()
	b.StopTimer()
	st := s.Stats()
	if st.Requests > 0 {
		b.ReportMetric(st.HitRate, "hit-rate")
		b.ReportMetric(float64(st.MaxBatch), "max-batch")
	}
}

// Cached arms measure steady-state traffic (repeated queries, high hit
// rate); NoCache arms expose the raw compute scaling of the batch pool.
func BenchmarkServeWorkers1(b *testing.B)         { benchServe(b, 1, Config{}) }
func BenchmarkServeWorkers4(b *testing.B)         { benchServe(b, 4, Config{}) }
func BenchmarkServeWorkers16(b *testing.B)        { benchServe(b, 16, Config{}) }
func BenchmarkServeWorkers1NoCache(b *testing.B)  { benchServe(b, 1, Config{NoCache: true}) }
func BenchmarkServeWorkers4NoCache(b *testing.B)  { benchServe(b, 4, Config{NoCache: true}) }
func BenchmarkServeWorkers16NoCache(b *testing.B) { benchServe(b, 16, Config{NoCache: true}) }

// The uncached-arm ladder of DESIGN.md §12, all at 4 workers with the
// response cache off so every request pays the predict path:
//
//	Cold      — the historical arm: cold CMF solve, no profile memoization.
//	Warm      — precomputed-plan warm start, memoization off.
//	WarmMemo  — the default serving path (warm start + profile memoization).
//	Approx    — FreezeSource approximate mode on top of WarmMemo.
func BenchmarkPredictNoCacheCold(b *testing.B) {
	benchServe(b, 4, Config{NoCache: true, ColdStart: true, ProfileCacheSize: -1})
}
func BenchmarkPredictNoCacheWarm(b *testing.B) {
	benchServe(b, 4, Config{NoCache: true, ProfileCacheSize: -1})
}
func BenchmarkPredictNoCacheWarmMemo(b *testing.B) {
	benchServe(b, 4, Config{NoCache: true})
}
func BenchmarkPredictNoCacheApprox(b *testing.B) {
	benchServe(b, 4, Config{NoCache: true, Approx: true})
}
