package serve

import (
	"context"
	"sync"
	"testing"
)

// benchServe measures end-to-end request throughput at a given worker count
// and cache setting; results/serve.md is produced from this benchmark.
func benchServe(b *testing.B, workers int, noCache bool) {
	s, err := New(testSnapshot(b), Config{
		Workers:   workers,
		QueueSize: 1024,
		BatchSize: 32,
		NoCache:   noCache,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	apps := []string{"Spark-kmeans", "Spark-lr", "Spark-sort", "Spark-grep"}
	b.ResetTimer()
	var wg sync.WaitGroup
	sem := make(chan struct{}, 64) // bounded client concurrency
	for i := 0; i < b.N; i++ {
		req := Request{App: apps[i%len(apps)], Seed: uint64(i%8 + 1), Top: 3}
		wg.Add(1)
		sem <- struct{}{}
		go func(req Request) {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := s.PredictBytes(context.Background(), req); err != nil {
				b.Error(err)
			}
		}(req)
	}
	wg.Wait()
	b.StopTimer()
	st := s.Stats()
	if st.Requests > 0 {
		b.ReportMetric(float64(st.CacheHits)/float64(st.Requests), "hit-rate")
		b.ReportMetric(float64(st.MaxBatch), "max-batch")
	}
}

// Cached arms measure steady-state traffic (repeated queries, high hit
// rate); NoCache arms expose the raw compute scaling of the batch pool.
func BenchmarkServeWorkers1(b *testing.B)         { benchServe(b, 1, false) }
func BenchmarkServeWorkers4(b *testing.B)         { benchServe(b, 4, false) }
func BenchmarkServeWorkers16(b *testing.B)        { benchServe(b, 16, false) }
func BenchmarkServeWorkers1NoCache(b *testing.B)  { benchServe(b, 1, true) }
func BenchmarkServeWorkers4NoCache(b *testing.B)  { benchServe(b, 4, true) }
func BenchmarkServeWorkers16NoCache(b *testing.B) { benchServe(b, 16, true) }
