// Package serve implements the concurrent prediction-serving subsystem: a
// long-lived server that amortizes one trained Vesta system across many
// simultaneous prediction requests.
//
// Architecture (DESIGN.md §10):
//
//   - Trained state is published as an immutable core.Snapshot behind an
//     atomic pointer. Updates (absorbing a completed target) build a new
//     snapshot copy-on-write and hot-swap the pointer; in-flight predictions
//     keep the snapshot they captured, so readers never block on writers and
//     never observe a half-published state.
//   - Admission goes through a bounded queue. A dispatcher drains the queue
//     into batches and fans each batch out on the internal/parallel worker
//     pool — the same PredictBatch-shaped execution the offline paths use.
//     A full queue rejects immediately with ErrQueueFull (backpressure
//     instead of unbounded buffering); a draining server rejects with
//     ErrShuttingDown.
//   - A fixed-capacity LRU cache keyed by (snapshot epoch, request
//     fingerprint) short-circuits repeated queries past the CMF solve. The
//     epoch in the key makes hot-swaps self-invalidating. Hits are answered
//     at admission, before the queue — a cached response never waits behind
//     uncached compute — and concurrent misses on the same key coalesce
//     into a single computation (singleflight), so a thundering herd charges
//     one solve, not N.
//   - The uncached path itself is the precomputed-plan fast path (DESIGN.md
//     §12): predictions run through Snapshot.PredictFast (warm-started CMF
//     over the lineage's converged plan factors) and the default meter
//     memoizes profiling campaigns, which are pure functions of
//     (app, vm, seed). Config.ColdStart restores the historical cold-solve
//     arm bit-for-bit.
//   - With a configured write-ahead log (Config.WAL, DESIGN.md §11) the
//     absorb path is durable: the record is appended and fsynced before the
//     hot-swap publishes it, so a crash-restarted server recovers every
//     absorbed workload instead of re-profiling it.
//
// Determinism contract: the response body is a pure function of (snapshot,
// request). Worker count, batch formation, cache state, and concurrent
// hot-swaps can change *which* snapshot a request sees and how fast it is
// answered, but never the bytes produced for a given (snapshot, request)
// pair — the serving extension of the repo's offline bit-identical contract.
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/obs"
	"vesta/internal/oracle"
	"vesta/internal/parallel"
	"vesta/internal/sim"
	"vesta/internal/wal"
	"vesta/internal/workload"
)

// Typed serving errors. Handlers and clients match with errors.Is.
var (
	// ErrQueueFull is returned when the admission queue is at capacity; the
	// caller should back off and retry (HTTP 503 with a Retry-After hint).
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrShed is returned when a best-effort request (Priority >= 1) is
	// refused because queue occupancy crossed Config.ShedThreshold. It wraps
	// ErrQueueFull so clients and handlers that already match the 503
	// back-off contract keep working; the Stats counter tells them apart.
	ErrShed = fmt.Errorf("%w: shed best-effort traffic", ErrQueueFull)
	// ErrShuttingDown is returned for requests admitted after Close began;
	// already-queued requests still drain to completion.
	ErrShuttingDown = errors.New("serve: server shutting down")
	// ErrReadOnly is returned for mutating control-plane requests against a
	// read-only replica (HTTP 403): a follower's state comes from the
	// replication stream, never from its own clients.
	ErrReadOnly = errors.New("serve: read-only replica")
	// ErrUnknownApp is returned when the requested application is not in the
	// workload table.
	ErrUnknownApp = errors.New("serve: unknown application")
	// ErrBadRequest is returned for requests that fail validation before
	// admission (missing app, negative input size, malformed body).
	ErrBadRequest = errors.New("serve: bad request")
	// ErrConflict is returned when an absorb names a workload already in the
	// knowledge graph (HTTP 409).
	ErrConflict = errors.New("serve: workload already absorbed")
	// ErrStaged is returned for mutations (absorb, catalog update) while an
	// upgrade candidate is staged but not yet committed: the fleet is mid-
	// rollout and every node must hold still so the health gate compares like
	// with like. Commit or revert the staged version to unfreeze.
	ErrStaged = errors.New("serve: upgrade staged; mutations frozen")
)

// WriteAheadLog is the durability hook of the absorb path (implemented by
// internal/wal.Manager). When configured, Absorb appends the record and waits
// for the durable acknowledgement *before* publishing the new snapshot, so a
// crash can never forget a state a response has already revealed; Committed
// runs after the hot-swap and may compact the log.
type WriteAheadLog interface {
	// Append durably records one absorb; returning nil is the ack.
	Append(name string, labelWeights, prunedVec []float64, epoch uint64) error
	// AppendCatalog durably records one catalog update (the second WAL record
	// kind, wal.KindCatalog) under the same contract as Append.
	AppendCatalog(up cloud.Update, epoch uint64) error
	// Committed observes the published snapshot carrying the last appended
	// record. An error here is operational (failed compaction), never a
	// reason to unpublish: the record itself is already durable.
	Committed(snap *core.Snapshot) error
}

// CheckpointInstaller is the optional durability hook of the staged-upgrade
// commit (implemented by wal.Manager.Install): when the configured WAL also
// implements it, CommitStaged installs the candidate snapshot as the durable
// state — checkpoint written, log trimmed, acknowledged epoch advanced — so
// a crash after commit recovers the new version, never the incumbent.
type CheckpointInstaller interface {
	Install(snap *core.Snapshot) error
}

// Config tunes the server. Zero values take the defaults noted per field.
type Config struct {
	// Workers bounds the parallel pool a batch fans out on (<= 0: one per
	// CPU). Response bytes are identical at every value.
	Workers int
	// QueueSize bounds the admission queue; default 256.
	QueueSize int
	// ShedThreshold enables priority-aware load shedding: a best-effort
	// request (Request.Priority >= 1) is rejected with ErrShed once queue
	// occupancy reaches this fraction of QueueSize, keeping headroom for
	// premium (Priority 0) traffic during overload. 0 disables shedding
	// (every request competes for the full queue); values outside [0, 1]
	// are rejected by New.
	ShedThreshold float64
	// BatchSize bounds how many queued requests one dispatch drains into a
	// single parallel batch; default 16.
	BatchSize int
	// CacheSize is the LRU response-cache capacity in entries; default 1024.
	// NoCache disables caching entirely (the cache-off arm of the
	// determinism proof).
	CacheSize int
	NoCache   bool
	// ColdStart serves predictions through the historical cold CMF solve
	// (Snapshot.Predict) instead of the warm-started plan path
	// (Snapshot.PredictFast). The cold arm is bit-identical to every release
	// before precomputed plans existed; the default warm arm optimizes the
	// same objective from the plan's converged factors and may rank
	// borderline VMs differently (accuracy bounds in internal/bench).
	ColdStart bool
	// Approx opts the warm path into CMF's FreezeSource approximate mode:
	// source factors stay frozen and only the target row is fitted — an
	// order of magnitude cheaper again, with a documented accuracy tradeoff.
	// Ignored under ColdStart.
	Approx bool
	// ProfileCacheSize bounds the memoized-measurement LRU shared by the
	// default per-request meters (0: 4096 entries; negative: memoization
	// off). Only the default meter memoizes — its profiles are pure
	// functions of (app, vm, seed) — so a custom MeterFor is never cached.
	// Run accounting is unchanged either way: recalled profiles still charge
	// the meter.
	ProfileCacheSize int
	// SimConfig configures the per-request measurement simulator (cluster
	// size, repeats). The zero value takes sim.DefaultConfig().
	SimConfig sim.Config
	// MeterFor overrides the measurement service built for a request seed
	// (fault-injection rehearsals, tests). Nil builds a fresh
	// oracle.NewMeter(sim.New(SimConfig), seed) per request, which keeps
	// responses a pure function of (snapshot, request).
	MeterFor func(seed uint64) oracle.Service
	// Tracer receives serving counters (requests, cache hits, swaps) and
	// Max aggregates (snapshot epoch, peak batch size). Live concurrent
	// traffic makes batch formation and cache hits schedule-dependent, so a
	// serving trace is only byte-reproducible for sequential replays; the
	// response bodies are always reproducible.
	Tracer *obs.Tracer
	// WAL, when non-nil, makes absorbed state durable (DESIGN.md §11): every
	// Absorb is appended and fsynced through this hook before its snapshot is
	// published. Nil serves in-memory only (restart loses absorbed targets).
	WAL WriteAheadLog
	// ReadOnly rejects client-driven absorbs (AbsorbApp, POST /absorb) with
	// ErrReadOnly. Replication followers run read-only: their state advances
	// exclusively through the leader's stream (Absorb/Publish stay available
	// to the in-process replication loop).
	ReadOnly bool
	// RolloutControl mounts the staged-upgrade control plane (POST
	// /rollout/{stage,commit,revert}, GET /rollout/status) on Handler. Off by
	// default: only fleets run by a rollout coordinator should accept remote
	// version pushes.
	RolloutControl bool
	// DecodeBase, when non-nil, is the decode basis for candidate snapshots
	// arriving via POST /rollout/stage: its Config and version-0 catalog are
	// passed to core.DecodeSnapshot exactly as a replication follower passes
	// its epoch-0 base. Nil uses the construction snapshot (correct unless the
	// server was constructed from recovered state whose catalog had already
	// evolved past version 0).
	DecodeBase *core.Snapshot
}

func (c *Config) fillDefaults() {
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.ProfileCacheSize == 0 {
		c.ProfileCacheSize = defaultProfileCacheSize
	}
	if c.SimConfig.Nodes == 0 && c.SimConfig.Repeats == 0 {
		c.SimConfig = sim.DefaultConfig()
	}
}

// Request is one prediction query.
type Request struct {
	// App is the Table 3 application name (required).
	App string `json:"app"`
	// InputGB overrides the application's input size when > 0.
	InputGB float64 `json:"input_gb,omitempty"`
	// Seed drives the request's measurement stream; 0 takes the CLI default
	// seed 1. Requests with equal (app, input_gb, seed, top) against the
	// same snapshot epoch produce byte-identical responses.
	Seed uint64 `json:"seed,omitempty"`
	// Top bounds the ranking entries in the response; 0 takes 10, values
	// beyond the catalog return the full ranking.
	Top int `json:"top,omitempty"`
	// Priority classes the request for admission control only: 0 is premium,
	// >= 1 is best-effort and eligible for shedding under Config.ShedThreshold.
	// The response body is independent of Priority (it is not part of the
	// cache identity); negative values fail validation.
	Priority int `json:"priority,omitempty"`
}

// fingerprint is the cache identity of a resolved request. Float bits are
// rendered exactly so distinct inputs can never collide.
func (r Request) fingerprint() string {
	return r.App + "\x00" + strconv.FormatUint(math.Float64bits(r.InputGB), 16) +
		"\x00" + strconv.FormatUint(r.Seed, 10) + "\x00" + strconv.Itoa(r.Top)
}

// jsonFloat renders exactly like float64 except that non-finite values
// (an Inf predicted time for a zero-scored VM) become JSON null, keeping
// every response body valid JSON with pinned bytes.
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// RankEntry is one VM in a response ranking.
type RankEntry struct {
	VM           string    `json:"vm"`
	Score        jsonFloat `json:"score"`
	PredictedSec jsonFloat `json:"predicted_sec"`
	PredictedUSD jsonFloat `json:"predicted_usd"`
}

// Response is the serialized prediction outcome. Every field is a pure
// function of (snapshot, request); in particular Epoch and Workloads form
// the snapshot-consistency token (see core.Snapshot.Workloads), and nothing
// schedule-dependent (cache state, batch shape, queue depth) is included.
type Response struct {
	Target    string `json:"target"`
	Epoch     uint64 `json:"epoch"`
	Workloads int    `json:"workloads"`
	// CatalogVersion is the catalog the ranking was computed against
	// (core.Snapshot.CatalogVersion): 0 until a catalog update is absorbed,
	// then the version of the update lineage. Always emitted — together with
	// Epoch and Workloads it completes the consistency token.
	CatalogVersion uint64      `json:"catalog_version"`
	Best           string      `json:"best"`
	Converged      bool        `json:"converged"`
	MatchDistance  jsonFloat   `json:"match_distance"`
	OnlineRuns     int         `json:"online_runs"`
	Ranking        []RankEntry `json:"ranking"`
}

// Stats is a point-in-time view of the server's counters. Schedule-dependent
// by nature (queue depth, hit counts); exposed for operators, not for the
// determinism contract.
type Stats struct {
	Requests    int64 `json:"requests"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Coalesced counts the subset of CacheHits that attached to an
	// in-flight computation of the same (epoch, fingerprint) instead of
	// reading an already-cached body. Every request counts exactly one of
	// CacheHits/CacheMisses (a coalesced waiter is a hit, never a second
	// miss), so CacheHits+CacheMisses equals the cache-eligible requests.
	Coalesced int64 `json:"coalesced"`
	// HitRate is CacheHits/Requests — the definition the results/serve.md
	// bench table reports. Zero when no requests have been served.
	HitRate      float64 `json:"hit_rate"`
	CacheLen     int     `json:"cache_len"`
	QueueDepth   int     `json:"queue_depth"`
	QueueRejects int64   `json:"queue_rejects"`
	// Shed counts best-effort requests refused by the priority shed gate
	// (Config.ShedThreshold) — disjoint from QueueRejects, which counts hard
	// queue-full rejections.
	Shed      int64  `json:"shed"`
	Batches   int64  `json:"batches"`
	MaxBatch  int64  `json:"max_batch"`
	Canceled  int64  `json:"canceled"`
	Swaps     int64  `json:"swaps"`
	Epoch     uint64 `json:"epoch"`
	Workloads int    `json:"workloads"`
	// CatalogVersion is the published snapshot's catalog version;
	// CatalogUpdates counts catalog updates absorbed this session.
	CatalogVersion uint64 `json:"catalog_version"`
	CatalogUpdates int64  `json:"catalog_updates"`
	Durable        bool   `json:"durable"`
	WALAppends     int64  `json:"wal_appends"`
	// Profile-memoization counters of the default meter (all zero when a
	// custom MeterFor is configured or memoization is disabled). ProfileHits
	// are simulated cluster campaigns skipped by recall; run accounting in
	// responses is identical either way.
	ProfileHits   int64 `json:"profile_hits"`
	ProfileMisses int64 `json:"profile_misses"`
	ProfileLen    int   `json:"profile_len"`
	// ReadOnly mirrors Config.ReadOnly (follower replicas).
	ReadOnly bool `json:"read_only"`
	// StagedVersion is the pending rollout version while a candidate is
	// staged uncommitted (DESIGN.md §16); CommittedVersion is the last
	// version this node committed. Both empty outside rollouts.
	StagedVersion    string `json:"staged_version,omitempty"`
	CommittedVersion string `json:"committed_version,omitempty"`
	// Replication carries the follower sync counters registered via
	// SetReplicationStats (transient fetch failures, frames applied, replays,
	// pauses); nil on leaders and standalone servers.
	Replication any `json:"replication,omitempty"`
	// WAL is the durable log's own health view (last acked epoch, log size,
	// quarantined checkpoints) when the configured WriteAheadLog exposes one;
	// nil for in-memory servers and opaque WAL implementations.
	WAL *wal.Stats `json:"wal,omitempty"`
}

type task struct {
	req Request // resolved: defaults filled
	app workload.App
	// snap is the snapshot captured at admission: the fast-path cache probe
	// and the queued execution see the same epoch, so a request can never
	// miss against one snapshot and compute against another.
	snap *core.Snapshot
	key  cacheKey        // valid only when caching is enabled
	ctx  context.Context // the requester's context; a canceled task is skipped, not computed
	done chan taskResult
}

type taskResult struct {
	body []byte
	err  error
}

// Server is the concurrent prediction service. Create with New, stop with
// Close. All exported methods are safe for concurrent use.
type Server struct {
	cfg      Config
	meterFor func(seed uint64) oracle.Service

	snap atomic.Pointer[core.Snapshot]

	closeMu  sync.RWMutex // guards queue sends against close
	draining bool
	queue    chan *task
	wg       sync.WaitGroup

	updateMu sync.Mutex // serializes Update/Absorb copy-on-write chains

	// base is the decode basis for staged candidates (Config.DecodeBase or
	// the construction snapshot). Immutable after New.
	base *core.Snapshot

	// stageMu guards the staged-upgrade state. Lock order: updateMu before
	// stageMu — mutators hold updateMu and peek at the stage; readers
	// (Stats, StagedVersion, health probes) take stageMu alone.
	stageMu       sync.Mutex
	staged        *stagedUpgrade
	lastCommitted string
	replStats     func() any

	cacheMu sync.Mutex
	cache   *lruCache
	// flights tracks in-progress miss computations by cache key (guarded by
	// cacheMu like the cache itself). Concurrent requests for the same
	// (epoch, fingerprint) attach to the one in-flight computation instead
	// of redoing it — the singleflight half of the cache contract.
	flights map[cacheKey]*flight

	// profiles is the memoized-measurement LRU behind the default meters
	// (nil with a custom MeterFor or ProfileCacheSize < 0).
	profiles *profileLRU

	requests, hits, misses, rejects, batches, maxBatch, swaps atomic.Int64
	canceled, walAppends, coalesced, catalogUpdates, shed     atomic.Int64
}

// flight is one in-progress miss computation. The owner fills body/err and
// then closes done; waiters read only after done is closed.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// stagedUpgrade is the in-flight half of a two-phase version switch: the
// candidate is published (served, replayable by the gate) but the incumbent
// is retained so RevertStaged can restore it bit-for-bit. Nothing durable
// changes until CommitStaged.
type stagedUpgrade struct {
	version   string
	incumbent *core.Snapshot
}

// New builds a server over an initial snapshot and starts its dispatcher.
func New(snap *core.Snapshot, cfg Config) (*Server, error) {
	if snap == nil {
		return nil, fmt.Errorf("serve: nil snapshot")
	}
	if math.IsNaN(cfg.ShedThreshold) || cfg.ShedThreshold < 0 || cfg.ShedThreshold > 1 {
		return nil, fmt.Errorf("serve: shed threshold %v (want [0, 1])", cfg.ShedThreshold)
	}
	cfg.fillDefaults()
	s := &Server{
		cfg:   cfg,
		queue: make(chan *task, cfg.QueueSize),
	}
	s.meterFor = cfg.MeterFor
	if s.meterFor == nil {
		// Default meter: a stateless simulator shared by every request (its
		// profiles are pure functions of (app, vm, seed)), memoized through
		// the profile LRU unless disabled.
		if cfg.ProfileCacheSize > 0 {
			s.profiles = newProfileLRU(cfg.ProfileCacheSize)
		}
		simulator := sim.New(cfg.SimConfig)
		s.meterFor = func(seed uint64) oracle.Service {
			return &memoMeter{sim: simulator, seed: seed, cache: s.profiles}
		}
	}
	if !cfg.NoCache {
		s.cache = newLRU(cfg.CacheSize)
		s.flights = make(map[cacheKey]*flight)
	}
	if !cfg.ColdStart {
		// Pay the lineage's one-time plan solve at construction instead of on
		// the first request (a no-op when the snapshot was decoded from a
		// checkpoint carrying the plan, or shares an already-built lineage).
		if err := snap.PreparePlan(); err != nil {
			return nil, fmt.Errorf("serve: preparing predict plan: %w", err)
		}
	}
	s.snap.Store(snap)
	s.base = cfg.DecodeBase
	if s.base == nil {
		s.base = snap
	}
	if cfg.Tracer.Enabled() {
		cfg.Tracer.Max("serve.epoch", int64(snap.Epoch()))
	}
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// Snapshot returns the currently published snapshot.
func (s *Server) Snapshot() *core.Snapshot { return s.snap.Load() }

// Publish hot-swaps the served snapshot. In-flight predictions keep the
// snapshot they already captured; new work sees the published one.
func (s *Server) Publish(snap *core.Snapshot) error {
	if snap == nil {
		return fmt.Errorf("serve: publish nil snapshot")
	}
	s.snap.Store(snap)
	s.swaps.Add(1)
	if s.cfg.Tracer.Enabled() {
		s.cfg.Tracer.Count("serve.swaps", 1)
		s.cfg.Tracer.Max("serve.epoch", int64(snap.Epoch()))
	}
	return nil
}

// Update applies fn to the current snapshot and publishes the result.
// Concurrent Update calls are serialized, so copy-on-write chains (absorb
// upon absorb) never lose an epoch.
func (s *Server) Update(fn func(old *core.Snapshot) (*core.Snapshot, error)) error {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	next, err := fn(s.snap.Load())
	if err != nil {
		return err
	}
	return s.Publish(next)
}

// Absorb records a completed target into the knowledge graph copy-on-write
// and hot-swaps the result — the serving form of core.AbsorbTarget. With a
// configured WAL the ordering is append → fsync ack → publish: the swap is
// visible to readers only once the record is durable, so no response can
// reveal a state a crash would forget.
func (s *Server) Absorb(name string, labelWeights, prunedVec []float64) error {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	if err := s.frozenErr(); err != nil {
		return err
	}
	old := s.snap.Load()
	if old.HasWorkload(name) {
		return fmt.Errorf("%w: %q", ErrConflict, name)
	}
	next, err := old.Absorb(name, labelWeights, prunedVec)
	if err != nil {
		return err
	}
	if s.cfg.WAL != nil {
		if err := s.cfg.WAL.Append(name, labelWeights, prunedVec, next.Epoch()); err != nil {
			return fmt.Errorf("serve: absorb %q not published: %w", name, err)
		}
		s.walAppends.Add(1)
		if s.cfg.Tracer.Enabled() {
			s.cfg.Tracer.Count("serve.wal_appends", 1)
		}
	}
	if err := s.Publish(next); err != nil {
		return err
	}
	if s.cfg.WAL != nil {
		if err := s.cfg.WAL.Committed(next); err != nil {
			// The record is durable and published; a failed compaction only
			// delays log trimming. Surface it on the trace, not to the caller.
			if s.cfg.Tracer.Enabled() {
				s.cfg.Tracer.Event("serve/wal", "compaction failed: "+err.Error())
			}
		}
	}
	return nil
}

// AbsorbCatalog folds one catalog update into the served catalog
// copy-on-write and hot-swaps the result — the catalog twin of Absorb, with
// the same durability ordering: with a configured WAL the update is appended
// as a wal.KindCatalog record and fsynced before the swap, so the catalog
// version a response reveals is always recoverable. Validation failures
// (unknown retiree, bad price, retiring the sandbox VM) wrap ErrBadRequest.
func (s *Server) AbsorbCatalog(up cloud.Update) error {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	if err := s.frozenErr(); err != nil {
		return err
	}
	old := s.snap.Load()
	next, err := old.AbsorbCatalog(up)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if s.cfg.WAL != nil {
		if err := s.cfg.WAL.AppendCatalog(up, next.Epoch()); err != nil {
			return fmt.Errorf("serve: catalog update not published: %w", err)
		}
		s.walAppends.Add(1)
		if s.cfg.Tracer.Enabled() {
			s.cfg.Tracer.Count("serve.wal_appends", 1)
		}
	}
	if err := s.Publish(next); err != nil {
		return err
	}
	s.catalogUpdates.Add(1)
	if s.cfg.Tracer.Enabled() {
		s.cfg.Tracer.Count("serve.catalog_updates", 1)
		s.cfg.Tracer.Max("serve.catalog_version", int64(next.CatalogVersion()))
	}
	if s.cfg.WAL != nil {
		if err := s.cfg.WAL.Committed(next); err != nil {
			if s.cfg.Tracer.Enabled() {
				s.cfg.Tracer.Event("serve/wal", "compaction failed: "+err.Error())
			}
		}
	}
	return nil
}

// frozenErr reports ErrStaged while an upgrade is staged. Callers hold
// updateMu (lock order: updateMu before stageMu).
func (s *Server) frozenErr() error {
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	if s.staged != nil {
		return fmt.Errorf("%w (version %q)", ErrStaged, s.staged.version)
	}
	return nil
}

// Stage begins a two-phase version switch (DESIGN.md §16): the candidate is
// published — served, health-probed, golden-replayed — but boots uncommitted:
// nothing durable changes, the incumbent is retained, and mutations freeze
// (ErrStaged) until the coordinator resolves the stage with CommitStaged or
// RevertStaged. The candidate's epoch must not rewind the incumbent's.
//
// Stage is idempotent by version, which is what makes a crashed coordinator's
// replay safe: re-staging the staged version is a no-op, re-staging an
// already-committed version is a no-op, and staging a *different* version
// while one is pending answers ErrConflict.
func (s *Server) Stage(version string, cand *core.Snapshot) error {
	if version == "" {
		return fmt.Errorf("%w: empty rollout version", ErrBadRequest)
	}
	if cand == nil {
		return fmt.Errorf("%w: nil candidate snapshot", ErrBadRequest)
	}
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	if s.staged != nil {
		if s.staged.version == version {
			return nil
		}
		return fmt.Errorf("%w: version %q staged, refusing %q", ErrConflict, s.staged.version, version)
	}
	if s.lastCommitted == version {
		return nil
	}
	incumbent := s.snap.Load()
	if cand.Epoch() < incumbent.Epoch() {
		return fmt.Errorf("%w: candidate epoch %d rewinds incumbent epoch %d",
			ErrBadRequest, cand.Epoch(), incumbent.Epoch())
	}
	if !s.cfg.ColdStart {
		if err := cand.PreparePlan(); err != nil {
			return fmt.Errorf("serve: preparing candidate plan: %w", err)
		}
	}
	s.staged = &stagedUpgrade{version: version, incumbent: incumbent}
	if err := s.Publish(cand); err != nil {
		s.staged = nil
		return err
	}
	if s.cfg.Tracer.Enabled() {
		s.cfg.Tracer.Event("serve/rollout", fmt.Sprintf("staged version %s at epoch %d", version, cand.Epoch()))
	}
	return nil
}

// StageEncoded is Stage for a serialized candidate (the over-the-wire form of
// POST /rollout/stage): the bytes are decoded against the server's decode
// basis (Config.DecodeBase) exactly as a replication follower decodes a
// bootstrap snapshot. Undecodable bytes answer ErrBadRequest.
func (s *Server) StageEncoded(version string, encoded []byte) error {
	if len(encoded) == 0 {
		return fmt.Errorf("%w: empty candidate snapshot", ErrBadRequest)
	}
	cand, err := core.DecodeSnapshot(bytes.NewReader(encoded), s.base.Config(), s.base.Catalog())
	if err != nil {
		return fmt.Errorf("%w: candidate snapshot: %v", ErrBadRequest, err)
	}
	return s.Stage(version, cand)
}

// CommitStaged makes the staged candidate permanent: with a durable WAL that
// supports installation (CheckpointInstaller) the candidate is checkpointed
// and the log trimmed *before* the stage clears, so an error leaves the node
// staged — retryable — rather than half-committed. Committing a version that
// was never staged but matches the last commit is a no-op (coordinator crash
// replay); anything else is ErrConflict.
func (s *Server) CommitStaged(version string) error {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	if s.staged == nil {
		if s.lastCommitted == version {
			return nil
		}
		return fmt.Errorf("%w: no staged upgrade to commit as %q", ErrConflict, version)
	}
	if s.staged.version != version {
		return fmt.Errorf("%w: staged version %q, refusing commit of %q", ErrConflict, s.staged.version, version)
	}
	if inst, ok := s.cfg.WAL.(CheckpointInstaller); ok {
		if err := inst.Install(s.snap.Load()); err != nil {
			return fmt.Errorf("serve: installing staged version %s: %w", version, err)
		}
	}
	s.lastCommitted = version
	s.staged = nil
	if s.cfg.Tracer.Enabled() {
		s.cfg.Tracer.Event("serve/rollout", "committed version "+version)
	}
	return nil
}

// RevertStaged rolls the staged candidate back: the incumbent snapshot is
// republished bit-for-bit and the freeze lifts. Nothing durable was written
// while staged, so rollback touches no disk state. Reverting a version that
// is not staged is a no-op (idempotent crash replay) — unless that version
// already committed, which is a hard ErrConflict: commit is the point of no
// return, mender-style.
func (s *Server) RevertStaged(version string) error {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	if s.staged == nil {
		if s.lastCommitted == version {
			return fmt.Errorf("%w: version %q already committed; revert past commit is impossible", ErrConflict, version)
		}
		return nil
	}
	if s.staged.version != version {
		return fmt.Errorf("%w: staged version %q, refusing revert of %q", ErrConflict, s.staged.version, version)
	}
	if err := s.Publish(s.staged.incumbent); err != nil {
		return err
	}
	s.staged = nil
	if s.cfg.Tracer.Enabled() {
		s.cfg.Tracer.Event("serve/rollout", "reverted version "+version)
	}
	return nil
}

// StagedVersion returns the pending rollout version, or "" when none is
// staged. Replication followers poll this to pause stream application while
// the node serves an uncommitted candidate.
func (s *Server) StagedVersion() string {
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	if s.staged == nil {
		return ""
	}
	return s.staged.version
}

// CommittedVersion returns the last rollout version this node committed
// ("" before any rollout).
func (s *Server) CommittedVersion() string {
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	return s.lastCommitted
}

// committedEpoch returns the epoch health probes should advertise: the
// incumbent's while a candidate is staged (an uncommitted epoch must not
// raise a router's staleness floor — rollback would then strand the whole
// fleet below it), the published epoch otherwise.
func (s *Server) committedEpoch() uint64 {
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	if s.staged != nil {
		return s.staged.incumbent.Epoch()
	}
	return s.snap.Load().Epoch()
}

// SetReplicationStats registers a callback whose value is embedded as the
// "replication" block of Stats and GET /stats — how a follower's sync
// counters (transient fetch failures, frames applied, pauses) surface on the
// serving node's own diagnostics. Call before serving traffic.
func (s *Server) SetReplicationStats(fn func() any) {
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	s.replStats = fn
}

// CatalogResponse reports the post-update consistency token — the
// control-plane acknowledgement of POST /catalog.
type CatalogResponse struct {
	Epoch          uint64 `json:"epoch"`
	CatalogVersion uint64 `json:"catalog_version"`
	VMCount        int    `json:"vm_count"`
	Durable        bool   `json:"durable"`
}

// UpdateCatalog is the client-facing catalog-update flow behind POST
// /catalog: like AbsorbApp it bypasses the admission queue but honours
// read-only replicas (a follower's catalog advances only through the
// replication stream) and shutdown.
func (s *Server) UpdateCatalog(up cloud.Update) (*CatalogResponse, error) {
	if s.cfg.ReadOnly {
		return nil, fmt.Errorf("%w: catalog updates arrive via replication", ErrReadOnly)
	}
	if up.Empty() {
		return nil, fmt.Errorf("%w: empty catalog update", ErrBadRequest)
	}
	s.closeMu.RLock()
	draining := s.draining
	s.closeMu.RUnlock()
	if draining {
		return nil, ErrShuttingDown
	}
	if err := s.AbsorbCatalog(up); err != nil {
		return nil, err
	}
	cur := s.snap.Load()
	return &CatalogResponse{
		Epoch:          cur.Epoch(),
		CatalogVersion: cur.CatalogVersion(),
		VMCount:        len(cur.Catalog()),
		Durable:        s.cfg.WAL != nil,
	}, nil
}

// AbsorbRequest asks the server to complete a target application online and
// fold the result into the knowledge graph under Name.
type AbsorbRequest struct {
	// Name is the workload node recorded in the graph (required, unique).
	Name string `json:"name"`
	// App is the completed Table 3 application (required).
	App string `json:"app"`
	// InputGB overrides the application's input size when > 0.
	InputGB float64 `json:"input_gb,omitempty"`
	// Seed drives the online measurement stream; 0 takes the default seed 1.
	Seed uint64 `json:"seed,omitempty"`
}

// AbsorbResponse reports the post-absorb consistency token.
type AbsorbResponse struct {
	Name      string `json:"name"`
	Epoch     uint64 `json:"epoch"`
	Workloads int    `json:"workloads"`
	Durable   bool   `json:"durable"`
}

// AbsorbApp runs the online predicting phase for the request's application
// against the current snapshot and absorbs the completed target — the
// control-plane flow behind POST /absorb. It bypasses the admission queue
// (absorbs are rare and serialized) but honours shutdown.
func (s *Server) AbsorbApp(req AbsorbRequest) (*AbsorbResponse, error) {
	if s.cfg.ReadOnly {
		return nil, fmt.Errorf("%w: absorbs arrive via replication", ErrReadOnly)
	}
	if req.Name == "" {
		return nil, fmt.Errorf("%w: missing name", ErrBadRequest)
	}
	preq, app, err := s.resolve(Request{App: req.App, InputGB: req.InputGB, Seed: req.Seed})
	if err != nil {
		return nil, err
	}
	s.closeMu.RLock()
	draining := s.draining
	s.closeMu.RUnlock()
	if draining {
		return nil, ErrShuttingDown
	}
	snap := s.snap.Load()
	if snap.HasWorkload(req.Name) {
		return nil, fmt.Errorf("%w: %q", ErrConflict, req.Name)
	}
	pred, err := snap.Predict(app, s.meterFor(preq.Seed))
	if err != nil {
		return nil, fmt.Errorf("serve: absorb %s: %w", req.App, err)
	}
	if err := s.Absorb(req.Name, pred.LabelWeights, pred.PrunedVec); err != nil {
		return nil, err
	}
	cur := s.snap.Load()
	return &AbsorbResponse{
		Name:      req.Name,
		Epoch:     cur.Epoch(),
		Workloads: cur.Workloads(),
		Durable:   s.cfg.WAL != nil,
	}, nil
}

// Close drains the server: admission stops immediately (ErrShuttingDown),
// already-queued requests run to completion, then the dispatcher exits.
// Close is idempotent and safe to call concurrently.
func (s *Server) Close() {
	s.closeMu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.closeMu.Unlock()
	s.wg.Wait()
}

// resolve validates a request and fills its defaults.
func (s *Server) resolve(req Request) (Request, workload.App, error) {
	if req.App == "" {
		return req, workload.App{}, fmt.Errorf("%w: missing app", ErrBadRequest)
	}
	if req.InputGB < 0 || math.IsNaN(req.InputGB) || math.IsInf(req.InputGB, 0) {
		return req, workload.App{}, fmt.Errorf("%w: input_gb %v", ErrBadRequest, req.InputGB)
	}
	if req.Top < 0 {
		return req, workload.App{}, fmt.Errorf("%w: top %d", ErrBadRequest, req.Top)
	}
	if req.Priority < 0 {
		return req, workload.App{}, fmt.Errorf("%w: priority %d", ErrBadRequest, req.Priority)
	}
	app, err := workload.ByName(req.App)
	if err != nil {
		return req, workload.App{}, fmt.Errorf("%w: %q", ErrUnknownApp, req.App)
	}
	if req.InputGB > 0 {
		app = app.WithInput(req.InputGB)
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if req.Top == 0 {
		req.Top = 10
	}
	return req, app, nil
}

// PredictBytes answers a request with the canonical serialized response
// body. A cache hit returns immediately — before admission, so cached
// traffic never queues behind uncached compute — but shutdown is checked
// first: every request admitted after Close began gets ErrShuttingDown,
// cached or not. A miss blocks until the response is computed, the context
// is done, or admission is rejected (ErrQueueFull, ErrShuttingDown).
func (s *Server) PredictBytes(ctx context.Context, req Request) ([]byte, error) {
	req, app, err := s.resolve(req)
	if err != nil {
		return nil, err
	}
	s.requests.Add(1)
	if s.cfg.Tracer.Enabled() {
		s.cfg.Tracer.Count("serve.requests", 1)
	}
	s.closeMu.RLock()
	draining := s.draining
	s.closeMu.RUnlock()
	if draining {
		return nil, ErrShuttingDown
	}
	t := &task{req: req, app: app, snap: s.snap.Load(), ctx: ctx, done: make(chan taskResult, 1)}
	if s.cache != nil {
		t.key = cacheKey{epoch: t.snap.Epoch(), fp: req.fingerprint()}
		s.cacheMu.Lock()
		body, ok := s.cache.get(t.key)
		s.cacheMu.Unlock()
		if ok {
			s.hits.Add(1)
			s.cfg.Tracer.Count("serve.cache_hits", 1)
			return body, nil
		}
	}
	if err := s.enqueue(t); err != nil {
		return nil, err
	}
	select {
	case res := <-t.done:
		return res.body, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Predict is PredictBytes decoded into a Response.
func (s *Server) Predict(ctx context.Context, req Request) (*Response, error) {
	body, err := s.PredictBytes(ctx, req)
	if err != nil {
		return nil, err
	}
	return decodeResponse(body)
}

// Stats returns the current operational counters.
func (s *Server) Stats() Stats {
	snap := s.snap.Load()
	st := Stats{
		Requests:       s.requests.Load(),
		CacheHits:      s.hits.Load(),
		CacheMisses:    s.misses.Load(),
		Coalesced:      s.coalesced.Load(),
		QueueDepth:     len(s.queue),
		QueueRejects:   s.rejects.Load(),
		Shed:           s.shed.Load(),
		Batches:        s.batches.Load(),
		MaxBatch:       s.maxBatch.Load(),
		Canceled:       s.canceled.Load(),
		Swaps:          s.swaps.Load(),
		Epoch:          snap.Epoch(),
		Workloads:      snap.Workloads(),
		CatalogVersion: snap.CatalogVersion(),
		CatalogUpdates: s.catalogUpdates.Load(),
		Durable:        s.cfg.WAL != nil,
		WALAppends:     s.walAppends.Load(),
		ReadOnly:       s.cfg.ReadOnly,
	}
	if ws, ok := s.cfg.WAL.(interface{ Stats() wal.Stats }); ok {
		w := ws.Stats()
		st.WAL = &w
	}
	s.stageMu.Lock()
	if s.staged != nil {
		st.StagedVersion = s.staged.version
	}
	st.CommittedVersion = s.lastCommitted
	repl := s.replStats
	s.stageMu.Unlock()
	if repl != nil {
		st.Replication = repl()
	}
	if st.Requests > 0 {
		st.HitRate = float64(st.CacheHits) / float64(st.Requests)
	}
	if s.cache != nil {
		s.cacheMu.Lock()
		st.CacheLen = s.cache.len()
		s.cacheMu.Unlock()
	}
	if s.profiles != nil {
		st.ProfileHits, st.ProfileMisses = s.profiles.counters()
		st.ProfileLen = s.profiles.len()
	}
	return st
}

// enqueue admits a task or rejects with a typed error. The read-lock pairs
// with Close's write-lock so a send can never hit a closed channel.
func (s *Server) enqueue(t *task) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.draining {
		return ErrShuttingDown
	}
	// Priority shed gate: refuse best-effort traffic before the queue is
	// hard-full so premium requests keep finding slots under overload. The
	// occupancy read is advisory (len on a live channel) — the hard bound
	// below still holds regardless.
	if s.cfg.ShedThreshold > 0 && t.req.Priority > 0 &&
		float64(len(s.queue)) >= s.cfg.ShedThreshold*float64(s.cfg.QueueSize) {
		s.shed.Add(1)
		if s.cfg.Tracer.Enabled() {
			s.cfg.Tracer.Count("serve.shed", 1)
		}
		return ErrShed
	}
	select {
	case s.queue <- t:
		return nil
	default:
		s.rejects.Add(1)
		if s.cfg.Tracer.Enabled() {
			s.cfg.Tracer.Count("serve.queue_rejects", 1)
		}
		return ErrQueueFull
	}
}

// dispatch drains the queue into batches and fans each batch out on the
// parallel pool. Closing the queue drains the backlog, then exits.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		t, ok := <-s.queue
		if !ok {
			return
		}
		batch := []*task{t}
	drain:
		for len(batch) < s.cfg.BatchSize {
			select {
			case t2, ok := <-s.queue:
				if !ok {
					// Queue closed and fully drained: ship the last batch.
					s.run(batch)
					return
				}
				batch = append(batch, t2)
			default:
				break drain // queue momentarily empty: ship what we have
			}
		}
		s.run(batch)
	}
}

// run executes one batch across the worker pool and delivers the results.
func (s *Server) run(batch []*task) {
	s.batches.Add(1)
	if n := int64(len(batch)); n > s.maxBatch.Load() {
		s.maxBatch.Store(n) // single dispatcher: load-then-store is safe
	}
	if s.cfg.Tracer.Enabled() {
		s.cfg.Tracer.Count("serve.batches", 1)
		s.cfg.Tracer.Max("serve.max_batch", int64(len(batch)))
	}
	results := parallel.MapObs(s.cfg.Tracer, "serve/batch", s.cfg.Workers, len(batch),
		func(i int) taskResult {
			return s.execute(batch[i])
		})
	for i, t := range batch {
		t.done <- results[i]
	}
}

// execute answers one task against its admission-time snapshot: try the
// cache, attach to an in-flight computation of the same key, or own the
// miss — run the prediction once and publish the canonical bytes to the
// cache and every coalesced waiter. A task whose requester has already gone
// away (canceled or timed-out context) releases its worker slot immediately
// instead of computing a response nobody reads.
//
// Stats contract: each cache-eligible task counts exactly one of hits and
// misses. The flight owner counts the miss; waiters and cached reads count
// hits (waiters additionally count coalesced), so the /stats hit rate is
// hits/requests however a thundering herd interleaves.
func (s *Server) execute(t *task) taskResult {
	if err := t.ctx.Err(); err != nil {
		s.canceled.Add(1)
		s.cfg.Tracer.Count("serve.canceled", 1)
		return taskResult{err: err}
	}
	if s.cache == nil {
		return s.compute(t)
	}
	s.cacheMu.Lock()
	if body, ok := s.cache.get(t.key); ok {
		// Cached between admission and execution (an earlier flight landed).
		s.cacheMu.Unlock()
		s.hits.Add(1)
		s.cfg.Tracer.Count("serve.cache_hits", 1)
		return taskResult{body: body}
	}
	if f, ok := s.flights[t.key]; ok {
		// Same key already computing: wait for its bytes instead of redoing
		// the solve. The owner holds a worker slot until it finishes, so a
		// waiting slot can never deadlock the pool.
		s.cacheMu.Unlock()
		s.hits.Add(1)
		s.coalesced.Add(1)
		if s.cfg.Tracer.Enabled() {
			s.cfg.Tracer.Count("serve.cache_hits", 1)
			s.cfg.Tracer.Count("serve.coalesced", 1)
		}
		select {
		case <-f.done:
			return taskResult{body: f.body, err: f.err}
		case <-t.ctx.Done():
			return taskResult{err: t.ctx.Err()}
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[t.key] = f
	s.cacheMu.Unlock()
	s.misses.Add(1)
	s.cfg.Tracer.Count("serve.cache_misses", 1)

	res := s.compute(t)
	s.cacheMu.Lock()
	if res.err == nil {
		s.cache.put(t.key, res.body)
	}
	// The cache entry lands before the flight is removed (both under cacheMu),
	// so at every instant a concurrent same-key request finds the bytes in
	// exactly one place.
	delete(s.flights, t.key)
	s.cacheMu.Unlock()
	f.body, f.err = res.body, res.err
	close(f.done)
	return res
}

// compute runs the uncached prediction arm for one task: warm-started
// through the lineage's precomputed plan by default, the historical cold
// solve under ColdStart.
func (s *Server) compute(t *task) taskResult {
	meter := s.meterFor(t.req.Seed)
	var pred *core.Prediction
	var err error
	if s.cfg.ColdStart {
		pred, err = t.snap.Predict(t.app, meter)
	} else {
		pred, err = t.snap.PredictFast(t.app, meter, s.cfg.Approx)
	}
	if err != nil {
		return taskResult{err: fmt.Errorf("serve: predict %s: %w", t.req.App, err)}
	}
	body, err := s.encodeResponse(t.snap, t.req, pred, meter.SimConfig().Nodes)
	if err != nil {
		return taskResult{err: fmt.Errorf("serve: encode %s: %w", t.req.App, err)}
	}
	return taskResult{body: body}
}

// rankPool recycles the request-scoped ranking slices of encodeResponse:
// the entries live only until the response is serialized, so the backing
// arrays are reused across requests instead of churning the allocator on
// the hot path. 128 covers the full 120-VM catalog without regrowth.
var rankPool = sync.Pool{New: func() any {
	s := make([]RankEntry, 0, 128)
	return &s
}}

// encodeResponse builds the canonical response body: ranking order comes
// from the prediction (already deterministically tie-broken), floats render
// with pinned shortest-round-trip bytes, and no map ever reaches the
// encoder. The scratch ranking slice and encode buffer are pooled; only the
// returned body (which the cache may retain indefinitely) is freshly
// allocated.
func (s *Server) encodeResponse(snap *core.Snapshot, req Request, pred *core.Prediction, nodes int) ([]byte, error) {
	top := req.Top
	if top > len(pred.Ranking) {
		top = len(pred.Ranking)
	}
	rp := rankPool.Get().(*[]RankEntry)
	ranking := (*rp)[:0]
	for _, r := range pred.Ranking[:top] {
		sec := pred.PredictedSec[r.VM]
		// Prices come from the snapshot's catalog version (not a
		// construction-time index), so repricing updates reach responses the
		// moment their snapshot publishes.
		vm, _ := snap.VM(r.VM)
		ranking = append(ranking, RankEntry{
			VM:           r.VM,
			Score:        jsonFloat(r.Score),
			PredictedSec: jsonFloat(sec),
			PredictedUSD: jsonFloat(sec / 3600 * vm.PriceHour * float64(nodes)),
		})
	}
	body, err := encodeResponsePooled(&Response{
		Target:         pred.Target,
		Epoch:          snap.Epoch(),
		Workloads:      snap.Workloads(),
		CatalogVersion: snap.CatalogVersion(),
		Best:           pred.Best.Name,
		Converged:      pred.Converged,
		MatchDistance:  jsonFloat(pred.MatchDistance),
		OnlineRuns:     pred.OnlineRuns,
		Ranking:        ranking,
	})
	*rp = ranking[:0]
	rankPool.Put(rp)
	return body, err
}
