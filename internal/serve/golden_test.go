package serve

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"vesta/internal/core"
)

// replayCorpus is the recorded request sequence for the determinism proof:
// a mix of apps, seeds, top values, input overrides, and exact repeats (the
// repeats hit the cache on cached servers and recompute on NoCache servers —
// either way the bytes must match).
func replayCorpus() []Request {
	reqs := []Request{
		{App: "Spark-kmeans"},
		{App: "Spark-lr", Seed: 2, Top: 5},
		{App: "Spark-sort", Seed: 3, Top: 1},
		{App: "Spark-grep", Seed: 4, Top: 120},
		{App: "Spark-page-rank", Seed: 5},
		{App: "Spark-bayes", Seed: 2, Top: 7},
		{App: "Spark-lr", InputGB: 64, Seed: 2, Top: 5},
		{App: "Spark-kmeans", Seed: 9, Top: 3},
	}
	// Repeat the whole sequence so every request also runs against a warm
	// cache within a single replay.
	return append(reqs, reqs...)
}

// replay answers the corpus concurrently (exercising batch formation) and
// returns the response bodies in corpus order.
func replay(t *testing.T, s *Server, corpus []Request) [][]byte {
	t.Helper()
	bodies := make([][]byte, len(corpus))
	var wg sync.WaitGroup
	for i, req := range corpus {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			body, err := s.PredictBytes(context.Background(), req)
			if err != nil {
				t.Errorf("request %d (%+v): %v", i, req, err)
				return
			}
			bodies[i] = body
		}(i, req)
	}
	wg.Wait()
	return bodies
}

// TestReplayByteIdentical is the serving extension of the repo's offline
// bit-identical contract: the same request sequence replayed at -workers
// 1/4/16, with and without the response cache, cold and warm, produces
// byte-identical bodies for every request.
func TestReplayByteIdentical(t *testing.T) {
	corpus := replayCorpus()
	configs := []struct {
		name string
		cfg  Config
	}{
		{"workers=1", Config{Workers: 1}},
		{"workers=4", Config{Workers: 4, BatchSize: 4}},
		{"workers=16", Config{Workers: 16, BatchSize: 32}},
		{"workers=4,no-cache", Config{Workers: 4, NoCache: true}},
		{"workers=4,cache=2", Config{Workers: 4, CacheSize: 2}}, // constant eviction
	}

	var reference [][]byte
	for _, tc := range configs {
		s := newTestServer(t, tc.cfg)
		bodies := replay(t, s, corpus)
		if t.Failed() {
			t.Fatalf("%s: replay failed", tc.name)
		}
		if reference == nil {
			reference = bodies
			continue
		}
		for i := range corpus {
			if !bytes.Equal(reference[i], bodies[i]) {
				t.Errorf("%s: request %d bytes diverge\n ref: %s\n got: %s",
					tc.name, i, reference[i], bodies[i])
			}
		}
	}

	// A second replay on a fresh warm server must match too: cache hits
	// return exactly the bytes a cold compute produced.
	s := newTestServer(t, Config{Workers: 4})
	cold := replay(t, s, corpus)
	warm := replay(t, s, corpus)
	for i := range corpus {
		if !bytes.Equal(cold[i], warm[i]) {
			t.Errorf("warm replay diverges at request %d", i)
		}
		if !bytes.Equal(reference[i], cold[i]) {
			t.Errorf("second server diverges from reference at request %d", i)
		}
	}
	if st := s.Stats(); st.CacheHits == 0 {
		t.Error("warm replay produced no cache hits")
	}
}

// TestReplayModesByteIdentical extends the determinism sweep across the
// serving arms of DESIGN.md §12: within each arm — cold (historical solve),
// warm (precomputed-plan fast path), approx (FreezeSource) — replayed bodies
// are byte-identical at every worker count. The arms are *not* compared to
// each other (warm and approx legitimately re-rank borderline VMs); what is
// compared is a server rebuilt from an encoded/decoded snapshot, which must
// reproduce the warm arm exactly because the plan travels in the encoding.
func TestReplayModesByteIdentical(t *testing.T) {
	corpus := replayCorpus()
	modes := []struct {
		name string
		cfg  func(workers int) Config
	}{
		{"cold", func(w int) Config { return Config{Workers: w, ColdStart: true} }},
		{"warm", func(w int) Config { return Config{Workers: w} }},
		{"approx", func(w int) Config { return Config{Workers: w, Approx: true} }},
	}
	warmRef := make(map[string][][]byte)
	for _, mode := range modes {
		var reference [][]byte
		for _, workers := range []int{1, 4, 16} {
			s := newTestServer(t, mode.cfg(workers))
			bodies := replay(t, s, corpus)
			if t.Failed() {
				t.Fatalf("%s workers=%d: replay failed", mode.name, workers)
			}
			if reference == nil {
				reference = bodies
				continue
			}
			for i := range corpus {
				if !bytes.Equal(reference[i], bodies[i]) {
					t.Errorf("%s workers=%d: request %d bytes diverge", mode.name, workers, i)
				}
			}
		}
		warmRef[mode.name] = reference
	}

	// A snapshot round-tripped through the codec carries its plan: a server
	// over the decoded copy serves the warm arm byte-for-byte without ever
	// re-solving.
	base := testSnapshot(t)
	var buf bytes.Buffer
	if err := base.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := core.DecodeSnapshot(&buf, base.Config(), base.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	if !decoded.PlanReady() {
		t.Fatal("decoded snapshot lost the precomputed plan")
	}
	s, err := New(decoded, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	bodies := replay(t, s, corpus)
	if t.Failed() {
		t.Fatal("decoded-snapshot replay failed")
	}
	for i := range corpus {
		if !bytes.Equal(warmRef["warm"][i], bodies[i]) {
			t.Errorf("decoded-snapshot server: request %d diverges from the warm arm", i)
		}
	}
}

// TestResponseBytesAreCanonicalJSON pins the exact serialization: stable
// field order, shortest-round-trip floats, no schedule-dependent fields.
func TestResponseBytesAreCanonicalJSON(t *testing.T) {
	s := newTestServer(t, Config{})
	body, err := s.PredictBytes(context.Background(), Request{App: "Spark-kmeans", Top: 2})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := decodeResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	reenc, err := encodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, reenc) {
		t.Fatalf("decode/encode round trip changed bytes:\n was: %s\n now: %s", body, reenc)
	}
	wantPrefix := fmt.Sprintf(`{"target":"Spark-kmeans","epoch":0,"workloads":%d,"catalog_version":0,"best":"`, baseWorkloads)
	if !bytes.HasPrefix(body, []byte(wantPrefix)) {
		t.Fatalf("body prefix = %s, want %s", body[:min(len(body), 80)], wantPrefix)
	}
}
