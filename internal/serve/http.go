package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"vesta/internal/cloud"
	"vesta/internal/wal"
)

// maxBodyBytes bounds a predict request body; anything larger is a client
// error, not a reason to allocate.
const maxBodyBytes = 1 << 20

// HealthErr reports the node-local health signal /healthz advertises as
// "status": nil while serving normally, an error once the durable layer is
// broken. In-process rollout gates probe this directly; HTTP gates read the
// same signal off /healthz.
func (s *Server) HealthErr() error {
	if ws, ok := s.cfg.WAL.(interface{ Stats() wal.Stats }); ok {
		if st := ws.Stats(); st.Broken {
			return fmt.Errorf("serve: degraded: wal broken")
		}
	}
	return nil
}

// maxStageBodyBytes bounds a POST /rollout/stage body, which carries a full
// serialized candidate snapshot (base64 inside the JSON envelope) rather than
// a small request object.
const maxStageBodyBytes = 64 << 20

// defaultRequestTimeout bounds how long an HTTP predict waits for its
// queued work before answering 504.
const defaultRequestTimeout = 60 * time.Second

// encodeResponse renders the canonical response body. encoding/json field
// order follows the struct definition and the float rendering is pinned by
// jsonFloat, so the bytes are a pure function of the Response value.
func encodeResponse(r *Response) ([]byte, error) {
	return json.Marshal(r)
}

// encodeBufPool recycles the scratch buffers of encodeResponsePooled.
var encodeBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeResponsePooled is encodeResponse through a pooled scratch buffer —
// byte-identical output (json.Encoder differs from json.Marshal only by a
// trailing newline, stripped here), with the intermediate encoding state
// reused across requests. The returned body is a fresh copy: callers (and
// the response cache) may hold it forever.
func encodeResponsePooled(r *Response) ([]byte, error) {
	buf := encodeBufPool.Get().(*bytes.Buffer)
	defer encodeBufPool.Put(buf)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(r); err != nil {
		return nil, err
	}
	b := buf.Bytes()
	body := make([]byte, len(b)-1) // drop the Encoder's trailing '\n'
	copy(body, b)
	return body, nil
}

// decodeResponse parses a canonical body back into a Response.
func decodeResponse(body []byte) (*Response, error) {
	var r Response
	if err := json.Unmarshal(body, &r); err != nil {
		return nil, fmt.Errorf("serve: decoding response: %w", err)
	}
	return &r, nil
}

// errorBody is the JSON error envelope every non-200 answer carries.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// httpStatus maps a serving error to its HTTP status and stable error code.
func httpStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest, "bad_request"
	case errors.Is(err, ErrUnknownApp):
		return http.StatusNotFound, "unknown_app"
	case errors.Is(err, ErrStaged):
		return http.StatusConflict, "staged"
	case errors.Is(err, ErrConflict):
		return http.StatusConflict, "conflict"
	case errors.Is(err, ErrQueueFull):
		return http.StatusServiceUnavailable, "queue_full"
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable, "shutting_down"
	case errors.Is(err, ErrReadOnly):
		return http.StatusForbidden, "read_only"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "timeout"
	case errors.Is(err, context.Canceled):
		return 499, "canceled" // nginx convention: client closed request
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Stats and error envelopes contain no unencodable values; this is
		// unreachable, but fail loudly rather than silently.
		http.Error(w, `{"error":"encoding failure","code":"internal"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

// retryAfterSeconds is the backoff hint attached to 503 answers. Queue-full
// is transient at batch-dispatch granularity and shutdown means "ask a
// replica", so a short constant beats anything adaptive here.
const retryAfterSeconds = "1"

func writeError(w http.ResponseWriter, err error) {
	status, code := httpStatus(err)
	if status == http.StatusServiceUnavailable {
		// RFC 9110 §10.2.3: tell well-behaved clients when to come back
		// instead of letting them hammer a saturated or draining server.
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	writeJSON(w, status, errorBody{Error: err.Error(), Code: code})
}

// decodeBody parses a request body strictly into v: unknown fields, trailing
// garbage, wrong JSON types, and oversized bodies all map to ErrBadRequest,
// so the fuzz contract ("malformed bodies never panic, always a typed
// error") holds at the decode boundary.
func decodeBody(r *http.Request, v any) error {
	return decodeBodyLimit(r, v, maxBodyBytes)
}

func decodeBodyLimit(r *http.Request, v any, limit int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	// A second decode must see EOF; anything else is trailing garbage.
	if dec.More() {
		return fmt.Errorf("%w: trailing data after request object", ErrBadRequest)
	}
	return nil
}

// decodeRequest parses a predict body strictly (see decodeBody).
func decodeRequest(r *http.Request) (Request, error) {
	var req Request
	if err := decodeBody(r, &req); err != nil {
		return Request{}, err
	}
	return req, nil
}

// Handler returns the HTTP/JSON front-end:
//
//	POST /predict  {"app": "...", "seed": 1, "top": 10, "input_gb": 0}
//	POST /absorb   {"name": "...", "app": "...", "seed": 1}
//	POST /catalog  cloud.Update: {"retire": [...], "reprice": {...}, "spot": {...}, "add": [...]}
//	GET  /catalog  the published catalog version and its types
//	GET  /healthz  liveness plus the published epoch/consistency token
//	GET  /stats    operational counters (queue depth, cache hit rate, ...)
//
// Predict bodies are exactly the server's canonical bytes — byte-identical
// for a given (snapshot, request) whatever the worker count or cache state.
// Absorb completes the named application online and folds it into the
// knowledge graph (durably, when the server has a WAL); re-absorbing a name
// answers 409. Catalog updates absorb with the same durability ordering and
// answer the new (epoch, catalog_version) token; invalid updates answer 400
// and read-only replicas 403.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		req, err := decodeRequest(r)
		if err != nil {
			writeError(w, err)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), defaultRequestTimeout)
		defer cancel()
		body, err := s.PredictBytes(ctx, req)
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	})
	mux.HandleFunc("POST /absorb", func(w http.ResponseWriter, r *http.Request) {
		var req AbsorbRequest
		if err := decodeBody(r, &req); err != nil {
			writeError(w, err)
			return
		}
		resp, err := s.AbsorbApp(req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /catalog", func(w http.ResponseWriter, r *http.Request) {
		var up cloud.Update
		if err := decodeBody(r, &up); err != nil {
			writeError(w, err)
			return
		}
		resp, err := s.UpdateCatalog(up)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /catalog", func(w http.ResponseWriter, r *http.Request) {
		snap := s.Snapshot()
		writeJSON(w, http.StatusOK, map[string]any{
			"epoch":           snap.Epoch(),
			"catalog_version": snap.CatalogVersion(),
			"types":           snap.Catalog(),
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		snap := s.Snapshot()
		// The advertised epoch is the *committed* one: while a rollout
		// candidate is staged the published snapshot runs ahead uncommitted,
		// and advertising its epoch would raise a router's staleness floor
		// past every incumbent node — a rollback would then strand the whole
		// fleet below the floor. The staged_version field tells probes the
		// node is mid-rollout.
		health := map[string]any{
			"status":          "ok",
			"epoch":           s.committedEpoch(),
			"workloads":       snap.Workloads(),
			"catalog_version": snap.CatalogVersion(),
			"read_only":       s.cfg.ReadOnly,
		}
		if v := s.StagedVersion(); v != "" {
			health["staged_version"] = v
		}
		s.stageMu.Lock()
		repl := s.replStats
		s.stageMu.Unlock()
		if repl != nil {
			// Follower sync counters (transient fetch failures, frames
			// applied, pauses) ride on the probe surface too, so a router's
			// probe log shows replication health without a second request.
			health["replication"] = repl()
		}
		if ws, ok := s.cfg.WAL.(interface{ Stats() wal.Stats }); ok {
			// Durable-state health: the last acked epoch, the live log size,
			// and any quarantined checkpoints — the signals an operator (or a
			// router probe) needs to judge whether this node's durability is
			// keeping up with its serving.
			wst := ws.Stats()
			health["wal"] = map[string]any{
				"acked_epoch": wst.Epoch,
				"log_bytes":   wst.LogBytes,
				"checkpoints": wst.Checkpoints,
				"quarantined": wst.Quarantined,
				"broken":      wst.Broken,
			}
			if wst.Broken {
				health["status"] = "degraded"
			}
		}
		writeJSON(w, http.StatusOK, health)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	if s.cfg.RolloutControl {
		s.mountRollout(mux)
	}
	return mux
}

// rolloutRequest is the body of the POST /rollout/* control endpoints.
// Snapshot (stage only) is the candidate's serialized form, base64 in JSON
// per encoding/json's []byte convention.
type rolloutRequest struct {
	Version  string `json:"version"`
	Snapshot []byte `json:"snapshot,omitempty"`
}

// rolloutStatus answers every successful rollout call and GET
// /rollout/status: the node's position in the two-phase switch.
type rolloutStatus struct {
	StagedVersion    string `json:"staged_version"`
	CommittedVersion string `json:"committed_version"`
	Epoch            uint64 `json:"epoch"`
	CommittedEpoch   uint64 `json:"committed_epoch"`
}

func (s *Server) currentRolloutStatus() rolloutStatus {
	return rolloutStatus{
		StagedVersion:    s.StagedVersion(),
		CommittedVersion: s.CommittedVersion(),
		Epoch:            s.Snapshot().Epoch(),
		CommittedEpoch:   s.committedEpoch(),
	}
}

// mountRollout adds the staged-upgrade control plane (DESIGN.md §16):
//
//	POST /rollout/stage   {"version": "...", "snapshot": "<base64>"}
//	POST /rollout/commit  {"version": "..."}
//	POST /rollout/revert  {"version": "..."}
//	GET  /rollout/status
//
// Stage publishes the candidate uncommitted (mutations freeze, ErrStaged);
// commit makes it durable; revert restores the incumbent bit-for-bit. All
// three are idempotent by version — the coordinator replays them after a
// crash — and version mismatches answer 409.
func (s *Server) mountRollout(mux *http.ServeMux) {
	handle := func(path string, fn func(rolloutRequest) error) {
		mux.HandleFunc("POST "+path, func(w http.ResponseWriter, r *http.Request) {
			var req rolloutRequest
			if err := decodeBodyLimit(r, &req, maxStageBodyBytes); err != nil {
				writeError(w, err)
				return
			}
			if err := fn(req); err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, s.currentRolloutStatus())
		})
	}
	handle("/rollout/stage", func(req rolloutRequest) error {
		return s.StageEncoded(req.Version, req.Snapshot)
	})
	handle("/rollout/commit", func(req rolloutRequest) error {
		if len(req.Snapshot) != 0 {
			return fmt.Errorf("%w: commit takes no snapshot", ErrBadRequest)
		}
		return s.CommitStaged(req.Version)
	})
	handle("/rollout/revert", func(req rolloutRequest) error {
		if len(req.Snapshot) != 0 {
			return fmt.Errorf("%w: revert takes no snapshot", ErrBadRequest)
		}
		return s.RevertStaged(req.Version)
	})
	mux.HandleFunc("GET /rollout/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.currentRolloutStatus())
	})
}
