package serve

import (
	"container/list"
	"math"
	"sync"

	"vesta/internal/cloud"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

// defaultProfileCacheSize is the memoized-measurement LRU capacity when
// Config.ProfileCacheSize is left zero.
const defaultProfileCacheSize = 4096

// profileKey identifies one memoizable measurement. The default meter's
// profile is a pure function of (app, vm, request seed) under a fixed
// simulator configuration; the app itself is fully determined by its name
// plus the input-size override, rendered as exact float bits so distinct
// inputs can never collide.
type profileKey struct {
	app  string
	gb   uint64 // math.Float64bits(app.InputGB)
	vm   string
	seed uint64
}

// profileLRU is a fixed-capacity, internally synchronized LRU over simulator
// profiles. It is shared by every request's meter, so a profiling campaign
// (sandbox + random picks) computed once serves every later request that
// would redo the identical measurement.
type profileLRU struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *profileEntry
	entries map[profileKey]*list.Element

	hits, misses int64
}

type profileEntry struct {
	key profileKey
	p   sim.Profile
}

func newProfileLRU(capacity int) *profileLRU {
	return &profileLRU{cap: capacity, order: list.New(), entries: make(map[profileKey]*list.Element)}
}

func (c *profileLRU) get(k profileKey) (sim.Profile, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		return sim.Profile{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*profileEntry).p, true
}

func (c *profileLRU) put(k profileKey, p sim.Profile) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		// Identical key means an identical (pure) profile; refresh recency.
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&profileEntry{key: k, p: p})
	c.entries[k] = el
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*profileEntry).key)
	}
}

func (c *profileLRU) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

func (c *profileLRU) counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// memoMeter is the default per-request measurement service with exact profile
// memoization. It implements oracle.Service with the same run accounting as
// oracle.Meter — every TryProfile charges one reference-VM unit whether the
// profile is computed or recalled — so OnlineRuns in responses and the
// Figure-8 overhead metric are byte-for-byte unchanged. Only the simulated
// cluster work is skipped: the profile itself is a pure function of
// (app, vm, seed) for a fixed simulator, which is exactly the memo key.
type memoMeter struct {
	sim   *sim.Simulator
	seed  uint64
	cache *profileLRU // nil: memoization disabled, always simulate

	mu   sync.Mutex
	runs int
}

// TryProfile implements oracle.Service. The ground-truth simulator cannot
// fail; the error is always nil.
func (m *memoMeter) TryProfile(app workload.App, vm cloud.VMType) (sim.Profile, error) {
	m.mu.Lock()
	m.runs++
	m.mu.Unlock()
	if m.cache == nil {
		return m.sim.ProfileRun(app, vm, m.seed), nil
	}
	key := profileKey{app: app.Name, gb: math.Float64bits(app.InputGB), vm: vm.Name, seed: m.seed}
	if p, ok := m.cache.get(key); ok {
		return p, nil
	}
	p := m.sim.ProfileRun(app, vm, m.seed)
	m.cache.put(key, p)
	return p, nil
}

// Runs implements oracle.Service.
func (m *memoMeter) Runs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.runs
}

// SimConfig implements oracle.Service.
func (m *memoMeter) SimConfig() sim.Config { return m.sim.Config() }

// The compiler enforces the Service contract here rather than at first use.
var _ oracle.Service = (*memoMeter)(nil)
