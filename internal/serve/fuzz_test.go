package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzServeRequest feeds arbitrary bodies through the full HTTP predict
// path. The contract under fuzz: the handler never panics, every answer is
// one of the documented statuses, non-200 answers carry the JSON error
// envelope with a stable code, and 200 answers carry a consistent snapshot
// token. Seed corpus lives in testdata/fuzz/FuzzServeRequest.
func FuzzServeRequest(f *testing.F) {
	seeds := []string{
		`{"app":"Spark-kmeans"}`,
		`{"app":"Spark-lr","seed":2,"top":3}`,
		`{"app":"Spark-lr","input_gb":64}`,
		`{"app":""}`,
		`{"app":"nope"}`,
		`{"app":"Spark-lr","top":-1}`,
		`{"app":"Spark-lr","input_gb":-5}`,
		`{"app":"Spark-lr","input_gb":1e309}`,
		`{"app":1}`,
		`{"app":"Spark-lr","bogus":1}`,
		`{"app":"Spark-lr"} trailing`,
		`[]`,
		`null`,
		`{`,
		``,
		"\x00\xff\xfe",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	srv, err := New(testSnapshot(f), Config{Workers: 2, CacheSize: 64})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(srv.Close)
	h := srv.Handler()
	snap := srv.Snapshot()

	allowed := map[int]string{
		http.StatusOK:                 "",
		http.StatusBadRequest:         "bad_request",
		http.StatusNotFound:           "unknown_app",
		http.StatusServiceUnavailable: "queue_full",
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic
		wantCode, ok := allowed[rec.Code]
		if !ok {
			t.Fatalf("status %d for body %q", rec.Code, body)
		}
		if rec.Code == http.StatusOK {
			resp, err := decodeResponse(rec.Body.Bytes())
			if err != nil {
				t.Fatalf("200 with undecodable body %q: %v", rec.Body.String(), err)
			}
			if resp.Workloads != baseWorkloads+int(resp.Epoch) {
				t.Fatalf("inconsistent snapshot token: %+v", resp)
			}
			if resp.Epoch != snap.Epoch() {
				t.Fatalf("epoch %d, want %d", resp.Epoch, snap.Epoch())
			}
			return
		}
		var e errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
			t.Fatalf("status %d with non-envelope body %q", rec.Code, rec.Body.String())
		}
		if e.Code != wantCode || e.Error == "" {
			t.Fatalf("status %d with envelope %+v, want code %q", rec.Code, e, wantCode)
		}
	})
}
