package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"vesta/internal/core"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/wal"
	"vesta/internal/workload"
)

var (
	candOnce sync.Once
	candVal  *core.Snapshot
	candErr  error
)

// candidateSnapshot absorbs one target on top of the shared base: the
// epoch-1 "new version" the staging tests promote.
func candidateSnapshot(t testing.TB) *core.Snapshot {
	t.Helper()
	base := testSnapshot(t)
	candOnce.Do(func() {
		app, err := workload.ByName("Spark-kmeans")
		if err != nil {
			candErr = err
			return
		}
		pred, err := base.Predict(app, oracle.NewMeter(sim.New(sim.DefaultConfig()), 42))
		if err != nil {
			candErr = err
			return
		}
		candVal, candErr = base.Absorb("rollout-target", pred.LabelWeights, pred.PrunedVec)
	})
	if candErr != nil {
		t.Fatal(candErr)
	}
	return candVal
}

func encodeSnapshot(t testing.TB, sn *core.Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sn.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStageCommitLifecycle(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	cand := candidateSnapshot(t)

	if err := s.Stage("v1", cand); err != nil {
		t.Fatal(err)
	}
	if got := s.StagedVersion(); got != "v1" {
		t.Fatalf("StagedVersion = %q, want v1", got)
	}
	if s.Snapshot() != cand {
		t.Fatal("staged candidate not published")
	}
	// Probes must keep advertising the incumbent epoch while uncommitted.
	if got := s.committedEpoch(); got != 0 {
		t.Fatalf("committedEpoch while staged = %d, want 0", got)
	}
	// Mutations freeze until the stage resolves.
	if err := s.Absorb("frozen", nil, nil); !errors.Is(err, ErrStaged) {
		t.Fatalf("Absorb while staged = %v, want ErrStaged", err)
	}
	if _, err := s.AbsorbApp(AbsorbRequest{Name: "frozen", App: "Spark-sort"}); !errors.Is(err, ErrStaged) {
		t.Fatalf("AbsorbApp while staged = %v, want ErrStaged", err)
	}
	// Predictions keep flowing — against the candidate.
	resp, err := s.Predict(context.Background(), Request{App: "Spark-sort"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != 1 {
		t.Fatalf("staged predict epoch = %d, want 1", resp.Epoch)
	}
	// Idempotent re-stage; conflicting second version refused.
	if err := s.Stage("v1", cand); err != nil {
		t.Fatalf("re-stage of staged version = %v", err)
	}
	if err := s.Stage("v2", cand); !errors.Is(err, ErrConflict) {
		t.Fatalf("second version while staged = %v, want ErrConflict", err)
	}
	if err := s.CommitStaged("v2"); !errors.Is(err, ErrConflict) {
		t.Fatalf("commit of wrong version = %v, want ErrConflict", err)
	}

	if err := s.CommitStaged("v1"); err != nil {
		t.Fatal(err)
	}
	if got := s.StagedVersion(); got != "" {
		t.Fatalf("StagedVersion after commit = %q", got)
	}
	if got := s.CommittedVersion(); got != "v1" {
		t.Fatalf("CommittedVersion = %q, want v1", got)
	}
	if got := s.committedEpoch(); got != 1 {
		t.Fatalf("committedEpoch after commit = %d, want 1", got)
	}
	// Crash-replay idempotency: both verbs are no-ops for the committed version.
	if err := s.Stage("v1", cand); err != nil {
		t.Fatalf("re-stage of committed version = %v", err)
	}
	if err := s.CommitStaged("v1"); err != nil {
		t.Fatalf("re-commit of committed version = %v", err)
	}
	// Commit is the point of no return.
	if err := s.RevertStaged("v1"); !errors.Is(err, ErrConflict) {
		t.Fatalf("revert after commit = %v, want ErrConflict", err)
	}
	// The freeze lifted.
	if _, err := s.AbsorbApp(AbsorbRequest{Name: "thawed", App: "Spark-sort"}); err != nil {
		t.Fatalf("absorb after commit: %v", err)
	}
	if st := s.Stats(); st.CommittedVersion != "v1" || st.StagedVersion != "" {
		t.Fatalf("stats versions = staged %q committed %q", st.StagedVersion, st.CommittedVersion)
	}
}

func TestStageRevertRestoresIncumbent(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	incumbent := s.Snapshot()
	if err := s.Stage("v1", candidateSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	if err := s.RevertStaged("v1"); err != nil {
		t.Fatal(err)
	}
	if s.Snapshot() != incumbent {
		t.Fatal("revert did not restore the incumbent snapshot")
	}
	if got := s.StagedVersion(); got != "" {
		t.Fatalf("StagedVersion after revert = %q", got)
	}
	// Idempotent: reverting an already-reverted (or never-staged) version is
	// a no-op, so a crashed coordinator can replay its rollback safely.
	if err := s.RevertStaged("v1"); err != nil {
		t.Fatalf("double revert = %v", err)
	}
	// A reverted version may be staged again (retry after a fixed gate).
	if err := s.Stage("v1", candidateSnapshot(t)); err != nil {
		t.Fatalf("re-stage after revert = %v", err)
	}
	if err := s.RevertStaged("v1"); err != nil {
		t.Fatal(err)
	}
}

func TestStageRefusesEpochRewind(t *testing.T) {
	cand := candidateSnapshot(t)
	s, err := New(cand, Config{Workers: 1}) // incumbent at epoch 1
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Stage("old", testSnapshot(t)); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("staging an epoch rewind = %v, want ErrBadRequest", err)
	}
}

// TestStageCommitInstallsDurably: with a WAL that supports installation, the
// commit writes the candidate as the durable state — a restart recovers the
// new version, not the incumbent.
func TestStageCommitInstallsDurably(t *testing.T) {
	base := testSnapshot(t)
	dir := t.TempDir()
	m, rec, err := wal.Open(base, wal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(rec, Config{Workers: 1, WAL: m})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cand := candidateSnapshot(t)
	if err := s.Stage("v1", cand); err != nil {
		t.Fatal(err)
	}
	if got := m.Epoch(); got != 0 {
		t.Fatalf("staging touched durable state: wal epoch %d", got)
	}
	if err := s.CommitStaged("v1"); err != nil {
		t.Fatal(err)
	}
	if got := m.Epoch(); got != 1 {
		t.Fatalf("wal epoch after commit = %d, want 1", got)
	}
	m.Close()

	m2, rec2, err := wal.Open(base, wal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if !bytes.Equal(encodeSnapshot(t, rec2), encodeSnapshot(t, cand)) {
		t.Fatal("restart did not recover the committed candidate")
	}
}

func TestStageEncodedRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	cand := candidateSnapshot(t)
	if err := s.StageEncoded("v1", encodeSnapshot(t, cand)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeSnapshot(t, s.Snapshot()), encodeSnapshot(t, cand)) {
		t.Fatal("decoded staged candidate differs from the encoded one")
	}
	if err := s.RevertStaged("v1"); err != nil {
		t.Fatal(err)
	}
	if err := s.StageEncoded("v2", []byte("not a snapshot")); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("undecodable candidate = %v, want ErrBadRequest", err)
	}
}

// TestRolloutEndpoints drives the HTTP control plane end to end: stage via
// base64 snapshot, status, wrong-version commit 409, revert, and the gate
// that keeps the endpoints unmounted by default.
func TestRolloutEndpoints(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, RolloutControl: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path string, body any) (*http.Response, map[string]any) {
		t.Helper()
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return resp, out
	}

	cand := candidateSnapshot(t)
	resp, out := post("/rollout/stage", rolloutRequest{Version: "v1", Snapshot: encodeSnapshot(t, cand)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stage status = %d (%v)", resp.StatusCode, out)
	}
	if out["staged_version"] != "v1" {
		t.Fatalf("stage reply = %v", out)
	}
	// While staged, /healthz advertises the incumbent epoch plus the pending
	// version, and client mutations answer 409 with the "staged" code.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if health["epoch"] != float64(0) || health["staged_version"] != "v1" {
		t.Fatalf("staged healthz = %v", health)
	}
	resp, out = post("/absorb", AbsorbRequest{Name: "x", App: "Spark-sort"})
	if resp.StatusCode != http.StatusConflict || out["code"] != "staged" {
		t.Fatalf("absorb while staged = %d %v, want 409 staged", resp.StatusCode, out)
	}
	resp, _ = post("/rollout/commit", rolloutRequest{Version: "nope"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("wrong-version commit status = %d, want 409", resp.StatusCode)
	}
	resp, out = post("/rollout/revert", rolloutRequest{Version: "v1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("revert status = %d (%v)", resp.StatusCode, out)
	}
	sr, err := http.Get(ts.URL + "/rollout/status")
	if err != nil {
		t.Fatal(err)
	}
	var status rolloutStatus
	if err := json.NewDecoder(sr.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if status.StagedVersion != "" || status.CommittedVersion != "" || status.Epoch != 0 {
		t.Fatalf("status after revert = %+v", status)
	}

	// Without RolloutControl the control plane is not mounted.
	plain := newTestServer(t, Config{Workers: 1})
	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()
	pr, err := http.Post(tsPlain.URL+"/rollout/stage", "application/json", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusNotFound {
		t.Fatalf("ungated rollout endpoint status = %d, want 404", pr.StatusCode)
	}
}
