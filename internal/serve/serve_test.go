package serve

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/obs"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

// baseWorkloads is the source-training workload count every epoch-0 snapshot
// reports (the b of the b+e consistency token).
const baseWorkloads = 13

var (
	snapOnce sync.Once
	snapVal  *core.Snapshot
	snapErr  error
)

// testSnapshot trains one system and shares its epoch-0 snapshot across the
// package's tests. Snapshots are immutable, so sharing is safe; each test
// builds its own Server (and Absorb never touches the shared base).
func testSnapshot(t testing.TB) *core.Snapshot {
	t.Helper()
	snapOnce.Do(func() {
		sys, err := core.New(core.Config{Seed: 1}, cloud.Catalog120())
		if err != nil {
			snapErr = err
			return
		}
		meter := oracle.NewMeter(sim.New(sim.DefaultConfig()), 1)
		if err := sys.TrainOffline(workload.BySet(workload.SourceTraining), meter); err != nil {
			snapErr = err
			return
		}
		snapVal, snapErr = sys.Snapshot()
	})
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	return snapVal
}

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	s, err := New(testSnapshot(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestNewRejectsNilSnapshot(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil snapshot accepted")
	}
}

func TestPredictBasic(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	resp, err := s.Predict(context.Background(), Request{App: "Spark-kmeans", Top: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Target != "Spark-kmeans" {
		t.Fatalf("target = %q", resp.Target)
	}
	if resp.Epoch != 0 || resp.Workloads != baseWorkloads {
		t.Fatalf("consistency token = (epoch %d, workloads %d), want (0, %d)",
			resp.Epoch, resp.Workloads, baseWorkloads)
	}
	if resp.Best == "" {
		t.Fatal("empty best VM")
	}
	if len(resp.Ranking) != 5 {
		t.Fatalf("ranking length = %d, want 5", len(resp.Ranking))
	}
	if resp.Ranking[0].VM != resp.Best {
		t.Fatalf("ranking[0] = %q, best = %q", resp.Ranking[0].VM, resp.Best)
	}
	for _, e := range resp.Ranking {
		if e.PredictedUSD < 0 {
			t.Fatalf("negative predicted USD for %s", e.VM)
		}
	}
}

func TestResolveValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  Request
		want error
	}{
		{"missing app", Request{}, ErrBadRequest},
		{"negative input", Request{App: "Spark-lr", InputGB: -1}, ErrBadRequest},
		{"negative top", Request{App: "Spark-lr", Top: -1}, ErrBadRequest},
		{"unknown app", Request{App: "Flink-wat"}, ErrUnknownApp},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := s.Predict(context.Background(), tc.req); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestRequestDefaults(t *testing.T) {
	s := newTestServer(t, Config{})
	// Seed 0 and seed 1 must be the same request (seed 0 takes the default).
	a, err := s.PredictBytes(context.Background(), Request{App: "Spark-lr"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.PredictBytes(context.Background(), Request{App: "Spark-lr", Seed: 1, Top: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("default-filled request differs from its explicit form")
	}
}

func TestTopClampsToCatalog(t *testing.T) {
	s := newTestServer(t, Config{})
	resp, err := s.Predict(context.Background(), Request{App: "Spark-lr", Top: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Ranking) != len(cloud.Catalog120()) {
		t.Fatalf("ranking length = %d, want full catalog %d",
			len(resp.Ranking), len(cloud.Catalog120()))
	}
}

func TestCacheHitsAndStats(t *testing.T) {
	tr := obs.New()
	s := newTestServer(t, Config{Tracer: tr})
	req := Request{App: "Spark-grep", Seed: 7, Top: 3}
	first, err := s.PredictBytes(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.PredictBytes(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cache returned different bytes")
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	if st.CacheLen != 1 {
		t.Fatalf("cache len = %d, want 1", st.CacheLen)
	}
	if st.Requests != 2 || st.Batches < 1 || st.MaxBatch < 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := tr.Counter("serve.cache_hits"); got != 1 {
		t.Fatalf("traced cache hits = %d, want 1", got)
	}
	// A different seed is a different request: miss, not hit.
	req.Seed = 8
	if _, err := s.PredictBytes(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CacheHits != 1 || st.CacheMisses != 2 {
		t.Fatalf("after seed change: hits/misses = %d/%d, want 1/2", st.CacheHits, st.CacheMisses)
	}
}

func TestNoCacheServesIdenticalBytes(t *testing.T) {
	cached := newTestServer(t, Config{})
	uncached := newTestServer(t, Config{NoCache: true})
	req := Request{App: "Spark-sort", Seed: 3}
	a, err := cached.PredictBytes(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := uncached.PredictBytes(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("cache state changed response bytes")
	}
	if st := uncached.Stats(); st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheLen != 0 {
		t.Fatalf("NoCache server touched the cache: %+v", st)
	}
}

// gate lets a test hold the dispatcher mid-batch deterministically: the first
// gated measurement closes entered, every measurement blocks until open().
type gate struct {
	entered     chan struct{} // closed once on first TryProfile
	release     chan struct{}
	enterOnce   sync.Once
	releaseOnce sync.Once
}

func newGate() *gate {
	return &gate{entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gate) open() { g.releaseOnce.Do(func() { close(g.release) }) }

// meterFor is a serve.Config.MeterFor that wraps each per-request meter in
// the gate.
func (g *gate) meterFor(seed uint64) oracle.Service {
	return &gatedService{Service: oracle.NewMeter(sim.New(sim.DefaultConfig()), seed), g: g}
}

type gatedService struct {
	oracle.Service
	g *gate
}

func (s *gatedService) TryProfile(app workload.App, vm cloud.VMType) (sim.Profile, error) {
	s.g.enterOnce.Do(func() { close(s.g.entered) })
	<-s.g.release
	return s.Service.TryProfile(app, vm)
}

func TestQueueFullBackpressure(t *testing.T) {
	gate := newGate()
	s := newTestServer(t, Config{
		Workers:   1,
		QueueSize: 1,
		BatchSize: 1,
		MeterFor:  gate.meterFor,
	})
	// LIFO cleanup: the gate must open before s.Close tries to drain.
	t.Cleanup(gate.open)

	// First request occupies the dispatcher (blocked inside the gate).
	res1 := make(chan error, 1)
	go func() {
		_, err := s.PredictBytes(context.Background(), Request{App: "Spark-lr"})
		res1 <- err
	}()
	<-gate.entered

	// Second request fills the queue (capacity 1).
	res2 := make(chan error, 1)
	go func() {
		_, err := s.PredictBytes(context.Background(), Request{App: "Spark-grep"})
		res2 <- err
	}()
	waitFor(t, func() bool { return s.Stats().QueueDepth == 1 })

	// Third request must bounce with the typed backpressure error.
	if _, err := s.PredictBytes(context.Background(), Request{App: "Spark-sort"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if st := s.Stats(); st.QueueRejects != 1 {
		t.Fatalf("queue rejects = %d, want 1", st.QueueRejects)
	}

	// Releasing the gate drains both held requests successfully.
	gate.open()
	if err := <-res1; err != nil {
		t.Fatal(err)
	}
	if err := <-res2; err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCloseDrainsQueuedWork(t *testing.T) {
	gate := newGate()
	s, err := New(testSnapshot(t), Config{
		Workers:   1,
		QueueSize: 4,
		BatchSize: 1,
		MeterFor:  gate.meterFor,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gate.open)

	// Hold the dispatcher, park a second request in the queue.
	res1 := make(chan error, 1)
	go func() {
		_, err := s.PredictBytes(context.Background(), Request{App: "Spark-lr"})
		res1 <- err
	}()
	<-gate.entered
	res2 := make(chan error, 1)
	go func() {
		_, err := s.PredictBytes(context.Background(), Request{App: "Spark-grep"})
		res2 <- err
	}()
	waitFor(t, func() bool { return s.Stats().QueueDepth == 1 })

	// Close concurrently; it must wait for the backlog, not abandon it.
	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	gate.open()
	<-closed
	if err := <-res1; err != nil {
		t.Fatal(err)
	}
	if err := <-res2; err != nil {
		t.Fatal(err)
	}

	// Admission after Close is the typed shutdown error, and Close is
	// idempotent.
	if _, err := s.PredictBytes(context.Background(), Request{App: "Spark-lr"}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("err = %v, want ErrShuttingDown", err)
	}
	s.Close()
}

func TestContextCancellation(t *testing.T) {
	gate := newGate()
	s := newTestServer(t, Config{Workers: 1, MeterFor: gate.meterFor})
	t.Cleanup(gate.open)
	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() {
		_, err := s.PredictBytes(ctx, Request{App: "Spark-lr"})
		res <- err
	}()
	<-gate.entered
	cancel()
	if err := <-res; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	gate.open() // let the abandoned task finish so Close can drain
}

func TestAbsorbAdvancesEpochAndInvalidatesCache(t *testing.T) {
	s := newTestServer(t, Config{})
	req := Request{App: "Spark-kmeans", Top: 3}
	before, err := s.Predict(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if before.Epoch != 0 || before.Workloads != baseWorkloads {
		t.Fatalf("before = (%d, %d)", before.Epoch, before.Workloads)
	}

	// Use a completed prediction as the absorbed target, the documented flow.
	meter := oracle.NewMeter(sim.New(sim.DefaultConfig()), 42)
	app := mustApp(t, "Spark-grep")
	pred, err := s.Snapshot().Predict(app, meter)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Absorb("target-grep", pred.LabelWeights, pred.PrunedVec); err != nil {
		t.Fatal(err)
	}

	after, err := s.Predict(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if after.Epoch != 1 || after.Workloads != baseWorkloads+1 {
		t.Fatalf("after = (%d, %d), want (1, %d)", after.Epoch, after.Workloads, baseWorkloads+1)
	}
	st := s.Stats()
	if st.Swaps != 1 || st.Epoch != 1 || st.Workloads != baseWorkloads+1 {
		t.Fatalf("stats after absorb = %+v", st)
	}
	// Both responses were computed, not served from a stale cache entry: the
	// epoch in the key separates them.
	if st.CacheMisses != 2 || st.CacheHits != 0 {
		t.Fatalf("cache hits/misses = %d/%d, want 0/2", st.CacheHits, st.CacheMisses)
	}
	// The base snapshot is untouched (copy-on-write, not in-place).
	if got := testSnapshot(t).Workloads(); got != baseWorkloads {
		t.Fatalf("base snapshot mutated: %d workloads", got)
	}
}

func TestUpdateErrorKeepsPublishedSnapshot(t *testing.T) {
	s := newTestServer(t, Config{})
	wantErr := errors.New("boom")
	err := s.Update(func(old *core.Snapshot) (*core.Snapshot, error) {
		return nil, wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if s.Snapshot().Epoch() != 0 {
		t.Fatal("failed update advanced the snapshot")
	}
	if err := s.Publish(nil); err == nil {
		t.Fatal("nil publish accepted")
	}
}

func TestAbsorbDuplicateNameFails(t *testing.T) {
	s := newTestServer(t, Config{})
	meter := oracle.NewMeter(sim.New(sim.DefaultConfig()), 5)
	pred, err := s.Snapshot().Predict(mustApp(t, "Spark-sort"), meter)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Absorb("dup", pred.LabelWeights, pred.PrunedVec); err != nil {
		t.Fatal(err)
	}
	if err := s.Absorb("dup", pred.LabelWeights, pred.PrunedVec); err == nil {
		t.Fatal("duplicate absorb accepted")
	}
	if got := s.Snapshot().Epoch(); got != 1 {
		t.Fatalf("epoch after failed absorb = %d, want 1", got)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	k := func(i uint64) cacheKey { return cacheKey{epoch: i, fp: "x"} }
	c.put(k(1), []byte("a"))
	c.put(k(2), []byte("b"))
	if _, ok := c.get(k(1)); !ok { // refresh 1: now 2 is LRU
		t.Fatal("entry 1 missing")
	}
	c.put(k(3), []byte("c")) // evicts 2
	if _, ok := c.get(k(2)); ok {
		t.Fatal("LRU entry not evicted")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.get(k(3)); !ok {
		t.Fatal("new entry missing")
	}
	c.put(k(3), []byte("c")) // re-put refreshes, no growth
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestErrorMessagesAreTyped(t *testing.T) {
	s := newTestServer(t, Config{})
	_, err := s.Predict(context.Background(), Request{App: "no-such-app"})
	if !errors.Is(err, ErrUnknownApp) || !strings.Contains(err.Error(), "no-such-app") {
		t.Fatalf("err = %v", err)
	}
}

func mustApp(t testing.TB, name string) workload.App {
	t.Helper()
	a, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
