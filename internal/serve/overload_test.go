package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// waitQueueDepth polls Stats until the admission queue holds want tasks.
func waitQueueDepth(t *testing.T, s *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if d := s.Stats().QueueDepth; d >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached depth %d (at %d)", want, s.Stats().QueueDepth)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOverloadContract pins the overload behaviour end to end over HTTP: a
// burst beyond queue capacity answers 503 with Retry-After for both the
// priority shed and the hard queue-full reject, no request is ever dropped
// without a response, and the /stats counters reconcile exactly with the
// offered load.
func TestOverloadContract(t *testing.T) {
	gate := newGate()
	s := newTestServer(t, Config{
		Workers:       1,
		QueueSize:     4,
		BatchSize:     1,
		ShedThreshold: 0.5, // shed best-effort once 2 of 4 slots are taken
		NoCache:       true,
		MeterFor:      gate.meterFor,
	})
	t.Cleanup(gate.open)
	handler := s.Handler()
	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body)))
		return rec
	}

	// One request occupies the dispatcher (blocked inside the gate), then
	// premium traffic fills the queue to the shed threshold.
	results := make(chan error, 8)
	blockingPredicts := 0
	predictAsync := func(ctx context.Context, app string) {
		blockingPredicts++
		go func() {
			_, err := s.PredictBytes(ctx, Request{App: app})
			results <- err
		}()
	}
	predictAsync(context.Background(), "Spark-lr")
	<-gate.entered
	predictAsync(context.Background(), "Spark-grep")
	predictAsync(context.Background(), "Spark-sort")
	waitQueueDepth(t, s, 2)

	// Best-effort traffic is now shed: 503, Retry-After, stable error code.
	shedRec := post(`{"app":"Spark-kmeans","priority":1}`)
	if shedRec.Code != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d, want 503 (body %s)", shedRec.Code, shedRec.Body)
	}
	if shedRec.Header().Get("Retry-After") == "" {
		t.Fatal("shed 503 missing Retry-After")
	}
	var shedBody struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(shedRec.Body.Bytes(), &shedBody); err != nil || shedBody.Code != "queue_full" {
		t.Fatalf("shed body = %s (err %v), want code queue_full", shedRec.Body, err)
	}

	// Premium traffic still admits past the shed gate until the queue is
	// hard-full...
	cancelCtx, cancel := context.WithCancel(context.Background())
	predictAsync(cancelCtx, "Spark-bayes")
	predictAsync(context.Background(), "Spark-pca")
	waitQueueDepth(t, s, 4)

	// ...then premium gets the hard queue-full 503, same contract.
	rejectRec := post(`{"app":"Spark-count"}`)
	if rejectRec.Code != http.StatusServiceUnavailable {
		t.Fatalf("reject status = %d, want 503", rejectRec.Code)
	}
	if rejectRec.Header().Get("Retry-After") == "" {
		t.Fatal("reject 503 missing Retry-After")
	}

	// Cancel one queued request: its slot drains unserved (the canceled
	// counter), its caller still gets an answer (ctx.Err).
	cancel()

	// Release the dispatcher and collect every outstanding response: zero
	// dropped-without-response is the contract.
	gate.open()
	var good, canceled int
	for i := 0; i < blockingPredicts; i++ {
		select {
		case err := <-results:
			switch {
			case err == nil:
				good++
			case errors.Is(err, context.Canceled):
				canceled++
			default:
				t.Fatalf("unexpected predict error: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("request dropped without a response (%d/%d answered)", i, blockingPredicts)
		}
	}
	if good != blockingPredicts-1 || canceled != 1 {
		t.Fatalf("good=%d canceled=%d, want %d/1", good, canceled, blockingPredicts-1)
	}

	// The server must finish skipping the canceled task before its counter
	// shows up (the caller's ctx.Err answer races the dispatcher's skip).
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Canceled == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// Counter reconciliation against offered load, via the public /stats
	// endpoint: requests == served + shed + rejected, canceled tracked too.
	statsRec := httptest.NewRecorder()
	handler.ServeHTTP(statsRec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if statsRec.Code != http.StatusOK {
		t.Fatalf("/stats status = %d", statsRec.Code)
	}
	var st Stats
	if err := json.Unmarshal(statsRec.Body.Bytes(), &st); err != nil {
		t.Fatalf("/stats body: %v", err)
	}
	offered := int64(blockingPredicts + 2) // + shed + reject over HTTP
	if st.Requests != offered {
		t.Fatalf("stats.requests = %d, want %d", st.Requests, offered)
	}
	if st.Shed != 1 || st.QueueRejects != 1 || st.Canceled != 1 {
		t.Fatalf("shed/rejects/canceled = %d/%d/%d, want 1/1/1", st.Shed, st.QueueRejects, st.Canceled)
	}
	answered := int64(good) + st.Shed + st.QueueRejects + int64(canceled)
	if answered != offered {
		t.Fatalf("answered %d != offered %d", answered, offered)
	}
}

// TestShedDisabledAndPremiumBypass: with ShedThreshold 0 nothing sheds, and
// with it on, premium (priority 0) requests are never shed — they ride to the
// hard queue bound.
func TestShedDisabledAndPremiumBypass(t *testing.T) {
	gate := newGate()
	s := newTestServer(t, Config{
		Workers:       1,
		QueueSize:     2,
		BatchSize:     1,
		ShedThreshold: 0.5,
		NoCache:       true,
		MeterFor:      gate.meterFor,
	})
	t.Cleanup(gate.open)

	res := make(chan error, 4)
	go func() {
		_, err := s.PredictBytes(context.Background(), Request{App: "Spark-lr"})
		res <- err
	}()
	<-gate.entered
	go func() {
		_, err := s.PredictBytes(context.Background(), Request{App: "Spark-grep"})
		res <- err
	}()
	waitQueueDepth(t, s, 1)

	// Occupancy 1/2 >= threshold: best-effort sheds, premium still admits.
	if _, err := s.PredictBytes(context.Background(), Request{App: "Spark-sort", Priority: 1}); !errors.Is(err, ErrShed) {
		t.Fatalf("best-effort err = %v, want ErrShed", err)
	}
	go func() {
		_, err := s.PredictBytes(context.Background(), Request{App: "Spark-sort"})
		res <- err
	}()
	waitQueueDepth(t, s, 2)
	// Queue hard-full: premium now gets the plain reject, not a shed.
	_, err := s.PredictBytes(context.Background(), Request{App: "Spark-count"})
	if !errors.Is(err, ErrQueueFull) || errors.Is(err, ErrShed) {
		t.Fatalf("premium at full queue: %v, want bare ErrQueueFull", err)
	}
	st := s.Stats()
	if st.Shed != 1 || st.QueueRejects != 1 {
		t.Fatalf("shed/rejects = %d/%d, want 1/1", st.Shed, st.QueueRejects)
	}
	gate.open()
	for i := 0; i < 3; i++ {
		if err := <-res; err != nil {
			t.Fatalf("queued request failed: %v", err)
		}
	}
}

// TestPriorityValidation: negative priorities fail validation before
// admission; the field never changes response bytes.
func TestPriorityValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	if _, err := s.PredictBytes(context.Background(), Request{App: "Spark-lr", Priority: -1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("negative priority err = %v, want ErrBadRequest", err)
	}
	a, err := s.PredictBytes(context.Background(), Request{App: "Spark-lr"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.PredictBytes(context.Background(), Request{App: "Spark-lr", Priority: 3})
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("priority changed response bytes")
	}
}

// TestShedThresholdValidation: New rejects thresholds outside [0, 1].
func TestShedThresholdValidation(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.5} {
		if _, err := New(testSnapshot(t), Config{ShedThreshold: bad}); err == nil {
			t.Errorf("ShedThreshold %v accepted", bad)
		}
	}
}
