package serve

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/wal"
)

// fakeWAL scripts the WriteAheadLog seam so the absorb ordering contract is
// testable without a filesystem.
type fakeWAL struct {
	appendErr error
	commitErr error
	onAppend  func(epoch uint64)
	appends   []uint64
	committed []uint64
}

func (f *fakeWAL) Append(name string, labelWeights, prunedVec []float64, epoch uint64) error {
	if f.onAppend != nil {
		f.onAppend(epoch)
	}
	if f.appendErr != nil {
		return f.appendErr
	}
	f.appends = append(f.appends, epoch)
	return nil
}

func (f *fakeWAL) AppendCatalog(up cloud.Update, epoch uint64) error {
	if f.onAppend != nil {
		f.onAppend(epoch)
	}
	if f.appendErr != nil {
		return f.appendErr
	}
	f.appends = append(f.appends, epoch)
	return nil
}

func (f *fakeWAL) Committed(snap *core.Snapshot) error {
	f.committed = append(f.committed, snap.Epoch())
	return f.commitErr
}

// absorbArgs runs one online prediction against the server's snapshot and
// returns the (labelWeights, prunedVec) pair Absorb wants — the documented
// completed-target flow.
func absorbArgs(t testing.TB, s *Server, app string, seed uint64) ([]float64, []float64) {
	t.Helper()
	meter := oracle.NewMeter(sim.New(sim.DefaultConfig()), seed)
	pred, err := s.Snapshot().Predict(mustApp(t, app), meter)
	if err != nil {
		t.Fatal(err)
	}
	return pred.LabelWeights, pred.PrunedVec
}

// A failed durable append must leave the served state exactly as it was: the
// snapshot is not published, so no response can reveal an epoch a restart
// would forget.
func TestAbsorbWALAppendFailureNotPublished(t *testing.T) {
	fw := &fakeWAL{appendErr: errors.New("disk full")}
	s := newTestServer(t, Config{WAL: fw})
	lw, pv := absorbArgs(t, s, "Spark-kmeans", 7)
	err := s.Absorb("t1", lw, pv)
	if err == nil {
		t.Fatal("absorb acknowledged over a failed WAL append")
	}
	if !errors.Is(err, fw.appendErr) {
		t.Fatalf("err = %v, want wrapped append error", err)
	}
	if got := s.Snapshot().Epoch(); got != 0 {
		t.Fatalf("epoch after failed append = %d, want 0 (not published)", got)
	}
	st := s.Stats()
	if st.WALAppends != 0 || !st.Durable || st.Swaps != 0 {
		t.Fatalf("stats = %+v, want no appends, no swaps, durable", st)
	}
	if len(fw.committed) != 0 {
		t.Fatal("Committed ran for an unpublished absorb")
	}
	// The name is still free: the retry path works.
	fw.appendErr = nil
	if err := s.Absorb("t1", lw, pv); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot().Epoch(); got != 1 {
		t.Fatalf("epoch after retry = %d, want 1", got)
	}
}

// The durable ordering: append → fsync ack → publish. At Append time the new
// epoch must not be visible to readers yet; Committed then observes exactly
// the published snapshot.
func TestAbsorbAppendsBeforePublish(t *testing.T) {
	fw := &fakeWAL{}
	s := newTestServer(t, Config{WAL: fw})
	var publishedAtAppend uint64
	fw.onAppend = func(epoch uint64) { publishedAtAppend = s.Snapshot().Epoch() }
	lw, pv := absorbArgs(t, s, "Spark-sort", 9)
	if err := s.Absorb("t1", lw, pv); err != nil {
		t.Fatal(err)
	}
	if publishedAtAppend != 0 {
		t.Fatalf("published epoch at Append time = %d, want 0 (pre-publish)", publishedAtAppend)
	}
	if len(fw.appends) != 1 || fw.appends[0] != 1 {
		t.Fatalf("appends = %v, want [1]", fw.appends)
	}
	if len(fw.committed) != 1 || fw.committed[0] != 1 {
		t.Fatalf("committed = %v, want [1]", fw.committed)
	}
	st := s.Stats()
	if st.WALAppends != 1 || st.Epoch != 1 || !st.Durable {
		t.Fatalf("stats = %+v", st)
	}
}

// A failed compaction is operational noise: the record is already durable, so
// the absorb still succeeds and stays published.
func TestAbsorbCommittedFailureStillPublished(t *testing.T) {
	fw := &fakeWAL{commitErr: errors.New("compaction failed")}
	s := newTestServer(t, Config{WAL: fw})
	lw, pv := absorbArgs(t, s, "Spark-grep", 11)
	if err := s.Absorb("t1", lw, pv); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot().Epoch(); got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}
}

// TestRecoveredServerServesIdenticalBytes is the serving half of the crash
// matrix: absorb through a real WAL, drop the server, recover from disk, and
// demand byte-identical predict responses at several worker counts — the
// replay-determinism sweep of DESIGN.md §11.
func TestRecoveredServerServesIdenticalBytes(t *testing.T) {
	base := testSnapshot(t)
	dir := t.TempDir()
	mgr, snap, err := wal.Open(base, wal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(snap, Config{WAL: mgr})
	if err != nil {
		t.Fatal(err)
	}
	for _, ab := range []AbsorbRequest{
		{Name: "t1", App: "Spark-kmeans", Seed: 7},
		{Name: "t2", App: "Spark-sort", Seed: 8, InputGB: 32},
	} {
		resp, err := s1.AbsorbApp(ab)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Durable {
			t.Fatalf("absorb %s not durable", ab.Name)
		}
	}
	if got := s1.Snapshot().Epoch(); got != 2 {
		t.Fatalf("pre-crash epoch = %d, want 2", got)
	}
	reqs := []Request{
		{App: "Spark-kmeans"},
		{App: "Spark-grep", Seed: 3, Top: 7},
		{App: "Spark-lr", InputGB: 64, Seed: 2},
	}
	want := make([][]byte, len(reqs))
	for i, r := range reqs {
		if want[i], err = s1.PredictBytes(context.Background(), r); err != nil {
			t.Fatal(err)
		}
	}
	// Kill without checkpoint: recovery must come purely from base + WAL.
	s1.Close()
	mgr.Close()

	for _, workers := range []int{1, 4, 16} {
		mgr2, rsnap, err := wal.Open(base, wal.Config{Dir: dir})
		if err != nil {
			t.Fatalf("workers=%d: recovery: %v", workers, err)
		}
		if rsnap.Epoch() != 2 || rsnap.Workloads() != baseWorkloads+2 {
			t.Fatalf("workers=%d: recovered (%d, %d), want (2, %d)",
				workers, rsnap.Epoch(), rsnap.Workloads(), baseWorkloads+2)
		}
		s2, err := New(rsnap, Config{Workers: workers, WAL: mgr2})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range reqs {
			got, err := s2.PredictBytes(context.Background(), r)
			if err != nil {
				t.Fatalf("workers=%d: predict %s: %v", workers, r.App, err)
			}
			if !bytes.Equal(got, want[i]) {
				t.Fatalf("workers=%d: response %d differs from pre-crash bytes", workers, i)
			}
		}
		// Recovered state remembers its absorbs: re-absorbing answers conflict.
		if _, err := s2.AbsorbApp(AbsorbRequest{Name: "t1", App: "Spark-kmeans", Seed: 7}); !errors.Is(err, ErrConflict) {
			t.Fatalf("workers=%d: re-absorb err = %v, want ErrConflict", workers, err)
		}
		s2.Close()
		mgr2.Close()
	}
}

// TestCheckpointRoundTripsPlan is the crash-matrix entry for the precomputed
// predict plan: a checkpoint taken from a warm server carries the plan field,
// and recovery restores it — the recovered snapshot reports PlanReady without
// ever re-paying the plan solve, and serves byte-identical warm responses.
func TestCheckpointRoundTripsPlan(t *testing.T) {
	base := testSnapshot(t)
	dir := t.TempDir()
	mgr, snap, err := wal.Open(base, wal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(snap, Config{WAL: mgr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.AbsorbApp(AbsorbRequest{Name: "t1", App: "Spark-kmeans", Seed: 7}); err != nil {
		t.Fatal(err)
	}
	reqs := []Request{
		{App: "Spark-lr", Seed: 2, Top: 5},
		{App: "Spark-grep", Seed: 3, Top: 7},
	}
	want := make([][]byte, len(reqs))
	for i, r := range reqs {
		if want[i], err = s1.PredictBytes(context.Background(), r); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint the published (warm, plan-bearing) snapshot, then crash.
	if err := mgr.Checkpoint(s1.Snapshot()); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	mgr.Close()

	mgr2, rsnap, err := wal.Open(base, wal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if !rsnap.PlanReady() {
		t.Fatal("recovered checkpoint lost the precomputed plan (would re-pay the cold solve)")
	}
	if rsnap.Epoch() != 1 || rsnap.Workloads() != baseWorkloads+1 {
		t.Fatalf("recovered (%d, %d), want (1, %d)", rsnap.Epoch(), rsnap.Workloads(), baseWorkloads+1)
	}
	s2, err := New(rsnap, Config{WAL: mgr2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	for i, r := range reqs {
		got, err := s2.PredictBytes(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("restored-plan response %d differs from pre-crash bytes", i)
		}
	}
}

// A request whose context is already dead must release its worker slot
// without computing (or building a meter for) a response nobody reads.
func TestCanceledTaskSkippedAndCounted(t *testing.T) {
	var factoryCalls atomic.Int64
	s := newTestServer(t, Config{Workers: 1, NoCache: true, MeterFor: func(seed uint64) oracle.Service {
		factoryCalls.Add(1)
		return oracle.NewMeter(sim.New(sim.DefaultConfig()), seed)
	}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.PredictBytes(ctx, Request{App: "Spark-kmeans"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Canceled == 0 {
		if time.Now().After(deadline) {
			t.Fatal("canceled counter never incremented")
		}
		time.Sleep(time.Millisecond)
	}
	if n := factoryCalls.Load(); n != 0 {
		t.Fatalf("meter factory ran %d times for a canceled request", n)
	}
	// The released slot answers the next request normally.
	if _, err := s.Predict(context.Background(), Request{App: "Spark-kmeans"}); err != nil {
		t.Fatal(err)
	}
	if n := factoryCalls.Load(); n != 1 {
		t.Fatalf("live request built %d meters, want 1", n)
	}
}
