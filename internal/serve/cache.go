package serve

import "container/list"

// cacheKey identifies one cached response: the snapshot epoch plus the
// request fingerprint (app, input override, seed, ranking depth). Keying on
// the epoch means a hot-swap naturally invalidates the whole cache — stale
// entries age out of the LRU instead of ever being served.
type cacheKey struct {
	epoch uint64
	fp    string
}

// lruCache is a fixed-capacity LRU over serialized response bodies. It is
// not internally synchronized; the server guards it with its own mutex and
// keeps the critical sections to map/list operations only (never a predict).
type lruCache struct {
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[cacheKey]*list.Element
}

type cacheEntry struct {
	key  cacheKey
	body []byte
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, order: list.New(), entries: make(map[cacheKey]*list.Element)}
}

func (c *lruCache) get(k cacheKey) ([]byte, bool) {
	el, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

func (c *lruCache) put(k cacheKey, body []byte) {
	if el, ok := c.entries[k]; ok {
		// Identical key means identical bytes (the determinism contract);
		// just refresh recency.
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&cacheEntry{key: k, body: body})
	c.entries[k] = el
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

func (c *lruCache) len() int { return c.order.Len() }
