package serve

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"vesta/internal/oracle"
	"vesta/internal/sim"
)

// TestMissCoalescingSingleflight pins the duplicate-miss fix at the execute
// level, deterministically: while one task owns the computation of a key
// (held inside the gated meter), concurrent same-key tasks must attach to
// its flight — counted as coalesced hits — and receive the owner's bytes,
// never spawning a second computation.
func TestMissCoalescingSingleflight(t *testing.T) {
	gate := newGate()
	s := newTestServer(t, Config{Workers: 4, MeterFor: gate.meterFor})
	t.Cleanup(gate.open)

	req, app, err := s.resolve(Request{App: "Spark-lr"})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	mk := func() *task {
		return &task{
			req: req, app: app, snap: snap,
			key: cacheKey{epoch: snap.Epoch(), fp: req.fingerprint()},
			ctx: context.Background(), done: make(chan taskResult, 1),
		}
	}

	const waiters = 3
	results := make(chan taskResult, waiters+1)
	go func() { results <- s.execute(mk()) }() // the future flight owner
	<-gate.entered                             // owner is now computing
	for i := 0; i < waiters; i++ {
		go func() { results <- s.execute(mk()) }()
	}
	// Every waiter must register on the owner's flight before we release it.
	waitFor(t, func() bool { return s.Stats().Coalesced == waiters })
	gate.open()

	var bodies [][]byte
	for i := 0; i < waiters+1; i++ {
		res := <-results
		if res.err != nil {
			t.Fatal(res.err)
		}
		bodies = append(bodies, res.body)
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("coalesced result %d differs from the owner's bytes", i)
		}
	}
	st := s.Stats()
	if st.CacheMisses != 1 || st.CacheHits != waiters || st.Coalesced != waiters {
		t.Fatalf("misses/hits/coalesced = %d/%d/%d, want 1/%d/%d",
			st.CacheMisses, st.CacheHits, st.Coalesced, waiters, waiters)
	}
}

// TestConcurrentSameRequestCountsOneMiss is the end-to-end form of the
// duplicate-miss fix: however N concurrent identical requests interleave
// with admission, batching, and the flight lifecycle, exactly one counts a
// miss (and computes) and the other N-1 count hits.
func TestConcurrentSameRequestCountsOneMiss(t *testing.T) {
	const n = 8
	s := newTestServer(t, Config{Workers: 4, BatchSize: 16, QueueSize: 64})
	req := Request{App: "Spark-sort", Seed: 5, Top: 4}
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, err := s.PredictBytes(context.Background(), req)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs", i)
		}
	}
	st := s.Stats()
	if st.CacheMisses != 1 || st.CacheHits != n-1 {
		t.Fatalf("misses/hits = %d/%d, want 1/%d", st.CacheMisses, st.CacheHits, n-1)
	}
	if st.Requests != n {
		t.Fatalf("requests = %d, want %d", st.Requests, n)
	}
}

// TestHitsBypassQueue pins the hit-path dispatch fix: once a response is
// cached, repeats are answered at admission and never enqueue, so the batch
// counter stays at the single miss however many hits follow.
func TestHitsBypassQueue(t *testing.T) {
	s := newTestServer(t, Config{})
	req := Request{App: "Spark-grep", Seed: 2, Top: 3}
	first, err := s.PredictBytes(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	const repeats = 5
	for i := 0; i < repeats; i++ {
		body, err := s.PredictBytes(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, body) {
			t.Fatalf("repeat %d changed bytes", i)
		}
	}
	st := s.Stats()
	if st.Batches != 1 {
		t.Fatalf("batches = %d, want 1 (hits must not enqueue)", st.Batches)
	}
	if st.CacheMisses != 1 || st.CacheHits != repeats {
		t.Fatalf("misses/hits = %d/%d, want 1/%d", st.CacheMisses, st.CacheHits, repeats)
	}
}

// TestHitRateParityAcrossWorkers is the hit-rate regression test: with the
// admission fast path and miss coalescing, the hit/miss split is a pure
// function of the request mix — misses equal the distinct keys — so the
// measured hit rate is identical at 1 and 16 workers instead of decaying
// under concurrency.
func TestHitRateParityAcrossWorkers(t *testing.T) {
	corpus := replayCorpus() // 16 requests over 8 distinct keys
	var rates []float64
	for _, workers := range []int{1, 16} {
		s := newTestServer(t, Config{Workers: workers, BatchSize: 32})
		distinct := make(map[string]bool)
		for _, r := range corpus {
			rr, _, err := s.resolve(r)
			if err != nil {
				t.Fatal(err)
			}
			distinct[rr.fingerprint()] = true
		}
		replay(t, s, corpus)
		if t.Failed() {
			t.FailNow()
		}
		st := s.Stats()
		if got, want := int(st.CacheMisses), len(distinct); got != want {
			t.Errorf("workers=%d: misses = %d, want %d (one per distinct key)", workers, got, want)
		}
		if st.CacheHits+st.CacheMisses != int64(len(corpus)) {
			t.Errorf("workers=%d: hits+misses = %d, want %d (each request counted once)",
				workers, st.CacheHits+st.CacheMisses, len(corpus))
		}
		if want := float64(st.CacheHits) / float64(st.Requests); st.HitRate != want {
			t.Errorf("workers=%d: HitRate = %v, want hits/requests = %v", workers, st.HitRate, want)
		}
		rates = append(rates, st.HitRate)
	}
	if d := rates[0] - rates[1]; d > 0.01 || d < -0.01 {
		t.Fatalf("hit rate decayed with workers: %v vs %v", rates[0], rates[1])
	}
}

// TestColdStartServesHistoricalBytes pins the ColdStart arm to the
// pre-plan serving path bit-for-bit: a request answered by a ColdStart
// server (memoization off) equals the body built directly from
// Snapshot.Predict with the historical per-request meter.
func TestColdStartServesHistoricalBytes(t *testing.T) {
	s := newTestServer(t, Config{ColdStart: true, ProfileCacheSize: -1})
	req := Request{App: "Spark-kmeans", Seed: 3, Top: 4}
	got, err := s.PredictBytes(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	resolved, app, err := s.resolve(req)
	if err != nil {
		t.Fatal(err)
	}
	snap := testSnapshot(t)
	meter := oracle.NewMeter(sim.New(sim.DefaultConfig()), resolved.Seed)
	pred, err := snap.Predict(app, meter)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.encodeResponse(snap, resolved, pred, meter.SimConfig().Nodes)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("cold-start arm diverged from the historical path:\n got: %s\nwant: %s", got, want)
	}
}

// TestProfileMemoizationPreservesBytes: recalled profiles are pure
// functions of (app, vm, seed), so a memoizing server must produce exactly
// the bytes of a non-memoizing one — OnlineRuns accounting included, since
// it is part of the body — while actually skipping simulated campaigns.
func TestProfileMemoizationPreservesBytes(t *testing.T) {
	memo := newTestServer(t, Config{})
	raw := newTestServer(t, Config{ProfileCacheSize: -1})
	// Distinct fingerprints (Top differs) over the same profiling campaign
	// (same app, seed): the second request recalls every profile.
	reqs := []Request{
		{App: "Spark-lr", Seed: 2, Top: 3},
		{App: "Spark-lr", Seed: 2, Top: 5},
		{App: "Spark-bayes", Seed: 6, Top: 2},
	}
	for i, req := range reqs {
		a, err := memo.PredictBytes(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := raw.PredictBytes(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("request %d: memoized bytes differ from non-memoized", i)
		}
	}
	st := memo.Stats()
	if st.ProfileHits == 0 {
		t.Fatal("no profile recalls despite overlapping campaigns")
	}
	if st.ProfileMisses == 0 || st.ProfileLen == 0 {
		t.Fatalf("profile cache never populated: %+v", st)
	}
	if rst := raw.Stats(); rst.ProfileHits != 0 || rst.ProfileMisses != 0 || rst.ProfileLen != 0 {
		t.Fatalf("disabled profile cache reported activity: %+v", rst)
	}
}
