package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postPredict(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHTTPPredict(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	h := s.Handler()

	rec := postPredict(t, h, `{"app":"Spark-kmeans","seed":2,"top":3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	resp, err := decodeResponse(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Target != "Spark-kmeans" || len(resp.Ranking) != 3 {
		t.Fatalf("resp = %+v", resp)
	}

	// The HTTP body is exactly the canonical bytes PredictBytes returns.
	direct, err := s.PredictBytes(context.Background(), Request{App: "Spark-kmeans", Seed: 2, Top: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Body.Bytes(), direct) {
		t.Fatal("HTTP body differs from PredictBytes")
	}
}

func TestHTTPErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	cases := []struct {
		name     string
		body     string
		wantCode int
		wantErr  string
	}{
		{"empty body", ``, http.StatusBadRequest, "bad_request"},
		{"not json", `hello`, http.StatusBadRequest, "bad_request"},
		{"wrong type", `{"app":1}`, http.StatusBadRequest, "bad_request"},
		{"unknown field", `{"app":"Spark-lr","bogus":true}`, http.StatusBadRequest, "bad_request"},
		{"trailing garbage", `{"app":"Spark-lr"} extra`, http.StatusBadRequest, "bad_request"},
		{"missing app", `{}`, http.StatusBadRequest, "bad_request"},
		{"negative top", `{"app":"Spark-lr","top":-2}`, http.StatusBadRequest, "bad_request"},
		{"unknown app", `{"app":"Storm-topology"}`, http.StatusNotFound, "unknown_app"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postPredict(t, h, tc.body)
			if rec.Code != tc.wantCode {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.wantCode, rec.Body.String())
			}
			var e errorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
				t.Fatalf("error body not JSON: %v", err)
			}
			if e.Code != tc.wantErr || e.Error == "" {
				t.Fatalf("error body = %+v, want code %q", e, tc.wantErr)
			}
		})
	}

	// Method mismatches are handled by the mux's method patterns.
	req := httptest.NewRequest(http.MethodGet, "/predict", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict status = %d, want 405", rec.Code)
	}
}

func TestHTTPShuttingDown(t *testing.T) {
	s, err := New(testSnapshot(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	s.Close()
	rec := postPredict(t, h, `{"app":"Spark-lr"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	var e errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != "shutting_down" {
		t.Fatalf("error body = %s", rec.Body.String())
	}
}

func TestHTTPHealthAndStats(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status = %d", rec.Code)
	}
	var health struct {
		Status    string `json:"status"`
		Epoch     uint64 `json:"epoch"`
		Workloads int    `json:"workloads"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Epoch != 0 || health.Workloads != baseWorkloads {
		t.Fatalf("health = %+v", health)
	}

	if _, err := s.PredictBytes(context.Background(), Request{App: "Spark-lr"}); err != nil {
		t.Fatal(err)
	}
	req = httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rec.Code)
	}
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 || st.Workloads != baseWorkloads {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHTTPOversizedBody(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	big := `{"app":"` + strings.Repeat("x", maxBodyBytes+1) + `"}`
	rec := postPredict(t, h, big)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized body status = %d, want 400", rec.Code)
	}
}

func postAbsorb(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/absorb", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHTTPAbsorb(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	rec := postAbsorb(t, h, `{"name":"t1","app":"Spark-kmeans","seed":7}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	var resp AbsorbResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Name != "t1" || resp.Epoch != 1 || resp.Workloads != baseWorkloads+1 {
		t.Fatalf("absorb response = %+v", resp)
	}
	if resp.Durable {
		t.Fatal("in-memory server reported durable")
	}

	// Responses now carry the advanced consistency token.
	pr := postPredict(t, h, `{"app":"Spark-lr"}`)
	if pr.Code != http.StatusOK {
		t.Fatalf("predict status = %d", pr.Code)
	}
	presp, err := decodeResponse(pr.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if presp.Epoch != 1 || presp.Workloads != baseWorkloads+1 {
		t.Fatalf("post-absorb token = (%d, %d)", presp.Epoch, presp.Workloads)
	}
}

func TestHTTPAbsorbErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	if rec := postAbsorb(t, h, `{"name":"dup","app":"Spark-sort"}`); rec.Code != http.StatusOK {
		t.Fatalf("setup absorb failed: %s", rec.Body.String())
	}
	cases := []struct {
		name     string
		body     string
		wantCode int
		wantErr  string
	}{
		{"duplicate name", `{"name":"dup","app":"Spark-sort"}`, http.StatusConflict, "conflict"},
		{"missing name", `{"app":"Spark-sort"}`, http.StatusBadRequest, "bad_request"},
		{"missing app", `{"name":"t9"}`, http.StatusBadRequest, "bad_request"},
		{"unknown app", `{"name":"t9","app":"no-such-app"}`, http.StatusNotFound, "unknown_app"},
		{"unknown field", `{"name":"t9","app":"Spark-sort","nope":1}`, http.StatusBadRequest, "bad_request"},
		{"not json", `hello`, http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postAbsorb(t, h, tc.body)
			if rec.Code != tc.wantCode {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.wantCode, rec.Body.String())
			}
			var e errorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != tc.wantErr {
				t.Fatalf("error body = %s, want code %q", rec.Body.String(), tc.wantErr)
			}
		})
	}
	// The failed absorbs moved nothing: still exactly one absorb applied.
	if got := s.Snapshot().Epoch(); got != 1 {
		t.Fatalf("epoch after rejected absorbs = %d, want 1", got)
	}
}

func TestHTTPAbsorbShuttingDown(t *testing.T) {
	s, err := New(testSnapshot(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	s.Close()
	rec := postAbsorb(t, h, `{"name":"t1","app":"Spark-kmeans"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
}
