package serve

import (
	"context"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"
)

// gateSpeedupFloor is the minimum in-process speedup the default uncached
// arm (precomputed-plan warm start + profile memoization) must hold over the
// legacy arm (cold solve, no memoization — the per-request algorithm of
// every release before DESIGN.md §12). The margin measured when the fast
// path shipped was ~2.2x on the reference 1-CPU container; the floor sits
// ~20% under it so only a real regression of the no-cache arm (>10%
// slowdown, beyond bench noise) trips the gate.
//
// Note the floor is deliberately NOT the tentpole's ≥5x: the §12 mat-layer
// restructuring is bit-identical and therefore speeds the in-process legacy
// arm too (~2.9x vs the recorded 27.7 ms seed baseline). The product of the
// two margins is the end-to-end ≥5x recorded in results/serve.md; this gate
// guards the half that stays measurable in one binary.
const gateSpeedupFloor = 1.8

// gateReps measurements are taken per arm and the median compared, so one
// scheduler hiccup cannot fail (or mask a failure of) the gate.
const gateReps = 3

// TestPredictHotPathGate is the `make bench-predict` regression gate: a
// benchstat-style before/after comparison of the uncached predict arm,
// failing when the fast path loses its documented margin over the legacy
// arm. Env-gated — timing assertions don't belong in tier-1 (which runs
// under the race detector on loaded machines).
func TestPredictHotPathGate(t *testing.T) {
	if os.Getenv("VESTA_BENCH_PREDICT") == "" {
		t.Skip("set VESTA_BENCH_PREDICT=1 (make bench-predict) to run the hot-path timing gate")
	}
	legacy := gateMedian(t, Config{NoCache: true, ColdStart: true, ProfileCacheSize: -1})
	fast := gateMedian(t, Config{NoCache: true})

	speedup := float64(legacy) / float64(fast)
	t.Logf("name             old time/op   new time/op   delta")
	t.Logf("PredictNoCache   %-11v   %-11v   %+.1f%%  (speedup %.2fx, floor %.2fx)",
		legacy.Round(time.Microsecond), fast.Round(time.Microsecond),
		(float64(fast)-float64(legacy))/float64(legacy)*100, speedup, gateSpeedupFloor)
	if speedup < gateSpeedupFloor {
		t.Fatalf("no-cache predict arm regressed: default %v vs legacy %v is only %.2fx (floor %.2fx)",
			fast, legacy, speedup, gateSpeedupFloor)
	}
}

// gateMedian measures the per-request wall time of one uncached serving arm
// gateReps times and returns the median.
func gateMedian(t *testing.T, cfg Config) time.Duration {
	t.Helper()
	times := make([]time.Duration, gateReps)
	for i := range times {
		times[i] = gateMeasure(t, cfg)
	}
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	return times[gateReps/2]
}

// gateMeasure times one arm with testing.Benchmark: a fresh server, the
// bench request mix (4 apps x 8 seeds), sequential clients — the same
// per-request compute results/serve.md tabulates, without batching luck.
func gateMeasure(t *testing.T, cfg Config) time.Duration {
	t.Helper()
	apps := []string{"Spark-kmeans", "Spark-lr", "Spark-sort", "Spark-grep"}
	res := testing.Benchmark(func(b *testing.B) {
		s, err := New(testSnapshot(t), cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := Request{App: apps[i%len(apps)], Seed: uint64(i%8 + 1), Top: 3}
			if _, err := s.PredictBytes(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
	})
	if res.N == 0 {
		t.Fatal("benchmark ran zero iterations")
	}
	per := time.Duration(res.T.Nanoseconds() / int64(res.N))
	t.Logf("  sample: %v/op over %d ops (%s)", per.Round(time.Microsecond), res.N, gateArmName(cfg))
	return per
}

func gateArmName(cfg Config) string {
	if cfg.ColdStart {
		return "legacy: cold solve, no memoization"
	}
	return fmt.Sprintf("default: plan warm start + memoization, approx=%v", cfg.Approx)
}
