package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestNilTracerIsSafe exercises every method on the disabled tracer; any
// panic fails the test.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Start("x")
	sp.End()
	tr.Start("y").EndSim(1.5)
	tr.Event("k", "m")
	tr.EventSim("k", "m", 2)
	tr.Count("c", 3)
	tr.Gauge("g", 0, 1)
	tr.SetVerbose(&bytes.Buffer{})
	if tr.Counter("c") != 0 || tr.Counters() != nil || tr.Records() != nil {
		t.Fatal("nil tracer leaked state")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicAcrossInsertionOrder records the same multiset of
// records in two different arrival orders (as a parallel schedule would) and
// demands byte-identical JSONL.
func TestDeterministicAcrossInsertionOrder(t *testing.T) {
	emit := func(order []int) string {
		tr := New()
		ops := []func(){
			func() { tr.Gauge("cmf/a/loss", 1, 0.5) },
			func() { tr.Gauge("cmf/a/loss", 0, 0.9) },
			func() { tr.Event("profile/app=x/vm=y", "retry") },
			func() { tr.Start("offline/pca").End() },
			func() { tr.Start("profile/app=x/vm=y").EndSim(12.25) },
			func() { tr.Count("meter.runs", 2) },
			func() { tr.Count("meter.runs", 1) },
			func() { tr.Gauge("cmf/a/loss", 10, 0.1) },
		}
		for _, i := range order {
			ops[i]()
		}
		var b bytes.Buffer
		if err := tr.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a := emit([]int{0, 1, 2, 3, 4, 5, 6, 7})
	b := emit([]int{7, 6, 5, 4, 3, 2, 1, 0})
	if a != b {
		t.Fatalf("trace depends on arrival order:\n%s\nvs\n%s", a, b)
	}
}

// TestGaugeStreamNumericEpochOrder: epoch 10 must sort after epoch 2, not
// lexicographically before it.
func TestGaugeStreamNumericEpochOrder(t *testing.T) {
	tr := New()
	tr.Gauge("s", 10, 1)
	tr.Gauge("s", 2, 2)
	recs := tr.Records()
	if len(recs) != 2 || recs[0].Epoch != 2 || recs[1].Epoch != 10 {
		t.Fatalf("gauge order wrong: %+v", recs)
	}
}

// TestCountersAggregateAndSort: counters merge by name and serialize sorted
// after the other records.
func TestCountersAggregateAndSort(t *testing.T) {
	tr := New()
	tr.Count("z", 1)
	tr.Count("a", 2)
	tr.Count("z", 4)
	tr.Event("m", "hi")
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Kind != KindEvent {
		t.Fatalf("events must precede counters: %+v", recs)
	}
	if recs[1].Key != "a" || recs[1].N != 2 || recs[2].Key != "z" || recs[2].N != 5 {
		t.Fatalf("counter records wrong: %+v", recs[1:])
	}
	if tr.Counter("z") != 5 {
		t.Fatalf("Counter(z) = %d", tr.Counter("z"))
	}
}

// TestJSONLLinesAreValidJSON parses every emitted line back.
func TestJSONLLinesAreValidJSON(t *testing.T) {
	tr := New()
	tr.Start(`sp"an\key`).EndSim(1.0 / 3.0)
	tr.Event("e", `msg with "quotes" and	tab`)
	tr.Gauge("g", 3, math.NaN())
	tr.Gauge("g", 4, math.Inf(1))
	tr.Count("c", 7)
	var b bytes.Buffer
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), b.String())
	}
	for _, ln := range lines {
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("invalid JSON line %q: %v", ln, err)
		}
		if m["kind"] == "" || m["key"] == "" {
			t.Fatalf("line missing kind/key: %q", ln)
		}
	}
}

// TestConcurrentRecordingIsDeterministic hammers one tracer from many
// goroutines twice and compares the traces.
func TestConcurrentRecordingIsDeterministic(t *testing.T) {
	emit := func() string {
		tr := New()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					key := "worker/" + string(rune('a'+g))
					tr.Gauge(key, i, float64(g*1000+i))
					tr.Count("total", 1)
				}
			}(g)
		}
		wg.Wait()
		var b bytes.Buffer
		if err := tr.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := emit(), emit(); a != b {
		t.Fatal("concurrent trace not deterministic")
	}
}

// TestVerboseStream: -v lines are mirrored as they happen, and gauges stay
// silent (they would flood the stream at one line per epoch).
func TestVerboseStream(t *testing.T) {
	tr := New()
	var v bytes.Buffer
	tr.SetVerbose(&v)
	tr.Start("phase/x").End()
	tr.Event("ev/y", "happened")
	tr.Gauge("g", 0, 1)
	out := v.String()
	if !strings.Contains(out, "phase/x") || !strings.Contains(out, "ev/y") {
		t.Fatalf("verbose stream missing lines:\n%s", out)
	}
	if strings.Contains(out, `"g"`) || strings.Count(out, "\n") != 2 {
		t.Fatalf("verbose stream has unexpected lines:\n%s", out)
	}
}

// BenchmarkDisabledSpan measures the disabled-tracer cost on a hot path.
func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	for i := 0; i < b.N; i++ {
		if tr.Enabled() {
			tr.Gauge("k", i, 0)
		}
	}
}
