// Package obs is the repository's zero-dependency observability layer:
// spans (phase timings), monotonic counters, events, and per-epoch gauge
// streams, collected by a Tracer and serialized as deterministic JSONL.
//
// The layer is built around two contracts:
//
//  1. Nil safety. Every method is safe on a nil *Tracer and returns
//     immediately, so instrumented hot paths (per-epoch SGD gauges, per-run
//     fault events) cost one pointer comparison when tracing is off. Callers
//     guard any extra work — string concatenation, field formatting — behind
//     Enabled().
//
//  2. Determinism. The serialized trace is a pure function of the
//     instrumented computation, never of its schedule: records are keyed by
//     a stable span key, sorted by (key, epoch, kind, ...) at write time,
//     counters are order-independent integer sums, and durations in the
//     trace come exclusively from the simulated clock. Wall-clock timings
//     (host-side work: PCA, K-Means, CMF solves) exist only on the verbose
//     human stream, which is explicitly outside the byte-identical contract.
//     Under those rules the same seed produces the same trace bytes at every
//     worker count, composing with the parallel engine's determinism
//     contract (DESIGN.md §7) instead of breaking it.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind classifies a trace record.
type Kind string

// The four record kinds of the span taxonomy (DESIGN.md §9).
const (
	KindSpan    Kind = "span"    // a named phase; sim-clock duration when available
	KindEvent   Kind = "event"   // a point occurrence (fault, retry, fallback)
	KindCounter Kind = "counter" // a monotonic integer total
	KindGauge   Kind = "gauge"   // one sample of a per-epoch stream
)

// Record is one deterministic trace entry. Only fields that are pure
// functions of the computation are serialized; wall-clock durations are
// deliberately absent (they live on the verbose stream).
type Record struct {
	Kind Kind
	// Key is the stable identity and primary sort key, e.g.
	// "predict/Spark-wordcount/cmf/loss". Keys embed whatever context
	// (target, VM, attempt, restart) makes the record's content a pure
	// function of the key.
	Key string
	// Epoch indexes gauge samples within a stream (SGD epoch, restart
	// number); the secondary, numeric sort key.
	Epoch int
	// Value is the gauge sample.
	Value float64
	// N is the counter total or an integer event payload.
	N int64
	// SimSec is a simulated-clock duration (spans) or cost (events); NaN-free
	// and negative when not applicable (not serialized then).
	SimSec float64
	// Msg carries an event's human-readable payload; must be deterministic.
	Msg string
}

// Tracer collects records from any number of goroutines. The zero value is
// not used directly; New returns a ready Tracer and a nil *Tracer is the
// disabled tracer.
type Tracer struct {
	mu       sync.Mutex
	records  []Record
	counters map[string]int64
	maxes    map[string]int64
	verbose  io.Writer
}

// New returns an enabled Tracer.
func New() *Tracer {
	return &Tracer{counters: map[string]int64{}, maxes: map[string]int64{}}
}

// Enabled reports whether the tracer records anything. It is the guard hot
// paths use before assembling keys or payloads.
func (t *Tracer) Enabled() bool { return t != nil }

// SetVerbose attaches a human-readable sink that receives one line per span
// end and event as they happen (the -v flag). Verbose lines may carry
// wall-clock timings and arrive in schedule order; they are outside the
// determinism contract. Pass nil to detach.
func (t *Tracer) SetVerbose(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.verbose = w
	t.mu.Unlock()
}

// Span is an in-flight phase started by Start. The zero Span (from a nil
// tracer) is inert.
type Span struct {
	t     *Tracer
	key   string
	start time.Time
}

// Start opens a span. The wall clock is read only when tracing is enabled
// and feeds the verbose stream exclusively — never the trace records.
func (t *Tracer) Start(key string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, key: key, start: time.Now()}
}

// End closes a wall-clock-only span: the trace records the span's existence
// (key, kind) with no duration; the verbose stream gets the wall timing.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.add(Record{Kind: KindSpan, Key: s.key, SimSec: -1},
		fmt.Sprintf("span  %-40s wall=%s", s.key, time.Since(s.start).Round(time.Microsecond)))
}

// EndSim closes a span whose duration is known on the simulated clock; the
// simulated seconds are serialized, the wall timing goes to verbose only.
func (s Span) EndSim(simSec float64) {
	if s.t == nil {
		return
	}
	s.t.add(Record{Kind: KindSpan, Key: s.key, SimSec: simSec},
		fmt.Sprintf("span  %-40s sim=%.3fs wall=%s", s.key, simSec, time.Since(s.start).Round(time.Microsecond)))
}

// Event records a point occurrence with a deterministic message.
func (t *Tracer) Event(key, msg string) {
	if t == nil {
		return
	}
	t.add(Record{Kind: KindEvent, Key: key, SimSec: -1, Msg: msg},
		fmt.Sprintf("event %-40s %s", key, msg))
}

// EventSim is Event carrying a simulated-clock cost (e.g. wasted cluster
// seconds of a killed run).
func (t *Tracer) EventSim(key, msg string, simSec float64) {
	if t == nil {
		return
	}
	t.add(Record{Kind: KindEvent, Key: key, SimSec: simSec, Msg: msg},
		fmt.Sprintf("event %-40s %s sim=%.3fs", key, msg, simSec))
}

// Count adds delta to the named monotonic counter. Integer addition is
// order-independent, so concurrent increments cannot perturb the trace.
func (t *Tracer) Count(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counters[name] += delta
	t.mu.Unlock()
}

// Max records the maximum of all values observed under name. Like integer
// addition, max is commutative and associative, so concurrent observers
// cannot perturb the serialized total — this is the aggregation the serving
// layer uses for schedule-adjacent quantities whose *peak* is deterministic
// even when the observation order is not (snapshot epoch, largest batch).
// Max totals serialize alongside the counters; a name must be used with
// either Count or Max, never both.
func (t *Tracer) Max(name string, v int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if cur, ok := t.maxes[name]; !ok || v > cur {
		t.maxes[name] = v
	}
	t.mu.Unlock()
}

// Gauge records one sample of a per-epoch stream (SGD loss, learning rate,
// restart inertia). Samples of one stream share the key and are ordered by
// epoch in the serialized trace.
func (t *Tracer) Gauge(key string, epoch int, value float64) {
	if t == nil {
		return
	}
	t.add(Record{Kind: KindGauge, Key: key, Epoch: epoch, Value: value, SimSec: -1}, "")
}

// add appends a record and mirrors a non-empty line to the verbose sink.
func (t *Tracer) add(r Record, verboseLine string) {
	t.mu.Lock()
	t.records = append(t.records, r)
	w := t.verbose
	t.mu.Unlock()
	if w != nil && verboseLine != "" {
		fmt.Fprintln(w, "[obs]", verboseLine)
	}
}

// VerboseLine writes a line to the verbose sink only — no trace record. It
// is the outlet for schedule-dependent diagnostics (worker occupancy, wall
// timings) that must not enter the deterministic trace.
func (t *Tracer) VerboseLine(line string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	w := t.verbose
	t.mu.Unlock()
	if w != nil {
		fmt.Fprintln(w, "[obs]", line)
	}
}

// Counter returns the current total of one counter (or Max aggregate).
func (t *Tracer) Counter(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n, ok := t.counters[name]; ok {
		return n
	}
	return t.maxes[name]
}

// Counters returns a copy of all counter totals.
func (t *Tracer) Counters() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counters))
	for k, v := range t.counters {
		out[k] = v
	}
	return out
}

// Records returns the deterministic, sorted view of everything collected so
// far: spans, events and gauges in (key, epoch, kind, content) order, then
// counters materialized as KindCounter records sorted by name.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Record(nil), t.records...)
	totals := make(map[string]int64, len(t.counters)+len(t.maxes))
	names := make([]string, 0, len(t.counters)+len(t.maxes))
	for name, n := range t.counters {
		totals[name] = n
		names = append(names, name)
	}
	for name, n := range t.maxes {
		if _, dup := totals[name]; !dup {
			names = append(names, name)
		}
		totals[name] = n // Count/Max name reuse is a caller bug; max wins
	}
	t.mu.Unlock()

	sort.Slice(out, func(a, b int) bool { return less(out[a], out[b]) })
	sort.Strings(names)
	for _, name := range names {
		out = append(out, Record{Kind: KindCounter, Key: name, N: totals[name], SimSec: -1})
	}
	return out
}

// less orders records by every serialized field, so any two distinct records
// have a schedule-independent order and equal records are interchangeable.
func less(a, b Record) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	if a.Epoch != b.Epoch {
		return a.Epoch < b.Epoch
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Msg != b.Msg {
		return a.Msg < b.Msg
	}
	if a.SimSec != b.SimSec {
		return a.SimSec < b.SimSec
	}
	if a.Value != b.Value {
		return a.Value < b.Value
	}
	return a.N < b.N
}

// WriteJSONL serializes the sorted records, one JSON object per line. The
// bytes are a pure function of the recorded multiset: same computation, same
// trace, at any worker count.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, r := range t.Records() {
		if _, err := bw.WriteString(r.jsonLine()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// jsonLine renders one record. Hand-rolled (field order fixed, shortest
// round-trip floats, zero fields omitted) so the bytes cannot drift with
// encoder versions.
func (r Record) jsonLine() string {
	var sb strings.Builder
	sb.WriteString(`{"kind":"`)
	sb.WriteString(string(r.Kind))
	sb.WriteString(`","key":`)
	sb.WriteString(strconv.Quote(r.Key))
	if r.Kind == KindGauge {
		sb.WriteString(`,"epoch":`)
		sb.WriteString(strconv.Itoa(r.Epoch))
		sb.WriteString(`,"value":`)
		sb.WriteString(formatFloat(r.Value))
	}
	if r.Kind == KindCounter {
		sb.WriteString(`,"n":`)
		sb.WriteString(strconv.FormatInt(r.N, 10))
	}
	if r.SimSec >= 0 {
		sb.WriteString(`,"sim_sec":`)
		sb.WriteString(formatFloat(r.SimSec))
	}
	if r.Msg != "" {
		sb.WriteString(`,"msg":`)
		sb.WriteString(strconv.Quote(r.Msg))
	}
	sb.WriteString("}\n")
	return sb.String()
}

// formatFloat renders a float64 with the shortest representation that
// round-trips. Non-finite values (a diverged SGD loss) are quoted so every
// line stays valid JSON.
func formatFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return strconv.Quote(strconv.FormatFloat(v, 'g', -1, 64))
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// FormatValue exposes the trace's float rendering for reports that must
// match the JSONL bytes.
func FormatValue(v float64) string { return formatFloat(v) }
