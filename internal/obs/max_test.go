package obs

import (
	"sync"
	"testing"
)

func TestMaxAggregates(t *testing.T) {
	tr := New()
	tr.Max("serve.max_batch", 3)
	tr.Max("serve.max_batch", 9)
	tr.Max("serve.max_batch", 5)
	tr.Max("serve.epoch", 0)
	if got := tr.Counter("serve.max_batch"); got != 9 {
		t.Fatalf("max = %d, want 9", got)
	}
	if got := tr.Counter("serve.epoch"); got != 0 {
		t.Fatalf("epoch max = %d, want 0", got)
	}

	// Max totals serialize as counter records, sorted with the counters.
	tr.Count("serve.requests", 2)
	var keys []string
	for _, r := range tr.Records() {
		if r.Kind != KindCounter {
			t.Fatalf("unexpected kind %s", r.Kind)
		}
		keys = append(keys, r.Key)
	}
	want := []string{"serve.epoch", "serve.max_batch", "serve.requests"}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}

	// Nil tracer: no-op, no panic — same contract as Count.
	var nilTr *Tracer
	nilTr.Max("x", 1)
	if nilTr.Counter("x") != 0 {
		t.Fatal("nil tracer returned a value")
	}
}

// TestMaxOrderIndependent proves the serving layer's claim: the serialized
// max is identical whatever order (or interleaving) the observations arrive
// in, because max is commutative and associative.
func TestMaxOrderIndependent(t *testing.T) {
	vals := []int64{4, 17, 2, 17, 9, 1}
	serial := New()
	for _, v := range vals {
		serial.Max("peak", v)
	}
	concurrent := New()
	var wg sync.WaitGroup
	for _, v := range vals {
		wg.Add(1)
		go func(v int64) {
			defer wg.Done()
			concurrent.Max("peak", v)
		}(v)
	}
	wg.Wait()
	if a, b := serial.Counter("peak"), concurrent.Counter("peak"); a != b || a != 17 {
		t.Fatalf("serial %d vs concurrent %d, want 17", a, b)
	}
}
