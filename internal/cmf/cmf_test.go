package cmf

import (
	"math"
	"testing"
	"testing/quick"

	"vesta/internal/mat"
	"vesta/internal/rng"
)

// synthProblem builds a ground-truth low-rank problem: factors are drawn,
// matrices constructed from them, and a fraction of UStar hidden.
func synthProblem(src *rng.Source, i, n, k, j, g int, observedFrac float64) (Problem, *mat.Matrix) {
	factor := func(rows int) *mat.Matrix {
		m := mat.New(rows, g)
		for idx := range m.Data {
			m.Data[idx] = src.Range(-1, 1)
		}
		return m
	}
	x, xs, tt, l := factor(i), factor(n), factor(k), factor(j)
	u := x.Mul(l.T())
	us := xs.Mul(l.T())
	v := tt.Mul(l.T())
	mask := mat.New(n, j)
	for idx := range mask.Data {
		if src.Float64() < observedFrac {
			mask.Data[idx] = 1
		}
	}
	// Guarantee at least one observation per target row.
	for r := 0; r < n; r++ {
		any := false
		for c := 0; c < j; c++ {
			if mask.At(r, c) == 1 {
				any = true
			}
		}
		if !any {
			mask.Set(r, src.Intn(j), 1)
		}
	}
	observed := mat.New(n, j)
	for idx := range observed.Data {
		if mask.Data[idx] == 1 {
			observed.Data[idx] = us.Data[idx]
		}
	}
	return Problem{U: u, V: v, UStar: observed, Mask: mask}, us
}

func TestValidate(t *testing.T) {
	src := rng.New(1)
	p, _ := synthProblem(src, 5, 3, 6, 4, 2, 0.5)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.V = mat.New(6, 5) // wrong label dim
	if err := bad.Validate(); err == nil {
		t.Fatal("label-dim mismatch passed validation")
	}
	bad = p
	bad.Mask = mat.New(1, 1)
	if err := bad.Validate(); err == nil {
		t.Fatal("mask shape mismatch passed validation")
	}
	bad = p
	bad.U = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil U passed validation")
	}
}

func TestSolveRecoversHiddenEntries(t *testing.T) {
	src := rng.New(2)
	p, truth := synthProblem(src, 12, 6, 10, 8, 3, 0.6)
	res, err := Solve(p, Config{LatentDim: 3, MaxEpochs: 2000, Reg: 0.002, LearnRate: 0.03, Tol: 1e-3}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d epochs (final loss %v)", res.Epochs, res.Loss[len(res.Loss)-1])
	}
	// Error on the *hidden* cells must be small relative to signal scale.
	hidden := mat.New(p.Mask.Rows, p.Mask.Cols)
	for idx, v := range p.Mask.Data {
		if v == 0 {
			hidden.Data[idx] = 1
		}
	}
	rmse := res.RMSEObserved(truth, hidden)
	scale := truth.Frobenius() / math.Sqrt(float64(len(truth.Data)))
	if rmse > 0.35*scale {
		t.Fatalf("hidden-cell RMSE %v too high (signal scale %v)", rmse, scale)
	}
}

func TestSolveLossDecreases(t *testing.T) {
	src := rng.New(4)
	p, _ := synthProblem(src, 10, 5, 8, 6, 3, 0.6)
	res, err := Solve(p, Config{LatentDim: 3, MaxEpochs: 100}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Loss) < 2 {
		t.Fatal("no loss history")
	}
	first, last := res.Loss[0], res.Loss[len(res.Loss)-1]
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestSolveDeterministic(t *testing.T) {
	src := rng.New(6)
	p, _ := synthProblem(src, 8, 4, 6, 5, 2, 0.5)
	r1, err := Solve(p, Config{MaxEpochs: 50}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Solve(p, Config{MaxEpochs: 50}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Completed.Equal(r2.Completed, 0) {
		t.Fatal("same seed produced different completions")
	}
}

func TestNonConvergenceReported(t *testing.T) {
	// A tiny epoch budget with a strict tolerance cannot converge.
	src := rng.New(8)
	p, _ := synthProblem(src, 10, 5, 8, 6, 3, 0.5)
	res, err := Solve(p, Config{MaxEpochs: 3, Tol: 1e-12, Patience: 50}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("3-epoch run reported convergence against 1e-12 tolerance")
	}
	if res.Epochs != 3 {
		t.Fatalf("Epochs = %d, want 3", res.Epochs)
	}
}

func TestLambdaOutOfRange(t *testing.T) {
	src := rng.New(10)
	p, _ := synthProblem(src, 4, 2, 3, 3, 2, 1)
	if _, err := Solve(p, Config{Lambda: 1.5}, rng.New(1)); err == nil {
		t.Fatal("lambda > 1 accepted")
	}
	if _, err := Solve(p, Config{Lambda: -0.5}, rng.New(1)); err == nil {
		t.Fatal("lambda < 0 accepted")
	}
}

func TestNilMaskMeansFullyObserved(t *testing.T) {
	src := rng.New(11)
	p, truth := synthProblem(src, 6, 3, 5, 4, 2, 1)
	p.Mask = nil
	res, err := Solve(p, Config{LatentDim: 2, MaxEpochs: 400}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	rmse := res.RMSEObserved(truth, nil)
	scale := truth.Frobenius() / math.Sqrt(float64(len(truth.Data)))
	if rmse > 0.2*scale {
		t.Fatalf("fully observed reconstruction RMSE %v too high", rmse)
	}
}

func TestSharedLabelFactorsTransfer(t *testing.T) {
	// The transfer property: with only 2 of 8 label columns observed for a
	// target row, completion must still beat a column-mean baseline, because
	// the shared L carries source geometry.
	src := rng.New(13)
	p, truth := synthProblem(src, 20, 8, 12, 8, 3, 0.25)
	res, err := Solve(p, Config{LatentDim: 3, MaxEpochs: 800}, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	hidden := mat.New(p.Mask.Rows, p.Mask.Cols)
	for idx, v := range p.Mask.Data {
		if v == 0 {
			hidden.Data[idx] = 1
		}
	}
	cmfRMSE := res.RMSEObserved(truth, hidden)

	// Baseline: predict each hidden cell with the observed mean of its row.
	base := mat.New(truth.Rows, truth.Cols)
	for r := 0; r < truth.Rows; r++ {
		sum, n := 0.0, 0
		for c := 0; c < truth.Cols; c++ {
			if p.Mask.At(r, c) == 1 {
				sum += p.UStar.At(r, c)
				n++
			}
		}
		mean := sum / float64(n)
		for c := 0; c < truth.Cols; c++ {
			base.Set(r, c, mean)
		}
	}
	baseRes := &Result{Completed: base}
	baseRMSE := baseRes.RMSEObserved(truth, hidden)
	if cmfRMSE >= baseRMSE {
		t.Fatalf("CMF RMSE %v not better than row-mean baseline %v; transfer broken", cmfRMSE, baseRMSE)
	}
}

func TestRMSEPanicsOnShapeMismatch(t *testing.T) {
	res := &Result{Completed: mat.New(2, 2)}
	defer func() {
		if recover() == nil {
			t.Fatal("shape-mismatched RMSE did not panic")
		}
	}()
	res.RMSEObserved(mat.New(3, 3), nil)
}

func BenchmarkSolve(b *testing.B) {
	src := rng.New(1)
	p, _ := synthProblem(src, 18, 12, 120, 9, 4, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, Config{MaxEpochs: 100}, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPropCompletionShape(t *testing.T) {
	// For any solvable problem, Completed has UStar's shape and finite
	// entries, and convergence is reported consistently with the history.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		i, n, k, j, g := 3+src.Intn(8), 1+src.Intn(5), 3+src.Intn(10), 3+src.Intn(6), 1+src.Intn(3)
		p, _ := synthProblem(src, i, n, k, j, g, 0.4+0.4*src.Float64())
		res, err := Solve(p, Config{LatentDim: g, MaxEpochs: 40}, rng.New(seed+1))
		if err != nil {
			return false
		}
		if res.Completed.Rows != n || res.Completed.Cols != j {
			return false
		}
		for _, v := range res.Completed.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return len(res.Loss) == res.Epochs && res.Epochs >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropLossNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		p, _ := synthProblem(src, 4, 3, 5, 4, 2, 0.7)
		res, err := Solve(p, Config{MaxEpochs: 25}, rng.New(seed))
		if err != nil {
			return false
		}
		for _, l := range res.Loss {
			if l < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
