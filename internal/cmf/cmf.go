// Package cmf implements Collective Matrix Factorization (Singh & Gordon,
// KDD'08) solved by alternating Stochastic Gradient Descent, the transfer
// mechanism of Vesta's online phase (Section 3.3, Algorithm 1 lines 5-12).
//
// Three relationship matrices share one label factor matrix L:
//
//	U  ~ X  L^T   source workload-label relationships  (dense, observed)
//	V  ~ T  L^T   label-VM relationships               (dense, observed)
//	U* ~ X* L^T   target workload-label relationships  (sparse: a new
//	              workload has only a sandbox run plus 3 random VM runs)
//
// Because L is shared, the dense source knowledge constrains the label
// geometry, and the few observed U* entries suffice to place the target
// workloads in that geometry — after which Completed = X* L^T fills the
// missing entries (Algorithm 1 line 12: "a full representation of U* by
// filling data from U"). The paper's tradeoff parameter lambda weights the
// target reconstruction against the source knowledge; the paper uses 0.75.
//
// Non-convergence is a first-class outcome: the paper reports that Spark-CF
// "does not converge in the SGD algorithm", handled by a convergence
// limitation in the online phase. Solve reports Converged=false when the
// epoch budget is exhausted before the loss stabilizes.
package cmf

import (
	"fmt"
	"math"
	"sync"

	"vesta/internal/mat"
	"vesta/internal/obs"
	"vesta/internal/rng"
)

// Problem bundles the observed matrices. All must share the label dimension
// j (columns). Mask marks observed entries of UStar (1 = observed); a nil
// Mask means UStar is fully observed.
type Problem struct {
	U     *mat.Matrix // i x j source workload-label
	V     *mat.Matrix // k x j label-VM
	UStar *mat.Matrix // n x j target workload-label (sparse)
	Mask  *mat.Matrix // n x j observation mask for UStar
}

// Config tunes the factorization.
type Config struct {
	// LatentDim is g, the shared latent feature dimension. Default 6.
	LatentDim int
	// Lambda in [0,1] trades target reconstruction (lambda) against source
	// knowledge (1-lambda); Equation 6. Default 0.75 (the paper's choice).
	// Zero is a legal value (a pure-source ablation) but is indistinguishable
	// from the unset zero value, so it must be requested explicitly via
	// LambdaSet (or the WithLambda helper).
	Lambda float64
	// LambdaSet marks Lambda as explicitly configured, making Lambda == 0
	// mean "weight the target reconstruction by zero" instead of "use the
	// default 0.75".
	LambdaSet bool
	// Reg is the L2 regularization weight R(U, V, U*). Default 0.02. Zero
	// (no regularization) is legal with RegSet.
	Reg float64
	// RegSet marks Reg as explicitly configured (Reg == 0 disables
	// regularization instead of taking the default).
	RegSet bool
	// LearnRate is the SGD step size. Default 0.02.
	LearnRate float64
	// MaxEpochs bounds training; reaching it without stabilizing marks the
	// result non-converged. Default 400.
	MaxEpochs int
	// Tol is the relative improvement threshold: an epoch that fails to
	// improve the best loss by this fraction counts as stagnant. Default
	// 1e-4.
	Tol float64
	// LRDecay shrinks the learning rate as 1/(1 + LRDecay*epoch) so the
	// stochastic loss settles. Default 0.01. Zero (constant learning rate)
	// is legal with LRDecaySet.
	LRDecay float64
	// LRDecaySet marks LRDecay as explicitly configured (LRDecay == 0 keeps
	// the learning rate constant instead of taking the default).
	LRDecaySet bool
	// Patience is how many consecutive stagnant epochs declare convergence.
	// Default 10.
	Patience int
	// Tracer, when enabled, receives the per-epoch loss and learning-rate
	// gauge streams plus a convergence event, all keyed under TraceKey
	// (e.g. "predict/Spark-wordcount/cmf"). A nil Tracer costs one pointer
	// check per Solve.
	Tracer *obs.Tracer
	// TraceKey namespaces this solve's records; defaults to "cmf".
	TraceKey string
	// Warm, when non-nil, seeds the solve from previously converged source
	// factors: X, T and L start at Warm's values (cloned — the seed is never
	// mutated) and only the target rows X* start cold, initialized at the
	// closed-form ridge solution of their convex subproblem given Warm.L
	// (random fallback when that system is singular). The alternating sweeps
	// then run exactly as in a cold solve — same updates, same convergence
	// test — so a warm solve optimizes the same Equation 6 objective and
	// typically stabilizes in ~Patience epochs instead of hundreds. The
	// result is a pure function of (problem, config, rng state) either way;
	// warm-starting changes the trajectory, not the determinism contract.
	Warm *Factors
	// FreezeSource is the explicit opt-in approximate mode: with Warm set,
	// the source factors X, T and L stay frozen and only the X* rows are
	// fitted (epochs sweep the observed U* cells alone, and the tracked loss
	// reduces to the target term lambda*SSE(U*) + Reg*|X*|^2). Orders of
	// magnitude cheaper than a full solve, but the label geometry no longer
	// adapts to the target at all — callers own the accuracy tradeoff.
	// Rejected without Warm.
	FreezeSource bool
}

// Factors is a warm-start seed for Solve: the converged source-side factor
// matrices of a previous solve over the same U and V. Solve treats the seed
// as immutable.
type Factors struct {
	X, T, L *mat.Matrix
	// Epochs is how many epochs the seeding solve ran. A warm solve resumes
	// the learning-rate decay schedule at this offset — restarting the decay
	// from zero would take SGD steps ~(1+LRDecay*Epochs)x larger than the
	// ones the seed converged under, re-inflating the noise ball and undoing
	// the convergence the seed carries.
	Epochs int
}

// Clone deep-copies the seed.
func (f *Factors) Clone() *Factors {
	return &Factors{X: f.X.Clone(), T: f.T.Clone(), L: f.L.Clone(), Epochs: f.Epochs}
}

// WithLambda returns a copy of the config with Lambda explicitly set, so
// zero survives fillDefaults (a pure-source λ=0 ablation).
func (c Config) WithLambda(v float64) Config {
	c.Lambda, c.LambdaSet = v, true
	return c
}

// WithReg returns a copy of the config with Reg explicitly set (zero
// disables regularization).
func (c Config) WithReg(v float64) Config {
	c.Reg, c.RegSet = v, true
	return c
}

// WithLRDecay returns a copy of the config with LRDecay explicitly set (zero
// keeps the learning rate constant).
func (c Config) WithLRDecay(v float64) Config {
	c.LRDecay, c.LRDecaySet = v, true
	return c
}

func (c *Config) fillDefaults() {
	if c.LatentDim <= 0 {
		c.LatentDim = 6
	}
	// Lambda, Reg and LRDecay all admit 0 as a meaningful value, so the
	// zero value alone cannot act as the "unset" sentinel — the *Set flags
	// disambiguate. Negative values are rejected in Solve, not silently
	// replaced here.
	if c.Lambda == 0 && !c.LambdaSet {
		c.Lambda = 0.75
	}
	if c.Reg == 0 && !c.RegSet {
		c.Reg = 0.02
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 0.02
	}
	if c.MaxEpochs <= 0 {
		c.MaxEpochs = 400
	}
	if c.Tol <= 0 {
		c.Tol = 1e-4
	}
	if c.LRDecay == 0 && !c.LRDecaySet {
		c.LRDecay = 0.01
	}
	if c.Patience <= 0 {
		c.Patience = 10
	}
}

// Result is a fitted factorization.
type Result struct {
	X, XStar, T, L *mat.Matrix
	// Completed is XStar * L^T: the filled-in target workload-label matrix.
	Completed *mat.Matrix
	Converged bool
	Epochs    int
	Loss      []float64 // loss per epoch
}

// Validate checks dimension consistency of the problem.
func (p Problem) Validate() error {
	if p.U == nil || p.V == nil || p.UStar == nil {
		return fmt.Errorf("cmf: U, V and UStar are all required")
	}
	j := p.U.Cols
	if p.V.Cols != j || p.UStar.Cols != j {
		return fmt.Errorf("cmf: label dimension mismatch: U has %d, V has %d, UStar has %d",
			j, p.V.Cols, p.UStar.Cols)
	}
	if p.Mask != nil && (p.Mask.Rows != p.UStar.Rows || p.Mask.Cols != p.UStar.Cols) {
		return fmt.Errorf("cmf: mask shape %dx%d does not match UStar %dx%d",
			p.Mask.Rows, p.Mask.Cols, p.UStar.Rows, p.UStar.Cols)
	}
	if p.U.Rows == 0 || p.V.Rows == 0 || p.UStar.Rows == 0 || j == 0 {
		return fmt.Errorf("cmf: empty matrix in problem")
	}
	return nil
}

// cellRC is one observed cell with its row and column pre-resolved, so the
// sweep inner loop never divides a flat index back into coordinates.
type cellRC struct {
	idx, r, c int32
}

// Prepared is a validated problem with its observed-cell lists prebuilt.
// Building the lists costs one pass over every matrix; a caller that solves
// the same problem repeatedly (the serving hot path: one prepared source
// problem, one fresh target row per request) prepares once and solves many
// times. A Prepared is immutable after construction and safe for concurrent
// Solve calls.
type Prepared struct {
	prob                       Problem
	cellsUStar, cellsU, cellsV []cellRC
}

// Prepare validates the problem and prebuilds its observed-cell lists.
func Prepare(p Problem) (*Prepared, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Prepared{
		prob:       p,
		cellsUStar: observedCells(p.UStar, p.Mask),
		cellsU:     observedCells(p.U, nil),
		cellsV:     observedCells(p.V, nil),
	}, nil
}

// WithTarget returns a Prepared over the same (already indexed) source
// matrices but a new target row matrix and mask — the per-request
// specialization of a shared source problem. Only the U* cell list is
// rebuilt; U's and V's are shared with the receiver.
func (pr *Prepared) WithTarget(ustar, mask *mat.Matrix) (*Prepared, error) {
	next := &Prepared{
		prob:   Problem{U: pr.prob.U, V: pr.prob.V, UStar: ustar, Mask: mask},
		cellsU: pr.cellsU,
		cellsV: pr.cellsV,
	}
	if err := next.prob.Validate(); err != nil {
		return nil, err
	}
	next.cellsUStar = observedCells(ustar, mask)
	return next, nil
}

// scratchPool recycles the shuffle buffers of concurrent solves. Entries are
// pointers to slices (the usual sync.Pool idiom avoiding per-Put allocation).
var scratchPool = sync.Pool{New: func() any { s := make([]cellRC, 0, 1280); return &s }}

// Solve runs the alternating SGD of Algorithm 1: each epoch fixes all factor
// matrices but one and sweeps SGD updates over the relevant observed cells,
// cycling X* -> X -> T -> L until the total loss stabilizes.
func Solve(p Problem, cfg Config, src *rng.Source) (*Result, error) {
	pr, err := Prepare(p)
	if err != nil {
		return nil, err
	}
	return pr.Solve(cfg, src)
}

// Solve runs the alternating SGD over the prepared problem. See Solve for
// the algorithm and Config.Warm/Config.FreezeSource for the warm-start and
// approximate modes.
func (pr *Prepared) Solve(cfg Config, src *rng.Source) (*Result, error) {
	p := pr.prob
	cfg.fillDefaults()
	if cfg.Lambda < 0 || cfg.Lambda > 1 || math.IsNaN(cfg.Lambda) {
		return nil, fmt.Errorf("cmf: lambda %v out of [0,1]", cfg.Lambda)
	}
	if cfg.Reg < 0 || math.IsNaN(cfg.Reg) {
		return nil, fmt.Errorf("cmf: negative regularization %v", cfg.Reg)
	}
	if cfg.LRDecay < 0 || math.IsNaN(cfg.LRDecay) {
		return nil, fmt.Errorf("cmf: negative learning-rate decay %v", cfg.LRDecay)
	}
	if cfg.FreezeSource && cfg.Warm == nil {
		return nil, fmt.Errorf("cmf: FreezeSource requires Warm factors")
	}

	g := cfg.LatentDim
	j := p.U.Cols
	var res *Result
	epochOffset := 0
	if cfg.Warm != nil {
		w := cfg.Warm
		if w.X == nil || w.T == nil || w.L == nil ||
			w.X.Rows != p.U.Rows || w.X.Cols != g ||
			w.T.Rows != p.V.Rows || w.T.Cols != g ||
			w.L.Rows != j || w.L.Cols != g {
			return nil, fmt.Errorf("cmf: warm factor shapes do not match problem/latent dim %d", g)
		}
		if w.Epochs < 0 {
			return nil, fmt.Errorf("cmf: negative warm epoch offset %d", w.Epochs)
		}
		epochOffset = w.Epochs
		res = &Result{X: w.X.Clone(), T: w.T.Clone(), L: w.L.Clone()}
		res.XStar = initTargetRows(p, pr.cellsUStar, res.L, cfg, src)
	} else {
		// Cold start: the draw order X, X*, T, L is part of the determinism
		// contract (it pins the rng stream of every historical solve).
		res = &Result{
			X:     randomFactor(p.U.Rows, g, src),
			XStar: randomFactor(p.UStar.Rows, g, src),
			T:     randomFactor(p.V.Rows, g, src),
			L:     randomFactor(j, g, src),
		}
	}

	// The observed-cell lists are fixed for the whole solve (the mask never
	// changes), prebuilt in Prepare. Each sweep copies the ascending base
	// list into a pooled scratch buffer and shuffles the copy, so the rng
	// draws land on identical starting permutations every pass and the
	// factorization stays bit-identical to the historical per-sweep rebuild.
	scratchp := scratchPool.Get().(*[]cellRC)
	maxCells := maxLen(len(pr.cellsUStar), len(pr.cellsU), len(pr.cellsV))
	if cap(*scratchp) < maxCells {
		*scratchp = make([]cellRC, 0, maxCells)
	}
	scratch := (*scratchp)[:maxCells]
	defer scratchPool.Put(scratchp)

	var lossKey, lrKey string
	if cfg.Tracer.Enabled() {
		key := cfg.TraceKey
		if key == "" {
			key = "cmf"
		}
		lossKey, lrKey = key+"/loss", key+"/lr"
	}

	best := math.Inf(1)
	stagnant := 0
	for epoch := 0; epoch < cfg.MaxEpochs; epoch++ {
		// Decayed step size keeps late epochs from oscillating; a warm solve
		// resumes the schedule at the seed's epoch count (see Factors.Epochs).
		lrE := cfg.LearnRate / (1 + cfg.LRDecay*float64(epochOffset+epoch))
		// Line 8: fix U (X) and V (T), update U*'s factors.
		sweep(p.UStar, pr.cellsUStar, scratch, res.XStar, res.L, cfg.Lambda, lrE, cfg.Reg, src, true, false)
		if !cfg.FreezeSource {
			// Line 9: fix U* and V, update U's factors.
			sweep(p.U, pr.cellsU, scratch, res.X, res.L, 1-cfg.Lambda, lrE, cfg.Reg, src, true, false)
			// Line 10: fix U and U*, update V's factors.
			sweep(p.V, pr.cellsV, scratch, res.T, res.L, 1-cfg.Lambda, lrE, cfg.Reg, src, true, false)
			// Shared label factors see every relation.
			sweep(p.UStar, pr.cellsUStar, scratch, res.XStar, res.L, cfg.Lambda, lrE, cfg.Reg, src, false, true)
			sweep(p.U, pr.cellsU, scratch, res.X, res.L, 1-cfg.Lambda, lrE, cfg.Reg, src, false, true)
			sweep(p.V, pr.cellsV, scratch, res.T, res.L, 1-cfg.Lambda, lrE, cfg.Reg, src, false, true)
		}

		var loss float64
		if cfg.FreezeSource {
			// Approximate mode tracks only the target term: the frozen
			// source reconstruction is a constant that would swamp the
			// relative-improvement convergence test.
			loss = cfg.Lambda*maskedSSE(p.UStar, p.Mask, res.XStar, res.L) + cfg.Reg*sq(res.XStar)
		} else {
			loss = totalLoss(p, res, cfg)
		}
		res.Loss = append(res.Loss, loss)
		res.Epochs = epoch + 1
		if lossKey != "" {
			cfg.Tracer.Gauge(lossKey, epoch, loss)
			cfg.Tracer.Gauge(lrKey, epoch, lrE)
		}
		if loss < best*(1-cfg.Tol) {
			best = loss
			stagnant = 0
		} else {
			if loss < best {
				best = loss
			}
			stagnant++
			if stagnant >= cfg.Patience {
				res.Converged = true
				break
			}
		}
	}

	res.Completed = res.XStar.Mul(res.L.T())
	if lossKey != "" {
		key := lossKey[:len(lossKey)-len("/loss")]
		cfg.Tracer.Event(key+"/done",
			fmt.Sprintf("converged=%v epochs=%d", res.Converged, res.Epochs))
	}
	return res, nil
}

// initTargetRows places the cold X* rows of a warm-started solve at the
// closed-form ridge solution of their convex subproblem given the warm L:
// per row r, minimize lambda*sum_obs (u*_rc - x.L_c)^2 + Reg*|x|^2, i.e.
// solve (lambda*Lo^T Lo + Reg*I) x = lambda*Lo^T u*_o over the observed
// columns o. Rows whose system is singular (or with no observed cells) fall
// back to the historical random initialization, drawing from src.
func initTargetRows(p Problem, cells []cellRC, l *mat.Matrix, cfg Config, src *rng.Source) *mat.Matrix {
	g := cfg.LatentDim
	xstar := mat.New(p.UStar.Rows, g)
	for r := 0; r < p.UStar.Rows; r++ {
		a := mat.New(g, g)
		b := make([]float64, g)
		seen := false
		for _, cell := range cells {
			if int(cell.r) != r {
				continue
			}
			seen = true
			lrow := l.RowView(int(cell.c))
			u := p.UStar.Data[cell.idx]
			for i := 0; i < g; i++ {
				b[i] += cfg.Lambda * u * lrow[i]
				for k := 0; k < g; k++ {
					a.Data[i*g+k] += cfg.Lambda * lrow[i] * lrow[k]
				}
			}
		}
		for i := 0; i < g; i++ {
			a.Data[i*g+i] += cfg.Reg
		}
		if seen {
			if x, err := mat.Solve(a, b); err == nil {
				xstar.SetRow(r, x)
				continue
			}
		}
		for f := 0; f < g; f++ {
			xstar.Data[r*g+f] = src.Norm(0, 0.1)
		}
	}
	return xstar
}

// observedCells lists target's observed cells (all of them for a nil mask)
// in ascending flat-index order, with row/column coordinates pre-resolved.
func observedCells(target, mask *mat.Matrix) []cellRC {
	n := target.Rows * target.Cols
	j := target.Cols
	cells := make([]cellRC, 0, n)
	for idx := 0; idx < n; idx++ {
		if mask == nil || mask.Data[idx] != 0 {
			cells = append(cells, cellRC{idx: int32(idx), r: int32(idx / j), c: int32(idx % j)})
		}
	}
	return cells
}

func maxLen(ns ...int) int {
	m := 0
	for _, n := range ns {
		if n > m {
			m = n
		}
	}
	return m
}

// randomFactor initializes a rows x g factor with small random values.
func randomFactor(rows, g int, src *rng.Source) *mat.Matrix {
	m := mat.New(rows, g)
	for i := range m.Data {
		m.Data[i] = src.Norm(0, 0.1)
	}
	return m
}

// sweep performs one SGD pass over the observed cells of target ~ row * L^T,
// updating the row factors or L according to the flags. base lists the
// observed cells in ascending order; each pass copies it into scratch and
// shuffles that copy, so every pass starts from the same permutation
// (bit-identical rng consumption) without re-deriving the list from the
// mask. The inner loops run on row slices through the fused mat helpers —
// bit-identical to the historical scalar loops (TestSweepBitIdentical pins
// this against a reference implementation).
func sweep(target *mat.Matrix, base, scratch []cellRC, rows, l *mat.Matrix, weight, learnRate, reg float64, src *rng.Source, updateRows, updateL bool) {
	if weight == 0 {
		return
	}
	cells := scratch[:len(base)]
	copy(cells, base)
	src.Shuffle(len(cells), func(a, b int) { cells[a], cells[b] = cells[b], cells[a] })

	g := rows.Cols
	lr := learnRate * weight
	tdata := target.Data
	rdata, ldata := rows.Data, l.Data
	for _, cell := range cells {
		rowf := rdata[int(cell.r)*g : int(cell.r)*g+g]
		lrow := ldata[int(cell.c)*g : int(cell.c)*g+g]
		e := tdata[cell.idx] - mat.DotFused(rowf, lrow)
		if updateRows {
			mat.SGDStepFused(lr, e, reg, rowf, lrow)
		}
		if updateL {
			mat.SGDStepFused(lr, e, reg, lrow, rowf)
		}
	}
}

// totalLoss evaluates Equation 6 plus regularization.
func totalLoss(p Problem, res *Result, cfg Config) float64 {
	loss := cfg.Lambda * maskedSSE(p.UStar, p.Mask, res.XStar, res.L)
	loss += (1 - cfg.Lambda) * (maskedSSE(p.U, nil, res.X, res.L) + maskedSSE(p.V, nil, res.T, res.L))
	reg := sq(res.X) + sq(res.XStar) + sq(res.T) + sq(res.L)
	return loss + cfg.Reg*reg
}

func sq(m *mat.Matrix) float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return s
}

// maskedSSE returns the squared reconstruction error of target ~ rows * L^T
// over observed cells. The row slices are hoisted out of the column loop and
// the inner product runs through the fused helper — the summation order is
// exactly the historical scalar loop's, so the value is bit-identical
// (TestMaskedSSEBitIdentical).
func maskedSSE(target, mask, rows, l *mat.Matrix) float64 {
	n, j, g := target.Rows, target.Cols, rows.Cols
	s := 0.0
	for r := 0; r < n; r++ {
		trow := target.Data[r*j : (r+1)*j]
		rowf := rows.Data[r*g : r*g+g]
		var mrow []float64
		if mask != nil {
			mrow = mask.Data[r*j : (r+1)*j]
		}
		for c := 0; c < j; c++ {
			if mrow != nil && mrow[c] == 0 {
				continue
			}
			d := trow[c] - mat.DotFused(rowf, l.Data[c*g:c*g+g])
			s += d * d
		}
	}
	return s
}

// RMSEObserved reports the root-mean-square reconstruction error of the
// completed U* against a reference matrix over the given mask (1 = compare).
// A nil mask compares every cell. Useful for held-out evaluation.
func (r *Result) RMSEObserved(ref, mask *mat.Matrix) float64 {
	if ref.Rows != r.Completed.Rows || ref.Cols != r.Completed.Cols {
		panic("cmf: RMSE shape mismatch")
	}
	s, n := 0.0, 0
	for idx, v := range ref.Data {
		if mask != nil && mask.Data[idx] == 0 {
			continue
		}
		d := v - r.Completed.Data[idx]
		s += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(s / float64(n))
}
