// Package cmf implements Collective Matrix Factorization (Singh & Gordon,
// KDD'08) solved by alternating Stochastic Gradient Descent, the transfer
// mechanism of Vesta's online phase (Section 3.3, Algorithm 1 lines 5-12).
//
// Three relationship matrices share one label factor matrix L:
//
//	U  ~ X  L^T   source workload-label relationships  (dense, observed)
//	V  ~ T  L^T   label-VM relationships               (dense, observed)
//	U* ~ X* L^T   target workload-label relationships  (sparse: a new
//	              workload has only a sandbox run plus 3 random VM runs)
//
// Because L is shared, the dense source knowledge constrains the label
// geometry, and the few observed U* entries suffice to place the target
// workloads in that geometry — after which Completed = X* L^T fills the
// missing entries (Algorithm 1 line 12: "a full representation of U* by
// filling data from U"). The paper's tradeoff parameter lambda weights the
// target reconstruction against the source knowledge; the paper uses 0.75.
//
// Non-convergence is a first-class outcome: the paper reports that Spark-CF
// "does not converge in the SGD algorithm", handled by a convergence
// limitation in the online phase. Solve reports Converged=false when the
// epoch budget is exhausted before the loss stabilizes.
package cmf

import (
	"fmt"
	"math"

	"vesta/internal/mat"
	"vesta/internal/obs"
	"vesta/internal/rng"
)

// Problem bundles the observed matrices. All must share the label dimension
// j (columns). Mask marks observed entries of UStar (1 = observed); a nil
// Mask means UStar is fully observed.
type Problem struct {
	U     *mat.Matrix // i x j source workload-label
	V     *mat.Matrix // k x j label-VM
	UStar *mat.Matrix // n x j target workload-label (sparse)
	Mask  *mat.Matrix // n x j observation mask for UStar
}

// Config tunes the factorization.
type Config struct {
	// LatentDim is g, the shared latent feature dimension. Default 6.
	LatentDim int
	// Lambda in [0,1] trades target reconstruction (lambda) against source
	// knowledge (1-lambda); Equation 6. Default 0.75 (the paper's choice).
	// Zero is a legal value (a pure-source ablation) but is indistinguishable
	// from the unset zero value, so it must be requested explicitly via
	// LambdaSet (or the WithLambda helper).
	Lambda float64
	// LambdaSet marks Lambda as explicitly configured, making Lambda == 0
	// mean "weight the target reconstruction by zero" instead of "use the
	// default 0.75".
	LambdaSet bool
	// Reg is the L2 regularization weight R(U, V, U*). Default 0.02. Zero
	// (no regularization) is legal with RegSet.
	Reg float64
	// RegSet marks Reg as explicitly configured (Reg == 0 disables
	// regularization instead of taking the default).
	RegSet bool
	// LearnRate is the SGD step size. Default 0.02.
	LearnRate float64
	// MaxEpochs bounds training; reaching it without stabilizing marks the
	// result non-converged. Default 400.
	MaxEpochs int
	// Tol is the relative improvement threshold: an epoch that fails to
	// improve the best loss by this fraction counts as stagnant. Default
	// 1e-4.
	Tol float64
	// LRDecay shrinks the learning rate as 1/(1 + LRDecay*epoch) so the
	// stochastic loss settles. Default 0.01. Zero (constant learning rate)
	// is legal with LRDecaySet.
	LRDecay float64
	// LRDecaySet marks LRDecay as explicitly configured (LRDecay == 0 keeps
	// the learning rate constant instead of taking the default).
	LRDecaySet bool
	// Patience is how many consecutive stagnant epochs declare convergence.
	// Default 10.
	Patience int
	// Tracer, when enabled, receives the per-epoch loss and learning-rate
	// gauge streams plus a convergence event, all keyed under TraceKey
	// (e.g. "predict/Spark-wordcount/cmf"). A nil Tracer costs one pointer
	// check per Solve.
	Tracer *obs.Tracer
	// TraceKey namespaces this solve's records; defaults to "cmf".
	TraceKey string
}

// WithLambda returns a copy of the config with Lambda explicitly set, so
// zero survives fillDefaults (a pure-source λ=0 ablation).
func (c Config) WithLambda(v float64) Config {
	c.Lambda, c.LambdaSet = v, true
	return c
}

// WithReg returns a copy of the config with Reg explicitly set (zero
// disables regularization).
func (c Config) WithReg(v float64) Config {
	c.Reg, c.RegSet = v, true
	return c
}

// WithLRDecay returns a copy of the config with LRDecay explicitly set (zero
// keeps the learning rate constant).
func (c Config) WithLRDecay(v float64) Config {
	c.LRDecay, c.LRDecaySet = v, true
	return c
}

func (c *Config) fillDefaults() {
	if c.LatentDim <= 0 {
		c.LatentDim = 6
	}
	// Lambda, Reg and LRDecay all admit 0 as a meaningful value, so the
	// zero value alone cannot act as the "unset" sentinel — the *Set flags
	// disambiguate. Negative values are rejected in Solve, not silently
	// replaced here.
	if c.Lambda == 0 && !c.LambdaSet {
		c.Lambda = 0.75
	}
	if c.Reg == 0 && !c.RegSet {
		c.Reg = 0.02
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 0.02
	}
	if c.MaxEpochs <= 0 {
		c.MaxEpochs = 400
	}
	if c.Tol <= 0 {
		c.Tol = 1e-4
	}
	if c.LRDecay == 0 && !c.LRDecaySet {
		c.LRDecay = 0.01
	}
	if c.Patience <= 0 {
		c.Patience = 10
	}
}

// Result is a fitted factorization.
type Result struct {
	X, XStar, T, L *mat.Matrix
	// Completed is XStar * L^T: the filled-in target workload-label matrix.
	Completed *mat.Matrix
	Converged bool
	Epochs    int
	Loss      []float64 // loss per epoch
}

// Validate checks dimension consistency of the problem.
func (p Problem) Validate() error {
	if p.U == nil || p.V == nil || p.UStar == nil {
		return fmt.Errorf("cmf: U, V and UStar are all required")
	}
	j := p.U.Cols
	if p.V.Cols != j || p.UStar.Cols != j {
		return fmt.Errorf("cmf: label dimension mismatch: U has %d, V has %d, UStar has %d",
			j, p.V.Cols, p.UStar.Cols)
	}
	if p.Mask != nil && (p.Mask.Rows != p.UStar.Rows || p.Mask.Cols != p.UStar.Cols) {
		return fmt.Errorf("cmf: mask shape %dx%d does not match UStar %dx%d",
			p.Mask.Rows, p.Mask.Cols, p.UStar.Rows, p.UStar.Cols)
	}
	if p.U.Rows == 0 || p.V.Rows == 0 || p.UStar.Rows == 0 || j == 0 {
		return fmt.Errorf("cmf: empty matrix in problem")
	}
	return nil
}

// Solve runs the alternating SGD of Algorithm 1: each epoch fixes all factor
// matrices but one and sweeps SGD updates over the relevant observed cells,
// cycling X* -> X -> T -> L until the total loss stabilizes.
func Solve(p Problem, cfg Config, src *rng.Source) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	if cfg.Lambda < 0 || cfg.Lambda > 1 || math.IsNaN(cfg.Lambda) {
		return nil, fmt.Errorf("cmf: lambda %v out of [0,1]", cfg.Lambda)
	}
	if cfg.Reg < 0 || math.IsNaN(cfg.Reg) {
		return nil, fmt.Errorf("cmf: negative regularization %v", cfg.Reg)
	}
	if cfg.LRDecay < 0 || math.IsNaN(cfg.LRDecay) {
		return nil, fmt.Errorf("cmf: negative learning-rate decay %v", cfg.LRDecay)
	}

	g := cfg.LatentDim
	j := p.U.Cols
	res := &Result{
		X:     randomFactor(p.U.Rows, g, src),
		XStar: randomFactor(p.UStar.Rows, g, src),
		T:     randomFactor(p.V.Rows, g, src),
		L:     randomFactor(j, g, src),
	}

	// The observed-cell index lists are fixed for the whole solve (the mask
	// never changes), so they are built once here instead of once per sweep —
	// the epoch loop below runs 6 sweeps x up to MaxEpochs, and rebuilding
	// plus re-appending them dominated small solves. Each sweep still starts
	// from the same ascending order (copied into a scratch buffer) before
	// shuffling, so the rng draws land on identical starting permutations and
	// the factorization stays bit-identical to the per-sweep rebuild.
	cellsUStar := observedCells(p.UStar, p.Mask)
	cellsU := observedCells(p.U, nil)
	cellsV := observedCells(p.V, nil)
	scratch := make([]int, maxLen(len(cellsUStar), len(cellsU), len(cellsV)))

	var lossKey, lrKey string
	if cfg.Tracer.Enabled() {
		key := cfg.TraceKey
		if key == "" {
			key = "cmf"
		}
		lossKey, lrKey = key+"/loss", key+"/lr"
	}

	best := math.Inf(1)
	stagnant := 0
	for epoch := 0; epoch < cfg.MaxEpochs; epoch++ {
		// Decayed step size keeps late epochs from oscillating.
		cfgE := cfg
		cfgE.LearnRate = cfg.LearnRate / (1 + cfg.LRDecay*float64(epoch))
		// Line 8: fix U (X) and V (T), update U*'s factors.
		sweep(p.UStar, cellsUStar, scratch, res.XStar, res.L, cfg.Lambda, cfgE, src, true, false)
		// Line 9: fix U* and V, update U's factors.
		sweep(p.U, cellsU, scratch, res.X, res.L, 1-cfg.Lambda, cfgE, src, true, false)
		// Line 10: fix U and U*, update V's factors.
		sweep(p.V, cellsV, scratch, res.T, res.L, 1-cfg.Lambda, cfgE, src, true, false)
		// Shared label factors see every relation.
		sweep(p.UStar, cellsUStar, scratch, res.XStar, res.L, cfg.Lambda, cfgE, src, false, true)
		sweep(p.U, cellsU, scratch, res.X, res.L, 1-cfg.Lambda, cfgE, src, false, true)
		sweep(p.V, cellsV, scratch, res.T, res.L, 1-cfg.Lambda, cfgE, src, false, true)

		loss := totalLoss(p, res, cfg)
		res.Loss = append(res.Loss, loss)
		res.Epochs = epoch + 1
		if lossKey != "" {
			cfg.Tracer.Gauge(lossKey, epoch, loss)
			cfg.Tracer.Gauge(lrKey, epoch, cfgE.LearnRate)
		}
		if loss < best*(1-cfg.Tol) {
			best = loss
			stagnant = 0
		} else {
			if loss < best {
				best = loss
			}
			stagnant++
			if stagnant >= cfg.Patience {
				res.Converged = true
				break
			}
		}
	}

	res.Completed = res.XStar.Mul(res.L.T())
	if lossKey != "" {
		key := lossKey[:len(lossKey)-len("/loss")]
		cfg.Tracer.Event(key+"/done",
			fmt.Sprintf("converged=%v epochs=%d", res.Converged, res.Epochs))
	}
	return res, nil
}

// observedCells lists the flat indices of target's observed cells (all of
// them for a nil mask), in ascending order.
func observedCells(target, mask *mat.Matrix) []int {
	n := target.Rows * target.Cols
	cells := make([]int, 0, n)
	for idx := 0; idx < n; idx++ {
		if mask == nil || mask.Data[idx] != 0 {
			cells = append(cells, idx)
		}
	}
	return cells
}

func maxLen(ns ...int) int {
	m := 0
	for _, n := range ns {
		if n > m {
			m = n
		}
	}
	return m
}

// randomFactor initializes a rows x g factor with small random values.
func randomFactor(rows, g int, src *rng.Source) *mat.Matrix {
	m := mat.New(rows, g)
	for i := range m.Data {
		m.Data[i] = src.Norm(0, 0.1)
	}
	return m
}

// sweep performs one SGD pass over the observed cells of target ~ row * L^T,
// updating the row factors and/or L according to the flags. base lists the
// observed flat indices in ascending order; each pass copies it into scratch
// and shuffles that copy, so every pass starts from the same permutation the
// old build-per-sweep code did (bit-identical rng consumption) without
// re-deriving the list from the mask.
func sweep(target *mat.Matrix, base, scratch []int, rows, l *mat.Matrix, weight float64, cfg Config, src *rng.Source, updateRows, updateL bool) {
	if weight == 0 {
		return
	}
	j := target.Cols
	cells := scratch[:len(base)]
	copy(cells, base)
	src.Shuffle(len(cells), func(a, b int) { cells[a], cells[b] = cells[b], cells[a] })

	g := rows.Cols
	lr := cfg.LearnRate * weight
	for _, idx := range cells {
		r, c := idx/j, idx%j
		// Prediction and residual.
		pred := 0.0
		for f := 0; f < g; f++ {
			pred += rows.Data[r*g+f] * l.Data[c*g+f]
		}
		e := target.Data[idx] - pred
		for f := 0; f < g; f++ {
			rv := rows.Data[r*g+f]
			lv := l.Data[c*g+f]
			if updateRows {
				rows.Data[r*g+f] += lr * (e*lv - cfg.Reg*rv)
			}
			if updateL {
				l.Data[c*g+f] += lr * (e*rv - cfg.Reg*lv)
			}
		}
	}
}

// totalLoss evaluates Equation 6 plus regularization.
func totalLoss(p Problem, res *Result, cfg Config) float64 {
	loss := cfg.Lambda * maskedSSE(p.UStar, p.Mask, res.XStar, res.L)
	loss += (1 - cfg.Lambda) * (maskedSSE(p.U, nil, res.X, res.L) + maskedSSE(p.V, nil, res.T, res.L))
	reg := sq(res.X) + sq(res.XStar) + sq(res.T) + sq(res.L)
	return loss + cfg.Reg*reg
}

func sq(m *mat.Matrix) float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return s
}

// maskedSSE returns the squared reconstruction error of target ~ rows * L^T
// over observed cells.
func maskedSSE(target, mask, rows, l *mat.Matrix) float64 {
	n, j, g := target.Rows, target.Cols, rows.Cols
	s := 0.0
	for r := 0; r < n; r++ {
		for c := 0; c < j; c++ {
			idx := r*j + c
			if mask != nil && mask.Data[idx] == 0 {
				continue
			}
			pred := 0.0
			for f := 0; f < g; f++ {
				pred += rows.Data[r*g+f] * l.Data[c*g+f]
			}
			d := target.Data[idx] - pred
			s += d * d
		}
	}
	return s
}

// RMSEObserved reports the root-mean-square reconstruction error of the
// completed U* against a reference matrix over the given mask (1 = compare).
// A nil mask compares every cell. Useful for held-out evaluation.
func (r *Result) RMSEObserved(ref, mask *mat.Matrix) float64 {
	if ref.Rows != r.Completed.Rows || ref.Cols != r.Completed.Cols {
		panic("cmf: RMSE shape mismatch")
	}
	s, n := 0.0, 0
	for idx, v := range ref.Data {
		if mask != nil && mask.Data[idx] == 0 {
			continue
		}
		d := v - r.Completed.Data[idx]
		s += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(s / float64(n))
}
