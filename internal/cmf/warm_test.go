package cmf

import (
	"math"
	"testing"

	"vesta/internal/mat"
	"vesta/internal/rng"
)

// refSweep is the scalar SGD pass the solver used before the fused helpers
// and cellRC lists existed — the bit-identity reference for sweep.
func refSweep(target *mat.Matrix, base, scratch []int, rows, l *mat.Matrix, weight float64, learnRate, reg float64, src *rng.Source, updateRows, updateL bool) {
	if weight == 0 {
		return
	}
	j := target.Cols
	cells := scratch[:len(base)]
	copy(cells, base)
	src.Shuffle(len(cells), func(a, b int) { cells[a], cells[b] = cells[b], cells[a] })

	g := rows.Cols
	lr := learnRate * weight
	for _, idx := range cells {
		r, c := idx/j, idx%j
		pred := 0.0
		for f := 0; f < g; f++ {
			pred += rows.Data[r*g+f] * l.Data[c*g+f]
		}
		e := target.Data[idx] - pred
		for f := 0; f < g; f++ {
			rv := rows.Data[r*g+f]
			lv := l.Data[c*g+f]
			if updateRows {
				rows.Data[r*g+f] += lr * (e*lv - reg*rv)
			}
			if updateL {
				l.Data[c*g+f] += lr * (e*rv - reg*lv)
			}
		}
	}
}

// refMaskedSSE is the pre-restructuring scalar loss loop.
func refMaskedSSE(target, mask, rows, l *mat.Matrix) float64 {
	n, j, g := target.Rows, target.Cols, rows.Cols
	s := 0.0
	for r := 0; r < n; r++ {
		for c := 0; c < j; c++ {
			idx := r*j + c
			if mask != nil && mask.Data[idx] == 0 {
				continue
			}
			pred := 0.0
			for f := 0; f < g; f++ {
				pred += rows.Data[r*g+f] * l.Data[c*g+f]
			}
			d := target.Data[idx] - pred
			s += d * d
		}
	}
	return s
}

func intCells(cells []cellRC) []int {
	out := make([]int, len(cells))
	for i, c := range cells {
		out[i] = int(c.idx)
	}
	return out
}

func equalBits(t *testing.T, name string, got, want *mat.Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: entry %d differs: %x vs %x", name, i,
				math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]))
		}
	}
}

// TestSweepBitIdentical pins the restructured sweep (cellRC lists, hoisted
// update flags, fused row-slice helpers) to the historical scalar loop,
// bit for bit, across both update modes and masked/unmasked cell lists.
func TestSweepBitIdentical(t *testing.T) {
	src := rng.New(21)
	p, _ := synthProblem(src, 9, 5, 7, 6, 3, 0.55)
	g := 3
	for _, mode := range []struct {
		name                string
		updateRows, updateL bool
	}{
		{"rows", true, false},
		{"l", false, true},
	} {
		for _, masked := range []bool{true, false} {
			target, mask := p.UStar, p.Mask
			if !masked {
				target, mask = p.U, nil
			}
			cells := observedCells(target, mask)
			rows := randomFactor(target.Rows, g, rng.New(31))
			l := randomFactor(target.Cols, g, rng.New(32))
			rowsRef, lRef := rows.Clone(), l.Clone()

			scratch := make([]cellRC, len(cells))
			sweep(target, cells, scratch, rows, l, 0.75, 0.02, 0.02, rng.New(33), mode.updateRows, mode.updateL)
			refScratch := make([]int, len(cells))
			refSweep(target, intCells(cells), refScratch, rowsRef, lRef, 0.75, 0.02, 0.02, rng.New(33), mode.updateRows, mode.updateL)

			equalBits(t, mode.name+"/rows", rows, rowsRef)
			equalBits(t, mode.name+"/l", l, lRef)
		}
	}
}

// TestSweepZeroWeightConsumesNoRNG pins the weight==0 early return happening
// before the shuffle — a zero-weight sweep must leave the rng stream intact.
func TestSweepZeroWeightConsumesNoRNG(t *testing.T) {
	src := rng.New(40)
	p, _ := synthProblem(src, 4, 2, 3, 3, 2, 1)
	cells := observedCells(p.U, nil)
	rows := randomFactor(p.U.Rows, 2, rng.New(41))
	l := randomFactor(p.U.Cols, 2, rng.New(42))
	a, b := rng.New(43), rng.New(43)
	sweep(p.U, cells, make([]cellRC, len(cells)), rows, l, 0, 0.02, 0.02, a, true, false)
	if a.Uint64() != b.Uint64() {
		t.Fatal("zero-weight sweep consumed rng draws")
	}
}

// TestMaskedSSEBitIdentical pins the hoisted-slice loss loop to the
// historical scalar loop.
func TestMaskedSSEBitIdentical(t *testing.T) {
	src := rng.New(22)
	p, _ := synthProblem(src, 8, 5, 6, 7, 3, 0.5)
	rows := randomFactor(5, 3, rng.New(23))
	l := randomFactor(7, 3, rng.New(24))
	for _, mask := range []*mat.Matrix{p.Mask, nil} {
		got, want := maskedSSE(p.UStar, mask, rows, l), refMaskedSSE(p.UStar, mask, rows, l)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("mask=%v: maskedSSE %x, reference %x", mask != nil,
				math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestPreparedSolveMatchesSolve pins the Prepare/Solve split: solving a
// prepared problem is the same computation as the one-shot entry point.
func TestPreparedSolveMatchesSolve(t *testing.T) {
	src := rng.New(25)
	p, _ := synthProblem(src, 8, 4, 6, 5, 2, 0.5)
	cfg := Config{MaxEpochs: 60}
	want, err := Solve(p, cfg, rng.New(26))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Prepare(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pr.Solve(cfg, rng.New(26))
	if err != nil {
		t.Fatal(err)
	}
	equalBits(t, "completed", got.Completed, want.Completed)
}

// TestWithTargetMatchesFreshPrepare pins the shared-source specialization:
// swapping in a new target row must behave exactly like preparing the full
// problem from scratch.
func TestWithTargetMatchesFreshPrepare(t *testing.T) {
	src := rng.New(27)
	p, _ := synthProblem(src, 8, 3, 6, 5, 2, 0.5)
	pr, err := Prepare(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := synthProblem(rng.New(28), 8, 3, 6, 5, 2, 0.4)
	p2.U, p2.V = p.U, p.V // same sources, new target
	sub, err := pr.WithTarget(p2.UStar, p2.Mask)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MaxEpochs: 40}
	got, err := sub.Solve(cfg, rng.New(29))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Solve(p2, cfg, rng.New(29))
	if err != nil {
		t.Fatal(err)
	}
	equalBits(t, "completed", got.Completed, want.Completed)

	if _, err := pr.WithTarget(mat.New(3, 4), nil); err == nil {
		t.Fatal("label-dim mismatch accepted by WithTarget")
	}
}

// warmFixture mirrors the serving architecture at membership scale: a
// source-only "plan" problem (empty target row) is solved cold once, and the
// request problem adds one new row with a few observed cells drawn in the
// same label geometry — the transfer assumption warm-start exploits: source
// factors are already right, only the target's coordinates are unknown.
// Factor entries sit in U(0, 0.35) so matrix cells are ~0.1-0.3, like the
// real label-membership matrices.
func warmFixture(t *testing.T) (Problem, *Result, Problem, Config) {
	t.Helper()
	src := rng.New(50)
	factor := func(rows, g int) *mat.Matrix {
		m := mat.New(rows, g)
		for i := range m.Data {
			m.Data[i] = src.Range(0, 0.35)
		}
		return m
	}
	x, tt, l := factor(13, 3), factor(10, 3), factor(8, 3)
	p := Problem{U: x.Mul(l.T()), V: tt.Mul(l.T()), UStar: mat.New(1, 8), Mask: mat.New(1, 8)}
	cfg := Config{LatentDim: 3, MaxEpochs: 2000, Tol: 1e-4}
	cold, err := Solve(p, cfg, rng.New(51))
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Converged {
		t.Fatal("fixture plan solve did not converge")
	}
	xs := factor(1, 3)
	full := xs.Mul(l.T())
	mask := mat.New(1, 8)
	ustar := mat.New(1, 8)
	for _, c := range []int{1, 4, 6} {
		mask.Set(0, c, 1)
		ustar.Set(0, c, full.At(0, c))
	}
	next := Problem{U: p.U, V: p.V, UStar: ustar, Mask: mask}
	return p, cold, next, cfg
}

// TestWarmStartConvergesFaster is the warm-start value proposition: seeded
// with converged source factors, the solve on a new target row must finish
// in far fewer epochs than the cold solve and still fit the target well.
func TestWarmStartConvergesFaster(t *testing.T) {
	_, cold, next, cfg := warmFixture(t)

	coldNext, err := Solve(next, cfg, rng.New(53))
	if err != nil {
		t.Fatal(err)
	}
	warmCfg := cfg
	warmCfg.Warm = &Factors{X: cold.X, T: cold.T, L: cold.L, Epochs: cold.Epochs}
	warm, err := Solve(next, warmCfg, rng.New(53))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Converged {
		t.Fatalf("warm solve did not converge in %d epochs", warm.Epochs)
	}
	if warm.Epochs*2 > coldNext.Epochs {
		t.Fatalf("warm solve took %d epochs vs cold %d; want at least 2x fewer", warm.Epochs, coldNext.Epochs)
	}
	// Warm completion must fit the observed target cells about as well as
	// cold (within 2x on observed-cell RMSE).
	warmRMSE := warm.RMSEObserved(next.UStar, next.Mask)
	coldRMSE := coldNext.RMSEObserved(next.UStar, next.Mask)
	if warmRMSE > 2*coldRMSE+1e-9 {
		t.Fatalf("warm observed RMSE %v much worse than cold %v", warmRMSE, coldRMSE)
	}
}

// TestWarmDoesNotMutateSeedFactors: Solve clones the warm factors; the
// caller's snapshot must never be written through.
func TestWarmDoesNotMutateSeedFactors(t *testing.T) {
	_, cold, next, cfg := warmFixture(t)
	seedX, seedT, seedL := cold.X.Clone(), cold.T.Clone(), cold.L.Clone()
	cfg.Warm = &Factors{X: cold.X, T: cold.T, L: cold.L, Epochs: cold.Epochs}
	if _, err := Solve(next, cfg, rng.New(54)); err != nil {
		t.Fatal(err)
	}
	equalBits(t, "X", cold.X, seedX)
	equalBits(t, "T", cold.T, seedT)
	equalBits(t, "L", cold.L, seedL)
}

// TestFreezeSourceFitsOnlyTarget: approximate mode must leave the source
// factors byte-identical to the warm seed and still fit the target row.
func TestFreezeSourceFitsOnlyTarget(t *testing.T) {
	_, cold, next, cfg := warmFixture(t)
	cfg.Warm = &Factors{X: cold.X, T: cold.T, L: cold.L, Epochs: cold.Epochs}
	cfg.FreezeSource = true
	res, err := Solve(next, cfg, rng.New(55))
	if err != nil {
		t.Fatal(err)
	}
	equalBits(t, "X", res.X, cold.X)
	equalBits(t, "T", res.T, cold.T)
	equalBits(t, "L", res.L, cold.L)
	// The target fit must still be reasonable relative to a full solve.
	full, err := Solve(next, Config{LatentDim: 3, MaxEpochs: 2000, Tol: 1e-4}, rng.New(55))
	if err != nil {
		t.Fatal(err)
	}
	frozenRMSE := res.RMSEObserved(next.UStar, next.Mask)
	fullRMSE := full.RMSEObserved(next.UStar, next.Mask)
	if frozenRMSE > 3*fullRMSE+1e-9 {
		t.Fatalf("frozen-source observed RMSE %v too far from full solve %v", frozenRMSE, fullRMSE)
	}
}

func TestFreezeSourceRequiresWarm(t *testing.T) {
	src := rng.New(60)
	p, _ := synthProblem(src, 4, 2, 3, 3, 2, 1)
	if _, err := Solve(p, Config{FreezeSource: true}, rng.New(1)); err == nil {
		t.Fatal("FreezeSource without Warm accepted")
	}
}

func TestWarmShapeValidation(t *testing.T) {
	src := rng.New(61)
	p, _ := synthProblem(src, 5, 3, 4, 4, 2, 0.8)
	good := &Factors{
		X: mat.New(5, 2), T: mat.New(4, 2), L: mat.New(4, 2),
	}
	if _, err := Solve(p, Config{LatentDim: 2, MaxEpochs: 2, Warm: good}, rng.New(1)); err != nil {
		t.Fatalf("well-shaped warm factors rejected: %v", err)
	}
	cases := []*Factors{
		{X: mat.New(6, 2), T: mat.New(4, 2), L: mat.New(4, 2)}, // wrong X rows
		{X: mat.New(5, 3), T: mat.New(4, 2), L: mat.New(4, 2)}, // wrong latent dim
		{X: mat.New(5, 2), T: mat.New(3, 2), L: mat.New(4, 2)}, // wrong T rows
		{X: mat.New(5, 2), T: mat.New(4, 2), L: mat.New(5, 2)}, // wrong L rows
		{X: nil, T: mat.New(4, 2), L: mat.New(4, 2)},           // nil factor
	}
	for i, w := range cases {
		if _, err := Solve(p, Config{LatentDim: 2, MaxEpochs: 2, Warm: w}, rng.New(1)); err == nil {
			t.Fatalf("case %d: bad warm shapes accepted", i)
		}
	}
}

func TestFactorsClone(t *testing.T) {
	f := &Factors{X: mat.New(2, 2), T: mat.New(2, 2), L: mat.New(2, 2)}
	f.X.Data[0] = 1
	c := f.Clone()
	c.X.Data[0] = 9
	if f.X.Data[0] != 1 {
		t.Fatal("Clone shares storage with the receiver")
	}
}

// BenchmarkWarmVsColdSolve quantifies the warm-start epoch savings on the
// synthetic fixture (run with -bench).
func BenchmarkSolveWarm(b *testing.B) {
	src := rng.New(70)
	p, _ := synthProblem(src, 18, 12, 120, 9, 4, 0.3)
	cold, err := Solve(p, Config{MaxEpochs: 2000, Tol: 1e-4}, rng.New(71))
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{MaxEpochs: 2000, Tol: 1e-4, Warm: &Factors{X: cold.X, T: cold.T, L: cold.L}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, cfg, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
