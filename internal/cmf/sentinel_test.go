package cmf

import (
	"math"
	"strings"
	"testing"

	"vesta/internal/rng"
)

// TestFillDefaultsSentinels pins the unset-vs-explicit-zero semantics: the
// zero value still takes the documented defaults, while the *Set flags make
// an explicit zero survive.
func TestFillDefaultsSentinels(t *testing.T) {
	var c Config
	c.fillDefaults()
	if c.Lambda != 0.75 || c.Reg != 0.02 || c.LRDecay != 0.01 {
		t.Fatalf("zero-value defaults = lambda %v, reg %v, decay %v; want 0.75, 0.02, 0.01",
			c.Lambda, c.Reg, c.LRDecay)
	}

	e := Config{LambdaSet: true, RegSet: true, LRDecaySet: true}
	e.fillDefaults()
	if e.Lambda != 0 || e.Reg != 0 || e.LRDecay != 0 {
		t.Fatalf("explicit zeros were overwritten: lambda %v, reg %v, decay %v",
			e.Lambda, e.Reg, e.LRDecay)
	}

	// Non-zero values pass through regardless of flags.
	nz := Config{Lambda: 0.5, Reg: 0.1, LRDecay: 0.2}
	nz.fillDefaults()
	if nz.Lambda != 0.5 || nz.Reg != 0.1 || nz.LRDecay != 0.2 {
		t.Fatalf("non-zero values were replaced: %+v", nz)
	}
}

func TestWithHelpers(t *testing.T) {
	base := Config{MaxEpochs: 7}
	c := base.WithLambda(0).WithReg(0).WithLRDecay(0)
	if !c.LambdaSet || !c.RegSet || !c.LRDecaySet {
		t.Fatalf("helpers did not set the sentinel flags: %+v", c)
	}
	if c.MaxEpochs != 7 {
		t.Fatalf("helpers clobbered unrelated fields: %+v", c)
	}
	// Value receivers: the original config is untouched.
	if base.LambdaSet || base.RegSet || base.LRDecaySet {
		t.Fatalf("helpers mutated the receiver: %+v", base)
	}
}

// TestExplicitZeroLambdaSolves runs a λ=0 solve end to end — before the
// sentinel fix this silently trained with the 0.75 default.
func TestExplicitZeroLambdaSolves(t *testing.T) {
	p, _ := synthProblem(rng.New(11), 8, 4, 6, 5, 2, 0.6)
	cfg := Config{LatentDim: 2, MaxEpochs: 300}
	res0, err := Solve(p, cfg.WithLambda(0), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	resDefault, err := Solve(p, cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// λ=0 and λ=0.75 must actually differ — identical completions would mean
	// the explicit zero was still being replaced by the default.
	same := true
	for i := range res0.Completed.Data {
		if math.Abs(res0.Completed.Data[i]-resDefault.Completed.Data[i]) > 1e-12 {
			same = false
			break
		}
	}
	if same {
		t.Fatal("lambda=0 solve is identical to the default-lambda solve; sentinel ignored")
	}
}

func TestNegativeConfigRejected(t *testing.T) {
	p, _ := synthProblem(rng.New(12), 5, 3, 4, 4, 2, 0.7)
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"negative reg", Config{}.WithReg(-0.1), "negative regularization"},
		{"NaN reg", Config{}.WithReg(math.NaN()), "negative regularization"},
		{"negative decay", Config{}.WithLRDecay(-1), "negative learning-rate decay"},
		{"NaN decay", Config{}.WithLRDecay(math.NaN()), "negative learning-rate decay"},
		{"negative lambda", Config{}.WithLambda(-0.5), "out of [0,1]"},
		{"lambda above one", Config{}.WithLambda(1.5), "out of [0,1]"},
		{"NaN lambda", Config{}.WithLambda(math.NaN()), "out of [0,1]"},
	}
	for _, tc := range cases {
		if _, err := Solve(p, tc.cfg, rng.New(1)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Solve error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
