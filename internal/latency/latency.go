// Package latency implements the extension sketched in the paper's
// conclusion: for latency-sensitive (streaming) workloads, execution time is
// the wrong practical metric — "latency and throughput are important
// variables for measuring the performance of latency-sensitive workloads.
// What we need to do is to choose appropriate metrics according to workload
// characteristics and train new predictive function on them."
//
// The extension reuses Vesta's existing knowledge unchanged: the bipartite
// graph still places the target in label space and ranks VM types by
// transferred affinity; only the *calibration* changes — the sandbox and
// random-initialization runs anchor a predictive function for P90 latency
// instead of execution time, and the ranking is re-scored by predicted
// latency.
package latency

import (
	"fmt"
	"math"
	"sort"

	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/stats"
	"vesta/internal/workload"
)

// Result is a latency-objective selection.
type Result struct {
	Target string
	// Best is the VM type with the lowest predicted P90 latency.
	Best string
	// Ranking lists VM names by ascending predicted latency.
	Ranking []string
	// PredictedLatencyMS maps VM name to predicted P90 latency.
	PredictedLatencyMS map[string]float64
	// ObservedLatencyMS holds the measured initialization runs.
	ObservedLatencyMS map[string]float64
	// OnlineRuns is the reference-VM count charged.
	OnlineRuns int
	// Converged mirrors the underlying transfer's convergence flag.
	Converged bool
}

// Select picks the best VM type for a streaming target by predicted P90
// latency, reusing sys's offline knowledge. It errors on batch workloads —
// the base execution-time predictor is the right tool there.
func Select(sys *core.System, target workload.App, meter *oracle.Meter) (*Result, error) {
	if !target.Demand.Streaming {
		return nil, fmt.Errorf("latency: %s is a batch workload; use the execution-time predictor", target.Name)
	}
	pred, err := sys.PredictOnline(target, meter)
	if err != nil {
		return nil, err
	}

	// Fit latency = a * score^(-b) on the observed runs, exactly like the
	// base system's time calibration but against the latency metric.
	scoreOf := map[string]float64{}
	for _, r := range pred.Ranking {
		scoreOf[r.VM] = r.Score
	}
	var lx, ly []float64
	for vm, lat := range pred.ObservedLatencyMS {
		if sc := scoreOf[vm]; sc > 1e-9 && lat > 0 {
			lx = append(lx, math.Log(sc))
			ly = append(ly, math.Log(lat))
		}
	}
	if len(lx) == 0 {
		return nil, fmt.Errorf("latency: no usable latency observations for %s", target.Name)
	}
	a, b := math.Exp(ly[0]+lx[0]), 1.0
	if len(lx) >= 2 && stats.StdDev(lx) > 1e-6 {
		b = -stats.Covariance(lx, ly) / stats.Variance(lx)
		b = math.Max(0.25, math.Min(3, b))
		a = math.Exp(stats.Mean(ly) + b*stats.Mean(lx))
	}

	predicted := make(map[string]float64, len(pred.Ranking))
	names := make([]string, 0, len(pred.Ranking))
	for _, r := range pred.Ranking {
		names = append(names, r.VM)
		if r.Score > 1e-9 {
			predicted[r.VM] = a * math.Pow(r.Score, -b)
		} else {
			predicted[r.VM] = math.Inf(1)
		}
	}
	for vm, lat := range pred.ObservedLatencyMS {
		if lat > 0 {
			predicted[vm] = lat
		}
	}
	sort.Slice(names, func(i, j int) bool {
		pi, pj := predicted[names[i]], predicted[names[j]]
		if pi != pj {
			return pi < pj
		}
		return names[i] < names[j]
	})

	return &Result{
		Target:             target.Name,
		Best:               names[0],
		Ranking:            names,
		PredictedLatencyMS: predicted,
		ObservedLatencyMS:  pred.ObservedLatencyMS,
		OnlineRuns:         pred.OnlineRuns,
		Converged:          pred.Converged,
	}, nil
}

// ExhaustiveBest profiles the target on every catalog VM and returns the
// name and value of the lowest P90 latency — the brute-force ground truth
// for the extension's evaluation (the latency analogue of the paper's
// exhaustive "best" definition in Section 5.2).
func ExhaustiveBest(s *sim.Simulator, target workload.App, catalog []cloud.VMType, seed uint64) (string, float64, error) {
	if !target.Demand.Streaming {
		return "", 0, fmt.Errorf("latency: %s is a batch workload", target.Name)
	}
	bestVM, bestLat := "", math.Inf(1)
	for _, vm := range catalog {
		p := s.ProfileRun(target, vm, seed)
		if p.P90LatencyMS < bestLat || (p.P90LatencyMS == bestLat && vm.Name < bestVM) {
			bestVM, bestLat = vm.Name, p.P90LatencyMS
		}
	}
	return bestVM, bestLat, nil
}
