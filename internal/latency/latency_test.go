package latency

import (
	"math"
	"testing"

	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

var catalog = cloud.Catalog120()

func trained(t *testing.T) (*core.System, *oracle.Meter) {
	t.Helper()
	s := sim.New(sim.DefaultConfig())
	meter := oracle.NewMeter(s, 1)
	sys, err := core.New(core.Config{Seed: 1}, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainOffline(workload.BySet(workload.SourceTraining), meter); err != nil {
		t.Fatal(err)
	}
	return sys, meter
}

func streamingApp(t *testing.T) workload.App {
	t.Helper()
	a, err := workload.ByName("Hadoop-twitter")
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSimEmitsStreamingMetrics(t *testing.T) {
	s := sim.New(sim.Config{Repeats: 3})
	vm, _ := cloud.Find(catalog, "m5.xlarge")
	p := s.ProfileRun(streamingApp(t), vm, 1)
	if p.P90LatencyMS <= 0 {
		t.Fatalf("streaming latency = %v", p.P90LatencyMS)
	}
	if p.ThroughputMBps <= 0 {
		t.Fatalf("streaming throughput = %v", p.ThroughputMBps)
	}
	batch, _ := workload.ByName("Spark-sort")
	pb := s.ProfileRun(batch, vm, 1)
	if pb.P90LatencyMS != 0 || pb.ThroughputMBps != 0 {
		t.Fatal("batch workload reported streaming metrics")
	}
}

func TestLatencyImprovesWithResources(t *testing.T) {
	// More network + CPU capacity must reduce streaming latency.
	s := sim.New(sim.Config{Repeats: 3})
	small, _ := cloud.Find(catalog, "m5.large")
	big, _ := cloud.Find(catalog, "m5n.4xlarge")
	app := streamingApp(t)
	lSmall := s.ProfileRun(app, small, 1).P90LatencyMS
	lBig := s.ProfileRun(app, big, 1).P90LatencyMS
	if lBig >= lSmall {
		t.Fatalf("latency on m5n.4xlarge (%v) not below m5.large (%v)", lBig, lSmall)
	}
}

func TestSelectRejectsBatch(t *testing.T) {
	sys, meter := trained(t)
	batch, _ := workload.ByName("Spark-lr")
	if _, err := Select(sys, batch, meter); err == nil {
		t.Fatal("batch workload accepted by latency selector")
	}
}

func TestSelectBasics(t *testing.T) {
	sys, meter := trained(t)
	meter.Reset()
	res, err := Select(sys, streamingApp(t), meter)
	if err != nil {
		t.Fatal(err)
	}
	if res.OnlineRuns != 4 || meter.Runs() != 4 {
		t.Fatalf("online runs = %d/%d, want 4", res.OnlineRuns, meter.Runs())
	}
	if len(res.Ranking) != len(catalog) {
		t.Fatalf("ranking size %d", len(res.Ranking))
	}
	if res.Ranking[0] != res.Best {
		t.Fatal("best not first in ranking")
	}
	// Ranking ascending by predicted latency.
	for i := 1; i < len(res.Ranking); i++ {
		if res.PredictedLatencyMS[res.Ranking[i]] < res.PredictedLatencyMS[res.Ranking[i-1]] {
			t.Fatal("ranking not ascending")
		}
	}
	// Observed VMs pinned to measurements.
	for vm, lat := range res.ObservedLatencyMS {
		if lat > 0 && res.PredictedLatencyMS[vm] != lat {
			t.Fatalf("observed %s predicted %v, measured %v", vm, res.PredictedLatencyMS[vm], lat)
		}
	}
}

func TestSelectQuality(t *testing.T) {
	// The latency pick must land within 2.5x of the exhaustive optimum —
	// far better than the median VM.
	sys, meter := trained(t)
	app := streamingApp(t)
	res, err := Select(sys, app, meter)
	if err != nil {
		t.Fatal(err)
	}
	_, bestLat, err := ExhaustiveBest(meter.Sim, app, catalog, 999)
	if err != nil {
		t.Fatal(err)
	}
	pickedLat := meter.Sim.ProfileRun(app, mustVM(t, res.Best), 999).P90LatencyMS
	if pickedLat > 2.5*bestLat {
		t.Fatalf("picked %s at %.1f ms vs optimum %.1f ms", res.Best, pickedLat, bestLat)
	}
	// And better than the median of the catalog.
	var all []float64
	for _, vm := range catalog {
		all = append(all, meter.Sim.ProfileRun(app, vm, 999).P90LatencyMS)
	}
	median := medianOf(all)
	if pickedLat >= median {
		t.Fatalf("picked latency %.1f ms not below catalog median %.1f ms", pickedLat, median)
	}
}

func TestExhaustiveBestRejectsBatch(t *testing.T) {
	batch, _ := workload.ByName("Spark-lr")
	if _, _, err := ExhaustiveBest(sim.New(sim.Config{Repeats: 2}), batch, catalog, 1); err == nil {
		t.Fatal("batch accepted by ExhaustiveBest")
	}
}

func mustVM(t *testing.T, name string) cloud.VMType {
	t.Helper()
	vm, err := cloud.Find(catalog, name)
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func medianOf(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	if math.IsNaN(cp[len(cp)/2]) {
		return 0
	}
	return cp[len(cp)/2]
}
