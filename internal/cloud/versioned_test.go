package cloud

import (
	"math"
	"strings"
	"testing"

	"vesta/internal/chaos"
)

// allCatalogs enumerates every built-in catalog the invariant tests sweep.
func allCatalogs() map[string][]VMType {
	return map[string][]VMType{
		"ec2-100":    Catalog(),
		"ec2-120":    Catalog120(),
		"azure":      AzureCatalog(),
		"gcp":        GCPCatalog(),
		"multicloud": MultiCloud(),
	}
}

// checkInvariants asserts the catalog invariants every consumer depends on:
// Validate passes, names are unique, prices are positive and finite, spot
// tiers are coherent, and every resource-vector component is finite.
func checkInvariants(t *testing.T, label string, types []VMType) {
	t.Helper()
	if err := Validate(types); err != nil {
		t.Fatalf("%s: Validate: %v", label, err)
	}
	seen := make(map[string]bool, len(types))
	for _, v := range types {
		if seen[v.Name] {
			t.Fatalf("%s: duplicate name %q", label, v.Name)
		}
		seen[v.Name] = true
		if !(v.PriceHour > 0) || math.IsInf(v.PriceHour, 0) {
			t.Fatalf("%s: %s: price %v", label, v.Name, v.PriceHour)
		}
		if v.SpotPriceHour < 0 || v.SpotPriceHour > v.PriceHour {
			t.Fatalf("%s: %s: spot %v vs on-demand %v", label, v.Name, v.SpotPriceHour, v.PriceHour)
		}
		if v.SpotPriceHour == 0 && v.SpotEvictRate != 0 {
			t.Fatalf("%s: %s: eviction rate %v without a spot tier", label, v.Name, v.SpotEvictRate)
		}
		for i, x := range v.ResourceVector() {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("%s: %s: resource vector[%d] = %v", label, v.Name, i, x)
			}
		}
	}
}

func TestCatalogInvariantsAcrossProviders(t *testing.T) {
	for label, types := range allCatalogs() {
		checkInvariants(t, label, types)
	}
}

// TestCatalogPricingRound4 pins the pricing contract of the generated tables:
// every on-demand and spot price is exactly representable at 4 decimal
// places (round4 in catalog.go is idempotent on its own output). A failure
// here means a generator edit leaked an unrounded price into the catalog.
func TestCatalogPricingRound4(t *testing.T) {
	round4 := func(x float64) float64 { return math.Round(x*1e4) / 1e4 }
	for label, types := range allCatalogs() {
		for _, v := range types {
			if got := round4(v.PriceHour); got != v.PriceHour {
				t.Errorf("%s: %s: PriceHour %v not round4-stable (%v)", label, v.Name, v.PriceHour, got)
			}
			if got := round4(v.SpotPriceHour); got != v.SpotPriceHour {
				t.Errorf("%s: %s: SpotPriceHour %v not round4-stable (%v)", label, v.Name, v.SpotPriceHour, got)
			}
		}
	}
}

func TestCatalogProviderLabelsAndSpotShape(t *testing.T) {
	specs := map[string]providerSpec{
		ProviderAzure: azureSpec,
		ProviderGCP:   gcpSpec,
	}
	for provider, catalog := range map[string][]VMType{
		ProviderAzure: AzureCatalog(),
		ProviderGCP:   GCPCatalog(),
	} {
		spec := specs[provider]
		for _, v := range catalog {
			if v.Provider != provider {
				t.Fatalf("%s catalog: %s labeled %q", provider, v.Name, v.Provider)
			}
			if v.Burstable {
				if v.HasSpot() {
					t.Fatalf("%s: burstable %s has a spot tier", provider, v.Name)
				}
				continue
			}
			if !v.HasSpot() {
				t.Fatalf("%s: non-burstable %s has no spot tier", provider, v.Name)
			}
			want := math.Round(v.PriceHour*(1-spec.spotDiscount)*1e4) / 1e4
			if v.SpotPriceHour != want {
				t.Fatalf("%s: %s spot %v, want %v (discount %v)",
					provider, v.Name, v.SpotPriceHour, want, spec.spotDiscount)
			}
			if v.SpotEvictRate != spec.spotEvictRate {
				t.Fatalf("%s: %s evict rate %v, want %v", provider, v.Name, v.SpotEvictRate, spec.spotEvictRate)
			}
		}
	}
}

func TestCatalogMultiCloudComposition(t *testing.T) {
	multi := MultiCloud()
	if want := len(Catalog120()) + len(AzureCatalog()) + len(GCPCatalog()); len(multi) != want {
		t.Fatalf("MultiCloud has %d types, want %d", len(multi), want)
	}
	for provider, want := range map[string]int{
		ProviderEC2:   len(Catalog120()),
		ProviderAzure: len(AzureCatalog()),
		ProviderGCP:   len(GCPCatalog()),
	} {
		if got := len(FilterProvider(multi, provider)); got != want {
			t.Fatalf("FilterProvider(%s) = %d types, want %d", provider, got, want)
		}
	}
	// Legacy literals carry Provider "" and must be treated as EC2.
	legacy := []VMType{{Name: "m5.xlarge"}}
	if got := FilterProvider(legacy, ProviderEC2); len(got) != 1 {
		t.Fatalf("FilterProvider did not normalize empty provider to ec2: %v", got)
	}
	if got := Providers(multi); len(got) != 3 {
		t.Fatalf("Providers(MultiCloud) = %v", got)
	}
}

func TestPreemptionRates(t *testing.T) {
	spot := VMType{Name: "x", SpotPriceHour: 0.1, SpotEvictRate: 0.05}
	got := spot.PreemptionRates(2).SpotPreemption
	want := 1 - math.Exp(-0.05*2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("PreemptionRates(2) = %v, want %v", got, want)
	}
	if r := spot.PreemptionRates(0); r.SpotPreemption != 0 {
		t.Fatalf("zero run hours: %v", r)
	}
	onDemand := VMType{Name: "y"}
	if r := onDemand.PreemptionRates(10); r != (chaos.Rates{}) {
		t.Fatalf("no-spot type yields %v, want zero rates", r)
	}
}

// TestCatalogVersionedApplySequence drives a realistic multi-step evolution —
// retire, reprice, spot change, cross-provider add — asserting after every
// step that the version increments, the invariants hold, and Find/Types agree
// with each other and with the update's intent.
func TestCatalogVersionedApplySequence(t *testing.T) {
	base, err := NewVersioned(Catalog120())
	if err != nil {
		t.Fatal(err)
	}
	if base.Version() != 0 || base.Len() != 120 {
		t.Fatalf("base version=%d len=%d", base.Version(), base.Len())
	}

	updates := []Update{
		{Note: "retire C4 xlarge tier", Retire: []string{"c4.xlarge"}},
		{Note: "reprice m5.xlarge", Reprice: map[string]float64{"m5.xlarge": 0.2345}},
		{Note: "deepen m5.xlarge spot discount", Spot: map[string]SpotTier{
			"m5.xlarge": {PriceHour: 0.05, EvictRate: 0.2},
		}},
		{Note: "clear c5.large spot tier", Spot: map[string]SpotTier{"c5.large": {}}},
		{Note: "add azure catalog", Add: AzureCatalog()},
		{Note: "mixed", Retire: []string{"t3.small"},
			Reprice: map[string]float64{"dv5.large": 0.1111},
			Add:     GCPCatalog()},
	}
	cur := base
	wantLen := base.Len()
	for i, u := range updates {
		next, err := cur.Apply(u)
		if err != nil {
			t.Fatalf("update %d (%s): %v", i, u.Note, err)
		}
		if next.Version() != uint64(i+1) {
			t.Fatalf("update %d: version %d, want %d", i, next.Version(), i+1)
		}
		// The receiver is immutable: the prior version keeps its length.
		if cur.Len() != wantLen {
			t.Fatalf("update %d mutated its receiver: len %d, want %d", i, cur.Len(), wantLen)
		}
		wantLen += len(u.Add) - len(u.Retire)
		if next.Len() != wantLen {
			t.Fatalf("update %d: len %d, want %d", i, next.Len(), wantLen)
		}
		checkInvariants(t, u.Note, next.Types())
		// Find agrees with Types at every version.
		for _, v := range next.Types() {
			got, ok := next.Find(v.Name)
			if !ok || got.Name != v.Name || got.PriceHour != v.PriceHour {
				t.Fatalf("update %d: Find(%q) = %+v ok=%v, Types has %+v", i, v.Name, got, ok, v)
			}
		}
		for _, name := range u.Retire {
			if _, ok := next.Find(name); ok {
				t.Fatalf("update %d: retired %q still present", i, name)
			}
			if _, ok := cur.Find(name); !ok {
				t.Fatalf("update %d: %q missing from the prior version", i, name)
			}
		}
		for name, price := range u.Reprice {
			v, ok := next.Find(name)
			if !ok || v.PriceHour != price {
				t.Fatalf("update %d: reprice %q → %v, got %+v ok=%v", i, name, price, v, ok)
			}
		}
		for name, tier := range u.Spot {
			v, _ := next.Find(name)
			if v.SpotPriceHour != tier.PriceHour || v.SpotEvictRate != tier.EvictRate {
				t.Fatalf("update %d: spot %q → %+v, got spot=%v evict=%v",
					i, name, tier, v.SpotPriceHour, v.SpotEvictRate)
			}
		}
		cur = next
	}
	// Survivors keep their original positions; additions append in order.
	types := cur.Types()
	if types[0].Name != "t3.medium" { // t3.small retired; t3.medium is the first survivor
		t.Fatalf("first survivor is %q", types[0].Name)
	}
	if last := types[len(types)-1]; last.Provider != ProviderGCP {
		t.Fatalf("last type %q provider %q, want gcp append at the tail", last.Name, last.Provider)
	}
}

func TestCatalogVersionedApplyErrors(t *testing.T) {
	base, err := NewVersioned(Catalog120())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		up   Update
		want string
	}{
		{"empty", Update{}, "empty catalog update"},
		{"retire unknown", Update{Retire: []string{"nope.large"}}, "not in catalog"},
		{"retire twice", Update{Retire: []string{"m5.xlarge", "m5.xlarge"}}, "listed twice"},
		{"reprice unknown", Update{Reprice: map[string]float64{"nope.large": 1}}, "not in catalog"},
		{"reprice retired", Update{Retire: []string{"m5.xlarge"},
			Reprice: map[string]float64{"m5.xlarge": 1}}, "not in catalog"},
		{"reprice zero", Update{Reprice: map[string]float64{"m5.xlarge": 0}}, "invalid price"},
		{"reprice NaN", Update{Reprice: map[string]float64{"m5.xlarge": math.NaN()}}, "invalid price"},
		{"reprice +Inf", Update{Reprice: map[string]float64{"m5.xlarge": math.Inf(1)}}, "invalid price"},
		{"spot unknown", Update{Spot: map[string]SpotTier{"nope.large": {PriceHour: 1}}}, "not in catalog"},
		{"spot above on-demand", Update{Spot: map[string]SpotTier{
			"m5.xlarge": {PriceHour: 1e6}}}, "above on-demand"},
		{"spot negative evict", Update{Spot: map[string]SpotTier{
			"m5.xlarge": {PriceHour: 0.01, EvictRate: -1}}}, "eviction rate"},
		{"add duplicate", Update{Add: []VMType{{Name: "m5.xlarge", VCPUs: 4, PriceHour: 1}}},
			"already in catalog"},
		{"add invalid", Update{Add: []VMType{{Name: "bad.large", VCPUs: 0, PriceHour: 1}}},
			"invalid vCPU count"},
	}
	for _, tc := range cases {
		next, err := base.Apply(tc.up)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err=%v, want substring %q", tc.name, err, tc.want)
		}
		if next != nil {
			t.Errorf("%s: non-nil catalog on error", tc.name)
		}
		if base.Version() != 0 || base.Len() != 120 {
			t.Fatalf("%s: failed Apply mutated the receiver", tc.name)
		}
	}
	// Retiring everything empties the catalog, which Validate rejects.
	one, err := NewVersioned([]VMType{{Name: "solo.large", VCPUs: 2, PriceHour: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := one.Apply(Update{Retire: []string{"solo.large"}}); err == nil ||
		!strings.Contains(err.Error(), "empty catalog") {
		t.Fatalf("retire-all: %v", err)
	}
}

func TestCatalogVersionedAtRejectsInvalid(t *testing.T) {
	if _, err := VersionedAt(nil, 3); err == nil {
		t.Fatal("nil catalog accepted")
	}
	dup := []VMType{
		{Name: "a.large", VCPUs: 2, PriceHour: 0.1},
		{Name: "a.large", VCPUs: 4, PriceHour: 0.2},
	}
	if _, err := VersionedAt(dup, 1); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate names: %v", err)
	}
	ok, err := VersionedAt(Catalog120(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if ok.Version() != 7 {
		t.Fatalf("version %d, want 7", ok.Version())
	}
}

// TestCatalogVersionedTypesIsACopy guards the immutability contract: mutating
// the slice Types returns must not reach the catalog.
func TestCatalogVersionedTypesIsACopy(t *testing.T) {
	c, err := NewVersioned(Catalog120())
	if err != nil {
		t.Fatal(err)
	}
	got := c.Types()
	got[0].PriceHour = 99
	got[0].Name = "mutated"
	if v, ok := c.Find("t3.small"); !ok || v.PriceHour == 99 {
		t.Fatalf("Types leaked internal storage: %+v ok=%v", v, ok)
	}
}
