// Heterogeneous provider catalogs. The paper evaluates against a single
// frozen EC2 table; production selection spans clouds whose CPU:mem:disk:net
// ratio coverage differs materially (Poggi et al., *Characterizing BigBench
// queries, Hive, and Spark in multi-cloud environments* — see PAPERS.md).
// This file synthesizes Azure- and GCP-like catalogs with the same generator
// the EC2 table uses, but with deliberately different coverage:
//
//   - The Azure-like catalog has no 2 GiB/vCPU compute line below Fv2, a
//     much deeper memory ladder (the M family at 28 GiB/vCPU, far past
//     EC2's X1 at 15.25), and a denser storage tier.
//   - The GCP-like catalog's compute-optimized line (C2) keeps 4 GiB/vCPU —
//     twice EC2's C5 ratio — while its memory families sit between R5 and
//     X1, and its preemptible tier is the cheapest and most volatile.
//
// Spot markets also differ per provider: discount depth and eviction rate
// are set on every non-burstable type (see providerSpec), and feed the chaos
// preemption plans through VMType.PreemptionRates.
package cloud

// azureSpec models Azure spot: ~60% off pay-as-you-go with a higher
// eviction rate than EC2.
var azureSpec = providerSpec{provider: ProviderAzure, spotDiscount: 0.60, spotEvictRate: 0.08}

// gcpSpec models GCP preemptible VMs: the deepest discount (~75%) and the
// highest churn (24h max lifetime folded into the hourly rate).
var gcpSpec = providerSpec{provider: ProviderGCP, spotDiscount: 0.75, spotEvictRate: 0.12}

// azureFamilies is the Azure-like catalog: 9 families x 5 sizes = 45 types.
var azureFamilies = []familySpec{
	// General Purpose.
	{"Bs", GeneralPurpose, 4, 0.80, 35, 0.8, 0.0095, true, false, smallLadder},
	{"Dv5", GeneralPurpose, 4, 0.97, 55, 2.0, 0.0440, false, false, largeLadder},
	{"Dav4", GeneralPurpose, 4, 0.88, 50, 1.75, 0.0395, false, false, largeLadder},
	// Compute Optimized.
	{"Fv2", ComputeOptimized, 2, 1.10, 55, 2.2, 0.0390, false, false, largeLadder},
	// Memory Optimized — Azure's coverage reaches far past EC2's X1 ratio.
	{"Ev5", MemoryOptimized, 8, 0.97, 55, 2.0, 0.0580, false, false, largeLadder},
	{"Ebsv5", MemoryOptimized, 8, 0.97, 150, 2.5, 0.0640, false, false, largeLadder},
	{"M", MemoryOptimized, 28, 0.85, 70, 2.5, 0.1550, false, false, largeLadder},
	// Storage Optimized.
	{"Lsv3", StorageOptimized, 8, 1.00, 600, 3.2, 0.0990, false, false, largeLadder},
	// Accelerated Computing.
	{"NCv3", AcceleratedComputing, 6, 0.95, 60, 2.5, 0.3060, false, true, largeLadder},
}

// gcpFamilies is the GCP-like catalog: 10 families x 5 sizes = 50 types.
var gcpFamilies = []familySpec{
	// General Purpose.
	{"E2", GeneralPurpose, 4, 0.85, 45, 1.4, 0.0335, true, false, smallLadder},
	{"N2", GeneralPurpose, 4, 1.02, 60, 2.3, 0.0485, false, false, largeLadder},
	{"N2d", GeneralPurpose, 4, 0.93, 60, 2.3, 0.0422, false, false, largeLadder},
	{"T2d", GeneralPurpose, 4, 0.98, 55, 2.0, 0.0380, false, false, smallLadder},
	// Compute Optimized — C2 keeps 4 GiB/vCPU, twice the EC2 C5 ratio.
	{"C2", ComputeOptimized, 4, 1.15, 65, 3.1, 0.0522, false, false, largeLadder},
	{"C2d", ComputeOptimized, 2, 1.08, 70, 3.1, 0.0455, false, false, largeLadder},
	// Memory Optimized.
	{"M1", MemoryOptimized, 14.9, 0.90, 75, 2.8, 0.1180, false, false, largeLadder},
	{"M2", MemoryOptimized, 11.8, 0.92, 70, 2.8, 0.0985, false, false, largeLadder},
	// Storage Optimized.
	{"Z3", StorageOptimized, 8, 1.05, 700, 4.0, 0.1120, false, false, largeLadder},
	// Accelerated Computing.
	{"A2", AcceleratedComputing, 6.3, 1.00, 80, 3.0, 0.2470, false, true, g4Ladder},
}

// buildProviderCatalog generates one provider's full catalog.
func buildProviderCatalog(p providerSpec, families []familySpec) []VMType {
	var out []VMType
	for _, f := range families {
		for _, size := range f.sizes {
			out = append(out, buildTypeFor(p, f, size))
		}
	}
	return out
}

// AzureCatalog returns the Azure-like catalog (45 types).
func AzureCatalog() []VMType { return buildProviderCatalog(azureSpec, azureFamilies) }

// GCPCatalog returns the GCP-like catalog (50 types).
func GCPCatalog() []VMType { return buildProviderCatalog(gcpSpec, gcpFamilies) }

// MultiCloud returns the union of all provider catalogs: the 120-type EC2
// table every experiment trains on, plus the Azure- and GCP-like catalogs
// (215 types). Names are globally unique across providers.
func MultiCloud() []VMType {
	out := Catalog120()
	out = append(out, AzureCatalog()...)
	out = append(out, GCPCatalog()...)
	return out
}

// FilterProvider returns the catalog entries of the given provider. The
// empty provider on a type is EC2 by convention, so FilterProvider(c,
// ProviderEC2) also matches legacy entries with no provider set.
func FilterProvider(catalog []VMType, provider string) []VMType {
	var out []VMType
	for _, v := range catalog {
		p := v.Provider
		if p == "" {
			p = ProviderEC2
		}
		if p == provider {
			out = append(out, v)
		}
	}
	return out
}

// Providers returns the distinct provider names in catalog order (empty
// normalized to ProviderEC2).
func Providers(catalog []VMType) []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range catalog {
		p := v.Provider
		if p == "" {
			p = ProviderEC2
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
