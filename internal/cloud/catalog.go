// Package cloud models the public-cloud substrate of the paper: the catalog
// of VM types used in the Amazon EC2 evaluation (Table 4), with the resource
// vectors (vCPUs, memory, disk bandwidth, network bandwidth) and hourly
// prices that Vesta's selection problem depends on.
//
// Substitution note (see DESIGN.md): the paper profiles real EC2 instances.
// We cannot; instead this package synthesizes a catalog with exactly the
// family/size structure of Table 4 and resource/price values modeled on
// 2020-era published EC2 specifications. Vesta and its baselines only consume
// the *relative* resource ratios and prices across the catalog — which this
// catalog preserves (burstable vs general vs compute- vs memory- vs
// storage-optimized families, n-suffix network variants, d-suffix local NVMe
// variants, GPU price premiums) — so the selection landscape has the same
// shape as the paper's.
package cloud

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"vesta/internal/chaos"
)

// Category is the EC2 instance category from Table 4.
type Category string

// The five categories of Table 4.
const (
	GeneralPurpose       Category = "General Purpose"
	ComputeOptimized     Category = "Compute Optimized"
	MemoryOptimized      Category = "Memory Optimized"
	AcceleratedComputing Category = "Accelerated Computing"
	StorageOptimized     Category = "Storage Optimized"
)

// Provider names for the heterogeneous catalogs (providers.go). The zero
// value on legacy VMType literals means "unspecified" and is treated as EC2
// by convention — the paper's evaluation substrate.
const (
	ProviderEC2   = "ec2"
	ProviderAzure = "azure"
	ProviderGCP   = "gcp"
)

// VMType describes one rentable VM configuration. The JSON tags pin the
// serialization used by versioned-catalog WAL records and snapshot
// checkpoints (internal/wal, core's snapshot codec).
type VMType struct {
	Name        string   `json:"name"`     // e.g. "m5.xlarge"
	Provider    string   `json:"provider"` // ProviderEC2/Azure/GCP ("" = EC2 legacy)
	Family      string   `json:"family"`   // e.g. "M5"
	Size        string   `json:"size"`     // e.g. "xlarge"
	Category    Category `json:"category"` // Table 4 category
	VCPUs       int      `json:"vcpus"`
	MemoryGiB   float64  `json:"memory_gib"`
	CPUFactor   float64  `json:"cpu_factor"` // per-core relative speed; 1.0 = M5 baseline
	DiskMBps    float64  `json:"disk_mbps"`  // aggregate storage bandwidth
	NetworkGbps float64  `json:"network_gbps"`
	PriceHour   float64  `json:"price_hour"`          // USD per hour, on-demand
	Burstable   bool     `json:"burstable,omitempty"` // T-family: sustained CPU below nominal
	GPU         bool     `json:"gpu,omitempty"`       // accelerated-computing premium hardware
	// SpotPriceHour is the spot/preemptible price tier; 0 means the type has
	// no spot market. SpotEvictRate is the expected evictions per running
	// hour at that tier — the parameter PreemptionRates converts into the
	// chaos plan's per-run preemption probability.
	SpotPriceHour float64 `json:"spot_price_hour,omitempty"`
	SpotEvictRate float64 `json:"spot_evict_rate,omitempty"`
}

// HasSpot reports whether the type offers a spot/preemptible tier.
func (v VMType) HasSpot() bool { return v.SpotPriceHour > 0 }

// PreemptionRates converts the type's spot eviction rate into the fault
// rates of a chaos preemption plan for runs of the given expected length:
// evictions arrive as a Poisson process at SpotEvictRate per hour, so the
// probability a run of runHours is preempted is 1 - exp(-rate*hours). Types
// without a spot tier yield the zero Rates (no injected preemptions).
func (v VMType) PreemptionRates(runHours float64) chaos.Rates {
	if !v.HasSpot() || runHours <= 0 {
		return chaos.Rates{}
	}
	return chaos.Rates{SpotPreemption: 1 - math.Exp(-v.SpotEvictRate*runHours)}
}

// MemPerVCPU returns the GiB-per-vCPU ratio, the axis the paper's Figure 1
// heat maps vary (CPU-to-memory shape of the best-VM region).
func (v VMType) MemPerVCPU() float64 {
	if v.VCPUs == 0 {
		return 0
	}
	return v.MemoryGiB / float64(v.VCPUs)
}

// String implements fmt.Stringer.
func (v VMType) String() string {
	return fmt.Sprintf("%s (%d vCPU, %.0f GiB, %.0f MB/s disk, %.1f Gbps, $%.3f/h)",
		v.Name, v.VCPUs, v.MemoryGiB, v.DiskMBps, v.NetworkGbps, v.PriceHour)
}

// familySpec captures the per-family parameters the synthetic catalog is
// generated from.
type familySpec struct {
	name        string
	category    Category
	memRatio    float64 // GiB per vCPU at xlarge and above
	cpuFactor   float64 // relative per-core speed
	diskPerCPU  float64 // MB/s of storage bandwidth per vCPU
	netBaseGbps float64 // network bandwidth of the "large" size
	pricePerCPU float64 // USD per vCPU-hour
	burstable   bool
	gpu         bool
	sizes       []string // the sizes printed in Table 4
}

// Size ladders from Table 4. smallLadder is used by burstable/entry families;
// largeLadder by everything else; g4Ladder matches the G4 row.
var (
	smallLadder = []string{"small", "medium", "large", "xlarge", "2xlarge"}
	largeLadder = []string{"large", "xlarge", "2xlarge", "4xlarge", "8xlarge"}
	g4Ladder    = []string{"large", "2xlarge", "4xlarge", "8xlarge", "16xlarge"}
)

// families reproduces Table 4 row by row.
var families = []familySpec{
	// General Purpose.
	{"T3", GeneralPurpose, 4, 0.92, 40, 1.0, 0.0104, true, false, smallLadder},
	{"T3a", GeneralPurpose, 4, 0.86, 40, 1.0, 0.0094, true, false, smallLadder},
	{"M5", GeneralPurpose, 4, 1.00, 60, 2.5, 0.0480, false, false, largeLadder},
	{"M5a", GeneralPurpose, 4, 0.90, 55, 2.0, 0.0430, false, false, largeLadder},
	{"M5n", GeneralPurpose, 4, 1.00, 60, 6.25, 0.0595, false, false, largeLadder},
	// Compute Optimized.
	{"C4", ComputeOptimized, 1.875, 1.02, 50, 1.5, 0.0500, false, false, largeLadder},
	{"C5", ComputeOptimized, 2, 1.12, 60, 2.5, 0.0425, false, false, largeLadder},
	{"C5n", ComputeOptimized, 2.625, 1.12, 60, 12.5, 0.0540, false, false, largeLadder},
	{"C5d", ComputeOptimized, 2, 1.12, 160, 2.5, 0.0480, false, false, largeLadder},
	{"C4n", ComputeOptimized, 2, 1.02, 50, 5.0, 0.0465, false, false, smallLadder},
	// Memory Optimized.
	{"R4", MemoryOptimized, 7.625, 0.95, 55, 2.5, 0.0665, false, false, largeLadder},
	{"R5", MemoryOptimized, 8, 1.00, 60, 2.5, 0.0630, false, false, largeLadder},
	{"R5a", MemoryOptimized, 8, 0.90, 55, 2.0, 0.0565, false, false, largeLadder},
	{"R5n", MemoryOptimized, 8, 1.00, 60, 6.25, 0.0745, false, false, largeLadder},
	{"X1", MemoryOptimized, 15.25, 0.88, 70, 2.5, 0.1043, false, false, largeLadder},
	{"z1d", MemoryOptimized, 8, 1.30, 120, 2.5, 0.0930, false, false, largeLadder},
	// Accelerated Computing (GPU premium; Vesta's CPU workloads cannot use
	// the accelerator, so these types are priced-in but rarely "best").
	{"G3", AcceleratedComputing, 7.625, 0.95, 55, 2.5, 0.2850, false, true, largeLadder},
	{"G4", AcceleratedComputing, 4, 1.05, 90, 2.5, 0.1315, false, true, g4Ladder},
	// Storage Optimized.
	{"I3", StorageOptimized, 7.625, 0.95, 440, 2.5, 0.0780, false, false, largeLadder},
	{"I3en", StorageOptimized, 8, 1.00, 520, 6.25, 0.1130, false, false, largeLadder},
}

// extensionSize maps the last printed size of each ladder to one additional
// larger size, used by Catalog120 to reach the 120 types the paper's text
// claims (the printed table enumerates 100; see DESIGN.md).
var extensionSize = map[string]string{
	"2xlarge":  "4xlarge",
	"8xlarge":  "12xlarge",
	"16xlarge": "24xlarge",
}

// vcpusFor returns the vCPU count of a size on the standard EC2 ladder.
func vcpusFor(size string) int {
	switch size {
	case "small", "medium", "large":
		return 2
	case "xlarge":
		return 4
	case "2xlarge":
		return 8
	case "4xlarge":
		return 16
	case "8xlarge":
		return 32
	case "12xlarge":
		return 48
	case "16xlarge":
		return 64
	case "24xlarge":
		return 96
	}
	panic("cloud: unknown size " + size)
}

// memoryFor returns the memory of a size given the family GiB-per-vCPU ratio.
// The sub-large burstable sizes keep 2 vCPUs and scale memory down instead,
// matching the real T3 ladder (t3.small = 2 vCPU / 2 GiB at ratio 4).
func memoryFor(size string, ratio float64) float64 {
	switch size {
	case "small":
		return ratio / 2
	case "medium":
		return ratio
	}
	return float64(vcpusFor(size)) * ratio
}

// providerSpec carries the per-provider parameters shared by every family of
// one cloud: the provider label plus its spot market shape. spotDiscount is
// the fraction knocked off the on-demand price at the spot tier and
// spotEvictRate the expected evictions per running hour; burstable families
// have no spot tier on any provider.
type providerSpec struct {
	provider      string
	spotDiscount  float64
	spotEvictRate float64
}

// ec2Spec models the 2020-era EC2 spot market: ~68% off on-demand, with an
// interruption rate around one eviction per 20 running hours.
var ec2Spec = providerSpec{provider: ProviderEC2, spotDiscount: 0.68, spotEvictRate: 0.05}

func buildType(f familySpec, size string) VMType { return buildTypeFor(ec2Spec, f, size) }

func buildTypeFor(p providerSpec, f familySpec, size string) VMType {
	vcpus := vcpusFor(size)
	mem := memoryFor(size, f.memRatio)
	// Disk bandwidth scales linearly with vCPUs up to the 16-vCPU mark and
	// saturates beyond it (EBS/instance-store throughput ceilings on real
	// EC2); network scales sub-linearly (sqrt), mirroring the "up to N Gbps"
	// small-size behaviour.
	disk := f.diskPerCPU * math.Min(float64(vcpus), 16)
	net := f.netBaseGbps * math.Sqrt(float64(vcpus)/2)
	price := f.pricePerCPU * float64(vcpus)
	// The small size pays for its memory share rather than full vCPUs (it
	// keeps 2 vCPUs with half the memory; see memoryFor).
	if size == "small" {
		price *= 0.5
	}
	v := VMType{
		Name:        strings.ToLower(f.name) + "." + size,
		Provider:    p.provider,
		Family:      f.name,
		Size:        size,
		Category:    f.category,
		VCPUs:       vcpus,
		MemoryGiB:   mem,
		CPUFactor:   f.cpuFactor,
		DiskMBps:    disk,
		NetworkGbps: net,
		PriceHour:   round4(price),
		Burstable:   f.burstable,
		GPU:         f.gpu,
	}
	if !f.burstable && p.spotDiscount > 0 {
		v.SpotPriceHour = round4(v.PriceHour * (1 - p.spotDiscount))
		v.SpotEvictRate = p.spotEvictRate
	}
	return v
}

func round4(x float64) float64 { return math.Round(x*1e4) / 1e4 }

// Catalog returns the VM types exactly as printed in Table 4 of the paper:
// 20 families x 5 sizes = 100 types, ordered by category, family, size.
func Catalog() []VMType {
	var out []VMType
	for _, f := range families {
		for _, size := range f.sizes {
			out = append(out, buildType(f, size))
		}
	}
	return out
}

// Catalog120 returns the Table 4 catalog extended by one additional larger
// size per family (20 extra types), matching the "120 enterprise-level VM
// types" stated in the paper's text. This is the catalog every experiment in
// this repository uses.
func Catalog120() []VMType {
	var out []VMType
	for _, f := range families {
		for _, size := range f.sizes {
			out = append(out, buildType(f, size))
		}
		last := f.sizes[len(f.sizes)-1]
		ext, ok := extensionSize[last]
		if !ok {
			panic("cloud: no extension size for " + last)
		}
		out = append(out, buildType(f, ext))
	}
	return out
}

// ByName indexes a catalog by VM type name.
func ByName(catalog []VMType) map[string]VMType {
	m := make(map[string]VMType, len(catalog))
	for _, v := range catalog {
		m[v.Name] = v
	}
	return m
}

// Find returns the VM type with the given name from the catalog.
func Find(catalog []VMType, name string) (VMType, error) {
	for _, v := range catalog {
		if v.Name == name {
			return v, nil
		}
	}
	return VMType{}, fmt.Errorf("cloud: no VM type named %q in catalog", name)
}

// FilterCategory returns the catalog entries in the given category.
func FilterCategory(catalog []VMType, c Category) []VMType {
	var out []VMType
	for _, v := range catalog {
		if v.Category == c {
			out = append(out, v)
		}
	}
	return out
}

// FilterFamily returns the catalog entries of the given family.
func FilterFamily(catalog []VMType, family string) []VMType {
	var out []VMType
	for _, v := range catalog {
		if v.Family == family {
			out = append(out, v)
		}
	}
	return out
}

// Families returns the distinct family names in catalog order.
func Families(catalog []VMType) []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range catalog {
		if !seen[v.Family] {
			seen[v.Family] = true
			out = append(out, v.Family)
		}
	}
	return out
}

// SortByPrice returns a copy of the catalog sorted by ascending hourly price
// (name as tiebreaker, for determinism).
func SortByPrice(catalog []VMType) []VMType {
	out := append([]VMType(nil), catalog...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].PriceHour != out[j].PriceHour {
			return out[i].PriceHour < out[j].PriceHour
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ResourceVector returns the normalized feature vector used when VM types are
// placed in the label-VM layer of the bipartite graph: per-core speed, memory
// per vCPU, disk bandwidth per vCPU, network per vCPU, and log2 scale of the
// machine, all on comparable ranges.
func (v VMType) ResourceVector() []float64 {
	cpus := float64(v.VCPUs)
	return []float64{
		v.CPUFactor,
		v.MemPerVCPU() / 4,                      // 1.0 at the M5 ratio
		v.DiskMBps / cpus / 60,                  // 1.0 at the M5 disk ratio
		v.NetworkGbps / math.Sqrt(cpus/2) / 2.5, // 1.0 at the M5 net base
		math.Log2(cpus) / math.Log2(96),
	}
}

// TypicalTen returns the 10 "typical VM types" used by the paper's Figure 7
// experiment (one representative per family group, spanning all categories).
func TypicalTen(catalog []VMType) []VMType {
	names := []string{
		"t3.large", "m5.xlarge", "m5n.2xlarge", "c4.xlarge", "c5.2xlarge",
		"r4.xlarge", "r5.2xlarge", "z1d.xlarge", "i3.2xlarge", "g4.2xlarge",
	}
	out := make([]VMType, 0, len(names))
	for _, n := range names {
		v, err := Find(catalog, n)
		if err != nil {
			panic(err)
		}
		out = append(out, v)
	}
	return out
}
