package cloud

import (
	"strings"
	"testing"
)

func TestCatalogSize(t *testing.T) {
	if got := len(Catalog()); got != 100 {
		t.Fatalf("Catalog has %d types, want 100 (Table 4 as printed)", got)
	}
	if got := len(Catalog120()); got != 120 {
		t.Fatalf("Catalog120 has %d types, want 120 (paper text)", got)
	}
}

func TestCatalogUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, v := range Catalog120() {
		if seen[v.Name] {
			t.Fatalf("duplicate VM type name %q", v.Name)
		}
		seen[v.Name] = true
	}
}

func TestCatalogFamilies(t *testing.T) {
	fams := Families(Catalog120())
	if len(fams) != 20 {
		t.Fatalf("catalog has %d families, want 20", len(fams))
	}
	want := []string{"T3", "T3a", "M5", "M5a", "M5n", "C4", "C5", "C5n", "C5d",
		"C4n", "R4", "R5", "R5a", "R5n", "X1", "z1d", "G3", "G4", "I3", "I3en"}
	for i, f := range want {
		if fams[i] != f {
			t.Fatalf("family[%d] = %q, want %q", i, fams[i], f)
		}
	}
}

func TestCatalogCategories(t *testing.T) {
	counts := map[Category]int{}
	for _, v := range Catalog120() {
		counts[v.Category]++
	}
	// 6 sizes per family in Catalog120.
	want := map[Category]int{
		GeneralPurpose:       5 * 6,
		ComputeOptimized:     5 * 6,
		MemoryOptimized:      6 * 6,
		AcceleratedComputing: 2 * 6,
		StorageOptimized:     2 * 6,
	}
	for c, n := range want {
		if counts[c] != n {
			t.Fatalf("category %q has %d types, want %d", c, counts[c], n)
		}
	}
}

func TestKnownSpecs(t *testing.T) {
	cat := Catalog120()
	m5l, err := Find(cat, "m5.large")
	if err != nil {
		t.Fatal(err)
	}
	if m5l.VCPUs != 2 || m5l.MemoryGiB != 8 {
		t.Fatalf("m5.large = %d vCPU / %v GiB, want 2/8", m5l.VCPUs, m5l.MemoryGiB)
	}
	if m5l.PriceHour != 0.096 {
		t.Fatalf("m5.large price = %v, want 0.096", m5l.PriceHour)
	}
	t3s, _ := Find(cat, "t3.small")
	if t3s.VCPUs != 2 || t3s.MemoryGiB != 2 || !t3s.Burstable {
		t.Fatalf("t3.small = %+v", t3s)
	}
	r5x, _ := Find(cat, "r5.xlarge")
	if r5x.MemPerVCPU() != 8 {
		t.Fatalf("r5.xlarge mem ratio = %v, want 8", r5x.MemPerVCPU())
	}
	c5x, _ := Find(cat, "c5.xlarge")
	if c5x.MemPerVCPU() != 2 {
		t.Fatalf("c5.xlarge mem ratio = %v, want 2", c5x.MemPerVCPU())
	}
}

func TestCategoryResourceShape(t *testing.T) {
	cat := Catalog120()
	// Memory-optimized families must have higher mem/vCPU than compute ones.
	var memAvg, cpuAvg float64
	var nm, nc int
	for _, v := range cat {
		switch v.Category {
		case MemoryOptimized:
			memAvg += v.MemPerVCPU()
			nm++
		case ComputeOptimized:
			cpuAvg += v.MemPerVCPU()
			nc++
		}
	}
	memAvg /= float64(nm)
	cpuAvg /= float64(nc)
	if memAvg <= 2*cpuAvg {
		t.Fatalf("memory-optimized ratio %v not clearly above compute-optimized %v", memAvg, cpuAvg)
	}
	// Storage-optimized types must dominate the disk bandwidth of their
	// size peers in every other category.
	for _, v := range FilterCategory(cat, StorageOptimized) {
		for _, w := range cat {
			if w.Category != StorageOptimized && w.Size == v.Size && w.DiskMBps >= v.DiskMBps {
				t.Fatalf("%s (%v MB/s) not above %s (%v MB/s)", v.Name, v.DiskMBps, w.Name, w.DiskMBps)
			}
		}
	}
}

func TestPricesPositiveAndMonotoneInSize(t *testing.T) {
	cat := Catalog120()
	for _, v := range cat {
		if v.PriceHour <= 0 {
			t.Fatalf("%s price %v not positive", v.Name, v.PriceHour)
		}
		if v.VCPUs <= 0 || v.MemoryGiB <= 0 || v.DiskMBps <= 0 || v.NetworkGbps <= 0 {
			t.Fatalf("%s has non-positive resources: %+v", v.Name, v)
		}
	}
	for _, fam := range Families(cat) {
		types := FilterFamily(cat, fam)
		for i := 1; i < len(types); i++ {
			if types[i].PriceHour < types[i-1].PriceHour {
				t.Fatalf("family %s price not monotone: %s ($%v) after %s ($%v)",
					fam, types[i].Name, types[i].PriceHour, types[i-1].Name, types[i-1].PriceHour)
			}
		}
	}
}

func TestGPUFamiliesPremium(t *testing.T) {
	cat := Catalog120()
	g3, _ := Find(cat, "g3.xlarge")
	m5, _ := Find(cat, "m5.xlarge")
	if !g3.GPU || g3.PriceHour <= 2*m5.PriceHour {
		t.Fatalf("g3.xlarge ($%v) should carry a large premium over m5.xlarge ($%v)", g3.PriceHour, m5.PriceHour)
	}
}

func TestFindErrors(t *testing.T) {
	if _, err := Find(Catalog(), "nope.large"); err == nil {
		t.Fatal("Find of unknown type should error")
	}
	if !strings.Contains(Find2Err().Error(), "no VM type") {
		t.Fatal("error message should mention the missing type")
	}
}

// Find2Err is a tiny helper so the error-path formatting stays covered.
func Find2Err() error {
	_, err := Find(Catalog(), "bogus.type")
	return err
}

func TestByName(t *testing.T) {
	idx := ByName(Catalog120())
	if len(idx) != 120 {
		t.Fatalf("ByName has %d entries", len(idx))
	}
	if idx["c5.large"].Family != "C5" {
		t.Fatal("ByName lookup wrong")
	}
}

func TestSortByPrice(t *testing.T) {
	sorted := SortByPrice(Catalog120())
	for i := 1; i < len(sorted); i++ {
		if sorted[i].PriceHour < sorted[i-1].PriceHour {
			t.Fatal("SortByPrice not sorted")
		}
	}
	// Original must be untouched (first entry of Catalog120 is t3.small).
	if Catalog120()[0].Name != "t3.small" {
		t.Fatal("SortByPrice mutated the source ordering assumption")
	}
}

func TestResourceVectorNormalization(t *testing.T) {
	cat := Catalog120()
	m5x, _ := Find(cat, "m5.xlarge")
	rv := m5x.ResourceVector()
	if len(rv) != 5 {
		t.Fatalf("ResourceVector length %d, want 5", len(rv))
	}
	// M5 is the baseline: first four components should be 1.0.
	for i := 0; i < 4; i++ {
		if rv[i] < 0.99 || rv[i] > 1.01 {
			t.Fatalf("m5 baseline component %d = %v, want about 1", i, rv[i])
		}
	}
}

func TestTypicalTen(t *testing.T) {
	ten := TypicalTen(Catalog120())
	if len(ten) != 10 {
		t.Fatalf("TypicalTen returned %d types", len(ten))
	}
	cats := map[Category]bool{}
	for _, v := range ten {
		cats[v.Category] = true
	}
	if len(cats) != 5 {
		t.Fatalf("TypicalTen spans %d categories, want all 5", len(cats))
	}
}

func TestExtensionSizesLarger(t *testing.T) {
	cat100 := ByName(Catalog())
	for _, v := range Catalog120() {
		if _, inTable := cat100[v.Name]; !inTable {
			// Extension types must be the largest in their family.
			for _, w := range FilterFamily(Catalog120(), v.Family) {
				if w.VCPUs > v.VCPUs {
					t.Fatalf("extension %s (%d vCPU) is not the family max (%s has %d)",
						v.Name, v.VCPUs, w.Name, w.VCPUs)
				}
			}
		}
	}
}
