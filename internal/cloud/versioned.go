// Versioned catalogs: production catalogs churn — types launch, retire, and
// reprice — while the learned knowledge stays put (Samreen et al.,
// *Transferable Knowledge for Low-cost Decision Making*, PAPERS.md: keep the
// decision substrate separate from the knowledge). A Versioned is an
// immutable catalog stamped with a monotonically increasing version; Apply
// folds one Update into a new Versioned, validating every invariant the
// selection stack depends on (unique names, positive finite prices, finite
// resource vectors). The serving layer logs each Update as its own WAL
// record kind and stamps the version into every prediction response, so a
// ranking is always attributable to the exact catalog it was computed
// against.
package cloud

import (
	"fmt"
	"math"
)

// SpotTier sets (or clears) the spot pricing of one VM type in an Update.
type SpotTier struct {
	// PriceHour is the spot price; 0 removes the type's spot tier.
	PriceHour float64 `json:"price_hour"`
	// EvictRate is the expected evictions per running hour at this tier.
	EvictRate float64 `json:"evict_rate"`
}

// Update is one catalog change set, applied atomically: retirements first,
// then reprices, then spot-tier changes, then additions. It is the JSON
// payload of a catalog WAL record (internal/wal), so its encoding is stable.
type Update struct {
	// Note is a free-form operator annotation carried in the log.
	Note string `json:"note,omitempty"`
	// Retire removes types by name. Retiring a name that is not present is
	// an error (a typo must not silently ack).
	Retire []string `json:"retire,omitempty"`
	// Reprice sets the on-demand hourly price of existing types by name.
	Reprice map[string]float64 `json:"reprice,omitempty"`
	// Spot sets or clears the spot tier of existing types by name.
	Spot map[string]SpotTier `json:"spot,omitempty"`
	// Add appends new types; their names must not collide with survivors.
	Add []VMType `json:"add,omitempty"`
}

// Empty reports whether the update changes nothing.
func (u Update) Empty() bool {
	return len(u.Retire) == 0 && len(u.Reprice) == 0 && len(u.Spot) == 0 && len(u.Add) == 0
}

// Versioned is an immutable catalog at a specific version. Version 0 is the
// catalog a system was constructed over; every Apply increments it.
type Versioned struct {
	version uint64
	types   []VMType
	byName  map[string]int // index into types
}

// NewVersioned builds a version-0 catalog after validating it.
func NewVersioned(types []VMType) (*Versioned, error) { return VersionedAt(types, 0) }

// VersionedAt builds a catalog at an explicit version (used when rebuilding
// the current Versioned view from a snapshot's stored types + version).
func VersionedAt(types []VMType, version uint64) (*Versioned, error) {
	if err := Validate(types); err != nil {
		return nil, err
	}
	c := &Versioned{
		version: version,
		types:   append([]VMType(nil), types...),
		byName:  make(map[string]int, len(types)),
	}
	for i, v := range c.types {
		c.byName[v.Name] = i
	}
	return c, nil
}

// Version returns the catalog version.
func (c *Versioned) Version() uint64 { return c.version }

// Len returns the number of types.
func (c *Versioned) Len() int { return len(c.types) }

// Types returns a copy of the catalog in its stable order (survivors keep
// their original positions; additions append in Update order).
func (c *Versioned) Types() []VMType { return append([]VMType(nil), c.types...) }

// Find returns the named type and whether it exists at this version.
func (c *Versioned) Find(name string) (VMType, bool) {
	i, ok := c.byName[name]
	if !ok {
		return VMType{}, false
	}
	return c.types[i], true
}

// Apply folds one update into a new catalog at version+1. The receiver is
// unchanged. Every referenced name must exist (after retirements, for
// reprices and spot changes), every added name must be new, and the
// resulting catalog must be non-empty and pass Validate.
func (c *Versioned) Apply(u Update) (*Versioned, error) {
	if u.Empty() {
		return nil, fmt.Errorf("cloud: empty catalog update")
	}
	retire := make(map[string]bool, len(u.Retire))
	for _, name := range u.Retire {
		if _, ok := c.byName[name]; !ok {
			return nil, fmt.Errorf("cloud: retire %q: not in catalog version %d", name, c.version)
		}
		if retire[name] {
			return nil, fmt.Errorf("cloud: retire %q listed twice", name)
		}
		retire[name] = true
	}
	next := make([]VMType, 0, len(c.types)-len(retire)+len(u.Add))
	for _, v := range c.types {
		if !retire[v.Name] {
			next = append(next, v)
		}
	}
	index := make(map[string]int, len(next))
	for i, v := range next {
		index[v.Name] = i
	}
	for name, price := range u.Reprice {
		i, ok := index[name]
		if !ok {
			return nil, fmt.Errorf("cloud: reprice %q: not in catalog (or retired by this update)", name)
		}
		if !(price > 0) || math.IsInf(price, 0) {
			return nil, fmt.Errorf("cloud: reprice %q: invalid price %v", name, price)
		}
		next[i].PriceHour = price
	}
	for name, tier := range u.Spot {
		i, ok := index[name]
		if !ok {
			return nil, fmt.Errorf("cloud: spot tier for %q: not in catalog (or retired by this update)", name)
		}
		if tier.PriceHour == 0 {
			next[i].SpotPriceHour, next[i].SpotEvictRate = 0, 0
			continue
		}
		next[i].SpotPriceHour = tier.PriceHour
		next[i].SpotEvictRate = tier.EvictRate
	}
	for _, v := range u.Add {
		if _, ok := index[v.Name]; ok {
			return nil, fmt.Errorf("cloud: add %q: name already in catalog", v.Name)
		}
		index[v.Name] = len(next)
		next = append(next, v)
	}
	return VersionedAt(next, c.version+1)
}

// Validate checks the catalog invariants every consumer depends on: at least
// one type, globally unique non-empty names, positive vCPU counts, positive
// finite prices, coherent spot tiers (0 < spot ≤ on-demand, finite
// non-negative eviction rate), and finite resource-vector components.
func Validate(types []VMType) error {
	if len(types) == 0 {
		return fmt.Errorf("cloud: empty catalog")
	}
	seen := make(map[string]bool, len(types))
	for _, v := range types {
		if err := validateType(v); err != nil {
			return err
		}
		if seen[v.Name] {
			return fmt.Errorf("cloud: duplicate VM type name %q", v.Name)
		}
		seen[v.Name] = true
	}
	return nil
}

func validateType(v VMType) error {
	if v.Name == "" {
		return fmt.Errorf("cloud: VM type with empty name")
	}
	if v.VCPUs <= 0 {
		return fmt.Errorf("cloud: %s: invalid vCPU count %d", v.Name, v.VCPUs)
	}
	if !(v.PriceHour > 0) || math.IsInf(v.PriceHour, 0) {
		return fmt.Errorf("cloud: %s: invalid price %v", v.Name, v.PriceHour)
	}
	if v.SpotPriceHour < 0 || math.IsInf(v.SpotPriceHour, 0) || math.IsNaN(v.SpotPriceHour) {
		return fmt.Errorf("cloud: %s: invalid spot price %v", v.Name, v.SpotPriceHour)
	}
	if v.SpotPriceHour > v.PriceHour {
		return fmt.Errorf("cloud: %s: spot price %v above on-demand %v", v.Name, v.SpotPriceHour, v.PriceHour)
	}
	if v.SpotEvictRate < 0 || math.IsInf(v.SpotEvictRate, 0) || math.IsNaN(v.SpotEvictRate) {
		return fmt.Errorf("cloud: %s: invalid spot eviction rate %v", v.Name, v.SpotEvictRate)
	}
	if v.SpotPriceHour == 0 && v.SpotEvictRate != 0 {
		return fmt.Errorf("cloud: %s: eviction rate without a spot tier", v.Name)
	}
	for i, x := range v.ResourceVector() {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("cloud: %s: resource vector component %d is %v", v.Name, i, x)
		}
	}
	return nil
}
