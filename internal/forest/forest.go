// Package forest implements CART regression trees and Random Forests
// (bootstrap aggregation with per-split feature subsampling). It is the
// model substrate of the PARIS baseline (Yadwadkar et al., SoCC'17), which
// predicts workload performance on a VM type from low-level metrics.
package forest

import (
	"fmt"
	"math"
	"sort"

	"vesta/internal/rng"
)

// node is one tree node; leaves have feature == -1.
type node struct {
	feature     int
	threshold   float64
	left, right *node
	value       float64 // leaf prediction (mean of targets)
	count       int     // training rows in this node
}

// Tree is a fitted CART regression tree.
type Tree struct {
	root *node
	dim  int
}

// TreeConfig tunes a single tree fit.
type TreeConfig struct {
	MaxDepth    int     // default 12
	MinLeaf     int     // minimum samples per leaf, default 2
	FeatureSub  int     // features considered per split; <=0 means all
	MinImpurity float64 // stop splitting below this variance, default 1e-9
}

func (c *TreeConfig) fillDefaults() {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.MinImpurity <= 0 {
		c.MinImpurity = 1e-9
	}
}

// FitTree grows a regression tree on (xs, ys). src is used only when
// FeatureSub limits the features considered per split; it may be nil
// otherwise.
func FitTree(xs [][]float64, ys []float64, cfg TreeConfig, src *rng.Source) (*Tree, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("forest: no training rows")
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("forest: %d rows but %d targets", len(xs), len(ys))
	}
	dim := len(xs[0])
	if dim == 0 {
		return nil, fmt.Errorf("forest: zero-dimensional rows")
	}
	for i, x := range xs {
		if len(x) != dim {
			return nil, fmt.Errorf("forest: row %d has dim %d, want %d", i, len(x), dim)
		}
	}
	cfg.fillDefaults()
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{dim: dim}
	t.root = grow(xs, ys, idx, cfg, src, 0)
	return t, nil
}

func grow(xs [][]float64, ys []float64, idx []int, cfg TreeConfig, src *rng.Source, depth int) *node {
	n := &node{feature: -1, count: len(idx)}
	sum := 0.0
	for _, i := range idx {
		sum += ys[i]
	}
	n.value = sum / float64(len(idx))

	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf {
		return n
	}
	// Variance of this node.
	variance := 0.0
	for _, i := range idx {
		d := ys[i] - n.value
		variance += d * d
	}
	if variance/float64(len(idx)) < cfg.MinImpurity {
		return n
	}

	feats := featureCandidates(len(xs[0]), cfg.FeatureSub, src)
	bestFeat, bestThresh, bestScore := -1, 0.0, variance
	for _, f := range feats {
		// Sort indices by feature value to scan split points in one pass.
		order := append([]int(nil), idx...)
		sort.SliceStable(order, func(a, b int) bool { return xs[order[a]][f] < xs[order[b]][f] })

		leftSum, leftSq := 0.0, 0.0
		totSum, totSq := 0.0, 0.0
		for _, i := range order {
			totSum += ys[i]
			totSq += ys[i] * ys[i]
		}
		for pos := 0; pos < len(order)-1; pos++ {
			y := ys[order[pos]]
			leftSum += y
			leftSq += y * y
			if xs[order[pos]][f] == xs[order[pos+1]][f] {
				continue // cannot split between equal values
			}
			nl := pos + 1
			nr := len(order) - nl
			if nl < cfg.MinLeaf || nr < cfg.MinLeaf {
				continue
			}
			rightSum := totSum - leftSum
			rightSq := totSq - leftSq
			// Weighted child SSE.
			sse := (leftSq - leftSum*leftSum/float64(nl)) + (rightSq - rightSum*rightSum/float64(nr))
			if sse < bestScore-1e-12 {
				bestScore = sse
				bestFeat = f
				bestThresh = (xs[order[pos]][f] + xs[order[pos+1]][f]) / 2
			}
		}
	}
	if bestFeat == -1 {
		return n
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if xs[i][bestFeat] <= bestThresh {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return n
	}
	n.feature = bestFeat
	n.threshold = bestThresh
	n.left = grow(xs, ys, leftIdx, cfg, src, depth+1)
	n.right = grow(xs, ys, rightIdx, cfg, src, depth+1)
	return n
}

func featureCandidates(dim, sub int, src *rng.Source) []int {
	if sub <= 0 || sub >= dim || src == nil {
		all := make([]int, dim)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return src.Sample(dim, sub)
}

// Predict returns the tree's prediction for x.
func (t *Tree) Predict(x []float64) float64 {
	if len(x) != t.dim {
		panic(fmt.Sprintf("forest: input dim %d, tree dim %d", len(x), t.dim))
	}
	n := t.root
	for n.feature != -1 {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the maximum depth of the tree (a single leaf has depth 0).
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *node) int {
	if n == nil || n.feature == -1 {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int { return leavesOf(t.root) }

func leavesOf(n *node) int {
	if n == nil {
		return 0
	}
	if n.feature == -1 {
		return 1
	}
	return leavesOf(n.left) + leavesOf(n.right)
}

// Forest is a fitted random forest.
type Forest struct {
	Trees []*Tree
}

// ForestConfig tunes the ensemble.
type ForestConfig struct {
	NumTrees int // default 50
	Tree     TreeConfig
	// SampleFrac is the bootstrap fraction per tree, default 1.0.
	SampleFrac float64
}

// FitForest trains a random forest. FeatureSub defaults to dim/3 (at least
// 1) per the usual regression-forest heuristic when unset.
func FitForest(xs [][]float64, ys []float64, cfg ForestConfig, src *rng.Source) (*Forest, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("forest: no training rows")
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("forest: %d rows but %d targets", len(xs), len(ys))
	}
	if cfg.NumTrees <= 0 {
		cfg.NumTrees = 50
	}
	if cfg.SampleFrac <= 0 || cfg.SampleFrac > 1 {
		cfg.SampleFrac = 1
	}
	if cfg.Tree.FeatureSub == 0 {
		cfg.Tree.FeatureSub = max(1, len(xs[0])/3)
	}

	f := &Forest{}
	n := len(xs)
	m := int(math.Ceil(cfg.SampleFrac * float64(n)))
	for t := 0; t < cfg.NumTrees; t++ {
		bx := make([][]float64, m)
		by := make([]float64, m)
		for i := 0; i < m; i++ {
			j := src.Intn(n)
			bx[i] = xs[j]
			by[i] = ys[j]
		}
		tree, err := FitTree(bx, by, cfg.Tree, src)
		if err != nil {
			return nil, err
		}
		f.Trees = append(f.Trees, tree)
	}
	return f, nil
}

// Predict returns the ensemble mean prediction.
func (f *Forest) Predict(x []float64) float64 {
	s := 0.0
	for _, t := range f.Trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.Trees))
}

// PredictWithSpread returns the ensemble mean and the standard deviation
// across trees (PARIS uses the spread as a confidence signal).
func (f *Forest) PredictWithSpread(x []float64) (mean, std float64) {
	preds := make([]float64, len(f.Trees))
	for i, t := range f.Trees {
		preds[i] = t.Predict(x)
		mean += preds[i]
	}
	mean /= float64(len(f.Trees))
	for _, p := range preds {
		std += (p - mean) * (p - mean)
	}
	std = math.Sqrt(std / float64(len(f.Trees)))
	return mean, std
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
