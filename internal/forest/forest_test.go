package forest

import (
	"math"
	"testing"

	"vesta/internal/rng"
)

// stepData: y = 10 when x0 > 0.5 else 2, plus a distractor feature.
func stepData(src *rng.Source, n int) ([][]float64, []float64) {
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x0 := src.Float64()
		xs[i] = []float64{x0, src.Float64()}
		if x0 > 0.5 {
			ys[i] = 10
		} else {
			ys[i] = 2
		}
	}
	return xs, ys
}

// smoothData: y = 3*x0 + 2*x1^2 with noise.
func smoothData(src *rng.Source, n int, noise float64) ([][]float64, []float64) {
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x0, x1 := src.Float64(), src.Float64()
		xs[i] = []float64{x0, x1}
		ys[i] = 3*x0 + 2*x1*x1 + src.Norm(0, noise)
	}
	return xs, ys
}

func TestFitTreeErrors(t *testing.T) {
	if _, err := FitTree(nil, nil, TreeConfig{}, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := FitTree([][]float64{{1}}, []float64{1, 2}, TreeConfig{}, nil); err == nil {
		t.Fatal("row/target mismatch accepted")
	}
	if _, err := FitTree([][]float64{{1}, {2, 3}}, []float64{1, 2}, TreeConfig{}, nil); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := FitTree([][]float64{{}, {}}, []float64{1, 2}, TreeConfig{}, nil); err == nil {
		t.Fatal("zero-dim rows accepted")
	}
}

func TestTreeLearnsStepFunction(t *testing.T) {
	src := rng.New(1)
	xs, ys := stepData(src, 200)
	tree, err := FitTree(xs, ys, TreeConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p := tree.Predict([]float64{0.9, 0.5}); math.Abs(p-10) > 0.5 {
		t.Fatalf("Predict(high) = %v, want about 10", p)
	}
	if p := tree.Predict([]float64{0.1, 0.5}); math.Abs(p-2) > 0.5 {
		t.Fatalf("Predict(low) = %v, want about 2", p)
	}
}

func TestTreePerfectFitOnTrainWithDeepTree(t *testing.T) {
	src := rng.New(2)
	xs, ys := smoothData(src, 60, 0)
	tree, err := FitTree(xs, ys, TreeConfig{MaxDepth: 30, MinLeaf: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if math.Abs(tree.Predict(x)-ys[i]) > 1e-6 {
			t.Fatalf("deep tree failed to memorize row %d: %v vs %v", i, tree.Predict(x), ys[i])
		}
	}
}

func TestMaxDepthRespected(t *testing.T) {
	src := rng.New(3)
	xs, ys := smoothData(src, 300, 0.1)
	tree, err := FitTree(xs, ys, TreeConfig{MaxDepth: 3, MinLeaf: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d > 3 {
		t.Fatalf("depth %d exceeds max 3", d)
	}
	if l := tree.Leaves(); l > 8 {
		t.Fatalf("%d leaves from depth-3 tree", l)
	}
}

func TestMinLeafRespected(t *testing.T) {
	src := rng.New(4)
	xs, ys := smoothData(src, 100, 0.1)
	tree, err := FitTree(xs, ys, TreeConfig{MaxDepth: 20, MinLeaf: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkLeafCounts(t, tree.root, 10)
}

func checkLeafCounts(t *testing.T, n *node, minLeaf int) {
	t.Helper()
	if n == nil {
		return
	}
	if n.feature == -1 {
		if n.count < minLeaf {
			t.Fatalf("leaf with %d rows, min %d", n.count, minLeaf)
		}
		return
	}
	checkLeafCounts(t, n.left, minLeaf)
	checkLeafCounts(t, n.right, minLeaf)
}

func TestConstantTargetSingleLeaf(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := []float64{7, 7, 7, 7}
	tree, err := FitTree(xs, ys, TreeConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 {
		t.Fatalf("constant target grew depth %d", tree.Depth())
	}
	if tree.Predict([]float64{99}) != 7 {
		t.Fatal("constant prediction wrong")
	}
}

func TestPredictDimPanics(t *testing.T) {
	tree, _ := FitTree([][]float64{{1, 2}, {3, 4}}, []float64{1, 2}, TreeConfig{}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch did not panic")
		}
	}()
	tree.Predict([]float64{1})
}

func TestForestBeatsNothing(t *testing.T) {
	src := rng.New(5)
	xs, ys := smoothData(src, 400, 0.2)
	f, err := FitForest(xs, ys, ForestConfig{NumTrees: 30}, src)
	if err != nil {
		t.Fatal(err)
	}
	// Held-out evaluation.
	tx, ty := smoothData(rng.New(6), 100, 0.2)
	sse, sseMean := 0.0, 0.0
	meanY := 0.0
	for _, y := range ys {
		meanY += y
	}
	meanY /= float64(len(ys))
	for i, x := range tx {
		d := f.Predict(x) - ty[i]
		sse += d * d
		dm := meanY - ty[i]
		sseMean += dm * dm
	}
	if sse > 0.3*sseMean {
		t.Fatalf("forest SSE %v not far below mean-predictor SSE %v", sse, sseMean)
	}
}

func TestForestDeterministic(t *testing.T) {
	xs, ys := smoothData(rng.New(7), 100, 0.1)
	f1, _ := FitForest(xs, ys, ForestConfig{NumTrees: 10}, rng.New(8))
	f2, _ := FitForest(xs, ys, ForestConfig{NumTrees: 10}, rng.New(8))
	probe := []float64{0.3, 0.7}
	if f1.Predict(probe) != f2.Predict(probe) {
		t.Fatal("same seed produced different forests")
	}
}

func TestForestErrors(t *testing.T) {
	src := rng.New(9)
	if _, err := FitForest(nil, nil, ForestConfig{}, src); err == nil {
		t.Fatal("empty forest input accepted")
	}
	if _, err := FitForest([][]float64{{1}}, []float64{1, 2}, ForestConfig{}, src); err == nil {
		t.Fatal("mismatched forest input accepted")
	}
}

func TestPredictWithSpread(t *testing.T) {
	src := rng.New(10)
	xs, ys := stepData(src, 300)
	f, err := FitForest(xs, ys, ForestConfig{NumTrees: 25}, src)
	if err != nil {
		t.Fatal(err)
	}
	// Deep inside a region: low spread. Near the boundary: higher spread.
	_, stdCore := f.PredictWithSpread([]float64{0.95, 0.5})
	_, stdEdge := f.PredictWithSpread([]float64{0.50, 0.5})
	if stdEdge < stdCore {
		t.Fatalf("spread at boundary (%v) below spread in core (%v)", stdEdge, stdCore)
	}
	mean, _ := f.PredictWithSpread([]float64{0.95, 0.5})
	if math.Abs(mean-f.Predict([]float64{0.95, 0.5})) > 1e-12 {
		t.Fatal("PredictWithSpread mean differs from Predict")
	}
}

func TestFeatureSubsampling(t *testing.T) {
	src := rng.New(11)
	xs, ys := smoothData(src, 200, 0.1)
	f, err := FitForest(xs, ys, ForestConfig{NumTrees: 10, Tree: TreeConfig{FeatureSub: 1}}, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Trees) != 10 {
		t.Fatalf("forest has %d trees", len(f.Trees))
	}
}

func BenchmarkForestFit(b *testing.B) {
	src := rng.New(1)
	xs, ys := smoothData(src, 300, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitForest(xs, ys, ForestConfig{NumTrees: 20}, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestPredict(b *testing.B) {
	src := rng.New(1)
	xs, ys := smoothData(src, 300, 0.2)
	f, _ := FitForest(xs, ys, ForestConfig{NumTrees: 50}, src)
	probe := []float64{0.4, 0.6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Predict(probe)
	}
}
