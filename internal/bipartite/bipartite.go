// Package bipartite implements the two-layer bipartite graph of Section 3.2:
// a workload-label layer and a label-VM layer. Edges from source workloads
// (the paper's blue edges) are the abstracted knowledge; edges from target
// workloads (red edges) are drawn later by the transfer-learning step and
// represent reused knowledge.
package bipartite

import (
	"encoding/json"
	"fmt"
	"sort"

	"vesta/internal/mat"
)

// Kind distinguishes knowledge edges (source) from transferred edges
// (target) in the workload-label layer.
type Kind int

// Edge kinds, mirroring the blue/red edges of Figure 4.
const (
	SourceEdge Kind = iota // blue: abstracted knowledge
	TargetEdge             // red: reused knowledge
)

// Graph is the two-layer bipartite knowledge graph.
type Graph struct {
	workloads []string
	labels    []string
	vms       []string

	wIndex map[string]int
	lIndex map[string]int
	vIndex map[string]int

	isSource []bool // per workload

	// wl is the workload-label layer (G^XL union G^X*L), |W| x |L|.
	wl *mat.Matrix
	// lv is the label-VM layer (G^LT), |L| x |V|.
	lv *mat.Matrix
}

// New builds an empty graph over the given label and VM vocabularies.
func New(labels, vms []string) (*Graph, error) {
	if len(labels) == 0 || len(vms) == 0 {
		return nil, fmt.Errorf("bipartite: need at least one label and one VM")
	}
	g := &Graph{
		labels: append([]string(nil), labels...),
		vms:    append([]string(nil), vms...),
		wIndex: map[string]int{},
		lIndex: map[string]int{},
		vIndex: map[string]int{},
		wl:     mat.New(0, len(labels)),
		lv:     mat.New(len(labels), len(vms)),
	}
	for i, l := range labels {
		if _, dup := g.lIndex[l]; dup {
			return nil, fmt.Errorf("bipartite: duplicate label %q", l)
		}
		g.lIndex[l] = i
	}
	for i, v := range vms {
		if _, dup := g.vIndex[v]; dup {
			return nil, fmt.Errorf("bipartite: duplicate VM %q", v)
		}
		g.vIndex[v] = i
	}
	return g, nil
}

// Labels returns the label vocabulary.
func (g *Graph) Labels() []string { return append([]string(nil), g.labels...) }

// VMs returns the VM vocabulary.
func (g *Graph) VMs() []string { return append([]string(nil), g.vms...) }

// Workloads returns the workload nodes in insertion order.
func (g *Graph) Workloads() []string { return append([]string(nil), g.workloads...) }

// HasWorkload reports whether a workload node with the given name exists.
func (g *Graph) HasWorkload(name string) bool {
	_, ok := g.wIndex[name]
	return ok
}

// AddWorkload inserts a workload node with its label-affinity row (length
// = len(labels)). Re-adding a workload replaces its row and kind.
func (g *Graph) AddWorkload(name string, kind Kind, labelWeights []float64) error {
	if len(labelWeights) != len(g.labels) {
		return fmt.Errorf("bipartite: workload %q has %d label weights, want %d",
			name, len(labelWeights), len(g.labels))
	}
	if idx, ok := g.wIndex[name]; ok {
		g.wl.SetRow(idx, labelWeights)
		g.isSource[idx] = kind == SourceEdge
		return nil
	}
	idx := len(g.workloads)
	g.workloads = append(g.workloads, name)
	g.wIndex[name] = idx
	g.isSource = append(g.isSource, kind == SourceEdge)
	grown := mat.New(idx+1, len(g.labels))
	copy(grown.Data, g.wl.Data)
	grown.SetRow(idx, labelWeights)
	g.wl = grown
	return nil
}

// SetLabelVM assigns the affinity of a label to a VM type in the label-VM
// layer.
func (g *Graph) SetLabelVM(label, vm string, weight float64) error {
	li, ok := g.lIndex[label]
	if !ok {
		return fmt.Errorf("bipartite: unknown label %q", label)
	}
	vi, ok := g.vIndex[vm]
	if !ok {
		return fmt.Errorf("bipartite: unknown VM %q", vm)
	}
	g.lv.Set(li, vi, weight)
	return nil
}

// LabelVM returns the label-VM affinity.
func (g *Graph) LabelVM(label, vm string) (float64, error) {
	li, ok := g.lIndex[label]
	if !ok {
		return 0, fmt.Errorf("bipartite: unknown label %q", label)
	}
	vi, ok := g.vIndex[vm]
	if !ok {
		return 0, fmt.Errorf("bipartite: unknown VM %q", vm)
	}
	return g.lv.At(li, vi), nil
}

// WorkloadLabels returns the label-weight row of a workload.
func (g *Graph) WorkloadLabels(name string) ([]float64, error) {
	idx, ok := g.wIndex[name]
	if !ok {
		return nil, fmt.Errorf("bipartite: unknown workload %q", name)
	}
	return g.wl.Row(idx), nil
}

// IsSource reports whether the workload's edges are knowledge (blue) edges.
func (g *Graph) IsSource(name string) (bool, error) {
	idx, ok := g.wIndex[name]
	if !ok {
		return false, fmt.Errorf("bipartite: unknown workload %q", name)
	}
	return g.isSource[idx], nil
}

// VMScore is a VM type with its propagated affinity score.
type VMScore struct {
	VM    string
	Score float64
}

// ScoreVMs propagates a workload's label weights through the label-VM layer
// and returns every VM with its score, best first (ties broken by name for
// determinism). This is the graph walk that turns transferred knowledge
// into a VM ranking.
func (g *Graph) ScoreVMs(name string) ([]VMScore, error) {
	row, err := g.WorkloadLabels(name)
	if err != nil {
		return nil, err
	}
	return g.ScoreVMsFromWeights(row), nil
}

// ScoreVMsFromWeights ranks VMs for an explicit label-weight vector.
func (g *Graph) ScoreVMsFromWeights(labelWeights []float64) []VMScore {
	scores := make([]VMScore, len(g.vms))
	for vi, vm := range g.vms {
		s := 0.0
		for li := range g.labels {
			s += labelWeights[li] * g.lv.At(li, vi)
		}
		scores[vi] = VMScore{VM: vm, Score: s}
	}
	sort.Slice(scores, func(a, b int) bool {
		if scores[a].Score != scores[b].Score {
			return scores[a].Score > scores[b].Score
		}
		return scores[a].VM < scores[b].VM
	})
	return scores
}

// WL returns a copy of the workload-label matrix (rows follow Workloads()).
func (g *Graph) WL() *mat.Matrix { return g.wl.Clone() }

// LV returns a copy of the label-VM matrix.
func (g *Graph) LV() *mat.Matrix { return g.lv.Clone() }

// Stats summarizes the graph for reports.
type Stats struct {
	Workloads, Labels, VMs   int
	SourceEdges, TargetEdges int // nonzero workload-label edges by kind
	LabelVMEdges             int
	MeanLabelsPerWorkload    float64
}

// Stats computes edge statistics, counting edges with weight above eps.
func (g *Graph) Stats(eps float64) Stats {
	st := Stats{Workloads: len(g.workloads), Labels: len(g.labels), VMs: len(g.vms)}
	totalLabels := 0
	for wi := range g.workloads {
		for li := range g.labels {
			if g.wl.At(wi, li) > eps {
				totalLabels++
				if g.isSource[wi] {
					st.SourceEdges++
				} else {
					st.TargetEdges++
				}
			}
		}
	}
	for li := range g.labels {
		for vi := range g.vms {
			if g.lv.At(li, vi) > eps {
				st.LabelVMEdges++
			}
		}
	}
	if len(g.workloads) > 0 {
		st.MeanLabelsPerWorkload = float64(totalLabels) / float64(len(g.workloads))
	}
	return st
}

// Clone returns a deep copy of the graph. Mutations on either copy
// (AddWorkload, SetLabelVM) never reach the other, which is what lets a
// published serving snapshot stay immutable while the original keeps
// absorbing targets.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		workloads: append([]string(nil), g.workloads...),
		labels:    append([]string(nil), g.labels...),
		vms:       append([]string(nil), g.vms...),
		wIndex:    make(map[string]int, len(g.wIndex)),
		lIndex:    make(map[string]int, len(g.lIndex)),
		vIndex:    make(map[string]int, len(g.vIndex)),
		isSource:  append([]bool(nil), g.isSource...),
		wl:        g.wl.Clone(),
		lv:        g.lv.Clone(),
	}
	for k, v := range g.wIndex {
		c.wIndex[k] = v
	}
	for k, v := range g.lIndex {
		c.lIndex[k] = v
	}
	for k, v := range g.vIndex {
		c.vIndex[k] = v
	}
	return c
}

// jsonGraph is the serialization schema.
type jsonGraph struct {
	Workloads []string    `json:"workloads"`
	Labels    []string    `json:"labels"`
	VMs       []string    `json:"vms"`
	IsSource  []bool      `json:"is_source"`
	WL        [][]float64 `json:"workload_label"`
	LV        [][]float64 `json:"label_vm"`
}

// MarshalJSON implements json.Marshaler so knowledge can be persisted.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{
		Workloads: g.workloads, Labels: g.labels, VMs: g.vms, IsSource: g.isSource,
	}
	for wi := range g.workloads {
		jg.WL = append(jg.WL, g.wl.Row(wi))
	}
	for li := range g.labels {
		jg.LV = append(jg.LV, g.lv.Row(li))
	}
	return json.Marshal(jg)
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	ng, err := New(jg.Labels, jg.VMs)
	if err != nil {
		return err
	}
	if len(jg.IsSource) != len(jg.Workloads) || len(jg.WL) != len(jg.Workloads) {
		return fmt.Errorf("bipartite: inconsistent serialized graph")
	}
	for i, w := range jg.Workloads {
		kind := TargetEdge
		if jg.IsSource[i] {
			kind = SourceEdge
		}
		if err := ng.AddWorkload(w, kind, jg.WL[i]); err != nil {
			return err
		}
	}
	if len(jg.LV) != len(jg.Labels) {
		return fmt.Errorf("bipartite: label-VM layer has %d rows, want %d", len(jg.LV), len(jg.Labels))
	}
	for li, row := range jg.LV {
		if len(row) != len(jg.VMs) {
			return fmt.Errorf("bipartite: label-VM row %d has %d cols, want %d", li, len(row), len(jg.VMs))
		}
		for vi, w := range row {
			ng.lv.Set(li, vi, w)
		}
	}
	*g = *ng
	return nil
}
