package bipartite

import (
	"encoding/json"
	"testing"
)

// FuzzGraphJSON verifies the knowledge-graph deserializer never panics and
// that every accepted payload produces an internally consistent graph.
func FuzzGraphJSON(f *testing.F) {
	// Seed with a valid graph and several corruptions.
	g, err := New([]string{"l1", "l2"}, []string{"vmA", "vmB"})
	if err != nil {
		f.Fatal(err)
	}
	if err := g.AddWorkload("w1", SourceEdge, []float64{1, 0}); err != nil {
		f.Fatal(err)
	}
	valid, err := json.Marshal(g)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"labels":["l"],"vms":["v"],"workloads":["w"],"is_source":[true],"workload_label":[[1,2]],"label_vm":[[0]]}`))
	f.Add([]byte(`{"labels":["l","l"],"vms":["v"]}`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			return // rejection is fine
		}
		// Accepted: the graph must be internally consistent.
		labels := back.Labels()
		vms := back.VMs()
		if len(labels) == 0 || len(vms) == 0 {
			t.Fatal("accepted graph without labels or VMs")
		}
		for _, w := range back.Workloads() {
			row, err := back.WorkloadLabels(w)
			if err != nil {
				t.Fatalf("listed workload %q not queryable: %v", w, err)
			}
			if len(row) != len(labels) {
				t.Fatalf("workload %q row has %d weights, want %d", w, len(row), len(labels))
			}
			if _, err := back.IsSource(w); err != nil {
				t.Fatalf("IsSource(%q): %v", w, err)
			}
		}
		// Scoring must work for any accepted graph.
		weights := make([]float64, len(labels))
		for i := range weights {
			weights[i] = 1
		}
		scores := back.ScoreVMsFromWeights(weights)
		if len(scores) != len(vms) {
			t.Fatalf("scored %d VMs, want %d", len(scores), len(vms))
		}
	})
}
