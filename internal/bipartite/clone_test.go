package bipartite

import (
	"reflect"
	"testing"
)

func cloneFixture(t *testing.T) *Graph {
	t.Helper()
	g, err := New([]string{"l1", "l2"}, []string{"vm1", "vm2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddWorkload("w1", SourceEdge, []float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddWorkload("w2", TargetEdge, []float64{0.9, 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetLabelVM("l1", "vm1", 0.7); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphCloneIsDeep(t *testing.T) {
	g := cloneFixture(t)
	c := g.Clone()

	if !reflect.DeepEqual(g.Workloads(), c.Workloads()) ||
		!reflect.DeepEqual(g.Labels(), c.Labels()) ||
		!reflect.DeepEqual(g.VMs(), c.VMs()) {
		t.Fatal("clone vocabulary differs")
	}
	gs, cs := g.ScoreVMs, c.ScoreVMs
	a, err := gs("w1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := cs("w1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("clone scores differ")
	}

	// Mutations on the original must not reach the clone, in any direction.
	if err := g.AddWorkload("w3", TargetEdge, []float64{0.2, 0.8}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetLabelVM("l2", "vm2", 0.9); err != nil {
		t.Fatal(err)
	}
	if c.HasWorkload("w3") {
		t.Fatal("AddWorkload on original reached clone")
	}
	if w, err := c.LabelVM("l2", "vm2"); err != nil || w != 0 {
		t.Fatalf("SetLabelVM on original reached clone: %v %v", w, err)
	}
	if err := c.AddWorkload("w1", SourceEdge, []float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	if row, err := g.WorkloadLabels("w1"); err != nil || !reflect.DeepEqual(row, []float64{0.5, 0.5}) {
		t.Fatalf("upsert on clone reached original: %v %v", row, err)
	}

	// Source/target kinds survive the clone.
	if src, err := c.IsSource("w2"); err != nil || src {
		t.Fatalf("w2 kind wrong after clone: %v %v", src, err)
	}
}

func TestGraphCloneMatchesJSONRoundTrip(t *testing.T) {
	g := cloneFixture(t)
	c := g.Clone()
	a, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("clone serializes differently:\n%s\n%s", a, b)
	}
}
