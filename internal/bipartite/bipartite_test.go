package bipartite

import (
	"encoding/json"
	"testing"
)

func newTestGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := New([]string{"l1", "l2", "l3"}, []string{"vmA", "vmB"})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, []string{"v"}); err == nil {
		t.Fatal("empty labels accepted")
	}
	if _, err := New([]string{"l"}, nil); err == nil {
		t.Fatal("empty VMs accepted")
	}
	if _, err := New([]string{"l", "l"}, []string{"v"}); err == nil {
		t.Fatal("duplicate labels accepted")
	}
	if _, err := New([]string{"l"}, []string{"v", "v"}); err == nil {
		t.Fatal("duplicate VMs accepted")
	}
}

func TestAddWorkloadAndLookup(t *testing.T) {
	g := newTestGraph(t)
	if err := g.AddWorkload("w1", SourceEdge, []float64{1, 0, 0.5}); err != nil {
		t.Fatal(err)
	}
	row, err := g.WorkloadLabels("w1")
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != 1 || row[2] != 0.5 {
		t.Fatalf("row = %v", row)
	}
	src, err := g.IsSource("w1")
	if err != nil || !src {
		t.Fatalf("IsSource = %v, %v", src, err)
	}
	if err := g.AddWorkload("w1", TargetEdge, []float64{0, 1, 0}); err != nil {
		t.Fatal(err)
	}
	row, _ = g.WorkloadLabels("w1")
	if row[1] != 1 || row[0] != 0 {
		t.Fatal("re-add did not replace row")
	}
	if src, _ := g.IsSource("w1"); src {
		t.Fatal("re-add did not update kind")
	}
	if len(g.Workloads()) != 1 {
		t.Fatal("re-add duplicated workload node")
	}
}

func TestAddWorkloadDimError(t *testing.T) {
	g := newTestGraph(t)
	if err := g.AddWorkload("w", SourceEdge, []float64{1}); err == nil {
		t.Fatal("wrong-length weights accepted")
	}
}

func TestUnknownLookups(t *testing.T) {
	g := newTestGraph(t)
	if _, err := g.WorkloadLabels("nope"); err == nil {
		t.Fatal("unknown workload lookup succeeded")
	}
	if _, err := g.IsSource("nope"); err == nil {
		t.Fatal("unknown IsSource succeeded")
	}
	if err := g.SetLabelVM("nope", "vmA", 1); err == nil {
		t.Fatal("unknown label accepted")
	}
	if err := g.SetLabelVM("l1", "nope", 1); err == nil {
		t.Fatal("unknown VM accepted")
	}
	if _, err := g.LabelVM("nope", "vmA"); err == nil {
		t.Fatal("unknown LabelVM label accepted")
	}
	if _, err := g.ScoreVMs("nope"); err == nil {
		t.Fatal("unknown ScoreVMs accepted")
	}
}

func TestScoreVMsPropagation(t *testing.T) {
	g := newTestGraph(t)
	// l1 strongly favors vmA; l2 favors vmB.
	must(t, g.SetLabelVM("l1", "vmA", 0.9))
	must(t, g.SetLabelVM("l1", "vmB", 0.1))
	must(t, g.SetLabelVM("l2", "vmA", 0.2))
	must(t, g.SetLabelVM("l2", "vmB", 0.8))
	must(t, g.AddWorkload("wantsA", SourceEdge, []float64{1, 0, 0}))
	must(t, g.AddWorkload("wantsB", TargetEdge, []float64{0, 1, 0}))
	must(t, g.AddWorkload("mixed", TargetEdge, []float64{0.5, 0.5, 0}))

	sa, err := g.ScoreVMs("wantsA")
	if err != nil {
		t.Fatal(err)
	}
	if sa[0].VM != "vmA" {
		t.Fatalf("wantsA best = %s", sa[0].VM)
	}
	sb, _ := g.ScoreVMs("wantsB")
	if sb[0].VM != "vmB" {
		t.Fatalf("wantsB best = %s", sb[0].VM)
	}
	sm, _ := g.ScoreVMs("mixed")
	// 0.5*0.9 + 0.5*0.2 = 0.55 vs 0.5*0.1 + 0.5*0.8 = 0.45.
	if sm[0].VM != "vmA" {
		t.Fatalf("mixed best = %s", sm[0].VM)
	}
}

func TestScoreDeterministicTieBreak(t *testing.T) {
	g := newTestGraph(t)
	must(t, g.AddWorkload("w", SourceEdge, []float64{1, 1, 1}))
	// All scores zero: ties broken alphabetically.
	s, _ := g.ScoreVMs("w")
	if s[0].VM != "vmA" || s[1].VM != "vmB" {
		t.Fatalf("tie-break order = %v", s)
	}
}

func TestStats(t *testing.T) {
	g := newTestGraph(t)
	must(t, g.AddWorkload("s1", SourceEdge, []float64{1, 0.5, 0}))
	must(t, g.AddWorkload("t1", TargetEdge, []float64{0, 0, 0.7}))
	must(t, g.SetLabelVM("l1", "vmA", 0.9))
	st := g.Stats(0.01)
	if st.Workloads != 2 || st.Labels != 3 || st.VMs != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SourceEdges != 2 || st.TargetEdges != 1 || st.LabelVMEdges != 1 {
		t.Fatalf("edge counts = %+v", st)
	}
	if st.MeanLabelsPerWorkload != 1.5 {
		t.Fatalf("mean labels = %v", st.MeanLabelsPerWorkload)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := newTestGraph(t)
	must(t, g.AddWorkload("s1", SourceEdge, []float64{1, 0, 0.25}))
	must(t, g.AddWorkload("t1", TargetEdge, []float64{0, 0.75, 0}))
	must(t, g.SetLabelVM("l2", "vmB", 0.6))

	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if got := back.Workloads(); len(got) != 2 || got[0] != "s1" {
		t.Fatalf("workloads = %v", got)
	}
	row, err := back.WorkloadLabels("t1")
	if err != nil || row[1] != 0.75 {
		t.Fatalf("t1 row = %v, %v", row, err)
	}
	if src, _ := back.IsSource("s1"); !src {
		t.Fatal("s1 lost source kind")
	}
	if src, _ := back.IsSource("t1"); src {
		t.Fatal("t1 gained source kind")
	}
	w, err := back.LabelVM("l2", "vmB")
	if err != nil || w != 0.6 {
		t.Fatalf("LabelVM = %v, %v", w, err)
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	var g Graph
	if err := json.Unmarshal([]byte(`{"labels":["l"],"vms":["v"],"workloads":["w"],"is_source":[],"workload_label":[],"label_vm":[[0]]}`), &g); err == nil {
		t.Fatal("inconsistent graph accepted")
	}
	if err := json.Unmarshal([]byte(`{not json`), &g); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestMatrixCopiesAreDetached(t *testing.T) {
	g := newTestGraph(t)
	must(t, g.AddWorkload("w", SourceEdge, []float64{1, 2, 3}))
	wl := g.WL()
	wl.Set(0, 0, 99)
	row, _ := g.WorkloadLabels("w")
	if row[0] == 99 {
		t.Fatal("WL() exposed internal state")
	}
	lv := g.LV()
	lv.Set(0, 0, 99)
	if w, _ := g.LabelVM("l1", "vmA"); w == 99 {
		t.Fatal("LV() exposed internal state")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
