package cli

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// memFS is the in-memory file seam for factory tests: Create commits bytes on
// Close, Open reads them back. No test in this file may touch the real
// filesystem or bind a socket.
type memFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

func newMemFS() *memFS { return &memFS{files: map[string][]byte{}} }

func (m *memFS) open(path string) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[path]
	if !ok {
		return nil, fmt.Errorf("memfs: open %s: no such file", path)
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

func (m *memFS) create(path string) (io.WriteCloser, error) {
	return &memFile{commit: func(b []byte) {
		m.mu.Lock()
		defer m.mu.Unlock()
		m.files[path] = b
	}}, nil
}

func (m *memFS) get(path string) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.files[path]
}

type memFile struct {
	bytes.Buffer
	commit func([]byte)
}

func (f *memFile) Close() error { f.commit(f.Bytes()); return nil }

// fakeFactory builds a production factory and then replaces every IO seam:
// buffered streams, map-backed files, listeners that never bind a port.
// Commands exercised through it run entirely in memory.
func fakeFactory() (*Factory, *memFS, *bytes.Buffer, *bytes.Buffer) {
	var out, errB bytes.Buffer
	fsys := newMemFS()
	f := newFactory(&out, &errB)
	f.Open = fsys.open
	f.Create = fsys.create
	f.ServeListen = func(*http.Server) error { return http.ErrServerClosed }
	f.RouteListen = func(*http.Server) error { return http.ErrServerClosed }
	return f, fsys, &out, &errB
}

// TestFactoryFlagExclusions pins every flag mutual-exclusion through the fake
// factory: each must fail fast, with the documented message, without calling
// a listener or creating a file.
func TestFactoryFlagExclusions(t *testing.T) {
	cases := []struct {
		name    string
		cmd     func(*Factory, []string) error
		args    []string
		wantErr string
	}{
		{"loadgen config vs rps", cmdLoadgen,
			[]string{"-config", "c.json", "-rps", "10"},
			"-config and -rps are mutually exclusive"},
		{"loadgen config vs several traffic flags", cmdLoadgen,
			[]string{"-config", "c.json", "-pattern", "burst", "-mix", "predict=1", "-tenants", "5"},
			"-config and -mix, -pattern, -tenants are mutually exclusive"},
		{"loadgen live without knowledge", cmdLoadgen,
			[]string{"-live"},
			"-live requires -knowledge"},
		{"loadgen live vs tune", cmdLoadgen,
			[]string{"-live", "-knowledge", "k.json", "-tune"},
			"-live and -tune are mutually exclusive"},
		{"loadgen live vs report", cmdLoadgen,
			[]string{"-live", "-knowledge", "k.json", "-report"},
			"-live and -report are mutually exclusive"},
		{"loadgen report vs tune", cmdLoadgen,
			[]string{"-report", "-tune"},
			"-report already includes the tuner sweep"},
		{"loadgen unknown pattern", cmdLoadgen,
			[]string{"-pattern", "wiggly"},
			`unknown -pattern "wiggly"`},
		{"loadgen malformed mix", cmdLoadgen,
			[]string{"-mix", "predict"},
			"want kind=weight"},
		{"serve follow vs replicate", cmdServe,
			[]string{"-follow", "http://leader", "-replicate"},
			"-follow and -replicate are mutually exclusive"},
		{"serve follow vs state-dir", cmdServe,
			[]string{"-follow", "http://leader", "-state-dir", "d"},
			"-follow and -state-dir are mutually exclusive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, fsys, _, _ := fakeFactory()
			listened := false
			f.ServeListen = func(*http.Server) error { listened = true; return http.ErrServerClosed }
			f.RouteListen = func(*http.Server) error { listened = true; return http.ErrServerClosed }
			err := tc.cmd(f, tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
			if listened {
				t.Fatal("listener called despite the flag conflict")
			}
			if len(fsys.files) != 0 {
				t.Fatalf("files created despite the flag conflict: %v", fsys.files)
			}
		})
	}
}

// TestFactoryParseErrorsGoToErrStream: flag-parse failures print usage to the
// factory's Err stream, never to the process stderr.
func TestFactoryParseErrorsGoToErrStream(t *testing.T) {
	f, _, out, errB := fakeFactory()
	if err := cmdLoadgen(f, []string{"-bogus-flag"}); err == nil {
		t.Fatal("bogus flag accepted")
	}
	if !strings.Contains(errB.String(), "Usage of loadgen") {
		t.Fatalf("usage not on factory Err stream: %q", errB.String())
	}
	if out.Len() != 0 {
		t.Fatalf("parse error leaked to Out: %q", out.String())
	}
}

// TestFactoryLoadgenOutputFile: -o routes the run output through the Create
// seam; stdout keeps only the prose.
func TestFactoryLoadgenOutputFile(t *testing.T) {
	f, fsys, out, _ := fakeFactory()
	err := cmdLoadgen(f, []string{
		"-rps", "50", "-duration", "2", "-tenants", "20", "-o", "run.txt"})
	if err != nil {
		t.Fatal(err)
	}
	got := string(fsys.get("run.txt"))
	if !strings.Contains(got, "offered") || !strings.Contains(got, "latency ms: p50") {
		t.Fatalf("run output not in memfs file: %q", got)
	}
	if strings.Contains(out.String(), "offered") {
		t.Fatalf("-o set but run output leaked to stdout: %q", out.String())
	}
}

// TestFactoryFlow drives the whole lifecycle through one fake factory:
// profile writes knowledge into the memfs, predict and serve read it back,
// serve answers a /predict via the listener seam, and loadgen -live replays a
// schedule against the same trained state — all without a disk or a port.
func TestFactoryFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("full offline phase is expensive")
	}
	f, fsys, out, _ := fakeFactory()

	if err := cmdProfile(f, []string{"-out", "k.json", "-k", "9"}); err != nil {
		t.Fatalf("profile: %v", err)
	}
	if !strings.Contains(out.String(), "knowledge written to k.json") {
		t.Fatalf("profile banner missing: %q", out.String())
	}
	if len(fsys.get("k.json")) == 0 {
		t.Fatal("knowledge file not committed to memfs")
	}

	out.Reset()
	if err := cmdPredict(f, []string{"-knowledge", "k.json", "-app", "Spark-pca"}); err != nil {
		t.Fatalf("predict: %v", err)
	}
	if !strings.Contains(out.String(), "predicted best VM type:") {
		t.Fatalf("predict output missing ranking: %q", out.String())
	}

	// serve: the listener seam receives the fully-wired handler and drives an
	// in-process predict before shutting the command down.
	out.Reset()
	var predictStatus int
	var predictBody string
	f.ServeListen = func(srv *http.Server) error {
		rec := httptest.NewRecorder()
		srv.Handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/predict",
			strings.NewReader(`{"app":"Spark-pca","top":3}`)))
		predictStatus, predictBody = rec.Code, rec.Body.String()
		return http.ErrServerClosed
	}
	if err := cmdServe(f, []string{"-knowledge", "k.json"}); err != nil {
		t.Fatalf("serve: %v", err)
	}
	if predictStatus != http.StatusOK || !strings.Contains(predictBody, `"target"`) {
		t.Fatalf("serve predict via seam: status=%d body=%q", predictStatus, predictBody)
	}

	out.Reset()
	err := cmdLoadgen(f, []string{"-live", "-knowledge", "k.json",
		"-rps", "40", "-duration", "1", "-tenants", "20", "-time-scale", "0.2"})
	if err != nil {
		t.Fatalf("loadgen -live: %v", err)
	}
	if !strings.Contains(out.String(), "live replay:") ||
		!strings.Contains(out.String(), "server stats:") {
		t.Fatalf("live replay output missing: %q", out.String())
	}
}
