package cli

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

// TestServeCommand drives `vesta serve` end to end without binding a port:
// the listener hook is swapped for one that exercises the handler in-process
// while the command is live, then returns as if the server shut down.
func TestServeCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("full offline phase is expensive")
	}
	kfile := filepath.Join(t.TempDir(), "k.json")
	if code, _, stderr := run("profile", "-out", kfile, "-k", "9"); code != 0 {
		t.Fatalf("profile exit=%d stderr=%q", code, stderr)
	}

	orig := serveListen
	defer func() { serveListen = orig }()

	var predictBody, healthBody string
	var predictStatus int
	serveListen = func(srv *http.Server) error {
		req := httptest.NewRequest(http.MethodPost, "/predict",
			strings.NewReader(`{"app":"Spark-kmeans","top":3}`))
		rec := httptest.NewRecorder()
		srv.Handler.ServeHTTP(rec, req)
		predictStatus = rec.Code
		predictBody = rec.Body.String()

		req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
		rec = httptest.NewRecorder()
		srv.Handler.ServeHTTP(rec, req)
		healthBody = rec.Body.String()
		return http.ErrServerClosed
	}

	code, stdout, stderr := run("serve", "-knowledge", kfile, "-addr", "127.0.0.1:0", "-workers", "2")
	if code != 0 {
		t.Fatalf("serve exit=%d stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, "serving knowledge from") || !strings.Contains(stdout, "POST /predict") {
		t.Fatalf("banner missing: %q", stdout)
	}
	if predictStatus != http.StatusOK {
		t.Fatalf("predict status=%d body=%q", predictStatus, predictBody)
	}
	if !strings.Contains(predictBody, `"target":"Spark-kmeans"`) ||
		!strings.Contains(predictBody, `"epoch":0`) {
		t.Fatalf("predict body: %q", predictBody)
	}
	if !strings.Contains(healthBody, `"status":"ok"`) {
		t.Fatalf("health body: %q", healthBody)
	}
}

func TestServeCommandErrors(t *testing.T) {
	// Missing knowledge file fails before any listener is started.
	if code, _, _ := run("serve", "-knowledge", "/nonexistent.json"); code != 1 {
		t.Fatal("missing knowledge file accepted")
	}
	// Flag errors are reported, not fatal to the process.
	if code, _, _ := run("serve", "-bogus-flag"); code != 1 {
		t.Fatal("bogus flag accepted")
	}
}
