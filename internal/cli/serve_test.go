package cli

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// TestServeCommand drives `vesta serve` end to end without binding a port:
// the listener hook is swapped for one that exercises the handler in-process
// while the command is live, then returns as if the server shut down.
func TestServeCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("full offline phase is expensive")
	}
	kfile := filepath.Join(t.TempDir(), "k.json")
	if code, _, stderr := run("profile", "-out", kfile, "-k", "9"); code != 0 {
		t.Fatalf("profile exit=%d stderr=%q", code, stderr)
	}

	orig := serveListen
	defer func() { serveListen = orig }()

	var predictBody, healthBody string
	var predictStatus int
	serveListen = func(srv *http.Server) error {
		req := httptest.NewRequest(http.MethodPost, "/predict",
			strings.NewReader(`{"app":"Spark-kmeans","top":3}`))
		rec := httptest.NewRecorder()
		srv.Handler.ServeHTTP(rec, req)
		predictStatus = rec.Code
		predictBody = rec.Body.String()

		req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
		rec = httptest.NewRecorder()
		srv.Handler.ServeHTTP(rec, req)
		healthBody = rec.Body.String()
		return http.ErrServerClosed
	}

	code, stdout, stderr := run("serve", "-knowledge", kfile, "-addr", "127.0.0.1:0", "-workers", "2")
	if code != 0 {
		t.Fatalf("serve exit=%d stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, "serving knowledge from") || !strings.Contains(stdout, "POST /predict") {
		t.Fatalf("banner missing: %q", stdout)
	}
	if predictStatus != http.StatusOK {
		t.Fatalf("predict status=%d body=%q", predictStatus, predictBody)
	}
	if !strings.Contains(predictBody, `"target":"Spark-kmeans"`) ||
		!strings.Contains(predictBody, `"epoch":0`) {
		t.Fatalf("predict body: %q", predictBody)
	}
	if !strings.Contains(healthBody, `"status":"ok"`) {
		t.Fatalf("health body: %q", healthBody)
	}
}

func TestServeCommandErrors(t *testing.T) {
	// Missing knowledge file fails before any listener is started.
	if code, _, _ := run("serve", "-knowledge", "/nonexistent.json"); code != 1 {
		t.Fatal("missing knowledge file accepted")
	}
	// Flag errors are reported, not fatal to the process.
	if code, _, _ := run("serve", "-bogus-flag"); code != 1 {
		t.Fatal("bogus flag accepted")
	}
}

// TestServeDurableRoundTrip is the kill-and-restart acceptance test: serve
// with -state-dir, absorb two targets, deliver a real SIGINT, and check that
// a second serve run recovers the absorbed state and answers the same predict
// request with byte-identical bodies.
func TestServeDurableRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full offline phase is expensive")
	}
	tmp := t.TempDir()
	kfile := filepath.Join(tmp, "k.json")
	stateDir := filepath.Join(tmp, "state")
	if code, _, stderr := run("profile", "-out", kfile, "-k", "9"); code != 0 {
		t.Fatalf("profile exit=%d stderr=%q", code, stderr)
	}

	orig := serveListen
	defer func() { serveListen = orig }()

	do := func(srv *http.Server, method, path, body string) (int, string) {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.Handler.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}

	// Run 1: absorb two targets, predict, then die by signal.
	var run1Predict string
	serveListen = func(srv *http.Server) error {
		for _, body := range []string{
			`{"name":"t1","app":"Spark-kmeans","seed":7}`,
			`{"name":"t2","app":"Spark-sort","seed":8}`,
		} {
			if code, resp := do(srv, http.MethodPost, "/absorb", body); code != http.StatusOK {
				t.Errorf("absorb %s: status=%d body=%q", body, code, resp)
			}
		}
		_, run1Predict = do(srv, http.MethodPost, "/predict", `{"app":"Spark-grep","top":5}`)
		// A real SIGINT: the drain-then-checkpoint path, not a clean return.
		done := make(chan struct{})
		srv.RegisterOnShutdown(func() { close(done) })
		if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
			t.Errorf("kill: %v", err)
			return http.ErrServerClosed
		}
		<-done
		return http.ErrServerClosed
	}
	code, stdout, stderr := run("serve", "-knowledge", kfile, "-state-dir", stateDir, "-workers", "2")
	if code != 0 {
		t.Fatalf("serve run 1 exit=%d stderr=%q", code, stderr)
	}
	for _, want := range []string{
		"durable state " + stateDir + ": recovered epoch 0 (0 replayed)",
		"signal received; draining",
		"final checkpoint at epoch 2 (15 workloads)",
	} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("run 1 stdout missing %q:\n%s", want, stdout)
		}
	}
	if !strings.Contains(run1Predict, `"epoch":2`) {
		t.Fatalf("run 1 predict body: %q", run1Predict)
	}

	// Run 2: recovery from the checkpoint, same bytes, conflicts remembered.
	var health, run2Predict, absorbDup string
	var dupCode int
	serveListen = func(srv *http.Server) error {
		_, health = do(srv, http.MethodGet, "/healthz", "")
		_, run2Predict = do(srv, http.MethodPost, "/predict", `{"app":"Spark-grep","top":5}`)
		dupCode, absorbDup = do(srv, http.MethodPost, "/absorb", `{"name":"t1","app":"Spark-kmeans","seed":7}`)
		return http.ErrServerClosed
	}
	code, stdout, stderr = run("serve", "-knowledge", kfile, "-state-dir", stateDir, "-workers", "2")
	if code != 0 {
		t.Fatalf("serve run 2 exit=%d stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, "durable state "+stateDir+": recovered epoch 2 (0 replayed)") {
		t.Fatalf("run 2 recovery banner missing:\n%s", stdout)
	}
	if !strings.Contains(health, `"epoch":2`) || !strings.Contains(health, `"workloads":15`) {
		t.Fatalf("run 2 health: %q", health)
	}
	if run2Predict != run1Predict {
		t.Fatalf("recovered predict body differs:\nrun1: %q\nrun2: %q", run1Predict, run2Predict)
	}
	if dupCode != http.StatusConflict {
		t.Fatalf("re-absorb status=%d body=%q, want 409", dupCode, absorbDup)
	}
}
