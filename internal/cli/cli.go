// Package cli implements the vesta command line front-end. It lives in an
// internal package (rather than in cmd/vesta) so every subcommand is unit
// testable with injected output streams.
//
// Subcommands:
//
//	vesta catalog  [-category C] [-family F]   list the VM type catalog
//	vesta workloads [-set S] [-framework F]    list the Table 3 applications
//	vesta simulate -app A -vm V [-nodes N]     profile one app on one VM type
//	vesta profile  -out knowledge.json         run the offline phase and save knowledge
//	vesta predict  -knowledge K -app A         predict the best VM for a target
//	vesta serve    -knowledge K -addr HOST:P   serve predictions over HTTP/JSON
//	vesta route    -backends URL1,URL2,...     front a replicated serving fleet
//	vesta rollout  -leader URL -candidate F    health-gated staged fleet upgrade
//
// serve accepts -state-dir DIR to make absorbed serving state durable: every
// POST /absorb is write-ahead logged and fsynced before it is published,
// startup recovers base + checkpoint + WAL (truncating a torn tail), and
// SIGINT/SIGTERM drain in-flight requests then write a final checkpoint
// (DESIGN.md §11). With -replicate a serve node is a replication leader
// (followers sync WAL frames from GET /replicate/frames); with -follow URL it
// is a read-only follower replaying that leader (push-style long-poll
// streaming by default; -long-poll 0 falls back to interval polling). route
// consistent-hashes predict traffic across follower backends, probes their
// /healthz, and fails over with bounded retries + jittered backoff
// (DESIGN.md §13). rollout promotes an encoded candidate snapshot across the
// fleet in health-gated stages with automatic rollback and a journaled,
// crash-resumable decision log (DESIGN.md §16); the fleet must run with
// -rollout to expose the control plane.
//
// profile and predict accept -fault-rate R and -retries N to rehearse the
// pipeline under deterministic infrastructure fault injection (spot
// preemption, launch failures, stragglers, OOM kills, sampler dropout) with
// the resilient retry layer; the default rate 0 is byte-identical to the
// fault-free pipeline. They also accept -trace out.jsonl (deterministic
// observability records — spans, counters, per-epoch gauges — byte-identical
// at every -workers value, DESIGN.md §9) and -v (verbose wall-clock progress
// on stderr, outside the determinism contract).
//
//	vesta heatmap  -app A                      render a Figure 1 style budget heat map
//	vesta collect  -store DIR -app A [...]     profile and persist measurements
//	vesta history  -store DIR [-app A]         query persisted measurements
//
// All measurements run against the deterministic cluster simulator (see
// DESIGN.md); real EC2 is substituted by the synthetic catalog and the BSP
// execution model.
package cli

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"vesta/internal/chaos"
	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/metrics"
	"vesta/internal/obs"
	"vesta/internal/oracle"
	"vesta/internal/portfolio"
	"vesta/internal/sim"
	"vesta/internal/store"
	"vesta/internal/traceview"
	"vesta/internal/workload"
)

// Run dispatches a vesta invocation (args excludes the program name) and
// returns the process exit code. All output goes to the provided writers.
func Run(args []string, stdout, stderr io.Writer) int {
	outW = stdout
	errW = stderr
	f := newFactory(stdout, stderr)
	if len(args) < 1 {
		usage()
		return 2
	}
	var err error
	switch args[0] {
	case "catalog":
		err = cmdCatalog(args[1:])
	case "workloads":
		err = cmdWorkloads(args[1:])
	case "simulate":
		err = cmdSimulate(args[1:])
	case "profile":
		err = cmdProfile(f, args[1:])
	case "predict":
		err = cmdPredict(f, args[1:])
	case "serve":
		err = cmdServe(f, args[1:])
	case "route":
		err = cmdRoute(f, args[1:])
	case "rollout":
		err = cmdRollout(f, args[1:])
	case "loadgen":
		err = cmdLoadgen(f, args[1:])
	case "heatmap":
		err = cmdHeatmap(args[1:])
	case "inspect":
		err = cmdInspect(args[1:])
	case "collect":
		err = cmdCollect(args[1:])
	case "history":
		err = cmdHistory(args[1:])
	case "clustersize":
		err = cmdClusterSize(args[1:])
	case "knowledge":
		err = cmdKnowledge(args[1:])
	case "plan":
		err = cmdPlan(args[1:])
	case "compare":
		err = cmdCompare(args[1:])
	case "help", "-h", "--help":
		usage()
		return 0
	default:
		fmt.Fprintf(errW, "vesta: unknown subcommand %q\n\n", args[0])
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(errW, "vesta:", err)
		return 1
	}
	return 0
}

// outW and errW are the invocation's output streams, set by Run.
var (
	outW io.Writer = os.Stdout
	errW io.Writer = os.Stderr
)

func usage() {
	fmt.Fprint(errW, `usage: vesta <subcommand> [flags]

subcommands:
  catalog     list the 120 VM types of the evaluation catalog
  workloads   list the 30 applications of Table 3
  simulate    profile one application on one VM type
  profile     run the offline phase on the source workloads, save knowledge
  predict     predict the best VM type for a target workload
  serve       serve predictions concurrently over HTTP/JSON
  route       front a replicated serving fleet (consistent hashing + failover)
  rollout     health-gated staged fleet upgrade with automatic rollback
  loadgen     deterministic open-loop load generation, admission tuning, capacity plans
  heatmap     render a budget heat map for an application (Figure 1 style)
  inspect     render a profiling run's metric trace (sparklines + phases)
  collect     profile applications and persist the measurements to a store
  history     query a measurement store
  clustersize recommend a cluster size for a workload on a VM type
  knowledge   inspect a knowledge file (labels, members, top VMs)
  plan        portfolio-plan VM types for several applications at once
  compare     compare VM types side by side for one application

run 'vesta <subcommand> -h' for flags.
`)
}

func cmdCatalog(args []string) error {
	fs := flag.NewFlagSet("catalog", flag.ContinueOnError)
	fs.SetOutput(errW)
	category := fs.String("category", "", "filter by category (e.g. 'Compute Optimized')")
	family := fs.String("family", "", "filter by family (e.g. C5)")
	provider := fs.String("provider", "", "provider catalog: ec2 (default), azure, gcp, or all (the multi-cloud union)")
	addr := fs.String("addr", "", "query a running 'vesta serve' at this base URL instead of the built-in tables (GET /catalog)")
	apply := fs.String("apply", "", "apply the catalog-update JSON in this file to the server at -addr (POST /catalog): live retire/reprice/spot/add")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *apply != "" {
		if *addr == "" {
			return fmt.Errorf("catalog: -apply needs -addr (the server to update)")
		}
		return applyCatalogUpdate(*addr, *apply)
	}
	var cat []cloud.VMType
	if *addr != "" {
		live, version, err := fetchCatalog(*addr)
		if err != nil {
			return err
		}
		fmt.Fprintf(outW, "catalog version %d (%d types) from %s\n", version, len(live), *addr)
		cat = live
	} else {
		switch *provider {
		case "", cloud.ProviderEC2:
			cat = cloud.Catalog120()
		case cloud.ProviderAzure:
			cat = cloud.AzureCatalog()
		case cloud.ProviderGCP:
			cat = cloud.GCPCatalog()
		case "all":
			cat = cloud.MultiCloud()
		default:
			return fmt.Errorf("catalog: unknown provider %q (ec2, azure, gcp, all)", *provider)
		}
	}
	if *category != "" {
		cat = cloud.FilterCategory(cat, cloud.Category(*category))
	}
	if *family != "" {
		cat = cloud.FilterFamily(cat, *family)
	}
	if len(cat) == 0 {
		return fmt.Errorf("no VM types match the filters")
	}
	w := tabwriter.NewWriter(outW, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "NAME\tPROVIDER\tCATEGORY\tvCPU\tMEM(GiB)\tDISK(MB/s)\tNET(Gbps)\tUSD/h\tSPOT/h")
	for _, v := range cat {
		p := v.Provider
		if p == "" {
			p = cloud.ProviderEC2
		}
		spot := "-"
		if v.HasSpot() {
			spot = fmt.Sprintf("%.4f", v.SpotPriceHour)
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%.1f\t%.0f\t%.1f\t%.4f\t%s\n",
			v.Name, p, v.Category, v.VCPUs, v.MemoryGiB, v.DiskMBps, v.NetworkGbps, v.PriceHour, spot)
	}
	return w.Flush()
}

func cmdWorkloads(args []string) error {
	fs := flag.NewFlagSet("workloads", flag.ContinueOnError)
	fs.SetOutput(errW)
	set := fs.String("set", "", "filter by set (source-training|source-testing|target)")
	fw := fs.String("framework", "", "filter by framework (Hadoop|Hive|Spark)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := tabwriter.NewWriter(outW, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "NO\tNAME\tFRAMEWORK\tKERNEL\tCLASS\tSUITE\tSET\tINPUT(GB)")
	for _, a := range workload.All() {
		if *set != "" && string(a.Set) != *set {
			continue
		}
		if *fw != "" && string(a.Framework) != *fw {
			continue
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\t%s\t%s\t%.1f\n",
			a.No, a.Name, a.Framework, a.Kernel, a.Class, a.Suite, a.Set, a.InputGB)
	}
	return w.Flush()
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	fs.SetOutput(errW)
	appName := fs.String("app", "", "application name from Table 3 (required)")
	vmName := fs.String("vm", "m5.xlarge", "VM type name")
	nodes := fs.Int("nodes", 4, "cluster size")
	repeats := fs.Int("repeats", 10, "repeated runs (P90 protocol)")
	inputGB := fs.Float64("input", 0, "override input size in GB")
	seed := fs.Uint64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *appName == "" {
		return fmt.Errorf("simulate: -app is required")
	}
	app, err := workload.ByName(*appName)
	if err != nil {
		return err
	}
	if *inputGB > 0 {
		app = app.WithInput(*inputGB)
	}
	vm, err := cloud.Find(cloud.Catalog120(), *vmName)
	if err != nil {
		return err
	}
	s := sim.New(sim.Config{Nodes: *nodes, Repeats: *repeats})
	p := s.ProfileRun(app, vm, *seed)

	fmt.Fprintf(outW, "%s on %d x %s\n", app, *nodes, vm)
	fmt.Fprintf(outW, "  P90 execution time : %.1f s\n", p.P90Seconds)
	fmt.Fprintf(outW, "  mean execution time: %.1f s over %d runs\n", p.MeanSec, len(p.Runs))
	fmt.Fprintf(outW, "  budget (P90)       : $%.4f\n", p.CostUSD)
	fmt.Fprintf(outW, "  metric samples     : %d every %.1f s\n", p.Trace.Len(), p.Trace.SampleSec)
	fmt.Fprintln(outW, "  correlation similarities (Table 1):")
	for i := 0; i < metrics.NumCorrelations; i++ {
		fmt.Fprintf(outW, "    %-28s %+.2f\n", metrics.CorrelationNames[i], p.Corr[i])
	}
	return nil
}

// newService builds the measurement service for the profile and predict
// subcommands. A zero fault rate returns the plain meter — behaviour and
// output stay byte-identical to the CLI before fault injection existed. A
// positive rate runs the simulator under a chaos plan seeded from the run
// seed and wraps the meter in the resilient retry layer. A non-nil tracer is
// threaded into the simulator (fault events) and the meter (profile spans).
func newService(seed uint64, faultRate float64, retries int, tracer *obs.Tracer) (oracle.Service, *oracle.Resilient) {
	cfg := sim.DefaultConfig()
	cfg.Tracer = tracer
	if faultRate <= 0 {
		return oracle.NewMeter(sim.New(cfg), seed).SetTracer(tracer), nil
	}
	cfg.Chaos = chaos.NewPlan(seed, chaos.Uniform(faultRate))
	policy := oracle.DefaultRetryPolicy()
	policy.MaxRetries = retries
	r := oracle.NewResilient(oracle.NewMeter(sim.New(cfg), seed).SetTracer(tracer), policy)
	return r, r
}

func cmdProfile(f *Factory, args []string) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	fs.SetOutput(f.Err)
	out := fs.String("out", "knowledge.json", "output knowledge file")
	k := fs.Int("k", 9, "number of K-Means labels")
	seed := fs.Uint64("seed", 1, "training seed")
	testing := fs.Bool("include-testing", false, "also train on the 5 source-testing workloads")
	workers := fs.Int("workers", 0, "worker pool size for profiling and clustering (0 = one per CPU); results are identical at every value")
	faultRate := fs.Float64("fault-rate", 0, "inject every infrastructure fault class at this per-run rate (0 = off)")
	retries := fs.Int("retries", 3, "profile retries under fault injection (used with -fault-rate)")
	tracePath := fs.String("trace", "", "write deterministic trace records (spans, counters, gauges) to this JSONL file")
	verbose := fs.Bool("v", false, "stream verbose progress (wall timings, worker occupancy) to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sources := workload.BySet(workload.SourceTraining)
	if *testing {
		sources = workload.SourceSet()
	}
	tracer := f.Tracer(*tracePath, *verbose)
	sys, err := core.New(core.Config{K: *k, Seed: *seed, Workers: *workers, Tracer: tracer}, cloud.Catalog120())
	if err != nil {
		return err
	}
	meter, resil := f.Service(*seed, *faultRate, *retries, tracer)
	fmt.Fprintf(f.Out, "profiling %d source workloads on %d VM types...\n", len(sources), 120)
	if err := sys.TrainOffline(sources, meter); err != nil {
		return err
	}
	w, err := f.Create(*out)
	if err != nil {
		return err
	}
	defer w.Close()
	if err := sys.SaveKnowledge(w); err != nil {
		return err
	}
	kn := sys.Knowledge()
	fmt.Fprintf(f.Out, "offline phase complete: %d reference VMs, %d labels, %d/%d correlation features kept\n",
		kn.OfflineRuns, len(kn.Labels), len(kn.Kept), metrics.NumCorrelations)
	if resil != nil {
		f.printResilience(resil)
		if kn.SkippedCells > 0 || len(kn.DroppedSources) > 0 || kn.InvalidVectors > 0 {
			fmt.Fprintf(f.Out, "degraded: %d cells skipped, %d invalid vectors, dropped sources %v\n",
				kn.SkippedCells, kn.InvalidVectors, kn.DroppedSources)
		}
	}
	fmt.Fprintf(f.Out, "knowledge written to %s\n", *out)
	return f.writeTrace(tracer, *tracePath)
}

func cmdPredict(f *Factory, args []string) error {
	fs := flag.NewFlagSet("predict", flag.ContinueOnError)
	fs.SetOutput(f.Err)
	knowledgeFile := fs.String("knowledge", "knowledge.json", "knowledge file from 'vesta profile'")
	appName := fs.String("app", "", "target application from Table 3 (required)")
	topN := fs.Int("top", 10, "how many ranked VM types to print")
	seed := fs.Uint64("seed", 1, "online seed")
	workers := fs.Int("workers", 0, "worker pool size for the online phase (0 = one per CPU); results are identical at every value")
	faultRate := fs.Float64("fault-rate", 0, "inject every infrastructure fault class at this per-run rate (0 = off)")
	retries := fs.Int("retries", 3, "profile retries under fault injection (used with -fault-rate)")
	tracePath := fs.String("trace", "", "write deterministic trace records (spans, counters, gauges) to this JSONL file")
	verbose := fs.Bool("v", false, "stream verbose progress (wall timings, worker occupancy) to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *appName == "" {
		return fmt.Errorf("predict: -app is required")
	}
	app, err := workload.ByName(*appName)
	if err != nil {
		return err
	}
	tracer := f.Tracer(*tracePath, *verbose)
	sys, err := core.New(core.Config{Seed: *seed, Workers: *workers, Tracer: tracer}, cloud.Catalog120())
	if err != nil {
		return err
	}
	kf, err := f.Open(*knowledgeFile)
	if err != nil {
		return err
	}
	defer kf.Close()
	if err := sys.LoadKnowledge(kf); err != nil {
		return err
	}
	meter, resil := f.Service(*seed, *faultRate, *retries, tracer)
	pred, err := sys.PredictOnline(app, meter)
	if err != nil {
		return err
	}
	fmt.Fprintf(f.Out, "target: %s\n", app)
	fmt.Fprintf(f.Out, "online overhead: %d reference VMs (sandbox + random initialization)\n", pred.OnlineRuns)
	if pred.InitFailures > 0 {
		fmt.Fprintf(f.Out, "degraded: %d reference VM campaigns abandoned and substituted\n", pred.InitFailures)
	}
	if !pred.Converged {
		fmt.Fprintf(f.Out, "WARNING: transfer did not converge (match distance %.2f); falling back to sandbox-only knowledge\n",
			pred.MatchDistance)
	}
	fmt.Fprintf(f.Out, "predicted best VM type: %s\n\n", pred.Best)
	fmt.Fprintf(f.Out, "top %d ranking:\n", *topN)
	w := tabwriter.NewWriter(f.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "RANK\tVM TYPE\tSCORE\tPREDICTED TIME(s)\tPREDICTED BUDGET($)")
	nodes := meter.SimConfig().Nodes
	byName := cloud.ByName(cloud.Catalog120())
	for i, r := range pred.Ranking {
		if i >= *topN {
			break
		}
		sec := pred.PredictedSec[r.VM]
		usd := sec / 3600 * byName[r.VM].PriceHour * float64(nodes)
		fmt.Fprintf(w, "%d\t%s\t%.3f\t%.1f\t%.4f\n", i+1, r.VM, r.Score, sec, usd)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	f.printResilience(resil)
	return f.writeTrace(tracer, *tracePath)
}

func cmdHeatmap(args []string) error {
	fs := flag.NewFlagSet("heatmap", flag.ContinueOnError)
	fs.SetOutput(errW)
	appName := fs.String("app", "", "application from Table 3 (required)")
	nodes := fs.Int("nodes", 4, "cluster size")
	seed := fs.Uint64("seed", 1, "simulation seed")
	byTime := fs.Bool("time", false, "color by execution time instead of budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *appName == "" {
		return fmt.Errorf("heatmap: -app is required")
	}
	app, err := workload.ByName(*appName)
	if err != nil {
		return err
	}
	s := sim.New(sim.Config{Nodes: *nodes, Repeats: 5})
	catalog := cloud.Catalog120()

	// Collect value per VM.
	value := map[string]float64{}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, vm := range catalog {
		p := s.ProfileRun(app, vm, *seed)
		v := p.CostUSD
		if *byTime {
			v = p.P90Seconds
		}
		value[vm.Name] = v
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}

	// Axes: distinct vCPU counts x distinct GiB/vCPU ratios.
	cpuSet := map[int]bool{}
	ratioSet := map[float64]bool{}
	for _, vm := range catalog {
		cpuSet[vm.VCPUs] = true
		ratioSet[round1(vm.MemPerVCPU())] = true
	}
	var cpus []int
	for c := range cpuSet {
		cpus = append(cpus, c)
	}
	sort.Ints(cpus)
	var ratios []float64
	for r := range ratioSet {
		ratios = append(ratios, r)
	}
	sort.Float64s(ratios)

	metric := "budget"
	if *byTime {
		metric = "execution time"
	}
	fmt.Fprintf(outW, "%s heat map of %s (0 = best, 9 = worst, . = no such shape)\n", metric, app.Name)
	fmt.Fprintf(outW, "%9s", "GiB/vCPU")
	for _, c := range cpus {
		fmt.Fprintf(outW, "%4d", c)
	}
	fmt.Fprintln(outW, " <- total vCPUs per node")
	for i := len(ratios) - 1; i >= 0; i-- {
		fmt.Fprintf(outW, "%9.1f", ratios[i])
		for _, c := range cpus {
			best := math.Inf(1)
			for _, vm := range catalog {
				if vm.VCPUs == c && round1(vm.MemPerVCPU()) == ratios[i] {
					if v := value[vm.Name]; v < best {
						best = v
					}
				}
			}
			if math.IsInf(best, 1) {
				fmt.Fprintf(outW, "%4s", ".")
				continue
			}
			d := int(9 * (math.Log(best) - math.Log(lo)) / (math.Log(hi) - math.Log(lo)))
			fmt.Fprintf(outW, "%4d", d)
		}
		fmt.Fprintln(outW)
	}
	return nil
}

func round1(x float64) float64 { return math.Round(x*10) / 10 }

func cmdCollect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ContinueOnError)
	fs.SetOutput(errW)
	dir := fs.String("store", "vesta-store", "measurement store directory")
	appName := fs.String("app", "", "application from Table 3 (required)")
	vmName := fs.String("vm", "", "single VM type; empty profiles the whole catalog")
	nodes := fs.Int("nodes", 4, "cluster size")
	repeats := fs.Int("repeats", 10, "repeated runs per configuration")
	withTrace := fs.Bool("trace", false, "persist the sampled metric traces (CSV sidecars)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *appName == "" {
		return fmt.Errorf("collect: -app is required")
	}
	app, err := workload.ByName(*appName)
	if err != nil {
		return err
	}
	st, err := store.Open(*dir)
	if err != nil {
		return err
	}
	catalog := cloud.Catalog120()
	var vms []cloud.VMType
	if *vmName != "" {
		vm, err := cloud.Find(catalog, *vmName)
		if err != nil {
			return err
		}
		vms = []cloud.VMType{vm}
	} else {
		vms = catalog
	}
	s := sim.New(sim.Config{Nodes: *nodes, Repeats: *repeats})
	for i, vm := range vms {
		p := s.ProfileRun(app, vm, *seed)
		if err := st.Put(p, *withTrace); err != nil {
			return err
		}
		if (i+1)%20 == 0 || i == len(vms)-1 {
			fmt.Fprintf(outW, "collected %d/%d configurations\n", i+1, len(vms))
		}
	}
	fmt.Fprintf(outW, "store %s now holds %d records\n", st.Dir(), st.Len())
	return nil
}

func cmdHistory(args []string) error {
	fs := flag.NewFlagSet("history", flag.ContinueOnError)
	fs.SetOutput(errW)
	dir := fs.String("store", "vesta-store", "measurement store directory")
	appName := fs.String("app", "", "filter by application")
	vmName := fs.String("vm", "", "filter by VM type")
	best := fs.Bool("best", false, "show only the best record per application")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := store.Open(*dir)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(outW, 2, 4, 2, ' ', 0)
	defer w.Flush()
	if *best {
		fmt.Fprintln(w, "APPLICATION\tBEST VM\tP90(s)\tBUDGET($)")
		for _, app := range st.Apps() {
			rec, err := st.BestByTime(app)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\t%s\t%.1f\t%.4f\n", rec.App, rec.VM, rec.P90Seconds, rec.CostUSD)
		}
		return nil
	}
	recs := st.Find(store.Query{App: *appName, VM: *vmName})
	if len(recs) == 0 {
		return fmt.Errorf("history: no matching records in %s", st.Dir())
	}
	fmt.Fprintln(w, "APPLICATION\tFRAMEWORK\tVM\tP90(s)\tMEAN(s)\tBUDGET($)\tRUNS\tTRACE")
	for _, r := range recs {
		trace := "-"
		if r.TraceFile != "" {
			trace = r.TraceFile
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%.1f\t%.1f\t%.4f\t%d\t%s\n",
			r.App, r.Framework, r.VM, r.P90Seconds, r.MeanSec, r.CostUSD, len(r.Runs), trace)
	}
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	fs.SetOutput(errW)
	appName := fs.String("app", "", "application from Table 3 (required)")
	vmName := fs.String("vm", "m5.xlarge", "VM type")
	nodes := fs.Int("nodes", 4, "cluster size")
	width := fs.Int("width", 48, "sparkline width")
	seed := fs.Uint64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *appName == "" {
		return fmt.Errorf("inspect: -app is required")
	}
	app, err := workload.ByName(*appName)
	if err != nil {
		return err
	}
	vm, err := cloud.Find(cloud.Catalog120(), *vmName)
	if err != nil {
		return err
	}
	p := sim.New(sim.Config{Nodes: *nodes, Repeats: 3}).ProfileRun(app, vm, *seed)
	fmt.Fprintf(outW, "%s on %d x %s (P90 %.1f s)\n", app.Name, *nodes, vm.Name, p.P90Seconds)
	fmt.Fprint(outW, traceview.Render(p.Trace, *width))
	fmt.Fprintln(outW, "correlation similarities:")
	for i := 0; i < metrics.NumCorrelations; i++ {
		fmt.Fprintf(outW, "  %-28s %+.2f\n", metrics.CorrelationNames[i], p.Corr[i])
	}
	return nil
}

func cmdClusterSize(args []string) error {
	fs := flag.NewFlagSet("clustersize", flag.ContinueOnError)
	fs.SetOutput(errW)
	knowledgeFile := fs.String("knowledge", "knowledge.json", "knowledge file from 'vesta profile'")
	appName := fs.String("app", "", "target application from Table 3 (required)")
	vmName := fs.String("vm", "m5.xlarge", "VM type to size the cluster of")
	seed := fs.Uint64("seed", 1, "online seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *appName == "" {
		return fmt.Errorf("clustersize: -app is required")
	}
	app, err := workload.ByName(*appName)
	if err != nil {
		return err
	}
	sys, err := core.New(core.Config{Seed: *seed}, cloud.Catalog120())
	if err != nil {
		return err
	}
	f, err := os.Open(*knowledgeFile)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := sys.LoadKnowledge(f); err != nil {
		return err
	}
	meter := oracle.NewMeter(sim.New(sim.DefaultConfig()), *seed)
	rec, err := sys.RecommendClusterSize(app, *vmName, []int{2, 4, 8, 16, 32}, meter)
	if err != nil {
		return err
	}
	lean := "fat (parallelism-leaning)"
	if rec.Thin {
		lean = "thin (iteration-leaning)"
	}
	fmt.Fprintf(outW, "%s on %s: %s workload\n", rec.Target, rec.VM, lean)
	w := tabwriter.NewWriter(outW, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "NODES\tP90(s)\tBUDGET($)\tMEASURED")
	for _, opt := range rec.Options {
		if opt.Measured {
			fmt.Fprintf(w, "%d\t%.1f\t%.4f\tyes\n", opt.Nodes, opt.P90Seconds, opt.CostUSD)
		} else {
			fmt.Fprintf(w, "%d\t-\t-\tpruned\n", opt.Nodes)
		}
	}
	w.Flush()
	fmt.Fprintf(outW, "recommended: %d nodes (fastest), %d nodes (cheapest); %d reference runs\n",
		rec.BestByTime, rec.BestByCost, rec.Runs)
	return nil
}

func cmdKnowledge(args []string) error {
	fs := flag.NewFlagSet("knowledge", flag.ContinueOnError)
	fs.SetOutput(errW)
	knowledgeFile := fs.String("knowledge", "knowledge.json", "knowledge file from 'vesta profile'")
	topVMs := fs.Int("top", 3, "top VM types to show per label")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys, err := core.New(core.Config{}, cloud.Catalog120())
	if err != nil {
		return err
	}
	f, err := os.Open(*knowledgeFile)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := sys.LoadKnowledge(f); err != nil {
		return err
	}
	k := sys.Knowledge()
	st := k.Graph.Stats(0.05)
	fmt.Fprintf(outW, "knowledge: %d source workloads, %d labels, %d VM types\n",
		st.Workloads, st.Labels, st.VMs)
	fmt.Fprintf(outW, "edges (weight > 0.05): %d source workload-label, %d target, %d label-VM\n",
		st.SourceEdges, st.TargetEdges, st.LabelVMEdges)
	fmt.Fprintf(outW, "kept correlation features: %v of %d\n\n", k.Kept, metrics.NumCorrelations)
	for li, label := range k.Labels {
		// Members: sources whose strongest membership is this label.
		var members []string
		for i, m := range k.SourceMemberships {
			best := 0
			for c := range m {
				if m[c] > m[best] {
					best = c
				}
			}
			if best == li {
				members = append(members, k.SourceNames[i])
			}
		}
		fmt.Fprintf(outW, "%s: members %v\n", label, members)
		weights := make([]float64, len(k.Labels))
		weights[li] = 1
		scores := k.Graph.ScoreVMsFromWeights(weights)
		fmt.Fprintf(outW, "  top VMs:")
		for i, sc := range scores {
			if i >= *topVMs {
				break
			}
			fmt.Fprintf(outW, " %s(%.2f)", sc.VM, sc.Score)
		}
		fmt.Fprintln(outW)
	}
	return nil
}

func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ContinueOnError)
	fs.SetOutput(errW)
	knowledgeFile := fs.String("knowledge", "knowledge.json", "knowledge file from 'vesta profile'")
	appsFlag := fs.String("apps", "", "comma-separated Table 3 applications (required)")
	deadline := fs.Float64("deadline", 0, "per-application deadline in seconds (0 = none)")
	nodes := fs.Int("nodes", 4, "cluster size per application")
	seed := fs.Uint64("seed", 1, "online seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *appsFlag == "" {
		return fmt.Errorf("plan: -apps is required")
	}
	sys, err := core.New(core.Config{Seed: *seed}, cloud.Catalog120())
	if err != nil {
		return err
	}
	f, err := os.Open(*knowledgeFile)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := sys.LoadKnowledge(f); err != nil {
		return err
	}
	var reqs []portfolio.Request
	for _, name := range strings.Split(*appsFlag, ",") {
		app, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		reqs = append(reqs, portfolio.Request{App: app, DeadlineSec: *deadline})
	}
	planner, err := portfolio.New(sys, cloud.Catalog120(), *nodes)
	if err != nil {
		return err
	}
	meter := oracle.NewMeter(sim.New(sim.Config{Nodes: *nodes}), *seed)
	res, err := planner.Plan(reqs, meter)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(outW, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "APPLICATION\tFRAMEWORK\tVM\tPRED TIME(s)\tPRED BUDGET($)\tDEADLINE")
	for _, a := range res.Assignments {
		status := "ok"
		if !a.MeetsDeadline {
			status = "VIOLATED"
		}
		if *deadline == 0 {
			status = "-"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%.1f\t%.4f\t%s\n",
			a.App, a.Framework, a.VM, a.PredictedSec, a.PredictedUSD, status)
	}
	w.Flush()
	fmt.Fprintln(outW, res.Summary())
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.SetOutput(errW)
	appName := fs.String("app", "", "application from Table 3 (required)")
	vmsFlag := fs.String("vms", "m5.xlarge,c5.xlarge,r5.xlarge,i3.xlarge,z1d.xlarge", "comma-separated VM types")
	nodes := fs.Int("nodes", 4, "cluster size")
	repeats := fs.Int("repeats", 10, "repeated runs per configuration")
	seed := fs.Uint64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *appName == "" {
		return fmt.Errorf("compare: -app is required")
	}
	app, err := workload.ByName(*appName)
	if err != nil {
		return err
	}
	s := sim.New(sim.Config{Nodes: *nodes, Repeats: *repeats})
	catalog := cloud.Catalog120()

	type row struct {
		vm   cloud.VMType
		prof sim.Profile
	}
	var rows []row
	for _, name := range strings.Split(*vmsFlag, ",") {
		vm, err := cloud.Find(catalog, strings.TrimSpace(name))
		if err != nil {
			return err
		}
		rows = append(rows, row{vm: vm, prof: s.ProfileRun(app, vm, *seed)})
	}
	// Fastest first.
	sort.Slice(rows, func(i, j int) bool { return rows[i].prof.P90Seconds < rows[j].prof.P90Seconds })

	fmt.Fprintf(outW, "%s on %d nodes (P90 over %d runs)\n", app, *nodes, *repeats)
	w := tabwriter.NewWriter(outW, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "VM TYPE\tvCPU\tMEM(GiB)\tP90(s)\tvs BEST\tBUDGET($)\tvs CHEAPEST")
	bestSec := rows[0].prof.P90Seconds
	cheapest := rows[0].prof.CostUSD
	for _, r := range rows {
		if r.prof.CostUSD < cheapest {
			cheapest = r.prof.CostUSD
		}
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.1f\t%+.0f%%\t%.4f\t%+.0f%%\n",
			r.vm.Name, r.vm.VCPUs, r.vm.MemoryGiB,
			r.prof.P90Seconds, (r.prof.P90Seconds/bestSec-1)*100,
			r.prof.CostUSD, (r.prof.CostUSD/cheapest-1)*100)
	}
	return w.Flush()
}
