package cli

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vesta/internal/replicate"
)

// routeListen starts the router's HTTP server; swapped out by tests so
// cmdRoute can be exercised without binding a real port.
var routeListen = func(srv *http.Server) error { return srv.ListenAndServe() }

// cmdRoute fronts a replicated serving fleet: predict requests are
// consistent-hashed across the healthy followers, backends are health-probed
// continuously, and a failed or stale backend is failed over with bounded
// retries and jittered backoff (DESIGN.md §13).
func cmdRoute(f *Factory, args []string) error {
	fs := flag.NewFlagSet("route", flag.ContinueOnError)
	fs.SetOutput(f.Err)
	addr := fs.String("addr", "127.0.0.1:8380", "listen address")
	backendsFlag := fs.String("backends", "", "comma-separated follower base URLs (required)")
	vnodes := fs.Int("vnodes", 64, "ring points per backend (hash smoothing)")
	retries := fs.Int("retries", 2, "failover attempts after the first backend fails")
	probeInterval := fs.Duration("probe-interval", time.Second, "health probe period: how often every backend's /healthz is re-checked; an unhealthy backend rejoins the ring at the next passing probe")
	probeTimeout := fs.Duration("probe-timeout", 5*time.Second, "per-probe timeout: a /healthz answer slower than this marks the backend unhealthy until a later probe passes. Note: a backend shedding load answers /predict 503 with Retry-After yet stays probe-healthy — Retry-After steers client backoff, not ring membership")
	seed := fs.Uint64("seed", 1, "retry-jitter seed")
	tracePath := fs.String("trace", "", "write trace records to this JSONL file on shutdown")
	verbose := fs.Bool("v", false, "stream verbose progress to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *backendsFlag == "" {
		return fmt.Errorf("route: -backends is required")
	}
	tracer := f.Tracer(*tracePath, *verbose)
	router, err := replicate.NewRouter(replicate.RouterConfig{
		Backends:     strings.Split(*backendsFlag, ","),
		Vnodes:       *vnodes,
		Retries:      *retries,
		Seed:         *seed,
		ProbeTimeout: *probeTimeout,
		Tracer:       tracer,
		// Probe transitions (health flips, staged rollout versions, follower
		// replication counters) are operator signal, not debug chatter.
		Logf: func(format string, args ...any) {
			fmt.Fprintf(f.Err, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	healthy := router.ProbeAll()
	st := router.Stats()
	fmt.Fprintf(f.Out, "routing across %d backends (%d healthy, epoch floor %d) on http://%s\n",
		len(st.Backends), healthy, st.Floor, *addr)
	fmt.Fprintf(f.Out, "endpoints: POST /predict, GET /healthz, GET /stats\n")

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           router.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      90 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go router.Run(ctx, *probeInterval)
	listenErr := make(chan error, 1)
	go func() { listenErr <- f.RouteListen(httpSrv) }()
	select {
	case <-ctx.Done():
		stop()
		fmt.Fprintf(f.Out, "signal received; draining...\n")
		drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		err = httpSrv.Shutdown(drainCtx)
		cancel()
		if lerr := <-listenErr; lerr != nil && lerr != http.ErrServerClosed && err == nil {
			err = lerr
		}
		if err != nil {
			return err
		}
	case err := <-listenErr:
		if err != nil && err != http.ErrServerClosed {
			return err
		}
	}
	return f.writeTrace(tracer, *tracePath)
}
