package cli

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/rollout"
	"vesta/internal/wal"
)

// maxRolloutInputBytes bounds the candidate and manifest files cmdRollout
// reads; a candidate snapshot is a few MB, a manifest a few hundred bytes.
const maxRolloutInputBytes = 256 << 20

// cmdRollout drives a health-gated staged upgrade across a serving fleet
// (DESIGN.md §16): canary -> partial -> full follower waves, each gated on
// health probes plus a golden predict replay against the incumbent, then a
// leader-first commit — or an automatic fleet-wide rollback on the first
// failed gate. Every decision is journaled before it is acted on, so
// re-running the command with the same -journal resumes a crashed rollout
// deterministically.
func cmdRollout(f *Factory, args []string) error {
	fs := flag.NewFlagSet("rollout", flag.ContinueOnError)
	fs.SetOutput(f.Err)
	leaderURL := fs.String("leader", "", "leader base URL (required; the node must run 'vesta serve -rollout')")
	followersFlag := fs.String("followers", "", "comma-separated follower base URLs, staged in this order (each must run with -rollout)")
	candidateFile := fs.String("candidate", "", "raw encoded candidate snapshot file (one of -candidate / -candidate-knowledge is required)")
	candKnow := fs.String("candidate-knowledge", "", "knowledge file from 'vesta profile' to promote; encoded locally under -seed/-multicloud, which must match the fleet's serve flags")
	seed := fs.Uint64("seed", 1, "snapshot seed used when encoding -candidate-knowledge (must match the fleet's 'serve -seed')")
	multicloud := fs.Bool("multicloud", false, "encode -candidate-knowledge against the multi-cloud catalog (must match the fleet's 'serve -multicloud')")
	manifestFile := fs.String("manifest", "", "rollout manifest JSON (promotion stages + gate budgets); empty takes the defaults: canary then full, 5% deviation budget, 90% best-VM agreement")
	journalPath := fs.String("journal", "rollout.journal", "decision journal path; an existing journal resumes the rollout it records")
	version := fs.String("version", "", "candidate version name (default: manifest version, else sha256 of the candidate bytes)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *leaderURL == "" {
		return fmt.Errorf("rollout: -leader is required")
	}
	var candidate []byte
	switch {
	case *candidateFile != "" && *candKnow != "":
		return fmt.Errorf("rollout: -candidate and -candidate-knowledge are mutually exclusive")
	case *candidateFile != "":
		data, err := readLimited(f, *candidateFile)
		if err != nil {
			return fmt.Errorf("rollout: reading candidate: %w", err)
		}
		candidate = data
	case *candKnow != "":
		data, err := encodeKnowledge(f, *candKnow, *seed, *multicloud)
		if err != nil {
			return fmt.Errorf("rollout: encoding candidate from %s: %w", *candKnow, err)
		}
		candidate = data
	default:
		return fmt.Errorf("rollout: -candidate or -candidate-knowledge is required")
	}
	manifest := rollout.Manifest{}
	if *manifestFile != "" {
		data, err := readLimited(f, *manifestFile)
		if err != nil {
			return fmt.Errorf("rollout: reading manifest: %w", err)
		}
		manifest, err = rollout.ParseManifest(data)
		if err != nil {
			return err
		}
	}

	leader, err := rolloutNode("leader", *leaderURL)
	if err != nil {
		return err
	}
	var followers []rollout.Node
	if *followersFlag != "" {
		for i, raw := range strings.Split(*followersFlag, ",") {
			n, err := rolloutNode(fmt.Sprintf("follower-%d", i), strings.TrimSpace(raw))
			if err != nil {
				return err
			}
			followers = append(followers, n)
		}
	}

	journal, prior, err := wal.OpenJournal(*journalPath, nil)
	if err != nil {
		return err
	}
	defer journal.Close()
	if len(prior) > 0 {
		fmt.Fprintf(f.Out, "journal %s holds %d decisions; resuming that rollout\n", *journalPath, len(prior))
	}

	c, err := rollout.New(rollout.Config{
		Manifest:  manifest,
		Candidate: candidate,
		Version:   *version,
		Leader:    leader,
		Followers: followers,
		Journal:   journal,
		Prior:     prior,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(f.Out, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(f.Out, "rolling out %s to %d followers behind leader %s\n",
		c.Version(), len(followers), *leaderURL)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	out, err := c.Run(ctx)
	if err != nil {
		return fmt.Errorf("%w (journal %s holds the resume point; re-run the same command to continue)", err, *journalPath)
	}
	if out.Committed {
		fmt.Fprintf(f.Out, "rollout %s committed fleet-wide (%d decisions journaled)\n", out.Version, out.Decisions)
		return nil
	}
	// A rollback is a *successful* defense, but the exit code must tell CI
	// the candidate did not ship.
	fmt.Fprintf(f.Out, "rollout %s rolled back (%d decisions journaled)\n", out.Version, out.Decisions)
	return fmt.Errorf("rollout: %s rolled back: %s", out.Version, out.Reason)
}

// encodeKnowledge loads a profile-produced knowledge file and returns its
// epoch-0 snapshot encoding — the wire form a fleet node's /rollout/stage
// decodes against its own base. Seed and catalog must match the fleet's
// serve flags or the staged snapshot's predictions diverge from intent.
func encodeKnowledge(f *Factory, path string, seed uint64, multicloud bool) ([]byte, error) {
	catalog := cloud.Catalog120()
	if multicloud {
		catalog = cloud.MultiCloud()
	}
	sys, err := core.New(core.Config{Seed: seed}, catalog)
	if err != nil {
		return nil, err
	}
	kf, err := f.Open(path)
	if err != nil {
		return nil, err
	}
	defer kf.Close()
	if err := sys.LoadKnowledge(kf); err != nil {
		return nil, err
	}
	snap, err := sys.Snapshot()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// rolloutNode validates one base URL and wraps it as a fleet node.
func rolloutNode(name, raw string) (rollout.Node, error) {
	u, err := url.Parse(raw)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("rollout: bad node URL %q (want e.g. http://127.0.0.1:8372)", raw)
	}
	return rollout.NewHTTPNode(name, raw), nil
}

// readLimited slurps one input file through the factory seam with a sanity
// cap.
func readLimited(f *Factory, path string) ([]byte, error) {
	r, err := f.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	data, err := io.ReadAll(io.LimitReader(r, maxRolloutInputBytes))
	if err != nil {
		return nil, err
	}
	if len(data) == maxRolloutInputBytes {
		return nil, fmt.Errorf("%s: larger than the %d-byte cap", path, maxRolloutInputBytes)
	}
	return data, nil
}
