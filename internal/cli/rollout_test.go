package cli

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/serve"
)

// fakeFleetNode is a scripted rollout backend: healthy, a fixed predict
// answer, and counters on the control verbs. The coordinator never decodes
// the candidate, so the staged bytes can be anything.
type fakeFleetNode struct {
	best                    string
	stages, commits, revert atomic.Int64
	staged                  atomic.Bool
}

func (n *fakeFleetNode) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok","epoch":0}`)
	})
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"best":%q,"ranking":[{"vm":"m4.xlarge","predicted_sec":100},{"vm":"c4.xlarge","predicted_sec":120}]}`, n.best)
	})
	mux.HandleFunc("POST /rollout/stage", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Version  string `json:"version"`
			Snapshot []byte `json:"snapshot"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil || len(body.Snapshot) == 0 {
			http.Error(w, "bad stage body", http.StatusBadRequest)
			return
		}
		n.stages.Add(1)
		n.staged.Store(true)
		fmt.Fprint(w, `{}`)
	})
	mux.HandleFunc("POST /rollout/commit", func(w http.ResponseWriter, r *http.Request) {
		n.commits.Add(1)
		n.staged.Store(false)
		fmt.Fprint(w, `{}`)
	})
	mux.HandleFunc("POST /rollout/revert", func(w http.ResponseWriter, r *http.Request) {
		n.revert.Add(1)
		n.staged.Store(false)
		fmt.Fprint(w, `{}`)
	})
	return mux
}

func TestRolloutCommandErrors(t *testing.T) {
	if code, _, stderr := run("rollout"); code != 1 || !strings.Contains(stderr, "-leader is required") {
		t.Fatalf("missing -leader: exit=%d stderr=%q", code, stderr)
	}
	if code, _, stderr := run("rollout", "-leader", "http://x"); code != 1 ||
		!strings.Contains(stderr, "-candidate or -candidate-knowledge is required") {
		t.Fatalf("missing -candidate: exit=%d stderr=%q", code, stderr)
	}
	if code, _, stderr := run("rollout", "-leader", "http://x", "-candidate", "a", "-candidate-knowledge", "b"); code != 1 ||
		!strings.Contains(stderr, "mutually exclusive") {
		t.Fatalf("candidate conflict: exit=%d stderr=%q", code, stderr)
	}
	dir := t.TempDir()
	cand := filepath.Join(dir, "cand.bin")
	if err := os.WriteFile(cand, []byte("opaque-candidate"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := run("rollout", "-leader", "not a url", "-candidate", cand); code != 1 ||
		!strings.Contains(stderr, "bad node URL") {
		t.Fatalf("bad leader URL: exit=%d stderr=%q", code, stderr)
	}
	bad := filepath.Join(dir, "manifest.json")
	if err := os.WriteFile(bad, []byte(`{"stages":[2,1]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := run("rollout", "-leader", "http://127.0.0.1:1", "-candidate", cand,
		"-manifest", bad, "-journal", filepath.Join(dir, "j")); code != 1 ||
		!strings.Contains(stderr, "strictly increasing") {
		t.Fatalf("bad manifest: exit=%d stderr=%q", code, stderr)
	}
}

// TestRolloutCommand drives `vesta rollout` end to end against scripted
// backends: a clean commit (exit 0, every node staged then committed), then
// a divergent canary that rolls the fleet back (exit 1, reverts issued).
func TestRolloutCommand(t *testing.T) {
	dir := t.TempDir()
	cand := filepath.Join(dir, "cand.bin")
	if err := os.WriteFile(cand, []byte("opaque-candidate-bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, "manifest.json")
	if err := os.WriteFile(manifest, []byte(`{"stages":[1],"golden_requests":4,"gate_timeout_sec":30}`), 0o644); err != nil {
		t.Fatal(err)
	}

	newFleet := func(bests ...string) (leader *fakeFleetNode, followers []*fakeFleetNode, urls []string) {
		t.Helper()
		leader = &fakeFleetNode{best: "m4.xlarge"}
		lts := httptest.NewServer(leader.handler())
		t.Cleanup(lts.Close)
		urls = append(urls, lts.URL)
		for _, b := range bests {
			n := &fakeFleetNode{best: b}
			ts := httptest.NewServer(n.handler())
			t.Cleanup(ts.Close)
			followers = append(followers, n)
			urls = append(urls, ts.URL)
		}
		return leader, followers, urls
	}

	leader, followers, urls := newFleet("m4.xlarge", "m4.xlarge")
	code, stdout, stderr := run("rollout",
		"-leader", urls[0],
		"-followers", urls[1]+","+urls[2],
		"-candidate", cand,
		"-manifest", manifest,
		"-version", "v7",
		"-journal", filepath.Join(dir, "commit.journal"))
	if code != 0 {
		t.Fatalf("clean rollout exit=%d stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, "rollout v7 committed fleet-wide") {
		t.Fatalf("commit banner missing: %q", stdout)
	}
	if leader.commits.Load() != 1 || leader.stages.Load() != 1 {
		t.Fatalf("leader stages=%d commits=%d, want 1/1", leader.stages.Load(), leader.commits.Load())
	}
	for i, fo := range followers {
		if fo.stages.Load() != 1 || fo.commits.Load() != 1 || fo.revert.Load() != 0 {
			t.Fatalf("follower %d stages=%d commits=%d reverts=%d",
				i, fo.stages.Load(), fo.commits.Load(), fo.revert.Load())
		}
	}

	// A canary whose best-VM disagrees with the incumbent on every golden
	// request blows the agreement floor: automatic rollback, nonzero exit.
	leader, followers, urls = newFleet("z9.mega", "m4.xlarge")
	code, stdout, stderr = run("rollout",
		"-leader", urls[0],
		"-followers", urls[1]+","+urls[2],
		"-candidate", cand,
		"-manifest", manifest,
		"-version", "v8",
		"-journal", filepath.Join(dir, "rollback.journal"))
	if code != 1 || !strings.Contains(stderr, "rolled back") {
		t.Fatalf("divergent rollout exit=%d stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, "rollout v8 rolled back") || !strings.Contains(stdout, "gate stage=1 pass=false") {
		t.Fatalf("rollback narration missing: %q", stdout)
	}
	if leader.commits.Load() != 0 {
		t.Fatal("rolled-back rollout committed the leader")
	}
	for i, fo := range followers {
		if fo.commits.Load() != 0 || fo.revert.Load() != 1 {
			t.Fatalf("follower %d commits=%d reverts=%d after rollback",
				i, fo.commits.Load(), fo.revert.Load())
		}
	}
}

// TestRolloutCandidateKnowledge proves the -candidate-knowledge path end to
// end: a knowledge file from `vesta profile` is encoded locally and staged
// onto real rollout-enabled serve nodes, whose gates compare the candidate's
// own predictions — same knowledge, so the golden replay must pass and the
// fleet commits.
func TestRolloutCandidateKnowledge(t *testing.T) {
	if testing.Short() {
		t.Skip("full offline phase is expensive")
	}
	dir := t.TempDir()
	kfile := filepath.Join(dir, "k.json")
	if code, _, stderr := run("profile", "-out", kfile, "-k", "9"); code != 0 {
		t.Fatalf("profile exit=%d stderr=%q", code, stderr)
	}
	load := func() *core.Snapshot {
		t.Helper()
		sys, err := core.New(core.Config{Seed: 1}, cloud.Catalog120())
		if err != nil {
			t.Fatal(err)
		}
		kf, err := os.Open(kfile)
		if err != nil {
			t.Fatal(err)
		}
		defer kf.Close()
		if err := sys.LoadKnowledge(kf); err != nil {
			t.Fatal(err)
		}
		snap, err := sys.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	node := func(readOnly bool) (*serve.Server, string) {
		t.Helper()
		snap := load()
		srv, err := serve.New(snap, serve.Config{
			Workers: 1, QueueSize: 64, ReadOnly: readOnly,
			RolloutControl: true, DecodeBase: snap,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return srv, ts.URL
	}
	leader, leaderURL := node(false)
	follower, followerURL := node(true)

	code, stdout, stderr := run("rollout",
		"-leader", leaderURL,
		"-followers", followerURL,
		"-candidate-knowledge", kfile,
		"-version", "retrained",
		"-journal", filepath.Join(dir, "k.journal"))
	if code != 0 {
		t.Fatalf("rollout exit=%d stderr=%q stdout=%q", code, stderr, stdout)
	}
	if !strings.Contains(stdout, "rollout retrained committed fleet-wide") {
		t.Fatalf("commit banner missing: %q", stdout)
	}
	for i, srv := range []*serve.Server{leader, follower} {
		if got := srv.CommittedVersion(); got != "retrained" {
			t.Fatalf("node %d committed version %q, want retrained", i, got)
		}
		if v := srv.StagedVersion(); v != "" {
			t.Fatalf("node %d still staged at %q", i, v)
		}
	}
}
