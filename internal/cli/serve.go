package cli

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/serve"
	"vesta/internal/sim"
)

// serveListen starts the HTTP server; swapped out by tests so cmdServe can
// be exercised without binding a real port.
var serveListen = func(srv *http.Server) error { return srv.ListenAndServe() }

// cmdServe loads a knowledge file and serves predictions over HTTP/JSON
// until the listener fails (Ctrl-C). Responses are byte-identical for a
// given (snapshot, request) at every -workers value and cache state.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(errW)
	knowledgeFile := fs.String("knowledge", "knowledge.json", "knowledge file from 'vesta profile'")
	addr := fs.String("addr", "127.0.0.1:8372", "listen address")
	seed := fs.Uint64("seed", 1, "snapshot seed (drives the online rng of every prediction)")
	workers := fs.Int("workers", 0, "worker pool size per batch (0 = one per CPU); responses are identical at every value")
	queue := fs.Int("queue", 256, "admission queue capacity (full queue answers 429)")
	batch := fs.Int("batch", 16, "max requests drained into one parallel batch")
	cacheSize := fs.Int("cache", 1024, "LRU response cache entries (0 = default, use -no-cache to disable)")
	noCache := fs.Bool("no-cache", false, "disable the response cache")
	nodes := fs.Int("nodes", 4, "cluster size of the per-request measurement simulator")
	tracePath := fs.String("trace", "", "write deterministic trace records to this JSONL file on shutdown")
	verbose := fs.Bool("v", false, "stream verbose progress (batch shapes, wall timings) to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tracer := newTracer(*tracePath, *verbose)
	sys, err := core.New(core.Config{Seed: *seed, Workers: *workers, Tracer: tracer}, cloud.Catalog120())
	if err != nil {
		return err
	}
	f, err := os.Open(*knowledgeFile)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := sys.LoadKnowledge(f); err != nil {
		return err
	}
	snap, err := sys.Snapshot()
	if err != nil {
		return err
	}
	server, err := serve.New(snap, serve.Config{
		Workers:   *workers,
		QueueSize: *queue,
		BatchSize: *batch,
		CacheSize: *cacheSize,
		NoCache:   *noCache,
		SimConfig: sim.Config{Nodes: *nodes},
		Tracer:    tracer,
	})
	if err != nil {
		return err
	}
	defer server.Close()
	fmt.Fprintf(outW, "serving knowledge from %s (epoch %d, %d workloads) on http://%s\n",
		*knowledgeFile, snap.Epoch(), snap.Workloads(), *addr)
	fmt.Fprintf(outW, "endpoints: POST /predict, GET /healthz, GET /stats\n")
	httpSrv := &http.Server{Addr: *addr, Handler: server.Handler(), ReadHeaderTimeout: 10 * time.Second}
	if err := serveListen(httpSrv); err != nil && err != http.ErrServerClosed {
		return err
	}
	return writeTrace(tracer, *tracePath)
}
