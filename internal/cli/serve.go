package cli

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/replicate"
	"vesta/internal/serve"
	"vesta/internal/sim"
	"vesta/internal/wal"
)

// serveListen starts the HTTP server; swapped out by tests so cmdServe can
// be exercised without binding a real port.
var serveListen = func(srv *http.Server) error { return srv.ListenAndServe() }

// drainTimeout bounds how long a signalled shutdown waits for in-flight
// HTTP requests before closing connections.
const drainTimeout = 30 * time.Second

// cmdServe loads a knowledge file and serves predictions over HTTP/JSON.
// Responses are byte-identical for a given (snapshot, request) at every
// -workers value and cache state. With -state-dir the absorbed serving state
// is durable (DESIGN.md §11): startup recovers base + checkpoint + WAL, and
// SIGINT/SIGTERM drain in-flight requests through the ErrShuttingDown path,
// then write a final checkpoint instead of dying mid-request.
func cmdServe(f *Factory, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(f.Err)
	knowledgeFile := fs.String("knowledge", "knowledge.json", "knowledge file from 'vesta profile'")
	addr := fs.String("addr", "127.0.0.1:8372", "listen address")
	seed := fs.Uint64("seed", 1, "snapshot seed (drives the online rng of every prediction)")
	workers := fs.Int("workers", 0, "worker pool size per batch (0 = one per CPU); responses are identical at every value")
	queue := fs.Int("queue", 256, "admission queue capacity (full queue answers 503 with Retry-After)")
	shedThreshold := fs.Float64("shed-threshold", 0, "shed best-effort requests (priority >= 1) once queue occupancy reaches this fraction of -queue (0 disables)")
	batch := fs.Int("batch", 16, "max requests drained into one parallel batch")
	cacheSize := fs.Int("cache", 1024, "LRU response cache entries (0 = default, use -no-cache to disable)")
	noCache := fs.Bool("no-cache", false, "disable the response cache")
	cold := fs.Bool("cold", false, "serve through the historical cold CMF solve instead of the precomputed-plan fast path")
	approx := fs.Bool("approx", false, "approximate mode: freeze source factors, fit only the target row (cheaper, small accuracy tradeoff; ignored with -cold)")
	profileCache := fs.Int("profile-cache", 0, "memoized-measurement LRU entries (0 = default 4096, negative disables memoization)")
	nodes := fs.Int("nodes", 4, "cluster size of the per-request measurement simulator")
	stateDir := fs.String("state-dir", "", "durable state directory (WAL + checkpoints); empty serves in-memory only")
	multicloud := fs.Bool("multicloud", false, "select across all provider catalogs (EC2+Azure+GCP, 215 types); rankings project the trained knowledge onto the wider catalog")
	replicateFlag := fs.Bool("replicate", false, "run as replication leader: mount GET /replicate/* so followers can sync (DESIGN.md §13)")
	follow := fs.String("follow", "", "run as read-only follower replaying this leader URL (e.g. http://127.0.0.1:8372)")
	syncInterval := fs.Duration("sync-interval", 500*time.Millisecond, "follower retry interval after an error or pause; with -long-poll 0 also the poll period (used with -follow)")
	longPoll := fs.Duration("long-poll", 25*time.Second, "push-style frame streaming: followers park a GET /replicate/frames?wait=D this long and the leader releases them on append, cutting follower lag from the poll interval to ~RTT; 0 falls back to -sync-interval polling. As leader, also the server-side cap on client wait budgets")
	rolloutCtl := fs.Bool("rollout", false, "mount the POST /rollout/{stage,commit,revert} + GET /rollout/status control plane so a 'vesta rollout' coordinator can drive staged upgrades of this node")
	tracePath := fs.String("trace", "", "write deterministic trace records to this JSONL file on shutdown")
	verbose := fs.Bool("v", false, "stream verbose progress (batch shapes, wall timings) to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *follow != "" && *replicateFlag {
		return fmt.Errorf("serve: -follow and -replicate are mutually exclusive (a follower never owns absorbs)")
	}
	if *follow != "" && *stateDir != "" {
		return fmt.Errorf("serve: -follow and -state-dir are mutually exclusive (durability lives at the leader; a restarted follower re-syncs)")
	}
	tracer := f.Tracer(*tracePath, *verbose)
	catalog := cloud.Catalog120()
	if *multicloud {
		catalog = cloud.MultiCloud()
	}
	sys, err := core.New(core.Config{Seed: *seed, Workers: *workers, Tracer: tracer}, catalog)
	if err != nil {
		return err
	}
	kf, err := f.Open(*knowledgeFile)
	if err != nil {
		return err
	}
	defer kf.Close()
	if err := sys.LoadKnowledge(kf); err != nil {
		return err
	}
	snap, err := sys.Snapshot()
	if err != nil {
		return err
	}
	// The epoch-0 knowledge snapshot is the decode basis for rollout
	// candidates and replicated frames, even after WAL recovery replaces the
	// served snapshot below.
	baseSnap := snap

	var mgr *wal.Manager
	var durable serve.WriteAheadLog
	if *stateDir != "" {
		mgr, snap, err = wal.Open(snap, wal.Config{Dir: *stateDir, Tracer: tracer})
		if err != nil {
			return err
		}
		defer mgr.Close()
		durable = mgr
		st := mgr.Stats()
		fmt.Fprintf(f.Out, "durable state %s: recovered epoch %d (%d replayed", *stateDir, st.Epoch, st.Replayed)
		if st.TornTailBytes > 0 {
			fmt.Fprintf(f.Out, ", %d-byte torn tail truncated", st.TornTailBytes)
		}
		if st.Quarantined > 0 {
			fmt.Fprintf(f.Out, ", %d checkpoint quarantined", st.Quarantined)
		}
		fmt.Fprintf(f.Out, ")\n")
	}

	// Leader mode interposes the replication tail between the serve layer and
	// the durable WAL: absorbs stay durable (inner append first), and the
	// acked records become the follower stream.
	var leader *replicate.Leader
	if *replicateFlag {
		leader, err = replicate.NewLeader(snap, durable, replicate.LeaderConfig{Tracer: tracer, MaxWait: *longPoll})
		if err != nil {
			return err
		}
		durable = leader
	}

	server, err := serve.New(snap, serve.Config{
		Workers:          *workers,
		QueueSize:        *queue,
		ShedThreshold:    *shedThreshold,
		BatchSize:        *batch,
		CacheSize:        *cacheSize,
		NoCache:          *noCache,
		ColdStart:        *cold,
		Approx:           *approx,
		ProfileCacheSize: *profileCache,
		SimConfig:        sim.Config{Nodes: *nodes},
		Tracer:           tracer,
		WAL:              durable,
		ReadOnly:         *follow != "",
		RolloutControl:   *rolloutCtl,
		DecodeBase:       baseSnap,
	})
	if err != nil {
		return err
	}
	defer server.Close() // idempotent; covers the early-error returns below
	if leader != nil {
		// Leader-side replication counters (waiters parked in long polls,
		// ack/horizon) surface on /stats and /healthz.
		server.SetReplicationStats(func() any { return leader.LeaderStats() })
	}
	fmt.Fprintf(f.Out, "serving knowledge from %s (epoch %d, %d workloads) on http://%s\n",
		*knowledgeFile, snap.Epoch(), snap.Workloads(), *addr)
	handler := server.Handler()
	switch {
	case leader != nil:
		m := http.NewServeMux()
		m.Handle("/replicate/", leader.Handler())
		m.Handle("/", handler)
		handler = m
		fmt.Fprintf(f.Out, "endpoints: POST /predict, POST /absorb, POST+GET /catalog, GET /healthz, GET /stats, GET /replicate/{frames,status}\n")
		fmt.Fprintf(f.Out, "replication leader: followers sync with 'vesta serve -follow http://%s'\n", *addr)
	case *follow != "":
		fmt.Fprintf(f.Out, "endpoints: POST /predict, GET /catalog, GET /healthz, GET /stats (read-only: POST /absorb and POST /catalog answer 403)\n")
		fmt.Fprintf(f.Out, "following %s every %s\n", *follow, *syncInterval)
	default:
		fmt.Fprintf(f.Out, "endpoints: POST /predict, POST /absorb, POST+GET /catalog, GET /healthz, GET /stats\n")
	}
	if *rolloutCtl {
		fmt.Fprintf(f.Out, "rollout control: POST /rollout/{stage,commit,revert}, GET /rollout/status (drive with 'vesta rollout')\n")
	}
	// Production timeouts: slow-loris reads are cut at 30s, responses must
	// flush within 90s (above the 60s in-handler predict deadline, so the
	// handler's 504 wins over a connection drop), idle keep-alives die at 2m.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      90 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Trap SIGINT/SIGTERM: stop accepting connections, drain in-flight
	// requests, then fall through to the queue drain + final checkpoint
	// below — the process never dies mid-request or mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *follow != "" {
		follower, err := replicate.NewFollower(server, snap, &replicate.HTTPTransport{URL: *follow}, tracer)
		if err != nil {
			return err
		}
		// The follower's sync counters (transient fetch failures, frames
		// applied, rollout pauses) surface on this node's own /stats and
		// /healthz, so routers and operators see replication health without
		// reaching the leader.
		server.SetReplicationStats(func() any { return follower.Stats() })
		go func() {
			// RunWait returns only on ctx done (nil) or terminal divergence;
			// a diverged follower keeps serving its last verified snapshot
			// but stops advancing, and the operator rebuilds it. With
			// -long-poll 0 it degrades to -sync-interval polling.
			if err := follower.RunWait(ctx, *longPoll, *syncInterval); err != nil {
				fmt.Fprintf(f.Err, "vesta: follower diverged: %v\n", err)
			}
		}()
	}
	listenErr := make(chan error, 1)
	go func() { listenErr <- f.ServeListen(httpSrv) }()
	select {
	case <-ctx.Done():
		stop() // restore default handling: a second signal kills immediately
		fmt.Fprintf(f.Out, "signal received; draining...\n")
		drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		err = httpSrv.Shutdown(drainCtx)
		cancel()
		if lerr := <-listenErr; lerr != nil && lerr != http.ErrServerClosed && err == nil {
			err = lerr
		}
		if err != nil {
			return err
		}
	case err := <-listenErr:
		if err != nil && err != http.ErrServerClosed {
			return err
		}
	}

	// Drain the admission queue (already-queued predictions complete, new
	// ones get ErrShuttingDown), then persist the final state.
	server.Close()
	if mgr != nil {
		final := server.Snapshot()
		if err := mgr.Checkpoint(final); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		fmt.Fprintf(f.Out, "final checkpoint at epoch %d (%d workloads)\n", final.Epoch(), final.Workloads())
	}
	return f.writeTrace(tracer, *tracePath)
}
