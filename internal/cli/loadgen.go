package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/loadgen"
	"vesta/internal/serve"
	"vesta/internal/sim"
)

// trafficFlagNames are the explicit pattern/traffic flags that conflict with
// -config (which supplies the whole traffic description as JSON).
var trafficFlagNames = map[string]bool{
	"pattern": true, "rps": true, "amplitude": true, "period": true,
	"duty": true, "end-rps": true, "duration": true, "mix": true,
	"tenants": true, "zipf": true, "apps": true,
}

// cmdLoadgen drives the deterministic open-loop load generator (DESIGN.md
// §15): a single simulated run by default, the admission auto-tuner with
// -tune, the full capacity-planning report with -report, or a wall-clock
// replay against a real in-process server with -live -knowledge K.
func cmdLoadgen(f *Factory, args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(f.Err)
	// Traffic shape.
	configFile := fs.String("config", "", "JSON traffic config (see loadgen.ParseConfig); mutually exclusive with the pattern/mix flags")
	pattern := fs.String("pattern", "steady", "rate pattern: steady, diurnal, burst, or ramp")
	rps := fs.Float64("rps", 500, "base arrival rate (req/s)")
	amplitude := fs.Float64("amplitude", 0.5, "diurnal swing fraction [0,1) or burst multiplier >= 1")
	period := fs.Float64("period", 60, "diurnal/burst period (s)")
	duty := fs.Float64("duty", 1, "burst on-duration within each period (s)")
	endRPS := fs.Float64("end-rps", 0, "ramp final rate (req/s); defaults to 2x -rps")
	duration := fs.Float64("duration", 60, "virtual run length (s)")
	seed := fs.Uint64("seed", 1, "schedule and service-noise seed")
	mixFlag := fs.String("mix", "", "traffic mix as kind=weight pairs, e.g. predict=0.99,absorb=0.006,catalog=0.004 (default: the report mix)")
	tenants := fs.Int("tenants", 10000, "tenant population (Zipf-popular, premium top decile)")
	zipfS := fs.Float64("zipf", 1.1, "Zipf skew exponent (0 = uniform)")
	appsFlag := fs.String("apps", "", "comma-separated candidate applications (default: all of Table 3)")
	// Modeled node knobs.
	queue := fs.Int("queue", 256, "modeled admission queue depth")
	batch := fs.Int("batch", 16, "modeled dispatch batch size")
	simWorkers := fs.Int("sim-workers", 8, "modeled per-node worker pool")
	shedThreshold := fs.Float64("shed-threshold", 0, "shed best-effort traffic at this queue-occupancy fraction (0 disables)")
	timeoutMS := fs.Float64("timeout-ms", 250, "client deadline (ms)")
	cacheSize := fs.Int("cache", 1024, "modeled response-cache entries (0 disables)")
	// Modes.
	tune := fs.Bool("tune", false, "sweep (queue, batch, shed) against -target-p99 and report the winner")
	targetP99 := fs.Float64("target-p99", 50, "tuner/plan latency objective (ms)")
	planFlag := fs.String("plan", "", "comma-separated fleet loads (req/s) to size, e.g. 1000,10000,1000000")
	report := fs.Bool("report", false, "render the full capacity-planning report (pattern matrix + tuner + plan)")
	live := fs.Bool("live", false, "replay the schedule against a real in-process server (wall clock; requires -knowledge)")
	knowledgeFile := fs.String("knowledge", "", "knowledge file for -live (from 'vesta profile')")
	timeScale := fs.Float64("time-scale", 1, "-live schedule compression: 0.1 replays 10x faster")
	workers := fs.Int("workers", 0, "evaluation fan-out for sweeps and the report (0 = one per CPU); output is identical at every value")
	outFile := fs.String("o", "", "write output to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Mutual exclusions: the factory-seam tests pin each of these.
	var trafficFlagsSet []string
	fs.Visit(func(fl *flag.Flag) {
		if trafficFlagNames[fl.Name] {
			trafficFlagsSet = append(trafficFlagsSet, fl.Name)
		}
	})
	if *configFile != "" && len(trafficFlagsSet) > 0 {
		sort.Strings(trafficFlagsSet)
		return fmt.Errorf("loadgen: -config and -%s are mutually exclusive (the config file carries the whole traffic description)",
			strings.Join(trafficFlagsSet, ", -"))
	}
	if *live && *knowledgeFile == "" {
		return fmt.Errorf("loadgen: -live requires -knowledge (a real server needs trained state)")
	}
	if *live && *tune {
		return fmt.Errorf("loadgen: -live and -tune are mutually exclusive (the tuner sweeps the deterministic model)")
	}
	if *live && *report {
		return fmt.Errorf("loadgen: -live and -report are mutually exclusive (the report is a deterministic artifact)")
	}
	if *report && *tune {
		return fmt.Errorf("loadgen: -report already includes the tuner sweep; drop -tune")
	}

	var cfg loadgen.Config
	if *configFile != "" {
		r, err := f.Open(*configFile)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(r)
		r.Close()
		if err != nil {
			return err
		}
		cfg, err = loadgen.ParseConfig(data)
		if err != nil {
			return err
		}
	} else {
		p := loadgen.Pattern{Kind: loadgen.PatternKind(*pattern), RPS: *rps}
		switch p.Kind {
		case loadgen.Steady:
		case loadgen.Diurnal:
			p.Amplitude, p.PeriodSec = *amplitude, *period
		case loadgen.Burst:
			p.Amplitude, p.PeriodSec, p.DutySec = *amplitude, *period, *duty
			if p.Amplitude < 1 {
				p.Amplitude = 4
			}
		case loadgen.Ramp:
			p.EndRPS = *endRPS
			if p.EndRPS == 0 {
				p.EndRPS = 2 * *rps
			}
		default:
			return fmt.Errorf("loadgen: unknown -pattern %q (want steady, diurnal, burst, or ramp)", *pattern)
		}
		mix, err := parseMix(*mixFlag)
		if err != nil {
			return err
		}
		cfg = loadgen.Config{
			Seed:        *seed,
			DurationSec: *duration,
			Pattern:     p,
			Mix:         mix,
			Tenants:     *tenants,
			ZipfS:       *zipfS,
		}
		if *appsFlag != "" {
			cfg.Apps = strings.Split(*appsFlag, ",")
		}
		if err := cfg.Validate(); err != nil {
			return err
		}
	}
	knobs := loadgen.Knobs{
		QueueDepth:    *queue,
		BatchSize:     *batch,
		Workers:       *simWorkers,
		ShedThreshold: *shedThreshold,
		TimeoutMS:     *timeoutMS,
		CacheSize:     *cacheSize,
	}

	out := f.Out
	if *outFile != "" {
		w, err := f.Create(*outFile)
		if err != nil {
			return err
		}
		defer w.Close()
		out = w
	}

	switch {
	case *report:
		spec := loadgen.DefaultReportSpec()
		spec.Seed = *seed
		spec.TargetP99MS = *targetP99
		spec.EvalWorkers = *workers
		md, err := loadgen.RenderReport(spec)
		if err != nil {
			return err
		}
		if _, err := out.Write(md); err != nil {
			return err
		}
		if *outFile != "" {
			fmt.Fprintf(f.Out, "report written to %s\n", *outFile)
		}
		return nil
	case *live:
		return runLive(f, out, cfg, knobs, *knowledgeFile, *seed, *timeScale)
	case *tune:
		cells, err := loadgen.Sweep(cfg, loadgen.TunerConfig{
			TargetP99MS: *targetP99,
			Workers:     knobs.Workers,
			TimeoutMS:   knobs.TimeoutMS,
			CacheSize:   knobs.CacheSize,
		}, *workers)
		if err != nil {
			return err
		}
		best, err := loadgen.Best(cells)
		if err != nil {
			return err
		}
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "QUEUE\tBATCH\tSHED\tGOODPUT(req/s)\tP99(ms)\tSHED+REJECT\tMEETS")
		for _, c := range cells {
			fmt.Fprintf(w, "%d\t%d\t%.2f\t%.0f\t%.2f\t%d\t%v\n",
				c.Knobs.QueueDepth, c.Knobs.BatchSize, c.Knobs.ShedThreshold,
				c.Report.GoodRPS, c.P99, c.Report.Shed+c.Report.Rejected, c.Meets)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwinner: queue=%d batch=%d shed=%.2f (goodput %.0f req/s at P99 %.2f ms, target %.0f ms)\n",
			best.Knobs.QueueDepth, best.Knobs.BatchSize, best.Knobs.ShedThreshold,
			best.Report.GoodRPS, best.P99, *targetP99)
		return printPlan(out, cfg, best.Knobs, *targetP99, *planFlag)
	default:
		rep, err := loadgen.Run(cfg, knobs)
		if err != nil {
			return err
		}
		printReport(out, rep)
		return printPlan(out, cfg, knobs, *targetP99, *planFlag)
	}
}

// parseMix decodes "kind=weight,kind=weight"; empty takes the report mix.
func parseMix(s string) ([]loadgen.MixEntry, error) {
	if s == "" {
		return loadgen.DefaultMix(), nil
	}
	var mix []loadgen.MixEntry
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("loadgen: mix entry %q (want kind=weight)", part)
		}
		w, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return nil, fmt.Errorf("loadgen: mix weight %q: %v", kv[1], err)
		}
		mix = append(mix, loadgen.MixEntry{Kind: loadgen.Kind(strings.TrimSpace(kv[0])), Weight: w})
	}
	return mix, nil
}

// parseLoads decodes the -plan comma-separated fleet loads.
func parseLoads(s string) ([]float64, error) {
	var loads []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("loadgen: plan load %q: %v", part, err)
		}
		loads = append(loads, v)
	}
	return loads, nil
}

// printReport renders one simulated run's accounting.
func printReport(out io.Writer, rep *loadgen.Report) {
	sum := rep.Summary()
	fmt.Fprintf(out, "offered %d (%.0f req/s), goodput %d (%.0f req/s)\n",
		rep.Offered, rep.OfferedRPS, rep.Good, rep.GoodRPS)
	fmt.Fprintf(out, "shed %d, rejected %d, canceled %d, timed out %d\n",
		rep.Shed, rep.Rejected, rep.Canceled, rep.Timeout)
	fmt.Fprintf(out, "latency ms: p50 %.2f, p90 %.2f, p99 %.2f, p99.9 %.2f (mean %.2f over %d)\n",
		sum.P50, sum.P90, sum.P99, sum.P999, sum.Mean, int64(sum.Count))
	fmt.Fprintf(out, "cache: %d hits / %d misses, %d epoch bumps (%d absorbs, %d catalog updates)\n",
		rep.CacheHits, rep.CacheMisses, rep.Epochs, rep.Absorbs, rep.Catalogs)
	fmt.Fprintf(out, "gauges: queue max %d mean %.1f, batch max %d mean %.1f over %d batches\n",
		rep.QueueMax, rep.QueueMean, rep.BatchMax, rep.BatchMean, rep.Batches)
}

// printPlan appends a capacity plan when -plan asked for one.
func printPlan(out io.Writer, cfg loadgen.Config, k loadgen.Knobs, targetP99 float64, planFlag string) error {
	if planFlag == "" {
		return nil
	}
	loads, err := parseLoads(planFlag)
	if err != nil {
		return err
	}
	plan, err := loadgen.CapacityPlan(cfg, k, targetP99, loads)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nnode capacity %.0f req/s at P99 < %.0f ms (%.0f%% headroom):\n",
		plan.NodeCapacityRPS, plan.TargetP99MS, 100*(1-plan.Headroom))
	for _, row := range plan.Rows {
		fmt.Fprintf(out, "  %d nodes for %.0f req/s\n", row.Nodes, row.OfferedRPS)
	}
	return nil
}

// runLive replays the schedule against a real in-process server: trained
// state from the knowledge file, serve.Config mirroring the model knobs,
// wall-clock latencies (outside the determinism contract).
func runLive(f *Factory, out io.Writer, cfg loadgen.Config, knobs loadgen.Knobs, knowledgeFile string, seed uint64, timeScale float64) error {
	sys, err := core.New(core.Config{Seed: seed}, cloud.Catalog120())
	if err != nil {
		return err
	}
	kf, err := f.Open(knowledgeFile)
	if err != nil {
		return err
	}
	defer kf.Close()
	if err := sys.LoadKnowledge(kf); err != nil {
		return err
	}
	snap, err := sys.Snapshot()
	if err != nil {
		return err
	}
	srv, err := serve.New(snap, serve.Config{
		QueueSize:     knobs.QueueDepth,
		BatchSize:     knobs.BatchSize,
		Workers:       knobs.Workers,
		ShedThreshold: knobs.ShedThreshold,
		CacheSize:     knobs.CacheSize,
		NoCache:       knobs.CacheSize == 0,
		SimConfig:     sim.Config{Nodes: 4},
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	sched, err := loadgen.Schedule(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "live replay: %d arrivals over %.0fs (time scale %g) against %s\n",
		len(sched), cfg.DurationSec*timeScale, timeScale, knowledgeFile)
	rep, err := loadgen.RunLive(context.Background(), srv, sched, loadgen.LiveConfig{
		TimeScale: timeScale,
		TimeoutMS: knobs.TimeoutMS,
	})
	if err != nil {
		return err
	}
	sum := rep.Hist.Summarize()
	fmt.Fprintf(out, "offered %d: good %d, shed %d, rejected %d, timed out %d, errored %d\n",
		rep.Offered, rep.Good, rep.Shed, rep.Rejected, rep.Timeout, rep.Errored)
	fmt.Fprintf(out, "wall-clock latency ms: p50 %.2f, p90 %.2f, p99 %.2f, p99.9 %.2f\n",
		sum.P50, sum.P90, sum.P99, sum.P999)
	st := rep.Stats
	fmt.Fprintf(out, "server stats: %d requests, %d hits (%.2f), %d shed, %d queue rejects, %d batches (max %d), epoch %d\n",
		st.Requests, st.CacheHits, st.HitRate, st.Shed, st.QueueRejects, st.Batches, st.MaxBatch, st.Epoch)
	return nil
}
