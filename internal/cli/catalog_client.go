// Catalog control-plane client: the `vesta catalog -addr` paths talk to a
// running `vesta serve` node's /catalog endpoints, so an operator can inspect
// the live catalog version and absorb retire/reprice/spot/add updates into a
// serving fleet without restarting it (DESIGN.md §14).
package cli

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"vesta/internal/cloud"
)

// catalogClient is the HTTP client of the catalog subcommand; package-level
// so tests can shorten the timeout.
var catalogClient = &http.Client{Timeout: 30 * time.Second}

// baseURL normalizes an -addr value into a base URL.
func baseURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// fetchCatalog reads the published catalog (version + types) from a serve
// node's GET /catalog.
func fetchCatalog(addr string) ([]cloud.VMType, uint64, error) {
	resp, err := catalogClient.Get(baseURL(addr) + "/catalog")
	if err != nil {
		return nil, 0, fmt.Errorf("catalog: fetching: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, 0, fmt.Errorf("catalog: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("catalog: server answered %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var out struct {
		Epoch          uint64         `json:"epoch"`
		CatalogVersion uint64         `json:"catalog_version"`
		Types          []cloud.VMType `json:"types"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, 0, fmt.Errorf("catalog: undecodable response: %w", err)
	}
	return out.Types, out.CatalogVersion, nil
}

// applyCatalogUpdate posts the cloud.Update JSON in file to a serve node's
// POST /catalog and reports the new consistency token.
func applyCatalogUpdate(addr, file string) error {
	data, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	// Decode locally first: a strict parse catches typos (an unknown field
	// would otherwise be rejected server-side with less context) and refuses
	// an empty update before any network traffic.
	var up cloud.Update
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&up); err != nil {
		return fmt.Errorf("catalog: parsing %s: %w", file, err)
	}
	if up.Empty() {
		return fmt.Errorf("catalog: %s describes an empty update", file)
	}
	resp, err := catalogClient.Post(baseURL(addr)+"/catalog", "application/json", bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("catalog: applying: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("catalog: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("catalog: server answered %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var ack struct {
		Epoch          uint64 `json:"epoch"`
		CatalogVersion uint64 `json:"catalog_version"`
		VMCount        int    `json:"vm_count"`
		Durable        bool   `json:"durable"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		return fmt.Errorf("catalog: undecodable ack: %w", err)
	}
	durability := "in-memory"
	if ack.Durable {
		durability = "durable"
	}
	fmt.Fprintf(outW, "catalog update absorbed: epoch %d, catalog version %d, %d types (%s)\n",
		ack.Epoch, ack.CatalogVersion, ack.VMCount, durability)
	return nil
}
