package cli

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRouteCommandErrors(t *testing.T) {
	if code, _, stderr := run("route"); code != 1 || !strings.Contains(stderr, "-backends is required") {
		t.Fatalf("missing -backends: exit=%d stderr=%q", code, stderr)
	}
	if code, _, _ := run("route", "-bogus-flag"); code != 1 {
		t.Fatal("bogus flag accepted")
	}
	if code, _, _ := run("route", "-backends", " , "); code != 1 {
		t.Fatal("blank backend list accepted")
	}
}

func TestServeReplicationFlagConflicts(t *testing.T) {
	if code, _, stderr := run("serve", "-follow", "http://x", "-replicate"); code != 1 ||
		!strings.Contains(stderr, "mutually exclusive") {
		t.Fatalf("-follow -replicate: exit=%d stderr=%q", code, stderr)
	}
	if code, _, stderr := run("serve", "-follow", "http://x", "-state-dir", t.TempDir()); code != 1 ||
		!strings.Contains(stderr, "mutually exclusive") {
		t.Fatalf("-follow -state-dir: exit=%d stderr=%q", code, stderr)
	}
}

// TestRouteCommand drives `vesta route` against a scripted backend without
// binding a port: the listener hook exercises the router handler in-process.
func TestRouteCommand(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			fmt.Fprint(w, `{"status":"ok","epoch":4}`)
		case "/predict":
			fmt.Fprint(w, `{"epoch":4,"target":"backend-answer"}`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer backend.Close()

	orig := routeListen
	defer func() { routeListen = orig }()
	var predictStatus, healthStatus int
	var predictBody string
	routeListen = func(srv *http.Server) error {
		req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(`{"app":"Spark-kmeans"}`))
		rec := httptest.NewRecorder()
		srv.Handler.ServeHTTP(rec, req)
		predictStatus, predictBody = rec.Code, rec.Body.String()

		req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
		rec = httptest.NewRecorder()
		srv.Handler.ServeHTTP(rec, req)
		healthStatus = rec.Code
		return http.ErrServerClosed
	}

	code, stdout, stderr := run("route", "-backends", backend.URL)
	if code != 0 {
		t.Fatalf("route exit=%d stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, "routing across 1 backends (1 healthy, epoch floor 4)") {
		t.Fatalf("banner missing: %q", stdout)
	}
	if predictStatus != http.StatusOK || !strings.Contains(predictBody, "backend-answer") {
		t.Fatalf("predict status=%d body=%q", predictStatus, predictBody)
	}
	if healthStatus != http.StatusOK {
		t.Fatalf("healthz status=%d", healthStatus)
	}
}

// TestServeLeaderFollowerRoundTrip wires the replication fleet end to end
// through the CLI: a -replicate leader exposed on a real ephemeral port, an
// absorb at the leader, then a nested `vesta serve -follow` whose listener
// hook polls until the follower's health reports the absorbed epoch and
// checks the follower answers the leader's exact predict bytes but refuses
// absorbs.
func TestServeLeaderFollowerRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full offline phase is expensive")
	}
	kfile := filepath.Join(t.TempDir(), "k.json")
	if code, _, stderr := run("profile", "-out", kfile, "-k", "9"); code != 0 {
		t.Fatalf("profile exit=%d stderr=%q", code, stderr)
	}

	orig := serveListen
	defer func() { serveListen = orig }()

	do := func(h http.Handler, method, path, body string) (int, string) {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}

	var leaderPredict, followerPredict, followerHealth string
	var absorbStatus, followerAbsorbStatus int
	var followerErr error
	serveListen = func(leaderSrv *http.Server) error {
		// The follower needs a real URL to poll, so the leader handler gets a
		// live listener for the duration.
		ts := httptest.NewServer(leaderSrv.Handler)
		defer ts.Close()

		resp, err := http.Post(ts.URL+"/absorb", "application/json",
			strings.NewReader(`{"name":"t1","app":"Spark-kmeans","seed":7}`))
		if err != nil {
			return fmt.Errorf("absorb at leader: %w", err)
		}
		absorbStatus = resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		_, leaderPredict = do(leaderSrv.Handler, http.MethodPost, "/predict", `{"app":"Spark-grep","top":5}`)

		serveListen = func(followerSrv *http.Server) error {
			deadline := time.Now().Add(15 * time.Second)
			for {
				_, followerHealth = do(followerSrv.Handler, http.MethodGet, "/healthz", "")
				if strings.Contains(followerHealth, `"epoch":1`) {
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("follower never reached epoch 1: %s", followerHealth)
				}
				time.Sleep(25 * time.Millisecond)
			}
			_, followerPredict = do(followerSrv.Handler, http.MethodPost, "/predict", `{"app":"Spark-grep","top":5}`)
			followerAbsorbStatus, _ = do(followerSrv.Handler, http.MethodPost, "/absorb",
				`{"name":"t2","app":"Spark-sort","seed":8}`)
			return http.ErrServerClosed
		}
		// The nested follower shares the leader invocation's captured streams
		// (outW/errW are still set by the enclosing Run).
		followerErr = cmdServe(newFactory(outW, errW),
			[]string{"-knowledge", kfile, "-follow", ts.URL, "-sync-interval", "25ms"})
		return http.ErrServerClosed
	}

	code, stdout, stderr := run("serve", "-knowledge", kfile, "-replicate", "-workers", "2")
	if code != 0 {
		t.Fatalf("leader exit=%d stderr=%q", code, stderr)
	}
	if followerErr != nil {
		t.Fatalf("follower: %v", followerErr)
	}
	if !strings.Contains(stdout, "replication leader: followers sync with") ||
		!strings.Contains(stdout, "GET /replicate/{frames,status}") {
		t.Fatalf("leader banner missing:\n%s", stdout)
	}
	if !strings.Contains(stdout, "read-only: POST /absorb and POST /catalog answer 403") {
		t.Fatalf("follower banner missing:\n%s", stdout)
	}
	if absorbStatus != http.StatusOK {
		t.Fatalf("leader absorb status=%d", absorbStatus)
	}
	if !strings.Contains(leaderPredict, `"epoch":1`) {
		t.Fatalf("leader predict: %q", leaderPredict)
	}
	if followerPredict != leaderPredict {
		t.Fatalf("follower predict differs from leader:\nleader:   %q\nfollower: %q",
			leaderPredict, followerPredict)
	}
	if followerAbsorbStatus != http.StatusForbidden {
		t.Fatalf("follower absorb status=%d, want 403", followerAbsorbStatus)
	}
}
