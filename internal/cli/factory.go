package cli

import (
	"fmt"
	"io"
	"net/http"
	"os"

	"vesta/internal/obs"
	"vesta/internal/oracle"
)

// Factory assembles everything a subcommand touches outside its own
// computation: output streams, tracer construction, the measurement service,
// knowledge-file IO, and the HTTP listeners. Run builds exactly one
// production factory per invocation; tests hand the command a factory wired
// to in-memory fakes (buffers, map-backed files, nil tracer, no sockets), so
// the profile/predict/serve/route/loadgen flows are table-testable without a
// filesystem or a port.
//
// Commands that only format built-in tables (catalog, workloads, ...) keep
// the plain outW/errW globals; only the commands with real dependency seams
// go through the factory.
type Factory struct {
	Out io.Writer
	Err io.Writer
	// Tracer builds the observability tracer for a subcommand: nil (tracing
	// compiled out of every hot path) unless -trace or -v asked for it.
	Tracer func(tracePath string, verbose bool) *obs.Tracer
	// Service builds the measurement service (and its resilient wrapper when
	// fault injection is on) for profile/predict.
	Service func(seed uint64, faultRate float64, retries int, tracer *obs.Tracer) (oracle.Service, *oracle.Resilient)
	// Open and Create are the knowledge/trace/report file seams.
	Open   func(path string) (io.ReadCloser, error)
	Create func(path string) (io.WriteCloser, error)
	// ServeListen and RouteListen start the serve/route HTTP servers.
	ServeListen func(srv *http.Server) error
	RouteListen func(srv *http.Server) error
}

// newFactory wires the production dependencies. The listener hooks delegate
// to the serveListen/routeListen package variables so tests that swap those
// (the pre-factory seam) keep working unchanged.
func newFactory(stdout, stderr io.Writer) *Factory {
	f := &Factory{
		Out:         stdout,
		Err:         stderr,
		Service:     newService,
		Open:        func(path string) (io.ReadCloser, error) { return os.Open(path) },
		Create:      func(path string) (io.WriteCloser, error) { return os.Create(path) },
		ServeListen: func(srv *http.Server) error { return serveListen(srv) },
		RouteListen: func(srv *http.Server) error { return routeListen(srv) },
	}
	f.Tracer = func(tracePath string, verbose bool) *obs.Tracer {
		if tracePath == "" && !verbose {
			return nil
		}
		t := obs.New()
		if verbose {
			// Verbose goes to stderr so stdout stays byte-identical with and
			// without -v.
			t.SetVerbose(f.Err)
		}
		return t
	}
	return f
}

// writeTrace serializes the deterministic trace records to path as JSONL.
// The bytes are a pure function of (seed, configuration): identical at every
// -workers value (DESIGN.md §9).
func (f *Factory) writeTrace(t *obs.Tracer, path string) error {
	if t == nil || path == "" {
		return nil
	}
	w, err := f.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSONL(w); err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Fprintf(f.Out, "trace: %d records written to %s\n", len(t.Records()), path)
	return nil
}

// printResilience reports the retry layer's accounting; nil (faults off)
// prints nothing, keeping the default output unchanged.
func (f *Factory) printResilience(r *oracle.Resilient) {
	if r == nil {
		return
	}
	st := r.Stats()
	fmt.Fprintf(f.Out, "resilience: %d campaigns, %d retries, %d abandoned (%d quarantined), %d runs killed, %.0f s wasted, %.0f s backoff\n",
		st.Profiles, st.Retries, st.Failed, st.Quarantined, st.FailedRuns, st.WastedSec, st.BackoffSec)
}
