package cli

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// run invokes the CLI capturing both streams.
func run(args ...string) (code int, stdout, stderr string) {
	var outB, errB bytes.Buffer
	code = Run(args, &outB, &errB)
	return code, outB.String(), errB.String()
}

func TestNoArgsShowsUsage(t *testing.T) {
	code, _, stderr := run()
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "usage: vesta") {
		t.Fatalf("stderr = %q", stderr)
	}
}

func TestUnknownSubcommand(t *testing.T) {
	code, _, stderr := run("frobnicate")
	if code != 2 || !strings.Contains(stderr, "unknown subcommand") {
		t.Fatalf("exit=%d stderr=%q", code, stderr)
	}
}

func TestHelp(t *testing.T) {
	code, _, stderr := run("help")
	if code != 0 || !strings.Contains(stderr, "subcommands:") {
		t.Fatalf("exit=%d stderr=%q", code, stderr)
	}
}

func TestCatalog(t *testing.T) {
	code, stdout, _ := run("catalog", "-family", "C5n")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(stdout, "c5n.large") || strings.Contains(stdout, "m5.large") {
		t.Fatalf("catalog filter output wrong:\n%s", stdout)
	}
	if code, _, _ := run("catalog", "-family", "NOPE"); code != 1 {
		t.Fatal("empty filter result should fail")
	}
}

func TestWorkloads(t *testing.T) {
	code, stdout, _ := run("workloads", "-set", "target")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(stdout, "Spark-svd++") || strings.Contains(stdout, "Hadoop-terasort") {
		t.Fatalf("workloads filter wrong:\n%s", stdout)
	}
}

func TestSimulate(t *testing.T) {
	code, stdout, _ := run("simulate", "-app", "Spark-lr", "-vm", "z1d.xlarge", "-repeats", "3")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"P90 execution time", "budget", "CPU-to-memory"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("simulate output missing %q:\n%s", want, stdout)
		}
	}
	if code, _, stderr := run("simulate"); code != 1 || !strings.Contains(stderr, "-app is required") {
		t.Fatalf("missing -app not rejected: %d %q", code, stderr)
	}
	if code, _, _ := run("simulate", "-app", "Nope-app"); code != 1 {
		t.Fatal("unknown app accepted")
	}
}

func TestInspect(t *testing.T) {
	code, stdout, _ := run("inspect", "-app", "Hadoop-terasort", "-width", "20")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"phase timeline:", "cpu.user", "correlation similarities"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("inspect output missing %q", want)
		}
	}
}

func TestCompare(t *testing.T) {
	code, stdout, _ := run("compare", "-app", "Spark-kmeans", "-vms", "c5.large, r5.large", "-repeats", "3")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(stdout, "c5.large") || !strings.Contains(stdout, "vs BEST") {
		t.Fatalf("compare output wrong:\n%s", stdout)
	}
	// Memory-starved c5 must not be the top (fastest-first) row for kmeans.
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if !strings.HasPrefix(lines[2], "r5.large") {
		t.Fatalf("expected r5.large first:\n%s", stdout)
	}
}

func TestHeatmap(t *testing.T) {
	code, stdout, _ := run("heatmap", "-app", "Spark-page-rank")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(stdout, "GiB/vCPU") || !strings.Contains(stdout, "total vCPUs") {
		t.Fatalf("heatmap output wrong:\n%s", stdout)
	}
}

func TestCollectHistoryFlow(t *testing.T) {
	dir := t.TempDir()
	code, stdout, _ := run("collect", "-store", dir, "-app", "Spark-lr", "-vm", "m5.xlarge", "-repeats", "3")
	if code != 0 {
		t.Fatalf("collect exit = %d", code)
	}
	if !strings.Contains(stdout, "1 records") {
		t.Fatalf("collect output: %q", stdout)
	}
	code, stdout, _ = run("history", "-store", dir)
	if code != 0 || !strings.Contains(stdout, "Spark-lr") {
		t.Fatalf("history exit=%d output=%q", code, stdout)
	}
	code, stdout, _ = run("history", "-store", dir, "-best")
	if code != 0 || !strings.Contains(stdout, "BEST VM") {
		t.Fatalf("history -best exit=%d output=%q", code, stdout)
	}
	if code, _, _ := run("history", "-store", dir, "-app", "Nope"); code != 1 {
		t.Fatal("empty history query should fail")
	}
}

// TestProfilePredictFlow exercises the full knowledge lifecycle through the
// CLI: profile -> knowledge -> predict -> clustersize -> plan.
func TestProfilePredictFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("full offline phase is expensive")
	}
	kfile := filepath.Join(t.TempDir(), "k.json")
	code, stdout, stderr := run("profile", "-out", kfile, "-k", "9")
	if code != 0 {
		t.Fatalf("profile exit=%d stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, "offline phase complete") {
		t.Fatalf("profile output: %q", stdout)
	}

	code, stdout, _ = run("knowledge", "-knowledge", kfile)
	if code != 0 || !strings.Contains(stdout, "label-0") {
		t.Fatalf("knowledge exit=%d output=%q", code, stdout)
	}

	code, stdout, _ = run("predict", "-knowledge", kfile, "-app", "Spark-kmeans", "-top", "5")
	if code != 0 {
		t.Fatalf("predict exit = %d", code)
	}
	if !strings.Contains(stdout, "predicted best VM type") || !strings.Contains(stdout, "RANK") {
		t.Fatalf("predict output: %q", stdout)
	}

	code, stdout, _ = run("clustersize", "-knowledge", kfile, "-app", "Spark-lr")
	if code != 0 || !strings.Contains(stdout, "recommended:") {
		t.Fatalf("clustersize exit=%d output=%q", code, stdout)
	}

	code, stdout, _ = run("plan", "-knowledge", kfile, "-apps", "Spark-lr,Hive-aggregation", "-deadline", "600")
	if code != 0 || !strings.Contains(stdout, "portfolio: 2 applications") {
		t.Fatalf("plan exit=%d output=%q", code, stdout)
	}

	// Missing knowledge file.
	if code, _, _ := run("predict", "-knowledge", "/nonexistent.json", "-app", "Spark-lr"); code != 1 {
		t.Fatal("missing knowledge file accepted")
	}
}

func TestFlagParseErrorDoesNotExitProcess(t *testing.T) {
	// ContinueOnError flag sets must surface as an error code, not os.Exit.
	code, _, _ := run("simulate", "-definitely-not-a-flag")
	if code != 1 {
		t.Fatalf("bad flag exit = %d, want 1", code)
	}
}
