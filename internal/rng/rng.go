// Package rng provides deterministic pseudo-random number generation for the
// Vesta simulator and experiment harness.
//
// Every stochastic component in this repository (run-to-run cloud noise,
// K-Means initialization, SGD sampling, bootstrap resampling, ...) draws from
// an rng.Source seeded explicitly by the caller, so every experiment and
// every figure regenerates byte-identically. The generator is xoshiro-style
// (splitmix64 seeding + xorshift64* state advance), which is far cheaper than
// crypto randomness and has more than adequate statistical quality for
// simulation noise.
package rng

import "math"

// Source is a deterministic pseudo-random number generator. It is NOT safe
// for concurrent use; give each goroutine its own Source (see Split).
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Two Sources constructed with the
// same seed produce identical streams.
func New(seed uint64) *Source {
	s := &Source{state: splitmix64(seed + 0x9e3779b97f4a7c15)}
	if s.state == 0 {
		s.state = 0x853c49e6748fea9b
	}
	return s
}

// splitmix64 scrambles a seed into a well-distributed initial state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	x := s.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.state = x
	return x * 0x2545f4914f6cdd1d
}

// Split derives the i'th child Source from the parent's current state
// WITHOUT advancing the parent. Children with distinct indices are mutually
// decorrelated and decorrelated from the parent's own stream, and because
// Split is a pure function of (state, i), a loop that hands child i to task
// i produces bit-identical results whether the tasks run serially or on any
// number of workers — the stream-splitting contract the parallel execution
// layer relies on.
func (s *Source) Split(i uint64) *Source {
	// Double scrambling (splitmix64 here, then again inside New) pushes
	// sibling seeds far apart even for consecutive indices.
	return New(splitmix64(s.state^0xd1b54a32d192ed03) + (i+1)*0xbf58476d1ce4e5b9)
}

// Jump derives an independent child Source by consuming one draw from the
// parent, advancing it. Use Jump for sequential hand-offs where the parent
// keeps generating afterwards; use Split(i) when fanning out to indexed
// parallel tasks.
func (s *Source) Jump() *Source {
	return New(s.Uint64() ^ 0xd1b54a32d192ed03)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Range returns a uniform float64 in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a normally distributed float64 with mean mu and standard
// deviation sigma, using the Box-Muller transform.
func (s *Source) Norm(mu, sigma float64) float64 {
	// Guard against log(0).
	u1 := 1 - s.Float64()
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mu + sigma*z
}

// LogNorm returns a log-normally distributed float64 whose underlying normal
// has mean mu and standard deviation sigma.
func (s *Source) LogNorm(mu, sigma float64) float64 {
	return math.Exp(s.Norm(mu, sigma))
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using the provided swap
// function, mirroring math/rand.Shuffle.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct indices drawn uniformly from [0, n). It panics if
// k > n or k < 0.
func (s *Source) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample with k out of range")
	}
	p := s.Perm(n)
	return p[:k]
}

// Pick returns a random element index weighted by the non-negative weights.
// If all weights are zero it falls back to uniform choice. It panics on an
// empty slice.
func (s *Source) Pick(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: Pick with empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return s.Intn(len(weights))
	}
	r := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if r < acc {
			return i
		}
	}
	return len(weights) - 1
}
