package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestZeroSeedNonZeroState(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(3)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want about 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(11)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(99)
	n := 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm(5, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("Norm mean = %v, want about 5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("Norm stddev = %v, want about 2", math.Sqrt(variance))
	}
}

func TestLogNormPositive(t *testing.T) {
	s := New(5)
	for i := 0; i < 1000; i++ {
		if v := s.LogNorm(0, 0.5); v <= 0 {
			t.Fatalf("LogNorm produced non-positive %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		n := 1 + int(seed%50)
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	s := New(13)
	idx := s.Sample(20, 5)
	if len(idx) != 5 {
		t.Fatalf("Sample returned %d values, want 5", len(idx))
	}
	seen := map[int]bool{}
	for _, v := range idx {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Sample produced invalid/duplicate index %d", v)
		}
		seen[v] = true
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3, 4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestPickWeighted(t *testing.T) {
	s := New(17)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[s.Pick([]float64{1, 2, 7})]++
	}
	// Expected proportions 0.1, 0.2, 0.7.
	if float64(counts[2])/30000 < 0.6 {
		t.Fatalf("heavy weight picked only %d/30000 times", counts[2])
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatal("light weights never picked")
	}
}

func TestPickZeroWeightsUniform(t *testing.T) {
	s := New(23)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[s.Pick([]float64{0, 0, 0})] = true
	}
	if len(seen) != 3 {
		t.Fatalf("zero-weight Pick not uniform: saw %d buckets", len(seen))
	}
}

func TestPickNegativeWeightIgnored(t *testing.T) {
	s := New(29)
	for i := 0; i < 1000; i++ {
		if s.Pick([]float64{-5, 1, -2}) != 1 {
			t.Fatal("Pick chose a negative-weight bucket")
		}
	}
}

func TestJumpIndependence(t *testing.T) {
	parent := New(31)
	child := parent.Jump()
	a := make([]uint64, 100)
	for i := range a {
		a[i] = child.Uint64()
	}
	// The parent continues its own stream and should not replay the child's.
	match := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == a[i] {
			match++
		}
	}
	if match > 2 {
		t.Fatalf("parent and child streams overlap in %d/100 positions", match)
	}
}

// TestSplitIsPure verifies the stream-splitting contract: Split(i) neither
// advances the parent nor depends on previous Split calls, so split order
// (and therefore worker scheduling order) is unobservable.
func TestSplitIsPure(t *testing.T) {
	a := New(31)
	b := New(31)
	// Split in different orders, interleaved with parent draws on one side
	// only after the splits.
	c2a := a.Split(2)
	c0a := a.Split(0)
	c0b := b.Split(0)
	c2b := b.Split(2)
	for i := 0; i < 50; i++ {
		if c0a.Uint64() != c0b.Uint64() {
			t.Fatal("Split(0) depends on split order")
		}
		if c2a.Uint64() != c2b.Uint64() {
			t.Fatal("Split(2) depends on split order")
		}
	}
	// The parents never advanced, so their streams still agree.
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent")
		}
	}
}

// TestSplitSiblingsDecorrelated checks that children with distinct indices
// (including consecutive ones) produce disjoint streams, and that children
// do not replay the parent.
func TestSplitSiblingsDecorrelated(t *testing.T) {
	parent := New(41)
	const draws = 200
	streams := map[uint64][]uint64{}
	for _, i := range []uint64{0, 1, 2, 3, 1000, 1 << 40} {
		child := parent.Split(i)
		vals := make([]uint64, draws)
		for k := range vals {
			vals[k] = child.Uint64()
		}
		streams[i] = vals
	}
	keys := []uint64{0, 1, 2, 3, 1000, 1 << 40}
	for x := 0; x < len(keys); x++ {
		for y := x + 1; y < len(keys); y++ {
			match := 0
			for k := 0; k < draws; k++ {
				if streams[keys[x]][k] == streams[keys[y]][k] {
					match++
				}
			}
			if match > 2 {
				t.Fatalf("children %d and %d overlap in %d/%d positions", keys[x], keys[y], match, draws)
			}
		}
	}
	match := 0
	for k := 0; k < draws; k++ {
		if parent.Uint64() == streams[0][k] {
			match++
		}
	}
	if match > 2 {
		t.Fatalf("parent replays child 0 in %d/%d positions", match, draws)
	}
}

// TestSplitDeterministic pins that equal (seed, index) pairs give equal
// child streams.
func TestSplitDeterministic(t *testing.T) {
	c1 := New(7).Split(5)
	c2 := New(7).Split(5)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("Split(5) streams diverged at step %d", i)
		}
	}
}

func TestShuffleCoversArrangements(t *testing.T) {
	s := New(37)
	seen := map[[3]int]bool{}
	for i := 0; i < 600; i++ {
		arr := [3]int{0, 1, 2}
		s.Shuffle(3, func(a, b int) { arr[a], arr[b] = arr[b], arr[a] })
		seen[arr] = true
	}
	if len(seen) != 6 {
		t.Fatalf("Shuffle produced %d/6 arrangements", len(seen))
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Norm(0, 1)
	}
}
