// Package baselines implements the alternative VM-type selection systems the
// paper compares against (Table 5):
//
//   - PARIS (Yadwadkar et al., SoCC'17): a Random Forest over low-level
//     metric fingerprints and VM features. Two modes: CrossFramework (the
//     paper's empirical-study setup — trained on Hadoop+Hive, reused for
//     Spark, Figure 2) and Scratch (trained per target workload with N
//     reference VMs, Figures 3 and 8).
//   - Ernest (Venkataraman et al., NSDI'16): an NNLS-fit performance-cost
//     model over communication-pattern terms, designed for Spark-style
//     advanced analytics.
//   - RandomSearch and CherryPickLite (Alipourfard et al., NSDI'17-style
//     surrogate search) as additional reference points and ablations.
//
// Every system consumes measurements only through an oracle.Meter, so
// training overhead is accounted identically across systems.
package baselines

import (
	"fmt"
	"math"
	"sort"

	"vesta/internal/cloud"
	"vesta/internal/forest"
	"vesta/internal/gp"
	"vesta/internal/mat"
	"vesta/internal/metrics"
	"vesta/internal/nnls"
	"vesta/internal/oracle"
	"vesta/internal/rng"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

// Selection is a baseline's prediction for one target workload.
type Selection struct {
	Target string
	// Best is the predicted best VM type.
	Best cloud.VMType
	// Ranking lists VM names best-first.
	Ranking []string
	// PredictedSec maps VM name to predicted execution time.
	PredictedSec map[string]float64
	// Observed maps VM name to the measured time for VMs the system
	// actually profiled while selecting.
	Observed map[string]float64
	// OnlineRuns is the reference-VM count charged for this target.
	OnlineRuns int
}

// Selector is the common interface of all selection systems in this package.
type Selector interface {
	Name() string
	// Select predicts the best VM for the target, charging runs to meter.
	Select(target workload.App, meter *oracle.Meter) (*Selection, error)
}

// vmFeatures is the VM-side feature vector shared by the learned baselines.
func vmFeatures(v cloud.VMType) []float64 {
	rv := v.ResourceVector()
	return append(rv, float64(v.VCPUs)/96, boolTo(v.Burstable), boolTo(v.GPU))
}

func boolTo(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// fingerprint summarizes a profiling run as the mean level of each sampled
// series plus the scalar execution ratios — the PARIS-style low-level
// feature vector.
func fingerprint(p sim.Profile) []float64 {
	out := make([]float64, 0, int(metrics.NumSeries)+3)
	for id := metrics.SeriesID(0); id < metrics.NumSeries; id++ {
		sum := 0.0
		for _, v := range p.Trace.Series[id] {
			sum += v
		}
		out = append(out, sum/float64(p.Trace.Len()))
	}
	out = append(out, p.Exec.DataPerCycle, p.Exec.DataPerIteration, p.Exec.DataPerParallelism)
	return out
}

// ---------------------------------------------------------------------------
// PARIS
// ---------------------------------------------------------------------------

// Paris is the Random Forest baseline in its cross-framework mode: trained
// once on source (Hadoop+Hive) workloads, then reused for any target. The
// paper's Figure 2 shows why this reuse is fragile across frameworks.
type Paris struct {
	// RefVMs are the reference VM types used for workload fingerprints
	// (PARIS profiles new workloads on a small fixed reference set).
	RefVMs []string
	// Trees configures the forest size. Default 40.
	Trees int
	Seed  uint64

	catalog []cloud.VMType
	byName  map[string]cloud.VMType
	model   *forest.Forest
	// trainRuns is the offline overhead charged during Train.
	trainRuns int
}

// NewParis constructs the cross-framework PARIS baseline.
func NewParis(catalog []cloud.VMType, seed uint64) *Paris {
	return &Paris{
		RefVMs:  []string{"m5.xlarge", "c5.xlarge"},
		Trees:   40,
		Seed:    seed,
		catalog: append([]cloud.VMType(nil), catalog...),
		byName:  cloud.ByName(catalog),
	}
}

// Name implements Selector.
func (p *Paris) Name() string { return "PARIS" }

// TrainRuns returns the offline reference-VM count.
func (p *Paris) TrainRuns() int { return p.trainRuns }

// Train profiles every source workload on every VM type and fits the forest
// on (fingerprint, VM features) -> log(execution time).
func (p *Paris) Train(sources []workload.App, meter *oracle.Meter) error {
	if len(sources) == 0 {
		return fmt.Errorf("paris: no source workloads")
	}
	start := meter.Runs()
	var xs [][]float64
	var ys []float64
	for _, app := range sources {
		fp, err := p.fingerprint(app, meter)
		if err != nil {
			return err
		}
		for _, vm := range p.catalog {
			prof := meter.Profile(app, vm)
			row := append(append([]float64(nil), fp...), vmFeatures(vm)...)
			xs = append(xs, row)
			ys = append(ys, math.Log(prof.P90Seconds))
		}
	}
	f, err := forest.FitForest(xs, ys, forest.ForestConfig{NumTrees: p.Trees}, rng.New(p.Seed))
	if err != nil {
		return fmt.Errorf("paris: forest fit: %w", err)
	}
	p.model = f
	p.trainRuns = meter.Runs() - start
	return nil
}

// fingerprint profiles the app on the reference VMs and concatenates the
// per-VM fingerprints.
func (p *Paris) fingerprint(app workload.App, meter *oracle.Meter) ([]float64, error) {
	var fp []float64
	for _, name := range p.RefVMs {
		vm, ok := p.byName[name]
		if !ok {
			return nil, fmt.Errorf("paris: reference VM %q not in catalog", name)
		}
		prof := meter.Profile(app, vm)
		fp = append(fp, fingerprint(prof)...)
	}
	return fp, nil
}

// Select implements Selector: fingerprint the target on the reference VMs,
// then predict a time for every catalog VM with the pre-trained forest.
func (p *Paris) Select(target workload.App, meter *oracle.Meter) (*Selection, error) {
	if p.model == nil {
		return nil, fmt.Errorf("paris: Select before Train")
	}
	start := meter.Runs()
	observed := map[string]float64{}
	var fp []float64
	for _, name := range p.RefVMs {
		vm, ok := p.byName[name]
		if !ok {
			return nil, fmt.Errorf("paris: reference VM %q not in catalog", name)
		}
		prof := meter.Profile(target, vm)
		observed[vm.Name] = prof.P90Seconds
		fp = append(fp, fingerprint(prof)...)
	}
	predicted := make(map[string]float64, len(p.catalog))
	for _, vm := range p.catalog {
		if sec, ok := observed[vm.Name]; ok {
			predicted[vm.Name] = sec
			continue
		}
		row := append(append([]float64(nil), fp...), vmFeatures(vm)...)
		predicted[vm.Name] = math.Exp(p.model.Predict(row))
	}
	sel := rankSelection(target.Name, p.catalog, predicted)
	sel.Observed = observed
	sel.OnlineRuns = meter.Runs() - start
	return sel, nil
}

// ---------------------------------------------------------------------------
// PARIS trained from scratch (per-target, Figures 3 and 8)
// ---------------------------------------------------------------------------

// ParisScratch trains a fresh per-workload model using N reference VM runs —
// what a machine learning approach must do for a brand-new framework with no
// transferable knowledge. The paper charges it about 100 reference VMs.
type ParisScratch struct {
	// SampleVMs is the number of reference VMs profiled per target (default
	// 100, the paper's Figure 8 setting).
	SampleVMs int
	Trees     int
	Seed      uint64
	catalog   []cloud.VMType
}

// NewParisScratch constructs the from-scratch PARIS variant.
func NewParisScratch(catalog []cloud.VMType, seed uint64) *ParisScratch {
	return &ParisScratch{SampleVMs: 100, Trees: 40, Seed: seed,
		catalog: append([]cloud.VMType(nil), catalog...)}
}

// Name implements Selector.
func (p *ParisScratch) Name() string { return "PARIS-scratch" }

// Select implements Selector: profile the target on SampleVMs reference VMs,
// fit a forest on VM features -> log(time), and predict the rest.
func (p *ParisScratch) Select(target workload.App, meter *oracle.Meter) (*Selection, error) {
	if p.SampleVMs < 2 {
		return nil, fmt.Errorf("paris-scratch: need at least 2 sample VMs")
	}
	start := meter.Runs()
	src := rng.New(p.Seed ^ hashString(target.Name))
	n := p.SampleVMs
	if n > len(p.catalog) {
		n = len(p.catalog)
	}
	sample := src.Sample(len(p.catalog), n)

	var xs [][]float64
	var ys []float64
	observed := make(map[string]float64, n)
	for _, i := range sample {
		vm := p.catalog[i]
		prof := meter.Profile(target, vm)
		xs = append(xs, vmFeatures(vm))
		ys = append(ys, math.Log(prof.P90Seconds))
		observed[vm.Name] = prof.P90Seconds
	}
	f, err := forest.FitForest(xs, ys, forest.ForestConfig{NumTrees: p.Trees}, src)
	if err != nil {
		return nil, fmt.Errorf("paris-scratch: forest fit: %w", err)
	}
	predicted := make(map[string]float64, len(p.catalog))
	for _, vm := range p.catalog {
		if sec, ok := observed[vm.Name]; ok {
			predicted[vm.Name] = sec
			continue
		}
		predicted[vm.Name] = math.Exp(f.Predict(vmFeatures(vm)))
	}
	sel := rankSelection(target.Name, p.catalog, predicted)
	sel.Observed = observed
	sel.OnlineRuns = meter.Runs() - start
	return sel, nil
}

// ---------------------------------------------------------------------------
// Ernest
// ---------------------------------------------------------------------------

// Ernest fits the NSDI'16 performance-cost model: execution time is a
// non-negative combination of a fixed cost, a data-per-core term, a
// log(cores) tree-reduction term, and a per-core coordination term. The
// model is fit per target from a handful of profiling runs on small VM
// types, then extrapolated to the whole catalog. It captures Spark-style
// compute/communication scaling but has no notion of disk materialization
// or memory pressure — the reason it "only works well in Spark" (Table 5).
type Ernest struct {
	// TrainVMs are the profiling configurations (small, cheap types spanning
	// core counts, like Ernest's small-scale training runs).
	TrainVMs []string
	Seed     uint64
	catalog  []cloud.VMType
	byName   map[string]cloud.VMType
}

// NewErnest constructs the Ernest baseline.
func NewErnest(catalog []cloud.VMType, seed uint64) *Ernest {
	return &Ernest{
		TrainVMs: []string{"t3.medium", "m5.large", "c5.large", "m5.xlarge",
			"c5.2xlarge", "m5.2xlarge", "r5.xlarge", "m5.4xlarge"},
		Seed:    seed,
		catalog: append([]cloud.VMType(nil), catalog...),
		byName:  cloud.ByName(catalog),
	}
}

// Name implements Selector.
func (e *Ernest) Name() string { return "Ernest" }

// ernestFeatures is the NSDI'16 feature map evaluated at a VM type's
// effective core count.
func ernestFeatures(dataGB, cores float64) []float64 {
	return []float64{1, dataGB / cores, math.Log(cores + 1), cores}
}

func effectiveCores(vm cloud.VMType, nodes int) float64 {
	c := float64(nodes*vm.VCPUs) * vm.CPUFactor
	if vm.Burstable {
		c *= 0.7 // Ernest sees throttled sustained throughput
	}
	return c
}

// Select implements Selector: profile the training configurations, fit the
// model with NNLS, and extrapolate to every catalog VM.
func (e *Ernest) Select(target workload.App, meter *oracle.Meter) (*Selection, error) {
	start := meter.Runs()
	nodes := meter.Sim.Config().Nodes
	var rows [][]float64
	var times []float64
	observed := map[string]float64{}
	for _, name := range e.TrainVMs {
		vm, ok := e.byName[name]
		if !ok {
			return nil, fmt.Errorf("ernest: training VM %q not in catalog", name)
		}
		prof := meter.Profile(target, vm)
		rows = append(rows, ernestFeatures(target.InputGB, effectiveCores(vm, nodes)))
		times = append(times, prof.P90Seconds)
		observed[vm.Name] = prof.P90Seconds
	}
	theta, err := nnls.Solve(mat.FromRows(rows), times)
	if err != nil {
		return nil, fmt.Errorf("ernest: NNLS: %w", err)
	}
	predicted := make(map[string]float64, len(e.catalog))
	for _, vm := range e.catalog {
		if sec, ok := observed[vm.Name]; ok {
			predicted[vm.Name] = sec
			continue
		}
		f := ernestFeatures(target.InputGB, effectiveCores(vm, nodes))
		predicted[vm.Name] = mat.Dot(theta, f)
	}
	sel := rankSelection(target.Name, e.catalog, predicted)
	sel.Observed = observed
	sel.OnlineRuns = meter.Runs() - start
	return sel, nil
}

// ---------------------------------------------------------------------------
// Random search
// ---------------------------------------------------------------------------

// RandomSearch tries uniformly random VM types and keeps the best observed —
// the floor any learned system must beat.
type RandomSearch struct {
	// Budget is the number of VMs tried per target. Default 10.
	Budget  int
	Seed    uint64
	catalog []cloud.VMType
}

// NewRandomSearch constructs the random-search reference point.
func NewRandomSearch(catalog []cloud.VMType, seed uint64) *RandomSearch {
	return &RandomSearch{Budget: 10, Seed: seed, catalog: append([]cloud.VMType(nil), catalog...)}
}

// Name implements Selector.
func (r *RandomSearch) Name() string { return "Random" }

// Select implements Selector.
func (r *RandomSearch) Select(target workload.App, meter *oracle.Meter) (*Selection, error) {
	if r.Budget < 1 {
		return nil, fmt.Errorf("random: budget must be positive")
	}
	start := meter.Runs()
	src := rng.New(r.Seed ^ hashString(target.Name))
	n := r.Budget
	if n > len(r.catalog) {
		n = len(r.catalog)
	}
	observed := map[string]float64{}
	for _, i := range src.Sample(len(r.catalog), n) {
		vm := r.catalog[i]
		prof := meter.Profile(target, vm)
		observed[vm.Name] = prof.P90Seconds
	}
	// Unobserved VMs get +Inf so the ranking only trusts observations.
	predicted := map[string]float64{}
	for _, vm := range r.catalog {
		if sec, ok := observed[vm.Name]; ok {
			predicted[vm.Name] = sec
		} else {
			predicted[vm.Name] = math.Inf(1)
		}
	}
	sel := rankSelection(target.Name, r.catalog, predicted)
	sel.Observed = observed
	sel.OnlineRuns = meter.Runs() - start
	return sel, nil
}

// ---------------------------------------------------------------------------
// CherryPick-lite
// ---------------------------------------------------------------------------

// CherryPickLite is a sequential Bayesian-optimization search following
// CherryPick (Alipourfard et al., NSDI'17): a Gaussian Process surrogate
// with a Matern 5/2 kernel over VM resource features, fit on log execution
// times, choosing the next configuration by Expected Improvement. Included
// as a related-work reference point and for the extension benches; the
// paper itself compares only PARIS and Ernest.
type CherryPickLite struct {
	// Budget is the total number of VMs tried per target. Default 10.
	Budget int
	// InitRuns seeds the surrogate with random picks. Default 3.
	InitRuns int
	// Xi is the EI exploration margin. Default 0.01 (log-time units).
	Xi      float64
	Seed    uint64
	catalog []cloud.VMType
}

// CherryPick's evidence-maximized hyperparameter grid.
var (
	cpLengthScales = []float64{1, 2, 4}
	cpVariances    = []float64{0.5, 2}
)

// NewCherryPickLite constructs the BO search baseline.
func NewCherryPickLite(catalog []cloud.VMType, seed uint64) *CherryPickLite {
	return &CherryPickLite{Budget: 10, InitRuns: 3, Xi: 0.01, Seed: seed,
		catalog: append([]cloud.VMType(nil), catalog...)}
}

// Name implements Selector.
func (c *CherryPickLite) Name() string { return "CherryPick-lite" }

// Select implements Selector.
func (c *CherryPickLite) Select(target workload.App, meter *oracle.Meter) (*Selection, error) {
	if c.Budget < c.InitRuns || c.InitRuns < 1 {
		return nil, fmt.Errorf("cherrypick: invalid budget %d / init %d", c.Budget, c.InitRuns)
	}
	start := meter.Runs()
	src := rng.New(c.Seed ^ hashString(target.Name))

	feats := make([][]float64, len(c.catalog))
	for i, vm := range c.catalog {
		feats[i] = vmFeatures(vm)
	}
	observed := map[int]float64{}
	var xs [][]float64
	var ys []float64 // log seconds
	try := func(i int) {
		prof := meter.Profile(target, c.catalog[i])
		observed[i] = prof.P90Seconds
		xs = append(xs, feats[i])
		ys = append(ys, math.Log(prof.P90Seconds))
	}
	for _, i := range src.Sample(len(c.catalog), c.InitRuns) {
		try(i)
	}

	for len(observed) < c.Budget && len(observed) < len(c.catalog) {
		model, err := gp.SelectMatern(xs, ys, cpLengthScales, cpVariances, 1e-2)
		if err != nil {
			// Degenerate design (duplicated points): fall back to random.
			for _, i := range src.Perm(len(c.catalog)) {
				if _, done := observed[i]; !done {
					try(i)
					break
				}
			}
			continue
		}
		bestY := ys[0]
		for _, y := range ys[1:] {
			if y < bestY {
				bestY = y
			}
		}
		bestIdx, bestEI := -1, -1.0
		for i := range c.catalog {
			if _, done := observed[i]; done {
				continue
			}
			ei := model.ExpectedImprovement(feats[i], bestY, c.Xi)
			if ei > bestEI {
				bestEI, bestIdx = ei, i
			}
		}
		if bestIdx == -1 {
			break
		}
		try(bestIdx)
	}

	// Final surrogate predicts the unobserved configurations.
	predicted := make(map[string]float64, len(c.catalog))
	obsByName := map[string]float64{}
	model, err := gp.SelectMatern(xs, ys, cpLengthScales, cpVariances, 1e-2)
	for i, vm := range c.catalog {
		if sec, ok := observed[i]; ok {
			predicted[vm.Name] = sec
			obsByName[vm.Name] = sec
			continue
		}
		if err != nil {
			predicted[vm.Name] = math.Inf(1)
			continue
		}
		mean, _ := model.Predict(feats[i])
		predicted[vm.Name] = math.Exp(mean)
	}
	sel := rankSelection(target.Name, c.catalog, predicted)
	sel.Observed = obsByName
	sel.OnlineRuns = meter.Runs() - start
	return sel, nil
}

// surrogate is an inverse-distance-weighted regressor returning the
// predicted time and an uncertainty proxy (distance to the nearest
// observation).
func surrogate(feats [][]float64, observed map[int]float64, x []float64) (mean, conf float64) {
	totalW := 0.0
	nearest := math.Inf(1)
	for i, y := range observed {
		d := mat.Distance(feats[i], x)
		if d < nearest {
			nearest = d
		}
		w := 1 / (d*d + 1e-6)
		mean += w * y
		totalW += w
	}
	if totalW > 0 {
		mean /= totalW
	}
	// Scale the uncertainty by the observed spread.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, y := range observed {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	return mean, nearest * (hi - lo + 1e-9)
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

// rankSelection builds a Selection from a predicted-time map, pinning any
// directly observed measurements over model predictions.
func rankSelection(target string, catalog []cloud.VMType, predicted map[string]float64) *Selection {
	names := make([]string, len(catalog))
	for i, vm := range catalog {
		names[i] = vm.Name
	}
	sort.Slice(names, func(a, b int) bool {
		pa, pb := predicted[names[a]], predicted[names[b]]
		if pa != pb {
			return pa < pb
		}
		return names[a] < names[b]
	})
	byName := cloud.ByName(catalog)
	return &Selection{
		Target:       target,
		Best:         byName[names[0]],
		Ranking:      names,
		PredictedSec: predicted,
	}
}

// SequentialSearch runs the Figure 12/13 protocol for a baseline: after its
// Select initialization (whose observed runs are replayed as the first
// steps), it tries VMs in its predicted ranking order, recording best-so-far
// statistics, until budget total reference runs are spent.
func SequentialSearch(sel Selector, target workload.App, catalog []cloud.VMType, budget int, meter *oracle.Meter) ([]oracle.Step, error) {
	return SequentialSearchFor(sel, target, catalog, budget, false, meter)
}

// SequentialSearchFor is SequentialSearch with an objective switch: when
// byCost is true (the Figure 13 protocol) the exploitation order follows
// predicted cost (predicted time x cluster price) instead of predicted time.
func SequentialSearchFor(sel Selector, target workload.App, catalog []cloud.VMType, budget int, byCost bool, meter *oracle.Meter) ([]oracle.Step, error) {
	s, err := sel.Select(target, meter)
	if err != nil {
		return nil, err
	}
	nodes := meter.Sim.Config().Nodes
	byName := cloud.ByName(catalog)

	ranking := append([]string(nil), s.Ranking...)
	if byCost {
		costOf := func(vm string) float64 {
			return s.PredictedSec[vm] * byName[vm].PriceHour * float64(nodes)
		}
		sort.SliceStable(ranking, func(a, b int) bool {
			ca, cb := costOf(ranking[a]), costOf(ranking[b])
			if ca != cb {
				return ca < cb
			}
			return ranking[a] < ranking[b]
		})
	}

	var steps []oracle.Step
	bestSec, bestUSD := math.Inf(1), math.Inf(1)
	record := func(vmName string, sec float64) {
		usd := sec / 3600 * byName[vmName].PriceHour * float64(nodes)
		if sec < bestSec {
			bestSec = sec
		}
		if usd < bestUSD {
			bestUSD = usd
		}
		steps = append(steps, oracle.Step{Run: len(steps) + 1, VM: vmName,
			ObservedSec: sec, ObservedUSD: usd, BestSec: bestSec, BestUSD: bestUSD})
	}
	// Replay the observations Select already paid for, deterministically.
	var initVMs []string
	for vm := range s.Observed {
		initVMs = append(initVMs, vm)
	}
	sort.Strings(initVMs)
	for _, vm := range initVMs {
		if len(steps) >= budget {
			break
		}
		record(vm, s.Observed[vm])
	}
	// Exploit the ranking.
	tried := map[string]bool{}
	for vm := range s.Observed {
		tried[vm] = true
	}
	for _, vmName := range ranking {
		if len(steps) >= budget {
			break
		}
		if tried[vmName] {
			continue
		}
		tried[vmName] = true
		prof := meter.Profile(target, byName[vmName])
		record(vmName, prof.P90Seconds)
	}
	return steps, nil
}

// hashString gives a stable 64-bit FNV-1a hash for seed mixing.
func hashString(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
