package baselines

import (
	"testing"

	"vesta/internal/oracle"
	"vesta/internal/workload"
)

func TestArrowSelect(t *testing.T) {
	m := newMeter()
	a := NewArrowLite(catalog, 21)
	sel, err := a.Select(target(t, "Spark-bayes"), m)
	if err != nil {
		t.Fatal(err)
	}
	checkSelection(t, sel)
	if sel.OnlineRuns != a.Budget {
		t.Fatalf("arrow online runs = %d, want %d", sel.OnlineRuns, a.Budget)
	}
	if len(sel.Observed) != a.Budget {
		t.Fatalf("arrow observed %d VMs", len(sel.Observed))
	}
}

func TestArrowInvalidConfig(t *testing.T) {
	a := NewArrowLite(catalog, 1)
	a.Budget = 1
	a.InitRuns = 3
	if _, err := a.Select(target(t, "Spark-lr"), newMeter()); err == nil {
		t.Fatal("budget < init accepted")
	}
}

func TestArrowDeterministic(t *testing.T) {
	tgt := target(t, "Spark-pca")
	s1, err := NewArrowLite(catalog, 5).Select(tgt, newMeter())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewArrowLite(catalog, 5).Select(tgt, newMeter())
	if err != nil {
		t.Fatal(err)
	}
	if s1.Best.Name != s2.Best.Name {
		t.Fatalf("non-deterministic arrow: %s vs %s", s1.Best.Name, s2.Best.Name)
	}
}

func TestArrowCompetitiveWithCherryPick(t *testing.T) {
	// Summed over the targets, the fingerprint-augmented search should not
	// be clearly worse than the blind surrogate at the same budget.
	m := newMeter()
	truth := oracle.Build(m.Sim, workload.TargetSet(), catalog, 99)
	var arrowReg, cpReg float64
	for _, tgt := range workload.TargetSet() {
		ar := NewArrowLite(catalog, 31)
		cp := NewCherryPickLite(catalog, 31)
		as, err := ar.Select(tgt, m)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := cp.Select(tgt, m)
		if err != nil {
			t.Fatal(err)
		}
		_, bestSec, _ := truth.BestByTime(tgt.Name)
		aSec, _ := truth.Time(tgt.Name, as.Best.Name)
		cSec, _ := truth.Time(tgt.Name, cs.Best.Name)
		arrowReg += (aSec - bestSec) / bestSec
		cpReg += (cSec - bestSec) / bestSec
	}
	if arrowReg > cpReg*1.4 {
		t.Fatalf("arrow regret %.2f clearly worse than cherrypick %.2f", arrowReg, cpReg)
	}
}
