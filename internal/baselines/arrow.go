// ArrowLite: a low-level-metric-augmented sequential search in the spirit of
// Arrow (Hsu et al., ICDCS'18), which the paper's related work describes as
// augmenting CherryPick's Bayesian optimization with low-level performance
// metrics to cut search cost. Included as a related-work reference point and
// for the extension experiments; the paper itself compares only PARIS and
// Ernest.
package baselines

import (
	"fmt"
	"math"

	"vesta/internal/cloud"
	"vesta/internal/oracle"
	"vesta/internal/rng"
	"vesta/internal/workload"
)

// ArrowLite searches sequentially like CherryPickLite, but augments the
// surrogate's feature space with the low-level metric fingerprint observed
// on each tried VM. Configurations whose observed fingerprints show slack
// (idle CPU, unsaturated disk) steer the search toward cheaper shapes.
type ArrowLite struct {
	// Budget is the total number of VMs tried per target. Default 10.
	Budget int
	// InitRuns seeds the surrogate with random picks. Default 2 (Arrow's
	// selling point is needing fewer cold-start samples than CherryPick).
	InitRuns int
	// Kappa is the exploration weight. Default 0.3.
	Kappa   float64
	Seed    uint64
	catalog []cloud.VMType
}

// NewArrowLite constructs the augmented-search baseline.
func NewArrowLite(catalog []cloud.VMType, seed uint64) *ArrowLite {
	return &ArrowLite{Budget: 10, InitRuns: 2, Kappa: 0.3, Seed: seed,
		catalog: append([]cloud.VMType(nil), catalog...)}
}

// Name implements Selector.
func (a *ArrowLite) Name() string { return "Arrow-lite" }

// Select implements Selector.
func (a *ArrowLite) Select(target workload.App, meter *oracle.Meter) (*Selection, error) {
	if a.Budget < a.InitRuns || a.InitRuns < 1 {
		return nil, fmt.Errorf("arrow: invalid budget %d / init %d", a.Budget, a.InitRuns)
	}
	start := meter.Runs()
	src := rng.New(a.Seed ^ hashString(target.Name))

	feats := make([][]float64, len(a.catalog))
	for i, vm := range a.catalog {
		feats[i] = vmFeatures(vm)
	}

	observed := map[int]float64{}
	// bottleneck[i] holds the low-level augmentation derived from the run's
	// fingerprint: how CPU-bound vs IO-bound the workload looked there.
	type augmentation struct {
		cpuBound  float64 // mean cpu.user
		diskBound float64 // mean disk activity
		netBound  float64 // mean network activity
		memBound  float64 // mean RAM usage
	}
	augment := map[int]augmentation{}

	try := func(i int) {
		prof := meter.Profile(target, a.catalog[i])
		observed[i] = prof.P90Seconds
		fp := fingerprint(prof)
		// Indices follow metrics.SeriesID: 0 cpu.user, 4 mem.ram,
		// 8/9 disk read/write, 11/12 net send/recv.
		augment[i] = augmentation{
			cpuBound:  fp[0],
			memBound:  fp[4],
			diskBound: (fp[8] + fp[9]) / 2,
			netBound:  (fp[11] + fp[12]) / 2,
		}
	}
	for _, i := range src.Sample(len(a.catalog), a.InitRuns) {
		try(i)
	}

	// Aggregate bottleneck profile across the observations so far.
	bottleneck := func() augmentation {
		var agg augmentation
		for _, g := range augment {
			agg.cpuBound += g.cpuBound
			agg.memBound += g.memBound
			agg.diskBound += g.diskBound
			agg.netBound += g.netBound
		}
		n := float64(len(augment))
		agg.cpuBound /= n
		agg.memBound /= n
		agg.diskBound /= n
		agg.netBound /= n
		return agg
	}

	for len(observed) < a.Budget && len(observed) < len(a.catalog) {
		agg := bottleneck()
		bestIdx, bestAcq := -1, math.Inf(1)
		for i, vm := range a.catalog {
			if _, done := observed[i]; done {
				continue
			}
			mean, conf := surrogate(feats, observed, feats[i])
			// Low-level augmentation: bias toward resource shapes that
			// relieve the observed bottleneck — more per-core speed when
			// CPU-bound, more disk bandwidth when disk-bound, and so on.
			relief := agg.cpuBound*vm.CPUFactor +
				agg.diskBound*math.Min(vm.DiskMBps/960, 2) +
				agg.netBound*math.Min(vm.NetworkGbps/10, 2) +
				agg.memBound*math.Min(vm.MemPerVCPU()/8, 2)
			acq := mean - a.Kappa*conf - 0.1*mean*relief
			if acq < bestAcq {
				bestAcq, bestIdx = acq, i
			}
		}
		if bestIdx == -1 {
			break
		}
		try(bestIdx)
	}

	predicted := make(map[string]float64, len(a.catalog))
	obsByName := map[string]float64{}
	for i, vm := range a.catalog {
		if sec, ok := observed[i]; ok {
			predicted[vm.Name] = sec
			obsByName[vm.Name] = sec
			continue
		}
		mean, _ := surrogate(feats, observed, feats[i])
		predicted[vm.Name] = mean
	}
	sel := rankSelection(target.Name, a.catalog, predicted)
	sel.Observed = obsByName
	sel.OnlineRuns = meter.Runs() - start
	return sel, nil
}
