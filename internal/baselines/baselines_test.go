package baselines

import (
	"math"
	"testing"

	"vesta/internal/cloud"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

var catalog = cloud.Catalog120()

func newMeter() *oracle.Meter {
	return oracle.NewMeter(sim.New(sim.Config{Repeats: 3}), 7)
}

func target(t *testing.T, name string) workload.App {
	t.Helper()
	a, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func checkSelection(t *testing.T, sel *Selection) {
	t.Helper()
	if sel.Best.Name == "" {
		t.Fatal("no best VM")
	}
	if len(sel.Ranking) != len(catalog) {
		t.Fatalf("ranking has %d entries, want %d", len(sel.Ranking), len(catalog))
	}
	if sel.Ranking[0] != sel.Best.Name {
		t.Fatal("best is not first in ranking")
	}
	seen := map[string]bool{}
	for _, vm := range sel.Ranking {
		if seen[vm] {
			t.Fatalf("duplicate VM %s in ranking", vm)
		}
		seen[vm] = true
	}
	for i := 1; i < len(sel.Ranking); i++ {
		if sel.PredictedSec[sel.Ranking[i]] < sel.PredictedSec[sel.Ranking[i-1]] {
			t.Fatal("ranking not sorted by predicted time")
		}
	}
	for vm, sec := range sel.Observed {
		if sel.PredictedSec[vm] != sec {
			t.Fatalf("observed VM %s prediction %v != measurement %v", vm, sel.PredictedSec[vm], sec)
		}
	}
}

func TestParisTrainAndSelect(t *testing.T) {
	m := newMeter()
	p := NewParis(catalog, 1)
	if _, err := p.Select(target(t, "Spark-lr"), m); err == nil {
		t.Fatal("Select before Train should error")
	}
	sources := workload.BySet(workload.SourceTraining)[:4]
	if err := p.Train(sources, m); err != nil {
		t.Fatal(err)
	}
	// Training cost: per source, 2 fingerprint runs + 120 catalog runs.
	want := len(sources) * (2 + len(catalog))
	if p.TrainRuns() != want {
		t.Fatalf("TrainRuns = %d, want %d", p.TrainRuns(), want)
	}
	m.Reset()
	sel, err := p.Select(target(t, "Spark-lr"), m)
	if err != nil {
		t.Fatal(err)
	}
	checkSelection(t, sel)
	if sel.OnlineRuns != 2 {
		t.Fatalf("PARIS online runs = %d, want 2 (fingerprint only)", sel.OnlineRuns)
	}
}

func TestParisTrainEmpty(t *testing.T) {
	p := NewParis(catalog, 1)
	if err := p.Train(nil, newMeter()); err == nil {
		t.Fatal("empty Train accepted")
	}
}

func TestParisInFrameworkAccuracy(t *testing.T) {
	// Trained and tested within Hadoop/Hive, PARIS should pick a VM whose
	// true time is within 2x of optimal — the in-framework case it is
	// designed for.
	m := newMeter()
	p := NewParis(catalog, 2)
	if err := p.Train(workload.BySet(workload.SourceTraining), m); err != nil {
		t.Fatal(err)
	}
	tgt := target(t, "Hadoop-kmeans") // source-testing set, same frameworks
	sel, err := p.Select(tgt, m)
	if err != nil {
		t.Fatal(err)
	}
	truth := oracle.Build(m.Sim, []workload.App{tgt}, catalog, 99)
	_, bestSec, _ := truth.BestByTime(tgt.Name)
	pickedSec, _ := truth.Time(tgt.Name, sel.Best.Name)
	if pickedSec > 2*bestSec {
		t.Fatalf("in-framework PARIS pick %s is %.1fx optimal", sel.Best.Name, pickedSec/bestSec)
	}
}

func TestParisScratch(t *testing.T) {
	m := newMeter()
	p := NewParisScratch(catalog, 3)
	p.SampleVMs = 30
	sel, err := p.Select(target(t, "Spark-kmeans"), m)
	if err != nil {
		t.Fatal(err)
	}
	checkSelection(t, sel)
	if sel.OnlineRuns != 30 {
		t.Fatalf("scratch online runs = %d, want 30", sel.OnlineRuns)
	}
	if len(sel.Observed) != 30 {
		t.Fatalf("scratch observed %d VMs", len(sel.Observed))
	}
}

func TestParisScratchDefaultsTo100(t *testing.T) {
	p := NewParisScratch(catalog, 1)
	if p.SampleVMs != 100 {
		t.Fatalf("default SampleVMs = %d, want 100 (Figure 8)", p.SampleVMs)
	}
}

func TestParisScratchInvalid(t *testing.T) {
	p := NewParisScratch(catalog, 1)
	p.SampleVMs = 1
	if _, err := p.Select(target(t, "Spark-lr"), newMeter()); err == nil {
		t.Fatal("SampleVMs=1 accepted")
	}
}

func TestParisScratchBeatsCrossFrameworkOnSpark(t *testing.T) {
	// The reason the paper charges PARIS 100 runs for a new framework:
	// trained from scratch on the target it is much more accurate than the
	// reused cross-framework model.
	m := newMeter()
	cross := NewParis(catalog, 4)
	if err := cross.Train(workload.SourceSet(), m); err != nil {
		t.Fatal(err)
	}
	scratch := NewParisScratch(catalog, 4)
	truth := oracle.Build(m.Sim, workload.TargetSet(), catalog, 99)

	var crossReg, scratchReg float64
	for _, tgt := range workload.TargetSet() {
		cs, err := cross.Select(tgt, m)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := scratch.Select(tgt, m)
		if err != nil {
			t.Fatal(err)
		}
		_, bestSec, _ := truth.BestByTime(tgt.Name)
		cSec, _ := truth.Time(tgt.Name, cs.Best.Name)
		sSec, _ := truth.Time(tgt.Name, ss.Best.Name)
		crossReg += (cSec - bestSec) / bestSec
		scratchReg += (sSec - bestSec) / bestSec
	}
	if scratchReg >= crossReg {
		t.Fatalf("scratch regret %.2f not below cross-framework regret %.2f", scratchReg, crossReg)
	}
}

func TestErnestSelect(t *testing.T) {
	m := newMeter()
	e := NewErnest(catalog, 5)
	sel, err := e.Select(target(t, "Spark-lr"), m)
	if err != nil {
		t.Fatal(err)
	}
	checkSelection(t, sel)
	if sel.OnlineRuns != len(e.TrainVMs) {
		t.Fatalf("Ernest online runs = %d, want %d", sel.OnlineRuns, len(e.TrainVMs))
	}
	// Predictions must be non-negative (NNLS coefficients).
	for vm, sec := range sel.PredictedSec {
		if sec < 0 || math.IsNaN(sec) {
			t.Fatalf("Ernest predicted %v for %s", sec, vm)
		}
	}
}

func TestErnestBetterOnSparkThanHadoop(t *testing.T) {
	// Table 5: Ernest "only works well on Spark workloads". Compare its
	// selection regret on the same kernel across frameworks.
	m := newMeter()
	e := NewErnest(catalog, 6)
	apps := []workload.App{target(t, "Spark-lr"), target(t, "Hadoop-terasort"), target(t, "Hive-full-join")}
	truth := oracle.Build(m.Sim, apps, catalog, 99)
	reg := func(a workload.App) float64 {
		sel, err := e.Select(a, m)
		if err != nil {
			t.Fatal(err)
		}
		_, bestSec, _ := truth.BestByTime(a.Name)
		sec, _ := truth.Time(a.Name, sel.Best.Name)
		return (sec - bestSec) / bestSec
	}
	spark := reg(apps[0])
	hadoop := reg(apps[1])
	hive := reg(apps[2])
	if spark > hadoop+hive {
		t.Fatalf("Ernest regret on Spark (%.2f) not clearly below Hadoop(%.2f)+Hive(%.2f)",
			spark, hadoop, hive)
	}
}

func TestErnestUnknownTrainVM(t *testing.T) {
	e := NewErnest(catalog, 1)
	e.TrainVMs = []string{"bogus.vm"}
	if _, err := e.Select(target(t, "Spark-lr"), newMeter()); err == nil {
		t.Fatal("unknown training VM accepted")
	}
}

func TestRandomSearch(t *testing.T) {
	m := newMeter()
	r := NewRandomSearch(catalog, 7)
	sel, err := r.Select(target(t, "Spark-sort"), m)
	if err != nil {
		t.Fatal(err)
	}
	checkSelection(t, sel)
	if sel.OnlineRuns != 10 {
		t.Fatalf("random online runs = %d, want 10", sel.OnlineRuns)
	}
	// Best must be one of the observed VMs (no extrapolation).
	if _, ok := sel.Observed[sel.Best.Name]; !ok {
		t.Fatal("random search picked an unobserved VM")
	}
}

func TestRandomSearchInvalidBudget(t *testing.T) {
	r := NewRandomSearch(catalog, 1)
	r.Budget = 0
	if _, err := r.Select(target(t, "Spark-lr"), newMeter()); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestCherryPickLite(t *testing.T) {
	m := newMeter()
	c := NewCherryPickLite(catalog, 8)
	sel, err := c.Select(target(t, "Spark-kmeans"), m)
	if err != nil {
		t.Fatal(err)
	}
	checkSelection(t, sel)
	if sel.OnlineRuns != c.Budget {
		t.Fatalf("cherrypick online runs = %d, want %d", sel.OnlineRuns, c.Budget)
	}
}

func TestCherryPickBeatsRandomOnAverage(t *testing.T) {
	// With the same budget, the model-based search should find a better or
	// equal VM than uniform random, summed over targets.
	m := newMeter()
	truth := oracle.Build(m.Sim, workload.TargetSet(), catalog, 99)
	var cpReg, rndReg float64
	for _, tgt := range workload.TargetSet() {
		cp := NewCherryPickLite(catalog, 9)
		rnd := NewRandomSearch(catalog, 9)
		cs, err := cp.Select(tgt, m)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := rnd.Select(tgt, m)
		if err != nil {
			t.Fatal(err)
		}
		_, bestSec, _ := truth.BestByTime(tgt.Name)
		cSec, _ := truth.Time(tgt.Name, cs.Best.Name)
		rSec, _ := truth.Time(tgt.Name, rs.Best.Name)
		cpReg += (cSec - bestSec) / bestSec
		rndReg += (rSec - bestSec) / bestSec
	}
	if cpReg > rndReg*1.1 {
		t.Fatalf("CherryPick-lite regret %.2f clearly worse than random %.2f", cpReg, rndReg)
	}
}

func TestCherryPickInvalidConfig(t *testing.T) {
	c := NewCherryPickLite(catalog, 1)
	c.Budget = 2
	c.InitRuns = 5
	if _, err := c.Select(target(t, "Spark-lr"), newMeter()); err == nil {
		t.Fatal("budget < init accepted")
	}
}

func TestSequentialSearch(t *testing.T) {
	m := newMeter()
	e := NewErnest(catalog, 10)
	tgt := target(t, "Spark-lr")
	steps, err := SequentialSearch(e, tgt, catalog, 15, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 15 {
		t.Fatalf("got %d steps, want 15", len(steps))
	}
	for i, st := range steps {
		if st.Run != i+1 {
			t.Fatalf("step %d has Run=%d", i, st.Run)
		}
		if st.ObservedSec <= 0 || st.BestSec <= 0 {
			t.Fatalf("bad step %+v", st)
		}
		if i > 0 && st.BestSec > steps[i-1].BestSec {
			t.Fatal("best-so-far time increased")
		}
		if i > 0 && st.BestUSD > steps[i-1].BestUSD {
			t.Fatal("best-so-far budget increased")
		}
		if st.BestSec > st.ObservedSec {
			t.Fatal("best-so-far above observation")
		}
	}
	// No VM tried twice.
	seen := map[string]bool{}
	for _, st := range steps {
		if seen[st.VM] {
			t.Fatalf("VM %s tried twice", st.VM)
		}
		seen[st.VM] = true
	}
}

func TestSelectorNames(t *testing.T) {
	names := map[string]bool{}
	for _, s := range []Selector{
		NewParis(catalog, 1), NewParisScratch(catalog, 1),
		NewErnest(catalog, 1), NewRandomSearch(catalog, 1), NewCherryPickLite(catalog, 1),
	} {
		if s.Name() == "" || names[s.Name()] {
			t.Fatalf("bad or duplicate selector name %q", s.Name())
		}
		names[s.Name()] = true
	}
}

func TestVMFeaturesShape(t *testing.T) {
	f := vmFeatures(catalog[0])
	if len(f) != 8 {
		t.Fatalf("vmFeatures has %d dims, want 8", len(f))
	}
}

func BenchmarkErnestSelect(b *testing.B) {
	m := newMeter()
	e := NewErnest(catalog, 1)
	a, _ := workload.ByName("Spark-lr")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Select(a, m); err != nil {
			b.Fatal(err)
		}
	}
}
