package oracle

import (
	"testing"

	"vesta/internal/cloud"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

func smallTable(t *testing.T) *Table {
	t.Helper()
	s := sim.New(sim.Config{Repeats: 3})
	apps := []workload.App{}
	for _, n := range []string{"Spark-lr", "Hadoop-terasort", "Hive-select"} {
		a, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, a)
	}
	cat := cloud.Catalog120()[:12]
	return Build(s, apps, cat, 42)
}

func TestBuildCoversGrid(t *testing.T) {
	tbl := smallTable(t)
	if len(tbl.Apps()) != 3 || len(tbl.VMs()) != 12 {
		t.Fatalf("table is %dx%d", len(tbl.Apps()), len(tbl.VMs()))
	}
	for _, a := range tbl.Apps() {
		for _, v := range tbl.VMs() {
			sec, err := tbl.Time(a.Name, v.Name)
			if err != nil || sec <= 0 {
				t.Fatalf("Time(%s, %s) = %v, %v", a.Name, v.Name, sec, err)
			}
			cost, err := tbl.Cost(a.Name, v.Name)
			if err != nil || cost <= 0 {
				t.Fatalf("Cost(%s, %s) = %v, %v", a.Name, v.Name, cost, err)
			}
		}
	}
}

func TestBestIsMinimum(t *testing.T) {
	tbl := smallTable(t)
	for _, a := range tbl.Apps() {
		bestVM, bestSec, err := tbl.BestByTime(a.Name)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range tbl.VMs() {
			sec, _ := tbl.Time(a.Name, v.Name)
			if sec < bestSec {
				t.Fatalf("%s: %s (%v s) beats reported best %s (%v s)",
					a.Name, v.Name, sec, bestVM.Name, bestSec)
			}
		}
		bestCostVM, bestCost, err := tbl.BestByCost(a.Name)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range tbl.VMs() {
			c, _ := tbl.Cost(a.Name, v.Name)
			if c < bestCost {
				t.Fatalf("%s: %s ($%v) beats reported best %s ($%v)",
					a.Name, v.Name, c, bestCostVM.Name, bestCost)
			}
		}
	}
}

func TestUnknownLookups(t *testing.T) {
	tbl := smallTable(t)
	if _, err := tbl.Time("nope", "m5.large"); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, _, err := tbl.BestByTime("nope"); err == nil {
		t.Fatal("unknown best accepted")
	}
	if _, err := tbl.TimesFor("nope"); err == nil {
		t.Fatal("unknown TimesFor accepted")
	}
}

func TestTimesForOrder(t *testing.T) {
	tbl := smallTable(t)
	times, err := tbl.TimesFor("Spark-lr")
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != len(tbl.VMs()) {
		t.Fatalf("TimesFor length %d", len(times))
	}
	for i, v := range tbl.VMs() {
		want, _ := tbl.Time("Spark-lr", v.Name)
		if times[i] != want {
			t.Fatal("TimesFor not in catalog order")
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	t1 := smallTable(t)
	t2 := smallTable(t)
	for _, a := range t1.Apps() {
		for _, v := range t1.VMs() {
			x, _ := t1.Time(a.Name, v.Name)
			y, _ := t2.Time(a.Name, v.Name)
			if x != y {
				t.Fatalf("non-deterministic table at (%s, %s)", a.Name, v.Name)
			}
		}
	}
}

func TestMeterCounting(t *testing.T) {
	s := sim.New(sim.Config{Repeats: 2})
	m := NewMeter(s, 7)
	a, _ := workload.ByName("Spark-lr")
	vm := cloud.Catalog120()[30]
	if m.Runs() != 0 {
		t.Fatal("fresh meter not at zero")
	}
	p := m.Profile(a, vm)
	if p.P90Seconds <= 0 {
		t.Fatal("meter profile returned bad result")
	}
	m.Profile(a, vm)
	if m.Runs() != 2 {
		t.Fatalf("Runs = %d, want 2", m.Runs())
	}
	log := m.Log()
	if len(log) != 2 || log[0].App != "Spark-lr" {
		t.Fatalf("log = %v", log)
	}
	m.Reset()
	if m.Runs() != 0 || len(m.Log()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestMeterMatchesDirectSim(t *testing.T) {
	s := sim.New(sim.Config{Repeats: 2})
	m := NewMeter(s, 7)
	a, _ := workload.ByName("Spark-lr")
	vm := cloud.Catalog120()[30]
	got := m.Profile(a, vm).P90Seconds
	want := s.ProfileRun(a, vm, 7).P90Seconds
	if got != want {
		t.Fatalf("meter time %v != direct sim %v", got, want)
	}
}
