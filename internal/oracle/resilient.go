package oracle

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"vesta/internal/cloud"
	"vesta/internal/obs"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

// Sentinel errors distinguishing the ways a resilient profiling campaign can
// give up. Callers match with errors.Is.
var (
	// ErrProfileFailed: every attempt died to terminal faults (preemption,
	// launch failure, OOM).
	ErrProfileFailed = errors.New("oracle: profiling failed after retries")
	// ErrQuarantined: attempts completed but every one produced corrupt
	// measurements (non-finite P90 or an unusable correlation vector).
	ErrQuarantined = errors.New("oracle: profile quarantined as corrupt")
	// ErrDeadline: the per-profile simulated-time deadline expired before a
	// clean measurement landed.
	ErrDeadline = errors.New("oracle: profiling deadline exceeded")
)

// RetryPolicy bounds how hard a Resilient meter fights for a measurement.
// The backoff clock is simulated time, not wall time: it models the
// operator's re-launch delay and is charged to the campaign's deadline.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first try.
	MaxRetries int
	// BackoffSec is the simulated delay before the first retry.
	BackoffSec float64
	// BackoffMult grows the delay per retry (exponential backoff).
	BackoffMult float64
	// DeadlineSec caps the simulated time (runs + waste + backoff) spent on
	// one profile; 0 disables the deadline.
	DeadlineSec float64
}

// DefaultRetryPolicy matches a pragmatic profiling campaign: three retries,
// 30 s initial backoff doubling each time, no deadline.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 3, BackoffSec: 30, BackoffMult: 2}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.BackoffSec <= 0 {
		p.BackoffSec = d.BackoffSec
	}
	if p.BackoffMult < 1 {
		p.BackoffMult = d.BackoffMult
	}
	return p
}

// ResilienceStats summarizes one meter's fight against fault injection.
// All durations are simulated seconds.
type ResilienceStats struct {
	Profiles     int     // TryProfile campaigns started
	Attempts     int     // profile attempts, including retries
	Retries      int     // attempts beyond each campaign's first
	Failed       int     // campaigns abandoned (any sentinel)
	Quarantined  int     // campaigns abandoned with ErrQuarantined
	DeadlineHits int     // campaigns abandoned with ErrDeadline
	FailedRuns   int     // individual runs killed by faults
	WastedSec    float64 // cluster time burned by killed runs
	BackoffSec   float64 // simulated operator backoff time
}

// Resilient wraps a Meter with bounded retries, exponential backoff on a
// simulated clock, per-profile deadlines, and quarantine of corrupt
// profiles. Every attempt — retried, failed, quarantined — is charged to
// the wrapped meter's run counter, the Figure-8 accounting rule: wasted
// campaigns are training overhead too.
//
// Determinism: retries perturb only the chaos stream (attempt number), and
// the stats below are integers or integer milliseconds, so concurrent use
// over internal/parallel stays byte-identical at any worker count.
type Resilient struct {
	meter  *Meter
	policy RetryPolicy

	mu           sync.Mutex
	profiles     int
	attempts     int
	retries      int
	failed       int
	quarantined  int
	deadlineHits int
	failedRuns   int
	wastedMS     int64 // int64 milliseconds: addition order cannot change the sum
	backoffMS    int64
}

// NewResilient wraps meter with the given retry policy (zero fields take
// defaults).
func NewResilient(meter *Meter, policy RetryPolicy) *Resilient {
	return &Resilient{meter: meter, policy: policy.withDefaults()}
}

// Meter returns the wrapped ground-truth meter.
func (r *Resilient) Meter() *Meter { return r.meter }

// Policy returns the effective retry policy.
func (r *Resilient) Policy() RetryPolicy { return r.policy }

// Runs implements Service: reference-VM units charged, including wasted
// attempts.
func (r *Resilient) Runs() int { return r.meter.Runs() }

// SimConfig implements Service.
func (r *Resilient) SimConfig() sim.Config { return r.meter.SimConfig() }

// Stats returns a snapshot of the resilience counters.
func (r *Resilient) Stats() ResilienceStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ResilienceStats{
		Profiles:     r.profiles,
		Attempts:     r.attempts,
		Retries:      r.retries,
		Failed:       r.failed,
		Quarantined:  r.quarantined,
		DeadlineHits: r.deadlineHits,
		FailedRuns:   r.failedRuns,
		WastedSec:    float64(r.wastedMS) / 1e3,
		BackoffSec:   float64(r.backoffMS) / 1e3,
	}
}

// corruptReason reports why a completed profile is unusable, or "" when it
// is clean: a measurement campaign can "succeed" and still deliver garbage
// (dropout-shredded traces, non-finite summaries).
func corruptReason(p sim.Profile) string {
	if math.IsNaN(p.P90Seconds) || math.IsInf(p.P90Seconds, 0) || p.P90Seconds <= 0 {
		return fmt.Sprintf("non-finite or non-positive P90 (%v)", p.P90Seconds)
	}
	if !p.Corr.Valid() {
		return "unusable correlation vector"
	}
	return ""
}

// TryProfile implements Service: measure app on vm, retrying failed or
// corrupt attempts under the policy's backoff and deadline. On success the
// returned profile carries the failure accounting of its own (final)
// attempt only; the meter-wide totals live in Stats.
//
// Observability: when the wrapped meter carries a tracer, the whole campaign
// gets a span whose duration is the simulated clock it consumed (runs +
// waste + backoff), each retry and each abandonment gets an event, and the
// Figure-8 waste totals accumulate in oracle.* counters. Every payload is
// derived from simulated time and the deterministic chaos stream, so the
// trace survives any worker schedule byte-identically.
func (r *Resilient) TryProfile(app workload.App, vm cloud.VMType) (sim.Profile, error) {
	r.mu.Lock()
	r.profiles++
	r.mu.Unlock()
	tr := r.meter.Tracer()
	campaignKey := ""
	var campaign obs.Span
	if tr.Enabled() {
		tr.Count("oracle.campaigns", 1)
		campaignKey = "campaign/app=" + app.Name + "/vm=" + vm.Name
		campaign = tr.Start(campaignKey)
	}

	clock := 0.0 // simulated seconds spent on this campaign
	backoff := r.policy.BackoffSec
	var lastErr error
	var lastProfile sim.Profile
	for attempt := 0; ; attempt++ {
		p, err := r.meter.TryProfileAttempt(app, vm, uint64(attempt))
		r.mu.Lock()
		r.attempts++
		if attempt > 0 {
			r.retries++
		}
		r.failedRuns += p.FailedRuns
		r.wastedMS += int64(math.Round(p.WastedSec * 1e3))
		r.mu.Unlock()
		if tr.Enabled() {
			tr.Count("oracle.attempts", 1)
			tr.Count("oracle.failed_runs", int64(p.FailedRuns))
			tr.Count("oracle.wasted_ms", int64(math.Round(p.WastedSec*1e3)))
		}
		clock += profileSpentSec(p)
		lastProfile = p

		quarantineReason := ""
		if err == nil {
			quarantineReason = corruptReason(p)
			if quarantineReason == "" {
				campaign.EndSim(clock)
				return p, nil
			}
		}
		lastErr = err

		// Decide whether another attempt is allowed.
		if attempt >= r.policy.MaxRetries {
			break
		}
		if r.policy.DeadlineSec > 0 && clock+backoff > r.policy.DeadlineSec {
			r.mu.Lock()
			r.failed++
			r.deadlineHits++
			r.mu.Unlock()
			if tr.Enabled() {
				tr.Count("oracle.failed", 1)
				tr.Count("oracle.deadline_hits", 1)
				tr.EventSim(campaignKey+"/deadline",
					fmt.Sprintf("attempts=%d", attempt+1), clock)
				campaign.EndSim(clock)
			}
			return lastProfile, fmt.Errorf("%w: %s on %s after %.0fs (%d attempts)",
				ErrDeadline, app.Name, vm.Name, clock, attempt+1)
		}
		backoffMS := int64(math.Round(backoff * 1e3))
		r.mu.Lock()
		r.backoffMS += backoffMS
		r.mu.Unlock()
		if tr.Enabled() {
			tr.Count("oracle.retries", 1)
			tr.Count("oracle.backoff_ms", backoffMS)
			reason := quarantineReason
			if reason == "" && lastErr != nil {
				reason = lastErr.Error()
			}
			tr.Event(fmt.Sprintf("%s/retry=%d", campaignKey, attempt+1),
				fmt.Sprintf("backoff_ms=%d cause=%s", backoffMS, reason))
		}
		clock += backoff
		backoff *= r.policy.BackoffMult
	}

	// Retries exhausted: classify the abandonment.
	if lastErr == nil {
		r.mu.Lock()
		r.failed++
		r.quarantined++
		r.mu.Unlock()
		if tr.Enabled() {
			tr.Count("oracle.failed", 1)
			tr.Count("oracle.quarantined", 1)
			tr.EventSim(campaignKey+"/quarantined", corruptReason(lastProfile), clock)
			campaign.EndSim(clock)
		}
		return lastProfile, fmt.Errorf("%w: %s on %s: %s",
			ErrQuarantined, app.Name, vm.Name, corruptReason(lastProfile))
	}
	r.mu.Lock()
	r.failed++
	r.mu.Unlock()
	if tr.Enabled() {
		tr.Count("oracle.failed", 1)
		tr.EventSim(campaignKey+"/failed",
			fmt.Sprintf("attempts=%d cause=%s", r.policy.MaxRetries+1, lastErr.Error()), clock)
		campaign.EndSim(clock)
	}
	return lastProfile, fmt.Errorf("%w: %s on %s (%d attempts): %v",
		ErrProfileFailed, app.Name, vm.Name, r.policy.MaxRetries+1, lastErr)
}

// profileSpentSec is the simulated cluster time one profile attempt burned:
// completed runs plus killed-run waste.
func profileSpentSec(p sim.Profile) float64 {
	t := p.WastedSec
	for _, sec := range p.Runs {
		t += sec
	}
	return t
}
