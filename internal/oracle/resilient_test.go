package oracle

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"vesta/internal/chaos"
	"vesta/internal/cloud"
	"vesta/internal/metrics"
	"vesta/internal/parallel"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

// equalFloat treats NaN as equal to NaN (reflect.DeepEqual does not, and
// dropout-damaged traces legitimately contain NaN samples).
func equalFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func equalSeries(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !equalFloat(a[i], b[i]) {
			return false
		}
	}
	return true
}

// equalProfile is a NaN-aware deep comparison of two profiles.
func equalProfile(a, b sim.Profile) bool {
	if a.App.Name != b.App.Name || a.VM != b.VM || a.Nodes != b.Nodes ||
		!equalFloat(a.P90Seconds, b.P90Seconds) || !equalFloat(a.MeanSec, b.MeanSec) ||
		!equalFloat(a.CostUSD, b.CostUSD) || !equalFloat(a.P90LatencyMS, b.P90LatencyMS) ||
		!equalFloat(a.ThroughputMBps, b.ThroughputMBps) ||
		a.FailedRuns != b.FailedRuns || !equalFloat(a.WastedSec, b.WastedSec) ||
		!equalSeries(a.Runs, b.Runs) || !equalSeries(a.Corr[:], b.Corr[:]) ||
		a.Exec != b.Exec {
		return false
	}
	if (a.Trace == nil) != (b.Trace == nil) {
		return false
	}
	if a.Trace != nil {
		if a.Trace.SampleSec != b.Trace.SampleSec || a.Trace.Partial != b.Trace.Partial ||
			a.Trace.Dropped != b.Trace.Dropped {
			return false
		}
		for id := metrics.SeriesID(0); id < metrics.NumSeries; id++ {
			if !equalSeries(a.Trace.Series[id], b.Trace.Series[id]) {
				return false
			}
		}
	}
	return true
}

func resilientFixture(rates chaos.Rates, policy RetryPolicy) (*Resilient, workload.App, cloud.VMType) {
	var plan *chaos.Plan
	if !rates.Zero() {
		plan = chaos.NewPlan(1234, rates)
	}
	s := sim.New(sim.Config{Chaos: plan})
	m := NewMeter(s, 7)
	app := workload.BySet(workload.SourceTraining)[0]
	vm := cloud.ByName(cloud.Catalog())["m5.xlarge"]
	return NewResilient(m, policy), app, vm
}

func TestResilientFaultFreeMatchesMeter(t *testing.T) {
	r, app, vm := resilientFixture(chaos.Rates{}, RetryPolicy{})
	got, err := r.TryProfile(app, vm)
	if err != nil {
		t.Fatalf("fault-free TryProfile failed: %v", err)
	}
	want := sim.New(sim.Config{}).ProfileRun(app, vm, 7)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fault-free resilient profile differs from ground truth")
	}
	if r.Runs() != 1 {
		t.Fatalf("fault-free profile charged %d runs, want 1", r.Runs())
	}
	st := r.Stats()
	if st.Attempts != 1 || st.Retries != 0 || st.Failed != 0 || st.WastedSec != 0 {
		t.Fatalf("fault-free stats polluted: %+v", st)
	}
}

// TestResilientRetryRecoversGroundTruth: a campaign whose first attempt dies
// but whose retry survives must deliver the exact fault-free measurement.
func TestResilientRetryRecoversGroundTruth(t *testing.T) {
	r, app, _ := resilientFixture(chaos.Rates{LaunchFailure: 0.5}, RetryPolicy{MaxRetries: 5})
	clean := sim.New(sim.Config{})
	recovered := false
	for _, vm := range cloud.Catalog() {
		p, err := r.TryProfile(app, vm)
		if err != nil {
			continue
		}
		if !reflect.DeepEqual(p, clean.ProfileRun(app, vm, 7)) {
			// Launch failures kill whole runs; survivors must be pristine.
			// (Profiles with partial failures differ by design.)
			if p.FailedRuns == 0 {
				t.Fatalf("recovered profile for %s differs from ground truth", vm.Name)
			}
		}
		if p.FailedRuns > 0 {
			recovered = true
		}
	}
	st := r.Stats()
	if !recovered && st.Retries == 0 {
		t.Fatal("no campaign exercised the retry path at launch-failure rate 0.5")
	}
	if st.WastedSec <= 0 {
		t.Fatalf("faults occurred but WastedSec = %v", st.WastedSec)
	}
}

func TestResilientAllAttemptsFail(t *testing.T) {
	r, app, vm := resilientFixture(chaos.Rates{LaunchFailure: 1}, RetryPolicy{MaxRetries: 2})
	_, err := r.TryProfile(app, vm)
	if !errors.Is(err, ErrProfileFailed) {
		t.Fatalf("want ErrProfileFailed, got %v", err)
	}
	if r.Runs() != 3 {
		t.Fatalf("3 attempts should charge 3 runs (Figure-8 accounting), got %d", r.Runs())
	}
	st := r.Stats()
	if st.Failed != 1 || st.Retries != 2 || st.BackoffSec != 30+60 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestResilientDeadline(t *testing.T) {
	r, app, vm := resilientFixture(chaos.Rates{LaunchFailure: 1},
		RetryPolicy{MaxRetries: 10, BackoffSec: 30, DeadlineSec: 40})
	_, err := r.TryProfile(app, vm)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	st := r.Stats()
	if st.DeadlineHits != 1 {
		t.Fatalf("DeadlineHits = %d, want 1", st.DeadlineHits)
	}
	if st.Attempts > 3 {
		t.Fatalf("deadline of 40s should stop the campaign early, got %d attempts", st.Attempts)
	}
}

func TestResilientQuarantinesCorruptProfiles(t *testing.T) {
	// Total sampler dropout: every run completes but every trace is shredded,
	// so the correlation vector is unusable on every attempt.
	r, app, vm := resilientFixture(chaos.Rates{SamplerDropout: 1}, RetryPolicy{MaxRetries: 1})
	_, err := r.TryProfile(app, vm)
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("want ErrQuarantined, got %v", err)
	}
	st := r.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
}

// TestResilientDeterministicAcrossWorkers: profiling a grid through fresh
// resilient meters must produce identical profiles and identical stats at
// any worker count, including under the race detector.
func TestResilientDeterministicAcrossWorkers(t *testing.T) {
	apps := workload.BySet(workload.SourceTraining)[:4]
	vms := cloud.Catalog()[:6]
	grid := func(workers int) ([]sim.Profile, []bool, ResilienceStats) {
		s := sim.New(sim.Config{Repeats: 4, Chaos: chaos.NewPlan(99, chaos.Uniform(0.2))})
		r := NewResilient(NewMeter(s, 7), RetryPolicy{MaxRetries: 2})
		n := len(apps) * len(vms)
		profiles := make([]sim.Profile, n)
		ok := make([]bool, n)
		parallel.For(workers, n, func(i int) {
			p, err := r.TryProfile(apps[i/len(vms)], vms[i%len(vms)])
			profiles[i], ok[i] = p, err == nil
		})
		return profiles, ok, r.Stats()
	}
	wantP, wantOK, wantStats := grid(1)
	for _, w := range []int{2, 4} {
		gotP, gotOK, gotStats := grid(w)
		if !reflect.DeepEqual(gotOK, wantOK) {
			t.Fatalf("workers=%d: success pattern differs", w)
		}
		for i := range gotP {
			if !equalProfile(gotP[i], wantP[i]) {
				t.Fatalf("workers=%d: profile %d differs", w, i)
			}
		}
		if gotStats != wantStats {
			t.Fatalf("workers=%d: stats differ:\n got %+v\nwant %+v", w, gotStats, wantStats)
		}
	}
}

func TestBuildWorkersMatchesBuild(t *testing.T) {
	s := sim.New(sim.Config{Repeats: 3})
	apps := workload.BySet(workload.SourceTraining)[:3]
	vms := cloud.Catalog()[:5]
	want := Build(s, apps, vms, 11)
	for _, w := range []int{1, 2, 7} {
		got := BuildWorkers(s, apps, vms, 11, w)
		for _, a := range apps {
			for _, v := range vms {
				wt, _ := want.Time(a.Name, v.Name)
				gt, err := got.Time(a.Name, v.Name)
				if err != nil || gt != wt {
					t.Fatalf("workers=%d: %s/%s time %v != %v (%v)", w, a.Name, v.Name, gt, wt, err)
				}
			}
		}
	}
}
