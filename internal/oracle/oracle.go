// Package oracle provides (1) the exhaustive ground-truth tables the paper
// uses to define the "best" VM type (Section 5.2: ground truth is obtained
// by exhaustively running every workload on all 120 VM types), and (2) a
// run-counting measurement meter, so every selection system's training
// overhead (Figure 8's "number of reference VMs") is accounted identically.
package oracle

import (
	"fmt"
	"sync"

	"vesta/internal/cloud"
	"vesta/internal/obs"
	"vesta/internal/parallel"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

// Key identifies one (application, VM type) measurement.
type Key struct {
	App string
	VM  string
}

// Table holds exhaustive P90 execution times and budgets.
type Table struct {
	apps []workload.App
	vms  []cloud.VMType
	time map[Key]float64
	cost map[Key]float64
}

// Build exhaustively profiles every app on every VM type using one worker
// per CPU. seed fixes the whole table deterministically.
func Build(s *sim.Simulator, apps []workload.App, vms []cloud.VMType, seed uint64) *Table {
	return BuildWorkers(s, apps, vms, seed, 0)
}

// BuildWorkers is Build with an explicit worker count following the
// repository's -workers convention (<= 0 means one per CPU). The grid is
// embarrassingly parallel — each (app, VM) cell depends only on its own
// fixed seed — so the table is byte-identical at any worker count.
func BuildWorkers(s *sim.Simulator, apps []workload.App, vms []cloud.VMType, seed uint64, workers int) *Table {
	t := &Table{
		apps: append([]workload.App(nil), apps...),
		vms:  append([]cloud.VMType(nil), vms...),
		time: make(map[Key]float64, len(apps)*len(vms)),
		cost: make(map[Key]float64, len(apps)*len(vms)),
	}
	type cell struct {
		key  Key
		time float64
		cost float64
	}
	results := parallel.Map(workers, len(apps)*len(vms), func(idx int) cell {
		a := apps[idx/len(vms)]
		v := vms[idx%len(vms)]
		p := s.ProfileRun(a, v, seed)
		return cell{Key{App: a.Name, VM: v.Name}, p.P90Seconds, p.CostUSD}
	})
	for _, c := range results {
		t.time[c.key] = c.time
		t.cost[c.key] = c.cost
	}
	return t
}

// Apps returns the profiled applications.
func (t *Table) Apps() []workload.App { return append([]workload.App(nil), t.apps...) }

// VMs returns the profiled VM types.
func (t *Table) VMs() []cloud.VMType { return append([]cloud.VMType(nil), t.vms...) }

// Time returns the ground-truth P90 execution time in seconds.
func (t *Table) Time(app, vm string) (float64, error) {
	v, ok := t.time[Key{App: app, VM: vm}]
	if !ok {
		return 0, fmt.Errorf("oracle: no measurement for %s on %s", app, vm)
	}
	return v, nil
}

// Cost returns the ground-truth budget in USD.
func (t *Table) Cost(app, vm string) (float64, error) {
	v, ok := t.cost[Key{App: app, VM: vm}]
	if !ok {
		return 0, fmt.Errorf("oracle: no measurement for %s on %s", app, vm)
	}
	return v, nil
}

// BestByTime returns the VM minimizing execution time for app.
func (t *Table) BestByTime(app string) (cloud.VMType, float64, error) {
	return t.best(app, t.time)
}

// BestByCost returns the VM minimizing budget for app.
func (t *Table) BestByCost(app string) (cloud.VMType, float64, error) {
	return t.best(app, t.cost)
}

func (t *Table) best(app string, metric map[Key]float64) (cloud.VMType, float64, error) {
	var bestVM cloud.VMType
	bestVal := -1.0
	for _, v := range t.vms {
		val, ok := metric[Key{App: app, VM: v.Name}]
		if !ok {
			return cloud.VMType{}, 0, fmt.Errorf("oracle: app %q not in table", app)
		}
		if bestVal < 0 || val < bestVal || (val == bestVal && v.Name < bestVM.Name) {
			bestVM, bestVal = v, val
		}
	}
	if bestVal < 0 {
		return cloud.VMType{}, 0, fmt.Errorf("oracle: empty table")
	}
	return bestVM, bestVal, nil
}

// TimesFor returns app's ground-truth times for every VM, in catalog order.
func (t *Table) TimesFor(app string) ([]float64, error) {
	out := make([]float64, len(t.vms))
	for i, v := range t.vms {
		val, ok := t.time[Key{App: app, VM: v.Name}]
		if !ok {
			return nil, fmt.Errorf("oracle: app %q not in table", app)
		}
		out[i] = val
	}
	return out, nil
}

// Step is one trial in a sequential optimization run (the Figure 12/13
// protocol): a system tries a VM type, observes the execution time, and the
// best-so-far statistics are carried along.
type Step struct {
	Run         int
	VM          string
	ObservedSec float64
	ObservedUSD float64
	BestSec     float64 // best-so-far execution time
	BestUSD     float64 // best-so-far budget
}

// Service is the measurement interface selection systems depend on: profile
// a workload on a VM type (possibly failing under fault injection), with
// Figure-8-style run accounting. *Meter implements it over infallible
// ground-truth physics; *Resilient implements it over the fault-injected
// checked paths with retries and quarantine.
type Service interface {
	// TryProfile measures app on vm, charging the training-overhead counter,
	// and fails when the measurement is unrecoverable.
	TryProfile(app workload.App, vm cloud.VMType) (sim.Profile, error)
	// Runs returns the reference-VM profilings charged so far.
	Runs() int
	// SimConfig exposes the underlying simulator's effective configuration
	// (cluster size, repeats) for cost accounting.
	SimConfig() sim.Config
}

// Meter is the measurement service handed to selection systems. Every
// profiling request is a real (simulated) cluster deployment, so the meter
// both performs it and counts it. The count is the paper's training-overhead
// metric: one unit per reference VM profiled.
type Meter struct {
	Sim  *sim.Simulator
	Seed uint64

	mu     sync.Mutex
	runs   int
	log    []Key
	tracer *obs.Tracer
}

// NewMeter wraps a simulator with run accounting.
func NewMeter(s *sim.Simulator, seed uint64) *Meter {
	return &Meter{Sim: s, Seed: seed}
}

// SetTracer attaches an observability tracer: every charged profiling gets a
// span keyed by (app, vm) whose duration is the simulated cluster time the
// campaign burned, plus a meter.runs counter increment. The span content is
// a pure function of (app, vm, meter seed), so traces are byte-identical at
// any worker count. Returns the meter for chaining.
func (m *Meter) SetTracer(t *obs.Tracer) *Meter {
	m.mu.Lock()
	m.tracer = t
	m.mu.Unlock()
	return m
}

// Tracer returns the attached tracer (nil when tracing is off).
func (m *Meter) Tracer() *obs.Tracer {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tracer
}

// startProfileSpan charges the meter.runs trace counter and opens the
// per-profile span. attempt < 0 marks the ground-truth (non-chaos) path,
// whose key omits the attempt. Close the returned span with
// EndSim(profileSpentSec(p)) so the serialized duration is simulated cluster
// time — a pure function of (app, vm, meter seed[, attempt]) — while the
// wall timing stays on the verbose stream.
func (m *Meter) startProfileSpan(app, vm string, attempt int) obs.Span {
	t := m.Tracer()
	if !t.Enabled() {
		return obs.Span{}
	}
	t.Count("meter.runs", 1)
	key := "profile/app=" + app + "/vm=" + vm
	if attempt >= 0 {
		key = fmt.Sprintf("%s/attempt=%d", key, attempt)
	}
	return t.Start(key)
}

// Profile measures app on vm (the full repeated-run P90 protocol) and
// charges one reference-VM unit.
func (m *Meter) Profile(app workload.App, vm cloud.VMType) sim.Profile {
	m.mu.Lock()
	m.runs++
	m.log = append(m.log, Key{App: app.Name, VM: vm.Name})
	m.mu.Unlock()
	sp := m.startProfileSpan(app.Name, vm.Name, -1)
	p := m.Sim.ProfileRun(app, vm, m.Seed)
	sp.EndSim(profileSpentSec(p))
	return p
}

// TryProfile implements Service. On a ground-truth meter the measurement
// cannot fail; the error is always nil.
func (m *Meter) TryProfile(app workload.App, vm cloud.VMType) (sim.Profile, error) {
	return m.Profile(app, vm), nil
}

// SimConfig implements Service.
func (m *Meter) SimConfig() sim.Config { return m.Sim.Config() }

// TryProfileAttempt measures app on vm through the simulator's checked
// (fault-injectable) path, charging one reference-VM unit whether or not the
// measurement survives — a failed campaign still burned the cluster time.
func (m *Meter) TryProfileAttempt(app workload.App, vm cloud.VMType, attempt uint64) (sim.Profile, error) {
	m.mu.Lock()
	m.runs++
	m.log = append(m.log, Key{App: app.Name, VM: vm.Name})
	m.mu.Unlock()
	sp := m.startProfileSpan(app.Name, vm.Name, int(attempt))
	p, err := m.Sim.ProfileAttempt(app, vm, m.Seed, attempt)
	sp.EndSim(profileSpentSec(p))
	return p, err
}

// ProfileWith measures app on vm using an alternative simulator
// configuration (e.g. a different cluster size) while charging this meter's
// counter — every cluster deployment costs a reference run regardless of
// its shape.
func (m *Meter) ProfileWith(s *sim.Simulator, app workload.App, vm cloud.VMType) sim.Profile {
	m.mu.Lock()
	m.runs++
	m.log = append(m.log, Key{App: app.Name, VM: vm.Name})
	m.mu.Unlock()
	sp := m.startProfileSpan(app.Name, vm.Name, -1)
	p := s.ProfileRun(app, vm, m.Seed)
	sp.EndSim(profileSpentSec(p))
	return p
}

// Runs returns the number of reference-VM profilings charged so far.
func (m *Meter) Runs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.runs
}

// Log returns the profiling history (copy).
func (m *Meter) Log() []Key {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Key(nil), m.log...)
}

// Reset zeroes the counter and history (e.g. between offline and online
// accounting).
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.runs = 0
	m.log = nil
}
