package mat

import (
	"math"
	"testing"

	"vesta/internal/rng"
)

// randSlice fills a deterministic pseudo-random slice for bit-identity
// checks: the values must be "ugly" (full mantissas) so that any reordering
// of the float operations in the optimized helpers would change the bits.
func randSlice(n int, src *rng.Source) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = src.Norm(0, 1)
	}
	return out
}

func TestRowViewAliasesStorage(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	rv := m.RowView(1)
	if len(rv) != 3 || cap(rv) != 3 {
		t.Fatalf("RowView len/cap = %d/%d, want 3/3", len(rv), cap(rv))
	}
	rv[0] = 42
	if m.At(1, 0) != 42 {
		t.Fatal("RowView does not alias the matrix storage")
	}
	// The capped slice must not be able to grow into the next row.
	grown := append(rv, 99)
	if m.At(1, 2) != 6 && len(grown) > 0 {
		t.Fatal("append through RowView overwrote matrix storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range RowView did not panic")
		}
	}()
	m.RowView(2)
}

func TestDotFusedBitIdenticalToDot(t *testing.T) {
	src := rng.New(7)
	for _, n := range []int{0, 1, 3, 4, 9, 128} {
		a, b := randSlice(n, src), randSlice(n, src)
		want, got := Dot(a, b), DotFused(a, b)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("n=%d: DotFused = %x, Dot = %x", n, math.Float64bits(got), math.Float64bits(want))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	DotFused([]float64{1}, []float64{1, 2})
}

// sgdStepRef is the scalar update loop the CMF sweeps used before the fused
// helper existed — the bit-identity reference.
func sgdStepRef(lr, e, reg float64, x, y []float64) {
	for f := range x {
		x[f] += lr * (e*y[f] - reg*x[f])
	}
}

func TestSGDStepFusedBitIdenticalToScalarLoop(t *testing.T) {
	src := rng.New(11)
	for _, n := range []int{1, 4, 6, 33} {
		x := randSlice(n, src)
		y := randSlice(n, src)
		xRef := append([]float64(nil), x...)
		lr, e, reg := 0.02*0.75, src.Norm(0, 1), 0.02
		sgdStepRef(lr, e, reg, xRef, y)
		SGDStepFused(lr, e, reg, x, y)
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(xRef[i]) {
				t.Fatalf("n=%d i=%d: fused %x, ref %x", n, i,
					math.Float64bits(x[i]), math.Float64bits(xRef[i]))
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	SGDStepFused(1, 1, 1, []float64{1}, []float64{1, 2})
}
