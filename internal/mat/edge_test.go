package mat

import (
	"math"
	"strings"
	"testing"
)

// Table-driven degenerate-input tests for the dense kernels: non-square and
// mis-shaped solves, empty and single-row construction, singular systems.
// Every case pins whether the kernel errors, panics, or degrades gracefully.

func TestSolveEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		a       *Matrix
		b       []float64
		wantErr string // substring; "" means success
		want    []float64
	}{
		{
			name:    "non-square",
			a:       FromRows([][]float64{{1, 2, 3}, {4, 5, 6}}),
			b:       []float64{1, 2},
			wantErr: "square",
		},
		{
			name:    "rhs length mismatch",
			a:       Identity(3),
			b:       []float64{1, 2},
			wantErr: "rhs length",
		},
		{
			name: "empty system",
			a:    New(0, 0),
			b:    nil,
			want: []float64{},
		},
		{
			name: "single element",
			a:    FromRows([][]float64{{4}}),
			b:    []float64{8},
			want: []float64{2},
		},
		{
			name:    "singular all-zero",
			a:       New(2, 2),
			b:       []float64{1, 1},
			wantErr: "singular",
		},
		{
			name:    "singular duplicate rows",
			a:       FromRows([][]float64{{1, 2}, {2, 4}}),
			b:       []float64{3, 6},
			wantErr: "singular",
		},
		{
			name: "needs pivoting", // zero leading pivot, still solvable
			a:    FromRows([][]float64{{0, 1}, {1, 0}}),
			b:    []float64{2, 3},
			want: []float64{3, 2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x, err := Solve(tc.a, tc.b)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(x) != len(tc.want) {
				t.Fatalf("x = %v, want %v", x, tc.want)
			}
			for i := range x {
				if math.Abs(x[i]-tc.want[i]) > 1e-12 {
					t.Fatalf("x = %v, want %v", x, tc.want)
				}
			}
		})
	}
}

func TestConstructionEdgeCases(t *testing.T) {
	if m := FromRows(nil); m.Rows != 0 || m.Cols != 0 || len(m.Data) != 0 {
		t.Fatalf("FromRows(nil) = %dx%d", m.Rows, m.Cols)
	}
	if m := FromRows([][]float64{{1, 2, 3}}); m.Rows != 1 || m.Cols != 3 {
		t.Fatalf("single row = %dx%d", m.Rows, m.Cols)
	}
	if m := New(0, 5); m.Rows != 0 || m.Cols != 5 || len(m.Data) != 0 {
		t.Fatalf("New(0,5) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}

	mustPanic(t, "ragged rows", func() { FromRows([][]float64{{1, 2}, {3}}) })
	mustPanic(t, "negative dimension", func() { New(-1, 2) })
	mustPanic(t, "row 0 of empty", func() { New(0, 3).Row(0) })
	mustPanic(t, "out of bounds", func() { New(2, 2).At(2, 0) })
	mustPanic(t, "SetRow mismatch", func() { New(2, 2).SetRow(0, []float64{1}) })
	mustPanic(t, "Mul mismatch", func() { New(2, 3).Mul(New(2, 3)) })
	mustPanic(t, "MulVec mismatch", func() { New(2, 3).MulVec([]float64{1}) })
}

func TestEmptyMatrixOps(t *testing.T) {
	e := New(0, 0)
	if got := e.Frobenius(); got != 0 {
		t.Fatalf("empty Frobenius = %v", got)
	}
	if got := e.MaxAbs(); got != 0 {
		t.Fatalf("empty MaxAbs = %v", got)
	}
	if p := e.Mul(e); p.Rows != 0 || p.Cols != 0 {
		t.Fatalf("empty product = %dx%d", p.Rows, p.Cols)
	}
	if tt := e.T(); tt.Rows != 0 || tt.Cols != 0 {
		t.Fatal("empty transpose wrong shape")
	}
	if !e.Equal(e.Clone(), 0) {
		t.Fatal("empty matrix not equal to its clone")
	}
	// Single-row matrix: transpose and multiply shapes hold.
	r := FromRows([][]float64{{1, 2, 3}})
	if p := r.Mul(r.T()); p.Rows != 1 || p.Cols != 1 || p.At(0, 0) != 14 {
		t.Fatalf("1x3 * 3x1 = %v", p)
	}
}

func TestCholeskyEdgeCases(t *testing.T) {
	if _, err := NewCholesky(New(2, 3)); err == nil {
		t.Fatal("non-square Cholesky accepted")
	}
	// Not positive definite: a negative diagonal.
	if _, err := NewCholesky(FromRows([][]float64{{-1, 0}, {0, 1}})); err == nil {
		t.Fatal("non-PD matrix accepted")
	}
	// Rank-deficient (duplicate rows) is not PD either.
	if _, err := NewCholesky(FromRows([][]float64{{1, 1}, {1, 1}})); err == nil {
		t.Fatal("rank-deficient matrix accepted")
	}
	c, err := NewCholesky(Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve([]float64{1}); err == nil {
		t.Fatal("short rhs accepted")
	}
}

func TestSymEigenEdgeCases(t *testing.T) {
	mustPanic(t, "non-square", func() { SymEigen(New(2, 3)) })
	// Zero matrix: all eigenvalues zero, vectors orthonormal.
	e := SymEigen(New(3, 3))
	for i, v := range e.Values {
		if v != 0 {
			t.Fatalf("eigenvalue %d = %v, want 0", i, v)
		}
	}
	// 1x1: trivially its own eigenvalue.
	e = SymEigen(FromRows([][]float64{{7}}))
	if len(e.Values) != 1 || math.Abs(e.Values[0]-7) > 1e-12 {
		t.Fatalf("1x1 eigen = %v", e.Values)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
