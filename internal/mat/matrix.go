// Package mat implements the dense linear algebra needed by Vesta's learning
// components: matrix arithmetic, Gaussian-elimination solves, and a Jacobi
// symmetric eigendecomposition used by PCA.
//
// Matrices are small in this problem (tens of workloads x tens of features x
// about a hundred VM types), so the implementation favours clarity and exact
// determinism over cache-blocked performance.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zero-initialized rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("mat: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of bounds for %dx%d matrix", i, j, m.Rows, m.Cols))
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic("mat: row index out of bounds")
	}
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// RowView returns row i as a slice aliasing the matrix storage — no copy.
// Mutating the slice mutates the matrix. The returned slice has length and
// capacity exactly Cols, so an append can never silently overwrite the next
// row. Hot loops (the CMF sweeps) use RowView to hoist the row slice out of
// the cell loop, trading one bounds check per row for one per element.
func (m *Matrix) RowView(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic("mat: row index out of bounds")
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols : (i+1)*m.Cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.Cols {
		panic("mat: col index out of bounds")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.Cols {
		panic("mat: SetRow length mismatch")
	}
	copy(m.Data[i*m.Cols:(i+1)*m.Cols], v)
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Mul returns m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := New(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// MulVec returns m * v as a new vector.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic("mat: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// AddM returns m + b element-wise.
func (m *Matrix) AddM(b *Matrix) *Matrix {
	m.sameShape(b, "AddM")
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// SubM returns m - b element-wise.
func (m *Matrix) SubM(b *Matrix) *Matrix {
	m.sameShape(b, "SubM")
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns s * m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

func (m *Matrix) sameShape(b *Matrix, op string) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, b.Rows, b.Cols))
	}
}

// Frobenius returns the Frobenius norm of m.
func (m *Matrix) Frobenius() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value, or 0 for an empty matrix.
func (m *Matrix) MaxAbs() float64 {
	best := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// Equal reports whether m and b have the same shape and all elements within
// tol of each other.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		sb.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%8.4f", m.At(i, j))
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

// Solve solves the linear system a*x = b for x using Gaussian elimination
// with partial pivoting. a must be square; b is a vector of length a.Rows.
// It returns an error when a is singular (to working precision).
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("mat: Solve requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("mat: Solve rhs length %d, want %d", len(b), n)
	}
	// Work on copies.
	aa := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(aa.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aa.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("mat: singular matrix in Solve (pivot %d)", col)
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				tmp := aa.At(col, j)
				aa.Set(col, j, aa.At(pivot, j))
				aa.Set(pivot, j, tmp)
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		// Eliminate below.
		inv := 1 / aa.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aa.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				aa.Add(r, j, -f*aa.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= aa.At(i, j) * x[j]
		}
		x[i] = s / aa.At(i, i)
	}
	return x, nil
}

// Eigen holds the result of a symmetric eigendecomposition: Values[i] is the
// eigenvalue for the unit eigenvector stored in column i of Vectors.
// Values are sorted in descending order.
type Eigen struct {
	Values  []float64
	Vectors *Matrix
}

// SymEigen computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi rotation method. The input is not modified. It panics if a is
// not square; symmetry is assumed (the lower triangle is ignored).
func SymEigen(a *Matrix) Eigen {
	n := a.Rows
	if a.Cols != n {
		panic("mat: SymEigen requires a square matrix")
	}
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenvalues (and vectors) descending with a simple selection sort,
	// keeping determinism.
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if vals[j] > vals[best] {
				best = j
			}
		}
		if best != i {
			vals[i], vals[best] = vals[best], vals[i]
			for r := 0; r < n; r++ {
				tmp := v.At(r, i)
				v.Set(r, i, v.At(r, best))
				v.Set(r, best, tmp)
			}
		}
	}
	return Eigen{Values: vals, Vectors: v}
}

// rotate applies a Jacobi rotation with cosine c and sine s in the (p,q)
// plane to the working matrix w, accumulating the rotation into v.
func rotate(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows
	for i := 0; i < n; i++ {
		wip := w.At(i, p)
		wiq := w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj := w.At(p, j)
		wqj := w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
	for i := 0; i < n; i++ {
		vip := v.At(i, p)
		viq := v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

// Dot returns the dot product of equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// Distance returns the Euclidean distance between equal-length vectors.
func Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Distance length mismatch")
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: AXPY length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// DotFused returns the inner product of a and b with the bounds checks
// hoisted: the explicit reslice of b to len(a) lets the compiler fuse the
// per-iteration multiply-adds without re-proving both indices in the loop.
// The accumulation order is identical to Dot (left to right, one running
// sum), so the result is bit-identical to Dot — the property the CMF hot
// loops rely on when they swap one for the other.
func DotFused(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: DotFused length mismatch")
	}
	b = b[:len(a)]
	s := 0.0
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// SGDStepFused applies the regularized SGD update of the CMF sweeps to x
// against the fixed factor y, element-wise over equal-length slices:
//
//	x[i] += lr * (e*y[i] - reg*x[i])
//
// The expression shape — e*y and reg*x rounded separately, their difference
// rounded, then one multiply by lr — is exactly the shape of the scalar
// update it replaces, so swapping a scalar loop for SGDStepFused is
// bit-identical. The reslice of y lets the compiler drop the per-element
// bounds check and fuse the multiply-adds.
func SGDStepFused(lr, e, reg float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: SGDStepFused length mismatch")
	}
	y = y[:len(x)]
	for i := range x {
		x[i] += lr * (e*y[i] - reg*x[i])
	}
}

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L L^T.
type Cholesky struct {
	L *Matrix
}

// NewCholesky factors the symmetric positive definite matrix a. It returns
// an error when a is not (numerically) positive definite.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("mat: Cholesky requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("mat: matrix not positive definite (pivot %d = %v)", i, sum)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return &Cholesky{L: l}, nil
}

// Solve solves A x = b using the factorization (forward then backward
// substitution).
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	n := c.L.Rows
	if len(b) != n {
		return nil, fmt.Errorf("mat: Cholesky solve rhs length %d, want %d", len(b), n)
	}
	// Forward: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.L.At(i, k) * y[k]
		}
		y[i] = s / c.L.At(i, i)
	}
	// Backward: L^T x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.At(k, i) * x[k]
		}
		x[i] = s / c.L.At(i, i)
	}
	return x, nil
}

// LogDet returns the log-determinant of A from the factorization.
func (c *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.L.Rows; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}
