package mat

import (
	"math"
	"testing"
	"testing/quick"

	"vesta/internal/rng"
)

func randomMatrix(s *rng.Source, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = s.Range(-5, 5)
	}
	return m
}

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New matrix not zeroed")
		}
	}
}

func TestFromRowsRoundTrip(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("FromRows stored wrong values: %v", m.Data)
	}
	r := m.Row(1)
	if r[0] != 3 || r[1] != 4 {
		t.Fatalf("Row(1) = %v", r)
	}
	c := m.Col(0)
	if c[0] != 1 || c[1] != 3 || c[2] != 5 {
		t.Fatalf("Col(0) = %v", c)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds At did not panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestIdentityMul(t *testing.T) {
	s := rng.New(1)
	m := randomMatrix(s, 4, 4)
	if !m.Mul(Identity(4)).Equal(m, 1e-12) {
		t.Fatal("m * I != m")
	}
	if !Identity(4).Mul(m).Equal(m, 1e-12) {
		t.Fatal("I * m != m")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("Mul = %v", got)
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape-mismatched Mul did not panic")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		m := randomMatrix(s, 2+s.Intn(5), 2+s.Intn(5))
		return m.T().T().Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeMulProperty(t *testing.T) {
	// (A*B)^T == B^T * A^T
	f := func(seed uint64) bool {
		s := rng.New(seed)
		n, m, p := 2+s.Intn(4), 2+s.Intn(4), 2+s.Intn(4)
		a := randomMatrix(s, n, m)
		b := randomMatrix(s, m, p)
		return a.Mul(b).T().Equal(b.T().Mul(a.T()), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubScale(t *testing.T) {
	s := rng.New(2)
	a := randomMatrix(s, 3, 3)
	b := randomMatrix(s, 3, 3)
	if !a.AddM(b).SubM(b).Equal(a, 1e-12) {
		t.Fatal("(a+b)-b != a")
	}
	if !a.Scale(2).SubM(a).Equal(a, 1e-12) {
		t.Fatal("2a - a != a")
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	s := rng.New(3)
	a := randomMatrix(s, 4, 3)
	v := []float64{1, -2, 0.5}
	got := a.MulVec(v)
	col := New(3, 1)
	for i, x := range v {
		col.Set(i, 0, x)
	}
	want := a.Mul(col)
	for i := range got {
		if math.Abs(got[i]-want.At(i, 0)) > 1e-12 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestFrobenius(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {0, 4}})
	if got := m.Frobenius(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Frobenius = %v, want 5", got)
	}
}

func TestMaxAbs(t *testing.T) {
	m := FromRows([][]float64{{-7, 2}, {3, 6}})
	if got := m.MaxAbs(); got != 7 {
		t.Fatalf("MaxAbs = %v, want 7", got)
	}
	if got := New(0, 0).MaxAbs(); got != 0 {
		t.Fatalf("empty MaxAbs = %v, want 0", got)
	}
}

func TestSolveKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("Solve = %v, want [1 3]", x)
	}
}

func TestSolveResidualProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		n := 2 + s.Intn(6)
		a := randomMatrix(s, n, n)
		// Make strongly diagonally dominant to guarantee non-singularity.
		for i := 0; i < n; i++ {
			a.Add(i, i, 20)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = s.Range(-3, 3)
		}
		b := a.MulVec(want)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("Solve of singular matrix did not error")
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := FromRows([][]float64{{4, 1}, {1, 3}})
	orig := a.Clone()
	b := []float64{1, 2}
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(orig, 0) {
		t.Fatal("Solve mutated its matrix argument")
	}
	if b[0] != 1 || b[1] != 2 {
		t.Fatal("Solve mutated its rhs argument")
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	e := SymEigen(a)
	want := []float64{3, 2, 1}
	for i, v := range want {
		if math.Abs(e.Values[i]-v) > 1e-9 {
			t.Fatalf("eigenvalues = %v, want %v", e.Values, want)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	e := SymEigen(a)
	if math.Abs(e.Values[0]-3) > 1e-9 || math.Abs(e.Values[1]-1) > 1e-9 {
		t.Fatalf("eigenvalues = %v, want [3 1]", e.Values)
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	// A == V * diag(values) * V^T for a random symmetric matrix.
	f := func(seed uint64) bool {
		s := rng.New(seed)
		n := 2 + s.Intn(6)
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := s.Range(-2, 2)
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		e := SymEigen(a)
		d := New(n, n)
		for i, v := range e.Values {
			d.Set(i, i, v)
		}
		recon := e.Vectors.Mul(d).Mul(e.Vectors.T())
		return recon.Equal(a, 1e-7)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymEigenOrthonormalVectors(t *testing.T) {
	s := rng.New(9)
	n := 5
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := s.Range(-1, 1)
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	e := SymEigen(a)
	vtv := e.Vectors.T().Mul(e.Vectors)
	if !vtv.Equal(Identity(n), 1e-8) {
		t.Fatalf("V^T V != I:\n%v", vtv)
	}
}

func TestSymEigenTraceInvariant(t *testing.T) {
	s := rng.New(10)
	n := 6
	a := New(n, n)
	trace := 0.0
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := s.Range(-1, 1)
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
		trace += a.At(i, i)
	}
	e := SymEigen(a)
	sum := 0.0
	for _, v := range e.Values {
		sum += v
	}
	if math.Abs(sum-trace) > 1e-8 {
		t.Fatalf("sum of eigenvalues %v != trace %v", sum, trace)
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Fatal("Norm2 wrong")
	}
	if math.Abs(Distance([]float64{1, 1}, []float64{4, 5})-5) > 1e-12 {
		t.Fatal("Distance wrong")
	}
}

func TestAXPY(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("AXPY = %v", y)
	}
}

func TestSetRow(t *testing.T) {
	m := New(2, 3)
	m.SetRow(1, []float64{7, 8, 9})
	if m.At(1, 2) != 9 || m.At(0, 0) != 0 {
		t.Fatal("SetRow wrong")
	}
}

func BenchmarkMul32(b *testing.B) {
	s := rng.New(1)
	a := randomMatrix(s, 32, 32)
	c := randomMatrix(s, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Mul(c)
	}
}

func BenchmarkSymEigen16(b *testing.B) {
	s := rng.New(1)
	n := 16
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := s.Range(-1, 1)
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SymEigen(a)
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	s := rng.New(21)
	n := 6
	// Build SPD matrix A = B B^T + n*I.
	b := randomMatrix(s, n, n)
	a := b.Mul(b.T())
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	chol, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L L^T must reconstruct A.
	if !chol.L.Mul(chol.L.T()).Equal(a, 1e-8) {
		t.Fatal("L L^T != A")
	}
	// Solve matches the direct solver.
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = s.Range(-2, 2)
	}
	x1, err := chol.Solve(rhs)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := Solve(a, rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-8 {
			t.Fatalf("Cholesky solve diverges from Gaussian solve at %d: %v vs %v", i, x1[i], x2[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("indefinite matrix factored")
	}
	if _, err := NewCholesky(New(2, 3)); err == nil {
		t.Fatal("non-square matrix factored")
	}
}

func TestCholeskyLogDet(t *testing.T) {
	a := FromRows([][]float64{{4, 0}, {0, 9}})
	chol, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(chol.LogDet()-math.Log(36)) > 1e-10 {
		t.Fatalf("LogDet = %v, want ln 36", chol.LogDet())
	}
}

func TestCholeskySolveRHSMismatch(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 2}})
	chol, _ := NewCholesky(a)
	if _, err := chol.Solve([]float64{1}); err == nil {
		t.Fatal("mismatched rhs accepted")
	}
}
