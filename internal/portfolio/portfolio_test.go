package portfolio

import (
	"errors"
	"math"
	"strings"
	"testing"

	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/oracle"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

var catalog = cloud.Catalog120()

func trained(t *testing.T) (*core.System, *oracle.Meter) {
	t.Helper()
	s := sim.New(sim.DefaultConfig())
	meter := oracle.NewMeter(s, 1)
	sys, err := core.New(core.Config{Seed: 1}, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainOffline(workload.BySet(workload.SourceTraining), meter); err != nil {
		t.Fatal(err)
	}
	return sys, meter
}

func req(t *testing.T, name string, deadline float64) Request {
	t.Helper()
	a, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return Request{App: a, DeadlineSec: deadline}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, catalog, 4); err == nil {
		t.Fatal("nil system accepted")
	}
	untrained, _ := core.New(core.Config{}, catalog)
	if _, err := New(untrained, catalog, 4); err == nil {
		t.Fatal("untrained system accepted")
	}
	sys, _ := trained(t)
	if _, err := New(sys, catalog, 0); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

func TestPlanValidation(t *testing.T) {
	sys, meter := trained(t)
	p, err := New(sys, catalog, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Plan(nil, meter); err == nil {
		t.Fatal("empty plan accepted")
	}
	r := req(t, "Spark-lr", 0)
	if _, err := p.Plan([]Request{r, r}, meter); err == nil {
		t.Fatal("duplicate request accepted")
	}
	bad := req(t, "Spark-lr", 0)
	bad.DeadlineSec = -1
	if _, err := p.Plan([]Request{bad}, meter); err == nil {
		t.Fatal("negative deadline accepted")
	}
}

func TestPlanMultiFramework(t *testing.T) {
	sys, meter := trained(t)
	p, err := New(sys, catalog, 4)
	if err != nil {
		t.Fatal(err)
	}
	meter.Reset()
	reqs := []Request{
		req(t, "Hadoop-kmeans", 0),
		req(t, "Hive-aggregation", 0),
		req(t, "Spark-lr", 0),
		req(t, "Spark-sort", 0),
	}
	res, err := p.Plan(reqs, meter)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 4 {
		t.Fatalf("%d assignments", len(res.Assignments))
	}
	// 4 online runs per app.
	if res.OnlineRuns != 16 || meter.Runs() != 16 {
		t.Fatalf("online runs = %d (meter %d), want 16", res.OnlineRuns, meter.Runs())
	}
	if res.Violations != 0 {
		t.Fatalf("no-deadline plan reported %d violations", res.Violations)
	}
	total := 0.0
	fws := map[string]bool{}
	for _, a := range res.Assignments {
		if a.PredictedSec <= 0 || a.PredictedUSD <= 0 {
			t.Fatalf("degenerate assignment %+v", a)
		}
		if !a.MeetsDeadline {
			t.Fatalf("no-deadline assignment flagged infeasible: %+v", a)
		}
		total += a.PredictedUSD
		fws[a.Framework] = true
	}
	if math.Abs(total-res.TotalUSD) > 1e-9 {
		t.Fatalf("TotalUSD %v != sum %v", res.TotalUSD, total)
	}
	if len(fws) != 3 {
		t.Fatalf("plan spans %d frameworks, want 3", len(fws))
	}
	if !strings.Contains(res.Summary(), "4 applications") {
		t.Fatalf("summary = %q", res.Summary())
	}
}

func TestDeadlineTradeoff(t *testing.T) {
	// A loose deadline must never cost more than a tight one for the same
	// app (cheapest-feasible is monotone in the deadline).
	sys, meter := trained(t)
	p, _ := New(sys, catalog, 4)
	tight, err := p.Plan([]Request{req(t, "Spark-kmeans", 100)}, meter)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := p.Plan([]Request{req(t, "Spark-kmeans", 1200)}, meter)
	if err != nil {
		t.Fatal(err)
	}
	if loose.TotalUSD > tight.TotalUSD+1e-9 {
		t.Fatalf("loose deadline ($%.4f) costs more than tight ($%.4f)",
			loose.TotalUSD, tight.TotalUSD)
	}
	if tight.Assignments[0].PredictedSec > 100 {
		t.Fatalf("tight assignment misses its deadline: %+v", tight.Assignments[0])
	}
}

func TestImpossibleDeadlineFallsBackToFastest(t *testing.T) {
	sys, meter := trained(t)
	p, _ := New(sys, catalog, 4)
	res, err := p.Plan([]Request{req(t, "Spark-kmeans", 0.001)}, meter)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 1 {
		t.Fatalf("violations = %d, want 1", res.Violations)
	}
	a := res.Assignments[0]
	if a.MeetsDeadline {
		t.Fatal("impossible deadline reported as met")
	}
	// The fallback must be the minimum predicted time across the catalog.
	pred, err := sys.PredictOnline(req(t, "Spark-kmeans", 0).App, meter)
	if err != nil {
		t.Fatal(err)
	}
	for vm, sec := range pred.PredictedSec {
		if !math.IsInf(sec, 0) && sec < a.PredictedSec-1e-9 {
			t.Fatalf("fallback %s (%.1fs) is not the fastest; %s predicts %.1fs",
				a.VM, a.PredictedSec, vm, sec)
		}
	}
}

func TestCheaperThanAllFastest(t *testing.T) {
	// With generous deadlines the plan must be at most as expensive as the
	// always-pick-fastest policy.
	sys, meter := trained(t)
	p, _ := New(sys, catalog, 4)
	reqs := []Request{
		req(t, "Spark-lr", 4000),
		req(t, "Spark-grep", 4000),
		req(t, "Hive-aggregation", 4000),
	}
	res, err := p.Plan(reqs, meter)
	if err != nil {
		t.Fatal(err)
	}
	fastestTotal := 0.0
	byName := cloud.ByName(catalog)
	for _, r := range reqs {
		pred, err := sys.PredictOnline(r.App, meter)
		if err != nil {
			t.Fatal(err)
		}
		bestVM, bestSec := "", math.Inf(1)
		for vm, sec := range pred.PredictedSec {
			if sec < bestSec {
				bestVM, bestSec = vm, sec
			}
		}
		fastestTotal += bestSec / 3600 * byName[bestVM].PriceHour * 4
	}
	if res.TotalUSD > fastestTotal+1e-9 {
		t.Fatalf("plan ($%.4f) more expensive than always-fastest ($%.4f)",
			res.TotalUSD, fastestTotal)
	}
}

// Regression: a prediction whose every time is NaN/Inf used to panic with an
// index-out-of-range on the empty candidate slice. Plan must return a typed
// error instead.
func TestAssignAllNonFiniteErrorsNotPanics(t *testing.T) {
	sys, _ := trained(t)
	p, err := New(sys, catalog, 4)
	if err != nil {
		t.Fatal(err)
	}
	pred := &core.Prediction{PredictedSec: map[string]float64{
		"m5.xlarge": math.Inf(1),
		"c5.xlarge": math.NaN(),
		"r5.xlarge": math.Inf(-1),
	}}
	res := &Result{}
	_, err = p.assign(req(t, "Spark-lr", 0), pred, res)
	if err == nil {
		t.Fatal("assign accepted a prediction with no finite candidate")
	}
	if !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
}

// Regression: a predicted VM name missing from the planning catalog used to
// read the map's zero value (PriceHour 0), making it "free" and therefore
// the winner of every cost ranking. It must be skipped and counted, and can
// never be assigned.
func TestUnknownVMNeverWins(t *testing.T) {
	sys, _ := trained(t)
	p, err := New(sys, catalog, 4)
	if err != nil {
		t.Fatal(err)
	}
	// ghost.vm is both the fastest and (at zero price) would be the cheapest.
	pred := &core.Prediction{PredictedSec: map[string]float64{
		"ghost.vm":  1,
		"m5.xlarge": 100,
		"c5.xlarge": 200,
	}}
	res := &Result{}
	a, err := p.assign(req(t, "Spark-lr", 0), pred, res)
	if err != nil {
		t.Fatal(err)
	}
	if a.VM == "ghost.vm" {
		t.Fatal("unpriced VM won the assignment")
	}
	if res.UnknownVMs != 1 {
		t.Fatalf("UnknownVMs = %d, want 1", res.UnknownVMs)
	}
	if a.PredictedUSD <= 0 {
		t.Fatalf("assigned $%v; prices must be real", a.PredictedUSD)
	}
	// Same with a deadline only the unknown VM could meet: it must still not
	// win — the request falls back to the fastest *priced* VM.
	res2 := &Result{}
	a2, err := p.assign(req(t, "Spark-lr", 5), pred, res2)
	if err != nil {
		t.Fatal(err)
	}
	if a2.VM == "ghost.vm" {
		t.Fatal("unpriced VM won the deadline fallback")
	}
	if a2.MeetsDeadline {
		t.Fatal("deadline only the unpriced VM meets reported as met")
	}
	// All-unknown degenerates to no candidates.
	res3 := &Result{}
	_, err = p.assign(req(t, "Spark-lr", 0), &core.Prediction{
		PredictedSec: map[string]float64{"ghost.vm": 1},
	}, res3)
	if !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
}
