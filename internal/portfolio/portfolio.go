// Package portfolio plans VM selections for a whole fleet of applications
// at once — the scenario the paper's introduction motivates: "most users
// usually choose two or more frameworks for their businesses", and jointly
// optimizing them naively means exploring 10,000+ configurations. With
// Vesta's transferred knowledge, each application costs only its online
// initialization runs, and the planner then solves the per-app
// cheapest-within-deadline assignment on predictions alone.
package portfolio

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/oracle"
	"vesta/internal/workload"
)

// ErrNoCandidates is returned by Plan when a request's prediction yields no
// assignable VM: every predicted time is NaN/Inf, or every finitely-predicted
// VM is missing from the planning catalog.
var ErrNoCandidates = errors.New("portfolio: no assignable VM candidates")

// Request is one application with its scheduling requirement.
type Request struct {
	App workload.App
	// DeadlineSec is the maximum tolerated execution time; 0 means no
	// deadline (pure cost minimization).
	DeadlineSec float64
}

// Assignment is the planned configuration for one request.
type Assignment struct {
	App           string
	Framework     string
	VM            string
	PredictedSec  float64
	PredictedUSD  float64
	MeetsDeadline bool
	// Converged mirrors the prediction's knowledge-match flag.
	Converged bool
}

// Result is a complete portfolio plan.
type Result struct {
	Assignments []Assignment
	TotalUSD    float64
	// OnlineRuns is the total measurement cost of planning (4 per app).
	OnlineRuns int
	// Violations counts requests whose deadline no VM type can meet (they
	// are assigned the fastest predicted type instead).
	Violations int
	// UnknownVMs counts predicted VM names skipped because they are not in
	// the planning catalog: without the skip their zero-value PriceHour would
	// make them "free" and they would win every cost ranking.
	UnknownVMs int
}

// Planner binds a trained Vesta system to a catalog for portfolio planning.
type Planner struct {
	sys    *core.System
	byName map[string]cloud.VMType
	nodes  int
}

// New creates a Planner. The system must already be trained (or loaded).
func New(sys *core.System, catalog []cloud.VMType, nodes int) (*Planner, error) {
	if sys == nil || sys.Knowledge() == nil {
		return nil, fmt.Errorf("portfolio: planner needs a trained Vesta system")
	}
	if nodes < 1 {
		return nil, fmt.Errorf("portfolio: invalid cluster size %d", nodes)
	}
	return &Planner{sys: sys, byName: cloud.ByName(catalog), nodes: nodes}, nil
}

// Plan predicts each request's per-VM execution times (charging the online
// initialization runs to the meter) and assigns the cheapest VM type whose
// predicted time meets the deadline. Requests without a feasible VM get the
// fastest predicted type and are counted as violations.
func (p *Planner) Plan(reqs []Request, meter *oracle.Meter) (*Result, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("portfolio: no requests")
	}
	seen := map[string]bool{}
	res := &Result{}
	for _, req := range reqs {
		if seen[req.App.Name] {
			return nil, fmt.Errorf("portfolio: duplicate request for %s", req.App.Name)
		}
		seen[req.App.Name] = true
		if req.DeadlineSec < 0 {
			return nil, fmt.Errorf("portfolio: negative deadline for %s", req.App.Name)
		}

		before := meter.Runs()
		pred, err := p.sys.PredictOnline(req.App, meter)
		if err != nil {
			return nil, fmt.Errorf("portfolio: predicting %s: %w", req.App.Name, err)
		}
		res.OnlineRuns += meter.Runs() - before

		a, err := p.assign(req, pred, res)
		if err != nil {
			return nil, err
		}
		res.Assignments = append(res.Assignments, a)
		res.TotalUSD += a.PredictedUSD
		if !a.MeetsDeadline {
			res.Violations++
		}
	}
	return res, nil
}

// assign picks the cheapest VM meeting the deadline from a prediction. It
// errors (ErrNoCandidates) instead of guessing when the filter leaves nothing
// to pick from; unknown-VM skips are counted on res.
func (p *Planner) assign(req Request, pred *core.Prediction, res *Result) (Assignment, error) {
	type cand struct {
		vm  string
		sec float64
		usd float64
	}
	var cands []cand
	for vm, sec := range pred.PredictedSec {
		if math.IsInf(sec, 0) || math.IsNaN(sec) {
			continue
		}
		vt, ok := p.byName[vm]
		if !ok {
			// A VM the catalog does not price cannot be assigned: the map's
			// zero value would cost $0/hour and win every ranking.
			res.UnknownVMs++
			continue
		}
		usd := sec / 3600 * vt.PriceHour * float64(p.nodes)
		cands = append(cands, cand{vm: vm, sec: sec, usd: usd})
	}
	if len(cands) == 0 {
		return Assignment{}, fmt.Errorf("%w: %s (all predictions non-finite or unpriced)",
			ErrNoCandidates, req.App.Name)
	}
	// Deterministic order: by cost, then name.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].usd != cands[j].usd {
			return cands[i].usd < cands[j].usd
		}
		return cands[i].vm < cands[j].vm
	})

	// Cheapest feasible under the deadline.
	for _, c := range cands {
		if req.DeadlineSec > 0 && c.sec > req.DeadlineSec {
			continue
		}
		return Assignment{
			App: req.App.Name, Framework: string(req.App.Framework),
			VM: c.vm, PredictedSec: c.sec, PredictedUSD: c.usd,
			MeetsDeadline: true, Converged: pred.Converged,
		}, nil
	}
	// No VM meets the deadline: fall back to the fastest prediction.
	best := cands[0]
	for _, c := range cands[1:] {
		if c.sec < best.sec || (c.sec == best.sec && c.vm < best.vm) {
			best = c
		}
	}
	return Assignment{
		App: req.App.Name, Framework: string(req.App.Framework),
		VM: best.vm, PredictedSec: best.sec, PredictedUSD: best.usd,
		MeetsDeadline: false, Converged: pred.Converged,
	}, nil
}

// Summary renders the plan as a compact report.
func (r *Result) Summary() string {
	out := fmt.Sprintf("portfolio: %d applications, $%.4f predicted total, %d online runs",
		len(r.Assignments), r.TotalUSD, r.OnlineRuns)
	if r.Violations > 0 {
		out += fmt.Sprintf(", %d deadline violations", r.Violations)
	}
	return out
}
