// Package workload defines the 30 big data applications of the paper's
// Table 3 (BigDataBench + HiBench workloads on Hadoop, Hive and Spark) as
// demand profiles consumed by the cluster simulator.
//
// The central modeling decision: an application is a *kernel* (terasort, lr,
// kmeans, pagerank, ...) executed by a *framework* (Hadoop, Hive, Spark).
// The kernel carries the workload-intrinsic resource demand — compute per GB,
// working-set size, shuffle volume, iteration structure — while the framework
// determines how that demand turns into machine behaviour (disk-materialized
// supersteps for Hadoop/Hive, in-memory DAG stages for Spark). This is
// exactly the paper's "correlation similarity" observation: low-level metric
// levels differ per framework, but the correlation structure is intrinsic to
// the kernel and therefore transfers.
package workload

import (
	"fmt"
	"sort"
)

// Framework identifies one of the three data processing frameworks.
type Framework string

// The frameworks of the evaluation.
const (
	Hadoop Framework = "Hadoop"
	Hive   Framework = "Hive"
	Spark  Framework = "Spark"
)

// Class is the benchmark use-case group from Section 3.1.
type Class string

// Workload classes from the paper's large-scale evaluation.
const (
	Micro           Class = "micro"
	MachineLearning Class = "machine-learning"
	SQL             Class = "sql"
	SearchEngine    Class = "search-engine"
	Streaming       Class = "streaming"
)

// Set is the dataset split of Table 3.
type Set string

// Table 3 splits: 13 source-training, 5 source-testing, 12 target workloads.
const (
	SourceTraining Set = "source-training"
	SourceTesting  Set = "source-testing"
	Target         Set = "target"
)

// Suite names the benchmark suite an application comes from.
type Suite string

// Benchmark suites used by the paper.
const (
	HiBench      Suite = "HiBench"
	BigDataBench Suite = "BigDataBench"
)

// Demand is the framework-independent resource demand of a kernel,
// normalized per GB of input data where applicable.
type Demand struct {
	// ComputePerGB is CPU work in baseline core-seconds per GB of input.
	ComputePerGB float64
	// MemPerGB is the working-set size in GiB per GB of input.
	MemPerGB float64
	// ShufflePerGB is the fraction of the input exchanged between nodes per
	// superstep (sort: ~1.0 full shuffle; grep: ~0.02).
	ShufflePerGB float64
	// OutputPerGB is the output volume written per GB of input.
	OutputPerGB float64
	// Iterations is the number of BSP supersteps (ML/graph kernels iterate).
	Iterations int
	// CacheReuse in [0,1] is how much of the input is re-read every
	// iteration — the fraction an in-memory framework can cache.
	CacheReuse float64
	// SyncIntensity in [0,1] weights barrier/synchronization cost.
	SyncIntensity float64
	// Skew in [0,1] models data skew (straggler tasks lengthen supersteps).
	Skew float64
	// RunVariance is the relative run-to-run noise sigma (cloud jitter);
	// Spark-svd++ is documented in the paper at close to 40%.
	RunVariance float64
	// Streaming marks arrival-driven workloads (twitter, page-review) whose
	// bottleneck is network ingest rather than batch scans.
	Streaming bool
}

// App is one of the 30 applications in Table 3.
type App struct {
	Name      string // e.g. "Spark-page-rank", exactly as printed in Table 3
	No        int    // row number in Table 3 (1..30)
	Framework Framework
	Kernel    string // shared kernel id, e.g. "lr"
	Class     Class
	Suite     Suite
	Set       Set
	// InputGB is the default input size, following the benchmark-suite
	// conventions ("large" 0.3 GB, "huge" 3 GB, "gigantic" 30 GB) scaled so
	// jobs run in a reasonable simulated time (Section 5.1).
	InputGB float64
	Demand  Demand
	// Converges is false for the one workload (Spark-CF) whose online SGD
	// does not converge against the offline knowledge (Section 5.3).
	Converges bool
}

// kernels maps kernel id to its intrinsic demand. Values are synthetic but
// ordered to match the qualitative characterizations in the HiBench and
// BigDataBench papers (CPU-bound ML, shuffle-bound sorts, scan-bound SQL,
// network-bound streaming).
var kernels = map[string]Demand{
	// Micro benchmarks.
	"terasort":  {ComputePerGB: 55, MemPerGB: 1.1, ShufflePerGB: 1.0, OutputPerGB: 1.0, Iterations: 1, CacheReuse: 0, SyncIntensity: 0.5, Skew: 0.10, RunVariance: 0.06},
	"sort":      {ComputePerGB: 50, MemPerGB: 1.0, ShufflePerGB: 1.0, OutputPerGB: 1.0, Iterations: 1, CacheReuse: 0, SyncIntensity: 0.5, Skew: 0.10, RunVariance: 0.06},
	"wordcount": {ComputePerGB: 95, MemPerGB: 0.35, ShufflePerGB: 0.12, OutputPerGB: 0.05, Iterations: 1, CacheReuse: 0, SyncIntensity: 0.2, Skew: 0.15, RunVariance: 0.05},
	"grep":      {ComputePerGB: 40, MemPerGB: 0.15, ShufflePerGB: 0.02, OutputPerGB: 0.01, Iterations: 1, CacheReuse: 0, SyncIntensity: 0.1, Skew: 0.05, RunVariance: 0.05},
	"count":     {ComputePerGB: 45, MemPerGB: 0.20, ShufflePerGB: 0.03, OutputPerGB: 0.005, Iterations: 1, CacheReuse: 0, SyncIntensity: 0.1, Skew: 0.05, RunVariance: 0.05},
	"identify":  {ComputePerGB: 70, MemPerGB: 0.30, ShufflePerGB: 0.08, OutputPerGB: 0.05, Iterations: 1, CacheReuse: 0, SyncIntensity: 0.2, Skew: 0.10, RunVariance: 0.06},

	// Machine learning.
	"linear":   {ComputePerGB: 320, MemPerGB: 1.4, ShufflePerGB: 0.06, OutputPerGB: 0.01, Iterations: 8, CacheReuse: 0.9, SyncIntensity: 0.5, Skew: 0.05, RunVariance: 0.07},
	"lr":       {ComputePerGB: 420, MemPerGB: 1.6, ShufflePerGB: 0.07, OutputPerGB: 0.01, Iterations: 12, CacheReuse: 0.9, SyncIntensity: 0.55, Skew: 0.05, RunVariance: 0.07},
	"kmeans":   {ComputePerGB: 360, MemPerGB: 1.8, ShufflePerGB: 0.10, OutputPerGB: 0.02, Iterations: 15, CacheReuse: 0.95, SyncIntensity: 0.6, Skew: 0.10, RunVariance: 0.08},
	"bayes":    {ComputePerGB: 250, MemPerGB: 1.2, ShufflePerGB: 0.20, OutputPerGB: 0.03, Iterations: 3, CacheReuse: 0.6, SyncIntensity: 0.4, Skew: 0.12, RunVariance: 0.07},
	"pca":      {ComputePerGB: 520, MemPerGB: 2.6, ShufflePerGB: 0.15, OutputPerGB: 0.02, Iterations: 10, CacheReuse: 0.85, SyncIntensity: 0.6, Skew: 0.05, RunVariance: 0.08},
	"als":      {ComputePerGB: 460, MemPerGB: 2.2, ShufflePerGB: 0.35, OutputPerGB: 0.03, Iterations: 18, CacheReuse: 0.8, SyncIntensity: 0.7, Skew: 0.15, RunVariance: 0.10},
	"svdpp":    {ComputePerGB: 500, MemPerGB: 2.4, ShufflePerGB: 0.70, OutputPerGB: 0.03, Iterations: 20, CacheReuse: 0.6, SyncIntensity: 0.7, Skew: 0.35, RunVariance: 0.38},
	"cf":       {ComputePerGB: 300, MemPerGB: 2.0, ShufflePerGB: 0.95, OutputPerGB: 0.04, Iterations: 22, CacheReuse: 0.5, SyncIntensity: 0.85, Skew: 0.28, RunVariance: 0.18},
	"spearman": {ComputePerGB: 300, MemPerGB: 1.5, ShufflePerGB: 0.30, OutputPerGB: 0.01, Iterations: 4, CacheReuse: 0.7, SyncIntensity: 0.5, Skew: 0.08, RunVariance: 0.07},
	"bfs":      {ComputePerGB: 180, MemPerGB: 1.9, ShufflePerGB: 0.30, OutputPerGB: 0.02, Iterations: 12, CacheReuse: 0.85, SyncIntensity: 0.7, Skew: 0.20, RunVariance: 0.09},

	// SQL-like processing.
	"select":      {ComputePerGB: 30, MemPerGB: 0.25, ShufflePerGB: 0.02, OutputPerGB: 0.10, Iterations: 1, CacheReuse: 0, SyncIntensity: 0.1, Skew: 0.05, RunVariance: 0.05},
	"scan":        {ComputePerGB: 35, MemPerGB: 0.20, ShufflePerGB: 0.01, OutputPerGB: 0.30, Iterations: 1, CacheReuse: 0, SyncIntensity: 0.1, Skew: 0.05, RunVariance: 0.05},
	"join":        {ComputePerGB: 130, MemPerGB: 2.1, ShufflePerGB: 0.90, OutputPerGB: 0.40, Iterations: 2, CacheReuse: 0.3, SyncIntensity: 0.5, Skew: 0.20, RunVariance: 0.08},
	"fulljoin":    {ComputePerGB: 190, MemPerGB: 2.6, ShufflePerGB: 1.20, OutputPerGB: 0.60, Iterations: 3, CacheReuse: 0.3, SyncIntensity: 0.6, Skew: 0.25, RunVariance: 0.09},
	"aggregation": {ComputePerGB: 90, MemPerGB: 0.9, ShufflePerGB: 0.25, OutputPerGB: 0.05, Iterations: 1, CacheReuse: 0.1, SyncIntensity: 0.3, Skew: 0.12, RunVariance: 0.06},

	// Search engine.
	"pagerank": {ComputePerGB: 260, MemPerGB: 1.7, ShufflePerGB: 0.35, OutputPerGB: 0.02, Iterations: 20, CacheReuse: 0.9, SyncIntensity: 0.65, Skew: 0.15, RunVariance: 0.08},
	"index":    {ComputePerGB: 150, MemPerGB: 0.8, ShufflePerGB: 0.50, OutputPerGB: 0.70, Iterations: 2, CacheReuse: 0.2, SyncIntensity: 0.4, Skew: 0.15, RunVariance: 0.07},
	"nutch":    {ComputePerGB: 170, MemPerGB: 0.9, ShufflePerGB: 0.55, OutputPerGB: 0.60, Iterations: 3, CacheReuse: 0.25, SyncIntensity: 0.45, Skew: 0.15, RunVariance: 0.08},

	// Streaming.
	"twitter":    {ComputePerGB: 110, MemPerGB: 0.6, ShufflePerGB: 0.15, OutputPerGB: 0.05, Iterations: 6, CacheReuse: 0.4, SyncIntensity: 0.3, Skew: 0.10, RunVariance: 0.09, Streaming: true},
	"pagereview": {ComputePerGB: 90, MemPerGB: 0.5, ShufflePerGB: 0.12, OutputPerGB: 0.05, Iterations: 6, CacheReuse: 0.4, SyncIntensity: 0.3, Skew: 0.10, RunVariance: 0.08, Streaming: true},
}

// appRow is the compact Table 3 declaration expanded by All.
type appRow struct {
	no      int
	name    string
	fw      Framework
	kernel  string
	class   Class
	suite   Suite
	set     Set
	inputGB float64
}

// rows reproduces Table 3 exactly: numbers, names (including the paper's
// italic-vs-normal font split between HiBench and BigDataBench), and the
// training/testing/target partition.
var rows = []appRow{
	{1, "Hadoop-terasort", Hadoop, "terasort", Micro, HiBench, SourceTraining, 30},
	{2, "Hadoop-wordcount", Hadoop, "wordcount", Micro, HiBench, SourceTraining, 30},
	{3, "Hadoop-page-review", Hadoop, "pagereview", Streaming, BigDataBench, SourceTraining, 10},
	{4, "Hadoop-linear", Hadoop, "linear", MachineLearning, BigDataBench, SourceTraining, 8},
	{5, "Hadoop-lr", Hadoop, "lr", MachineLearning, HiBench, SourceTraining, 8},
	{6, "Hadoop-twitter", Hadoop, "twitter", Streaming, BigDataBench, SourceTraining, 10},
	{7, "Hadoop-bayes", Hadoop, "bayes", MachineLearning, HiBench, SourceTraining, 10},
	{8, "Hadoop-index", Hadoop, "index", SearchEngine, BigDataBench, SourceTraining, 12},
	{9, "Hadoop-identify", Hadoop, "identify", Micro, BigDataBench, SourceTraining, 20},
	{10, "Hive-select", Hive, "select", SQL, BigDataBench, SourceTraining, 30},
	{11, "Hive-join", Hive, "join", SQL, BigDataBench, SourceTraining, 15},
	{12, "Hive-scan", Hive, "scan", SQL, BigDataBench, SourceTraining, 30},
	{13, "Hive-full-join", Hive, "fulljoin", SQL, BigDataBench, SourceTraining, 12},
	{14, "Hadoop-nutch", Hadoop, "nutch", SearchEngine, HiBench, SourceTesting, 12},
	{15, "Hadoop-pca", Hadoop, "pca", MachineLearning, BigDataBench, SourceTesting, 6},
	{16, "Hadoop-als", Hadoop, "als", MachineLearning, HiBench, SourceTesting, 6},
	{17, "Hadoop-kmeans", Hadoop, "kmeans", MachineLearning, HiBench, SourceTesting, 8},
	{18, "Hive-aggregation", Hive, "aggregation", SQL, HiBench, SourceTesting, 20},
	{19, "Spark-spearman", Spark, "spearman", MachineLearning, BigDataBench, Target, 8},
	{20, "Spark-svd++", Spark, "svdpp", MachineLearning, BigDataBench, Target, 6},
	{21, "Spark-lr", Spark, "lr", MachineLearning, HiBench, Target, 8},
	{22, "Spark-page-rank", Spark, "pagerank", SearchEngine, HiBench, Target, 10},
	{23, "Spark-kmeans", Spark, "kmeans", MachineLearning, HiBench, Target, 8},
	{24, "Spark-bayes", Spark, "bayes", MachineLearning, HiBench, Target, 10},
	{25, "Spark-BFS", Spark, "bfs", MachineLearning, BigDataBench, Target, 8},
	{26, "Spark-CF", Spark, "cf", MachineLearning, BigDataBench, Target, 8},
	{27, "Spark-sort", Spark, "sort", Micro, HiBench, Target, 30},
	{28, "Spark-pca", Spark, "pca", MachineLearning, BigDataBench, Target, 6},
	{29, "Spark-grep", Spark, "grep", Micro, BigDataBench, Target, 30},
	{30, "Spark-count", Spark, "count", Micro, BigDataBench, Target, 30},
}

// All returns the 30 applications of Table 3 in row order.
func All() []App {
	out := make([]App, 0, len(rows))
	for _, r := range rows {
		d, ok := kernels[r.kernel]
		if !ok {
			panic("workload: unknown kernel " + r.kernel)
		}
		out = append(out, App{
			Name: r.name, No: r.no, Framework: r.fw, Kernel: r.kernel,
			Class: r.class, Suite: r.suite, Set: r.set, InputGB: r.inputGB,
			Demand:    d,
			Converges: r.name != "Spark-CF",
		})
	}
	return out
}

// BySet returns the applications in the given Table 3 split, in row order.
func BySet(s Set) []App {
	var out []App
	for _, a := range All() {
		if a.Set == s {
			out = append(out, a)
		}
	}
	return out
}

// SourceSet returns the 18 Hadoop+Hive source applications (training and
// testing splits combined).
func SourceSet() []App {
	return append(BySet(SourceTraining), BySet(SourceTesting)...)
}

// TargetSet returns the 12 Spark target applications.
func TargetSet() []App { return BySet(Target) }

// ByName returns the application with the given Table 3 name.
func ByName(name string) (App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("workload: no application named %q in Table 3", name)
}

// ByFramework returns all applications of one framework, in row order.
func ByFramework(f Framework) []App {
	var out []App
	for _, a := range All() {
		if a.Framework == f {
			out = append(out, a)
		}
	}
	return out
}

// Kernels returns the sorted list of distinct kernel ids.
func Kernels() []string {
	var out []string
	for k := range kernels {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// KernelDemand returns the intrinsic demand of a kernel id.
func KernelDemand(kernel string) (Demand, error) {
	d, ok := kernels[kernel]
	if !ok {
		return Demand{}, fmt.Errorf("workload: unknown kernel %q", kernel)
	}
	return d, nil
}

// InputSizeGB translates the HiBench dataset-scale names used in Section 5.1
// ("large" 300 MB, "huge" 3 GB, "gigantic" 30 GB) into GB.
func InputSizeGB(scale string) (float64, error) {
	switch scale {
	case "large":
		return 0.3, nil
	case "huge":
		return 3, nil
	case "gigantic":
		return 30, nil
	}
	return 0, fmt.Errorf("workload: unknown HiBench scale %q (want large|huge|gigantic)", scale)
}

// WithInput returns a copy of the application with a different input size.
func (a App) WithInput(gb float64) App {
	if gb <= 0 {
		panic("workload: non-positive input size")
	}
	a.InputGB = gb
	return a
}

// String implements fmt.Stringer.
func (a App) String() string {
	return fmt.Sprintf("%s [%s/%s, %s, %.1f GB]", a.Name, a.Class, a.Kernel, a.Set, a.InputGB)
}
