package workload

import "testing"

func TestTable3Counts(t *testing.T) {
	all := All()
	if len(all) != 30 {
		t.Fatalf("Table 3 has %d rows, want 30", len(all))
	}
	if n := len(BySet(SourceTraining)); n != 13 {
		t.Fatalf("source training set has %d apps, want 13", n)
	}
	if n := len(BySet(SourceTesting)); n != 5 {
		t.Fatalf("source testing set has %d apps, want 5", n)
	}
	if n := len(TargetSet()); n != 12 {
		t.Fatalf("target set has %d apps, want 12", n)
	}
	if n := len(SourceSet()); n != 18 {
		t.Fatalf("source set has %d apps, want 18", n)
	}
}

func TestRowNumbersSequential(t *testing.T) {
	for i, a := range All() {
		if a.No != i+1 {
			t.Fatalf("row %d has No=%d", i, a.No)
		}
	}
}

func TestSourceIsHadoopHiveTargetIsSpark(t *testing.T) {
	for _, a := range SourceSet() {
		if a.Framework != Hadoop && a.Framework != Hive {
			t.Fatalf("source app %s has framework %s", a.Name, a.Framework)
		}
	}
	for _, a := range TargetSet() {
		if a.Framework != Spark {
			t.Fatalf("target app %s has framework %s", a.Name, a.Framework)
		}
	}
}

func TestCrossFrameworkKernelSharing(t *testing.T) {
	// The transfer story requires target kernels to overlap source kernels.
	sourceKernels := map[string]bool{}
	for _, a := range SourceSet() {
		sourceKernels[a.Kernel] = true
	}
	shared := 0
	for _, a := range TargetSet() {
		if sourceKernels[a.Kernel] {
			shared++
		}
	}
	if shared < 4 {
		t.Fatalf("only %d target kernels shared with sources; transfer needs overlap", shared)
	}
	// And specifically the paper's paired examples.
	for _, pair := range [][2]string{
		{"Hadoop-lr", "Spark-lr"},
		{"Hadoop-kmeans", "Spark-kmeans"},
		{"Hadoop-pca", "Spark-pca"},
		{"Hadoop-bayes", "Spark-bayes"},
	} {
		a, err := ByName(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := ByName(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if a.Kernel != b.Kernel {
			t.Fatalf("%s and %s do not share a kernel", pair[0], pair[1])
		}
	}
}

func TestUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if seen[a.Name] {
			t.Fatalf("duplicate app name %s", a.Name)
		}
		seen[a.Name] = true
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("Flink-wordcount"); err == nil {
		t.Fatal("unknown app should error")
	}
	a, err := ByName("Spark-page-rank")
	if err != nil || a.Kernel != "pagerank" {
		t.Fatalf("ByName(Spark-page-rank) = %+v, %v", a, err)
	}
}

func TestDemandSanity(t *testing.T) {
	for _, a := range All() {
		d := a.Demand
		if d.ComputePerGB <= 0 || d.MemPerGB <= 0 || d.Iterations < 1 {
			t.Fatalf("%s has degenerate demand %+v", a.Name, d)
		}
		if d.CacheReuse < 0 || d.CacheReuse > 1 || d.Skew < 0 || d.Skew > 1 {
			t.Fatalf("%s has out-of-range fractions %+v", a.Name, d)
		}
		if a.InputGB <= 0 {
			t.Fatalf("%s has non-positive input", a.Name)
		}
	}
}

func TestDesignedOutliers(t *testing.T) {
	svd, _ := ByName("Spark-svd++")
	if svd.Demand.RunVariance < 0.3 {
		t.Fatalf("Spark-svd++ run variance %v; the paper reports close to 40%%", svd.Demand.RunVariance)
	}
	cf, _ := ByName("Spark-CF")
	if cf.Converges {
		t.Fatal("Spark-CF should be flagged non-convergent (Section 5.3)")
	}
	lr, _ := ByName("Spark-lr")
	if !lr.Converges {
		t.Fatal("Spark-lr should converge")
	}
}

func TestMLKernelsAreComputeHeavy(t *testing.T) {
	sortD, _ := KernelDemand("sort")
	for _, k := range []string{"lr", "kmeans", "pca", "als"} {
		d, err := KernelDemand(k)
		if err != nil {
			t.Fatal(err)
		}
		if d.ComputePerGB <= 2*sortD.ComputePerGB {
			t.Fatalf("ML kernel %s compute %v not clearly above sort %v", k, d.ComputePerGB, sortD.ComputePerGB)
		}
		if d.Iterations < 5 {
			t.Fatalf("ML kernel %s iterates only %d times", k, d.Iterations)
		}
	}
}

func TestSortKernelsShuffleHeavy(t *testing.T) {
	for _, k := range []string{"terasort", "sort"} {
		d, _ := KernelDemand(k)
		if d.ShufflePerGB < 0.9 {
			t.Fatalf("%s shuffle %v, want full-shuffle (~1.0)", k, d.ShufflePerGB)
		}
	}
}

func TestStreamingFlag(t *testing.T) {
	tw, _ := ByName("Hadoop-twitter")
	if !tw.Demand.Streaming {
		t.Fatal("twitter should be streaming")
	}
	ts, _ := ByName("Hadoop-terasort")
	if ts.Demand.Streaming {
		t.Fatal("terasort should not be streaming")
	}
}

func TestInputSizeGB(t *testing.T) {
	for scale, want := range map[string]float64{"large": 0.3, "huge": 3, "gigantic": 30} {
		got, err := InputSizeGB(scale)
		if err != nil || got != want {
			t.Fatalf("InputSizeGB(%s) = %v, %v", scale, got, err)
		}
	}
	if _, err := InputSizeGB("colossal"); err == nil {
		t.Fatal("unknown scale should error")
	}
}

func TestWithInput(t *testing.T) {
	a, _ := ByName("Spark-lr")
	b := a.WithInput(42)
	if b.InputGB != 42 || a.InputGB == 42 {
		t.Fatal("WithInput should copy, not mutate")
	}
}

func TestWithInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithInput(0) did not panic")
		}
	}()
	a, _ := ByName("Spark-lr")
	a.WithInput(0)
}

func TestKernelsListed(t *testing.T) {
	ks := Kernels()
	if len(ks) != 26 {
		t.Fatalf("have %d kernels, want 26", len(ks))
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Fatal("Kernels not sorted")
		}
	}
}

func TestByFramework(t *testing.T) {
	if n := len(ByFramework(Spark)); n != 12 {
		t.Fatalf("Spark apps = %d, want 12", n)
	}
	if n := len(ByFramework(Hive)); n != 5 {
		t.Fatalf("Hive apps = %d, want 5", n)
	}
	if n := len(ByFramework(Hadoop)); n != 13 {
		t.Fatalf("Hadoop apps = %d, want 13", n)
	}
}
