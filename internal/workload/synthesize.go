// Synthetic workload generation: the paper's workload set "is not
// exhaustive but intended to span the space of workload requirements"
// (Section 5.1). Synthesize extends that space with randomly drawn but
// physically plausible demand profiles, used by the knowledge-scaling
// extension experiment (how does transfer quality grow with source breadth?)
// and by property tests that fuzz the whole pipeline.
package workload

import (
	"fmt"

	"vesta/internal/rng"
)

// classTemplate bounds the demand knobs per workload class so synthesized
// kernels stay inside the class's physically plausible envelope.
type classTemplate struct {
	class            Class
	computeLo        float64
	computeHi        float64
	memLo, memHi     float64
	shufLo, shufHi   float64
	outLo, outHi     float64
	iterLo, iterHi   int
	cacheLo, cacheHi float64
	syncLo, syncHi   float64
	inputLo, inputHi float64
	streaming        bool
}

var classTemplates = []classTemplate{
	{Micro, 30, 120, 0.1, 1.2, 0.02, 1.2, 0.005, 1.0, 1, 2, 0, 0.1, 0.1, 0.6, 10, 30, false},
	{MachineLearning, 200, 600, 1.0, 3.0, 0.05, 0.5, 0.01, 0.05, 6, 25, 0.6, 0.95, 0.4, 0.8, 4, 12, false},
	{SQL, 25, 220, 0.2, 2.8, 0.01, 1.3, 0.05, 0.7, 1, 3, 0, 0.4, 0.1, 0.6, 10, 30, false},
	{SearchEngine, 120, 300, 0.7, 2.0, 0.3, 0.7, 0.02, 0.8, 2, 22, 0.2, 0.9, 0.4, 0.8, 8, 14, false},
	{Streaming, 60, 140, 0.3, 0.8, 0.08, 0.2, 0.02, 0.1, 4, 8, 0.3, 0.5, 0.2, 0.4, 6, 12, true},
}

// Synthesize draws a random application for the given framework. The
// generated workload carries a stable generated name ("synth-<framework>-
// <class>-<n>") with n taken from the provided counter so callers can
// generate distinct batches deterministically.
func Synthesize(fw Framework, n int, src *rng.Source) App {
	tpl := classTemplates[src.Intn(len(classTemplates))]
	d := Demand{
		ComputePerGB:  src.Range(tpl.computeLo, tpl.computeHi),
		MemPerGB:      src.Range(tpl.memLo, tpl.memHi),
		ShufflePerGB:  src.Range(tpl.shufLo, tpl.shufHi),
		OutputPerGB:   src.Range(tpl.outLo, tpl.outHi),
		Iterations:    tpl.iterLo + src.Intn(tpl.iterHi-tpl.iterLo+1),
		CacheReuse:    src.Range(tpl.cacheLo, tpl.cacheHi),
		SyncIntensity: src.Range(tpl.syncLo, tpl.syncHi),
		Skew:          src.Range(0.02, 0.3),
		RunVariance:   src.Range(0.04, 0.15),
		Streaming:     tpl.streaming,
	}
	name := fmt.Sprintf("synth-%s-%s-%d", fw, tpl.class, n)
	return App{
		Name: name, No: 1000 + n, Framework: fw,
		Kernel: fmt.Sprintf("synth-%s-%d", tpl.class, n),
		Class:  tpl.class, Suite: BigDataBench, Set: SourceTraining,
		InputGB:   src.Range(tpl.inputLo, tpl.inputHi),
		Demand:    d,
		Converges: true,
	}
}

// SynthesizeBatch draws count applications spread over the given frameworks
// round-robin, with globally unique names starting at startN.
func SynthesizeBatch(fws []Framework, count, startN int, src *rng.Source) []App {
	if len(fws) == 0 {
		panic("workload: SynthesizeBatch with no frameworks")
	}
	out := make([]App, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, Synthesize(fws[i%len(fws)], startN+i, src))
	}
	return out
}
