package workload

import (
	"strings"
	"testing"
	"testing/quick"

	"vesta/internal/rng"
)

func TestSynthesizeValid(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		a := Synthesize(Hadoop, int(seed%100), src)
		d := a.Demand
		return d.ComputePerGB > 0 && d.MemPerGB > 0 && d.Iterations >= 1 &&
			d.CacheReuse >= 0 && d.CacheReuse <= 1 &&
			d.Skew >= 0 && d.Skew <= 1 &&
			d.SyncIntensity >= 0 && d.SyncIntensity <= 1 &&
			a.InputGB > 0 && a.Converges &&
			strings.HasPrefix(a.Name, "synth-Hadoop-")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(Spark, 3, rng.New(42))
	b := Synthesize(Spark, 3, rng.New(42))
	if a.Name != b.Name || a.Demand != b.Demand || a.InputGB != b.InputGB {
		t.Fatal("same seed produced different workloads")
	}
}

func TestSynthesizeStreamingFlagConsistent(t *testing.T) {
	src := rng.New(7)
	for i := 0; i < 100; i++ {
		a := Synthesize(Hive, i, src)
		if a.Class == Streaming && !a.Demand.Streaming {
			t.Fatal("streaming class without streaming demand")
		}
		if a.Class != Streaming && a.Demand.Streaming {
			t.Fatal("non-streaming class with streaming demand")
		}
	}
}

func TestSynthesizeBatch(t *testing.T) {
	src := rng.New(9)
	batch := SynthesizeBatch([]Framework{Hadoop, Hive}, 10, 50, src)
	if len(batch) != 10 {
		t.Fatalf("batch size %d", len(batch))
	}
	names := map[string]bool{}
	hadoop, hive := 0, 0
	for _, a := range batch {
		if names[a.Name] {
			t.Fatalf("duplicate synthesized name %s", a.Name)
		}
		names[a.Name] = true
		switch a.Framework {
		case Hadoop:
			hadoop++
		case Hive:
			hive++
		}
	}
	if hadoop != 5 || hive != 5 {
		t.Fatalf("round-robin split = %d/%d", hadoop, hive)
	}
}

func TestSynthesizeBatchPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty framework list accepted")
		}
	}()
	SynthesizeBatch(nil, 3, 0, rng.New(1))
}

func TestSynthesizedNamesAvoidTable3(t *testing.T) {
	src := rng.New(11)
	table3 := map[string]bool{}
	for _, a := range All() {
		table3[a.Name] = true
	}
	for _, a := range SynthesizeBatch([]Framework{Hadoop, Hive, Spark}, 30, 0, src) {
		if table3[a.Name] {
			t.Fatalf("synthesized name %s collides with Table 3", a.Name)
		}
	}
}

func TestMLClassIsComputeHeavy(t *testing.T) {
	src := rng.New(13)
	for i := 0; i < 300; i++ {
		a := Synthesize(Spark, i, src)
		if a.Class == MachineLearning {
			if a.Demand.ComputePerGB < 200 || a.Demand.Iterations < 6 {
				t.Fatalf("ML synth outside envelope: %+v", a.Demand)
			}
		}
	}
}
