package nnls

import (
	"math"
	"testing"
	"testing/quick"

	"vesta/internal/mat"
	"vesta/internal/rng"
)

func TestExactNonNegativeSolution(t *testing.T) {
	// b is an exact non-negative combination; NNLS must recover it.
	a := mat.FromRows([][]float64{
		{1, 0, 2},
		{0, 1, 1},
		{2, 1, 0},
		{1, 1, 1},
	})
	want := []float64{0.5, 2, 1.5}
	b := a.MulVec(want)
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestClampsNegative(t *testing.T) {
	// The unconstrained solution has a negative coefficient; NNLS must pin
	// it to zero and still fit well.
	a := mat.FromRows([][]float64{
		{1, 1},
		{1, 1.01},
		{1, 0.99},
	})
	b := []float64{1, 0.5, 1.5} // pulls second coefficient negative
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range x {
		if v < 0 {
			t.Fatalf("x[%d] = %v negative", j, v)
		}
	}
}

func TestAllZeroWhenBOrthogonalNegative(t *testing.T) {
	// If b is best approximated by negative coefficients only, x = 0.
	a := mat.FromRows([][]float64{{1}, {1}})
	b := []float64{-3, -5}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 0 {
		t.Fatalf("x = %v, want [0]", x)
	}
}

func TestResidualNotWorseThanZeroVector(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		m, n := 4+src.Intn(8), 1+src.Intn(4)
		a := mat.New(m, n)
		for i := range a.Data {
			a.Data[i] = src.Range(0, 2)
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = src.Range(-1, 3)
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		for _, v := range x {
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		zero := make([]float64, n)
		return Residual(a, x, b) <= Residual(a, zero, b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestErnestShapedFit(t *testing.T) {
	// Ernest's feature map: [1, data/machines, log(machines), machines].
	// Generate runtimes from known non-negative thetas and recover them.
	theta := []float64{5, 30, 2, 0.4}
	var rows [][]float64
	var b []float64
	for _, machines := range []float64{1, 2, 4, 8, 16} {
		for _, data := range []float64{1, 2, 4} {
			f := []float64{1, data / machines, math.Log(machines + 1), machines}
			y := 0.0
			for i := range f {
				y += theta[i] * f[i]
			}
			rows = append(rows, f)
			b = append(b, y)
		}
	}
	a := mat.FromRows(rows)
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range theta {
		if math.Abs(x[i]-theta[i]) > 1e-4 {
			t.Fatalf("theta = %v, want %v", x, theta)
		}
	}
}

func TestDimensionErrors(t *testing.T) {
	a := mat.New(3, 2)
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Solve(mat.New(0, 0), nil); err == nil {
		t.Fatal("empty problem accepted")
	}
}

func TestCollinearColumns(t *testing.T) {
	// Duplicate columns: solution not unique but must stay feasible/finite.
	a := mat.FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	b := []float64{2, 4, 6}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, x, b); r > 1e-4 {
		t.Fatalf("residual %v on solvable collinear system", r)
	}
}

func BenchmarkSolve(b *testing.B) {
	src := rng.New(1)
	m, n := 40, 4
	a := mat.New(m, n)
	for i := range a.Data {
		a.Data[i] = src.Range(0, 2)
	}
	rhs := make([]float64, m)
	for i := range rhs {
		rhs[i] = src.Range(0, 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
