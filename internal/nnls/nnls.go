// Package nnls implements Non-Negative Least Squares via the Lawson-Hanson
// active-set algorithm. It is the fitting substrate of the Ernest baseline
// (Venkataraman et al., NSDI'16), whose performance-cost model is a linear
// combination of communication-pattern terms with non-negative coefficients.
package nnls

import (
	"fmt"
	"math"

	"vesta/internal/mat"
)

// Solve finds x >= 0 minimizing ||A x - b||_2 using Lawson-Hanson.
// A is m x n with m >= 1, b has length m. It returns an error on dimension
// mismatch or if the inner least-squares subproblem is degenerate beyond
// repair.
func Solve(a *mat.Matrix, b []float64) ([]float64, error) {
	m, n := a.Rows, a.Cols
	if len(b) != m {
		return nil, fmt.Errorf("nnls: b has length %d, want %d", len(b), m)
	}
	if m == 0 || n == 0 {
		return nil, fmt.Errorf("nnls: empty problem")
	}

	x := make([]float64, n)
	passive := make([]bool, n) // P set: variables allowed nonzero
	w := make([]float64, n)    // gradient A^T (b - A x)

	residual := func() []float64 {
		r := make([]float64, m)
		copy(r, b)
		ax := a.MulVec(x)
		for i := range r {
			r[i] -= ax[i]
		}
		return r
	}

	const maxOuter = 3 * 64
	tol := 1e-10 * a.Frobenius() * mat.Norm2(b)
	if tol == 0 {
		tol = 1e-12
	}

	for outer := 0; outer < maxOuter+3*n; outer++ {
		// Compute gradient over the active (zero) set.
		r := residual()
		at := a.T()
		grad := at.MulVec(r)
		copy(w, grad)

		// Find the most promising active variable.
		best, bestW := -1, tol
		for j := 0; j < n; j++ {
			if !passive[j] && w[j] > bestW {
				best, bestW = j, w[j]
			}
		}
		if best == -1 {
			break // KKT satisfied
		}
		passive[best] = true

		// Inner loop: solve unconstrained LS on the passive set, clipping
		// variables that go negative.
		for inner := 0; inner < 3*n+10; inner++ {
			z, err := lsOnPassive(a, b, passive)
			if err != nil {
				// Degenerate subproblem: drop the most recently added
				// variable and stop trying it.
				passive[best] = false
				break
			}
			allPos := true
			for j := 0; j < n; j++ {
				if passive[j] && z[j] <= 0 {
					allPos = false
				}
			}
			if allPos {
				copy(x, z)
				break
			}
			// Step from x toward z as far as feasibility allows.
			alpha := math.Inf(1)
			for j := 0; j < n; j++ {
				if passive[j] && z[j] <= 0 {
					if d := x[j] - z[j]; d > 0 {
						if a := x[j] / d; a < alpha {
							alpha = a
						}
					}
				}
			}
			if math.IsInf(alpha, 1) {
				alpha = 0
			}
			for j := 0; j < n; j++ {
				if passive[j] {
					x[j] += alpha * (z[j] - x[j])
					if x[j] < 1e-12 {
						x[j] = 0
						passive[j] = false
					}
				}
			}
		}
	}
	// Clean tiny negatives from numeric error.
	for j := range x {
		if x[j] < 0 {
			x[j] = 0
		}
	}
	return x, nil
}

// lsOnPassive solves the unconstrained least squares over the passive
// columns via normal equations, returning a full-length vector with zeros on
// the active set.
func lsOnPassive(a *mat.Matrix, b []float64, passive []bool) ([]float64, error) {
	var cols []int
	for j, p := range passive {
		if p {
			cols = append(cols, j)
		}
	}
	k := len(cols)
	if k == 0 {
		return make([]float64, len(passive)), nil
	}
	// Normal equations: (A_P^T A_P) z = A_P^T b, with a tiny ridge for
	// numerical robustness on collinear designs.
	ata := mat.New(k, k)
	atb := make([]float64, k)
	m := a.Rows
	for ci, j := range cols {
		for cj := ci; cj < k; cj++ {
			s := 0.0
			for r := 0; r < m; r++ {
				s += a.At(r, j) * a.At(r, cols[cj])
			}
			ata.Set(ci, cj, s)
			ata.Set(cj, ci, s)
		}
		s := 0.0
		for r := 0; r < m; r++ {
			s += a.At(r, j) * b[r]
		}
		atb[ci] = s
	}
	for i := 0; i < k; i++ {
		ata.Add(i, i, 1e-10)
	}
	z, err := mat.Solve(ata, atb)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(passive))
	for ci, j := range cols {
		out[j] = z[ci]
	}
	return out, nil
}

// Residual returns ||A x - b||_2 for a candidate solution.
func Residual(a *mat.Matrix, x, b []float64) float64 {
	ax := a.MulVec(x)
	s := 0.0
	for i := range b {
		d := ax[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
