package nnls

import (
	"math"
	"testing"

	"vesta/internal/mat"
)

// Table-driven degenerate-input tests: collinear columns, all-zero right-hand
// sides, shape mismatches, and negative-only fits. NNLS must stay finite and
// non-negative on all of them — the CMF solver calls it on whatever the
// measurement phase produced.

func TestSolveDegenerateInputs(t *testing.T) {
	cases := []struct {
		name    string
		a       *mat.Matrix
		b       []float64
		wantErr bool
		check   func(t *testing.T, x []float64)
	}{
		{
			name:    "length mismatch",
			a:       mat.Identity(3),
			b:       []float64{1, 2},
			wantErr: true,
		},
		{
			name:    "empty rows",
			a:       mat.New(0, 2),
			b:       nil,
			wantErr: true,
		},
		{
			name:    "empty cols",
			a:       mat.New(2, 0),
			b:       []float64{1, 2},
			wantErr: true,
		},
		{
			name: "all-zero rhs",
			a:    mat.FromRows([][]float64{{1, 0}, {0, 1}}),
			b:    []float64{0, 0},
			check: func(t *testing.T, x []float64) {
				for i, v := range x {
					if v != 0 {
						t.Fatalf("x[%d] = %v, want 0", i, v)
					}
				}
			},
		},
		{
			name: "all-zero matrix",
			a:    mat.New(2, 2),
			b:    []float64{1, 1},
			check: func(t *testing.T, x []float64) {
				// No column can reduce the residual; solution stays at zero.
				for i, v := range x {
					if v != 0 {
						t.Fatalf("x[%d] = %v, want 0", i, v)
					}
				}
			},
		},
		{
			name: "collinear columns", // ridge term must keep this solvable
			a: mat.FromRows([][]float64{
				{1, 2},
				{2, 4},
				{3, 6},
			}),
			b: []float64{1, 2, 3},
			check: func(t *testing.T, x []float64) {
				// Any non-negative combination with x1 + 2*x2 = 1 fits
				// exactly; whatever NNLS picked must reconstruct b.
				res := Residual(mat.FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}}), x,
					[]float64{1, 2, 3})
				if res > 1e-6 {
					t.Fatalf("residual = %v", res)
				}
			},
		},
		{
			name: "negative-only target", // b in the cone's opposite half
			a:    mat.FromRows([][]float64{{1}, {1}}),
			b:    []float64{-1, -1},
			check: func(t *testing.T, x []float64) {
				if x[0] != 0 {
					t.Fatalf("x = %v, want [0]", x)
				}
			},
		},
		{
			name: "exact positive solution",
			a:    mat.FromRows([][]float64{{2, 0}, {0, 3}}),
			b:    []float64{4, 9},
			check: func(t *testing.T, x []float64) {
				if math.Abs(x[0]-2) > 1e-8 || math.Abs(x[1]-3) > 1e-8 {
					t.Fatalf("x = %v, want [2 3]", x)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x, err := Solve(tc.a, tc.b)
			if tc.wantErr {
				if err == nil {
					t.Fatal("expected error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(x) != tc.a.Cols {
				t.Fatalf("len(x) = %d, want %d", len(x), tc.a.Cols)
			}
			for i, v := range x {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("x[%d] = %v: not finite non-negative", i, v)
				}
			}
			if tc.check != nil {
				tc.check(t, x)
			}
		})
	}
}

func TestResidualEdgeCases(t *testing.T) {
	// Zero-row problem: residual of nothing is zero.
	if r := Residual(mat.New(0, 1), []float64{0}, nil); r != 0 {
		t.Fatalf("empty residual = %v", r)
	}
	a := mat.FromRows([][]float64{{1, 0}, {0, 1}})
	if r := Residual(a, []float64{1, 2}, []float64{1, 2}); r != 0 {
		t.Fatalf("exact fit residual = %v", r)
	}
	if r := Residual(a, []float64{0, 0}, []float64{3, 4}); math.Abs(r-5) > 1e-12 {
		t.Fatalf("residual = %v, want 5", r)
	}
}
