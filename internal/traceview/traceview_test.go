package traceview

import (
	"math"
	"strings"
	"testing"

	"vesta/internal/cloud"
	"vesta/internal/metrics"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

func sampleTrace(t *testing.T, appName string) *metrics.Trace {
	t.Helper()
	a, err := workload.ByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := cloud.Find(cloud.Catalog120(), "m5.xlarge")
	if err != nil {
		t.Fatal(err)
	}
	return sim.New(sim.Config{Repeats: 2}).ProfileRun(a, vm, 1).Trace
}

func TestSparklineBasics(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1}, 0)
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline %q has wrong length", s)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("sparkline endpoints wrong: %q", s)
	}
	if Sparkline(nil, 5) != "" {
		t.Fatal("empty sparkline not empty")
	}
	// Constant series: all-low flat line, no panic.
	flat := Sparkline([]float64{0.5, 0.5, 0.5}, 0)
	for _, r := range flat {
		if r != '▁' {
			t.Fatalf("constant sparkline = %q", flat)
		}
	}
}

func TestSparklineWidth(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i)
	}
	s := Sparkline(values, 20)
	if len([]rune(s)) != 20 {
		t.Fatalf("resampled sparkline length %d, want 20", len([]rune(s)))
	}
}

func TestResample(t *testing.T) {
	values := []float64{1, 1, 3, 3}
	got := Resample(values, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Resample = %v", got)
	}
	// width >= len copies.
	cp := Resample(values, 10)
	if len(cp) != 4 {
		t.Fatalf("oversized Resample = %v", cp)
	}
	cp[0] = 99
	if values[0] == 99 {
		t.Fatal("Resample aliased input")
	}
	// Mean is preserved by bucket-averaging with equal buckets.
	many := make([]float64, 64)
	sum := 0.0
	for i := range many {
		many[i] = float64(i % 7)
		sum += many[i]
	}
	r := Resample(many, 8)
	rsum := 0.0
	for _, v := range r {
		rsum += v
	}
	if math.Abs(rsum/8-sum/64) > 1e-9 {
		t.Fatalf("resample changed mean: %v vs %v", rsum/8, sum/64)
	}
}

func TestSummarizeAllSeries(t *testing.T) {
	tr := sampleTrace(t, "Spark-lr")
	sums := Summarize(tr, 30)
	if len(sums) != int(metrics.NumSeries) {
		t.Fatalf("summaries for %d series, want %d", len(sums), metrics.NumSeries)
	}
	for _, s := range sums {
		if s.Name == "" || s.Spark == "" {
			t.Fatalf("incomplete summary %+v", s)
		}
		if s.Stats.N != tr.Len() {
			t.Fatalf("summary N %d, want %d", s.Stats.N, tr.Len())
		}
	}
}

func TestSegmentsCoverTrace(t *testing.T) {
	tr := sampleTrace(t, "Hadoop-terasort")
	segs := Segments(tr)
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	samples := 0
	for i, seg := range segs {
		if seg.Samples <= 0 || seg.DurationSec <= 0 {
			t.Fatalf("degenerate segment %+v", seg)
		}
		samples += seg.Samples
		if i > 0 && segs[i-1].Kind == seg.Kind {
			t.Fatal("adjacent segments share a kind (not maximal)")
		}
	}
	if samples != tr.Len() {
		t.Fatalf("segments cover %d samples, trace has %d", samples, tr.Len())
	}
}

func TestPhaseSharesSumToOne(t *testing.T) {
	tr := sampleTrace(t, "Spark-kmeans")
	shares := PhaseShares(tr)
	total := 0.0
	for _, v := range shares {
		if v < 0 || v > 1 {
			t.Fatalf("share out of range: %v", shares)
		}
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("shares sum to %v", total)
	}
}

func TestComputeBoundWorkloadIsComputeDominant(t *testing.T) {
	tr := sampleTrace(t, "Spark-lr")
	shares := PhaseShares(tr)
	if shares[PhaseCompute] < 0.4 {
		t.Fatalf("Spark-lr compute share = %v, want dominant", shares[PhaseCompute])
	}
}

func TestShuffleWorkloadShowsShuffle(t *testing.T) {
	tr := sampleTrace(t, "Spark-sort")
	shares := PhaseShares(tr)
	if shares[PhaseShuffle]+shares[PhaseIO] < 0.25 {
		t.Fatalf("Spark-sort shuffle+io share = %v, want substantial", shares[PhaseShuffle]+shares[PhaseIO])
	}
}

func TestRenderContainsEverything(t *testing.T) {
	tr := sampleTrace(t, "Spark-lr")
	out := Render(tr, 24)
	for _, want := range []string{"trace:", "cpu.user", "net.recv", "phase timeline:", "shares:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestEmptyTraceSegments(t *testing.T) {
	if Segments(&metrics.Trace{SampleSec: 5}) != nil {
		t.Fatal("empty trace produced segments")
	}
}
