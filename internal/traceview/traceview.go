// Package traceview analyzes and renders collector traces: per-series
// summaries, ASCII sparklines, and phase segmentation that recovers the BSP
// structure (read/compute/shuffle/sync) from the raw samples — the kind of
// inspection the paper's authors would do against their MySQL collector
// database when debugging a workload's correlation vector.
package traceview

import (
	"fmt"
	"strings"

	"vesta/internal/metrics"
	"vesta/internal/stats"
)

// sparkRunes are the eight-level sparkline glyphs.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a fixed-width ASCII sparkline. Values are
// normalized to the series' own [min, max]; a constant series renders as a
// flat low line. width <= 0 uses one glyph per sample.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	resampled := Resample(values, width)
	lo, hi := stats.MinMax(resampled)
	var sb strings.Builder
	for _, v := range resampled {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// Resample reduces (or keeps) a series to width points by averaging equal
// time buckets. width <= 0 or width >= len returns a copy.
func Resample(values []float64, width int) []float64 {
	if width <= 0 || width >= len(values) {
		return append([]float64(nil), values...)
	}
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := i * len(values) / width
		hi := (i + 1) * len(values) / width
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// SeriesSummary is the descriptive view of one metric series.
type SeriesSummary struct {
	ID    metrics.SeriesID
	Name  string
	Stats stats.Summary
	Spark string
}

// Summarize produces a summary for every series of the trace, with
// sparklines of the given width.
func Summarize(tr *metrics.Trace, width int) []SeriesSummary {
	out := make([]SeriesSummary, 0, metrics.NumSeries)
	for id := metrics.SeriesID(0); id < metrics.NumSeries; id++ {
		out = append(out, SeriesSummary{
			ID:    id,
			Name:  id.String(),
			Stats: stats.Summarize(tr.Series[id]),
			Spark: Sparkline(tr.Series[id], width),
		})
	}
	return out
}

// PhaseKind is the coarse activity class recovered from a sample.
type PhaseKind string

// Recovered phase classes.
const (
	PhaseCompute PhaseKind = "compute"
	PhaseIO      PhaseKind = "io"
	PhaseShuffle PhaseKind = "shuffle"
	PhaseIdle    PhaseKind = "idle"
)

// Segment is a maximal run of samples with the same recovered phase.
type Segment struct {
	Kind        PhaseKind
	StartSec    float64
	DurationSec float64
	Samples     int
}

// classify assigns a sample to the dominant activity.
func classify(tr *metrics.Trace, i int) PhaseKind {
	cpu := tr.Series[metrics.CPUUser][i]
	disk := tr.Series[metrics.DiskRead][i] + tr.Series[metrics.DiskWrite][i]
	net := tr.Series[metrics.NetSend][i] + tr.Series[metrics.NetRecv][i]
	switch {
	case net > 0.6 && net >= disk:
		return PhaseShuffle
	case disk > 0.5:
		return PhaseIO
	case cpu > 0.4:
		return PhaseCompute
	default:
		return PhaseIdle
	}
}

// Segments recovers the phase structure of a trace: consecutive samples of
// the same class are merged into segments.
func Segments(tr *metrics.Trace) []Segment {
	n := tr.Len()
	if n == 0 {
		return nil
	}
	var out []Segment
	cur := Segment{Kind: classify(tr, 0), StartSec: 0, Samples: 1}
	for i := 1; i < n; i++ {
		k := classify(tr, i)
		if k == cur.Kind {
			cur.Samples++
			continue
		}
		cur.DurationSec = float64(cur.Samples) * tr.SampleSec
		out = append(out, cur)
		cur = Segment{Kind: k, StartSec: float64(i) * tr.SampleSec, Samples: 1}
	}
	cur.DurationSec = float64(cur.Samples) * tr.SampleSec
	out = append(out, cur)
	return out
}

// PhaseShares aggregates segment durations into per-class fractions of the
// trace (summing to 1 for non-empty traces).
func PhaseShares(tr *metrics.Trace) map[PhaseKind]float64 {
	shares := map[PhaseKind]float64{}
	total := 0.0
	for _, seg := range Segments(tr) {
		shares[seg.Kind] += seg.DurationSec
		total += seg.DurationSec
	}
	if total > 0 {
		for k := range shares {
			shares[k] /= total
		}
	}
	return shares
}

// Render produces a human-readable report of the trace: one line per series
// (sparkline + mean/p90) followed by the recovered phase timeline.
func Render(tr *metrics.Trace, width int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace: %d samples every %.1fs (%.0fs total)\n",
		tr.Len(), tr.SampleSec, tr.Duration())
	for _, s := range Summarize(tr, width) {
		fmt.Fprintf(&sb, "  %-14s %s  mean=%.2f p90=%.2f\n", s.Name, s.Spark, s.Stats.Mean, s.Stats.P90)
	}
	sb.WriteString("  phase timeline: ")
	for i, seg := range Segments(tr) {
		if i > 0 {
			sb.WriteString(" -> ")
		}
		fmt.Fprintf(&sb, "%s(%.0fs)", seg.Kind, seg.DurationSec)
	}
	sb.WriteString("\n  shares: ")
	shares := PhaseShares(tr)
	for _, k := range []PhaseKind{PhaseCompute, PhaseIO, PhaseShuffle, PhaseIdle} {
		fmt.Fprintf(&sb, "%s %.0f%%  ", k, shares[k]*100)
	}
	sb.WriteString("\n")
	return sb.String()
}
