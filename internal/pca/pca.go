// Package pca implements Principal Components Analysis over the correlation
// feature vectors. Vesta uses it to measure the *importance* of each Table 1
// correlation (Figure 9) and to prune irrelevant features before the K-Means
// grouping (Section 3.1 reports that about 49% of useless data can be
// removed this way).
package pca

import (
	"fmt"
	"math"

	"vesta/internal/mat"
	"vesta/internal/stats"
)

// Result is a fitted PCA.
type Result struct {
	// Mean of each input feature (used to center projections).
	Mean []float64
	// Components holds the principal axes as rows, sorted by decreasing
	// explained variance.
	Components *mat.Matrix
	// Explained[i] is the variance captured by component i.
	Explained []float64
	// Ratio[i] is Explained[i] / total variance.
	Ratio []float64
	// Importance[j] is the importance index of input feature j: the sum over
	// components of |loading| weighted by the component's explained-variance
	// ratio, normalized to sum to 1. This is the quantity Figure 9 plots.
	Importance []float64
}

// Fit runs PCA on the samples (rows = observations, cols = features).
// It needs at least two samples and one feature.
func Fit(samples [][]float64) (*Result, error) {
	n := len(samples)
	if n < 2 {
		return nil, fmt.Errorf("pca: need at least 2 samples, got %d", n)
	}
	d := len(samples[0])
	if d == 0 {
		return nil, fmt.Errorf("pca: zero-dimensional samples")
	}
	for i, s := range samples {
		if len(s) != d {
			return nil, fmt.Errorf("pca: sample %d has dim %d, want %d", i, len(s), d)
		}
	}

	// Center.
	mean := make([]float64, d)
	for _, s := range samples {
		mat.AXPY(1, s, mean)
	}
	for j := range mean {
		mean[j] /= float64(n)
	}

	// Covariance matrix.
	cov := mat.New(d, d)
	for _, s := range samples {
		for i := 0; i < d; i++ {
			di := s[i] - mean[i]
			for j := i; j < d; j++ {
				cov.Add(i, j, di*(s[j]-mean[j]))
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			v := cov.At(i, j) / float64(n)
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}

	eig := mat.SymEigen(cov)
	total := 0.0
	for _, v := range eig.Values {
		if v > 0 {
			total += v
		}
	}
	explained := make([]float64, d)
	ratio := make([]float64, d)
	for i, v := range eig.Values {
		if v < 0 {
			v = 0 // numeric jitter on rank-deficient data
		}
		explained[i] = v
		if total > 0 {
			ratio[i] = v / total
		}
	}

	// Components as rows: component i = eigenvector column i.
	comps := eig.Vectors.T()

	// Feature importance: variance-ratio-weighted absolute loadings.
	importance := make([]float64, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			importance[j] += ratio[i] * math.Abs(comps.At(i, j))
		}
	}
	sum := 0.0
	for _, v := range importance {
		sum += v
	}
	if sum > 0 {
		for j := range importance {
			importance[j] /= sum
		}
	}

	return &Result{
		Mean: mean, Components: comps,
		Explained: explained, Ratio: ratio, Importance: importance,
	}, nil
}

// Transform projects a sample onto the first k principal components.
func (r *Result) Transform(sample []float64, k int) []float64 {
	d := len(r.Mean)
	if len(sample) != d {
		panic(fmt.Sprintf("pca: sample dim %d, want %d", len(sample), d))
	}
	if k < 1 || k > r.Components.Rows {
		panic(fmt.Sprintf("pca: k=%d out of range", k))
	}
	centered := make([]float64, d)
	for j := range centered {
		centered[j] = sample[j] - r.Mean[j]
	}
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		out[i] = mat.Dot(r.Components.Row(i), centered)
	}
	return out
}

// ComponentsFor returns the smallest number of leading components whose
// cumulative explained-variance ratio reaches frac (e.g. 0.95).
func (r *Result) ComponentsFor(frac float64) int {
	acc := 0.0
	for i, v := range r.Ratio {
		acc += v
		if acc >= frac {
			return i + 1
		}
	}
	return len(r.Ratio)
}

// SelectFeatures returns the indices of features whose importance index is
// at least threshold x the mean importance, in descending importance order.
// This is Vesta's irrelevant-information pruning: with the paper's data it
// drops roughly half the inputs.
func (r *Result) SelectFeatures(threshold float64) []int {
	meanImp := stats.Mean(r.Importance)
	type fi struct {
		idx int
		imp float64
	}
	var keep []fi
	for j, v := range r.Importance {
		if v >= threshold*meanImp {
			keep = append(keep, fi{j, v})
		}
	}
	// Sort by importance descending (insertion sort: d is tiny).
	for i := 1; i < len(keep); i++ {
		for j := i; j > 0 && keep[j].imp > keep[j-1].imp; j-- {
			keep[j], keep[j-1] = keep[j-1], keep[j]
		}
	}
	out := make([]int, len(keep))
	for i, f := range keep {
		out[i] = f.idx
	}
	return out
}

// PrunedFraction returns the fraction of features dropped by
// SelectFeatures(threshold) — the "49% useless data" number of Section 5.3.
func (r *Result) PrunedFraction(threshold float64) float64 {
	kept := len(r.SelectFeatures(threshold))
	return 1 - float64(kept)/float64(len(r.Importance))
}
