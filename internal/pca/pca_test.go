package pca

import (
	"math"
	"testing"

	"vesta/internal/rng"
)

// correlatedSamples builds samples where feature 0 carries most variance,
// feature 1 = feature 0 plus noise, and feature 2 is near-constant.
func correlatedSamples(src *rng.Source, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		base := src.Range(-10, 10)
		out[i] = []float64{base, base + src.Norm(0, 0.2), src.Norm(0, 0.05)}
	}
	return out
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := Fit([][]float64{{1, 2}}); err == nil {
		t.Fatal("single sample should error")
	}
	if _, err := Fit([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged samples should error")
	}
	if _, err := Fit([][]float64{{}, {}}); err == nil {
		t.Fatal("zero-dim samples should error")
	}
}

func TestExplainedVarianceOrdering(t *testing.T) {
	src := rng.New(1)
	r, err := Fit(correlatedSamples(src, 200))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(r.Explained); i++ {
		if r.Explained[i] > r.Explained[i-1]+1e-9 {
			t.Fatalf("explained variance not descending: %v", r.Explained)
		}
	}
	// First component must dominate (features 0 and 1 move together).
	if r.Ratio[0] < 0.9 {
		t.Fatalf("first component ratio = %v, want > 0.9", r.Ratio[0])
	}
}

func TestRatiosSumToOne(t *testing.T) {
	src := rng.New(2)
	r, err := Fit(correlatedSamples(src, 100))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range r.Ratio {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ratios sum to %v", sum)
	}
}

func TestImportanceIdentifiesNoiseFeature(t *testing.T) {
	src := rng.New(3)
	r, err := Fit(correlatedSamples(src, 300))
	if err != nil {
		t.Fatal(err)
	}
	// Feature 2 is near-constant: lowest importance.
	if !(r.Importance[2] < r.Importance[0] && r.Importance[2] < r.Importance[1]) {
		t.Fatalf("importance = %v; noise feature should rank last", r.Importance)
	}
	sum := 0.0
	for _, v := range r.Importance {
		if v < 0 {
			t.Fatalf("negative importance %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importance sums to %v", sum)
	}
}

func TestTransformReducesDimension(t *testing.T) {
	src := rng.New(4)
	samples := correlatedSamples(src, 100)
	r, _ := Fit(samples)
	p := r.Transform(samples[0], 2)
	if len(p) != 2 {
		t.Fatalf("Transform returned %d dims", len(p))
	}
}

func TestTransformPreservesDistancesInFullSpace(t *testing.T) {
	// Full-rank projection is a rotation: pairwise distances preserved.
	src := rng.New(5)
	samples := correlatedSamples(src, 50)
	r, _ := Fit(samples)
	d := len(samples[0])
	orig := dist(samples[3], samples[7])
	proj := dist(r.Transform(samples[3], d), r.Transform(samples[7], d))
	if math.Abs(orig-proj) > 1e-9 {
		t.Fatalf("full-space projection changed distance: %v vs %v", orig, proj)
	}
}

func dist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += (a[i] - b[i]) * (a[i] - b[i])
	}
	return math.Sqrt(s)
}

func TestTransformPanics(t *testing.T) {
	src := rng.New(6)
	r, _ := Fit(correlatedSamples(src, 20))
	defer func() {
		if recover() == nil {
			t.Fatal("bad Transform args did not panic")
		}
	}()
	r.Transform([]float64{1}, 1)
}

func TestComponentsFor(t *testing.T) {
	src := rng.New(7)
	r, _ := Fit(correlatedSamples(src, 200))
	if k := r.ComponentsFor(0.9); k != 1 {
		t.Fatalf("ComponentsFor(0.9) = %d, want 1 (dominant first axis)", k)
	}
	if k := r.ComponentsFor(1.0); k != 3 {
		t.Fatalf("ComponentsFor(1.0) = %d, want all 3", k)
	}
}

func TestSelectFeaturesDropsNoise(t *testing.T) {
	src := rng.New(8)
	r, _ := Fit(correlatedSamples(src, 300))
	kept := r.SelectFeatures(0.8)
	for _, j := range kept {
		if j == 2 {
			t.Fatalf("noise feature 2 survived selection: %v", kept)
		}
	}
	if len(kept) == 0 {
		t.Fatal("selection dropped everything")
	}
	// Descending importance order.
	for i := 1; i < len(kept); i++ {
		if r.Importance[kept[i]] > r.Importance[kept[i-1]] {
			t.Fatal("SelectFeatures not sorted by importance")
		}
	}
	frac := r.PrunedFraction(0.8)
	if frac <= 0 || frac >= 1 {
		t.Fatalf("PrunedFraction = %v", frac)
	}
}

func TestConstantDataDoesNotCrash(t *testing.T) {
	samples := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	r, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r.Ratio {
		if math.IsNaN(v) {
			t.Fatal("NaN ratio on constant data")
		}
	}
}
