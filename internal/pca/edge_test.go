package pca

import (
	"math"
	"testing"
)

// Table-driven degenerate-input tests: constant features, k beyond the data
// rank, too-few samples, ragged inputs. PCA sits at the head of the pruning
// pipeline, so its failure modes must be errors or graceful degradation,
// never NaN propagation.

func TestFitDegenerateInputs(t *testing.T) {
	cases := []struct {
		name    string
		samples [][]float64
		wantErr bool
	}{
		{"no samples", nil, true},
		{"one sample", [][]float64{{1, 2}}, true},
		{"zero-dimensional", [][]float64{{}, {}}, true},
		{"ragged", [][]float64{{1, 2}, {1}}, true},
		{"two identical samples", [][]float64{{1, 2}, {1, 2}}, false},
		{"minimal valid", [][]float64{{1, 2}, {3, 4}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := Fit(tc.samples)
			if tc.wantErr {
				if err == nil {
					t.Fatal("expected error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			for j, v := range r.Importance {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("importance[%d] = %v", j, v)
				}
			}
		})
	}
}

// TestConstantFeature pins the zero-variance path: a feature that never
// moves must not poison the importance index with NaN, and the varying
// feature must dominate it.
func TestConstantFeature(t *testing.T) {
	r, err := Fit([][]float64{
		{5, 1, 0},
		{5, 2, 0},
		{5, 3, 0},
		{5, 4, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range r.Importance {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("importance[%d] = %v", j, v)
		}
	}
	if r.Importance[1] <= r.Importance[0] || r.Importance[1] <= r.Importance[2] {
		t.Fatalf("varying feature not dominant: %v", r.Importance)
	}
	// The explained-variance ratios sum to 1 (all variance accounted for).
	sum := 0.0
	for _, v := range r.Ratio {
		if math.IsNaN(v) {
			t.Fatalf("NaN ratio: %v", r.Ratio)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ratio sum = %v", sum)
	}
}

// TestAllConstant pins total degeneracy: zero variance everywhere. The fit
// succeeds, importance collapses to zeros, and SelectFeatures keeps every
// feature (0 >= threshold*0) rather than crashing or dropping all of them.
func TestAllConstant(t *testing.T) {
	r, err := Fit([][]float64{{7, 7}, {7, 7}, {7, 7}})
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range r.Importance {
		if v != 0 {
			t.Fatalf("importance[%d] = %v, want 0", j, v)
		}
	}
	if got := len(r.SelectFeatures(1.0)); got != 2 {
		t.Fatalf("kept %d features, want 2", got)
	}
	if f := r.PrunedFraction(1.0); f != 0 {
		t.Fatalf("pruned fraction = %v", f)
	}
	// Zero variance: every component count "explains" everything.
	if k := r.ComponentsFor(0.95); k < 1 || k > 2 {
		t.Fatalf("ComponentsFor = %d", k)
	}
}

// TestTransformBounds pins the k > rank contract: Transform panics on k
// outside [1, rows(components)] instead of silently truncating, and the
// caller-facing ComponentsFor never returns an out-of-range k.
func TestTransformBounds(t *testing.T) {
	r, err := Fit([][]float64{{1, 2}, {3, 5}, {4, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Transform([]float64{1, 2}, 1); len(got) != 1 {
		t.Fatalf("Transform k=1 len = %d", len(got))
	}
	max := r.Components.Rows
	if got := r.Transform([]float64{1, 2}, max); len(got) != max {
		t.Fatalf("Transform k=max len = %d", len(got))
	}
	for name, f := range map[string]func(){
		"k=0":        func() { r.Transform([]float64{1, 2}, 0) },
		"k>rank":     func() { r.Transform([]float64{1, 2}, max+1) },
		"wrong dim":  func() { r.Transform([]float64{1}, 1) },
		"negative k": func() { r.Transform([]float64{1, 2}, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
	// ComponentsFor clamps to the available components for any fraction.
	for _, frac := range []float64{-1, 0, 0.5, 1, 2} {
		if k := r.ComponentsFor(frac); k < 1 || k > max {
			t.Fatalf("ComponentsFor(%v) = %d out of [1, %d]", frac, k, max)
		}
	}
}
