package metrics

import (
	"math"
	"strings"
	"testing"

	"vesta/internal/rng"
)

// syntheticTrace builds a trace whose CPU and RAM rise together while disk
// falls, giving known correlation signs.
func syntheticTrace(n int) *Trace {
	tr := &Trace{SampleSec: 5}
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n-1)
		for id := SeriesID(0); id < NumSeries; id++ {
			var v float64
			switch id {
			case CPUUser, RAMUsed:
				v = 0.2 + 0.7*f
			case DiskRead, DiskWrite:
				v = 0.9 - 0.8*f
			case NetSend, NetRecv:
				v = 0.1 + 0.6*f
			case BufferUsed:
				v = 0.3 + 0.4*f
			case CacheUsed:
				v = 0.35 + 0.38*f
			case TasksSyncStep:
				v = 0.9 - 0.85*f
			default:
				v = 0.1 + 0.05*math.Sin(float64(i))
			}
			tr.Series[id] = append(tr.Series[id], v)
		}
	}
	return tr
}

func TestSeriesNames(t *testing.T) {
	if NumSeries != 17 {
		t.Fatalf("NumSeries = %d, want 17", NumSeries)
	}
	seen := map[string]bool{}
	for id := SeriesID(0); id < NumSeries; id++ {
		name := id.String()
		if name == "" || strings.HasPrefix(name, "series(") {
			t.Fatalf("series %d has no name", id)
		}
		if seen[name] {
			t.Fatalf("duplicate series name %q", name)
		}
		seen[name] = true
	}
	if !strings.HasPrefix(SeriesID(99).String(), "series(") {
		t.Fatal("out-of-range SeriesID should fall back to numeric form")
	}
}

func TestTwentyMetricsTotal(t *testing.T) {
	// 17 sampled series + 3 scalar ratios = the paper's 20 low-level metrics.
	scalars := 3
	if int(NumSeries)+scalars != 20 {
		t.Fatalf("metric inventory = %d, want 20", int(NumSeries)+scalars)
	}
}

func TestTraceValidate(t *testing.T) {
	tr := syntheticTrace(20)
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if tr.Len() != 20 || tr.Duration() != 100 {
		t.Fatalf("Len/Duration = %d/%v", tr.Len(), tr.Duration())
	}
}

func TestTraceValidateCatchesRagged(t *testing.T) {
	tr := syntheticTrace(10)
	tr.Series[DiskRead] = tr.Series[DiskRead][:5]
	if err := tr.Validate(); err == nil {
		t.Fatal("ragged trace passed validation")
	}
}

func TestTraceValidateCatchesNaN(t *testing.T) {
	tr := syntheticTrace(10)
	tr.Series[CPUUser][3] = math.NaN()
	if err := tr.Validate(); err == nil {
		t.Fatal("NaN trace passed validation")
	}
}

func TestTraceValidateEmpty(t *testing.T) {
	tr := &Trace{SampleSec: 5}
	if err := tr.Validate(); err == nil {
		t.Fatal("empty trace passed validation")
	}
}

func TestCorrelationSigns(t *testing.T) {
	tr := syntheticTrace(50)
	ex := ExecStats{
		TasksCompute: 100, TasksComm: 20, TasksSync: 10,
		DataPerCycle: 0.2, DataPerIteration: 1, DataPerParallelism: 0.125,
	}
	c := Correlations(tr, ex)
	if !c.Valid() {
		t.Fatalf("invalid correlation vector: %v", c)
	}
	if c[CPUToMemory] < 0.9 {
		t.Fatalf("CPU-to-memory = %v, want strongly positive", c[CPUToMemory])
	}
	if c[MemoryToDisk] > -0.9 {
		t.Fatalf("memory-to-disk = %v, want strongly negative", c[MemoryToDisk])
	}
	if c[BufferToCache] < 0.9 {
		t.Fatalf("buffer-to-cache = %v, want strongly positive", c[BufferToCache])
	}
	if c[DiskToSync] < 0.9 {
		t.Fatalf("disk-to-sync = %v, want positive (both fall together)", c[DiskToSync])
	}
	// Compute-dominated: positive data-to-computation.
	if c[DataToComputation] <= 0 {
		t.Fatalf("data-to-computation = %v, want positive", c[DataToComputation])
	}
	// 10 supersteps vs 8 tasks per superstep -> mildly iteration-leaning.
	if c[IterationToParallelism] <= 0 {
		t.Fatalf("iteration-to-parallelism = %v, want positive", c[IterationToParallelism])
	}
}

func TestCorrelationNamesComplete(t *testing.T) {
	if NumCorrelations != 10 {
		t.Fatalf("NumCorrelations = %d, want 10 (Table 1)", NumCorrelations)
	}
	for i, n := range CorrelationNames {
		if n == "" {
			t.Fatalf("correlation %d unnamed", i)
		}
	}
	s := (CorrVector{}).String()
	for _, n := range CorrelationNames {
		if !strings.Contains(s, n) {
			t.Fatalf("String() missing %q", n)
		}
	}
}

func TestBoundedRatio(t *testing.T) {
	if boundedRatio(0, 0) != 0 {
		t.Fatal("boundedRatio(0,0) != 0")
	}
	if boundedRatio(5, 0) != 1 {
		t.Fatal("boundedRatio(5,0) != 1")
	}
	if boundedRatio(0, 5) != -1 {
		t.Fatal("boundedRatio(0,5) != -1")
	}
	if boundedRatio(3, 3) != 0 {
		t.Fatal("boundedRatio(3,3) != 0")
	}
}

func TestCorrVectorValid(t *testing.T) {
	good := CorrVector{0.5, -0.5}
	if !good.Valid() {
		t.Fatal("in-range vector reported invalid")
	}
	bad := CorrVector{1.5}
	if bad.Valid() {
		t.Fatal("out-of-range vector reported valid")
	}
	nan := CorrVector{math.NaN()}
	if nan.Valid() {
		t.Fatal("NaN vector reported valid")
	}
}

func TestCorrVectorSliceCopies(t *testing.T) {
	c := CorrVector{0.1, 0.2}
	s := c.Slice()
	s[0] = 9
	if c[0] != 0.1 {
		t.Fatal("Slice did not copy")
	}
	if len(s) != NumCorrelations {
		t.Fatalf("Slice length %d", len(s))
	}
}

func TestDistance(t *testing.T) {
	a := CorrVector{}
	b := CorrVector{}
	b[0] = 3
	b[1] = 4
	if math.Abs(Distance(a, b)-5) > 1e-12 {
		t.Fatalf("Distance = %v, want 5", Distance(a, b))
	}
	if Distance(a, a) != 0 {
		t.Fatal("self-distance not 0")
	}
}

func TestInterval(t *testing.T) {
	cases := map[float64]float64{
		0.57:  0.55,
		0.55:  0.55,
		-0.02: -0.05,
		0:     0,
	}
	for in, want := range cases {
		if got := Interval(in); math.Abs(got-want) > 1e-9 {
			t.Fatalf("Interval(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestCorrelationsStableUnderNoise(t *testing.T) {
	// Adding small noise must not flip strong correlations.
	src := rng.New(42)
	tr := syntheticTrace(80)
	for id := SeriesID(0); id < NumSeries; id++ {
		for i := range tr.Series[id] {
			tr.Series[id][i] += src.Norm(0, 0.02)
		}
	}
	c := Correlations(tr, ExecStats{TasksCompute: 10, TasksComm: 10, TasksSync: 5,
		DataPerCycle: 1, DataPerIteration: 1, DataPerParallelism: 1})
	if c[CPUToMemory] < 0.8 || c[MemoryToDisk] > -0.8 {
		t.Fatalf("noise destroyed strong correlations: %v", c)
	}
}
