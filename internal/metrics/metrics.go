// Package metrics defines the low-level metrics Vesta's Data Collector
// gathers during a workload run, and derives from them the high-level
// "correlation similarity" features of the paper's Table 1.
//
// The paper collects 20 low-level metrics. We reproduce the inventory as 17
// sampled time series (resource utilizations plus per-step task activity,
// sampled every 5 seconds like the paper's collector) and 3 scalar execution
// ratios:
//
//	CPU      : user, system, idle, iowait rates        (4 series)
//	memory   : RAM, buffer, cache usage, swap rate     (4 series)
//	disk     : read rate, write rate, utilization      (3 series)
//	network  : send, receive, drop rates               (3 series)
//	steps    : tasks active in computation /
//	           communication / synchronization steps   (3 series)
//	ratios   : data-to-cycles, data-to-iterations,
//	           data-to-parallelism                     (3 scalars)
package metrics

import (
	"fmt"
	"math"

	"vesta/internal/stats"
)

// SeriesID identifies one sampled low-level metric time series.
type SeriesID int

// The 17 sampled series.
const (
	CPUUser SeriesID = iota
	CPUSystem
	CPUIdle
	CPUIOWait
	RAMUsed
	BufferUsed
	CacheUsed
	SwapRate
	DiskRead
	DiskWrite
	DiskUtil
	NetSend
	NetRecv
	NetDrop
	TasksComputeStep
	TasksCommStep
	TasksSyncStep
	NumSeries // sentinel
)

// seriesNames is indexed by SeriesID.
var seriesNames = [NumSeries]string{
	"cpu.user", "cpu.system", "cpu.idle", "cpu.iowait",
	"mem.ram", "mem.buffer", "mem.cache", "mem.swap",
	"disk.read", "disk.write", "disk.util",
	"net.send", "net.recv", "net.drop",
	"tasks.compute", "tasks.comm", "tasks.sync",
}

// String returns the collector name of the series.
func (s SeriesID) String() string {
	if s < 0 || s >= NumSeries {
		return fmt.Sprintf("series(%d)", int(s))
	}
	return seriesNames[s]
}

// Trace is the sampled record of one workload run, as stored by the paper's
// Data Collector (5-second average resource utilizations).
type Trace struct {
	SampleSec float64
	Series    [NumSeries][]float64
	// Partial marks a trace cut short because the run was killed mid-flight
	// (spot preemption, OOM); its samples are genuine but do not cover the
	// whole execution.
	Partial bool
	// Dropped counts samples lost to metric-collector dropout. A dropped
	// sample is present in every series as NaN (the collector missed the
	// whole tick, not individual metrics).
	Dropped int
}

// Len returns the number of samples in the trace.
func (t *Trace) Len() int { return len(t.Series[0]) }

// Duration returns the wall-clock span covered by the trace.
func (t *Trace) Duration() float64 { return float64(t.Len()) * t.SampleSec }

// Validate checks internal consistency: equal series lengths, utilization
// series within [0, 1], and at least one sample.
func (t *Trace) Validate() error {
	n := t.Len()
	if n == 0 {
		return fmt.Errorf("metrics: empty trace")
	}
	if t.SampleSec <= 0 {
		return fmt.Errorf("metrics: non-positive sample interval %v", t.SampleSec)
	}
	for id := SeriesID(0); id < NumSeries; id++ {
		if len(t.Series[id]) != n {
			return fmt.Errorf("metrics: series %v has %d samples, want %d", id, len(t.Series[id]), n)
		}
		for i, v := range t.Series[id] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("metrics: series %v sample %d is %v", id, i, v)
			}
			if v < -1e-9 {
				return fmt.Errorf("metrics: series %v sample %d negative (%v)", id, i, v)
			}
		}
	}
	return nil
}

// ExecStats are the scalar execution metrics of a run: the step task counts
// aggregated over the job plus the three data-size ratios from Section 3.1.
type ExecStats struct {
	TasksCompute float64 // total tasks across computation steps
	TasksComm    float64 // total tasks across communication steps
	TasksSync    float64 // total synchronization barriers entered
	// DataPerCycle is input GB per billion CPU cycles consumed.
	DataPerCycle float64
	// DataPerIteration is input GB per BSP superstep.
	DataPerIteration float64
	// DataPerParallelism is input GB per parallel task slot used.
	DataPerParallelism float64
}

// minCompleteSamples is the minimum number of NaN-free samples required for
// a correlation vector to be computed from a dropout-damaged trace.
const minCompleteSamples = 3

// hasNaNSample reports whether any series contains a NaN sample.
func hasNaNSample(t *Trace) bool {
	for id := SeriesID(0); id < NumSeries; id++ {
		for _, v := range t.Series[id] {
			if math.IsNaN(v) {
				return true
			}
		}
	}
	return false
}

// completeSamples returns a copy of t containing only the samples that are
// NaN-free across all series (listwise deletion of collector-dropout gaps).
func completeSamples(t *Trace) *Trace {
	n := t.Len()
	keep := make([]int, 0, n)
sample:
	for i := 0; i < n; i++ {
		for id := SeriesID(0); id < NumSeries; id++ {
			if math.IsNaN(t.Series[id][i]) {
				continue sample
			}
		}
		keep = append(keep, i)
	}
	out := &Trace{SampleSec: t.SampleSec, Partial: t.Partial, Dropped: n - len(keep)}
	for id := SeriesID(0); id < NumSeries; id++ {
		s := make([]float64, len(keep))
		for j, i := range keep {
			s[j] = t.Series[id][i]
		}
		out.Series[id] = s
	}
	return out
}

// sum returns a pointwise sum of two series.
func sum(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Correlation feature indices — the 10 high-level similarities of Table 1.
const (
	CPUToMemory = iota
	MemoryToDisk
	DiskToNetwork
	BufferToCache
	CPUToNetwork
	IterationToParallelism
	DataToComputation
	DataToCycle
	DiskToSync
	NetworkToSync
	NumCorrelations // sentinel
)

// CorrelationNames lists the Table 1 feature names, indexed like CorrVector.
var CorrelationNames = [NumCorrelations]string{
	"CPU-to-memory",
	"memory-to-disk",
	"disk-to-network",
	"buffer-to-cache",
	"CPU-to-network",
	"iteration-to-parallelism",
	"data-to-computation",
	"data-to-cycle",
	"disk-to-synchronization",
	"network-to-synchronization",
}

// CorrVector is the 10-dimensional correlation-similarity feature vector,
// every component normalized to [-1, 1] (Section 3.1).
type CorrVector [NumCorrelations]float64

// Slice returns the vector as a []float64 (a copy).
func (c CorrVector) Slice() []float64 {
	out := make([]float64, NumCorrelations)
	copy(out, c[:])
	return out
}

// Valid reports whether every component is inside [-1, 1].
func (c CorrVector) Valid() bool {
	for _, v := range c {
		if math.IsNaN(v) || v < -1 || v > 1 {
			return false
		}
	}
	return true
}

// String renders the vector with feature names.
func (c CorrVector) String() string {
	s := ""
	for i, v := range c {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=%.2f", CorrelationNames[i], v)
	}
	return s
}

// boundedRatio maps the balance between two non-negative quantities onto
// [-1, 1]: +1 when a dominates, -1 when b dominates, 0 when equal or both
// are zero.
func boundedRatio(a, b float64) float64 {
	if a <= 0 && b <= 0 {
		return 0
	}
	return (a - b) / (a + b)
}

// Correlations derives the Table 1 feature vector from a run trace and its
// execution stats. Resource correlations are Pearson coefficients between
// the relevant sampled series; execution correlations are bounded ratios of
// the scalar execution metrics (both normalized to [-1, 1] like the paper's
// correlation values).
func Correlations(tr *Trace, ex ExecStats) CorrVector {
	// Collector dropout leaves NaN samples; correlate over the complete
	// samples only (listwise deletion). Fewer than minCompleteSamples
	// survivors means the trace is too corrupt for a meaningful Pearson —
	// return an all-NaN vector so callers can quarantine the run. Clean
	// traces take the fast path untouched.
	if tr.Dropped > 0 || hasNaNSample(tr) {
		tr = completeSamples(tr)
		if tr.Len() < minCompleteSamples {
			var c CorrVector
			for i := range c {
				c[i] = math.NaN()
			}
			return c
		}
	}
	disk := sum(tr.Series[DiskRead], tr.Series[DiskWrite])
	net := sum(tr.Series[NetSend], tr.Series[NetRecv])

	var c CorrVector
	c[CPUToMemory] = stats.Pearson(tr.Series[CPUUser], tr.Series[RAMUsed])
	c[MemoryToDisk] = stats.Pearson(tr.Series[RAMUsed], disk)
	c[DiskToNetwork] = stats.Pearson(disk, net)
	c[BufferToCache] = stats.Pearson(tr.Series[BufferUsed], tr.Series[CacheUsed])
	c[CPUToNetwork] = stats.Pearson(tr.Series[CPUUser], net)

	// iteration-to-parallelism: positive = prefers a "thin" cluster (many
	// iterations), negative = prefers a "fat" cluster (wide parallelism).
	iterations := ex.TasksSync // one barrier per superstep
	parallelism := 0.0
	if ex.DataPerParallelism > 0 {
		parallelism = ex.DataPerIteration / ex.DataPerParallelism // tasks per superstep
	}
	c[IterationToParallelism] = boundedRatio(iterations, parallelism)

	// data-to-computation: positive = many computation phases relative to
	// data movement.
	c[DataToComputation] = boundedRatio(ex.TasksCompute, ex.TasksComm)

	// data-to-cycle: positive = data-starved (lots of cycles per byte),
	// negative = scan-dominated. DataPerCycle around 1 GB per billion cycles
	// is the neutral point.
	c[DataToCycle] = boundedRatio(1, ex.DataPerCycle)

	c[DiskToSync] = stats.Pearson(disk, tr.Series[TasksSyncStep])
	c[NetworkToSync] = stats.Pearson(net, tr.Series[TasksSyncStep])
	return c
}

// Distance returns the Euclidean distance between two correlation vectors,
// the measure used in Figure 10's VM-type consistency analysis.
func Distance(a, b CorrVector) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Interval buckets a correlation value into the paper's 0.05-wide intervals
// (Section 5.3, Figure 10), returning the lower bound of the bucket.
func Interval(v float64) float64 {
	return math.Floor(v/0.05) * 0.05
}
