// Package gp implements Gaussian Process regression with an RBF kernel —
// the surrogate model behind CherryPick's Bayesian optimization (Alipourfard
// et al., NSDI'17), which the paper's related work discusses as the main
// black-box-search alternative to Vesta's transfer learning.
package gp

import (
	"fmt"
	"math"

	"vesta/internal/mat"
)

// Kernel is a positive-definite covariance function over feature vectors.
type Kernel func(a, b []float64) float64

// RBF returns the squared-exponential kernel with the given length scale
// and signal variance.
func RBF(lengthScale, variance float64) Kernel {
	if lengthScale <= 0 || variance <= 0 {
		panic("gp: RBF parameters must be positive")
	}
	return func(a, b []float64) float64 {
		d := mat.Distance(a, b)
		return variance * math.Exp(-d*d/(2*lengthScale*lengthScale))
	}
}

// Matern52 returns the Matern 5/2 kernel, CherryPick's documented choice —
// rougher than RBF, which suits performance surfaces with kinks (memory
// cliffs, burst throttles).
func Matern52(lengthScale, variance float64) Kernel {
	if lengthScale <= 0 || variance <= 0 {
		panic("gp: Matern52 parameters must be positive")
	}
	return func(a, b []float64) float64 {
		d := mat.Distance(a, b) / lengthScale
		s5 := math.Sqrt(5) * d
		return variance * (1 + s5 + 5*d*d/3) * math.Exp(-s5)
	}
}

// GP is a fitted Gaussian Process regressor.
type GP struct {
	kernel Kernel
	noise  float64
	x      [][]float64
	alpha  []float64 // (K + noise I)^-1 y
	chol   *mat.Cholesky
	meanY  float64
}

// Fit conditions a GP on the observations. Targets are internally centered
// on their mean; noise is the observation noise variance added to the
// kernel diagonal (also the jitter that keeps the factorization stable).
func Fit(x [][]float64, y []float64, kernel Kernel, noise float64) (*GP, error) {
	n := len(x)
	if n == 0 {
		return nil, fmt.Errorf("gp: no observations")
	}
	if len(y) != n {
		return nil, fmt.Errorf("gp: %d inputs but %d targets", n, len(y))
	}
	dim := len(x[0])
	for i, xi := range x {
		if len(xi) != dim {
			return nil, fmt.Errorf("gp: input %d has dim %d, want %d", i, len(xi), dim)
		}
	}
	if noise <= 0 {
		noise = 1e-6
	}

	meanY := 0.0
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(n)

	k := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := kernel(x[i], x[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
		k.Add(i, i, noise)
	}
	chol, err := mat.NewCholesky(k)
	if err != nil {
		return nil, fmt.Errorf("gp: kernel matrix not PD: %w", err)
	}
	centered := make([]float64, n)
	for i, v := range y {
		centered[i] = v - meanY
	}
	alpha, err := chol.Solve(centered)
	if err != nil {
		return nil, err
	}
	xs := make([][]float64, n)
	for i := range x {
		xs[i] = append([]float64(nil), x[i]...)
	}
	return &GP{kernel: kernel, noise: noise, x: xs, alpha: alpha, chol: chol, meanY: meanY}, nil
}

// Predict returns the posterior mean and variance at a query point.
func (g *GP) Predict(x []float64) (mean, variance float64) {
	n := len(g.x)
	kstar := make([]float64, n)
	for i := range g.x {
		kstar[i] = g.kernel(g.x[i], x)
	}
	mean = g.meanY + mat.Dot(kstar, g.alpha)
	v, err := g.chol.Solve(kstar)
	if err != nil {
		// Factorization already validated at fit time; a failure here means
		// a dimension mismatch, surfaced as prior variance.
		return mean, g.kernel(x, x)
	}
	variance = g.kernel(x, x) - mat.Dot(kstar, v)
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// ExpectedImprovement computes EI for minimization at x against the current
// best observed value. xi is the exploration margin (CherryPick uses a small
// positive value).
func (g *GP) ExpectedImprovement(x []float64, bestY, xi float64) float64 {
	mean, variance := g.Predict(x)
	sd := math.Sqrt(variance)
	if sd < 1e-12 {
		if improvement := bestY - xi - mean; improvement > 0 {
			return improvement
		}
		return 0
	}
	z := (bestY - xi - mean) / sd
	return (bestY-xi-mean)*stdNormCDF(z) + sd*stdNormPDF(z)
}

func stdNormPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

func stdNormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// LogMarginalLikelihood evaluates the fit's evidence, used to compare kernel
// hyperparameters.
func (g *GP) LogMarginalLikelihood(y []float64) (float64, error) {
	n := len(g.x)
	if len(y) != n {
		return 0, fmt.Errorf("gp: %d targets for %d observations", len(y), n)
	}
	centered := make([]float64, n)
	for i, v := range y {
		centered[i] = v - g.meanY
	}
	fit := mat.Dot(centered, g.alpha)
	return -0.5*fit - 0.5*g.chol.LogDet() - float64(n)/2*math.Log(2*math.Pi), nil
}

// SelectMatern fits one GP per (lengthScale, variance) candidate pair and
// returns the model with the highest log marginal likelihood — the standard
// evidence-maximization hyperparameter choice CherryPick relies on.
func SelectMatern(x [][]float64, y []float64, lengthScales, variances []float64, noise float64) (*GP, error) {
	if len(lengthScales) == 0 || len(variances) == 0 {
		return nil, fmt.Errorf("gp: empty hyperparameter grid")
	}
	var best *GP
	bestLML := math.Inf(-1)
	for _, ls := range lengthScales {
		for _, v := range variances {
			g, err := Fit(x, y, Matern52(ls, v), noise)
			if err != nil {
				continue
			}
			lml, err := g.LogMarginalLikelihood(y)
			if err != nil {
				continue
			}
			if lml > bestLML {
				best, bestLML = g, lml
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("gp: no hyperparameter candidate produced a valid fit")
	}
	return best, nil
}
