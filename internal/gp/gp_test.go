package gp

import (
	"math"
	"testing"

	"vesta/internal/rng"
)

func grid1D(lo, hi float64, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{lo + (hi-lo)*float64(i)/float64(n-1)}
	}
	return out
}

func TestFitValidation(t *testing.T) {
	k := RBF(1, 1)
	if _, err := Fit(nil, nil, k, 0.01); err == nil {
		t.Fatal("empty fit accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, k, 0.01); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Fit([][]float64{{1}, {2, 3}}, []float64{1, 2}, k, 0.01); err == nil {
		t.Fatal("ragged inputs accepted")
	}
}

func TestKernelPanics(t *testing.T) {
	for _, f := range []func(){
		func() { RBF(0, 1) },
		func() { RBF(1, -1) },
		func() { Matern52(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid kernel params accepted")
				}
			}()
			f()
		}()
	}
}

func TestInterpolatesTrainingPoints(t *testing.T) {
	x := grid1D(0, 4, 5)
	y := []float64{0, 1, 4, 9, 16}
	g, err := Fit(x, y, RBF(1, 10), 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	for i, xi := range x {
		mean, variance := g.Predict(xi)
		if math.Abs(mean-y[i]) > 1e-3 {
			t.Fatalf("mean at training point %v = %v, want %v", xi, mean, y[i])
		}
		if variance > 1e-4 {
			t.Fatalf("variance at training point = %v, want ~0", variance)
		}
	}
}

func TestUncertaintyGrowsAwayFromData(t *testing.T) {
	x := [][]float64{{0}, {1}}
	y := []float64{0, 1}
	g, err := Fit(x, y, RBF(0.5, 1), 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	_, vNear := g.Predict([]float64{0.5})
	_, vFar := g.Predict([]float64{5})
	if vFar <= vNear {
		t.Fatalf("variance far (%v) not above near (%v)", vFar, vNear)
	}
	// Far from data, the mean reverts to the observation mean.
	mFar, _ := g.Predict([]float64{100})
	if math.Abs(mFar-0.5) > 1e-6 {
		t.Fatalf("far mean = %v, want prior mean 0.5", mFar)
	}
}

func TestSmoothInterpolation(t *testing.T) {
	// Fit sin(x) on a grid; prediction between points must be close.
	var x [][]float64
	var y []float64
	for i := 0; i <= 20; i++ {
		v := float64(i) * math.Pi / 10
		x = append(x, []float64{v})
		y = append(y, math.Sin(v))
	}
	g, err := Fit(x, y, RBF(0.8, 1), 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.4, 1.7, 3.3, 5.1} {
		mean, _ := g.Predict([]float64{q})
		if math.Abs(mean-math.Sin(q)) > 0.05 {
			t.Fatalf("sin(%v): predicted %v, want %v", q, mean, math.Sin(q))
		}
	}
}

func TestMatern52Behaves(t *testing.T) {
	k := Matern52(1, 2)
	same := k([]float64{1, 2}, []float64{1, 2})
	if math.Abs(same-2) > 1e-12 {
		t.Fatalf("k(x,x) = %v, want variance 2", same)
	}
	near := k([]float64{0}, []float64{0.1})
	far := k([]float64{0}, []float64{3})
	if !(same > near && near > far && far > 0) {
		t.Fatalf("Matern52 not monotone: %v %v %v", same, near, far)
	}
}

func TestExpectedImprovement(t *testing.T) {
	x := [][]float64{{0}, {2}}
	y := []float64{5, 1}
	g, err := Fit(x, y, RBF(1, 4), 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	best := 1.0
	// EI at the best observed point is ~0 (no variance, no improvement).
	if ei := g.ExpectedImprovement([]float64{2}, best, 0); ei > 1e-3 {
		t.Fatalf("EI at best point = %v", ei)
	}
	// EI in unexplored territory beyond the good point must be positive.
	if ei := g.ExpectedImprovement([]float64{3.5}, best, 0); ei <= 0 {
		t.Fatalf("EI in unexplored region = %v", ei)
	}
	// EI is never negative anywhere.
	src := rng.New(1)
	for i := 0; i < 200; i++ {
		if ei := g.ExpectedImprovement([]float64{src.Range(-5, 8)}, best, 0.01); ei < 0 {
			t.Fatalf("negative EI at sample %d", i)
		}
	}
}

func TestLogMarginalLikelihoodPrefersTrueScale(t *testing.T) {
	// Data drawn from a smooth function: a sensible length scale must have
	// higher evidence than a wildly wrong one.
	var x [][]float64
	var y []float64
	for i := 0; i <= 15; i++ {
		v := float64(i) / 3
		x = append(x, []float64{v})
		y = append(y, math.Sin(v))
	}
	good, err := Fit(x, y, RBF(1, 1), 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Fit(x, y, RBF(0.01, 1), 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := good.LogMarginalLikelihood(y)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := bad.LogMarginalLikelihood(y)
	if err != nil {
		t.Fatal(err)
	}
	if lg <= lb {
		t.Fatalf("evidence of sensible scale (%v) not above overfit scale (%v)", lg, lb)
	}
	if _, err := good.LogMarginalLikelihood([]float64{1}); err == nil {
		t.Fatal("mismatched target length accepted")
	}
}

func TestPredictDoesNotAliasTrainingData(t *testing.T) {
	x := [][]float64{{1}, {2}}
	y := []float64{1, 2}
	g, err := Fit(x, y, RBF(1, 1), 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	x[0][0] = 99 // mutate the caller's slice
	mean, _ := g.Predict([]float64{1})
	if math.Abs(mean-1) > 0.1 {
		t.Fatalf("GP aliased caller data: mean at x=1 is %v", mean)
	}
}

func BenchmarkFitPredict(b *testing.B) {
	src := rng.New(1)
	var x [][]float64
	var y []float64
	for i := 0; i < 30; i++ {
		x = append(x, []float64{src.Range(0, 10), src.Range(0, 10)})
		y = append(y, src.Range(0, 5))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := Fit(x, y, Matern52(2, 1), 1e-4)
		if err != nil {
			b.Fatal(err)
		}
		_, _ = g.Predict([]float64{5, 5})
	}
}

func TestSelectMatern(t *testing.T) {
	var x [][]float64
	var y []float64
	for i := 0; i <= 15; i++ {
		v := float64(i) / 3
		x = append(x, []float64{v})
		y = append(y, math.Sin(v))
	}
	g, err := SelectMatern(x, y, []float64{0.05, 1, 5}, []float64{0.5, 1}, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	// The selected model must interpolate sensibly.
	mean, _ := g.Predict([]float64{2.5})
	if math.Abs(mean-math.Sin(2.5)) > 0.1 {
		t.Fatalf("selected model predicts %v at 2.5, want %v", mean, math.Sin(2.5))
	}
	if _, err := SelectMatern(x, y, nil, []float64{1}, 1e-4); err == nil {
		t.Fatal("empty grid accepted")
	}
}
