package replicate

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"vesta/internal/serve"
)

// postPredict sends one predict body through the router handler.
func postPredict(t testing.TB, h http.Handler, body string) (int, http.Header, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Result().Header, rec.Body.Bytes()
}

// fakeBackend is a scriptable backend: healthz reports the configured epoch,
// predict replies with a distinguishable body (or a 500 while failing).
type fakeBackend struct {
	who     string
	epoch   atomic.Uint64
	failing atomic.Bool
	hits    atomic.Int64
}

func (b *fakeBackend) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"status":"ok","epoch":%d}`, b.epoch.Load())
	})
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		b.hits.Add(1)
		if b.failing.Load() {
			http.Error(w, `{"error":"boom","code":"internal"}`, http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, `{"epoch":%d,"who":%q}`, b.epoch.Load(), b.who)
	})
	return mux
}

// newTestRouter builds a router over the URLs with deterministic, sleep-free
// retries (negative backoff base skips the jitter sleep entirely).
func newTestRouter(t testing.TB, urls ...string) *Router {
	t.Helper()
	r, err := NewRouter(RouterConfig{Backends: urls, BackoffBase: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRouterValidation(t *testing.T) {
	if _, err := NewRouter(RouterConfig{}); err == nil {
		t.Fatal("empty backend list accepted")
	}
	if _, err := NewRouter(RouterConfig{Backends: []string{" ", ""}}); err == nil {
		t.Fatal("blank backend list accepted")
	}
}

func TestRouterConsistentHashing(t *testing.T) {
	a, b := &fakeBackend{who: "a"}, &fakeBackend{who: "b"}
	a.epoch.Store(3)
	b.epoch.Store(3)
	tsA := httptest.NewServer(a.handler())
	tsB := httptest.NewServer(b.handler())
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)
	r := newTestRouter(t, tsA.URL, tsB.URL)
	if healthy := r.ProbeAll(); healthy != 2 {
		t.Fatalf("%d healthy, want 2", healthy)
	}
	h := r.Handler()

	// The same body always lands on the same backend; distinct bodies spread
	// across both. Ring balance depends on the (random) httptest ports, so
	// keep drawing keys until both backends have been seen.
	seenWho := map[string]bool{}
	for seed := 0; seed < 64 && len(seenWho) < 2; seed++ {
		body := fmt.Sprintf(`{"app":"Spark-kmeans","seed":%d}`, seed+1)
		var first []byte
		for rep := 0; rep < 3; rep++ {
			status, _, resp := postPredict(t, h, body)
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, resp)
			}
			if rep == 0 {
				first = resp
				var parsed struct {
					Who string `json:"who"`
				}
				if err := json.Unmarshal(resp, &parsed); err != nil {
					t.Fatal(err)
				}
				seenWho[parsed.Who] = true
			} else if !bytes.Equal(resp, first) {
				t.Fatalf("same key routed differently: %s vs %s", resp, first)
			}
		}
	}
	if len(seenWho) != 2 {
		t.Fatalf("64 distinct keys all hashed to one backend: %v", seenWho)
	}
}

func TestRouterFailoverOnBackendFailure(t *testing.T) {
	a, b := &fakeBackend{who: "a"}, &fakeBackend{who: "b"}
	a.epoch.Store(3)
	b.epoch.Store(3)
	b.failing.Store(true)
	tsA := httptest.NewServer(a.handler())
	tsB := httptest.NewServer(b.handler())
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)
	r := newTestRouter(t, tsA.URL, tsB.URL)
	r.ProbeAll()
	h := r.Handler()

	// Every request answers 200 from the healthy backend, whichever backend
	// its key hashes to; b's 500s are failed over, and b is marked unhealthy
	// the first time it fails.
	for seed := 0; seed < 8; seed++ {
		status, _, resp := postPredict(t, h, fmt.Sprintf(`{"app":"x","seed":%d}`, seed+1))
		if status != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, status, resp)
		}
		if !bytes.Contains(resp, []byte(`"who":"a"`)) {
			t.Fatalf("seed %d: answered by the failing backend: %s", seed, resp)
		}
	}
	st := r.Stats()
	if b.hits.Load() > 0 && st.Failovers == 0 {
		t.Fatalf("b served %d requests but no failovers recorded: %+v", b.hits.Load(), st)
	}
	// The prober readmits b once it recovers.
	b.failing.Store(false)
	r.ProbeAll()
	for _, bs := range r.Stats().Backends {
		if !bs.Healthy {
			t.Fatalf("recovered backend still unhealthy: %+v", bs)
		}
	}
}

func TestRouterDeadBackendFailover(t *testing.T) {
	a, b := &fakeBackend{who: "a"}, &fakeBackend{who: "b"}
	a.epoch.Store(1)
	b.epoch.Store(1)
	tsA := httptest.NewServer(a.handler())
	tsB := httptest.NewServer(b.handler())
	t.Cleanup(tsA.Close)
	r := newTestRouter(t, tsA.URL, tsB.URL)
	r.ProbeAll()
	tsB.Close() // dies after the probe marked it healthy

	h := r.Handler()
	for seed := 0; seed < 8; seed++ {
		status, _, resp := postPredict(t, h, fmt.Sprintf(`{"app":"x","seed":%d}`, seed+1))
		if status != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, status, resp)
		}
		if !bytes.Contains(resp, []byte(`"who":"a"`)) {
			t.Fatalf("seed %d: %s", seed, resp)
		}
	}
}

func TestRouterNeverServesStaleEpoch(t *testing.T) {
	fresh, stale := &fakeBackend{who: "fresh"}, &fakeBackend{who: "stale"}
	fresh.epoch.Store(3)
	stale.epoch.Store(1) // lagging follower
	tsFresh := httptest.NewServer(fresh.handler())
	tsStale := httptest.NewServer(stale.handler())
	t.Cleanup(tsFresh.Close)
	t.Cleanup(tsStale.Close)
	r := newTestRouter(t, tsFresh.URL, tsStale.URL)
	r.ProbeAll()
	if r.Floor() != 3 {
		t.Fatalf("floor %d, want 3", r.Floor())
	}
	h := r.Handler()

	// While both are healthy, every response carries the floor epoch: the
	// lagging follower is skipped, never served from.
	for seed := 0; seed < 8; seed++ {
		status, _, resp := postPredict(t, h, fmt.Sprintf(`{"app":"x","seed":%d}`, seed+1))
		if status != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, status, resp)
		}
		var parsed struct {
			Epoch uint64 `json:"epoch"`
		}
		if err := json.Unmarshal(resp, &parsed); err != nil {
			t.Fatal(err)
		}
		if parsed.Epoch != 3 {
			t.Fatalf("stale epoch %d served: %s", parsed.Epoch, resp)
		}
	}

	// The fresh follower dies. Failover must NOT regress to the stale one:
	// unavailability (502 + Retry-After) beats serving epoch 1 after epoch 3
	// has been revealed.
	tsFresh.Close()
	for seed := 0; seed < 4; seed++ {
		status, header, resp := postPredict(t, h, fmt.Sprintf(`{"app":"x","seed":%d}`, seed+1))
		if status != http.StatusBadGateway {
			t.Fatalf("seed %d after failover: status %d: %s", seed, status, resp)
		}
		if header.Get("Retry-After") == "" {
			t.Fatal("502 without Retry-After hint")
		}
	}
	if stale.hits.Load() != 0 {
		t.Fatalf("stale backend served %d predict requests", stale.hits.Load())
	}

	// The stale follower catches up; the fleet serves again at the floor.
	stale.epoch.Store(3)
	r.ProbeAll()
	status, _, resp := postPredict(t, h, `{"app":"x","seed":1}`)
	if status != http.StatusOK || !bytes.Contains(resp, []byte(`"who":"stale"`)) {
		t.Fatalf("caught-up follower not served: status %d: %s", status, resp)
	}
}

func TestRouterRejectsStaleResponse(t *testing.T) {
	// A backend that probes fresh but answers with an older epoch (it rolled
	// back between probe and request) must be failed over, not passed through.
	liar := &fakeBackend{who: "liar"}
	liar.epoch.Store(5)
	honest := &fakeBackend{who: "honest"}
	honest.epoch.Store(5)
	liarMux := http.NewServeMux()
	liarMux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok","epoch":5}`)
	})
	liarMux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		liar.hits.Add(1)
		fmt.Fprint(w, `{"epoch":2,"who":"liar"}`)
	})
	tsLiar := httptest.NewServer(liarMux)
	tsHonest := httptest.NewServer(honest.handler())
	t.Cleanup(tsLiar.Close)
	t.Cleanup(tsHonest.Close)
	r := newTestRouter(t, tsLiar.URL, tsHonest.URL)
	r.ProbeAll()
	h := r.Handler()
	for seed := 0; seed < 8; seed++ {
		status, _, resp := postPredict(t, h, fmt.Sprintf(`{"app":"x","seed":%d}`, seed+1))
		if status != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, status, resp)
		}
		if !bytes.Contains(resp, []byte(`"who":"honest"`)) {
			t.Fatalf("seed %d: stale response passed through: %s", seed, resp)
		}
	}
	if liar.hits.Load() > 0 && r.Stats().StaleSkips == 0 {
		t.Fatal("stale responses not counted")
	}
}

func TestRouterHealthzAndStats(t *testing.T) {
	a := &fakeBackend{who: "a"}
	a.epoch.Store(2)
	tsA := httptest.NewServer(a.handler())
	t.Cleanup(tsA.Close)
	r := newTestRouter(t, tsA.URL, "http://127.0.0.1:1") // second backend unreachable
	r.ProbeAll()
	h := r.Handler()

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz %d: %s", rec.Code, rec.Body)
	}
	var health struct {
		Status   string `json:"status"`
		Healthy  int    `json:"healthy"`
		Backends int    `json:"backends"`
		Floor    uint64 `json:"floor"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Healthy != 1 || health.Backends != 2 || health.Floor != 2 {
		t.Fatalf("health: %+v", health)
	}

	req = httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var st RouterStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Probes != 2 || len(st.Backends) != 2 {
		t.Fatalf("stats: %+v", st)
	}

	// Every backend down: healthz degrades to 503.
	tsA.Close()
	r.ProbeAll()
	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("dead-fleet healthz %d", rec.Code)
	}
}

// TestRouterOverRealFleet routes over two real serve.Servers and checks the
// routed bytes are exactly the bytes the backend would serve directly — the
// router is a pure forwarder on the success path.
func TestRouterOverRealFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("offline training fixture is expensive")
	}
	snaps, _ := fixture(t)
	srvA := newReplica(t, snaps[3], 1)
	srvB := newReplica(t, snaps[3], 4)
	tsA := httptest.NewServer(srvA.Handler())
	tsB := httptest.NewServer(srvB.Handler())
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)
	r := newTestRouter(t, tsA.URL, tsB.URL)
	if healthy := r.ProbeAll(); healthy != 2 {
		t.Fatalf("%d healthy, want 2", healthy)
	}
	if r.Floor() != 3 {
		t.Fatalf("floor %d, want 3", r.Floor())
	}
	h := r.Handler()

	body := `{"app":"Spark-kmeans","seed":7,"top":5}`
	status, _, routed := postPredict(t, h, body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, routed)
	}
	direct, err := srvA.PredictBytes(context.Background(), serve.Request{App: "Spark-kmeans", Seed: 7, Top: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(routed, direct) {
		t.Fatalf("routed bytes differ from direct serving:\n%s\nvs\n%s", routed, direct)
	}

	// Client errors pass through untouched.
	status, _, resp := postPredict(t, h, `{"app":"no-such-app"}`)
	if status != http.StatusNotFound {
		t.Fatalf("unknown app through router: %d %s", status, resp)
	}
}
