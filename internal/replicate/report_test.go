package replicate

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestReplicateReport measures the operational numbers quoted in
// results/replicate.md: follower sync and bootstrap latency, catch-up lag,
// and router failover latency. Wall-clock timings are explicitly outside the
// determinism contract, so this runs only when asked for
// (VESTA_REPLICATE_REPORT=1, `make replicate-report`).
func TestReplicateReport(t *testing.T) {
	if os.Getenv("VESTA_REPLICATE_REPORT") == "" {
		t.Skip("set VESTA_REPLICATE_REPORT=1 (make replicate-report) to measure replication latencies")
	}
	snaps, _ := fixture(t)

	median := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}
	const trials = 21

	// Follower catch-up over real HTTP: three epochs behind, one SyncOnce.
	measureSync := func(maxTail int) (catchUp, steady time.Duration) {
		var cs, ss []time.Duration
		for i := 0; i < trials; i++ {
			leader := caughtUpLeader(t, LeaderConfig{MaxTail: maxTail})
			ts := httptest.NewServer(leader.Handler())
			f, err := NewFollower(newReplica(t, snaps[0], 4), snaps[0], &HTTPTransport{URL: ts.URL}, nil)
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			if _, err := f.SyncOnce(); err != nil {
				t.Fatal(err)
			}
			cs = append(cs, time.Since(start))
			if got := f.Stats().Epoch; got != 3 {
				t.Fatalf("catch-up reached epoch %d", got)
			}
			start = time.Now()
			if _, err := f.SyncOnce(); err != nil { // caught up: empty batch
				t.Fatal(err)
			}
			ss = append(ss, time.Since(start))
			ts.Close()
		}
		return median(cs), median(ss)
	}
	frames, steady := measureSync(16)
	boot, _ := measureSync(-1) // empty tail forces the snapshot-bootstrap path

	// Failover latency: two serve-backed followers behind a router; kill the
	// backend that owns a key and time the first request that must fail over
	// to the survivor.
	counting := func(hits *atomic.Int64, inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/predict" {
				hits.Add(1)
			}
			inner.ServeHTTP(w, r)
		})
	}
	var direct, failover []time.Duration
	for i := 0; i < trials; i++ {
		var hitsA atomic.Int64
		tsA := httptest.NewServer(counting(&hitsA, newReplica(t, snaps[3], 4).Handler()))
		tsB := httptest.NewServer(newReplica(t, snaps[3], 4).Handler())
		r, err := NewRouter(RouterConfig{Backends: []string{tsA.URL, tsB.URL}, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		r.ProbeAll()
		h := r.Handler()
		// Find a key owned by A and warm its response cache.
		var body string
		for seed := 1; ; seed++ {
			body = fmt.Sprintf(`{"app":"Spark-kmeans","seed":%d,"top":3}`, seed)
			before := hitsA.Load()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body)))
			if rec.Code != http.StatusOK {
				t.Fatalf("warm-up status %d: %s", rec.Code, rec.Body)
			}
			if hitsA.Load() > before {
				break
			}
		}
		start := time.Now()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body)))
		direct = append(direct, time.Since(start))

		tsA.Close()
		start = time.Now()
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("failover trial %d: status %d: %s", i, rec.Code, rec.Body)
		}
		failover = append(failover, time.Since(start))
		tsB.Close()
	}

	fmt.Printf("replicate-report: follower catch-up (3 epochs, frames)    median %v\n", frames)
	fmt.Printf("replicate-report: follower catch-up (snapshot bootstrap)  median %v\n", boot)
	fmt.Printf("replicate-report: steady-state sync (empty batch)         median %v\n", steady)
	fmt.Printf("replicate-report: routed predict (healthy backend)        median %v\n", median(direct))
	fmt.Printf("replicate-report: routed predict (failover to survivor)   median %v\n", median(failover))
}
