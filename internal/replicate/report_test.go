package replicate

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestReplicateReport measures the operational numbers quoted in
// results/replicate.md: follower sync and bootstrap latency, catch-up lag,
// and router failover latency. Wall-clock timings are explicitly outside the
// determinism contract, so this runs only when asked for
// (VESTA_REPLICATE_REPORT=1, `make replicate-report`).
func TestReplicateReport(t *testing.T) {
	if os.Getenv("VESTA_REPLICATE_REPORT") == "" {
		t.Skip("set VESTA_REPLICATE_REPORT=1 (make replicate-report) to measure replication latencies")
	}
	snaps, _ := fixture(t)

	median := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}
	const trials = 21

	// Follower catch-up over real HTTP: three epochs behind, one SyncOnce.
	measureSync := func(maxTail int) (catchUp, steady time.Duration) {
		var cs, ss []time.Duration
		for i := 0; i < trials; i++ {
			leader := caughtUpLeader(t, LeaderConfig{MaxTail: maxTail})
			ts := httptest.NewServer(leader.Handler())
			f, err := NewFollower(newReplica(t, snaps[0], 4), snaps[0], &HTTPTransport{URL: ts.URL}, nil)
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			if _, err := f.SyncOnce(); err != nil {
				t.Fatal(err)
			}
			cs = append(cs, time.Since(start))
			if got := f.Stats().Epoch; got != 3 {
				t.Fatalf("catch-up reached epoch %d", got)
			}
			start = time.Now()
			if _, err := f.SyncOnce(); err != nil { // caught up: empty batch
				t.Fatal(err)
			}
			ss = append(ss, time.Since(start))
			ts.Close()
		}
		return median(cs), median(ss)
	}
	frames, steady := measureSync(16)
	boot, _ := measureSync(-1) // empty tail forces the snapshot-bootstrap path

	// Push lag: a caught-up follower parked in a long poll vs one on the
	// default 500 ms polling interval. The clock starts at the leader's
	// Append and stops when the follower's served epoch advances.
	measureLag := func(wait, retry time.Duration, n int) time.Duration {
		var ls []time.Duration
		for i := 0; i < n; i++ {
			snaps, recs := fixture(t)
			l, err := NewLeader(snaps[0], nil, LeaderConfig{MaxTail: 16})
			if err != nil {
				t.Fatal(err)
			}
			for _, rec := range recs[:2] { // hold epoch 3 back for the live append
				if err := l.Append(rec.Name, rec.LabelWeights, rec.PrunedVec, rec.Epoch); err != nil {
					t.Fatal(err)
				}
				if err := l.Committed(snaps[rec.Epoch]); err != nil {
					t.Fatal(err)
				}
			}
			ts := httptest.NewServer(l.Handler())
			f, err := NewFollower(newReplica(t, snaps[0], 4), snaps[0], &HTTPTransport{URL: ts.URL}, nil)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func() {
				defer close(done)
				f.RunWait(ctx, wait, retry)
			}()
			epochAt := func(want uint64) {
				deadline := time.Now().Add(10 * time.Second)
				for f.Stats().Epoch != want {
					if time.Now().After(deadline) {
						t.Fatalf("follower never reached epoch %d", want)
					}
					time.Sleep(200 * time.Microsecond)
				}
			}
			epochAt(2)
			time.Sleep(20 * time.Millisecond) // let the loop park in its next round
			start := time.Now()
			rec := recs[2]
			if err := l.Append(rec.Name, rec.LabelWeights, rec.PrunedVec, rec.Epoch); err != nil {
				t.Fatal(err)
			}
			if err := l.Committed(snaps[3]); err != nil {
				t.Fatal(err)
			}
			epochAt(3)
			ls = append(ls, time.Since(start))
			cancel()
			<-done
			ts.Close()
		}
		return median(ls)
	}
	pushLag := measureLag(25*time.Second, 100*time.Millisecond, trials)
	pollLag := measureLag(0, 500*time.Millisecond, 5)
	if pushLag >= 50*time.Millisecond {
		t.Errorf("long-poll frame lag %v; the push path promises < 50ms", pushLag)
	}

	// Failover latency: two serve-backed followers behind a router; kill the
	// backend that owns a key and time the first request that must fail over
	// to the survivor.
	counting := func(hits *atomic.Int64, inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/predict" {
				hits.Add(1)
			}
			inner.ServeHTTP(w, r)
		})
	}
	var direct, failover []time.Duration
	for i := 0; i < trials; i++ {
		var hitsA atomic.Int64
		tsA := httptest.NewServer(counting(&hitsA, newReplica(t, snaps[3], 4).Handler()))
		tsB := httptest.NewServer(newReplica(t, snaps[3], 4).Handler())
		r, err := NewRouter(RouterConfig{Backends: []string{tsA.URL, tsB.URL}, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		r.ProbeAll()
		h := r.Handler()
		// Find a key owned by A and warm its response cache.
		var body string
		for seed := 1; ; seed++ {
			body = fmt.Sprintf(`{"app":"Spark-kmeans","seed":%d,"top":3}`, seed)
			before := hitsA.Load()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body)))
			if rec.Code != http.StatusOK {
				t.Fatalf("warm-up status %d: %s", rec.Code, rec.Body)
			}
			if hitsA.Load() > before {
				break
			}
		}
		start := time.Now()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body)))
		direct = append(direct, time.Since(start))

		tsA.Close()
		start = time.Now()
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("failover trial %d: status %d: %s", i, rec.Code, rec.Body)
		}
		failover = append(failover, time.Since(start))
		tsB.Close()
	}

	fmt.Printf("replicate-report: follower catch-up (3 epochs, frames)    median %v\n", frames)
	fmt.Printf("replicate-report: follower catch-up (snapshot bootstrap)  median %v\n", boot)
	fmt.Printf("replicate-report: steady-state sync (empty batch)         median %v\n", steady)
	fmt.Printf("replicate-report: append->applied lag, long-poll push     median %v\n", pushLag)
	fmt.Printf("replicate-report: append->applied lag, 500ms polling      median %v\n", pollLag)
	fmt.Printf("replicate-report: routed predict (healthy backend)        median %v\n", median(direct))
	fmt.Printf("replicate-report: routed predict (failover to survivor)   median %v\n", median(failover))
}
