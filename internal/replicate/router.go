package replicate

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vesta/internal/obs"
	"vesta/internal/rng"
)

// RouterConfig tunes a Router. Zero values take the defaults noted per field.
type RouterConfig struct {
	// Backends are the follower base URLs traffic is hashed across
	// (required, at least one).
	Backends []string
	// Vnodes is how many ring points each backend owns; more points smooth
	// the hash distribution. Default 64.
	Vnodes int
	// Retries bounds how many additional backends a failed request fails
	// over to. Default 2 (three attempts total).
	Retries int
	// BackoffBase is the pre-retry delay before jitter; it doubles per
	// attempt up to BackoffMax. Defaults 25ms / 250ms. A negative base
	// skips the sleep entirely (tests).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the jitter stream. The router is operational machinery —
	// schedule-dependent by nature — but a pinned seed makes its retry
	// delays reproducible under test. Default 1.
	Seed uint64
	// Client overrides the forwarding HTTP client; nil uses a 90-second
	// timeout (above the serve layer's 60-second request deadline).
	Client *http.Client
	// ProbeTimeout bounds one health probe. Default 5s.
	ProbeTimeout time.Duration
	// Tracer receives the routing counters (route.requests,
	// route.failovers, route.stale_skips, route.probes).
	Tracer *obs.Tracer
	// Logf, when set, receives probe transition lines: a backend changing
	// health state, starting or resolving a staged rollout, plus its
	// replication counters (transient fetch failures, frames applied) as
	// reported on its /healthz. Steady states are not repeated.
	Logf func(format string, args ...any)
}

// backendState is one backend's health view, updated by probes and by
// forwarding outcomes.
type backendState struct {
	url     string
	healthy atomic.Bool
	// known flips on the first probe so the initial state is always logged.
	known atomic.Bool
	epoch atomic.Uint64
	// staged is the backend's advertised staged rollout version ("" none).
	staged atomic.Value
}

// BackendStatus is the exported per-backend health view.
type BackendStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Epoch   uint64 `json:"epoch"`
	// Staged is the rollout version the backend holds uncommitted, if any.
	Staged string `json:"staged,omitempty"`
}

// RouterStats is a point-in-time view of the router's counters.
type RouterStats struct {
	Requests   int64           `json:"requests"`
	Failovers  int64           `json:"failovers"`
	StaleSkips int64           `json:"stale_skips"`
	Exhausted  int64           `json:"exhausted"`
	Probes     int64           `json:"probes"`
	Floor      uint64          `json:"floor"`
	Backends   []BackendStatus `json:"backends"`
}

// ringPoint is one vnode on the consistent-hash ring.
type ringPoint struct {
	h uint64
	b *backendState
}

// Router consistent-hashes predict requests across healthy followers,
// probes their /healthz, and fails over with bounded retries and jittered
// backoff when a probe or request fails.
//
// Stale-read protection: the router tracks the highest snapshot epoch it has
// observed anywhere in the fleet (the floor, raised by probes and by predict
// responses). A backend whose last known epoch is below the floor is lagging
// and is skipped, so a failover can never hand a request to a follower that
// would answer from an older epoch than the fleet has already served — the
// router-level form of the follower token invariant.
type Router struct {
	cfg      RouterConfig
	client   *http.Client
	backends []*backendState
	ring     []ringPoint
	tracer   *obs.Tracer

	rngMu sync.Mutex
	jit   *rng.Source

	floor                                           atomic.Uint64
	requests, failovers, staleSkips, exhausted, prc atomic.Int64
}

// NewRouter builds a router over the backend URLs. Backends start unknown
// (unhealthy) until the first probe; call ProbeAll before serving.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("replicate: router needs at least one backend")
	}
	if cfg.Vnodes <= 0 {
		cfg.Vnodes = 64
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 25 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 250 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 5 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 90 * time.Second}
	}
	r := &Router{cfg: cfg, client: client, tracer: cfg.Tracer, jit: rng.New(cfg.Seed)}
	seen := map[string]bool{}
	for _, raw := range cfg.Backends {
		url := strings.TrimRight(strings.TrimSpace(raw), "/")
		if url == "" || seen[url] {
			continue
		}
		seen[url] = true
		b := &backendState{url: url}
		r.backends = append(r.backends, b)
		for v := 0; v < cfg.Vnodes; v++ {
			r.ring = append(r.ring, ringPoint{h: hash64(fmt.Sprintf("%s#%d", url, v)), b: b})
		}
	}
	if len(r.backends) == 0 {
		return nil, fmt.Errorf("replicate: router needs at least one backend")
	}
	sort.Slice(r.ring, func(i, j int) bool { return r.ring[i].h < r.ring[j].h })
	return r, nil
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, s)
	return mix64(h.Sum64())
}

// mix64 avalanches the FNV sum (splitmix64 finalizer). Raw FNV-1a only
// multiplies once per byte, so keys differing in a trailing byte — predict
// bodies that differ in one digit — land within a narrow band of the ring
// and would all hash to the same backend.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// raiseFloor lifts the observed-epoch floor monotonically.
func (r *Router) raiseFloor(epoch uint64) {
	for {
		cur := r.floor.Load()
		if epoch <= cur || r.floor.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// Floor returns the highest epoch the router has observed in the fleet.
func (r *Router) Floor() uint64 { return r.floor.Load() }

// noteProbe records one probe outcome and logs the line when something
// changed: the first probe ever, a health transition, or a staged-version
// change. detail rides on the logged line only.
func (r *Router) noteProbe(b *backendState, healthy bool, staged, detail string) {
	prevHealthy := b.healthy.Load()
	first := !b.known.Swap(true)
	prevStaged, _ := b.staged.Swap(staged).(string)
	b.healthy.Store(healthy)
	if r.cfg.Logf != nil && (first || prevHealthy != healthy || prevStaged != staged) {
		r.cfg.Logf("route: probe %s healthy=%v%s", b.url, healthy, detail)
	}
}

// Probe health-checks one backend: a 200 /healthz marks it healthy and
// records its epoch (raising the floor); anything else marks it unhealthy.
// Probe transitions go to RouterConfig.Logf along with the backend's staged
// rollout version and replication counters.
func (r *Router) Probe(b *backendState) bool {
	r.prc.Add(1)
	if r.tracer.Enabled() {
		r.tracer.Count("route.probes", 1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		r.noteProbe(b, false, "", fmt.Sprintf(": %v", err))
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		r.noteProbe(b, false, "", fmt.Sprintf(": %v", err))
		return false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		r.noteProbe(b, false, "", fmt.Sprintf(": status %d", resp.StatusCode))
		return false
	}
	var h struct {
		Epoch         uint64          `json:"epoch"`
		StagedVersion string          `json:"staged_version"`
		Replication   json.RawMessage `json:"replication"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		r.noteProbe(b, false, "", fmt.Sprintf(": bad healthz body: %v", err))
		return false
	}
	b.epoch.Store(h.Epoch)
	r.raiseFloor(h.Epoch)
	detail := fmt.Sprintf(" epoch=%d", h.Epoch)
	if h.StagedVersion != "" {
		detail += " staged=" + h.StagedVersion
	}
	if len(h.Replication) > 0 {
		detail += " replication=" + string(h.Replication)
	}
	r.noteProbe(b, true, h.StagedVersion, detail)
	return true
}

// ProbeAll probes every backend and returns how many are healthy.
func (r *Router) ProbeAll() int {
	healthy := 0
	for _, b := range r.backends {
		if r.Probe(b) {
			healthy++
		}
	}
	return healthy
}

// Run probes the fleet every interval until ctx is done.
func (r *Router) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			r.ProbeAll()
		}
	}
}

// pick walks the ring clockwise from the key's hash and returns the first
// backend that is healthy, not lagging below the floor, and not already
// tried. Nil when no backend qualifies.
func (r *Router) pick(keyHash uint64, tried map[*backendState]bool) *backendState {
	if len(r.ring) == 0 {
		return nil
	}
	start := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].h >= keyHash })
	floor := r.floor.Load()
	for i := 0; i < len(r.ring); i++ {
		p := r.ring[(start+i)%len(r.ring)]
		if tried[p.b] || !p.b.healthy.Load() {
			continue
		}
		if p.b.epoch.Load() < floor {
			r.staleSkips.Add(1)
			if r.tracer.Enabled() {
				r.tracer.Count("route.stale_skips", 1)
			}
			tried[p.b] = true // lagging: skip for this request
			continue
		}
		return p.b
	}
	return nil
}

// backoff sleeps the jittered delay for a retry attempt, honouring ctx.
func (r *Router) backoff(ctx context.Context, attempt int) {
	if r.cfg.BackoffBase <= 0 {
		return
	}
	d := r.cfg.BackoffBase << uint(attempt)
	if d > r.cfg.BackoffMax {
		d = r.cfg.BackoffMax
	}
	// Full jitter in [d/2, d): desynchronizes a thundering herd of retries
	// without ever waiting longer than the deterministic cap.
	r.rngMu.Lock()
	jittered := d/2 + time.Duration(r.jit.Intn(int(d/2)+1))
	r.rngMu.Unlock()
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// Stats returns the router's counters and per-backend health.
func (r *Router) Stats() RouterStats {
	st := RouterStats{
		Requests:   r.requests.Load(),
		Failovers:  r.failovers.Load(),
		StaleSkips: r.staleSkips.Load(),
		Exhausted:  r.exhausted.Load(),
		Probes:     r.prc.Load(),
		Floor:      r.floor.Load(),
	}
	for _, b := range r.backends {
		staged, _ := b.staged.Load().(string)
		st.Backends = append(st.Backends, BackendStatus{
			URL: b.url, Healthy: b.healthy.Load(), Epoch: b.epoch.Load(), Staged: staged,
		})
	}
	return st
}

// maxRouteBody bounds a routed predict body, mirroring the serve layer.
const maxRouteBody = 1 << 20

// Handler returns the router's HTTP surface:
//
//	POST /predict  forwarded to a consistent-hash-chosen healthy follower
//	GET  /healthz  router liveness plus fleet health summary
//	GET  /stats    routing counters and per-backend status
//
// A forwarded request that fails (connection error or 5xx) marks the backend
// unhealthy and fails over to the next ring candidate after a jittered
// backoff, up to Retries extra attempts; when every candidate is exhausted
// the router answers 502 with a Retry-After hint. Responses whose snapshot
// epoch is below the observed fleet floor are treated as stale reads and
// failed over the same way.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", r.predict)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		st := r.Stats()
		healthy := 0
		for _, b := range st.Backends {
			if b.Healthy {
				healthy++
			}
		}
		status := "ok"
		code := http.StatusOK
		if healthy == 0 {
			status = "no_backends"
			code = http.StatusServiceUnavailable
		}
		writeJSONStatus(w, code, map[string]any{
			"status":   status,
			"healthy":  healthy,
			"backends": len(st.Backends),
			"floor":    st.Floor,
		})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, req *http.Request) {
		writeJSONStatus(w, http.StatusOK, r.Stats())
	})
	return mux
}

func (r *Router) predict(w http.ResponseWriter, req *http.Request) {
	r.requests.Add(1)
	if r.tracer.Enabled() {
		r.tracer.Count("route.requests", 1)
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxRouteBody))
	if err != nil {
		writeJSONStatus(w, http.StatusBadRequest, errorBody{Error: "unreadable body: " + err.Error(), Code: "bad_request"})
		return
	}
	// The routing key is the raw body: byte-identical requests always hash
	// to the same follower, so per-key response caches stay hot across the
	// fleet instead of spraying every key everywhere.
	keyHash := hash64(string(body))
	tried := map[*backendState]bool{}
	for attempt := 0; attempt <= r.cfg.Retries; attempt++ {
		b := r.pick(keyHash, tried)
		if b == nil {
			break
		}
		status, ctype, respBody, err := r.forward(req.Context(), b, body)
		if err != nil || status >= http.StatusInternalServerError {
			// Connection failure or backend-side failure: the prober will
			// readmit the backend when it recovers.
			b.healthy.Store(false)
			tried[b] = true
			r.failovers.Add(1)
			if r.tracer.Enabled() {
				r.tracer.Count("route.failovers", 1)
			}
			r.backoff(req.Context(), attempt)
			continue
		}
		if status == http.StatusOK {
			var tok struct {
				Epoch uint64 `json:"epoch"`
			}
			if json.Unmarshal(respBody, &tok) == nil {
				floorBefore := r.floor.Load()
				if tok.Epoch < floorBefore {
					// Stale read: the fleet has served a newer epoch than
					// this follower's answer. Record its lag and fail over.
					b.epoch.Store(tok.Epoch)
					tried[b] = true
					r.staleSkips.Add(1)
					r.failovers.Add(1)
					if r.tracer.Enabled() {
						r.tracer.Count("route.stale_skips", 1)
						r.tracer.Count("route.failovers", 1)
					}
					r.backoff(req.Context(), attempt)
					continue
				}
				b.epoch.Store(tok.Epoch)
				r.raiseFloor(tok.Epoch)
			}
		}
		// 2xx/4xx pass through untouched: client errors are the client's.
		if ctype != "" {
			w.Header().Set("Content-Type", ctype)
		}
		w.WriteHeader(status)
		w.Write(respBody)
		return
	}
	r.exhausted.Add(1)
	if r.tracer.Enabled() {
		r.tracer.Count("route.exhausted", 1)
	}
	w.Header().Set("Retry-After", "1")
	writeJSONStatus(w, http.StatusBadGateway, errorBody{
		Error: "no healthy backend at or above the fleet epoch floor", Code: "unavailable",
	})
}

// forward ships one predict body to a backend and returns its answer.
func (r *Router) forward(ctx context.Context, b *backendState, body []byte) (int, string, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/predict", strings.NewReader(string(body)))
	if err != nil {
		return 0, "", nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return 0, "", nil, err
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), respBody, nil
}
