package replicate

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("timed out waiting for " + msg)
}

// TestFetchWaitDeliversOnAppend: a caught-up long poll parks, and the next
// append releases it with the new frames — push-style delivery, no polling
// interval in the lag path.
func TestFetchWaitDeliversOnAppend(t *testing.T) {
	snaps, recs := fixture(t)
	l, err := NewLeader(snaps[0], nil, LeaderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		b   *Batch
		err error
	}
	got := make(chan result, 1)
	go func() {
		b, err := l.FetchWait(context.Background(), 0, 10*time.Second)
		got <- result{b, err}
	}()
	waitFor(t, 5*time.Second, func() bool { return l.LeaderStats().Waiters == 1 }, "waiter to park")

	rec := recs[0]
	if err := l.Append(rec.Name, rec.LabelWeights, rec.PrunedVec, rec.Epoch); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.b.Ack != 1 || len(r.b.Frames) == 0 {
			t.Fatalf("released batch = ack %d, %d frame bytes; want ack 1 with frames", r.b.Ack, len(r.b.Frames))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("append did not release the parked fetch")
	}
	if w := l.LeaderStats().Waiters; w != 0 {
		t.Fatalf("waiters after release = %d, want 0", w)
	}
}

// TestFetchWaitExpiryIsEmptyOK: a long poll that expires with nothing new
// answers a plain caught-up batch over HTTP — 200 with empty frames, never an
// error status. An idle leader is healthy.
func TestFetchWaitExpiryIsEmptyOK(t *testing.T) {
	l := caughtUpLeader(t, LeaderConfig{})
	ts := httptest.NewServer(l.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/replicate/frames?from=3&wait=30ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("expired long poll status = %d, want 200", resp.StatusCode)
	}
	var b Batch
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	if b.From != 3 || b.Ack != 3 || len(b.Frames) != 0 || len(b.Snapshot) != 0 {
		t.Fatalf("expired long poll batch = %+v, want empty caught-up", b)
	}
}

// TestFetchWaitClientDisconnectReleasesWaiter: an abandoned long poll must
// not leak its waiter slot — the request context unparks it.
func TestFetchWaitClientDisconnectReleasesWaiter(t *testing.T) {
	l := caughtUpLeader(t, LeaderConfig{})
	ts := httptest.NewServer(l.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/replicate/frames?from=3&wait=30s", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitFor(t, 5*time.Second, func() bool { return l.LeaderStats().Waiters == 1 }, "waiter to park")
	cancel()
	<-done
	waitFor(t, 5*time.Second, func() bool { return l.LeaderStats().Waiters == 0 }, "waiter to release on disconnect")
}

// TestFetchWaitCappedServerSide: the leader clamps the wait budget to its
// MaxWait whatever the client asks for, so a client cannot park goroutines
// for minutes.
func TestFetchWaitCappedServerSide(t *testing.T) {
	snaps, _ := fixture(t)
	l, err := NewLeader(snaps[0], nil, LeaderConfig{MaxWait: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	b, err := l.FetchWait(context.Background(), 0, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("10-minute wait request held for %v despite a 30ms server cap", elapsed)
	}
	if b.Ack != 0 || len(b.Frames) != 0 {
		t.Fatalf("capped wait batch = %+v, want empty", b)
	}
}

func TestFetchWaitBadDurationIs400(t *testing.T) {
	l := caughtUpLeader(t, LeaderConfig{})
	ts := httptest.NewServer(l.Handler())
	defer ts.Close()
	for _, wait := range []string{"bogus", "-5s"} {
		resp, err := http.Get(ts.URL + "/replicate/frames?from=3&wait=" + wait)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("wait=%q status = %d, want 400", wait, resp.StatusCode)
		}
	}
}

// TestFollowerRunWaitStreams: the push loop replays appends end to end over
// HTTP — follower parked, leader appends, follower applies — and shuts down
// cleanly on context cancel.
func TestFollowerRunWaitStreams(t *testing.T) {
	snaps, recs := fixture(t)
	l, err := NewLeader(snaps[0], nil, LeaderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(l.Handler())
	defer ts.Close()

	replica := newReplica(t, snaps[0], 1)
	f, err := NewFollower(replica, snaps[0], &HTTPTransport{URL: ts.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- f.RunWait(ctx, 10*time.Second, 10*time.Millisecond) }()

	for _, rec := range recs {
		if err := l.Append(rec.Name, rec.LabelWeights, rec.PrunedVec, rec.Epoch); err != nil {
			t.Fatal(err)
		}
		if err := l.Committed(snaps[rec.Epoch]); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return replica.Snapshot().Epoch() == 3 }, "follower to stream to epoch 3")
	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("RunWait after cancel = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunWait did not stop on cancel")
	}
	st := f.Stats()
	if st.Broken || st.Lag != 0 || st.Applied != 3 {
		t.Fatalf("follower stats after stream = %+v", st)
	}
}

// TestLeaderInstallResetsShipping: installing a candidate snapshot replaces
// ack, horizon, tail, and bootstrap image wholesale; a follower still on the
// old lineage bootstraps straight to it, and rewinds are refused.
func TestLeaderInstallResetsShipping(t *testing.T) {
	snaps, _ := fixture(t)
	l, err := NewLeader(snaps[0], nil, LeaderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Install(snaps[2]); err != nil {
		t.Fatal(err)
	}
	st := l.LeaderStats()
	if st.Ack != 2 || st.Horizon != 2 || st.TailLen != 0 {
		t.Fatalf("post-install stats = %+v, want ack 2, horizon 2, empty tail", st)
	}
	b, err := l.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Snapshot) == 0 || b.Ack != 2 {
		t.Fatalf("old-token fetch after install = ack %d, snapshot %d bytes; want bootstrap at 2",
			b.Ack, len(b.Snapshot))
	}
	if err := l.Install(snaps[1]); err == nil {
		t.Fatal("install rewind accepted")
	}
}

// TestFollowerPausesWhileStaged: a follower whose server holds a staged
// rollout candidate applies nothing — replication resumes after the stage
// resolves, and the pause is counted, not treated as divergence.
func TestFollowerPausesWhileStaged(t *testing.T) {
	snaps, _ := fixture(t)
	l := caughtUpLeader(t, LeaderConfig{})
	replica := newReplica(t, snaps[0], 1)
	f, err := NewFollower(replica, snaps[0], l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.Stage("v1", snaps[1]); err != nil {
		t.Fatal(err)
	}
	n, err := f.SyncOnce()
	if n != 0 || err != nil {
		t.Fatalf("staged sync = (%d, %v), want (0, nil)", n, err)
	}
	if st := f.Stats(); st.Paused != 1 || st.Broken {
		t.Fatalf("stats after staged sync = %+v, want Paused 1", st)
	}
	if err := replica.RevertStaged("v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if got := replica.Snapshot().Epoch(); got != 3 {
		t.Fatalf("epoch after unpause = %d, want 3", got)
	}
	if errors.Is(f.Broken(), ErrDiverged) {
		t.Fatal("pause broke the follower")
	}
}

// TestStatsResponsiveWhileParked: a follower parked in a long poll must
// still answer Stats() immediately — the follower's own /stats and /healthz
// are built on it, and a router probe that stalls behind a parked sync
// would eject a perfectly healthy backend from the ring.
func TestStatsResponsiveWhileParked(t *testing.T) {
	snaps, _ := fixture(t)
	l := caughtUpLeader(t, LeaderConfig{MaxTail: 16})
	ts := httptest.NewServer(l.Handler())
	defer ts.Close()
	f, err := NewFollower(newReplica(t, snaps[0], 1), snaps[0], &HTTPTransport{URL: ts.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SyncOnce(); err != nil { // catch up so the next round parks
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.SyncWait(ctx, 10*time.Second)
	}()
	waitFor(t, 5*time.Second, func() bool { return l.LeaderStats().Waiters == 1 }, "follower to park")

	start := time.Now()
	st := f.Stats()
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Stats() took %v while the sync loop was parked; want immediate", d)
	}
	if st.Epoch != 3 || st.Broken {
		t.Fatalf("stats while parked = %+v, want epoch 3, not broken", st)
	}
	cancel()
	<-done
}
