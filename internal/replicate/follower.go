package replicate

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"vesta/internal/chaos"
	"vesta/internal/core"
	"vesta/internal/obs"
	"vesta/internal/serve"
	"vesta/internal/wal"
)

// Transport fetches one replication batch for a follower token. Implemented
// by *Leader (in-process), HTTPTransport (the wire), and FaultTransport
// (deterministic chaos injection for the convergence matrix).
type Transport interface {
	Fetch(from uint64) (*Batch, error)
}

// WaitTransport is a Transport that also supports push-style long-poll
// fetches: FetchWait parks at the leader until an append lands or the wait
// budget expires, cutting follower lag from the polling interval to roughly
// one round trip. *Leader and HTTPTransport implement it; a follower run
// with RunWait uses it when available and falls back to plain Fetch.
type WaitTransport interface {
	Transport
	FetchWait(ctx context.Context, from uint64, wait time.Duration) (*Batch, error)
}

// HTTPTransport syncs from a leader's /replicate/frames endpoint.
type HTTPTransport struct {
	// URL is the leader's base URL (e.g. http://127.0.0.1:8372).
	URL string
	// Client overrides the HTTP client; nil uses a 30-second-timeout client.
	Client *http.Client
}

// Fetch implements Transport.
func (t *HTTPTransport) Fetch(from uint64) (*Batch, error) {
	return t.fetch(context.Background(), from, 0)
}

// FetchWait implements WaitTransport: the wait budget rides the query string
// (&wait=D) and the leader parks the request server-side. The per-call HTTP
// timeout is the budget plus headroom, so a healthy long poll is never cut
// off by the client while parked.
func (t *HTTPTransport) FetchWait(ctx context.Context, from uint64, wait time.Duration) (*Batch, error) {
	return t.fetch(ctx, from, wait)
}

func (t *HTTPTransport) fetch(ctx context.Context, from uint64, wait time.Duration) (*Batch, error) {
	client := t.Client
	if client == nil {
		timeout := 30 * time.Second
		if wait > 0 {
			timeout = wait + 30*time.Second
		}
		client = &http.Client{Timeout: timeout}
	}
	url := fmt.Sprintf("%s/replicate/frames?from=%d", strings.TrimRight(t.URL, "/"), from)
	if wait > 0 {
		url += "&wait=" + wait.String()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("replicate: building fetch %s: %w", url, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replicate: fetch %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("replicate: reading batch: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		// A 409 means the leader considers this follower ahead of its ack —
		// divergence, surfaced as the typed sentinel so the follower fails
		// closed rather than retrying forever.
		if resp.StatusCode == http.StatusConflict {
			return nil, fmt.Errorf("%w: leader answered %s", ErrFollowerAhead, strings.TrimSpace(string(body)))
		}
		return nil, fmt.Errorf("replicate: leader answered %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var b Batch
	if err := json.Unmarshal(body, &b); err != nil {
		return nil, fmt.Errorf("%w: undecodable batch: %v", ErrBadStream, err)
	}
	return &b, nil
}

// FaultTransport wraps a transport with a deterministic chaos.NetPlan: sync
// rounds are counted per follower, partitioned rounds fail with
// chaos.ErrPartitioned, lagged rounds complete but deliver nothing. The
// convergence matrix swaps Inner between rounds to model a leader restart;
// the field is read per Fetch, so single-threaded test drivers may reassign
// it between syncs.
type FaultTransport struct {
	// Inner is the real transport underneath the faults.
	Inner Transport
	// Plan schedules the injected faults.
	Plan chaos.NetPlan
	// Follower is this follower's 0-based index in the plan.
	Follower int

	mu    sync.Mutex
	round int
}

// Round returns how many sync rounds this transport has seen.
func (t *FaultTransport) Round() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.round
}

// Fetch implements Transport.
func (t *FaultTransport) Fetch(from uint64) (*Batch, error) {
	if b, err := t.fault(from); b != nil || err != nil {
		return b, err
	}
	return t.Inner.Fetch(from)
}

// FetchWait implements WaitTransport: the fault schedule applies per round
// exactly as for Fetch, and un-faulted rounds forward to the inner
// transport's FetchWait when it has one.
func (t *FaultTransport) FetchWait(ctx context.Context, from uint64, wait time.Duration) (*Batch, error) {
	if b, err := t.fault(from); b != nil || err != nil {
		return b, err
	}
	if wt, ok := t.Inner.(WaitTransport); ok {
		return wt.FetchWait(ctx, from, wait)
	}
	return t.Inner.Fetch(from)
}

// fault advances the round counter and applies the schedule: a partitioned
// round returns the error, a lagged round returns its empty batch, and an
// un-faulted round returns (nil, nil) — forward to the inner transport.
func (t *FaultTransport) fault(from uint64) (*Batch, error) {
	t.mu.Lock()
	t.round++
	r := t.round
	t.mu.Unlock()
	if t.Plan.Partitioned(t.Follower, r) {
		return nil, fmt.Errorf("%w: follower %d round %d", chaos.ErrPartitioned, t.Follower, r)
	}
	if t.Plan.Lagged(t.Follower, r) {
		// Delivery delayed: the round completes but the follower observes no
		// progress, exactly as if the leader had nothing new.
		return &Batch{From: from, Ack: from}, nil
	}
	return nil, nil
}

// FollowerStats is a point-in-time view of a follower's replication state.
type FollowerStats struct {
	// Syncs counts completed fetch rounds, including empty caught-up ones.
	Syncs int64 `json:"syncs"`
	// Applied counts records replayed into the served snapshot.
	Applied int64 `json:"applied"`
	// Bootstraps counts full-snapshot installs.
	Bootstraps int64 `json:"bootstraps"`
	// Failures counts retryable transport errors (partitions, timeouts).
	// Terminal divergences set Broken instead; this counter is the
	// "transient fetch errors" signal routers and operators watch.
	Failures int64 `json:"failures"`
	// Paused counts sync rounds skipped (or cut short) because the server
	// had a rollout candidate staged: replication holds still while the node
	// serves an uncommitted version and resumes when the stage resolves.
	Paused int64 `json:"paused"`
	// Epoch is the follower's published consistency token.
	Epoch uint64 `json:"epoch"`
	// LeaderAck is the leader's last acked epoch as of the last good sync.
	LeaderAck uint64 `json:"leader_ack"`
	// Lag is LeaderAck - Epoch at the last good sync: the replication-lag
	// signal a router health check reads.
	Lag uint64 `json:"lag"`
	// Broken reports a terminal divergence; the follower has stopped
	// replicating and must be rebuilt.
	Broken bool `json:"broken"`
}

// Follower replays the leader's stream into a read-only serve.Server. One
// sync loop per server; sync rounds serialize on syncMu. Counters live under
// mu, which is never held across network I/O — a follower parked in a long
// poll (RunWait) still answers Stats() immediately, so the /stats and
// /healthz surfaces it feeds stay responsive to router probes.
type Follower struct {
	server *serve.Server
	base   *core.Snapshot
	tr     Transport
	tracer *obs.Tracer

	syncMu sync.Mutex // serializes sync rounds end to end, fetch included
	mu     sync.Mutex // guards broken + stats; fast, never held while parked
	broken error
	stats  FollowerStats
}

// NewFollower builds a follower replaying into server. base is the epoch the
// follower's lineage starts from (the snapshot its server was created over);
// its config and catalog decode bootstrap images, and its (epoch, workloads)
// pair anchors the consistency-token check.
func NewFollower(server *serve.Server, base *core.Snapshot, tr Transport, tracer *obs.Tracer) (*Follower, error) {
	if server == nil || base == nil || tr == nil {
		return nil, fmt.Errorf("replicate: follower needs server, base snapshot, and transport")
	}
	return &Follower{server: server, base: base, tr: tr, tracer: tracer}, nil
}

// Broken returns the terminal divergence error, or nil while the follower is
// healthy. Once broken, every further SyncOnce refuses with the same error.
func (f *Follower) Broken() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.broken
}

// Stats returns the follower's replication counters.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.stats
	st.Epoch = f.server.Snapshot().Epoch()
	st.Broken = f.broken != nil
	return st
}

// failClosed records a terminal divergence: the follower stops replicating
// rather than serve state it cannot prove consistent with the leader.
func (f *Follower) failClosed(err error) error {
	f.broken = err
	if f.tracer.Enabled() {
		f.tracer.Event("replicate/follower", "diverged: "+err.Error())
	}
	return err
}

// tokenErr verifies the consistency token of a snapshot about to be
// published: every epoch a lineage advances past base is either a workload
// absorb (+1 workload) or a catalog update (+1 catalog version), so a
// lineage that started at base with W workloads must report exactly
// W + (epoch - baseEpoch) - (catalogVersion - baseCatalogVersion) workloads
// at every later epoch, and neither the epoch nor the catalog version may
// rewind.
func (f *Follower) tokenErr(snap *core.Snapshot) error {
	if snap.Epoch() < f.base.Epoch() || snap.CatalogVersion() < f.base.CatalogVersion() {
		return fmt.Errorf("%w: token (epoch %d, catalog %d) rewinds base (epoch %d, catalog %d)",
			ErrDiverged, snap.Epoch(), snap.CatalogVersion(), f.base.Epoch(), f.base.CatalogVersion())
	}
	dCat := snap.CatalogVersion() - f.base.CatalogVersion()
	dEpoch := snap.Epoch() - f.base.Epoch()
	if dCat > dEpoch {
		return fmt.Errorf("%w: token (epoch %d, catalog %d): more catalog updates than epochs since base",
			ErrDiverged, snap.Epoch(), snap.CatalogVersion())
	}
	wantW := f.base.Workloads() + int(dEpoch) - int(dCat)
	if snap.Workloads() != wantW {
		return fmt.Errorf("%w: token (epoch %d, catalog %d, workloads %d), want workloads %d",
			ErrDiverged, snap.Epoch(), snap.CatalogVersion(), snap.Workloads(), wantW)
	}
	return nil
}

// SyncOnce performs one replication round: fetch the batch for the current
// token, verify it, and replay it into the served snapshot. It returns how
// many epochs the follower advanced. Transport errors (partitions,
// timeouts) are retryable and only counted; verification failures are
// terminal — the follower breaks and refuses further syncs.
func (f *Follower) SyncOnce() (int, error) {
	n, _, err := f.syncRound(context.Background(), 0)
	return n, err
}

// SyncWait is SyncOnce through the transport's long-poll arm (WaitTransport)
// with the given wait budget; a transport without one falls back to a plain
// fetch.
func (f *Follower) SyncWait(ctx context.Context, wait time.Duration) (int, error) {
	n, _, err := f.syncRound(ctx, wait)
	return n, err
}

// syncRound is the shared body of SyncOnce/SyncWait. The middle return
// reports a paused round: the server has a rollout candidate staged, so the
// round applied nothing and the caller should back off instead of spinning.
func (f *Follower) syncRound(ctx context.Context, wait time.Duration) (int, bool, error) {
	f.syncMu.Lock()
	defer f.syncMu.Unlock()
	f.mu.Lock()
	if f.broken != nil {
		err := f.broken
		f.mu.Unlock()
		return 0, false, err
	}
	if f.pausedLocked() {
		f.mu.Unlock()
		return 0, true, nil
	}
	f.mu.Unlock()
	cur := f.server.Snapshot().Epoch()
	// The fetch — which may park at the leader for the whole wait budget —
	// runs outside f.mu so Stats() (and the /healthz it feeds) never blocks
	// behind a parked long poll.
	var b *Batch
	var err error
	if wt, ok := f.tr.(WaitTransport); ok && wait > 0 {
		b, err = wt.FetchWait(ctx, cur, wait)
	} else {
		b, err = f.tr.Fetch(cur)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err != nil {
		if ctx.Err() != nil {
			// Shutdown (or an abandoned round), not network weather: report
			// without counting a failure or breaking.
			return 0, false, ctx.Err()
		}
		if isTerminal(err) {
			return 0, false, f.failClosed(err)
		}
		f.stats.Failures++
		if f.tracer.Enabled() {
			f.tracer.Count("replicate.sync_failures", 1)
		}
		return 0, false, err
	}
	applied, err := f.applyLocked(cur, b)
	if err != nil {
		if errors.Is(err, serve.ErrStaged) {
			// The server staged a candidate between the fetch and the replay:
			// drop the batch (the leader still has it) and hold still.
			f.countPauseLocked()
			return 0, true, nil
		}
		return applied, false, f.failClosed(err)
	}
	f.stats.Syncs++
	f.stats.Applied += int64(applied)
	f.stats.LeaderAck = b.Ack
	f.stats.Lag = b.Ack - f.server.Snapshot().Epoch()
	if f.tracer.Enabled() {
		f.tracer.Count("replicate.syncs", 1)
		if applied > 0 {
			f.tracer.Count("replicate.applied", int64(applied))
		}
	}
	return applied, false, nil
}

// pausedLocked reports (and counts) a staged server. Caller holds f.mu.
func (f *Follower) pausedLocked() bool {
	if f.server.StagedVersion() == "" {
		return false
	}
	f.countPauseLocked()
	return true
}

func (f *Follower) countPauseLocked() {
	f.stats.Paused++
	if f.tracer.Enabled() {
		f.tracer.Count("replicate.paused", 1)
	}
}

// isTerminal classifies a transport error: divergence sentinels are
// terminal, anything else (network weather) is retryable.
func isTerminal(err error) bool {
	return errors.Is(err, ErrFollowerAhead) || errors.Is(err, ErrBadStream) || errors.Is(err, ErrDiverged)
}

// applyLocked replays one verified batch. Caller holds f.mu.
func (f *Follower) applyLocked(cur uint64, b *Batch) (int, error) {
	if b.Ack < cur {
		return 0, fmt.Errorf("%w: leader ack %d behind follower token %d", ErrDiverged, b.Ack, cur)
	}
	if len(b.Snapshot) > 0 {
		if v := f.server.StagedVersion(); v != "" {
			// A rollout candidate landed between the fetch and the replay:
			// installing a bootstrap now would clobber the staged version.
			return 0, fmt.Errorf("%w (version %q): bootstrap deferred", serve.ErrStaged, v)
		}
		snap, err := core.DecodeSnapshot(bytes.NewReader(b.Snapshot), f.base.Config(), f.base.Catalog())
		if err != nil {
			return 0, fmt.Errorf("%w: undecodable bootstrap: %v", ErrBadStream, err)
		}
		if snap.Epoch() != b.Ack {
			return 0, fmt.Errorf("%w: bootstrap epoch %d, batch ack %d", ErrBadStream, snap.Epoch(), b.Ack)
		}
		if snap.Epoch() < cur {
			return 0, fmt.Errorf("%w: bootstrap would rewind epoch %d to %d", ErrDiverged, cur, snap.Epoch())
		}
		if err := f.tokenErr(snap); err != nil {
			return 0, err
		}
		if err := f.server.Publish(snap); err != nil {
			return 0, fmt.Errorf("replicate: publishing bootstrap: %w", err)
		}
		f.stats.Bootstraps++
		if f.tracer.Enabled() {
			f.tracer.Count("replicate.bootstraps", 1)
		}
		return int(snap.Epoch() - cur), nil
	}
	if len(b.Frames) == 0 {
		return 0, nil
	}
	recs, valid, err := wal.ScanFrames(b.Frames)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadStream, err)
	}
	if valid != int64(len(b.Frames)) {
		return 0, fmt.Errorf("%w: %d trailing bytes fail frame verification",
			ErrBadStream, int64(len(b.Frames))-valid)
	}
	applied := 0
	for _, rec := range recs {
		e := f.server.Snapshot().Epoch()
		if rec.Epoch <= e {
			continue // duplicate delivery of an already-applied record
		}
		if rec.Epoch != e+1 {
			return applied, fmt.Errorf("%w: record epoch %d after state epoch %d (%v)",
				ErrDiverged, rec.Epoch, e, wal.ErrEpochGap)
		}
		if rec.Epoch > b.Ack {
			return applied, fmt.Errorf("%w: record epoch %d beyond batch ack %d", ErrBadStream, rec.Epoch, b.Ack)
		}
		switch rec.Kind {
		case wal.KindAbsorb:
			if err := f.server.Absorb(rec.Name, rec.LabelWeights, rec.PrunedVec); err != nil {
				if errors.Is(err, serve.ErrStaged) {
					return applied, err // paused mid-batch, not diverged
				}
				return applied, fmt.Errorf("%w: replaying epoch %d workload %q: %v",
					ErrDiverged, rec.Epoch, rec.Name, err)
			}
		case wal.KindCatalog:
			if rec.Catalog == nil {
				return applied, fmt.Errorf("%w: epoch %d catalog record without update payload",
					ErrBadStream, rec.Epoch)
			}
			if err := f.server.AbsorbCatalog(*rec.Catalog); err != nil {
				if errors.Is(err, serve.ErrStaged) {
					return applied, err
				}
				return applied, fmt.Errorf("%w: replaying epoch %d catalog update: %v",
					ErrDiverged, rec.Epoch, err)
			}
		default:
			// A record kind this binary does not know cannot be applied
			// faithfully: fail closed rather than guess (mixed-version fleet).
			return applied, fmt.Errorf("%w: epoch %d unknown record kind %q",
				ErrDiverged, rec.Epoch, rec.Kind)
		}
		if err := f.tokenErr(f.server.Snapshot()); err != nil {
			return applied, err
		}
		applied++
	}
	return applied, nil
}

// Run polls the transport every interval until ctx is done or the follower
// breaks. Retryable transport errors keep the loop alive; a terminal
// divergence returns it.
func (f *Follower) Run(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		if _, err := f.SyncOnce(); err != nil && f.Broken() != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
	}
}

// RunWait is the push-style replication loop: each round long-polls the
// leader with the given wait budget, so a caught-up follower applies a new
// append roughly one round trip after the leader acks it instead of waiting
// out a polling interval. Rounds that cannot make progress — transport
// errors, a staged rollout candidate, a transport without long-poll support —
// back off by retry (default 500ms) so the loop never spins; productive
// rounds chain immediately, the long poll itself being the pacing.
func (f *Follower) RunWait(ctx context.Context, wait, retry time.Duration) error {
	if wait <= 0 {
		return f.Run(ctx, retry)
	}
	if retry <= 0 {
		retry = 500 * time.Millisecond
	}
	_, hasWait := f.tr.(WaitTransport)
	for {
		_, paused, err := f.syncRound(ctx, wait)
		if err != nil && f.Broken() != nil {
			return err
		}
		if ctx.Err() != nil {
			return nil
		}
		if paused || err != nil || !hasWait {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(retry):
			}
		}
	}
}
