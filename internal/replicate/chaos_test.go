package replicate

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"vesta/internal/chaos"
	"vesta/internal/serve"
	"vesta/internal/wal"
)

// TestConvergenceMatrix is the replication analogue of the WAL crash matrix:
// for every injected partition/lag/leader-kill schedule, every surviving
// follower must recover to the leader's last acked epoch, reproduce the
// leader's state byte-for-byte, and serve byte-identical predict responses at
// workers 1, 4 and 16. The whole schedule is deterministic — a chaos.NetPlan
// decides faults as a pure function of (follower, round), absorbs happen at
// fixed rounds, and each follower syncs exactly once per round — so a failure
// replays exactly.
func TestConvergenceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("offline training fixture is expensive")
	}
	plans := []struct {
		name string
		plan chaos.NetPlan
	}{
		{"clean", chaos.NetPlan{}},
		{"partition-f0-early", chaos.NetPlan{
			Partitions: []chaos.Partition{{Follower: 0, From: 1, Until: 3}},
		}},
		{"partition-all-round1", chaos.NetPlan{
			Partitions: []chaos.Partition{
				{Follower: 0, From: 1, Until: 2},
				{Follower: 1, From: 1, Until: 2},
				{Follower: 2, From: 1, Until: 2},
			},
		}},
		{"partition-f2-long", chaos.NetPlan{
			Partitions: []chaos.Partition{{Follower: 2, From: 1, Until: 6}},
		}},
		{"lag-f1", chaos.NetPlan{
			Lags: []chaos.Lag{{Follower: 1, Rounds: 3}},
		}},
		{"leader-kill-r2", chaos.NetPlan{KillLeaderAt: 2}},
		{"leader-kill-r1", chaos.NetPlan{KillLeaderAt: 1}},
		{"kill+partition", chaos.NetPlan{
			Partitions:   []chaos.Partition{{Follower: 2, From: 2, Until: 4}},
			KillLeaderAt: 3,
		}},
		{"kill+lag", chaos.NetPlan{
			Lags:         []chaos.Lag{{Follower: 0, Rounds: 3}},
			KillLeaderAt: 2,
		}},
		{"partition+lag", chaos.NetPlan{
			Partitions: []chaos.Partition{{Follower: 1, From: 1, Until: 3}},
			Lags:       []chaos.Lag{{Follower: 2, Rounds: 2}},
		}},
	}
	// MaxTail 16 keeps every record (pure frame catch-up); MaxTail 1 forces
	// deep catch-ups through the snapshot-bootstrap path.
	for _, maxTail := range []int{16, 1} {
		for _, tc := range plans {
			t.Run(fmt.Sprintf("tail=%d/%s", maxTail, tc.name), func(t *testing.T) {
				runConvergence(t, tc.plan, maxTail)
			})
		}
	}
}

// runConvergence drives one plan to quiescence: a durable leader absorbing
// the fixture chain one record per round, three followers (workers 1/4/16)
// syncing once per round through FaultTransports, a leader kill modelled as
// close + WAL recovery + fresh Leader (empty tail, so lagging followers
// bootstrap), and enough heal rounds for every partition to lift.
func runConvergence(t *testing.T, plan chaos.NetPlan, maxTail int) {
	snaps, recs := fixture(t)
	base := snaps[0]
	dir := t.TempDir()

	mgr, recovered, err := wal.Open(base, wal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	leader, err := NewLeader(recovered, mgr, LeaderConfig{MaxTail: maxTail})
	if err != nil {
		t.Fatal(err)
	}

	workerCounts := []int{1, 4, 16}
	servers := make([]*serve.Server, len(workerCounts))
	followers := make([]*Follower, len(workerCounts))
	transports := make([]*FaultTransport, len(workerCounts))
	for i, w := range workerCounts {
		servers[i] = newReplica(t, base, w)
		transports[i] = &FaultTransport{Inner: leader, Plan: plan, Follower: i}
		followers[i], err = NewFollower(servers[i], base, transports[i], nil)
		if err != nil {
			t.Fatal(err)
		}
	}

	next := 0
	killed := false
	const rounds = 10 // past every partition interval and lag budget above
	for r := 1; r <= rounds; r++ {
		if !plan.LeaderAlive(r) && !killed {
			killed = true
			prevAck := leader.Ack()
			if err := mgr.Close(); err != nil {
				t.Fatal(err)
			}
			mgr2, recovered2, err := wal.Open(base, wal.Config{Dir: dir})
			if err != nil {
				t.Fatalf("leader recovery: %v", err)
			}
			t.Cleanup(func() { mgr2.Close() })
			if recovered2.Epoch() != prevAck {
				t.Fatalf("leader restart recovered epoch %d, acked %d", recovered2.Epoch(), prevAck)
			}
			leader, err = NewLeader(recovered2, mgr2, LeaderConfig{MaxTail: maxTail})
			if err != nil {
				t.Fatal(err)
			}
			mgr = mgr2
			// The restarted leader's tail is empty (horizon = recovered
			// epoch): followers behind it will take the bootstrap path.
			for _, ft := range transports {
				ft.Inner = leader
			}
		}
		if next < len(recs) {
			rec := recs[next]
			if err := leader.Append(rec.Name, rec.LabelWeights, rec.PrunedVec, rec.Epoch); err != nil {
				t.Fatalf("round %d append: %v", r, err)
			}
			if err := leader.Committed(snaps[rec.Epoch]); err != nil {
				t.Fatalf("round %d commit: %v", r, err)
			}
			next++
		}
		for i, f := range followers {
			if _, err := f.SyncOnce(); err != nil && f.Broken() != nil {
				t.Fatalf("round %d: follower %d diverged: %v", r, i, err)
			}
		}
	}

	// Every follower recovered to the leader's last acked epoch, with the
	// leader's exact state.
	ack := leader.Ack()
	if ack != uint64(len(recs)) {
		t.Fatalf("leader acked %d, want %d", ack, len(recs))
	}
	want := encodeSnap(t, snaps[len(recs)])
	for i, srv := range servers {
		if followers[i].Broken() != nil {
			t.Fatalf("follower %d broken: %v", i, followers[i].Broken())
		}
		if got := srv.Snapshot().Epoch(); got != ack {
			t.Fatalf("follower %d at epoch %d, leader acked %d", i, got, ack)
		}
		if !bytes.Equal(encodeSnap(t, srv.Snapshot()), want) {
			t.Fatalf("follower %d state differs from the leader's", i)
		}
	}

	// Byte-identical serving across worker counts 1/4/16.
	req := serve.Request{App: "Hadoop-terasort", Seed: 7, Top: 5}
	var ref []byte
	for i, srv := range servers {
		body, err := srv.PredictBytes(context.Background(), req)
		if err != nil {
			t.Fatalf("follower %d predict: %v", i, err)
		}
		if i == 0 {
			ref = body
			var resp struct {
				Epoch     uint64 `json:"epoch"`
				Workloads int    `json:"workloads"`
			}
			if err := json.Unmarshal(body, &resp); err != nil {
				t.Fatal(err)
			}
			if resp.Epoch != ack || resp.Workloads != baseWorkloads+int(ack) {
				t.Fatalf("response token (%d, %d) disagrees with acked epoch %d",
					resp.Epoch, resp.Workloads, ack)
			}
			continue
		}
		if !bytes.Equal(body, ref) {
			t.Fatalf("follower %d (workers=%d) response differs from workers=%d:\n%s\nvs\n%s",
				i, workerCounts[i], workerCounts[0], body, ref)
		}
	}
}
