package replicate

import (
	"bytes"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/oracle"
	"vesta/internal/serve"
	"vesta/internal/sim"
	"vesta/internal/wal"
	"vesta/internal/workload"
)

// baseWorkloads is the source-training workload count every epoch-0 snapshot
// reports (the b of the b+e consistency token).
const baseWorkloads = 13

var (
	fixOnce  sync.Once
	fixErr   error
	fixSnaps []*core.Snapshot // epochs 0 (base) .. 3
	fixRecs  []wal.Record     // the absorbs producing epochs 1..3
)

// fixture trains one system and pre-computes a three-absorb chain — the same
// shared read-only fixture shape the wal package uses: snapshots at epochs
// 0..3 plus the records that produce them.
func fixture(t testing.TB) ([]*core.Snapshot, []wal.Record) {
	t.Helper()
	fixOnce.Do(func() {
		sys, err := core.New(core.Config{Seed: 1}, cloud.Catalog120())
		if err != nil {
			fixErr = err
			return
		}
		meter := oracle.NewMeter(sim.New(sim.DefaultConfig()), 1)
		if err := sys.TrainOffline(workload.BySet(workload.SourceTraining), meter); err != nil {
			fixErr = err
			return
		}
		base, err := sys.Snapshot()
		if err != nil {
			fixErr = err
			return
		}
		fixSnaps = []*core.Snapshot{base}
		cur := base
		for i, appName := range []string{"Spark-kmeans", "Spark-sort", "Spark-grep"} {
			app, err := workload.ByName(appName)
			if err != nil {
				fixErr = err
				return
			}
			pred, err := cur.Predict(app, oracle.NewMeter(sim.New(sim.DefaultConfig()), uint64(100+i)))
			if err != nil {
				fixErr = err
				return
			}
			target := fmt.Sprintf("target-%d", i+1)
			next, err := cur.Absorb(target, pred.LabelWeights, pred.PrunedVec)
			if err != nil {
				fixErr = err
				return
			}
			fixRecs = append(fixRecs, wal.Record{
				Name: target, LabelWeights: pred.LabelWeights,
				PrunedVec: pred.PrunedVec, Epoch: next.Epoch(),
			})
			fixSnaps = append(fixSnaps, next)
			cur = next
		}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixSnaps, fixRecs
}

// encodeSnap returns the snapshot's deterministic serialization — the state
// fingerprint the convergence assertions compare.
func encodeSnap(t testing.TB, sn *core.Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sn.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newReplica builds a read-only serve.Server over snap, the follower half of
// a replication pair.
func newReplica(t testing.TB, snap *core.Snapshot, workers int) *serve.Server {
	t.Helper()
	srv, err := serve.New(snap, serve.Config{Workers: workers, QueueSize: 64, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// caughtUpLeader returns a memory-backed leader with the whole fixture chain
// appended and committed.
func caughtUpLeader(t testing.TB, cfg LeaderConfig) *Leader {
	t.Helper()
	snaps, recs := fixture(t)
	l, err := NewLeader(snaps[0], nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := l.Append(rec.Name, rec.LabelWeights, rec.PrunedVec, rec.Epoch); err != nil {
			t.Fatal(err)
		}
		if err := l.Committed(snaps[rec.Epoch]); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

// transportFunc adapts a function to the Transport interface for fault
// crafting in tests.
type transportFunc func(from uint64) (*Batch, error)

func (f transportFunc) Fetch(from uint64) (*Batch, error) { return f(from) }

func TestLeaderAppendEpochGuard(t *testing.T) {
	snaps, recs := fixture(t)
	l, err := NewLeader(snaps[0], nil, LeaderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 2 before epoch 1 is a gap; same epoch twice is a replay.
	if err := l.Append(recs[1].Name, recs[1].LabelWeights, recs[1].PrunedVec, recs[1].Epoch); err == nil {
		t.Fatal("epoch gap accepted")
	}
	if err := l.Append(recs[0].Name, recs[0].LabelWeights, recs[0].PrunedVec, recs[0].Epoch); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(recs[0].Name, recs[0].LabelWeights, recs[0].PrunedVec, recs[0].Epoch); err == nil {
		t.Fatal("duplicate epoch accepted")
	}
	if got := l.Ack(); got != 1 {
		t.Fatalf("ack %d, want 1", got)
	}
}

func TestLeaderFetchCaughtUpIsEmpty(t *testing.T) {
	l := caughtUpLeader(t, LeaderConfig{})
	b, err := l.Fetch(l.Ack())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Frames) != 0 || len(b.Snapshot) != 0 || b.Ack != l.Ack() {
		t.Fatalf("caught-up batch not empty: %+v", b)
	}
}

func TestLeaderFetchFramesAreWALFrames(t *testing.T) {
	_, recs := fixture(t)
	l := caughtUpLeader(t, LeaderConfig{})
	b, err := l.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Snapshot) != 0 {
		t.Fatal("tail catch-up answered with a bootstrap")
	}
	got, valid, err := wal.ScanFrames(b.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if valid != int64(len(b.Frames)) {
		t.Fatalf("frames have %d unverifiable trailing bytes", int64(len(b.Frames))-valid)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records, want %d", len(got), len(recs))
	}
	for i, rec := range got {
		if rec.Name != recs[i].Name || rec.Epoch != recs[i].Epoch {
			t.Fatalf("record %d: got (%s, %d), want (%s, %d)",
				i, rec.Name, rec.Epoch, recs[i].Name, recs[i].Epoch)
		}
	}
	// A mid-chain token gets only the suffix.
	b2, err := l.Fetch(2)
	if err != nil {
		t.Fatal(err)
	}
	got2, _, err := wal.ScanFrames(b2.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 1 || got2[0].Epoch != 3 {
		t.Fatalf("suffix fetch: %+v", got2)
	}
}

func TestLeaderFetchFollowerAhead(t *testing.T) {
	l := caughtUpLeader(t, LeaderConfig{})
	if _, err := l.Fetch(l.Ack() + 1); !errors.Is(err, ErrFollowerAhead) {
		t.Fatalf("err = %v, want ErrFollowerAhead", err)
	}
}

func TestLeaderBootstrapBelowHorizon(t *testing.T) {
	snaps, _ := fixture(t)
	l := caughtUpLeader(t, LeaderConfig{MaxTail: 1})
	st := l.LeaderStats()
	if st.Horizon != 2 || st.TailLen != 1 {
		t.Fatalf("horizon %d tail %d, want 2 and 1", st.Horizon, st.TailLen)
	}
	b, err := l.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Snapshot) == 0 {
		t.Fatal("below-horizon fetch did not bootstrap")
	}
	snap, err := core.DecodeSnapshot(bytes.NewReader(b.Snapshot), snaps[0].Config(), snaps[0].Catalog())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch() != 3 || b.Ack != 3 {
		t.Fatalf("bootstrap at epoch %d ack %d, want 3", snap.Epoch(), b.Ack)
	}
	if !bytes.Equal(encodeSnap(t, snap), encodeSnap(t, snaps[3])) {
		t.Fatal("bootstrap image differs from the committed snapshot")
	}
	// Within the tail, frames still flow.
	b2, err := l.Fetch(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(b2.Snapshot) != 0 || len(b2.Frames) == 0 {
		t.Fatalf("in-tail fetch bootstrapped: %+v", b2)
	}
}

func TestLeaderForwardsInnerWALStats(t *testing.T) {
	snaps, recs := fixture(t)
	mgr, recovered, err := wal.Open(snaps[0], wal.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	l, err := NewLeader(recovered, mgr, LeaderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rec := recs[0]
	if err := l.Append(rec.Name, rec.LabelWeights, rec.PrunedVec, rec.Epoch); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Epoch != 1 || st.Appends != 1 || st.LogBytes == 0 {
		t.Fatalf("forwarded wal stats: %+v", st)
	}
	// The durable ack happened before the tail retained the record.
	if mgr.Epoch() != 1 {
		t.Fatalf("inner wal at epoch %d, want 1", mgr.Epoch())
	}
}

func TestFollowerSyncsToLeaderAck(t *testing.T) {
	snaps, recs := fixture(t)
	l := caughtUpLeader(t, LeaderConfig{})
	srv := newReplica(t, snaps[0], 2)
	f, err := NewFollower(srv, snaps[0], l, nil)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := f.SyncOnce()
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(recs) {
		t.Fatalf("applied %d, want %d", applied, len(recs))
	}
	if got := srv.Snapshot().Epoch(); got != 3 {
		t.Fatalf("follower at epoch %d, want 3", got)
	}
	if !bytes.Equal(encodeSnap(t, srv.Snapshot()), encodeSnap(t, snaps[3])) {
		t.Fatal("replayed state differs from the leader's snapshot")
	}
	st := f.Stats()
	if st.Syncs != 1 || st.Applied != 3 || st.Lag != 0 || st.LeaderAck != 3 || st.Broken {
		t.Fatalf("stats: %+v", st)
	}
	// A second sync is an empty no-op.
	if applied, err = f.SyncOnce(); err != nil || applied != 0 {
		t.Fatalf("caught-up sync: applied %d err %v", applied, err)
	}
}

func TestFollowerBootstrapSync(t *testing.T) {
	snaps, _ := fixture(t)
	// Negative MaxTail retains nothing: any follower behind the ack must
	// bootstrap from the committed snapshot.
	l := caughtUpLeader(t, LeaderConfig{MaxTail: -1})
	srv := newReplica(t, snaps[0], 2)
	f, err := NewFollower(srv, snaps[0], l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Bootstraps != 1 || st.Epoch != 3 {
		t.Fatalf("stats after bootstrap: %+v", st)
	}
	if !bytes.Equal(encodeSnap(t, srv.Snapshot()), encodeSnap(t, snaps[3])) {
		t.Fatal("bootstrapped state differs from the leader's snapshot")
	}
}

func TestFollowerIncrementalReplay(t *testing.T) {
	snaps, recs := fixture(t)
	l, err := NewLeader(snaps[0], nil, LeaderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv := newReplica(t, snaps[0], 1)
	f, err := NewFollower(srv, snaps[0], l, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := l.Append(rec.Name, rec.LabelWeights, rec.PrunedVec, rec.Epoch); err != nil {
			t.Fatal(err)
		}
		if err := l.Committed(snaps[rec.Epoch]); err != nil {
			t.Fatal(err)
		}
		applied, err := f.SyncOnce()
		if err != nil || applied != 1 {
			t.Fatalf("epoch %d: applied %d err %v", rec.Epoch, applied, err)
		}
		if got, want := srv.Snapshot().Workloads(), baseWorkloads+int(rec.Epoch); got != want {
			t.Fatalf("token workloads %d at epoch %d, want %d", got, rec.Epoch, want)
		}
	}
}

func TestFollowerAheadFailsClosed(t *testing.T) {
	snaps, _ := fixture(t)
	l, err := NewLeader(snaps[0], nil, LeaderConfig{}) // ack 0
	if err != nil {
		t.Fatal(err)
	}
	srv := newReplica(t, snaps[1], 1) // follower already at epoch 1
	f, err := NewFollower(srv, snaps[0], l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SyncOnce(); !errors.Is(err, ErrFollowerAhead) {
		t.Fatalf("err = %v, want ErrFollowerAhead", err)
	}
	if f.Broken() == nil {
		t.Fatal("follower not broken after divergence")
	}
	// Fail-closed is sticky.
	if _, err := f.SyncOnce(); !errors.Is(err, ErrFollowerAhead) {
		t.Fatalf("broken follower synced again: %v", err)
	}
	if !f.Stats().Broken {
		t.Fatal("stats do not report broken")
	}
}

func TestFollowerCorruptFrameFailsClosed(t *testing.T) {
	snaps, _ := fixture(t)
	l := caughtUpLeader(t, LeaderConfig{})
	tr := transportFunc(func(from uint64) (*Batch, error) {
		b, err := l.Fetch(from)
		if err != nil {
			return nil, err
		}
		if len(b.Frames) > 10 {
			b.Frames[10] ^= 0xFF // flip one payload byte: CRC must catch it
		}
		return b, nil
	})
	srv := newReplica(t, snaps[0], 1)
	f, err := NewFollower(srv, snaps[0], tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SyncOnce(); !errors.Is(err, ErrBadStream) {
		t.Fatalf("err = %v, want ErrBadStream", err)
	}
	if f.Broken() == nil {
		t.Fatal("follower not broken after corrupt stream")
	}
	// Nothing of the corrupt batch was applied.
	if srv.Snapshot().Epoch() != 0 {
		t.Fatalf("corrupt batch advanced the follower to %d", srv.Snapshot().Epoch())
	}
}

func TestFollowerEpochGapDiverges(t *testing.T) {
	snaps, recs := fixture(t)
	frame, err := wal.EncodeFrame(recs[1]) // epoch 2 with no epoch 1 before it
	if err != nil {
		t.Fatal(err)
	}
	tr := transportFunc(func(from uint64) (*Batch, error) {
		return &Batch{From: from, Ack: 2, Frames: frame}, nil
	})
	srv := newReplica(t, snaps[0], 1)
	f, err := NewFollower(srv, snaps[0], tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SyncOnce(); !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
}

func TestFollowerRecordBeyondAckDiverges(t *testing.T) {
	snaps, recs := fixture(t)
	frame, err := wal.EncodeFrame(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	// The batch claims ack 0 but carries epoch 1: the stream asserts state
	// the leader never acknowledged.
	tr := transportFunc(func(from uint64) (*Batch, error) {
		return &Batch{From: from, Ack: 0, Frames: frame}, nil
	})
	srv := newReplica(t, snaps[0], 1)
	f, err := NewFollower(srv, snaps[0], tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SyncOnce(); !errors.Is(err, ErrBadStream) {
		t.Fatalf("err = %v, want ErrBadStream", err)
	}
}

func TestFollowerRewindDiverges(t *testing.T) {
	snaps, _ := fixture(t)
	// A leader ack behind the follower's own token is divergence even with an
	// otherwise-plausible batch.
	tr := transportFunc(func(from uint64) (*Batch, error) {
		return &Batch{From: from, Ack: 0}, nil
	})
	srv := newReplica(t, snaps[2], 1)
	f, err := NewFollower(srv, snaps[0], tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SyncOnce(); !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
}

func TestFollowerDuplicateDeliveryIsIdempotent(t *testing.T) {
	snaps, recs := fixture(t)
	var frames []byte
	for _, rec := range recs {
		fr, err := wal.EncodeFrame(rec)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, fr...)
	}
	// The transport always replays the full chain regardless of the token —
	// at-least-once delivery. Already-applied records must be skipped.
	tr := transportFunc(func(from uint64) (*Batch, error) {
		return &Batch{From: from, Ack: 3, Frames: frames}, nil
	})
	srv := newReplica(t, snaps[0], 1)
	f, err := NewFollower(srv, snaps[0], tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if applied, err := f.SyncOnce(); err != nil || applied != 3 {
		t.Fatalf("first sync: applied %d err %v", applied, err)
	}
	if applied, err := f.SyncOnce(); err != nil || applied != 0 {
		t.Fatalf("duplicate sync: applied %d err %v", applied, err)
	}
	if !bytes.Equal(encodeSnap(t, srv.Snapshot()), encodeSnap(t, snaps[3])) {
		t.Fatal("duplicate delivery changed the state")
	}
}

func TestFollowerRetryableErrorDoesNotBreak(t *testing.T) {
	snaps, _ := fixture(t)
	l := caughtUpLeader(t, LeaderConfig{})
	fails := 2
	tr := transportFunc(func(from uint64) (*Batch, error) {
		if fails > 0 {
			fails--
			return nil, fmt.Errorf("transient network weather")
		}
		return l.Fetch(from)
	})
	srv := newReplica(t, snaps[0], 1)
	f, err := NewFollower(srv, snaps[0], tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := f.SyncOnce(); err == nil {
			t.Fatal("transient error swallowed")
		}
		if f.Broken() != nil {
			t.Fatal("transient error broke the follower")
		}
	}
	if _, err := f.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Failures != 2 || st.Epoch != 3 {
		t.Fatalf("stats after recovery: %+v", st)
	}
}

func TestFollowerBaseTokenGuard(t *testing.T) {
	snaps, _ := fixture(t)
	srv := newReplica(t, snaps[1], 1)
	f, err := NewFollower(srv, snaps[1], nil, nil)
	if err == nil {
		_ = f
		t.Fatal("nil transport accepted")
	}
	f, err = NewFollower(srv, snaps[1], transportFunc(func(uint64) (*Batch, error) { return nil, nil }), nil)
	if err != nil {
		t.Fatal(err)
	}
	// A snapshot below the base epoch violates the token ordering invariant.
	if err := f.tokenErr(snaps[0]); !errors.Is(err, ErrDiverged) {
		t.Fatalf("below-base token accepted: %v", err)
	}
	if err := f.tokenErr(snaps[3]); err != nil {
		t.Fatalf("valid lineage token rejected: %v", err)
	}
}

func TestHTTPReplicationRoundTrip(t *testing.T) {
	snaps, _ := fixture(t)
	l := caughtUpLeader(t, LeaderConfig{})
	ts := httptest.NewServer(l.Handler())
	t.Cleanup(ts.Close)

	tr := &HTTPTransport{URL: ts.URL}
	srv := newReplica(t, snaps[0], 2)
	f, err := NewFollower(srv, snaps[0], tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if applied, err := f.SyncOnce(); err != nil || applied != 3 {
		t.Fatalf("http sync: applied %d err %v", applied, err)
	}
	if !bytes.Equal(encodeSnap(t, srv.Snapshot()), encodeSnap(t, snaps[3])) {
		t.Fatal("http-replicated state differs from the leader's snapshot")
	}

	// The wire surfaces divergence as the typed sentinel through a 409.
	if _, err := tr.Fetch(99); !errors.Is(err, ErrFollowerAhead) {
		t.Fatalf("409 not mapped: %v", err)
	}
	// A malformed token is a client error, not a crash.
	resp, err := ts.Client().Get(ts.URL + "/replicate/frames?from=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad token answered %d", resp.StatusCode)
	}
	// Status endpoint reports the shipping counters.
	resp, err = ts.Client().Get(ts.URL + "/replicate/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status answered %d", resp.StatusCode)
	}
}
