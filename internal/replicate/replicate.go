// Package replicate turns a single durable `vesta serve` node into a
// replicated serving fleet: a leader that owns absorbs and streams CRC32C-
// framed WAL records to followers, followers that replay those frames into
// their own snapshots, and a router (router.go) that consistent-hashes
// predict traffic across healthy followers and fails over when one dies.
//
// Replication protocol (DESIGN.md §13):
//
//   - The wire format IS the WAL format. The leader interposes on the serve
//     layer's write-ahead hook: every absorb is first made durable by the
//     inner WAL (when one is configured), then retained in an in-memory tail
//     of wal.Record frames. A follower polls with its consistency token —
//     the epoch of its published snapshot — and receives either the framed
//     records covering (token, leader ack], or, when it has fallen behind
//     the leader's retained horizon, a full checksummed snapshot bootstrap.
//   - The token ordering invariant: a follower's (epoch, workloads) token is
//     verifiably ≤ the leader's last acked epoch at every sync. Any
//     violation — follower ahead of leader, a record that skips an epoch, a
//     frame that fails its CRC, a bootstrap whose workload count disagrees
//     with base+epoch — is divergence, and the follower fails closed
//     (ErrDiverged / wal.ErrEpochGap semantics) instead of guessing, exactly
//     like WAL replay refuses an inconsistent log.
//   - Followers are read replicas: their serve.Server runs with
//     Config.ReadOnly so POST /absorb answers 403, and every state change
//     arrives through the replication stream. Durability lives at the
//     leader; a restarted follower re-syncs from the leader's checkpoint +
//     tail.
//
// Determinism: replayed snapshots are rebuilt by the same core.Snapshot
// codec and Absorb paths the crash-recovery matrix proves byte-identical, so
// once a follower's token equals the leader's ack, its predict responses are
// byte-for-byte the leader's at any worker count.
package replicate

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"vesta/internal/cloud"
	"vesta/internal/core"
	"vesta/internal/obs"
	"vesta/internal/serve"
	"vesta/internal/wal"
)

// Typed replication errors. Callers match with errors.Is.
var (
	// ErrFollowerAhead is returned by the leader when a follower's token is
	// beyond the leader's last acked epoch: the follower has state the
	// leader never acknowledged, which is divergence, not lag.
	ErrFollowerAhead = errors.New("replicate: follower token ahead of leader ack")
	// ErrBadStream marks a replication batch that fails verification: a
	// frame whose CRC32C mismatches, a partial frame, an undecodable
	// bootstrap. Nothing tears an in-flight batch, so the follower fails
	// closed instead of truncating like crash recovery would.
	ErrBadStream = errors.New("replicate: invalid replication stream")
	// ErrDiverged marks a follower whose state can no longer be reconciled
	// with the leader's: token ordering violated, epoch gap in the stream,
	// or a consistency-token mismatch after replay. A diverged follower
	// stops replicating (fail closed) and must be rebuilt.
	ErrDiverged = errors.New("replicate: follower diverged from leader")
)

// Batch is one replication response: the leader's ack plus either a framed
// record stream continuing the follower's token or a full snapshot
// bootstrap. An empty batch (no frames, no snapshot) means the follower is
// caught up to Ack.
type Batch struct {
	// From echoes the follower token the batch continues from.
	From uint64 `json:"from"`
	// Ack is the leader's last durably acknowledged epoch.
	Ack uint64 `json:"ack"`
	// Frames is the CRC32C-framed wal.Record stream covering (From, Ack].
	Frames []byte `json:"frames,omitempty"`
	// Snapshot is a full encoded snapshot at epoch Ack, sent when From is
	// below the leader's retained frame horizon (follower too far behind,
	// or the leader restarted and compacted its history).
	Snapshot []byte `json:"snapshot,omitempty"`
}

// LeaderConfig tunes a Leader. Zero values take the defaults noted per field.
type LeaderConfig struct {
	// MaxTail bounds the in-memory record tail; older records are dropped
	// and the horizon rises, turning deep catch-ups into snapshot
	// bootstraps. Default 1024, negative keeps nothing (every sync that is
	// not already caught up bootstraps).
	MaxTail int
	// MaxWait caps how long a FetchWait long-poll parks server-side,
	// whatever the client asked for; default 25 seconds. The cap bounds how
	// many goroutines a slow or malicious client can hold open and keeps the
	// poll comfortably inside common proxy idle timeouts.
	MaxWait time.Duration
	// Tracer receives the replication counters (replicate.appends,
	// replicate.batches, replicate.bootstraps).
	Tracer *obs.Tracer
}

// LeaderStats is a point-in-time view of the leader's shipping counters.
type LeaderStats struct {
	// Ack is the last durably acknowledged epoch.
	Ack uint64 `json:"ack"`
	// Horizon is the epoch below which frame catch-up is impossible and a
	// sync turns into a snapshot bootstrap.
	Horizon uint64 `json:"horizon"`
	// TailLen is the number of retained records.
	TailLen int `json:"tail_len"`
	// Batches counts frame batches served (including empty caught-up ones).
	Batches int64 `json:"batches"`
	// Bootstraps counts full-snapshot responses served.
	Bootstraps int64 `json:"bootstraps"`
	// FramesShipped counts records shipped inside frame batches.
	FramesShipped int64 `json:"frames_shipped"`
	// Waiters is the number of long-poll fetches currently parked waiting
	// for the next append (a gauge, not a counter).
	Waiters int64 `json:"waiters"`
	// LongPolls counts FetchWait calls that actually parked.
	LongPolls int64 `json:"long_polls"`
}

// Leader owns absorbs for a replicated fleet. It implements
// serve.WriteAheadLog so it slots into serve.Config.WAL exactly where a
// wal.Manager would: Append forwards to the inner durable layer first (its
// nil return is the durability ack), then retains the record for shipping.
// With a nil inner WAL the leader acknowledges from memory — replication
// without durability — which a production fleet should not do, but tests
// and ephemeral deployments may.
//
// Leader also implements Transport, so an in-process follower can sync from
// it directly; HTTP followers go through Handler.
type Leader struct {
	inner  serve.WriteAheadLog
	tracer *obs.Tracer

	maxWait time.Duration

	mu      sync.Mutex
	ack     uint64
	horizon uint64 // epoch before the first retained record
	tail    []wal.Record
	snap    *core.Snapshot // latest committed snapshot, the bootstrap image
	maxTail int
	stats   LeaderStats
	// notify is closed (and replaced) whenever the ack advances or the
	// retained state is replaced wholesale: the broadcast that wakes every
	// parked FetchWait.
	notify chan struct{}
}

// NewLeader builds a leader over the serving snapshot start (epoch = the
// leader's recovered state) and an optional inner durable WAL.
func NewLeader(start *core.Snapshot, inner serve.WriteAheadLog, cfg LeaderConfig) (*Leader, error) {
	if start == nil {
		return nil, fmt.Errorf("replicate: nil start snapshot")
	}
	if cfg.MaxTail == 0 {
		cfg.MaxTail = 1024
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 25 * time.Second
	}
	return &Leader{
		inner:   inner,
		tracer:  cfg.Tracer,
		maxWait: cfg.MaxWait,
		ack:     start.Epoch(),
		horizon: start.Epoch(),
		snap:    start,
		maxTail: cfg.MaxTail,
		notify:  make(chan struct{}),
	}, nil
}

// Append implements serve.WriteAheadLog: durably log the absorb through the
// inner WAL, then retain it for shipping. Returning nil is the ack.
func (l *Leader) Append(name string, labelWeights, prunedVec []float64, epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if epoch != l.ack+1 {
		return fmt.Errorf("replicate: append epoch %d, want %d", epoch, l.ack+1)
	}
	if l.inner != nil {
		if err := l.inner.Append(name, labelWeights, prunedVec, epoch); err != nil {
			return err
		}
	}
	l.retainLocked(wal.Record{
		Name: name, LabelWeights: labelWeights, PrunedVec: prunedVec, Epoch: epoch,
	})
	return nil
}

// AppendCatalog implements serve.WriteAheadLog for the second record kind:
// the catalog update is made durable by the inner WAL, then retained in the
// same shipping tail as absorbs — followers replay both kinds in epoch order
// from one stream.
func (l *Leader) AppendCatalog(up cloud.Update, epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if epoch != l.ack+1 {
		return fmt.Errorf("replicate: append epoch %d, want %d", epoch, l.ack+1)
	}
	if l.inner != nil {
		if err := l.inner.AppendCatalog(up, epoch); err != nil {
			return err
		}
	}
	u := up
	l.retainLocked(wal.Record{Kind: wal.KindCatalog, Catalog: &u, Epoch: epoch})
	return nil
}

// retainLocked appends one acked record to the shipping tail, trimming past
// MaxTail (the horizon rises and deep catch-ups become bootstraps).
func (l *Leader) retainLocked(rec wal.Record) {
	l.tail = append(l.tail, rec)
	keep := l.maxTail
	if keep < 0 {
		keep = 0
	}
	for len(l.tail) > keep {
		l.tail = l.tail[1:]
		l.horizon++
	}
	l.ack = rec.Epoch
	l.wakeLocked()
	if l.tracer.Enabled() {
		l.tracer.Count("replicate.appends", 1)
	}
}

// wakeLocked broadcasts progress to every parked FetchWait. Caller holds l.mu.
func (l *Leader) wakeLocked() {
	close(l.notify)
	l.notify = make(chan struct{})
}

// Committed implements serve.WriteAheadLog: retain the published snapshot as
// the bootstrap image and give the inner WAL its compaction chance.
func (l *Leader) Committed(snap *core.Snapshot) error {
	l.mu.Lock()
	l.snap = snap
	l.mu.Unlock()
	if l.inner != nil {
		return l.inner.Committed(snap)
	}
	return nil
}

// Stats forwards the inner WAL's durability counters when it reports them
// (wal.Manager does); a memory-only leader reports just its ack epoch.
func (l *Leader) Stats() wal.Stats {
	if r, ok := l.inner.(interface{ Stats() wal.Stats }); ok {
		return r.Stats()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return wal.Stats{Epoch: l.ack}
}

// Ack returns the last durably acknowledged epoch.
func (l *Leader) Ack() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ack
}

// LeaderStats returns the shipping counters.
func (l *Leader) LeaderStats() LeaderStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.Ack = l.ack
	st.Horizon = l.horizon
	st.TailLen = len(l.tail)
	return st
}

// Fetch implements Transport: answer one follower sync for the given token.
// A token at the ack returns an empty batch; a token within the retained
// tail returns the framed records covering (from, ack]; a token below the
// horizon returns a snapshot bootstrap; a token beyond the ack is
// divergence and fails with ErrFollowerAhead.
func (l *Leader) Fetch(from uint64) (*Batch, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from > l.ack {
		return nil, fmt.Errorf("%w: token %d, ack %d", ErrFollowerAhead, from, l.ack)
	}
	if from < l.horizon {
		// The frames below the horizon are gone (bounded tail, or a leader
		// restart compacted them): ship the whole committed snapshot. The
		// image may trail the ack by the one record whose Committed has not
		// landed yet; the follower picks that record up next sync.
		var buf bytes.Buffer
		if err := l.snap.Encode(&buf); err != nil {
			return nil, fmt.Errorf("replicate: encoding bootstrap: %w", err)
		}
		l.stats.Bootstraps++
		if l.tracer.Enabled() {
			l.tracer.Count("replicate.bootstraps", 1)
		}
		return &Batch{From: from, Ack: l.snap.Epoch(), Snapshot: buf.Bytes()}, nil
	}
	var frames []byte
	shipped := int64(0)
	for _, rec := range l.tail[from-l.horizon:] {
		frame, err := wal.EncodeFrame(rec)
		if err != nil {
			return nil, fmt.Errorf("replicate: framing epoch %d: %w", rec.Epoch, err)
		}
		frames = append(frames, frame...)
		shipped++
	}
	l.stats.Batches++
	l.stats.FramesShipped += shipped
	if l.tracer.Enabled() {
		l.tracer.Count("replicate.batches", 1)
		if shipped > 0 {
			l.tracer.Count("replicate.frames_shipped", shipped)
		}
	}
	return &Batch{From: from, Ack: l.ack, Frames: frames}, nil
}

// FetchWait is Fetch with push-style delivery: when the follower is already
// caught up (from == ack) the call parks until the next append lands, the
// wait budget expires, or ctx is canceled — cutting follower lag from the
// polling interval to roughly one round trip. Expiry returns an empty
// caught-up batch (never an error: an idle leader is healthy); cancellation
// returns ctx.Err() after releasing the waiter slot. The wait budget is
// capped server-side at the leader's MaxWait.
func (l *Leader) FetchWait(ctx context.Context, from uint64, wait time.Duration) (*Batch, error) {
	if wait > l.maxWait {
		wait = l.maxWait
	}
	if wait <= 0 {
		return l.Fetch(from)
	}
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		l.mu.Lock()
		if from != l.ack {
			// Behind (frames or bootstrap), or ahead (divergence): Fetch
			// answers immediately either way.
			l.mu.Unlock()
			return l.Fetch(from)
		}
		ch := l.notify
		l.stats.Waiters++
		if timer == nil {
			l.stats.LongPolls++
			if l.tracer.Enabled() {
				l.tracer.Count("replicate.long_polls", 1)
			}
			timer = time.NewTimer(wait)
		}
		l.mu.Unlock()
		release := func() {
			l.mu.Lock()
			l.stats.Waiters--
			l.mu.Unlock()
		}
		select {
		case <-ch:
			release()
			// Progress happened; loop to ship it (or re-park on a spurious
			// wholesale-install wake that left the ack unchanged).
		case <-timer.C:
			release()
			return l.Fetch(from) // caught-up empty batch
		case <-ctx.Done():
			release()
			return nil, ctx.Err()
		}
	}
}

// Install implements serve.CheckpointInstaller for staged-upgrade commits
// (DESIGN.md §16): the candidate snapshot replaces the leader's retained
// replication state wholesale — ack and horizon jump to its epoch, the frame
// tail clears, and it becomes the bootstrap image — after the inner WAL (when
// it supports installation) has made it the durable state. Followers still
// holding the old version find their token below the new horizon on the next
// sync and bootstrap straight to the candidate.
func (l *Leader) Install(snap *core.Snapshot) error {
	if snap == nil {
		return fmt.Errorf("replicate: install nil snapshot")
	}
	if inst, ok := l.inner.(serve.CheckpointInstaller); ok {
		if err := inst.Install(snap); err != nil {
			return err
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if snap.Epoch() < l.ack {
		return fmt.Errorf("replicate: install epoch %d would rewind ack %d", snap.Epoch(), l.ack)
	}
	l.ack = snap.Epoch()
	l.horizon = snap.Epoch()
	l.tail = nil
	l.snap = snap
	l.wakeLocked()
	if l.tracer.Enabled() {
		l.tracer.Event("replicate/leader", fmt.Sprintf("installed snapshot at epoch %d", snap.Epoch()))
	}
	return nil
}

// Handler returns the leader's HTTP surface, mounted by `vesta serve
// -replicate` next to the prediction endpoints:
//
//	GET /replicate/frames?from=N           one sync batch for follower token N
//	GET /replicate/frames?from=N&wait=D    long-poll: park up to D (Go duration
//	                                       syntax, capped at the leader's
//	                                       MaxWait) until an append lands
//	GET /replicate/status                  ack, horizon, shipping counters
func (l *Leader) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /replicate/frames", func(w http.ResponseWriter, r *http.Request) {
		from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
		if err != nil {
			writeJSONStatus(w, http.StatusBadRequest, errorBody{Error: "bad from token", Code: "bad_request"})
			return
		}
		var b *Batch
		if ws := r.URL.Query().Get("wait"); ws != "" {
			wait, perr := time.ParseDuration(ws)
			if perr != nil || wait < 0 {
				writeJSONStatus(w, http.StatusBadRequest, errorBody{Error: "bad wait duration", Code: "bad_request"})
				return
			}
			// The request context unparks the waiter the moment the client
			// disconnects, so an abandoned long poll never leaks its slot.
			b, err = l.FetchWait(r.Context(), from, wait)
			if err != nil && r.Context().Err() != nil {
				return // client gone; nothing to write
			}
		} else {
			b, err = l.Fetch(from)
		}
		if err != nil {
			status, code := http.StatusInternalServerError, "internal"
			if errors.Is(err, ErrFollowerAhead) {
				status, code = http.StatusConflict, "follower_ahead"
			}
			writeJSONStatus(w, status, errorBody{Error: err.Error(), Code: code})
			return
		}
		writeJSONStatus(w, http.StatusOK, b)
	})
	mux.HandleFunc("GET /replicate/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSONStatus(w, http.StatusOK, l.LeaderStats())
	})
	return mux
}

// errorBody mirrors the serve layer's JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure","code":"internal"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}
