package replicate

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"vesta/internal/cloud"
	"vesta/internal/serve"
	"vesta/internal/wal"
)

// testCatalogUpdate is the catalog change the replication tests ship: a
// reprice plus a cross-provider add, exercising both survivor rewrite and
// vocabulary growth on the follower.
func testCatalogUpdate() cloud.Update {
	return cloud.Update{
		Note:    "reprice + azure",
		Reprice: map[string]float64{"m5.xlarge": 0.3737},
		Add:     cloud.AzureCatalog(),
	}
}

// TestCatalogUpdateReplicatesToFollower ships an absorb followed by a catalog
// update through the frame stream and asserts the follower converges to the
// leader's exact state: same (epoch, catalog version), byte-identical
// snapshot encoding, and byte-identical /predict bodies.
func TestCatalogUpdateReplicatesToFollower(t *testing.T) {
	snaps, recs := fixture(t)
	l, err := NewLeader(snaps[0], nil, LeaderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv := newReplica(t, snaps[0], 2)
	f, err := NewFollower(srv, snaps[0], l, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Epoch 1: a workload absorb. Epoch 2: the catalog update.
	if err := l.Append(recs[0].Name, recs[0].LabelWeights, recs[0].PrunedVec, recs[0].Epoch); err != nil {
		t.Fatal(err)
	}
	if err := l.Committed(snaps[1]); err != nil {
		t.Fatal(err)
	}
	up := testCatalogUpdate()
	leaderState, err := snaps[1].AbsorbCatalog(up)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCatalog(up, leaderState.Epoch()); err != nil {
		t.Fatal(err)
	}
	if err := l.Committed(leaderState); err != nil {
		t.Fatal(err)
	}

	applied, err := f.SyncOnce()
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 {
		t.Fatalf("applied %d records, want 2", applied)
	}
	got := srv.Snapshot()
	if got.Epoch() != 2 || got.CatalogVersion() != 1 {
		t.Fatalf("follower token (epoch %d, catalog %d), want (2, 1)", got.Epoch(), got.CatalogVersion())
	}
	if got.Workloads() != baseWorkloads+1 {
		t.Fatalf("follower workloads %d, want %d", got.Workloads(), baseWorkloads+1)
	}
	if !bytes.Equal(encodeSnap(t, got), encodeSnap(t, leaderState)) {
		t.Fatal("replicated state differs from the leader's snapshot")
	}
	if v, ok := got.VM("m5.xlarge"); !ok || v.PriceHour != 0.3737 {
		t.Fatalf("reprice did not replicate: %+v ok=%v", v, ok)
	}
	if _, ok := got.VM("dv5.xlarge"); !ok {
		t.Fatal("added azure type did not replicate")
	}

	// Byte-identical serving at the same (epoch, catalog version): a server
	// over the leader's state and the replica must answer the same bytes.
	leaderSrv, err := serve.New(leaderState, serve.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer leaderSrv.Close()
	for _, req := range []serve.Request{
		{App: "Spark-lr", Top: 5},
		{App: "Spark-kmeans", Seed: 3},
	} {
		want, err := leaderSrv.PredictBytes(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := srv.PredictBytes(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, gotB) {
			t.Fatalf("%s: follower bytes differ from leader\nleader:   %s\nfollower: %s",
				req.App, want, gotB)
		}
		if !bytes.Contains(gotB, []byte(`"catalog_version":1`)) {
			t.Fatalf("%s: follower response lacks the replicated catalog version: %s", req.App, gotB)
		}
	}
}

// TestCatalogVersionSurvivesBootstrap: a follower too far behind the retained
// tail installs the leader's snapshot image; the catalog version must survive
// the codec round trip and satisfy the extended consistency token.
func TestCatalogVersionSurvivesBootstrap(t *testing.T) {
	snaps, recs := fixture(t)
	// Negative MaxTail retains nothing: every catch-up is a bootstrap.
	l, err := NewLeader(snaps[0], nil, LeaderConfig{MaxTail: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(recs[0].Name, recs[0].LabelWeights, recs[0].PrunedVec, recs[0].Epoch); err != nil {
		t.Fatal(err)
	}
	if err := l.Committed(snaps[1]); err != nil {
		t.Fatal(err)
	}
	up := testCatalogUpdate()
	leaderState, err := snaps[1].AbsorbCatalog(up)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCatalog(up, leaderState.Epoch()); err != nil {
		t.Fatal(err)
	}
	if err := l.Committed(leaderState); err != nil {
		t.Fatal(err)
	}

	srv := newReplica(t, snaps[0], 1)
	f, err := NewFollower(srv, snaps[0], l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if f.Stats().Bootstraps != 1 {
		t.Fatalf("stats: %+v, want one bootstrap", f.Stats())
	}
	got := srv.Snapshot()
	if got.Epoch() != 2 || got.CatalogVersion() != 1 {
		t.Fatalf("bootstrapped token (epoch %d, catalog %d), want (2, 1)", got.Epoch(), got.CatalogVersion())
	}
	if !bytes.Equal(encodeSnap(t, got), encodeSnap(t, leaderState)) {
		t.Fatal("bootstrapped state differs from the leader's snapshot")
	}
}

// TestCatalogStreamFaultsFailClosed covers the poisoned-stream matrix for
// catalog records: a catalog frame without its payload, an unappliable
// update, and a record kind from a newer binary all break the follower
// rather than letting it guess.
func TestCatalogStreamFaultsFailClosed(t *testing.T) {
	cases := []struct {
		name string
		rec  wal.Record
		want error
	}{
		{"nil payload", wal.Record{Kind: wal.KindCatalog, Epoch: 1}, ErrBadStream},
		{"unappliable update", wal.Record{Kind: wal.KindCatalog, Epoch: 1,
			Catalog: &cloud.Update{Retire: []string{"never.existed"}}}, ErrDiverged},
		{"retires sandbox", wal.Record{Kind: wal.KindCatalog, Epoch: 1,
			Catalog: &cloud.Update{Retire: []string{"m5.xlarge"}}}, ErrDiverged},
		{"unknown kind", wal.Record{Kind: "hologram", Epoch: 1}, ErrDiverged},
	}
	snaps, _ := fixture(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame, err := wal.EncodeFrame(tc.rec)
			if err != nil {
				t.Fatal(err)
			}
			tr := transportFunc(func(from uint64) (*Batch, error) {
				return &Batch{From: from, Ack: 1, Frames: frame}, nil
			})
			srv := newReplica(t, snaps[0], 1)
			f, err := NewFollower(srv, snaps[0], tr, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.SyncOnce(); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			if f.Broken() == nil {
				t.Fatal("follower not broken after poisoned stream")
			}
			if got := srv.Snapshot(); got.Epoch() != 0 || got.CatalogVersion() != 0 {
				t.Fatalf("poisoned stream moved state: (epoch %d, catalog %d)",
					got.Epoch(), got.CatalogVersion())
			}
		})
	}
}
