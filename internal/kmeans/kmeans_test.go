package kmeans

import (
	"math"
	"testing"
	"testing/quick"

	"vesta/internal/mat"
	"vesta/internal/rng"
)

// blobs generates k well-separated Gaussian clusters.
func blobs(src *rng.Source, k, perCluster, dim int, spread float64) ([][]float64, []int) {
	var points [][]float64
	var truth []int
	for c := 0; c < k; c++ {
		center := make([]float64, dim)
		for j := range center {
			center[j] = float64(c*10) + float64(j)
		}
		for i := 0; i < perCluster; i++ {
			p := make([]float64, dim)
			for j := range p {
				p[j] = center[j] + src.Norm(0, spread)
			}
			points = append(points, p)
			truth = append(truth, c)
		}
	}
	return points, truth
}

func TestFitSeparatedBlobs(t *testing.T) {
	src := rng.New(1)
	points, truth := blobs(src, 3, 30, 4, 0.5)
	m, err := Fit(points, Config{K: 3}, src)
	if err != nil {
		t.Fatal(err)
	}
	// Clusters must match ground truth up to relabeling: every predicted
	// cluster maps to exactly one true cluster.
	mapping := map[int]int{}
	for i := range points {
		if prev, ok := mapping[m.Assign[i]]; ok {
			if prev != truth[i] {
				t.Fatalf("cluster %d spans true clusters %d and %d", m.Assign[i], prev, truth[i])
			}
		} else {
			mapping[m.Assign[i]] = truth[i]
		}
	}
	if len(mapping) != 3 {
		t.Fatalf("found %d clusters, want 3", len(mapping))
	}
}

func TestFitErrors(t *testing.T) {
	src := rng.New(1)
	if _, err := Fit(nil, Config{K: 2}, src); err == nil {
		t.Fatal("empty points should error")
	}
	if _, err := Fit([][]float64{{1}, {2}}, Config{K: 3}, src); err == nil {
		t.Fatal("k > n should error")
	}
	if _, err := Fit([][]float64{{1}, {2}}, Config{K: 0}, src); err == nil {
		t.Fatal("k = 0 should error")
	}
	if _, err := Fit([][]float64{{1, 2}, {3}}, Config{K: 1}, src); err == nil {
		t.Fatal("ragged points should error")
	}
	if _, err := Fit([][]float64{{}, {}}, Config{K: 1}, src); err == nil {
		t.Fatal("zero-dim points should error")
	}
}

func TestAssignmentsAreNearestCentroid(t *testing.T) {
	// Lloyd invariant: every point is assigned to its nearest centroid.
	src := rng.New(2)
	points, _ := blobs(src, 4, 20, 3, 1.0)
	m, err := Fit(points, Config{K: 4}, src)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		d := mat.Distance(p, m.Centroids[m.Assign[i]])
		for c := range m.Centroids {
			if mat.Distance(p, m.Centroids[c]) < d-1e-9 {
				t.Fatalf("point %d assigned to %d but %d is closer", i, m.Assign[i], c)
			}
		}
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	src := rng.New(3)
	points, _ := blobs(src, 5, 20, 3, 2.0)
	prev := math.Inf(1)
	for k := 1; k <= 8; k++ {
		m, err := Fit(points, Config{K: k, Restarts: 6}, rng.New(uint64(k)))
		if err != nil {
			t.Fatal(err)
		}
		// Allow slight non-monotonicity from local optima, but the trend
		// over doubling k must hold strongly.
		if k > 1 && m.Inertia > prev*1.05 {
			t.Fatalf("inertia rose from %v (k=%d) to %v (k=%d)", prev, k-1, m.Inertia, k)
		}
		prev = m.Inertia
	}
}

func TestKEqualsNZeroInertia(t *testing.T) {
	src := rng.New(4)
	points := [][]float64{{0, 0}, {5, 5}, {10, 0}}
	m, err := Fit(points, Config{K: 3}, src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Inertia > 1e-12 {
		t.Fatalf("k=n inertia = %v, want 0", m.Inertia)
	}
}

func TestPredictConsistentWithAssign(t *testing.T) {
	src := rng.New(5)
	points, _ := blobs(src, 3, 15, 2, 0.8)
	m, err := Fit(points, Config{K: 3}, src)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		if got := m.Predict(p); got != m.Assign[i] {
			t.Fatalf("Predict(points[%d]) = %d, Assign = %d", i, got, m.Assign[i])
		}
	}
}

func TestPredictDimPanics(t *testing.T) {
	src := rng.New(6)
	m, _ := Fit([][]float64{{1, 2}, {3, 4}}, Config{K: 2}, src)
	defer func() {
		if recover() == nil {
			t.Fatal("dim-mismatched Predict did not panic")
		}
	}()
	m.Predict([]float64{1})
}

func TestMembershipsSumToOne(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		points, _ := blobs(src, 3, 10, 2, 1.0)
		m, err := Fit(points, Config{K: 3}, src)
		if err != nil {
			return false
		}
		w := m.Memberships([]float64{src.Range(-5, 25), src.Range(-5, 25)})
		sum := 0.0
		for _, v := range w {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMembershipsExactHit(t *testing.T) {
	src := rng.New(7)
	points := [][]float64{{0, 0}, {10, 10}}
	m, _ := Fit(points, Config{K: 2}, src)
	w := m.Memberships(m.Centroids[1])
	if w[1] != 1 || w[0] != 0 {
		t.Fatalf("exact centroid hit weights = %v", w)
	}
}

func TestSilhouetteSeparatedHigh(t *testing.T) {
	src := rng.New(8)
	points, _ := blobs(src, 3, 20, 3, 0.3)
	m, _ := Fit(points, Config{K: 3}, src)
	s := Silhouette(points, m)
	if s < 0.8 {
		t.Fatalf("silhouette of well-separated blobs = %v, want > 0.8", s)
	}
}

func TestSilhouetteSingleCluster(t *testing.T) {
	src := rng.New(9)
	points, _ := blobs(src, 2, 10, 2, 0.5)
	m, _ := Fit(points, Config{K: 1}, src)
	if Silhouette(points, m) != 0 {
		t.Fatal("single-cluster silhouette should be 0")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	points, _ := blobs(rng.New(10), 4, 15, 3, 1.0)
	m1, _ := Fit(points, Config{K: 4}, rng.New(77))
	m2, _ := Fit(points, Config{K: 4}, rng.New(77))
	if m1.Inertia != m2.Inertia {
		t.Fatalf("same seed, different inertia: %v vs %v", m1.Inertia, m2.Inertia)
	}
	for i := range m1.Assign {
		if m1.Assign[i] != m2.Assign[i] {
			t.Fatal("same seed, different assignment")
		}
	}
}

func TestEmptyClusterRepair(t *testing.T) {
	// Duplicated points force potential empty clusters; Fit must still
	// return k centroids and a consistent assignment.
	points := [][]float64{{0, 0}, {0, 0}, {0, 0}, {0, 0}, {100, 100}}
	m, err := Fit(points, Config{K: 3, Restarts: 2}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Centroids) != 3 {
		t.Fatalf("%d centroids, want 3", len(m.Centroids))
	}
	for _, a := range m.Assign {
		if a < 0 || a >= 3 {
			t.Fatalf("assignment %d out of range", a)
		}
	}
}

func TestDistanceTo(t *testing.T) {
	m := &Model{K: 1, Centroids: [][]float64{{3, 4}}}
	if d := m.DistanceTo([]float64{0, 0}, 0); math.Abs(d-5) > 1e-12 {
		t.Fatalf("DistanceTo = %v, want 5", d)
	}
}

func BenchmarkFitK9(b *testing.B) {
	src := rng.New(1)
	points, _ := blobs(src, 9, 15, 10, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(points, Config{K: 9}, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFitWorkersBitIdentical pins the parallel-restart determinism contract:
// every worker count produces the same model, because restart r always draws
// from src.Split(r) regardless of which goroutine runs it.
func TestFitWorkersBitIdentical(t *testing.T) {
	points, _ := blobs(rng.New(7), 4, 30, 5, 1.5)
	var ref *Model
	for _, workers := range []int{1, 2, 8} {
		m, err := Fit(points, Config{K: 4, Restarts: 6, Workers: workers}, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = m
			continue
		}
		if m.Inertia != ref.Inertia || m.Iterations != ref.Iterations {
			t.Fatalf("workers=%d: inertia %v iters %d, want %v / %d",
				workers, m.Inertia, m.Iterations, ref.Inertia, ref.Iterations)
		}
		for c := range ref.Centroids {
			for j := range ref.Centroids[c] {
				if m.Centroids[c][j] != ref.Centroids[c][j] {
					t.Fatalf("workers=%d: centroid (%d,%d) = %v, want %v",
						workers, c, j, m.Centroids[c][j], ref.Centroids[c][j])
				}
			}
		}
		for i := range ref.Assign {
			if m.Assign[i] != ref.Assign[i] {
				t.Fatalf("workers=%d: assignment %d differs", workers, i)
			}
		}
	}
}

// TestFitDoesNotAdvanceParentRNG: Split is pure, so Fit must leave the
// caller's source exactly where it was — callers may rely on draws after a
// Fit being independent of the restart count.
func TestFitDoesNotAdvanceParentRNG(t *testing.T) {
	points, _ := blobs(rng.New(8), 3, 20, 4, 1.0)
	for _, restarts := range []int{1, 3, 6} {
		src := rng.New(99)
		if _, err := Fit(points, Config{K: 3, Restarts: restarts}, src); err != nil {
			t.Fatal(err)
		}
		if got, want := src.Uint64(), rng.New(99).Uint64(); got != want {
			t.Fatalf("restarts=%d: parent advanced (next draw %d, want %d)", restarts, got, want)
		}
	}
}
