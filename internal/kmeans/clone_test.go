package kmeans

import (
	"reflect"
	"testing"

	"vesta/internal/rng"
)

func TestModelCloneIsDeep(t *testing.T) {
	points := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{5, 5}, {5.1, 5}, {5, 5.1},
	}
	m, err := Fit(points, Config{K: 2, Restarts: 2, MaxIters: 50}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if !reflect.DeepEqual(m, c) {
		t.Fatal("clone not equal to original")
	}

	// Deep: mutating the clone's centroids and assignments must not reach
	// the original (the serving snapshot relies on this).
	c.Centroids[0][0] += 100
	c.Assign[0] = 1 - c.Assign[0]
	c.Inertia++
	if m.Centroids[0][0] == c.Centroids[0][0] {
		t.Fatal("centroid storage shared with clone")
	}
	if m.Assign[0] == c.Assign[0] {
		t.Fatal("assignment storage shared with clone")
	}
	if m.Inertia == c.Inertia {
		t.Fatal("inertia shared with clone")
	}

	// The original still predicts consistently after the clone was abused.
	if got := m.Predict([]float64{0, 0}); got != m.Assign[0] {
		t.Fatalf("Predict(%v) = %d, want %d", []float64{0, 0}, got, m.Assign[0])
	}
}

func TestModelCloneNil(t *testing.T) {
	var m *Model
	if m.Clone() != nil {
		t.Fatal("nil clone should be nil")
	}
}
