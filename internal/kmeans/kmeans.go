// Package kmeans implements Lloyd's K-Means clustering with kmeans++
// initialization. Vesta's Correlation Analyzer uses it to group VM types
// into label categories (Section 3.1), and the online predictor retrains it
// cheaply after transfer (Algorithm 1, line 13). The hyperparameter k is
// tuned by 10-fold cross validation in the Figure 11 experiment.
package kmeans

import (
	"fmt"
	"math"

	"vesta/internal/mat"
	"vesta/internal/obs"
	"vesta/internal/parallel"
	"vesta/internal/rng"
)

// Model is a fitted K-Means clustering.
type Model struct {
	K         int
	Centroids [][]float64
	// Assign[i] is the cluster of training point i.
	Assign []int
	// Inertia is the summed squared distance of points to their centroids.
	Inertia float64
	// Iterations actually performed before convergence.
	Iterations int
}

// Clone returns a deep copy of the model, so a reader holding the copy is
// isolated from a concurrent refit that replaces or rewrites the original
// (the AbsorbTarget path).
func (m *Model) Clone() *Model {
	if m == nil {
		return nil
	}
	c := &Model{
		K:          m.K,
		Centroids:  make([][]float64, len(m.Centroids)),
		Assign:     append([]int(nil), m.Assign...),
		Inertia:    m.Inertia,
		Iterations: m.Iterations,
	}
	for i, row := range m.Centroids {
		c.Centroids[i] = append([]float64(nil), row...)
	}
	return c
}

// Config tunes the fit.
type Config struct {
	K        int
	MaxIters int     // default 100
	Tol      float64 // centroid-movement convergence tolerance, default 1e-6
	Restarts int     // kmeans++ restarts, best inertia kept; default 4
	// Workers bounds the goroutines running restart attempts concurrently;
	// <= 0 means one per CPU. Every worker count produces a bit-identical
	// model: restart r always draws from src.Split(r), and ties on inertia
	// resolve to the lowest restart index.
	Workers int
	// Tracer, when enabled, receives one inertia gauge sample per restart
	// (indexed by restart number) under TraceKey plus the winning restart as
	// an event. Nil disables at the cost of a pointer check.
	Tracer *obs.Tracer
	// TraceKey namespaces this fit's records; defaults to "kmeans".
	TraceKey string
}

// Fit clusters the points (each a feature vector of equal length) into k
// groups. It returns an error for degenerate inputs (no points, k < 1,
// k > len(points), ragged rows).
func Fit(points [][]float64, cfg Config, src *rng.Source) (*Model, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("kmeans: no points")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, fmt.Errorf("kmeans: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("kmeans: point %d has dim %d, want %d", i, len(p), dim)
		}
		for j, v := range p {
			// A NaN poisons every centroid it touches and an Inf collapses
			// kmeans++ seeding; reject corrupt points outright — callers
			// own the decision to filter them.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("kmeans: point %d component %d is %v", i, j, v)
			}
		}
	}
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("kmeans: k=%d invalid for %d points", cfg.K, n)
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 100
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-6
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 4
	}

	// Restart attempts are independent: each draws from its own Split child,
	// so the attempts can run on any number of workers without changing the
	// result (the seeds do not depend on execution order).
	key := cfg.TraceKey
	if key == "" {
		key = "kmeans"
	}
	models := parallel.MapObs(cfg.Tracer, key+"/restarts", cfg.Workers, cfg.Restarts, func(r int) *Model {
		return fitOnce(points, cfg, src.Split(uint64(r)))
	})
	best, bestR := models[0], 0
	for r, m := range models[1:] {
		if m.Inertia < best.Inertia {
			best, bestR = m, r+1
		}
	}
	if cfg.Tracer.Enabled() {
		// Restart r's inertia is a pure function of Split(r), so the gauge
		// stream is identical at every worker count.
		for r, m := range models {
			cfg.Tracer.Gauge(key+"/inertia", r, m.Inertia)
		}
		cfg.Tracer.Event(key+"/winner",
			fmt.Sprintf("restart=%d inertia=%s iters=%d", bestR, obs.FormatValue(best.Inertia), best.Iterations))
	}
	return best, nil
}

func fitOnce(points [][]float64, cfg Config, src *rng.Source) *Model {
	n, dim := len(points), len(points[0])
	cents := seedPlusPlus(points, cfg.K, src)
	assign := make([]int, n)

	iters := 0
	for ; iters < cfg.MaxIters; iters++ {
		// Assignment step.
		for i, p := range points {
			assign[i] = nearest(cents, p)
		}
		// Update step.
		moved := 0.0
		counts := make([]int, cfg.K)
		sums := make([][]float64, cfg.K)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			counts[assign[i]]++
			mat.AXPY(1, p, sums[assign[i]])
		}
		for c := 0; c < cfg.K; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid — standard empty-cluster repair, deterministic.
				far, farDist := 0, -1.0
				for i, p := range points {
					d := mat.Distance(p, cents[assign[i]])
					if d > farDist {
						far, farDist = i, d
					}
				}
				moved += mat.Distance(cents[c], points[far])
				copy(cents[c], points[far])
				continue
			}
			newC := make([]float64, dim)
			for j := range newC {
				newC[j] = sums[c][j] / float64(counts[c])
			}
			moved += mat.Distance(cents[c], newC)
			copy(cents[c], newC)
		}
		if moved < cfg.Tol {
			iters++
			break
		}
	}
	// Final assignment + inertia.
	inertia := 0.0
	for i, p := range points {
		assign[i] = nearest(cents, p)
		d := mat.Distance(p, cents[assign[i]])
		inertia += d * d
	}
	return &Model{K: cfg.K, Centroids: cents, Assign: assign, Inertia: inertia, Iterations: iters}
}

// seedPlusPlus chooses k initial centroids with the kmeans++ D^2 weighting.
func seedPlusPlus(points [][]float64, k int, src *rng.Source) [][]float64 {
	n := len(points)
	cents := make([][]float64, 0, k)
	first := src.Intn(n)
	cents = append(cents, append([]float64(nil), points[first]...))
	d2 := make([]float64, n)
	for len(cents) < k {
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range cents {
				if d := mat.Distance(p, c); d < best {
					best = d
				}
			}
			d2[i] = best * best
		}
		pick := src.Pick(d2)
		cents = append(cents, append([]float64(nil), points[pick]...))
	}
	return cents
}

func nearest(cents [][]float64, p []float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cent := range cents {
		if d := mat.Distance(p, cent); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Predict returns the cluster of a new point.
func (m *Model) Predict(p []float64) int {
	if len(p) != len(m.Centroids[0]) {
		panic(fmt.Sprintf("kmeans: point dim %d, model dim %d", len(p), len(m.Centroids[0])))
	}
	return nearest(m.Centroids, p)
}

// DistanceTo returns the Euclidean distance from p to centroid c.
func (m *Model) DistanceTo(p []float64, c int) float64 {
	return mat.Distance(p, m.Centroids[c])
}

// Memberships returns soft assignment weights of p to every cluster
// (inverse-distance normalized; an exact centroid hit gets weight 1).
func (m *Model) Memberships(p []float64) []float64 {
	w := make([]float64, m.K)
	for c := range w {
		d := mat.Distance(p, m.Centroids[c])
		if d == 0 {
			for j := range w {
				w[j] = 0
			}
			w[c] = 1
			return w
		}
		w[c] = 1 / d
	}
	total := 0.0
	for _, v := range w {
		total += v
	}
	for c := range w {
		w[c] /= total
	}
	return w
}

// Silhouette returns the mean silhouette coefficient of the training
// clustering in [-1, 1]; higher is better separated. Single-cluster models
// return 0.
func Silhouette(points [][]float64, m *Model) float64 {
	if m.K < 2 {
		return 0
	}
	total, counted := 0.0, 0
	for i, p := range points {
		a, b := 0.0, math.Inf(1)
		sameN := 0
		otherSum := make([]float64, m.K)
		otherCnt := make([]int, m.K)
		for j, q := range points {
			if i == j {
				continue
			}
			d := mat.Distance(p, q)
			if m.Assign[j] == m.Assign[i] {
				a += d
				sameN++
			} else {
				otherSum[m.Assign[j]] += d
				otherCnt[m.Assign[j]]++
			}
		}
		if sameN == 0 {
			continue
		}
		a /= float64(sameN)
		for c := 0; c < m.K; c++ {
			if otherCnt[c] > 0 {
				if v := otherSum[c] / float64(otherCnt[c]); v < b {
					b = v
				}
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
