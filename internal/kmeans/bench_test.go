package kmeans

import (
	"fmt"
	"testing"

	"vesta/internal/rng"
)

// BenchmarkFit measures the parallel-restart speedup of Fit. Restarts are
// independent (each seeded from a pure Split stream), so on an N-core
// machine the workers=N case approaches an N-fold speedup over workers=1
// while producing the bit-identical model.
func BenchmarkFit(b *testing.B) {
	points, _ := blobs(rng.New(5), 8, 120, 10, 2.0)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Fit(points, Config{K: 8, Restarts: 8, Workers: workers}, rng.New(1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
