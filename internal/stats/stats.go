// Package stats provides the statistical primitives used across Vesta:
// correlation coefficients (the heart of the paper's "correlation
// similarity" features), error metrics (MAPE), descriptive statistics,
// percentiles, normalization, and k-fold splitting for cross-validation.
package stats

import (
	"fmt"
	"math"
	"sort"

	"vesta/internal/rng"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Covariance returns the population covariance of equal-length xs and ys.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Covariance length mismatch")
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs))
}

// Pearson returns the Pearson correlation coefficient of xs and ys in
// [-1, 1]. Series with zero variance yield a correlation of 0 (no linear
// relationship can be established), matching how Vesta treats constant
// metrics such as an always-idle disk.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return 0
	}
	r := Covariance(xs, ys) / (sx * sy)
	// Clamp tiny numeric excursions outside [-1, 1].
	return math.Max(-1, math.Min(1, r))
}

// Spearman returns the Spearman rank correlation coefficient: Pearson
// applied to the ranks of the two series, with average ranks for ties.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Spearman length mismatch")
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based fractional ranks of xs (ties receive the average
// of the ranks they span).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank across the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// MAPE returns the Mean Absolute Percentage Error (in percent, Equation 7 of
// the paper) between predicted and ground-truth values. Ground-truth entries
// equal to zero are skipped; if every entry is skipped MAPE returns 0.
func MAPE(predicted, truth []float64) float64 {
	if len(predicted) != len(truth) {
		panic("stats: MAPE length mismatch")
	}
	s, n := 0.0, 0
	for i := range predicted {
		if truth[i] == 0 {
			continue
		}
		s += math.Abs((predicted[i] - truth[i]) / truth[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * s / float64(n)
}

// AbsPercentErr returns |predicted-truth|/truth in percent for a single
// observation (0 when truth is 0).
func AbsPercentErr(predicted, truth float64) float64 {
	if truth == 0 {
		return 0
	}
	return 100 * math.Abs((predicted-truth)/truth)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: Percentile %v out of [0,100]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// P90 returns the 90th percentile, the paper's conservative estimate over
// repeated cloud runs.
func P90(xs []float64) float64 { return Percentile(xs, 90) }

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// MinMax returns the minimum and maximum of xs. It panics on an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// ArgMin returns the index of the smallest element (first on ties), or -1
// for an empty slice.
func ArgMin(xs []float64) int {
	best := -1
	for i, x := range xs {
		if best == -1 || x < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest element (first on ties), or -1 for
// an empty slice.
func ArgMax(xs []float64) int {
	best := -1
	for i, x := range xs {
		if best == -1 || x > xs[best] {
			best = i
		}
	}
	return best
}

// Normalize returns xs rescaled to [0, 1] by min-max normalization. A
// constant series maps to all zeros.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	lo, hi := MinMax(xs)
	if hi == lo {
		return out
	}
	for i, x := range xs {
		out[i] = (x - lo) / (hi - lo)
	}
	return out
}

// ZScore returns xs standardized to zero mean and unit variance. A constant
// series maps to all zeros.
func ZScore(xs []float64) []float64 {
	out := make([]float64, len(xs))
	sd := StdDev(xs)
	if sd == 0 {
		return out
	}
	m := Mean(xs)
	for i, x := range xs {
		out[i] = (x - m) / sd
	}
	return out
}

// Fold is one train/test partition produced by KFold.
type Fold struct {
	Train []int
	Test  []int
}

// KFold splits n indices into k shuffled cross-validation folds. Every index
// appears in exactly one Test set. It panics when k < 2 or k > n.
func KFold(n, k int, src *rng.Source) []Fold {
	if k < 2 || k > n {
		panic(fmt.Sprintf("stats: KFold k=%d invalid for n=%d", k, n))
	}
	perm := src.Perm(n)
	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		test := append([]int(nil), perm[lo:hi]...)
		train := make([]int, 0, n-len(test))
		train = append(train, perm[:lo]...)
		train = append(train, perm[hi:]...)
		folds[f] = Fold{Train: train, Test: test}
	}
	return folds
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	P10, P50, P90  float64
	CoefOfVariance float64 // Std/Mean, 0 when Mean == 0
}

// Summarize computes a Summary of xs. It panics on an empty slice.
func Summarize(xs []float64) Summary {
	lo, hi := MinMax(xs)
	m := Mean(xs)
	sd := StdDev(xs)
	cv := 0.0
	if m != 0 {
		cv = sd / m
	}
	return Summary{
		N: len(xs), Mean: m, Std: sd, Min: lo, Max: hi,
		P10: Percentile(xs, 10), P50: Median(xs), P90: P90(xs),
		CoefOfVariance: cv,
	}
}
