package stats

import (
	"math"
	"testing"
	"testing/quick"

	"vesta/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Mean(xs), 5, 1e-12) {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if !almost(Variance(xs), 4, 1e-12) {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if !almost(StdDev(xs), 2, 1e-12) {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty Mean/Variance should be 0")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if !almost(Pearson(xs, ys), 1, 1e-12) {
		t.Fatalf("perfect positive Pearson = %v", Pearson(xs, ys))
	}
	neg := []float64{10, 8, 6, 4, 2}
	if !almost(Pearson(xs, neg), -1, 1e-12) {
		t.Fatalf("perfect negative Pearson = %v", Pearson(xs, neg))
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Fatal("constant series should correlate 0")
	}
}

func TestPearsonBounded(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		n := 3 + s.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = s.Range(-10, 10)
			ys[i] = s.Range(-10, 10)
		}
		r := Pearson(xs, ys)
		return r >= -1 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		n := 3 + s.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = s.Range(-10, 10)
			ys[i] = s.Range(-10, 10)
		}
		return almost(Pearson(xs, ys), Pearson(ys, xs), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonShiftScaleInvariant(t *testing.T) {
	s := rng.New(4)
	n := 30
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = s.Range(0, 5)
		ys[i] = s.Range(0, 5)
	}
	r1 := Pearson(xs, ys)
	scaled := make([]float64, n)
	for i := range xs {
		scaled[i] = 3*xs[i] + 7
	}
	if !almost(r1, Pearson(scaled, ys), 1e-9) {
		t.Fatal("Pearson not invariant to positive affine transform")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125} // monotone but nonlinear
	if !almost(Spearman(xs, ys), 1, 1e-12) {
		t.Fatalf("Spearman of monotone = %v, want 1", Spearman(xs, ys))
	}
}

func TestRanksTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almost(r[i], want[i], 1e-12) {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
}

func TestMAPE(t *testing.T) {
	got := MAPE([]float64{110, 90}, []float64{100, 100})
	if !almost(got, 10, 1e-12) {
		t.Fatalf("MAPE = %v, want 10", got)
	}
}

func TestMAPESkipsZeroTruth(t *testing.T) {
	got := MAPE([]float64{5, 110}, []float64{0, 100})
	if !almost(got, 10, 1e-12) {
		t.Fatalf("MAPE with zero truth = %v, want 10", got)
	}
	if MAPE([]float64{5}, []float64{0}) != 0 {
		t.Fatal("all-zero-truth MAPE should be 0")
	}
}

func TestMAPEPerfect(t *testing.T) {
	if MAPE([]float64{1, 2, 3}, []float64{1, 2, 3}) != 0 {
		t.Fatal("perfect prediction MAPE should be 0")
	}
}

func TestAbsPercentErr(t *testing.T) {
	if !almost(AbsPercentErr(120, 100), 20, 1e-12) {
		t.Fatal("AbsPercentErr wrong")
	}
	if AbsPercentErr(5, 0) != 0 {
		t.Fatal("AbsPercentErr with zero truth should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if !almost(Percentile(xs, 0), 1, 1e-12) || !almost(Percentile(xs, 100), 10, 1e-12) {
		t.Fatal("Percentile endpoints wrong")
	}
	if !almost(Median(xs), 5.5, 1e-12) {
		t.Fatalf("Median = %v", Median(xs))
	}
	if !almost(P90(xs), 9.1, 1e-9) {
		t.Fatalf("P90 = %v", P90(xs))
	}
}

func TestPercentileSingle(t *testing.T) {
	if Percentile([]float64{42}, 73) != 42 {
		t.Fatal("single-element percentile wrong")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated input")
	}
}

func TestPercentileOrdering(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		n := 1 + s.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = s.Range(-100, 100)
		}
		return Percentile(xs, 10) <= Percentile(xs, 50) && Percentile(xs, 50) <= Percentile(xs, 90)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArgMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if ArgMin(xs) != 1 {
		t.Fatalf("ArgMin = %d", ArgMin(xs))
	}
	if ArgMax(xs) != 4 {
		t.Fatalf("ArgMax = %d", ArgMax(xs))
	}
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Fatal("empty ArgMin/ArgMax should be -1")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{10, 20, 30})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almost(out[i], want[i], 1e-12) {
			t.Fatalf("Normalize = %v", out)
		}
	}
	constant := Normalize([]float64{5, 5})
	if constant[0] != 0 || constant[1] != 0 {
		t.Fatal("constant Normalize should be zeros")
	}
}

func TestZScore(t *testing.T) {
	out := ZScore([]float64{1, 2, 3, 4, 5})
	if !almost(Mean(out), 0, 1e-12) || !almost(StdDev(out), 1, 1e-12) {
		t.Fatalf("ZScore mean/std = %v/%v", Mean(out), StdDev(out))
	}
}

func TestKFoldPartition(t *testing.T) {
	src := rng.New(8)
	n, k := 23, 10
	folds := KFold(n, k, src)
	if len(folds) != k {
		t.Fatalf("got %d folds, want %d", len(folds), k)
	}
	seen := make([]int, n)
	for _, f := range folds {
		if len(f.Train)+len(f.Test) != n {
			t.Fatal("fold sizes do not add to n")
		}
		for _, i := range f.Test {
			seen[i]++
		}
		// Train and Test must be disjoint.
		inTest := map[int]bool{}
		for _, i := range f.Test {
			inTest[i] = true
		}
		for _, i := range f.Train {
			if inTest[i] {
				t.Fatal("index appears in both train and test")
			}
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d appears in %d test folds", i, c)
		}
	}
}

func TestKFoldPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("KFold with k=1 did not panic")
		}
	}()
	KFold(10, 1, rng.New(1))
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || !almost(s.Mean, 5.5, 1e-12) || s.Min != 1 || s.Max != 10 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.CoefOfVariance <= 0 {
		t.Fatal("CoefOfVariance should be positive")
	}
}

func TestCovarianceKnown(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{2, 4, 6}
	// cov = mean((x-2)(y-4)) = (2 + 0 + 2)/3
	if !almost(Covariance(xs, ys), 4.0/3.0, 1e-12) {
		t.Fatalf("Covariance = %v", Covariance(xs, ys))
	}
}

func BenchmarkPearson(b *testing.B) {
	s := rng.New(1)
	n := 200
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = s.Float64()
		ys[i] = s.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Pearson(xs, ys)
	}
}
