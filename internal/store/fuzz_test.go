package store

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzTraceCSV verifies the CSV trace parser never panics and either errors
// or returns a structurally valid trace, whatever the file contents.
func FuzzTraceCSV(f *testing.F) {
	f.Add([]byte("t_seconds,cpu.user\n0,0.5\n"))
	f.Add([]byte(""))
	f.Add([]byte("a,b,c\n1,2\n"))
	f.Add([]byte("t_seconds," +
		"cpu.user,cpu.system,cpu.idle,cpu.iowait,mem.ram,mem.buffer,mem.cache,mem.swap," +
		"disk.read,disk.write,disk.util,net.send,net.recv,net.drop," +
		"tasks.compute,tasks.comm,tasks.sync\n" +
		"0.000,0.1,0.1,0.8,0,0.3,0.2,0.4,0,0.1,0.1,0.1,0.1,0.1,0,0.5,0.1,0.1\n" +
		"5.000,0.9,0.05,0.05,0,0.4,0.2,0.4,0,0,0,0,0,0,0,0.9,0.05,0.05\n"))
	f.Add([]byte("t_seconds,x\nnot-a-number,nan\n"))

	dir := f.TempDir()
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(dir, "fuzz.csv")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		tr, err := readTraceCSV(path)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if tr.Len() == 0 {
			t.Fatal("parser accepted a trace with zero samples")
		}
		if tr.SampleSec <= 0 {
			t.Fatalf("parser produced non-positive sample interval %v", tr.SampleSec)
		}
	})
}
