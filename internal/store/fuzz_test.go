package store

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"unicode/utf8"

	"vesta/internal/cloud"
	"vesta/internal/metrics"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

// FuzzTraceCSV verifies the CSV trace parser never panics and either errors
// or returns a structurally valid trace, whatever the file contents.
func FuzzTraceCSV(f *testing.F) {
	f.Add([]byte("t_seconds,cpu.user\n0,0.5\n"))
	f.Add([]byte(""))
	f.Add([]byte("a,b,c\n1,2\n"))
	f.Add([]byte("t_seconds," +
		"cpu.user,cpu.system,cpu.idle,cpu.iowait,mem.ram,mem.buffer,mem.cache,mem.swap," +
		"disk.read,disk.write,disk.util,net.send,net.recv,net.drop," +
		"tasks.compute,tasks.comm,tasks.sync\n" +
		"0.000,0.1,0.1,0.8,0,0.3,0.2,0.4,0,0.1,0.1,0.1,0.1,0.1,0,0.5,0.1,0.1\n" +
		"5.000,0.9,0.05,0.05,0,0.4,0.2,0.4,0,0,0,0,0,0,0,0.9,0.05,0.05\n"))
	f.Add([]byte("t_seconds,x\nnot-a-number,nan\n"))

	dir := f.TempDir()
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(dir, "fuzz.csv")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		tr, err := readTraceCSV(path)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if tr.Len() == 0 {
			t.Fatal("parser accepted a trace with zero samples")
		}
		if tr.SampleSec <= 0 {
			t.Fatalf("parser produced non-positive sample interval %v", tr.SampleSec)
		}
	})
}

// fuzzProfile builds a profile from fuzzed fields. The trace always carries
// a NaN sample (collector dropout), which must survive persistence.
func fuzzProfile(app, vm string, p90, mean, cost, run0 float64) sim.Profile {
	tr := &metrics.Trace{SampleSec: 5, Dropped: 1}
	for id := metrics.SeriesID(0); id < metrics.NumSeries; id++ {
		tr.Series[id] = []float64{0.5, math.NaN(), 0.25}
	}
	return sim.Profile{
		App:        workload.App{Name: app, Framework: "Fuzz", InputGB: 2},
		VM:         cloud.VMType{Name: vm, PriceHour: 1},
		Nodes:      4,
		Runs:       []float64{run0},
		P90Seconds: p90,
		MeanSec:    mean,
		CostUSD:    cost,
		Trace:      tr,
	}
}

// FuzzStoreRoundTrip feeds arbitrary app/VM names and (possibly non-finite)
// measurements through Put. The store contract under fuzz: never panic; a
// successful Put round-trips exactly through a reopen, including the NaN
// samples of its trace; a failed Put (non-finite index fields are not
// representable in the JSON index) leaves the store unchanged, reopenable,
// and still accepting later records. Seed corpus lives in
// testdata/fuzz/FuzzStoreRoundTrip.
func FuzzStoreRoundTrip(f *testing.F) {
	f.Add("Spark-lr", "c5.xlarge", 120.5, 110.25, 0.9, 118.0, true)
	f.Add("", "", 0.0, 0.0, 0.0, 0.0, false)
	f.Add("app/with/../traversal", "vm name:*?", math.Pi, 1e300, -5.0, 2.0, true)
	f.Add("nan-p90", "vm", math.NaN(), 1.0, 1.0, 1.0, false)
	f.Add("inf-cost", "vm", 1.0, 1.0, math.Inf(1), 1.0, true)
	f.Add("bad\xffutf8", "vm\x00nul", 1.0, 1.0, 1.0, 1.0, true)

	f.Fuzz(func(t *testing.T, app, vm string, p90, mean, cost, run0 float64, withTrace bool) {
		dir := t.TempDir()
		st, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		err = st.Put(fuzzProfile(app, vm, p90, mean, cost, run0), withTrace)
		if err != nil {
			// Rejection path: nothing persisted, nothing wedged.
			if st.Len() != 0 {
				t.Fatalf("failed Put left %d records in memory", st.Len())
			}
			re, err := Open(dir)
			if err != nil {
				t.Fatalf("store unopenable after failed Put: %v", err)
			}
			if re.Len() != 0 {
				t.Fatalf("failed Put left %d records on disk", re.Len())
			}
			if err := st.Put(fuzzProfile("recovery", "vm", 1, 1, 1, 1), false); err != nil {
				t.Fatalf("store rejects valid record after rollback: %v", err)
			}
			return
		}

		re, err := Open(dir)
		if err != nil {
			t.Fatalf("reopen after Put: %v", err)
		}
		recs := re.Find(Query{})
		if len(recs) != 1 {
			t.Fatalf("found %d records, want 1", len(recs))
		}
		rec := recs[0]
		// JSON coerces invalid UTF-8 to U+FFFD, so exact name fidelity is
		// only promised for valid strings; the index must load either way.
		if utf8.ValidString(app) && rec.App != app {
			t.Fatalf("app %q round-tripped as %q", app, rec.App)
		}
		if utf8.ValidString(vm) && rec.VM != vm {
			t.Fatalf("vm %q round-tripped as %q", vm, rec.VM)
		}
		for name, pair := range map[string][2]float64{
			"p90":  {p90, rec.P90Seconds},
			"mean": {mean, rec.MeanSec},
			"cost": {cost, rec.CostUSD},
			"run0": {run0, rec.Runs[0]},
		} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("%s = %v round-tripped as %v", name, pair[0], pair[1])
			}
		}
		if rec.Nodes != 4 || rec.InputGB != 2 {
			t.Fatalf("fixed fields drifted: %+v", rec)
		}

		if !withTrace {
			if rec.TraceFile != "" {
				t.Fatalf("trace persisted without withTrace: %q", rec.TraceFile)
			}
			return
		}
		if rec.TraceFile == "" {
			t.Fatal("withTrace Put recorded no trace file")
		}
		tr, err := re.LoadTrace(rec)
		if err != nil {
			t.Fatalf("loading trace back: %v", err)
		}
		if tr.Len() != 3 || tr.SampleSec != 5 {
			t.Fatalf("trace shape = (%d samples, %vs)", tr.Len(), tr.SampleSec)
		}
		for id := metrics.SeriesID(0); id < metrics.NumSeries; id++ {
			if tr.Series[id][0] != 0.5 || !math.IsNaN(tr.Series[id][1]) || tr.Series[id][2] != 0.25 {
				t.Fatalf("series %v = %v: dropout NaN not preserved", id, tr.Series[id])
			}
		}
	})
}
