package store

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"vesta/internal/cloud"
	"vesta/internal/sim"
	"vesta/internal/workload"
)

func profileFor(t *testing.T, app, vm string) sim.Profile {
	t.Helper()
	a, err := workload.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	v, err := cloud.Find(cloud.Catalog120(), vm)
	if err != nil {
		t.Fatal(err)
	}
	return sim.New(sim.Config{Repeats: 3}).ProfileRun(a, v, 1)
}

func TestOpenFresh(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Dir() != dir {
		t.Fatalf("fresh store Len=%d Dir=%s", s.Len(), s.Dir())
	}
}

func TestPutAndFind(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(profileFor(t, "Spark-lr", "m5.xlarge"), false); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(profileFor(t, "Spark-lr", "c5.xlarge"), false); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(profileFor(t, "Hadoop-lr", "m5.xlarge"), false); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Find(Query{App: "Spark-lr"}); len(got) != 2 {
		t.Fatalf("Find(app) = %d records", len(got))
	}
	if got := s.Find(Query{VM: "m5.xlarge"}); len(got) != 2 {
		t.Fatalf("Find(vm) = %d records", len(got))
	}
	if got := s.Find(Query{Framework: "Hadoop"}); len(got) != 1 {
		t.Fatalf("Find(framework) = %d records", len(got))
	}
	if got := s.Find(Query{App: "Spark-lr", VM: "c5.xlarge"}); len(got) != 1 {
		t.Fatalf("Find(app+vm) = %d records", len(got))
	}
	if got := s.Find(Query{App: "nope"}); len(got) != 0 {
		t.Fatal("Find(nope) returned records")
	}
}

func TestPersistenceAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s1, _ := Open(dir)
	if err := s1.Put(profileFor(t, "Spark-sort", "i3.2xlarge"), false); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store has %d records", s2.Len())
	}
	rec := s2.Find(Query{})[0]
	if rec.App != "Spark-sort" || rec.VM != "i3.2xlarge" || rec.P90Seconds <= 0 {
		t.Fatalf("record = %+v", rec)
	}
	if len(rec.Runs) != 3 {
		t.Fatalf("runs = %v", rec.Runs)
	}
}

func TestBestByTime(t *testing.T) {
	s, _ := Open(t.TempDir())
	for _, vm := range []string{"t3.small", "m5.2xlarge", "z1d.4xlarge"} {
		if err := s.Put(profileFor(t, "Spark-kmeans", vm), false); err != nil {
			t.Fatal(err)
		}
	}
	best, err := s.BestByTime("Spark-kmeans")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range s.Find(Query{App: "Spark-kmeans"}) {
		if r.P90Seconds < best.P90Seconds {
			t.Fatalf("%s (%v) beats reported best %s (%v)", r.VM, r.P90Seconds, best.VM, best.P90Seconds)
		}
	}
	if _, err := s.BestByTime("unknown"); err == nil {
		t.Fatal("BestByTime(unknown) succeeded")
	}
}

func TestApps(t *testing.T) {
	s, _ := Open(t.TempDir())
	_ = s.Put(profileFor(t, "Spark-lr", "m5.large"), false)
	_ = s.Put(profileFor(t, "Hadoop-lr", "m5.large"), false)
	_ = s.Put(profileFor(t, "Spark-lr", "c5.large"), false)
	apps := s.Apps()
	if len(apps) != 2 || apps[0] != "Hadoop-lr" || apps[1] != "Spark-lr" {
		t.Fatalf("Apps = %v", apps)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	s, _ := Open(t.TempDir())
	p := profileFor(t, "Spark-lr", "m5.xlarge")
	if err := s.Put(p, true); err != nil {
		t.Fatal(err)
	}
	rec := s.Find(Query{})[0]
	if rec.TraceFile == "" {
		t.Fatal("trace not persisted")
	}
	tr, err := s.LoadTrace(rec)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != p.Trace.Len() {
		t.Fatalf("trace length %d, want %d", tr.Len(), p.Trace.Len())
	}
	if math.Abs(tr.SampleSec-p.Trace.SampleSec) > 1e-6 {
		t.Fatalf("sample interval %v, want %v", tr.SampleSec, p.Trace.SampleSec)
	}
	for id := 0; id < 3; id++ {
		for i := 0; i < tr.Len(); i++ {
			if math.Abs(tr.Series[id][i]-p.Trace.Series[id][i]) > 1e-5 {
				t.Fatalf("series %d sample %d: %v vs %v", id, i, tr.Series[id][i], p.Trace.Series[id][i])
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadTraceErrors(t *testing.T) {
	s, _ := Open(t.TempDir())
	if _, err := s.LoadTrace(Record{}); err == nil {
		t.Fatal("LoadTrace of traceless record succeeded")
	}
	if _, err := s.LoadTrace(Record{TraceFile: "missing.csv"}); err == nil {
		t.Fatal("LoadTrace of missing file succeeded")
	}
}

func TestCorruptIndexRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt index accepted")
	}
}

func TestCorruptTraceRejected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	if err := os.WriteFile(filepath.Join(dir, "bad.csv"), []byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadTrace(Record{TraceFile: "bad.csv"}); err == nil {
		t.Fatal("malformed trace accepted")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("Spark-svd++/x"); got != "Spark-svd___x" {
		t.Fatalf("sanitize = %q", got)
	}
}

func TestConcurrentPuts(t *testing.T) {
	s, _ := Open(t.TempDir())
	p := profileFor(t, "Spark-grep", "m5.large")
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- s.Put(p, false) }()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d after concurrent puts", s.Len())
	}
}

// TestPutRollsBackOnFlushFailure: a Put whose index flush fails must not
// leave the record in the in-memory index (memory and disk would diverge,
// and a later Put would silently resurrect the lost record).
func TestPutRollsBackOnFlushFailure(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := profileFor(t, "Hadoop-terasort", "m5.xlarge")
	if err := s.Put(p, false); err != nil {
		t.Fatal(err)
	}
	// Make the index temp file uncreatable by replacing the store directory
	// path with a file.
	s.mu.Lock()
	s.idxPath = filepath.Join(dir, "no-such-dir", "index.json")
	s.mu.Unlock()
	if err := s.Put(p, false); err == nil {
		t.Fatal("Put with failing flush reported success")
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("failed Put left index at %d records, want 1", n)
	}
}

// TestTraceWriteLeavesNoTempDebris: trace writes must be atomic — after a
// successful Put only the final file exists, no .tmp residue.
func TestTraceWriteLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(profileFor(t, "Hadoop-terasort", "m5.xlarge"), true); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("temp debris left behind: %s", e.Name())
		}
	}
	rec := s.Find(Query{})[0]
	tr, err := s.LoadTrace(rec)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("round-tripped trace is empty")
	}
}

// TestTraceRoundTripWithDropout: NaN samples from collector dropout must
// survive CSV serialization.
func TestTraceRoundTripWithDropout(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := profileFor(t, "Hadoop-terasort", "m5.xlarge")
	for id := range p.Trace.Series {
		p.Trace.Series[id][0] = math.NaN()
	}
	p.Trace.Dropped = 1
	if err := s.Put(p, true); err != nil {
		t.Fatal(err)
	}
	tr, err := s.LoadTrace(s.Find(Query{})[0])
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(tr.Series[0][0]) {
		t.Fatalf("NaN sample did not survive the round trip: %v", tr.Series[0][0])
	}
}
