// Package store persists profiling measurements. The paper's Data Collector
// writes every 5-second sample and every run's correlation values to MySQL
// (Section 4.1); this package substitutes a file-backed store (JSON index +
// CSV traces) with the same roles: durable collection across sessions,
// queryable history per (workload, VM type), and export for analysis.
package store

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"vesta/internal/metrics"
	"vesta/internal/sim"
)

// Record is one persisted profiling measurement.
type Record struct {
	App        string             `json:"app"`
	Framework  string             `json:"framework"`
	VM         string             `json:"vm"`
	Nodes      int                `json:"nodes"`
	InputGB    float64            `json:"input_gb"`
	P90Seconds float64            `json:"p90_seconds"`
	MeanSec    float64            `json:"mean_seconds"`
	CostUSD    float64            `json:"cost_usd"`
	Runs       []float64          `json:"runs"`
	Corr       metrics.CorrVector `json:"correlations"`
	// TraceFile is the relative CSV file holding the sampled series, empty
	// if the trace was not persisted.
	TraceFile string `json:"trace_file,omitempty"`
}

// Store is a directory-backed measurement store. It is safe for concurrent
// use.
type Store struct {
	mu      sync.Mutex
	dir     string
	index   []Record
	idxPath string
}

// Open loads (or initializes) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{dir: dir, idxPath: filepath.Join(dir, "index.json")}
	data, err := os.ReadFile(s.idxPath)
	switch {
	case os.IsNotExist(err):
		// Fresh store.
	case err != nil:
		return nil, fmt.Errorf("store: reading index: %w", err)
	default:
		if err := json.Unmarshal(data, &s.index); err != nil {
			return nil, fmt.Errorf("store: corrupt index: %w", err)
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Put persists a profile. withTrace controls whether the sampled series are
// written to a CSV sidecar file.
func (s *Store) Put(p sim.Profile, withTrace bool) error {
	rec := Record{
		App:       p.App.Name,
		Framework: string(p.App.Framework),
		VM:        p.VM.Name, Nodes: p.Nodes, InputGB: p.App.InputGB,
		P90Seconds: p.P90Seconds, MeanSec: p.MeanSec, CostUSD: p.CostUSD,
		Runs: p.Runs, Corr: p.Corr,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if withTrace && p.Trace != nil {
		name := fmt.Sprintf("trace-%04d-%s-%s.csv", len(s.index),
			sanitize(p.App.Name), sanitize(p.VM.Name))
		if err := writeTraceCSV(filepath.Join(s.dir, name), p.Trace); err != nil {
			return err
		}
		rec.TraceFile = name
	}
	s.index = append(s.index, rec)
	if err := s.flushLocked(); err != nil {
		// Keep memory and disk consistent: a record that never reached the
		// index file must not linger in the in-memory index either, or a
		// later successful Put would silently resurrect it.
		s.index = s.index[:len(s.index)-1]
		return err
	}
	return nil
}

func (s *Store) flushLocked() error {
	data, err := json.MarshalIndent(s.index, "", " ")
	if err != nil {
		return err
	}
	tmp := s.idxPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: writing index: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: writing index: %w", err)
	}
	// fsync before the rename so the renamed file has contents, and fsync
	// the parent directory after it so the rename itself survives power
	// loss — without the directory sync the "atomic" write is only atomic
	// against crashes of the process, not of the machine.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: fsyncing index: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: closing index: %w", err)
	}
	if err := os.Rename(tmp, s.idxPath); err != nil {
		return fmt.Errorf("store: installing index: %w", err)
	}
	return syncDir(s.dir)
}

// syncDir fsyncs a directory, making a preceding rename in it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening %s for sync: %w", dir, err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("store: fsyncing %s: %w", dir, err)
	}
	return d.Close()
}

// Query filters records; zero-valued fields match everything.
type Query struct {
	App       string
	VM        string
	Framework string
}

// Find returns all records matching the query, in insertion order.
func (s *Store) Find(q Query) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for _, r := range s.index {
		if q.App != "" && r.App != q.App {
			continue
		}
		if q.VM != "" && r.VM != q.VM {
			continue
		}
		if q.Framework != "" && r.Framework != q.Framework {
			continue
		}
		out = append(out, r)
	}
	return out
}

// BestByTime returns the record with the lowest P90 time for an app, or an
// error when the app has no records.
func (s *Store) BestByTime(app string) (Record, error) {
	recs := s.Find(Query{App: app})
	if len(recs) == 0 {
		return Record{}, fmt.Errorf("store: no records for %q", app)
	}
	best := recs[0]
	for _, r := range recs[1:] {
		if r.P90Seconds < best.P90Seconds ||
			(r.P90Seconds == best.P90Seconds && r.VM < best.VM) {
			best = r
		}
	}
	return best, nil
}

// Apps returns the distinct application names present, sorted.
func (s *Store) Apps() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := map[string]bool{}
	for _, r := range s.index {
		set[r.App] = true
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// LoadTrace reads a record's persisted trace back.
func (s *Store) LoadTrace(rec Record) (*metrics.Trace, error) {
	if rec.TraceFile == "" {
		return nil, fmt.Errorf("store: record has no persisted trace")
	}
	return readTraceCSV(filepath.Join(s.dir, rec.TraceFile))
}

// writeTraceCSV writes a trace with one column per series plus a leading
// time column. The write is crash-safe: the rows go to a temp file that is
// atomically renamed into place only after a successful flush and close, so
// a crash mid-write never leaves a truncated trace under the final name.
func writeTraceCSV(path string, tr *metrics.Trace) (err error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: creating trace file: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	w := csv.NewWriter(f)
	header := []string{"t_seconds"}
	for id := metrics.SeriesID(0); id < metrics.NumSeries; id++ {
		header = append(header, id.String())
	}
	if err = w.Write(header); err != nil {
		return err
	}
	for i := 0; i < tr.Len(); i++ {
		row := []string{strconv.FormatFloat(float64(i)*tr.SampleSec, 'f', 3, 64)}
		for id := metrics.SeriesID(0); id < metrics.NumSeries; id++ {
			row = append(row, strconv.FormatFloat(tr.Series[id][i], 'f', 6, 64))
		}
		if err = w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	if err = w.Error(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("store: fsyncing trace file: %w", err)
	}
	// Close errors are write errors on buffered filesystems — surface them
	// instead of swallowing via defer.
	if err = f.Close(); err != nil {
		return fmt.Errorf("store: closing trace file: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: installing trace file: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// readTraceCSV parses a trace written by writeTraceCSV.
func readTraceCSV(path string) (*metrics.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: opening trace: %w", err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("store: parsing trace: %w", err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("store: trace %s has no samples", path)
	}
	if len(rows[0]) != int(metrics.NumSeries)+1 {
		return nil, fmt.Errorf("store: trace %s has %d columns, want %d",
			path, len(rows[0]), int(metrics.NumSeries)+1)
	}
	tr := &metrics.Trace{SampleSec: 5}
	if len(rows) > 2 {
		t0, err0 := strconv.ParseFloat(rows[1][0], 64)
		t1, err1 := strconv.ParseFloat(rows[2][0], 64)
		if err0 == nil && err1 == nil && t1 > t0 {
			tr.SampleSec = t1 - t0
		}
	}
	for _, row := range rows[1:] {
		for id := metrics.SeriesID(0); id < metrics.NumSeries; id++ {
			v, err := strconv.ParseFloat(row[id+1], 64)
			if err != nil {
				return nil, fmt.Errorf("store: bad sample %q in %s", row[id+1], path)
			}
			tr.Series[id] = append(tr.Series[id], v)
		}
	}
	return tr, nil
}

// sanitize makes a string safe for use inside a file name.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}
