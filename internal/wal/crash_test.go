package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"vesta/internal/chaos"
)

// copyDir clones a flat state directory so each crash trial starts from the
// same on-disk prototype.
func copyDir(t testing.TB, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			t.Fatalf("unexpected subdirectory %s in state dir", e.Name())
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// refEncodes returns the state fingerprint for every epoch in the fixture
// chain.
func refEncodes(t testing.TB) [][]byte {
	t.Helper()
	snaps, _ := fixture(t)
	refs := make([][]byte, len(snaps))
	for i, sn := range snaps {
		refs[i] = encodeSnap(t, sn)
	}
	return refs
}

// TestEveryBytePrefixRecovers is the tentpole acceptance matrix: a crash can
// leave any byte-prefix of the log on disk, and for every single prefix
// recovery must (a) succeed, (b) land on an epoch no later than the last
// durably acknowledged one, (c) reproduce that epoch's exact pre-crash state,
// and (d) truncate the torn tail so the log is appendable again.
func TestEveryBytePrefixRecovers(t *testing.T) {
	snaps, recs := fixture(t)
	refs := refEncodes(t)

	var data []byte
	boundaries := []int64{0} // byte offset after each durably acked record
	for _, r := range recs {
		data = append(data, mustFrame(t, r)...)
		boundaries = append(boundaries, int64(len(data)))
	}
	lastAcked := uint64(len(recs))

	dir := t.TempDir()
	logPath := filepath.Join(dir, logName)
	for l := 0; l <= len(data); l++ {
		if err := os.WriteFile(logPath, data[:l], 0o644); err != nil {
			t.Fatal(err)
		}
		m, snap, err := Open(snaps[0], Config{Dir: dir})
		if err != nil {
			t.Fatalf("prefix %d: recovery failed: %v", l, err)
		}
		epoch := snap.Epoch()
		if epoch > lastAcked {
			t.Fatalf("prefix %d: recovered epoch %d beyond last ack %d", l, epoch, lastAcked)
		}
		// The recovered epoch is exactly the number of complete frames in the
		// prefix: acked records survive, the torn record does not.
		wantEpoch := uint64(0)
		for int(wantEpoch) < len(recs) && boundaries[wantEpoch+1] <= int64(l) {
			wantEpoch++
		}
		if epoch != wantEpoch {
			t.Fatalf("prefix %d: recovered epoch %d, want %d", l, epoch, wantEpoch)
		}
		if got := encodeSnap(t, snap); !bytes.Equal(got, refs[epoch]) {
			t.Fatalf("prefix %d: recovered state diverges from pre-crash epoch %d", l, epoch)
		}
		if st := m.Stats(); st.TornTailBytes != int64(l)-boundaries[epoch] {
			t.Fatalf("prefix %d: torn tail %d, want %d", l, st.TornTailBytes, int64(l)-boundaries[epoch])
		}
		if n := logSize(t, dir); n != boundaries[epoch] {
			t.Fatalf("prefix %d: log left at %d bytes, want %d", l, n, boundaries[epoch])
		}
		m.Close()
	}
}

// appendCrashOffsets picks the power-cut positions for the append matrix:
// every frame boundary ±1 plus a stride sweep, deduplicated and sorted by
// construction.
func appendCrashOffsets(total int64, boundaries []int64) []int64 {
	seen := map[int64]bool{}
	var out []int64
	add := func(c int64) {
		if c >= 1 && c <= total+1 && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for c := int64(1); c <= total+1; c += 17 {
		add(c)
	}
	for _, b := range boundaries {
		add(b)
		add(b + 1)
		add(b + 2)
	}
	return out
}

// TestAppendPowerCutMatrix drives the writer side of the ack invariant: cut
// the power at (a sweep of) byte positions during a run of appends and check
// that exactly the acknowledged appends survive restart — never more, never
// fewer — and that the cut manager refuses further work with ErrLogBroken.
func TestAppendPowerCutMatrix(t *testing.T) {
	snaps, recs := fixture(t)
	refs := refEncodes(t)
	var total int64
	boundaries := []int64{0}
	for _, r := range recs {
		total += int64(len(mustFrame(t, r)))
		boundaries = append(boundaries, total)
	}

	for _, cut := range appendCrashOffsets(total, boundaries) {
		ffs := chaos.NewFaultFS(chaos.OSFS(), chaos.FSPlan{CutAtByte: cut})
		dir := t.TempDir()
		m, _, err := Open(snaps[0], Config{Dir: dir, FS: ffs})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		acked := uint64(0)
		var lastErr error
		for _, r := range recs {
			if lastErr = m.Append(r.Name, r.LabelWeights, r.PrunedVec, r.Epoch); lastErr != nil {
				break
			}
			acked++
		}
		if cut > total && (lastErr != nil || acked != uint64(len(recs))) {
			t.Fatalf("cut %d beyond the run failed appends: acked %d, err %v", cut, acked, lastErr)
		}
		if cut <= total {
			if lastErr == nil {
				t.Fatalf("cut %d: all appends acknowledged through a power cut", cut)
			}
			// After a power cut the rollback fsync cannot succeed either: the
			// manager must fail closed.
			r := recs[0]
			if err := m.Append(r.Name, r.LabelWeights, r.PrunedVec, m.Epoch()+1); !errors.Is(err, ErrLogBroken) {
				t.Fatalf("cut %d: append after power cut = %v, want ErrLogBroken", cut, err)
			}
		}
		m.Close()

		m2, snap, err := Open(snaps[0], Config{Dir: dir})
		if err != nil {
			t.Fatalf("cut %d: recovery: %v", cut, err)
		}
		if snap.Epoch() != acked {
			t.Fatalf("cut %d: recovered epoch %d, want %d acked", cut, snap.Epoch(), acked)
		}
		if got := encodeSnap(t, snap); !bytes.Equal(got, refs[acked]) {
			t.Fatalf("cut %d: recovered state diverges from acked epoch %d", cut, acked)
		}
		m2.Close()
	}
}

// TestCheckpointCrashMatrix injects a fault at every fsync, every rename, the
// directory sync, and a sweep of power-cut byte positions inside checkpoint
// compaction. Whatever the crash point, a clean restart must recover the full
// acknowledged state — either from the installed checkpoint or from the
// not-yet-trimmed log.
func TestCheckpointCrashMatrix(t *testing.T) {
	snaps, recs := fixture(t)
	refs := refEncodes(t)
	lastAcked := uint64(len(recs))

	// Prototype state dir: three acked records, no checkpoint yet.
	proto := t.TempDir()
	m0, _ := mustOpen(t, snaps[0], Config{Dir: proto})
	appendRecs(t, m0, recs)
	m0.Close()

	// Counting pass: run the checkpoint fault-free through a FaultFS to learn
	// how many of each op it performs; the matrix then aims one fault at each.
	cntDir := t.TempDir()
	copyDir(t, proto, cntDir)
	probe := chaos.NewFaultFS(chaos.OSFS(), chaos.FSPlan{})
	mc, snapc, err := Open(snaps[0], Config{Dir: cntDir, FS: probe})
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.Checkpoint(snapc); err != nil {
		t.Fatal(err)
	}
	mc.Close()
	ops := probe.Ops()
	if ops.Syncs == 0 || ops.Renames == 0 || ops.SyncDirs == 0 || ops.WriteBytes == 0 {
		t.Fatalf("counting pass saw no ops: %+v", ops)
	}

	type plan struct {
		name string
		p    chaos.FSPlan
	}
	var plans []plan
	for i := 1; i <= ops.Syncs; i++ {
		plans = append(plans, plan{fmt.Sprintf("fail-sync-%d", i), chaos.FSPlan{FailSync: i}})
	}
	for i := 1; i <= ops.Renames; i++ {
		plans = append(plans, plan{fmt.Sprintf("fail-rename-%d", i), chaos.FSPlan{FailRename: i}})
	}
	for i := 1; i <= ops.SyncDirs; i++ {
		plans = append(plans, plan{fmt.Sprintf("fail-syncdir-%d", i), chaos.FSPlan{FailSyncDir: i}})
	}
	stride := ops.WriteBytes / 23
	if stride < 1 {
		stride = 1
	}
	for c := int64(1); c <= ops.WriteBytes; c += stride {
		plans = append(plans, plan{fmt.Sprintf("power-cut-%d", c), chaos.FSPlan{CutAtByte: c}})
	}
	plans = append(plans, plan{fmt.Sprintf("power-cut-%d", ops.WriteBytes), chaos.FSPlan{CutAtByte: ops.WriteBytes}})

	for _, pl := range plans {
		t.Run(pl.name, func(t *testing.T) {
			dir := t.TempDir()
			copyDir(t, proto, dir)
			ffs := chaos.NewFaultFS(chaos.OSFS(), pl.p)
			m, snap, err := Open(snaps[0], Config{Dir: dir, FS: ffs})
			if err != nil {
				t.Fatalf("open under plan: %v", err)
			}
			if cerr := m.Checkpoint(snap); cerr == nil {
				t.Fatal("checkpoint succeeded through an injected crash point")
			}
			m.Close()

			// Clean restart: whatever the checkpoint left behind, the
			// acknowledged state must come back intact.
			m2, snap2, err := Open(snaps[0], Config{Dir: dir})
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer m2.Close()
			if snap2.Epoch() != lastAcked {
				t.Fatalf("recovered epoch %d, want %d", snap2.Epoch(), lastAcked)
			}
			if got := encodeSnap(t, snap2); !bytes.Equal(got, refs[lastAcked]) {
				t.Fatal("recovered state diverges from the acknowledged state")
			}
			// And the recovered dir still checkpoints cleanly afterwards.
			if err := m2.Checkpoint(snap2); err != nil {
				t.Fatalf("post-recovery checkpoint: %v", err)
			}
		})
	}
}
