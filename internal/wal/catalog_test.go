package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"vesta/internal/cloud"
	"vesta/internal/core"
)

// catalogUpdates is the evolution sequence the catalog-record tests drive:
// a reprice, then a retire+add mix — each becomes one KindCatalog WAL record.
func catalogUpdates() []cloud.Update {
	return []cloud.Update{
		{Note: "reprice m5.xlarge", Reprice: map[string]float64{"m5.xlarge": 0.2222}},
		{Note: "swap in azure", Retire: []string{"c4.large"}, Add: cloud.AzureCatalog()},
	}
}

// catalogChain folds an interleaved absorb/catalog history on top of the
// fixture base through a live manager: absorb epoch 1, catalog epochs 2-3,
// absorb epoch 4. It returns the manager, its directory, and the snapshots
// after each appended record.
func catalogChain(t *testing.T, dir string) (*Manager, []*core.Snapshot) {
	t.Helper()
	snaps, recs := fixture(t)
	m, cur := mustOpen(t, snaps[0], Config{Dir: dir})

	var chain []*core.Snapshot
	apply := func(next *core.Snapshot, err error) *core.Snapshot {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		chain = append(chain, next)
		return next
	}
	cur = apply(cur.Absorb(recs[0].Name, recs[0].LabelWeights, recs[0].PrunedVec))
	if err := m.Append(recs[0].Name, recs[0].LabelWeights, recs[0].PrunedVec, cur.Epoch()); err != nil {
		t.Fatal(err)
	}
	for _, up := range catalogUpdates() {
		cur = apply(cur.AbsorbCatalog(up))
		if err := m.AppendCatalog(up, cur.Epoch()); err != nil {
			t.Fatal(err)
		}
	}
	cur = apply(cur.Absorb(recs[1].Name, recs[1].LabelWeights, recs[1].PrunedVec))
	if err := m.Append(recs[1].Name, recs[1].LabelWeights, recs[1].PrunedVec, cur.Epoch()); err != nil {
		t.Fatal(err)
	}
	return m, chain
}

// TestCatalogRecordReplay recovers a log holding interleaved absorb and
// catalog records and asserts the recovered snapshot is byte-identical to the
// live one, with the consistency token intact: epoch 4, catalog version 2,
// workloads base+2.
func TestCatalogRecordReplay(t *testing.T) {
	dir := t.TempDir()
	m, chain := catalogChain(t, dir)
	final := chain[len(chain)-1]
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, _ := fixture(t)
	m2, rec := mustOpen(t, snaps[0], Config{Dir: dir})
	if rec.Epoch() != 4 || rec.CatalogVersion() != 2 {
		t.Fatalf("recovered epoch=%d catVersion=%d, want 4/2", rec.Epoch(), rec.CatalogVersion())
	}
	if rec.Workloads() != baseWorkloads+2 {
		t.Fatalf("recovered workloads=%d, want %d", rec.Workloads(), baseWorkloads+2)
	}
	if !bytes.Equal(encodeSnap(t, rec), encodeSnap(t, final)) {
		t.Fatal("recovered snapshot differs from the live chain")
	}
	if got := m2.Stats().Replayed; got != 4 {
		t.Fatalf("replayed %d records, want 4", got)
	}
	// The repriced and added types are visible; the retiree is gone.
	if v, ok := rec.VM("m5.xlarge"); !ok || v.PriceHour != 0.2222 {
		t.Fatalf("reprice lost in recovery: %+v ok=%v", v, ok)
	}
	if _, ok := rec.VM("c4.large"); ok {
		t.Fatal("retired c4.large still present after recovery")
	}
	if _, ok := rec.VM("dv5.xlarge"); !ok {
		t.Fatal("added azure type missing after recovery")
	}
}

// TestCatalogRecordCheckpointCompaction checkpoints past the catalog records
// and recovers from the checkpoint alone: the catalog version must survive
// the snapshot codec, not just log replay.
func TestCatalogRecordCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	m, chain := catalogChain(t, dir)
	final := chain[len(chain)-1]
	if err := m.Checkpoint(final); err != nil {
		t.Fatal(err)
	}
	if logSize(t, dir) != 0 {
		t.Fatal("checkpoint did not trim the log")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, _ := fixture(t)
	m2, rec := mustOpen(t, snaps[0], Config{Dir: dir})
	if m2.Stats().Replayed != 0 {
		t.Fatalf("replayed %d records after full compaction", m2.Stats().Replayed)
	}
	if rec.Epoch() != 4 || rec.CatalogVersion() != 2 {
		t.Fatalf("checkpoint-recovered epoch=%d catVersion=%d, want 4/2", rec.Epoch(), rec.CatalogVersion())
	}
	if !bytes.Equal(encodeSnap(t, rec), encodeSnap(t, final)) {
		t.Fatal("checkpoint-recovered snapshot differs from the live chain")
	}
}

// TestCatalogRecordEveryBytePrefix is the crash matrix for the mixed log:
// every byte-length prefix of an absorb+catalog log must recover to exactly
// the records wholly contained in the prefix, with the rest torn away.
func TestCatalogRecordEveryBytePrefix(t *testing.T) {
	dir := t.TempDir()
	m, chain := catalogChain(t, dir)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := readLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps, _ := fixture(t)
	base := snaps[0]

	// Frame boundaries: scanning the full log yields 4 records; re-encoding
	// each gives the cumulative offsets a prefix can legally end at.
	recs, valid, err := scanLog(full)
	if err != nil || int64(len(full)) != valid || len(recs) != 4 {
		t.Fatalf("full log scan: %d records, valid=%d/%d, err=%v", len(recs), valid, len(full), err)
	}
	boundaries := []int64{0}
	for _, r := range recs {
		boundaries = append(boundaries, boundaries[len(boundaries)-1]+int64(len(mustFrame(t, r))))
	}
	wantAt := func(prefix int64) *core.Snapshot {
		n := 0
		for _, b := range boundaries[1:] {
			if prefix >= b {
				n++
			}
		}
		if n == 0 {
			return base
		}
		return chain[n-1]
	}

	// Sampling every byte is ~4 recoveries/KiB; step through all boundaries
	// plus a stride of interior offsets to keep the matrix fast under -race.
	offsets := map[int64]bool{}
	for _, b := range boundaries {
		offsets[b] = true
		if b > 0 {
			offsets[b-1] = true
		}
		offsets[b+1] = true
	}
	for off := int64(0); off <= int64(len(full)); off += 97 {
		offsets[off] = true
	}
	for off := range offsets {
		if off > int64(len(full)) {
			continue
		}
		sub := t.TempDir()
		appendRawToLog(t, sub, full[:off])
		m2, rec := mustOpen(t, base, Config{Dir: sub})
		want := wantAt(off)
		if rec.Epoch() != want.Epoch() || rec.CatalogVersion() != want.CatalogVersion() {
			t.Fatalf("prefix %d: epoch=%d catVersion=%d, want %d/%d",
				off, rec.Epoch(), rec.CatalogVersion(), want.Epoch(), want.CatalogVersion())
		}
		if !bytes.Equal(encodeSnap(t, rec), encodeSnap(t, want)) {
			t.Fatalf("prefix %d: recovered state differs from the %d-record chain", off, rec.Epoch())
		}
		m2.Close()
	}
}

// TestCatalogRecordAbsorbFramesStayLegacy pins the byte-compatibility
// contract: an absorb record (the only kind that existed before versioned
// catalogs) must encode without any of the new fields, so logs written by
// this binary replay on the previous one and vice versa.
func TestCatalogRecordAbsorbFramesStayLegacy(t *testing.T) {
	rec := syntheticRecords(1)[0]
	frame := mustFrame(t, rec)
	payload := frame[frameHeaderSize:]
	var keys map[string]json.RawMessage
	if err := json.Unmarshal(payload, &keys); err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"kind", "catalog"} {
		if _, ok := keys[banned]; ok {
			t.Fatalf("absorb frame leaks %q field: %s", banned, payload)
		}
	}
	// And the reverse direction: a legacy payload (no kind field) decodes as
	// KindAbsorb.
	got, _, err := scanLog(frame)
	if err != nil || len(got) != 1 {
		t.Fatalf("scan: %v (%d records)", err, len(got))
	}
	if got[0].Kind != KindAbsorb {
		t.Fatalf("legacy frame decoded as kind %q", got[0].Kind)
	}
}

// TestCatalogRecordUnknownKindFailsRecovery plants a record kind from the
// future in the log; recovery must fail closed rather than guess.
func TestCatalogRecordUnknownKindFailsRecovery(t *testing.T) {
	snaps, _ := fixture(t)
	dir := t.TempDir()
	appendRawToLog(t, dir, mustFrame(t, Record{Kind: "hologram", Epoch: 1}))
	if _, _, err := Open(snaps[0], Config{Dir: dir}); !errors.Is(err, ErrReplayRejected) {
		t.Fatalf("unknown kind: err=%v, want ErrReplayRejected", err)
	}
}

// TestCatalogRecordRejections covers the CRC-valid-but-unappliable catalog
// records: a missing payload, an update referencing a type the state does not
// have, and one retiring the sandbox VM.
func TestCatalogRecordRejections(t *testing.T) {
	snaps, _ := fixture(t)
	cases := []struct {
		name string
		rec  Record
	}{
		{"nil payload", Record{Kind: KindCatalog, Epoch: 1}},
		{"unknown retiree", Record{Kind: KindCatalog, Epoch: 1,
			Catalog: &cloud.Update{Retire: []string{"never.existed"}}}},
		{"retires sandbox", Record{Kind: KindCatalog, Epoch: 1,
			Catalog: &cloud.Update{Retire: []string{"m5.xlarge"}}}},
		{"empty update", Record{Kind: KindCatalog, Epoch: 1, Catalog: &cloud.Update{}}},
	}
	for _, tc := range cases {
		dir := t.TempDir()
		appendRawToLog(t, dir, mustFrame(t, tc.rec))
		if _, _, err := Open(snaps[0], Config{Dir: dir}); !errors.Is(err, ErrReplayRejected) {
			t.Errorf("%s: err=%v, want ErrReplayRejected", tc.name, err)
		}
	}
}

// TestCatalogRecordAppendEpochGuard: AppendCatalog obeys the same contiguous
// epoch contract as Append.
func TestCatalogRecordAppendEpochGuard(t *testing.T) {
	snaps, _ := fixture(t)
	m, _ := mustOpen(t, snaps[0], Config{Dir: t.TempDir()})
	up := catalogUpdates()[0]
	if err := m.AppendCatalog(up, 2); err == nil {
		t.Fatal("epoch-gap AppendCatalog accepted")
	}
	if err := m.AppendCatalog(up, 1); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 1 {
		t.Fatalf("epoch %d after catalog append, want 1", m.Epoch())
	}
}

func readLog(dir string) ([]byte, error) {
	return os.ReadFile(filepath.Join(dir, logName))
}
