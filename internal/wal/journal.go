package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"path/filepath"
	"sync"

	"vesta/internal/chaos"
)

// Journal is an append-only, fsync-per-append log of opaque payloads framed
// exactly like WAL records (uint32 LE length, uint32 LE CRC32C, payload).
// The rollout coordinator journals its promotion decisions through one: each
// Append is durable before the decision is acted on, so a crashed
// coordinator re-reads the journal and resumes — or rolls back — from the
// exact decision it had committed to, never from a guess.
//
// Recovery follows the WAL's torn-tail rule: OpenJournal returns every
// CRC-valid prefix entry and truncates whatever a crash tore mid-append. A
// torn decision was by construction never acted on (Append returns before
// the action starts), so truncating it is the correct resume semantics.
type Journal struct {
	fs   chaos.FS
	path string

	mu      sync.Mutex
	f       chaos.File
	bytes   int64
	entries int
	broken  error
}

// OpenJournal opens (creating if absent) the journal at path and returns the
// recovered entries in append order. A torn tail is truncated; a CRC-valid
// frame is returned verbatim — payload interpretation belongs to the caller.
func OpenJournal(path string, fsys chaos.FS) (*Journal, [][]byte, error) {
	if path == "" {
		return nil, nil, fmt.Errorf("wal: empty journal path")
	}
	if fsys == nil {
		fsys = chaos.OSFS()
	}
	if dir := filepath.Dir(path); dir != "" && dir != "." {
		if err := fsys.MkdirAll(dir); err != nil {
			return nil, nil, fmt.Errorf("wal: creating journal dir: %w", err)
		}
	}
	data, err := fsys.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, fmt.Errorf("wal: reading journal: %w", err)
	}
	entries, valid := scanJournal(data)
	if valid < int64(len(data)) {
		if err := fsys.Truncate(path, valid); err != nil {
			return nil, nil, fmt.Errorf("wal: truncating torn journal tail: %w", err)
		}
	}
	f, err := fsys.Append(path)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening journal for append: %w", err)
	}
	j := &Journal{fs: fsys, path: path, f: f, bytes: valid, entries: len(entries)}
	return j, entries, nil
}

// scanJournal parses a journal image into its payloads and the byte length
// of the valid prefix (the torn-tail rule of scanLog, minus the JSON decode:
// journal payloads are opaque here).
func scanJournal(data []byte) ([][]byte, int64) {
	var entries [][]byte
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) < frameHeaderSize {
			return entries, off
		}
		n := int64(binary.LittleEndian.Uint32(rest[0:4]))
		if n > maxRecordBytes || frameHeaderSize+n > int64(len(rest)) {
			return entries, off
		}
		payload := rest[frameHeaderSize : frameHeaderSize+n]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
			return entries, off
		}
		cp := make([]byte, len(payload))
		copy(cp, payload)
		entries = append(entries, cp)
		off += frameHeaderSize + n
	}
}

// Append durably journals one payload: when Append returns nil the entry
// survives any crash. A failed write or fsync is rolled back by truncating
// to the pre-append length; if the rollback fails too the journal is marked
// broken and every further Append refuses with ErrLogBroken.
func (j *Journal) Append(payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken != nil {
		return fmt.Errorf("%w: %v", ErrLogBroken, j.broken)
	}
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("wal: journal payload %d bytes exceeds %d", len(payload), maxRecordBytes)
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderSize:], payload)
	if _, err := j.f.Write(frame); err != nil {
		return j.rollbackLocked(fmt.Errorf("wal: appending journal entry: %w", err))
	}
	if err := j.f.Sync(); err != nil {
		return j.rollbackLocked(fmt.Errorf("wal: fsyncing journal entry: %w", err))
	}
	j.bytes += int64(len(frame))
	j.entries++
	return nil
}

func (j *Journal) rollbackLocked(cause error) error {
	if err := j.fs.Truncate(j.path, j.bytes); err != nil {
		j.broken = fmt.Errorf("%v; rollback truncate failed: %v", cause, err)
		return j.broken
	}
	if err := j.f.Sync(); err != nil {
		j.broken = fmt.Errorf("%v; rollback fsync failed: %v", cause, err)
		return j.broken
	}
	return cause
}

// Entries returns how many durable entries the journal holds (recovered plus
// appended this session).
func (j *Journal) Entries() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.entries
}

// Close releases the journal handle. Appending after Close fails.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if j.broken == nil {
		j.broken = fmt.Errorf("wal: journal closed")
	}
	return err
}
